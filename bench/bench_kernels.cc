// Google-benchmark microbenchmarks for the kernels behind the paper's
// complexity analysis (§VI-C): SpMM (the O(ed) propagation), GEMM (the
// O(nd^2) projection), the fused consistency loss (O(ed + nd^2) instead of
// O(n^2 d)), the full GCN forward pass, the chunked stability scan, and a
// full training epoch. Run with --benchmark_filter=... to narrow.
#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "core/gcn.h"
#include "core/refinement.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "la/ops.h"

namespace galign {
namespace {

AttributedGraph BenchGraph(int64_t n, int64_t deg) {
  Rng rng(42);
  auto g = PowerLawGraph(n, n * deg / 2, 2.5, &rng).MoveValueOrDie();
  return g.WithAttributes(BinaryAttributes(n, 16, 0.2, &rng))
      .MoveValueOrDie();
}

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  AttributedGraph g = BenchGraph(n, 8);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Rng rng(1);
  Matrix h = Matrix::Gaussian(n, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lap.Multiply(h));
  }
  state.SetItemsProcessed(state.iterations() * lap.nnz() * 128);
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Matrix a = Matrix::Gaussian(n, 128, &rng);
  Matrix w = Matrix::Gaussian(128, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, w));
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 128);
}
BENCHMARK(BM_Gemm)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GemmReference(benchmark::State& state) {
  // The retained naive kernel, for before/after ratios on this machine.
  const int64_t n = state.range(0);
  Rng rng(2);
  Matrix a = Matrix::Gaussian(n, 128, &rng);
  Matrix w = Matrix::Gaussian(128, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::MatMul(a, w));
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 128);
}
BENCHMARK(BM_GemmReference)->Arg(1000)->Arg(4000);

void BM_GemmInto(benchmark::State& state) {
  // Allocation-free steady state: output + packed panels are reused.
  const int64_t n = state.range(0);
  Rng rng(2);
  Matrix a = Matrix::Gaussian(n, 128, &rng);
  Matrix w = Matrix::Gaussian(128, 128, &rng);
  Matrix out;
  for (auto _ : state) {
    MatMulInto(a, w, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 128);
}
BENCHMARK(BM_GemmInto)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_AlignmentKernel(benchmark::State& state) {
  // S^(l) = H_s H_t^T (Eq. 11) — the quadratic part of instantiation.
  const int64_t n = state.range(0);
  Rng rng(3);
  Matrix hs = Matrix::Gaussian(n, 128, &rng);
  Matrix ht = Matrix::Gaussian(n, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposedB(hs, ht));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 128);
}
BENCHMARK(BM_AlignmentKernel)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000);

void BM_AlignmentKernelReference(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Matrix hs = Matrix::Gaussian(n, 128, &rng);
  Matrix ht = Matrix::Gaussian(n, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::MatMulTransposedB(hs, ht));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 128);
}
BENCHMARK(BM_AlignmentKernelReference)->Arg(1000)->Arg(4000);

void BM_SpMMTransposed(benchmark::State& state) {
  // Repeated C^T H as in every training epoch's backward pass; the CSR
  // transpose is memoized after the first call.
  const int64_t n = state.range(0);
  AttributedGraph g = BenchGraph(n, 8);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Rng rng(9);
  Matrix h = Matrix::Gaussian(n, 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lap.TransposedMultiply(h));
  }
  state.SetItemsProcessed(state.iterations() * lap.nnz() * 128);
}
BENCHMARK(BM_SpMMTransposed)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_TopKRow(benchmark::State& state) {
  // Per-row top-k selection as used by TopKAnchors (k = 10 of n columns).
  const int64_t n = state.range(0);
  Rng rng(10);
  Matrix s = Matrix::Gaussian(16, n, &rng);
  int64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopKRow(s, r, 10));
    r = (r + 1) % s.rows();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKRow)->Arg(4000)->Arg(16000);

void BM_ConsistencyLossFused(benchmark::State& state) {
  // The fused O(ed + nd^2) loss: compare its growth to n^2 d by eye.
  const int64_t n = state.range(0);
  AttributedGraph g = BenchGraph(n, 8);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Rng rng(4);
  Matrix h = Matrix::Gaussian(n, 128, &rng, 0.1);
  for (auto _ : state) {
    Tape tape;
    Var hv = tape.Leaf(h, true);
    Var loss = ag::ConsistencyLoss(&tape, &lap, hv);
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape.grad(hv));
  }
}
BENCHMARK(BM_ConsistencyLossFused)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GcnForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  AttributedGraph g = BenchGraph(n, 8);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Rng rng(5);
  MultiOrderGcn gcn(2, g.num_attributes(), 128, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcn.ForwardInference(lap, g.attributes()));
  }
}
BENCHMARK(BM_GcnForward)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_TrainingEpoch(benchmark::State& state) {
  const int64_t n = state.range(0);
  AttributedGraph g = BenchGraph(n, 8);
  Rng rng(6);
  GAlignConfig cfg;
  cfg.epochs = 1;
  cfg.embedding_dim = 64;
  for (auto _ : state) {
    Rng run_rng(7);
    MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                      &run_rng);
    Trainer trainer(cfg);
    trainer.Train(&gcn, g, g, &run_rng).CheckOK();
    benchmark::DoNotOptimize(gcn.weights());
  }
}
BENCHMARK(BM_TrainingEpoch)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_StabilityScan(benchmark::State& state) {
  // The chunked scan of Alg. 2: O(n1 n2 d) time but O(n) extra space.
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<Matrix> hs, ht;
  for (int l = 0; l < 3; ++l) {
    Matrix a = Matrix::Gaussian(n, 64, &rng);
    a.NormalizeRows();
    hs.push_back(a);
    Matrix b = Matrix::Gaussian(n, 64, &rng);
    b.NormalizeRows();
    ht.push_back(b);
  }
  std::vector<double> theta{1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanStability(hs, ht, theta, 0.94));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64 * 3);
}
BENCHMARK(BM_StabilityScan)->Arg(500)->Arg(1000)->Arg(2000);

void BM_NormalizedAdjacency(benchmark::State& state) {
  const int64_t n = state.range(0);
  AttributedGraph g = BenchGraph(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.NormalizedAdjacency().ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_NormalizedAdjacency)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace galign

GALIGN_BENCHMARK_MAIN();
