// Reproduces Fig. 7: sensitivity to the GCN embedding dimension. Trains
// GAlign with d in {50, 100, 150, 200, 250, 300} on the Allmovie-like pair
// and reports Success@1 and wall-clock time.
//
// Expected shape (paper): Success@1 saturates quickly with dimension while
// time grows steadily — large d buys little quality at real cost.
#include "bench/bench_common.h"

#include "align/datasets.h"
#include "common/timer.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Fig. 7: embedding dimension vs Success@1 and time", opt);

  DatasetSpec spec = AllmovieImdbSpec().Scaled(opt.ScaleFactor(10.0));
  Rng rng(8000);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();

  TextTable table({"dim", "Success@1", "MAP", "Time(s)"});
  for (int64_t dim : {50, 100, 150, 200, 250, 300}) {
    GAlignConfig cfg = BenchGAlignConfig(opt);
    cfg.embedding_dim = dim;
    GAlignAligner aligner(cfg);
    Timer timer;
    auto s = aligner.Align(pair.source, pair.target, {});
    double seconds = timer.Seconds();
    if (!s.ok()) {
      table.AddRow({std::to_string(dim), "FAILED"});
      continue;
    }
    AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
    table.AddRow({std::to_string(dim), TextTable::Num(m.success_at_1),
                  TextTable::Num(m.map), TextTable::Num(seconds, 2)});
  }
  EmitTable(table, opt, "fig7_embedding_dim");
  return 0;
}
