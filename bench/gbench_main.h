// Shared google-benchmark main for the JSON-recorded benches
// (bench_kernels, bench_ann): stamps the benchmark context with the
// galign build flavor and the git SHA handed in by bench/run_all.sh, so
// every recorded BENCH_*.json carries provenance — which tree produced it
// and whether the library was compiled with optimizations. run_all.sh
// reads the galign_build_type stamp back and refuses to record JSON
// snapshots from non-release builds (a debug-build perf snapshot would
// poison the cross-PR perf trajectory).
//
// The stock "library_build_type" context key reports how the *installed
// libbenchmark* was compiled, not this repository — hence the custom key.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace galign_bench {

inline const char* BuildType() {
#ifdef GALIGN_BUILD_TYPE_NAME
  // Stamped by bench/CMakeLists.txt from CMAKE_BUILD_TYPE — authoritative,
  // because the repo's Release flags ("-O3 -g") omit -DNDEBUG.
  return GALIGN_BUILD_TYPE_NAME;
#elif defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

}  // namespace galign_bench

#define GALIGN_BENCHMARK_MAIN()                                           \
  int main(int argc, char** argv) {                                       \
    for (int i = 1; i < argc; ++i) {                                      \
      if (std::strcmp(argv[i], "--galign_print_build_type") == 0) {       \
        std::puts(::galign_bench::BuildType());                           \
        return 0;                                                         \
      }                                                                   \
    }                                                                     \
    benchmark::AddCustomContext("galign_build_type",                      \
                                ::galign_bench::BuildType());             \
    const char* galign_sha = std::getenv("GALIGN_GIT_SHA");               \
    benchmark::AddCustomContext("git_sha",                                \
                                galign_sha ? galign_sha : "unknown");     \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    return 0;                                                             \
  }
