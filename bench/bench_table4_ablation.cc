// Reproduces Table IV: ablation of GAlign's components on Douban- and
// Allmovie-like pairs.
//   GAlign-1: no data augmentation (consistency loss only)
//   GAlign-2: no refinement (embeddings aggregated directly)
//   GAlign-3: final-layer embedding only (no multi-order features)
//
// Expected shape (paper): full GAlign >= every variant; the multi-order
// ablation (GAlign-3) is by far the most damaging (~20% Success@1 drop).
#include "bench/bench_common.h"

#include "align/datasets.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Table IV: ablation test", opt);

  const std::vector<DatasetSpec> specs = {
      DoubanSpec().Scaled(opt.ScaleFactor(8.0)),
      AllmovieImdbSpec().Scaled(opt.ScaleFactor(8.0)),
  };

  GAlignConfig base = BenchGAlignConfig(opt);
  struct Variant {
    const char* name;
    GAlignConfig cfg;
  };
  const std::vector<Variant> variants = {
      {"GAlign", base},
      {"GAlign-1", GAlignAligner::WithoutAugmentation(base)},
      {"GAlign-2", GAlignAligner::WithoutRefinement(base)},
      {"GAlign-3", GAlignAligner::FinalLayerOnly(base)},
  };

  for (const DatasetSpec& spec : specs) {
    std::printf("--- %s ---\n", spec.name.c_str());
    TextTable table({"Variant", "MAP", "Success@1"});
    for (const Variant& v : variants) {
      std::vector<AlignmentMetrics> runs;
      for (int run = 0; run < opt.runs; ++run) {
        Rng rng(2000 + run);
        auto pair = SynthesizePair(spec, &rng);
        if (!pair.ok()) continue;
        GAlignAligner aligner(v.cfg, v.name);
        RunResult r = RunAligner(&aligner, pair.ValueOrDie(), 0.0, &rng);
        if (r.status.ok()) runs.push_back(r.metrics);
      }
      AlignmentMetrics m = MeanMetrics(runs);
      table.AddRow({v.name, TextTable::Num(m.map),
                    TextTable::Num(m.success_at_1)});
    }
    EmitTable(table, opt, spec.name);
  }
  return 0;
}
