// Reproduces Fig. 5: robustness against the isomorphic level. Source and
// target are overlapping subgraphs of an original network sharing a
// controlled fraction of nodes; lower overlap = less isomorphic pair.
//
// Expected shape (paper): performance drops as the overlap shrinks; GAlign
// keeps a wide margin (~30 points of Success@1) over the runner-up
// (REGAL) across all levels.
#include "bench/bench_common.h"

#include "align/datasets.h"
#include "graph/noise.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Fig. 5: robustness against isomorphic level (Success@1)", opt);

  struct Network {
    const char* name;
    Result<AttributedGraph> (*make)(Rng*, double);
  };
  const std::vector<Network> networks = {
      {"bn", &MakeBnLike}, {"econ", &MakeEconLike}, {"email", &MakeEmailLike}};
  const std::vector<double> overlaps = {0.5, 0.6, 0.7, 0.8, 0.9};
  const double scale = opt.ScaleFactor(5.0);

  for (const Network& net : networks) {
    std::printf("--- %s ---\n", net.name);
    TextTable table({"Method", "50%", "60%", "70%", "80%", "90%"});
    AlignerSet set = MakeAlignerSet(opt);
    for (Aligner* aligner : set.all()) {
      std::vector<std::string> row{aligner->name()};
      for (double overlap : overlaps) {
        std::vector<AlignmentMetrics> runs;
        for (int run = 0; run < opt.runs; ++run) {
          Rng rng(6000 + run);
          auto base = net.make(&rng, scale);
          if (!base.ok()) continue;
          NoisyCopyOptions opts;
          opts.structural_noise = 0.05;
          auto pair =
              MakeOverlapPair(base.ValueOrDie(), overlap, opts, &rng);
          if (!pair.ok()) continue;
          RunResult r = RunAligner(aligner, pair.ValueOrDie(), 0.1, &rng);
          if (r.status.ok()) runs.push_back(r.metrics);
        }
        row.push_back(runs.empty()
                          ? std::string("n/a")
                          : TextTable::Num(MeanMetrics(runs).success_at_1));
      }
      table.AddRow(std::move(row));
    }
    EmitTable(table, opt, std::string("fig5_") + net.name);
  }
  return 0;
}
