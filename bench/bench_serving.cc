// Google-benchmark suite for the serving layer (DESIGN.md §12): one
// immutable AlignmentIndex behind an AlignServer, burst at 1x / 4x / 16x
// the admission queue's capacity. Each entry records the numbers the
// overload contract is judged by:
//
//   * p50_ms / p99_ms  — admission-to-completion latency of answered
//     requests (queue wait included, since the deadline starts at
//     admission);
//   * qps              — answered requests per wall-clock second of the
//     burst;
//   * shed             — typed kOverloaded rejections (queue full or
//     budget exhausted), the load the server refused rather than queued;
//   * answered/degraded — resolved answers and how many of those were
//     less than full effort (reduced ANN effort or anchor-table rows).
//
// At 1x the queue absorbs everything and shed must be ~0; at 16x most of
// the load must shed — the interesting number is that p99 of what *was*
// answered stays bounded instead of growing with offered load. Run via
// bench/run_all.sh to record BENCH_serving.json with provenance stamps.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/gbench_main.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "serve/alignment_index.h"
#include "serve/server.h"

namespace galign {
namespace {

constexpr int64_t kNodes = 120;
constexpr int64_t kQueueCapacity = 16;
constexpr int kClients = 4;

/// One artifact shared by every load level: built once, immutable, so the
/// bench measures serving and not training.
std::shared_ptr<const AlignmentIndex> SharedIndex() {
  static const std::shared_ptr<const AlignmentIndex> index = [] {
    Rng rng(17);
    auto g = BarabasiAlbert(kNodes, 3, &rng).MoveValueOrDie();
    g = g.WithAttributes(BinaryAttributes(kNodes, 8, 0.3, &rng))
            .MoveValueOrDie();
    NoisyCopyOptions opts;
    opts.structural_noise = 0.05;
    auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

    GAlignConfig config;
    config.epochs = 4;
    config.embedding_dim = 16;
    AlignmentIndexOptions options;
    options.anchor_k = 5;
    return AlignmentIndex::Build(config, pair.source, pair.target, options)
        .MoveValueOrDie();
  }();
  return index;
}

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

/// One burst: `load_multiple * kQueueCapacity` requests fired from
/// kClients threads before any future is collected, so offered load
/// actually exceeds capacity instead of self-pacing at the answer rate.
void BM_ServingBurst(benchmark::State& state) {
  const int64_t load_multiple = state.range(0);
  std::shared_ptr<const AlignmentIndex> index = SharedIndex();
  const int64_t total = load_multiple * kQueueCapacity;

  uint64_t answered = 0;
  uint64_t shed = 0;
  uint64_t degraded = 0;
  uint64_t untyped = 0;
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;

  for (auto _ : state) {
    ServeConfig config;
    config.workers = 2;
    config.queue_capacity = kQueueCapacity;
    config.default_deadline_ms = 2000.0;
    config.budget = std::make_shared<MemoryBudget>(uint64_t{256} << 20);
    AlignServer server(index, config);
    server.Start();

    std::vector<std::future<QueryResponse>> futures(total);
    Timer burst_timer;
    {
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (int64_t i = c; i < total; i += kClients) {
            QueryRequest request;
            request.node = i % index->num_source();
            request.k = 5;
            futures[i] = server.Submit(request);
          }
        });
      }
      for (std::thread& t : clients) t.join();
    }
    for (std::future<QueryResponse>& f : futures) {
      QueryResponse response = f.get();
      if (response.status.ok()) {
        ++answered;
        if (response.degraded) ++degraded;
        latencies_ms.push_back(response.latency_ms);
      } else if (response.status.code() == StatusCode::kOverloaded) {
        ++shed;
      } else if (response.status.code() != StatusCode::kDeadlineExceeded) {
        ++untyped;
      }
    }
    wall_seconds += burst_timer.Seconds();
    server.Shutdown();
  }

  const double iters = static_cast<double>(state.iterations());
  state.counters["offered"] = static_cast<double>(total);
  state.counters["answered"] = static_cast<double>(answered) / iters;
  state.counters["shed"] = static_cast<double>(shed) / iters;
  state.counters["degraded"] = static_cast<double>(degraded) / iters;
  // Any untyped resolution is a contract violation, not a perf number.
  state.counters["untyped"] = static_cast<double>(untyped) / iters;
  state.counters["p50_ms"] = Percentile(&latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(&latencies_ms, 0.99);
  state.counters["qps"] =
      wall_seconds > 0.0 ? static_cast<double>(answered) / wall_seconds : 0.0;
}

BENCHMARK(BM_ServingBurst)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Single-client closed-loop latency at each effort step: what a degraded
/// answer costs relative to full effort, without queueing noise.
void BM_ServingQueryLatency(benchmark::State& state) {
  std::shared_ptr<const AlignmentIndex> index = SharedIndex();
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = kQueueCapacity;
  config.default_deadline_ms = 2000.0;
  AlignServer server(index, config);
  server.Start();

  int64_t node = 0;
  for (auto _ : state) {
    QueryRequest request;
    request.node = node;
    request.k = 5;
    node = (node + 1) % index->num_source();
    QueryResponse response = server.SubmitAndWait(request);
    if (!response.status.ok())
      state.SkipWithError(response.status.ToString().c_str());
    benchmark::DoNotOptimize(response.targets.data());
  }
  server.Shutdown();
}

BENCHMARK(BM_ServingQueryLatency)->Unit(benchmark::kMicrosecond);

/// The published artifact round-tripped through serialize/parse: what the
/// hot-swap watcher actually hands SwapIndex after quarantine. Built once.
std::shared_ptr<const AlignmentIndex> SharedReloadedIndex() {
  static const std::shared_ptr<const AlignmentIndex> index =
      AlignmentIndex::Parse(SharedIndex()->Serialize(), "bench swap clone")
          .MoveValueOrDie();
  return index;
}

/// Hot swap under load (DESIGN.md §13): clients run a closed query loop
/// while the serving artifact is swapped mid-burst. Recorded:
///
///   * p99_steady_ms — p99 of answers that ran on the old generation;
///   * p99_swap_ms   — p99 of answers on the new generation (the window
///     where retire-old overlaps serve-new), which must stay in the same
///     regime as steady state: a swap is one pointer store, not a pause;
///   * swap_to_first_new_ms — SwapIndex() call to the first answer stamped
///     with the new generation (zero-downtime refresh latency).
void BM_ServingHotSwap(benchmark::State& state) {
  std::shared_ptr<const AlignmentIndex> old_index = SharedIndex();
  std::shared_ptr<const AlignmentIndex> new_index = SharedReloadedIndex();
  constexpr int64_t kPerClient = 64;
  constexpr int64_t kSwapAfter = 16;  // per-client answers before the swap

  uint64_t answered = 0;
  uint64_t untyped = 0;
  std::vector<double> steady_ms;
  std::vector<double> swapped_ms;
  std::vector<double> first_new_ms;

  for (auto _ : state) {
    ServeConfig config;
    config.workers = 2;
    config.queue_capacity = kQueueCapacity;
    config.default_deadline_ms = 2000.0;
    AlignServer server(old_index, config, /*generation=*/1);
    server.Start();

    std::atomic<int64_t> old_gen_answers{0};
    std::atomic<bool> saw_new_gen{false};
    std::mutex mu;  // guards the latency vectors + first-answer stamp
    Timer swap_timer;
    std::atomic<bool> swap_started{false};

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = 0; i < kPerClient; ++i) {
          QueryRequest request;
          request.node = (c * kPerClient + i) % old_index->num_source();
          request.k = 5;
          QueryResponse response = server.SubmitAndWait(request);
          if (!response.status.ok()) {
            if (response.status.code() != StatusCode::kOverloaded &&
                response.status.code() != StatusCode::kDeadlineExceeded) {
              std::lock_guard<std::mutex> lock(mu);
              ++untyped;
            }
            continue;
          }
          std::lock_guard<std::mutex> lock(mu);
          ++answered;
          if (response.generation == 1) {
            old_gen_answers.fetch_add(1, std::memory_order_relaxed);
            steady_ms.push_back(response.latency_ms);
          } else {
            swapped_ms.push_back(response.latency_ms);
            if (!saw_new_gen.exchange(true) &&
                swap_started.load(std::memory_order_acquire)) {
              first_new_ms.push_back(swap_timer.Seconds() * 1000.0);
            }
          }
        }
      });
    }

    // Publish the new generation once the burst is demonstrably hot.
    while (old_gen_answers.load(std::memory_order_relaxed) <
           kSwapAfter * kClients) {
      std::this_thread::yield();
    }
    swap_timer = Timer();
    swap_started.store(true, std::memory_order_release);
    server.SwapIndex(new_index, /*generation=*/2);

    for (std::thread& t : clients) t.join();
    server.Shutdown();
  }

  const double iters = static_cast<double>(state.iterations());
  state.counters["answered"] = static_cast<double>(answered) / iters;
  state.counters["untyped"] = static_cast<double>(untyped) / iters;
  state.counters["p99_steady_ms"] = Percentile(&steady_ms, 0.99);
  state.counters["p99_swap_ms"] = Percentile(&swapped_ms, 0.99);
  state.counters["swap_to_first_new_ms"] = Percentile(&first_new_ms, 0.50);
}

BENCHMARK(BM_ServingHotSwap)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace galign

GALIGN_BENCHMARK_MAIN()
