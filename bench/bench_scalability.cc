// Scalability of alignment methods with network size (the paper's §I
// efficiency motivation: spectral methods' cost grows super-linearly with n
// — cubically for FINAL in the worst case — while GAlign's training is
// O(ed + nd^2)). Runs each method on noisy-copy pairs of doubling size and
// reports wall-clock seconds; the quadratic alignment-instantiation step is
// shared by all methods, so the interesting signal is the growth *rate*
// per method.
#include "bench/bench_common.h"

#include "graph/generators.h"
#include "graph/noise.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Scalability: run time (seconds) vs network size", opt);

  const std::vector<int64_t> sizes =
      opt.full ? std::vector<int64_t>{500, 1000, 2000, 4000, 8000}
               : std::vector<int64_t>{250, 500, 1000, 2000};

  AlignerSet set = MakeAlignerSet(opt);
  // CENALP is excluded by default: its cost explodes with size exactly as
  // in the paper (Table III reports 57401s on Allmovie); include it with
  // --extended to see that.
  std::vector<Aligner*> methods{set.galign.get(), set.pale.get(),
                                set.regal.get(), set.isorank.get(),
                                set.final_aligner.get()};
  if (opt.extended) methods.push_back(set.cenalp.get());

  std::vector<std::string> header{"Method"};
  for (int64_t n : sizes) header.push_back("n=" + std::to_string(n));
  TextTable table(header);

  std::vector<std::vector<std::string>> rows(methods.size());
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    rows[mi].push_back(methods[mi]->name());
  }
  for (int64_t n : sizes) {
    Rng rng(12000 + n);
    auto g = PowerLawGraph(n, 4 * n, 2.5, &rng);
    if (!g.ok()) continue;
    auto attributed =
        g.ValueOrDie().WithAttributes(BinaryAttributes(n, 16, 0.2, &rng));
    NoisyCopyOptions opts;
    opts.structural_noise = 0.1;
    auto pair = MakeNoisyCopyPair(attributed.ValueOrDie(), opts, &rng);
    if (!pair.ok()) continue;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      Rng run_rng(42);
      RunResult r = RunAligner(methods[mi], pair.ValueOrDie(), 0.1, &run_rng);
      rows[mi].push_back(r.status.ok() ? TextTable::Num(r.metrics.seconds, 2)
                                       : "failed");
    }
    std::printf("completed n=%lld\n", (long long)n);
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  EmitTable(table, opt, "scalability");
  return 0;
}
