#!/usr/bin/env bash
# Regenerates every paper table/figure (quick mode by default). Pass --full
# for paper-scale sizes, --extended for the extra-baselines roster, and/or
# --csv=<prefix> to also dump CSV series for plotting. Extra flags are
# forwarded to every bench binary.
#
# Crash safety: with --resume each bench persists every finished
# table/figure cell to bench_state/<bench>/ through atomic, CRC-checksummed
# writes. Killing the sweep (Ctrl-C, OOM, power loss) and re-running the
# same command replays the finished cells from disk and computes only the
# missing ones; torn cell files fail their checksum and are recomputed.
# --budget=<seconds> additionally deadlines each cell so no single method
# can stall the sweep — over-budget cells report their best-so-far result.
#
#   ./bench/run_all.sh                      # quick sweep (~10 min)
#   ./bench/run_all.sh --full --runs=5      # paper-scale, averaged
#   ./bench/run_all.sh --resume             # resumable sweep (re-run after
#                                           # a crash to pick up where it died)
#   ./bench/run_all.sh --resume --budget=60 # ...with a 60 s per-cell cap
set -u
BENCH_DIR="$(dirname "$0")/../build/bench"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ARGS=("$@")

# Give every bench its own state dir so --resume sweeps stay tidy.
RESUME=0
for a in "$@"; do
  [ "$a" = "--resume" ] && RESUME=1
done

for b in \
    bench_table3_end_to_end \
    bench_table4_ablation \
    bench_table5_layer_weights \
    bench_fig3_structural_noise \
    bench_fig4_attribute_noise \
    bench_fig5_isomorphic_level \
    bench_fig6_gcn_layers \
    bench_fig7_embedding_dim \
    bench_fig8_qualitative \
    bench_scalability \
    bench_hyperparams; do
  echo "### $b"
  EXTRA=()
  if [ "$RESUME" = 1 ]; then
    EXTRA=("--state-dir=${REPO_ROOT}/bench_state/${b}")
  fi
  # ${arr[@]+...} guards: expanding an empty array under `set -u` is an
  # error on older bash; the guard expands to nothing instead.
  "${BENCH_DIR}/${b}" ${ARGS[@]+"${ARGS[@]}"} ${EXTRA[@]+"${EXTRA[@]}"} \
    || echo "(FAILED: $b)"
  echo
done

echo "### bench_kernels"
"${BENCH_DIR}/bench_kernels" --benchmark_min_time=0.2 || echo "(FAILED: bench_kernels)"

# Machine-readable kernel numbers at the repo root, seeding the perf
# trajectory across PRs (BM_*Reference entries are the retained naive
# kernels, so each snapshot carries its own before/after ratio).
echo "### bench_kernels (json -> BENCH_kernels.json)"
"${BENCH_DIR}/bench_kernels" --benchmark_min_time=0.2 \
    --benchmark_format=json > "${REPO_ROOT}/BENCH_kernels.json" \
  || echo "(FAILED: bench_kernels json)"
