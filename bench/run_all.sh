#!/usr/bin/env bash
# Regenerates every paper table/figure (quick mode by default). Pass --full
# for paper-scale sizes, --extended for the extra-baselines roster, and/or
# --csv=<prefix> to also dump CSV series for plotting. Extra flags are
# forwarded to every bench binary.
#
# Crash safety: with --resume each bench persists every finished
# table/figure cell to bench_state/<bench>/ through atomic, CRC-checksummed
# writes. Killing the sweep (Ctrl-C, OOM, power loss) and re-running the
# same command replays the finished cells from disk and computes only the
# missing ones; torn cell files fail their checksum and are recomputed.
# --budget=<seconds> additionally deadlines each cell so no single method
# can stall the sweep — over-budget cells report their best-so-far result.
#
#   ./bench/run_all.sh                      # quick sweep (~10 min)
#   ./bench/run_all.sh --full --runs=5      # paper-scale, averaged
#   ./bench/run_all.sh --resume             # resumable sweep (re-run after
#                                           # a crash to pick up where it died)
#   ./bench/run_all.sh --resume --budget=60 # ...with a 60 s per-cell cap
set -u
BENCH_DIR="$(dirname "$0")/../build/bench"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ARGS=("$@")

# Recorded BENCH_*.json snapshots carry provenance (bench/gbench_main.h):
# the galign build flavor and the git SHA below land in the JSON context.
GALIGN_GIT_SHA="$(git -C "${REPO_ROOT}" describe --always --dirty 2>/dev/null \
  || echo unknown)"
export GALIGN_GIT_SHA

# Refuse to (over)write perf snapshots from a non-release tree: a debug
# recording would poison the cross-PR perf trajectory. The stamp is read
# back from the binary itself, not from the build cache, so a stale
# reconfigure can't lie about what was actually compiled.
build_type_of() {
  "$1" --galign_print_build_type 2>/dev/null || echo missing
}

record_json() {
  # record_json <binary> <output.json> [extra bench args...]
  local bin="$1" out="$2"
  shift 2
  local flavor
  flavor="$(build_type_of "${bin}")"
  if [ "${flavor}" != "release" ] && [ "${flavor}" != "relwithdebinfo" ]; then
    echo "(REFUSED: $(basename "${bin}") is a '${flavor:-unknown}' build;" \
         "rebuild with CMAKE_BUILD_TYPE=Release to record $(basename "${out}"))"
    return 1
  fi
  "${bin}" "$@" --benchmark_format=json > "${out}.tmp" \
    && mv "${out}.tmp" "${out}"
}

# Give every bench its own state dir so --resume sweeps stay tidy.
RESUME=0
for a in "$@"; do
  [ "$a" = "--resume" ] && RESUME=1
done

for b in \
    bench_table3_end_to_end \
    bench_table4_ablation \
    bench_table5_layer_weights \
    bench_fig3_structural_noise \
    bench_fig4_attribute_noise \
    bench_fig5_isomorphic_level \
    bench_fig6_gcn_layers \
    bench_fig7_embedding_dim \
    bench_fig8_qualitative \
    bench_scalability \
    bench_hyperparams; do
  echo "### $b"
  EXTRA=()
  if [ "$RESUME" = 1 ]; then
    EXTRA=("--state-dir=${REPO_ROOT}/bench_state/${b}")
  fi
  # ${arr[@]+...} guards: expanding an empty array under `set -u` is an
  # error on older bash; the guard expands to nothing instead.
  "${BENCH_DIR}/${b}" ${ARGS[@]+"${ARGS[@]}"} ${EXTRA[@]+"${EXTRA[@]}"} \
    || echo "(FAILED: $b)"
  echo
done

echo "### bench_kernels"
"${BENCH_DIR}/bench_kernels" --benchmark_min_time=0.2 || echo "(FAILED: bench_kernels)"

# Machine-readable kernel numbers at the repo root, seeding the perf
# trajectory across PRs (BM_*Reference entries are the retained naive
# kernels, so each snapshot carries its own before/after ratio).
echo "### bench_kernels (json -> BENCH_kernels.json)"
record_json "${BENCH_DIR}/bench_kernels" "${REPO_ROOT}/BENCH_kernels.json" \
    --benchmark_min_time=0.2 \
  || echo "(FAILED: bench_kernels json)"

# ANN retrieval layer (DESIGN.md §11): build cost, recall-vs-QPS sweeps,
# and the headline ANN-routed vs exact AlignTopK speedup at 20k nodes.
echo "### bench_ann (json -> BENCH_ann.json)"
record_json "${BENCH_DIR}/bench_ann" "${REPO_ROOT}/BENCH_ann.json" \
    --benchmark_min_time=0.2 \
  || echo "(FAILED: bench_ann json)"

# Serving layer (DESIGN.md §12): overload bursts at 1x/4x/16x queue
# capacity — p50/p99 of answered requests, QPS, and the typed shed count
# at each offered load.
echo "### bench_serving (json -> BENCH_serving.json)"
record_json "${BENCH_DIR}/bench_serving" "${REPO_ROOT}/BENCH_serving.json" \
    --benchmark_min_time=0.2 \
  || echo "(FAILED: bench_serving json)"
