#!/usr/bin/env bash
# Regenerates every paper table/figure (quick mode by default). Pass --full
# for paper-scale sizes, --extended for the extra-baselines roster, and/or
# --csv=<prefix> to also dump CSV series for plotting. Extra flags are
# forwarded to every bench binary.
#
#   ./bench/run_all.sh                      # quick sweep (~10 min)
#   ./bench/run_all.sh --full --runs=5      # paper-scale, averaged
set -u
BENCH_DIR="$(dirname "$0")/../build/bench"
ARGS=("$@")

for b in \
    bench_table3_end_to_end \
    bench_table4_ablation \
    bench_table5_layer_weights \
    bench_fig3_structural_noise \
    bench_fig4_attribute_noise \
    bench_fig5_isomorphic_level \
    bench_fig6_gcn_layers \
    bench_fig7_embedding_dim \
    bench_fig8_qualitative \
    bench_scalability \
    bench_hyperparams; do
  echo "### $b"
  "${BENCH_DIR}/${b}" "${ARGS[@]}" || echo "(FAILED: $b)"
  echo
done

echo "### bench_kernels"
"${BENCH_DIR}/bench_kernels" --benchmark_min_time=0.2 || echo "(FAILED: bench_kernels)"

# Machine-readable kernel numbers at the repo root, seeding the perf
# trajectory across PRs (BM_*Reference entries are the retained naive
# kernels, so each snapshot carries its own before/after ratio).
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
echo "### bench_kernels (json -> BENCH_kernels.json)"
"${BENCH_DIR}/bench_kernels" --benchmark_min_time=0.2 \
    --benchmark_format=json > "${REPO_ROOT}/BENCH_kernels.json" \
  || echo "(FAILED: bench_kernels json)"
