// Google-benchmark suite for the ANN retrieval layer (DESIGN.md §11):
//
//   * index construction cost for both backends (BM_*Build);
//   * recall-vs-QPS sweeps over the search-effort knobs — LSH probed
//     buckets, HNSW beam width — each entry carrying a `recall` counter
//     measured against the exact chunked top-k oracle (BM_*RecallQps);
//   * the headline end-to-end number: ANN-routed AlignTopK against the
//     exact chunked scan on a fuzzer-scale 20k x 20k attributed pair,
//     recording `speedup_vs_exact` and achieved `recall` in one entry
//     (BM_AnnAlignTopKEndToEnd).
//
// The workload is the planted-neighborhood design of
// tests/ann_recall_test.cc at bench scale: unit rows clustered around
// shared centers, so "the true top-k" is meaningful and recall against the
// exact oracle measures something real. Everything is seeded; run via
// bench/run_all.sh to record BENCH_ann.json with provenance stamps.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/naive.h"
#include "bench/gbench_main.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/ann/ann.h"
#include "graph/ann/ann_index.h"
#include "graph/generators.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {
namespace {

constexpr int64_t kDim = 32;
// 256 centers over 20k points keeps planted neighborhoods ~80 rows — large
// enough that recall is a real measurement, small enough that per-query
// candidate sets stay proportional to k rather than to n / clusters.
constexpr int64_t kClusters = 256;
constexpr int64_t kTopK = 10;

// Unit rows clustered around `clusters` shared centers with per-row noise.
// Query and base sides share center_seed so queries have true near
// neighbors in the base; noise_seed differs per side.
Matrix ClusteredRows(int64_t n, int64_t d, int64_t clusters, double noise,
                     uint64_t center_seed, uint64_t noise_seed) {
  Rng crng(center_seed);
  Matrix centers = Matrix::Gaussian(clusters, d, &crng);
  centers.NormalizeRows();
  Rng nrng(noise_seed);
  Matrix out = Matrix::Gaussian(n, d, &nrng);
  for (int64_t r = 0; r < n; ++r) {
    const double* c = centers.row_data(r % clusters);
    double* o = out.row_data(r);
    for (int64_t j = 0; j < d; ++j) o[j] = c[j] + noise * o[j];
  }
  out.NormalizeRows();
  return out;
}

// |ann top-k ∩ exact top-k| / |exact top-k| over the rows both computed.
double MeasuredRecall(const TopKAlignment& exact, const TopKAlignment& ann) {
  int64_t denom = 0, hits = 0;
  const int64_t rows = std::min(exact.rows_computed, ann.rows_computed);
  for (int64_t v = 0; v < rows; ++v) {
    for (int64_t j = 0; j < exact.k; ++j) {
      const int64_t want = exact.index[v * exact.k + j];
      if (want < 0) continue;
      ++denom;
      for (int64_t i = 0; i < ann.k; ++i) {
        if (ann.index[v * ann.k + i] == want) {
          ++hits;
          break;
        }
      }
    }
  }
  return denom == 0 ? 1.0 : static_cast<double>(hits) / denom;
}

// ------------------------------------------------------- build cost

void BM_LshBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix base = ClusteredRows(n, kDim, kClusters, 0.06, 7, 8);
  AnnConfig cfg;
  cfg.backend = AnnBackend::kLsh;
  for (auto _ : state) {
    Matrix copy = base;  // BuildAnnIndex takes ownership
    auto index = BuildAnnIndex(std::move(copy), cfg, RunContext());
    benchmark::DoNotOptimize(index.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LshBuild)->Arg(4000)->Arg(20000);

void BM_HnswBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix base = ClusteredRows(n, kDim, kClusters, 0.06, 7, 8);
  AnnConfig cfg;
  cfg.backend = AnnBackend::kHnsw;
  for (auto _ : state) {
    Matrix copy = base;
    auto index = BuildAnnIndex(std::move(copy), cfg, RunContext());
    benchmark::DoNotOptimize(index.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HnswBuild)->Arg(4000)->Arg(10000);

// ------------------------------------------- recall-vs-QPS sweeps

// Fixed query/base pair plus the exact oracle, built once per shape and
// reused across all sweep entries (the oracle scan is the expensive part).
struct SweepFixture {
  Matrix base;
  Matrix queries;
  TopKAlignment exact;
};

const SweepFixture& Sweep(int64_t n_base, int64_t n_query) {
  static std::vector<std::pair<int64_t, std::unique_ptr<SweepFixture>>> cache;
  for (const auto& e : cache) {
    if (e.first == n_base * 100000 + n_query) return *e.second;
  }
  auto f = std::make_unique<SweepFixture>();
  f->base = ClusteredRows(n_base, kDim, kClusters, 0.06, 21, 22);
  f->queries = ClusteredRows(n_query, kDim, kClusters, 0.06, 21, 23);
  f->exact = ChunkedEmbeddingTopK({f->queries}, {f->base}, {1.0}, kTopK,
                                  RunContext())
                 .MoveValueOrDie();
  cache.emplace_back(n_base * 100000 + n_query, std::move(f));
  return *cache.back().second;
}

void BM_LshRecallQps(benchmark::State& state) {
  const SweepFixture& f = Sweep(20000, 2000);
  AnnConfig cfg;
  cfg.backend = AnnBackend::kLsh;
  cfg.lsh_probes = state.range(0);
  Matrix copy = f.base;
  auto index = BuildAnnIndex(std::move(copy), cfg, RunContext());
  const AnnIndex& idx = *index.ValueOrDie();
  auto first = idx.QueryBatch(f.queries, kTopK);
  state.counters["recall"] = MeasuredRecall(f.exact, first.ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.QueryBatch(f.queries, kTopK).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * f.queries.rows());
}
BENCHMARK(BM_LshRecallQps)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_HnswRecallQps(benchmark::State& state) {
  const SweepFixture& f = Sweep(10000, 2000);
  AnnConfig cfg;
  cfg.backend = AnnBackend::kHnsw;
  cfg.hnsw_ef_search = state.range(0);
  Matrix copy = f.base;
  auto index = BuildAnnIndex(std::move(copy), cfg, RunContext());
  const AnnIndex& idx = *index.ValueOrDie();
  auto first = idx.QueryBatch(f.queries, kTopK);
  state.counters["recall"] = MeasuredRecall(f.exact, first.ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.QueryBatch(f.queries, kTopK).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * f.queries.rows());
}
BENCHMARK(BM_HnswRecallQps)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// ------------------------------------------------ end-to-end headline

// The acceptance number: on a 20k x 20k fuzzer-style attributed pair,
// index-routed AlignTopK (kAuto routes at this size) vs the exact chunked
// scan, same oracle-measured recall contract as the property test. The
// exact pass runs once; its wall time and the achieved recall are attached
// to this entry as counters, so BENCH_ann.json records the speedup and the
// recall it was bought at together.
void BM_AnnAlignTopKEndToEnd(benchmark::State& state) {
  const int64_t n = state.range(0);
  struct Fixture {
    AttributedGraph src;
    AttributedGraph tgt;
    TopKAlignment exact;
    double exact_seconds;
  };
  static std::unique_ptr<Fixture> fx;
  if (!fx || fx->src.num_nodes() != n) {
    Rng gs(41), gt(42);
    fx = std::make_unique<Fixture>(Fixture{
        PowerLawGraph(n, 3 * n, 2.5, &gs,
                      ClusteredRows(n, kDim, kClusters, 0.06, 400, 401))
            .MoveValueOrDie(),
        PowerLawGraph(n, 3 * n, 2.5, &gt,
                      ClusteredRows(n, kDim, kClusters, 0.06, 400, 402))
            .MoveValueOrDie(),
        TopKAlignment{}, 0.0});
    AttributeOnlyAligner exact_aligner;
    AnnPolicy off;
    off.mode = AnnMode::kOff;
    exact_aligner.set_ann_policy(off);
    Timer timer;
    fx->exact = exact_aligner
                    .AlignTopK(fx->src, fx->tgt, Supervision{}, RunContext(),
                               kTopK)
                    .MoveValueOrDie();
    fx->exact_seconds = timer.Seconds();
  }

  AttributeOnlyAligner routed;
  AnnPolicy policy;  // kAuto: n >= min_rows, so this routes via the index
  policy.recall_target = 0.98;
  routed.set_ann_policy(policy);

  Timer timer;
  int64_t iters = 0;
  TopKAlignment last;
  for (auto _ : state) {
    last = routed.AlignTopK(fx->src, fx->tgt, Supervision{}, RunContext(),
                            kTopK)
               .MoveValueOrDie();
    benchmark::DoNotOptimize(last.index.data());
    ++iters;
  }
  const double ann_seconds = timer.Seconds() / static_cast<double>(iters);
  state.counters["recall"] = MeasuredRecall(fx->exact, last);
  state.counters["exact_seconds"] = fx->exact_seconds;
  state.counters["speedup_vs_exact"] = fx->exact_seconds / ann_seconds;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AnnAlignTopKEndToEnd)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace galign

GALIGN_BENCHMARK_MAIN();
