// Reproduces Fig. 3: robustness against structural noise. For each of the
// bn/econ/email-like networks, the target is a permuted copy with an
// increasing fraction of edges removed (10%..50%); Success@1 is reported
// per method.
//
// Expected shape (paper): all methods degrade with noise; GAlign stays on
// top (near-100% -> ~80%); FINAL is the runner-up ~20 points behind; PALE
// and REGAL fall fastest; IsoRank is poor at every level.
#include "bench/bench_common.h"

#include "align/datasets.h"
#include "graph/noise.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Fig. 3: robustness against structural noise (Success@1)", opt);

  struct Network {
    const char* name;
    Result<AttributedGraph> (*make)(Rng*, double);
  };
  const std::vector<Network> networks = {
      {"bn", &MakeBnLike}, {"econ", &MakeEconLike}, {"email", &MakeEmailLike}};
  const std::vector<double> noise_levels = {0.1, 0.2, 0.3, 0.4, 0.5};
  const double scale = opt.ScaleFactor(5.0);

  CellCache cache(opt);

  for (const Network& net : networks) {
    std::printf("--- %s ---\n", net.name);
    TextTable table({"Method", "10%", "20%", "30%", "40%", "50%"});
    AlignerSet set = MakeAlignerSet(opt);
    for (Aligner* aligner : set.all()) {
      std::vector<std::string> row{aligner->name()};
      for (double noise : noise_levels) {
        const std::string cell_key =
            std::string("fig3_") + net.name + "_" + aligner->name() + "_" +
            TextTable::Num(noise, 1);
        std::string cached;
        if (cache.Lookup(cell_key, &cached)) {
          row.push_back(std::move(cached));
          continue;
        }
        std::vector<AlignmentMetrics> runs;
        for (int run = 0; run < opt.runs; ++run) {
          Rng rng(4000 + run);
          auto base = net.make(&rng, scale);
          if (!base.ok()) continue;
          NoisyCopyOptions opts;
          opts.structural_noise = noise;
          auto pair = MakeNoisyCopyPair(base.ValueOrDie(), opts, &rng);
          if (!pair.ok()) continue;
          RunResult r = RunAligner(aligner, pair.ValueOrDie(), 0.1, &rng,
                                   BenchCellContext(opt));
          if (r.status.ok()) runs.push_back(r.metrics);
        }
        std::string cell =
            runs.empty() ? std::string("n/a")
                         : TextTable::Num(MeanMetrics(runs).success_at_1);
        cache.Store(cell_key, cell);
        row.push_back(std::move(cell));
      }
      table.AddRow(std::move(row));
    }
    EmitTable(table, opt, std::string("fig3_") + net.name);
  }
  return 0;
}
