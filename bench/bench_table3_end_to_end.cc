// Reproduces Table III: end-to-end comparison of GAlign against CENALP,
// PALE, REGAL, IsoRank, and FINAL on Douban-, Flickr/Myspace-, and
// Allmovie/Imdb-like alignment pairs. Reports MAP, AUC, Success@1,
// Success@10, and wall-clock time per method.
//
// Expected shape (paper): GAlign leads on MAP/AUC/S@1 everywhere; FINAL is
// the strongest baseline and competitive on Allmovie; every method
// ill-performs on the sparse noisy Flickr-Myspace pair; CENALP is by far
// the slowest; REGAL the fastest.
#include "bench/bench_common.h"

#include "align/datasets.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Table III: network alignment comparison", opt);

  const std::vector<DatasetSpec> specs = {
      DoubanSpec().Scaled(opt.ScaleFactor(8.0)),
      FlickrMyspaceSpec().Scaled(opt.ScaleFactor(8.0)),
      AllmovieImdbSpec().Scaled(opt.ScaleFactor(8.0)),
  };

  CellCache cache(opt);

  for (const DatasetSpec& spec : specs) {
    std::printf("--- %s (n1=%lld e1=%lld | n2=%lld e2=%lld | anchors=%lld) ---\n",
                spec.name.c_str(), (long long)spec.source_nodes,
                (long long)spec.source_edges, (long long)spec.target_nodes,
                (long long)spec.target_edges, (long long)spec.num_anchors);
    TextTable table(
        {"Method", "MAP", "AUC", "Success@1", "Success@10", "Time(s)"});

    AlignerSet set = MakeAlignerSet(opt);
    for (Aligner* aligner : set.all()) {
      const std::string cell_key = "table3_" + spec.name + "_" +
                                   aligner->name();
      std::string cached;
      if (cache.Lookup(cell_key, &cached)) {
        table.AddRow(SplitCells(cached));
        continue;
      }
      std::vector<AlignmentMetrics> runs;
      Status failure;
      for (int run = 0; run < opt.runs; ++run) {
        Rng rng(1000 + run);
        auto pair = SynthesizePair(spec, &rng);
        if (!pair.ok()) {
          failure = pair.status();
          break;
        }
        // 10% seeds per the paper's protocol; unsupervised methods ignore
        // or reject them (GAlign ignores, PALE/CENALP consume).
        RunResult r = RunAligner(aligner, pair.ValueOrDie(), 0.1, &rng,
                                 BenchCellContext(opt));
        if (!r.status.ok()) {
          failure = r.status;
          break;
        }
        runs.push_back(r.metrics);
      }
      std::vector<std::string> row;
      if (runs.empty()) {
        row = {aligner->name(), "FAILED: " + failure.ToString()};
      } else {
        AlignmentMetrics m = MeanMetrics(runs);
        row = {aligner->name(), TextTable::Num(m.map),
               TextTable::Num(m.auc), TextTable::Num(m.success_at_1),
               TextTable::Num(m.success_at_10),
               TextTable::Num(m.seconds, 2)};
      }
      cache.Store(cell_key, JoinCells(row));
      table.AddRow(std::move(row));
    }
    EmitTable(table, opt, spec.name);
  }
  return 0;
}
