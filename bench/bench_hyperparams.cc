// Hyper-parameter sensitivity beyond the paper's Figs. 6-7 (the paper
// omits these sweeps "due to space limitation", §VII-E): gamma (loss
// balance, Eq. 10), lambda (stability threshold, Eq. 13), and beta
// (influence accumulation, Eq. 14), on a Douban-like pair with moderate
// noise where both loss terms and refinement are exercised.
//
// Expected shape: a broad plateau around the paper defaults (gamma 0.8,
// lambda 0.94, beta 1.1) — the model should not be knife-edge sensitive.
#include "bench/bench_common.h"

#include "align/datasets.h"

using namespace galign;
using namespace galign::bench;

namespace {

AlignmentMetrics RunWithConfig(const GAlignConfig& cfg,
                               const AlignmentPair& pair) {
  GAlignAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target, {});
  if (!s.ok()) return {};
  return ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Hyper-parameter sensitivity (gamma / lambda / beta)", opt);

  DatasetSpec spec = DoubanSpec().Scaled(opt.ScaleFactor(8.0));
  Rng rng(11000);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();
  GAlignConfig base = BenchGAlignConfig(opt);

  {
    TextTable table({"gamma", "Success@1", "MAP"});
    for (double gamma : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      GAlignConfig cfg = base;
      cfg.gamma = gamma;
      AlignmentMetrics m = RunWithConfig(cfg, pair);
      table.AddRow({TextTable::Num(gamma, 1), TextTable::Num(m.success_at_1),
                    TextTable::Num(m.map)});
    }
    std::printf("--- gamma: consistency-vs-adaptivity balance (Eq. 10) ---\n");
    EmitTable(table, opt, "hyper_gamma");
  }

  {
    TextTable table({"lambda", "Success@1", "MAP"});
    for (double lambda : {0.80, 0.85, 0.90, 0.94, 0.98}) {
      GAlignConfig cfg = base;
      cfg.stability_threshold = lambda;
      AlignmentMetrics m = RunWithConfig(cfg, pair);
      table.AddRow({TextTable::Num(lambda, 2),
                    TextTable::Num(m.success_at_1), TextTable::Num(m.map)});
    }
    std::printf("--- lambda: stability threshold (Eq. 13) ---\n");
    EmitTable(table, opt, "hyper_lambda");
  }

  {
    TextTable table({"beta", "Success@1", "MAP"});
    for (double beta : {1.05, 1.1, 1.25, 1.5, 2.0}) {
      GAlignConfig cfg = base;
      cfg.accumulation_factor = beta;
      AlignmentMetrics m = RunWithConfig(cfg, pair);
      table.AddRow({TextTable::Num(beta, 2), TextTable::Num(m.success_at_1),
                    TextTable::Num(m.map)});
    }
    std::printf("--- beta: influence accumulation (Eq. 14) ---\n");
    EmitTable(table, opt, "hyper_beta");
  }

  {
    TextTable table({"augmentations", "Success@1", "MAP"});
    for (int n_aug : {0, 1, 2, 4, 6}) {
      GAlignConfig cfg = base;
      cfg.num_augmentations = n_aug;
      cfg.use_augmentation = n_aug > 0;
      AlignmentMetrics m = RunWithConfig(cfg, pair);
      table.AddRow({std::to_string(n_aug), TextTable::Num(m.success_at_1),
                    TextTable::Num(m.map)});
    }
    std::printf("--- number of augmented copies per network (§V-C) ---\n");
    EmitTable(table, opt, "hyper_augmentations");
  }
  return 0;
}
