// Reproduces Table V: sensitivity of Success@1 to the layer importance
// weights theta^(l) on the Allmovie-like pair (k = 2, so three weights over
// H^(0), H^(1), H^(2)). The GCN is trained once; each theta row only
// changes alignment instantiation + refinement, exactly as in the paper.
//
// Expected shape (paper): balanced weights win; single-layer rows are
// clearly worse; the attributes-only row (theta = [1, 0, 0]) collapses.
#include "bench/bench_common.h"

#include "align/datasets.h"
#include "align/metrics.h"
#include "core/refinement.h"
#include "core/trainer.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Table V: layer weights vs Success@1", opt);

  DatasetSpec spec = AllmovieImdbSpec().Scaled(opt.ScaleFactor(8.0));
  Rng rng(3000);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();

  GAlignConfig cfg = BenchGAlignConfig(opt);
  MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                    cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  auto st = trainer.Train(&gcn, pair.source, pair.target, &rng);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const std::vector<std::vector<double>> weight_rows = {
      {0.33, 0.33, 0.33}, {0.33, 0.50, 0.17}, {0.33, 0.17, 0.50},
      {0.00, 0.67, 0.33}, {0.67, 0.00, 0.33}, {0.33, 0.67, 0.00},
      {0.00, 1.00, 0.00}, {0.00, 0.00, 1.00}, {1.00, 0.00, 0.00},
  };

  TextTable table({"theta0", "theta1", "theta2", "Success@1", "MAP"});
  for (const auto& theta : weight_rows) {
    GAlignConfig run_cfg = cfg;
    run_cfg.layer_weights = theta;
    auto refined = RefineAlignment(gcn, pair.source, pair.target, run_cfg);
    if (!refined.ok()) {
      table.AddRow({TextTable::Num(theta[0], 2), TextTable::Num(theta[1], 2),
                    TextTable::Num(theta[2], 2),
                    "FAILED: " + refined.status().ToString()});
      continue;
    }
    AlignmentMetrics m =
        ComputeMetrics(refined.ValueOrDie().alignment, pair.ground_truth);
    table.AddRow({TextTable::Num(theta[0], 2), TextTable::Num(theta[1], 2),
                  TextTable::Num(theta[2], 2),
                  TextTable::Num(m.success_at_1), TextTable::Num(m.map)});
  }
  EmitTable(table, opt, "table5_layer_weights");
  return 0;
}
