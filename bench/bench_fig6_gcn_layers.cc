// Reproduces Fig. 6: effect of the number of GCN layers k on Success@1.
// For each k in 1..5 a model is trained on the Allmovie-like pair; each
// cell reports Success@1 when aligning with that single layer's embeddings
// only, and the last column uses the full multi-order combination.
//
// Also includes the activation ablation that motivates tanh (§IV-A).
//
// Expected shape (paper): k = 2 is best; deeper models get worse (the
// too-deep-GCN paradox); the multi-order column beats every single layer;
// H^(0) alone (attributes only) is near-zero.
#include "bench/bench_common.h"

#include "align/datasets.h"
#include "align/metrics.h"
#include "core/refinement.h"
#include "core/trainer.h"

using namespace galign;
using namespace galign::bench;

namespace {

// Success@1 using only layer `l` of a trained model (theta one-hot at l),
// or the uniform multi-order combination when l == -1.
double LayerSuccess(const MultiOrderGcn& gcn, const AlignmentPair& pair,
                    const GAlignConfig& cfg, int l) {
  GAlignConfig run_cfg = cfg;
  run_cfg.layer_weights.assign(cfg.num_layers + 1, 0.0);
  if (l < 0) {
    run_cfg.layer_weights.clear();  // uniform multi-order
  } else {
    run_cfg.layer_weights[l] = 1.0;
  }
  auto refined = RefineAlignment(gcn, pair.source, pair.target, run_cfg);
  if (!refined.ok()) return -1.0;
  return ComputeMetrics(refined.ValueOrDie().alignment, pair.ground_truth)
      .success_at_1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Fig. 6: #GCN layers vs Success@1", opt);

  DatasetSpec spec = AllmovieImdbSpec().Scaled(opt.ScaleFactor(10.0));
  Rng rng(7000);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();

  const int max_k = 5;
  TextTable table({"k", "H(0)", "H(1)", "H(2)", "H(3)", "H(4)", "H(5)",
                   "multi-order"});
  for (int k = 1; k <= max_k; ++k) {
    GAlignConfig cfg = BenchGAlignConfig(opt);
    cfg.num_layers = k;
    Rng train_rng(7100 + k);
    MultiOrderGcn gcn(k, pair.source.num_attributes(), cfg.embedding_dim,
                      &train_rng);
    Trainer trainer(cfg);
    if (!trainer.Train(&gcn, pair.source, pair.target, &train_rng).ok()) {
      continue;
    }
    std::vector<std::string> row{std::to_string(k)};
    for (int l = 0; l <= max_k; ++l) {
      if (l > k) {
        row.push_back("N/A");
      } else {
        row.push_back(TextTable::Num(LayerSuccess(gcn, pair, cfg, l)));
      }
    }
    row.push_back(TextTable::Num(LayerSuccess(gcn, pair, cfg, -1)));
    table.AddRow(std::move(row));
  }
  EmitTable(table, opt, "fig6_layers");

  // Activation ablation (design decision §IV-A: tanh vs relu vs linear).
  std::printf("--- activation ablation (k = 2, multi-order) ---\n");
  TextTable act_table({"activation", "Success@1", "MAP"});
  const std::vector<std::pair<const char*, Activation>> activations = {
      {"tanh", Activation::kTanh},
      {"relu", Activation::kRelu},
      {"linear", Activation::kLinear}};
  for (const auto& [name, act] : activations) {
    GAlignConfig cfg = BenchGAlignConfig(opt);
    Rng train_rng(7200);
    MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                      cfg.embedding_dim, &train_rng, act);
    Trainer trainer(cfg);
    if (!trainer.Train(&gcn, pair.source, pair.target, &train_rng).ok()) {
      act_table.AddRow({name, "diverged"});
      continue;
    }
    auto refined = RefineAlignment(gcn, pair.source, pair.target, cfg);
    if (!refined.ok()) {
      act_table.AddRow({name, "failed"});
      continue;
    }
    AlignmentMetrics m =
        ComputeMetrics(refined.ValueOrDie().alignment, pair.ground_truth);
    act_table.AddRow({name, TextTable::Num(m.success_at_1),
                      TextTable::Num(m.map)});
  }
  EmitTable(act_table, opt, "fig6_activation");
  return 0;
}
