// Reproduces Fig. 4: robustness against attribute noise on bn/econ/email-
// like networks. Only the attribute-aware methods are compared (GAlign,
// REGAL, FINAL, CENALP), as in the paper.
//
// Expected shape (paper): performance drops as attribute noise grows;
// GAlign leads at every level (near-100% -> ~60%); REGAL is more robust to
// attribute noise than FINAL and CENALP; attribute noise hurts GAlign more
// than the same amount of structural noise.
#include "bench/bench_common.h"

#include "align/datasets.h"
#include "graph/noise.h"

using namespace galign;
using namespace galign::bench;

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Fig. 4: robustness against attribute noise (Success@1)", opt);

  struct Network {
    const char* name;
    Result<AttributedGraph> (*make)(Rng*, double);
  };
  const std::vector<Network> networks = {
      {"bn", &MakeBnLike}, {"econ", &MakeEconLike}, {"email", &MakeEmailLike}};
  const std::vector<double> noise_levels = {0.1, 0.2, 0.3, 0.4, 0.5};
  const double scale = opt.ScaleFactor(5.0);

  for (const Network& net : networks) {
    std::printf("--- %s ---\n", net.name);
    TextTable table({"Method", "10%", "20%", "30%", "40%", "50%"});
    AlignerSet set = MakeAlignerSet(opt);
    const std::vector<Aligner*> attr_methods = {
        set.galign.get(), set.regal.get(), set.final_aligner.get(),
        set.cenalp.get()};
    for (Aligner* aligner : attr_methods) {
      std::vector<std::string> row{aligner->name()};
      for (double noise : noise_levels) {
        std::vector<AlignmentMetrics> runs;
        for (int run = 0; run < opt.runs; ++run) {
          Rng rng(5000 + run);
          auto base = net.make(&rng, scale);
          if (!base.ok()) continue;
          NoisyCopyOptions opts;
          opts.attribute_noise = noise;
          auto pair = MakeNoisyCopyPair(base.ValueOrDie(), opts, &rng);
          if (!pair.ok()) continue;
          RunResult r = RunAligner(aligner, pair.ValueOrDie(), 0.1, &rng);
          if (r.status.ok()) runs.push_back(r.metrics);
        }
        row.push_back(runs.empty()
                          ? std::string("n/a")
                          : TextTable::Num(MeanMetrics(runs).success_at_1));
      }
      table.AddRow(std::move(row));
    }
    EmitTable(table, opt, std::string("fig4_") + net.name);
  }
  return 0;
}
