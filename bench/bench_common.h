// Shared infrastructure for the paper-reproduction benches: CLI flags
// (--quick / --full / --runs=N / --scale=X / --resume / --budget=S), the
// standard aligner roster of Table III, small aggregation helpers, and the
// durable per-cell result cache that makes long sweeps resumable. Every
// bench binary prints the corresponding paper table/figure as fixed-width
// text.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <cctype>

#include "align/pipeline.h"
#include "common/durable_io.h"
#include "common/run_context.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"

namespace galign {
namespace bench {

/// Parsed bench options.
struct BenchOptions {
  bool full = false;    ///< paper-scale sizes (default: quick)
  int runs = 1;         ///< repetitions averaged per cell
  double scale = 0.0;   ///< explicit down-scale factor override (0 = auto)
  bool extended = false;  ///< include extra methods beyond the paper roster
  std::string csv;      ///< non-empty: write each table as <csv>_<tag>.csv
  bool resume = false;  ///< skip cells already persisted in the state dir
  std::string state_dir;  ///< durable per-cell results (--resume defaults
                          ///< it to "bench_state")
  double budget_seconds = 0.0;  ///< per-cell deadline; 0 = unbounded

  /// Down-scale factor for dataset specs: 1 (paper scale) in --full mode,
  /// otherwise the default quick factor (or the --scale override).
  double ScaleFactor(double quick_default) const {
    if (full) return 1.0;
    return scale > 0.0 ? scale : quick_default;
  }
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opt.full = true;
    if (std::strcmp(argv[i], "--quick") == 0) opt.full = false;
    if (std::strncmp(argv[i], "--runs=", 7) == 0) opt.runs = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--scale=", 8) == 0) opt.scale = std::atof(argv[i] + 8);
    if (std::strcmp(argv[i], "--extended") == 0) opt.extended = true;
    if (std::strncmp(argv[i], "--csv=", 6) == 0) opt.csv = argv[i] + 6;
    if (std::strcmp(argv[i], "--resume") == 0) opt.resume = true;
    if (std::strncmp(argv[i], "--state-dir=", 12) == 0) {
      opt.state_dir = argv[i] + 12;
    }
    if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      opt.budget_seconds = std::atof(argv[i] + 9);
    }
  }
  if (opt.runs < 1) opt.runs = 1;
  if (opt.resume && opt.state_dir.empty()) opt.state_dir = "bench_state";
  return opt;
}

/// The deadline context each table/figure cell runs under: expired cells
/// degrade to best-so-far and are flagged in the output.
inline RunContext BenchCellContext(const BenchOptions& opt) {
  if (opt.budget_seconds > 0.0) {
    return RunContext::WithTimeout(opt.budget_seconds);
  }
  return RunContext();
}

/// \brief Durable per-cell result cache behind --resume / --state-dir.
///
/// Each finished cell (one method on one dataset/noise-level) is written to
/// its own CRC-checksummed file via AtomicWriteFile, so a crashed or killed
/// sweep never leaves a torn cell; re-running with --resume replays
/// finished cells from disk and computes only the missing ones. Torn or
/// bit-rotted cell files fail CRC validation and are simply recomputed.
class CellCache {
 public:
  explicit CellCache(const BenchOptions& opt)
      : dir_(opt.state_dir), replay_(opt.resume) {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(dir_, ec);  // best effort
    }
  }

  bool enabled() const { return !dir_.empty(); }

  /// True (and fills `*value`) when `key` has a valid persisted result and
  /// replay was requested.
  bool Lookup(const std::string& key, std::string* value) const {
    if (!replay_ || dir_.empty()) return false;
    auto content = ReadFileToString(PathFor(key));
    if (!content.ok()) return false;
    auto payload = StripAndVerifyCrc32Trailer(content.ValueOrDie(),
                                              /*require_trailer=*/true, key);
    if (!payload.ok()) return false;  // torn/corrupt cell: recompute
    *value = payload.MoveValueOrDie();
    // Persisted payloads always end with the newline the trailer covers.
    if (!value->empty() && value->back() == '\n') value->pop_back();
    return true;
  }

  /// Durably persists one finished cell (no-op when caching is off).
  void Store(const std::string& key, const std::string& value) const {
    if (dir_.empty()) return;
    Status st = AtomicWriteFile(PathFor(key), AppendCrc32Trailer(value));
    if (!st.ok()) {
      std::fprintf(stderr, "cell cache write failed: %s\n",
                   st.ToString().c_str());
    }
  }

 private:
  std::string PathFor(const std::string& key) const {
    std::string clean;
    for (char c : key) {
      clean += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                c == '_' || c == '.')
                   ? c
                   : '_';
    }
    return (std::filesystem::path(dir_) / (clean + ".cell")).string();
  }

  std::string dir_;
  bool replay_;
};

/// GAlign configuration used across the benches (paper §VII-A defaults,
/// shrunk in quick mode where it only changes cost, not behaviour shape).
inline GAlignConfig BenchGAlignConfig(const BenchOptions& opt) {
  GAlignConfig cfg;
  cfg.epochs = 30;
  cfg.embedding_dim = opt.full ? 200 : 100;
  cfg.refinement_iterations = opt.full ? 20 : 8;
  return cfg;
}

/// The baseline roster of Table III. CENALP gets a bounded walk budget in
/// quick mode (it is by far the slowest method, as in the paper).
struct AlignerSet {
  std::unique_ptr<GAlignAligner> galign;
  std::unique_ptr<CenalpAligner> cenalp;
  std::unique_ptr<PaleAligner> pale;
  std::unique_ptr<RegalAligner> regal;
  std::unique_ptr<IsoRankAligner> isorank;
  std::unique_ptr<FinalAligner> final_aligner;
  // Extended roster (beyond the paper's Table III).
  std::unique_ptr<DeepLinkAligner> deeplink;
  std::unique_ptr<IoneAligner> ione;
  std::unique_ptr<NetAlignAligner> netalign;
  std::unique_ptr<UniAlignAligner> unialign;
  std::unique_ptr<DegreeRankAligner> degree_rank;
  std::unique_ptr<AttributeOnlyAligner> attribute_only;
  std::unique_ptr<RandomAligner> random_aligner;

  bool extended = false;

  /// The paper's roster, plus the extended methods when --extended is set.
  std::vector<Aligner*> all() {
    std::vector<Aligner*> out{galign.get(), cenalp.get(),  pale.get(),
                              regal.get(),  isorank.get(), final_aligner.get()};
    if (extended) {
      out.push_back(deeplink.get());
      out.push_back(ione.get());
      out.push_back(netalign.get());
      out.push_back(unialign.get());
      out.push_back(degree_rank.get());
      out.push_back(attribute_only.get());
      out.push_back(random_aligner.get());
    }
    return out;
  }
};

inline AlignerSet MakeAlignerSet(const BenchOptions& opt) {
  AlignerSet set;
  set.galign = std::make_unique<GAlignAligner>(BenchGAlignConfig(opt));
  CenalpConfig cenalp;
  cenalp.walks.walks_per_node = opt.full ? 10 : 5;
  cenalp.walks.walk_length = opt.full ? 20 : 15;
  cenalp.skipgram.epochs = opt.full ? 2 : 1;
  cenalp.skipgram.dim = opt.full ? 64 : 32;
  cenalp.expansion_rounds = opt.full ? 3 : 2;
  set.cenalp = std::make_unique<CenalpAligner>(cenalp);
  PaleConfig pale;
  pale.embedding_epochs = opt.full ? 100 : 80;
  pale.embedding_dim = opt.full ? 64 : 32;
  set.pale = std::make_unique<PaleAligner>(pale);
  set.regal = std::make_unique<RegalAligner>();
  set.isorank = std::make_unique<IsoRankAligner>();
  set.final_aligner = std::make_unique<FinalAligner>();

  set.extended = opt.extended;
  DeepLinkConfig deeplink;
  deeplink.walks.walks_per_node = opt.full ? 10 : 6;
  deeplink.walks.walk_length = opt.full ? 20 : 15;
  deeplink.skipgram.epochs = opt.full ? 3 : 2;
  deeplink.skipgram.dim = opt.full ? 64 : 32;
  set.deeplink = std::make_unique<DeepLinkAligner>(deeplink);
  IoneConfig ione;
  ione.epochs = opt.full ? 200 : 100;
  ione.dim = opt.full ? 64 : 32;
  set.ione = std::make_unique<IoneAligner>(ione);
  set.netalign = std::make_unique<NetAlignAligner>();
  set.unialign = std::make_unique<UniAlignAligner>();
  set.degree_rank = std::make_unique<DegreeRankAligner>();
  set.attribute_only = std::make_unique<AttributeOnlyAligner>();
  set.random_aligner = std::make_unique<RandomAligner>();
  return set;
}

/// Tab-joins table cells for persistence in one CellCache entry. Cells
/// never contain tabs (they are method names and formatted numbers).
inline std::string JoinCells(const std::vector<std::string>& cells) {
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out += '\t';
    out += cells[i];
  }
  return out;
}

/// Inverse of JoinCells.
inline std::vector<std::string> SplitCells(const std::string& value) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t tab = value.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(value.substr(start));
      return out;
    }
    out.push_back(value.substr(start, tab - start));
    start = tab + 1;
  }
}

/// Element-wise mean of metric bundles (used when --runs > 1).
inline AlignmentMetrics MeanMetrics(const std::vector<AlignmentMetrics>& ms) {
  AlignmentMetrics out;
  if (ms.empty()) return out;
  for (const auto& m : ms) {
    out.success_at_1 += m.success_at_1;
    out.success_at_5 += m.success_at_5;
    out.success_at_10 += m.success_at_10;
    out.map += m.map;
    out.auc += m.auc;
    out.seconds += m.seconds;
    out.num_anchors += m.num_anchors;
  }
  double n = static_cast<double>(ms.size());
  out.success_at_1 /= n;
  out.success_at_5 /= n;
  out.success_at_10 /= n;
  out.map /= n;
  out.auc /= n;
  out.seconds /= n;
  out.num_anchors = static_cast<int64_t>(out.num_anchors / ms.size());
  return out;
}

inline void PrintHeader(const char* what, const BenchOptions& opt) {
  std::printf("=== %s ===\n", what);
  std::printf("mode: %s, runs per cell: %d\n\n",
              opt.full ? "FULL (paper scale)" : "QUICK (down-scaled)",
              opt.runs);
}

/// Prints the table and, when --csv=<prefix> was passed, also writes it to
/// <prefix>_<tag>.csv (tag sanitized to [A-Za-z0-9_-]).
inline void EmitTable(const TextTable& table, const BenchOptions& opt,
                      const std::string& tag) {
  std::printf("%s\n", table.ToString().c_str());
  if (opt.csv.empty()) return;
  std::string clean;
  for (char c : tag) {
    clean += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '_')
                 ? c
                 : '_';
  }
  std::string path = opt.csv + "_" + clean + ".csv";
  Status st = table.WriteCsv(path);
  if (st.ok()) {
    std::printf("(wrote %s)\n\n", path.c_str());
  } else {
    std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace galign
