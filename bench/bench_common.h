// Shared infrastructure for the paper-reproduction benches: CLI flags
// (--quick / --full / --runs=N / --scale=X), the standard aligner roster of
// Table III, and small aggregation helpers. Every bench binary prints the
// corresponding paper table/figure as fixed-width text.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <cctype>

#include "align/pipeline.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"

namespace galign {
namespace bench {

/// Parsed bench options.
struct BenchOptions {
  bool full = false;    ///< paper-scale sizes (default: quick)
  int runs = 1;         ///< repetitions averaged per cell
  double scale = 0.0;   ///< explicit down-scale factor override (0 = auto)
  bool extended = false;  ///< include extra methods beyond the paper roster
  std::string csv;      ///< non-empty: write each table as <csv>_<tag>.csv

  /// Down-scale factor for dataset specs: 1 (paper scale) in --full mode,
  /// otherwise the default quick factor (or the --scale override).
  double ScaleFactor(double quick_default) const {
    if (full) return 1.0;
    return scale > 0.0 ? scale : quick_default;
  }
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opt.full = true;
    if (std::strcmp(argv[i], "--quick") == 0) opt.full = false;
    if (std::strncmp(argv[i], "--runs=", 7) == 0) opt.runs = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--scale=", 8) == 0) opt.scale = std::atof(argv[i] + 8);
    if (std::strcmp(argv[i], "--extended") == 0) opt.extended = true;
    if (std::strncmp(argv[i], "--csv=", 6) == 0) opt.csv = argv[i] + 6;
  }
  if (opt.runs < 1) opt.runs = 1;
  return opt;
}

/// GAlign configuration used across the benches (paper §VII-A defaults,
/// shrunk in quick mode where it only changes cost, not behaviour shape).
inline GAlignConfig BenchGAlignConfig(const BenchOptions& opt) {
  GAlignConfig cfg;
  cfg.epochs = 30;
  cfg.embedding_dim = opt.full ? 200 : 100;
  cfg.refinement_iterations = opt.full ? 20 : 8;
  return cfg;
}

/// The baseline roster of Table III. CENALP gets a bounded walk budget in
/// quick mode (it is by far the slowest method, as in the paper).
struct AlignerSet {
  std::unique_ptr<GAlignAligner> galign;
  std::unique_ptr<CenalpAligner> cenalp;
  std::unique_ptr<PaleAligner> pale;
  std::unique_ptr<RegalAligner> regal;
  std::unique_ptr<IsoRankAligner> isorank;
  std::unique_ptr<FinalAligner> final_aligner;
  // Extended roster (beyond the paper's Table III).
  std::unique_ptr<DeepLinkAligner> deeplink;
  std::unique_ptr<IoneAligner> ione;
  std::unique_ptr<NetAlignAligner> netalign;
  std::unique_ptr<UniAlignAligner> unialign;
  std::unique_ptr<DegreeRankAligner> degree_rank;
  std::unique_ptr<AttributeOnlyAligner> attribute_only;
  std::unique_ptr<RandomAligner> random_aligner;

  bool extended = false;

  /// The paper's roster, plus the extended methods when --extended is set.
  std::vector<Aligner*> all() {
    std::vector<Aligner*> out{galign.get(), cenalp.get(),  pale.get(),
                              regal.get(),  isorank.get(), final_aligner.get()};
    if (extended) {
      out.push_back(deeplink.get());
      out.push_back(ione.get());
      out.push_back(netalign.get());
      out.push_back(unialign.get());
      out.push_back(degree_rank.get());
      out.push_back(attribute_only.get());
      out.push_back(random_aligner.get());
    }
    return out;
  }
};

inline AlignerSet MakeAlignerSet(const BenchOptions& opt) {
  AlignerSet set;
  set.galign = std::make_unique<GAlignAligner>(BenchGAlignConfig(opt));
  CenalpConfig cenalp;
  cenalp.walks.walks_per_node = opt.full ? 10 : 5;
  cenalp.walks.walk_length = opt.full ? 20 : 15;
  cenalp.skipgram.epochs = opt.full ? 2 : 1;
  cenalp.skipgram.dim = opt.full ? 64 : 32;
  cenalp.expansion_rounds = opt.full ? 3 : 2;
  set.cenalp = std::make_unique<CenalpAligner>(cenalp);
  PaleConfig pale;
  pale.embedding_epochs = opt.full ? 100 : 80;
  pale.embedding_dim = opt.full ? 64 : 32;
  set.pale = std::make_unique<PaleAligner>(pale);
  set.regal = std::make_unique<RegalAligner>();
  set.isorank = std::make_unique<IsoRankAligner>();
  set.final_aligner = std::make_unique<FinalAligner>();

  set.extended = opt.extended;
  DeepLinkConfig deeplink;
  deeplink.walks.walks_per_node = opt.full ? 10 : 6;
  deeplink.walks.walk_length = opt.full ? 20 : 15;
  deeplink.skipgram.epochs = opt.full ? 3 : 2;
  deeplink.skipgram.dim = opt.full ? 64 : 32;
  set.deeplink = std::make_unique<DeepLinkAligner>(deeplink);
  IoneConfig ione;
  ione.epochs = opt.full ? 200 : 100;
  ione.dim = opt.full ? 64 : 32;
  set.ione = std::make_unique<IoneAligner>(ione);
  set.netalign = std::make_unique<NetAlignAligner>();
  set.unialign = std::make_unique<UniAlignAligner>();
  set.degree_rank = std::make_unique<DegreeRankAligner>();
  set.attribute_only = std::make_unique<AttributeOnlyAligner>();
  set.random_aligner = std::make_unique<RandomAligner>();
  return set;
}

/// Element-wise mean of metric bundles (used when --runs > 1).
inline AlignmentMetrics MeanMetrics(const std::vector<AlignmentMetrics>& ms) {
  AlignmentMetrics out;
  if (ms.empty()) return out;
  for (const auto& m : ms) {
    out.success_at_1 += m.success_at_1;
    out.success_at_5 += m.success_at_5;
    out.success_at_10 += m.success_at_10;
    out.map += m.map;
    out.auc += m.auc;
    out.seconds += m.seconds;
    out.num_anchors += m.num_anchors;
  }
  double n = static_cast<double>(ms.size());
  out.success_at_1 /= n;
  out.success_at_5 /= n;
  out.success_at_10 /= n;
  out.map /= n;
  out.auc /= n;
  out.seconds /= n;
  out.num_anchors = static_cast<int64_t>(out.num_anchors / ms.size());
  return out;
}

inline void PrintHeader(const char* what, const BenchOptions& opt) {
  std::printf("=== %s ===\n", what);
  std::printf("mode: %s, runs per cell: %d\n\n",
              opt.full ? "FULL (paper scale)" : "QUICK (down-scaled)",
              opt.runs);
}

/// Prints the table and, when --csv=<prefix> was passed, also writes it to
/// <prefix>_<tag>.csv (tag sanitized to [A-Za-z0-9_-]).
inline void EmitTable(const TextTable& table, const BenchOptions& opt,
                      const std::string& tag) {
  std::printf("%s\n", table.ToString().c_str());
  if (opt.csv.empty()) return;
  std::string clean;
  for (char c : tag) {
    clean += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '_')
                 ? c
                 : '_';
  }
  std::string path = opt.csv + "_" + clean + ".csv";
  Status st = table.WriteCsv(path);
  if (st.ok()) {
    std::printf("(wrote %s)\n\n", path.c_str());
  } else {
    std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace galign
