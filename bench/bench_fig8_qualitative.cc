// Reproduces Fig. 8: qualitative study on a toy subset of 10 movie pairs
// from the Allmovie/Imdb-like dataset. Three t-SNE projections are dumped
// as coordinate tables:
//   (a) final-layer embeddings only (the traditional single-order view)
//   (b) multi-order embeddings (all layers concatenated)
//   (c) multi-order embeddings after stability refinement
//
// Expected shape (paper): anchor pairs sit closer together in (b) than in
// (a), and (c) makes pairs more distinctive from other movies. The bench
// quantifies this with the mean anchor-pair distance / mean non-pair
// distance ratio (lower = better).
#include "bench/bench_common.h"

#include <cmath>

#include "align/datasets.h"
#include "core/refinement.h"
#include "core/trainer.h"
#include "la/ops.h"
#include "manifold/tsne.h"

using namespace galign;
using namespace galign::bench;

namespace {

// Stacks the 10 source rows then the 10 matched target rows.
Matrix StackPairs(const Matrix& s, const Matrix& t,
                  const std::vector<int64_t>& toy,
                  const std::vector<int64_t>& gt) {
  Matrix out(2 * static_cast<int64_t>(toy.size()), s.cols());
  for (size_t i = 0; i < toy.size(); ++i) {
    for (int64_t c = 0; c < s.cols(); ++c) {
      out(static_cast<int64_t>(i), c) = s(toy[i], c);
      out(static_cast<int64_t>(toy.size() + i), c) = t(gt[toy[i]], c);
    }
  }
  return out;
}

// Anchor-pair distance over mean non-pair distance in the 2-D projection.
double PairSeparationRatio(const Matrix& y) {
  const int64_t n = y.rows() / 2;
  double pair_dist = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    pair_dist += std::sqrt(RowSquaredDistance(y, i, y, n + i));
  }
  pair_dist /= static_cast<double>(n);
  double other = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < y.rows(); ++i) {
    for (int64_t j = i + 1; j < y.rows(); ++j) {
      if (j == i + n) continue;
      other += std::sqrt(RowSquaredDistance(y, i, y, j));
      ++count;
    }
  }
  other /= static_cast<double>(count);
  return pair_dist / other;
}

void PrintProjection(const char* title, const Matrix& y, int64_t pairs) {
  std::printf("%s (pair-distance ratio = %.3f; lower is better)\n", title,
              PairSeparationRatio(y));
  for (int64_t i = 0; i < pairs; ++i) {
    std::printf("  pair %2lld: A=(%7.2f, %7.2f)  B=(%7.2f, %7.2f)\n",
                (long long)i, y(i, 0), y(i, 1), y(pairs + i, 0),
                y(pairs + i, 1));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = ParseOptions(argc, argv);
  PrintHeader("Fig. 8: qualitative study (t-SNE of 10 movie pairs)", opt);

  DatasetSpec spec = AllmovieImdbSpec().Scaled(opt.ScaleFactor(15.0));
  Rng rng(9000);
  auto pair_result = SynthesizePair(spec, &rng);
  if (!pair_result.ok()) {
    std::fprintf(stderr, "%s\n", pair_result.status().ToString().c_str());
    return 1;
  }
  AlignmentPair pair = pair_result.MoveValueOrDie();

  GAlignConfig cfg = BenchGAlignConfig(opt);
  MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                    cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  if (!trainer.Train(&gcn, pair.source, pair.target, &rng).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  auto lap_s = pair.source.NormalizedAdjacency().MoveValueOrDie();
  auto lap_t = pair.target.NormalizedAdjacency().MoveValueOrDie();
  auto hs = gcn.ForwardInference(lap_s, pair.source.attributes());
  auto ht = gcn.ForwardInference(lap_t, pair.target.attributes());

  // Pick 10 anchored movies.
  std::vector<int64_t> toy;
  for (int64_t v = 0; v < pair.source.num_nodes() && toy.size() < 10; ++v) {
    if (pair.ground_truth[v] != -1) toy.push_back(v);
  }
  const int64_t pairs = static_cast<int64_t>(toy.size());

  TsneConfig tsne_cfg;
  tsne_cfg.iterations = 500;
  tsne_cfg.learning_rate = 20.0;

  // (a) traditional final-layer embeddings.
  Matrix last = StackPairs(hs.back(), ht.back(), toy, pair.ground_truth);
  auto ya = Tsne(last, tsne_cfg);
  if (ya.ok()) PrintProjection("(a) final-layer embeddings", ya.ValueOrDie(), pairs);

  // (b) multi-order embeddings (concatenation of all layers).
  std::vector<const Matrix*> parts_s, parts_t;
  for (const Matrix& h : hs) parts_s.push_back(&h);
  for (const Matrix& h : ht) parts_t.push_back(&h);
  Matrix multi = StackPairs(ConcatCols(parts_s), ConcatCols(parts_t), toy,
                            pair.ground_truth);
  auto yb = Tsne(multi, tsne_cfg);
  if (yb.ok()) PrintProjection("(b) multi-order embeddings", yb.ValueOrDie(), pairs);

  // (c) multi-order embeddings after refinement: Alg. 2's best iteration
  // returns the influence-adjusted layer embeddings directly. A lower
  // stability threshold is used for this toy demo so the refinement has
  // stable nodes to amplify even at reduced scale.
  GAlignConfig refine_cfg = cfg;
  refine_cfg.stability_threshold = 0.85;
  refine_cfg.refinement_iterations = 15;
  auto refined = RefineAlignment(gcn, pair.source, pair.target, refine_cfg);
  if (refined.ok()) {
    const RefinementResult& r = refined.ValueOrDie();
    std::printf("refinement: g(S) %.2f -> %.2f (best iteration %d)\n\n",
                r.score_history.front(), r.best_score, r.best_iteration);
    std::vector<const Matrix*> ps, pt;
    for (const Matrix& h : r.source_embeddings) ps.push_back(&h);
    for (const Matrix& h : r.target_embeddings) pt.push_back(&h);
    Matrix refined_multi =
        StackPairs(ConcatCols(ps), ConcatCols(pt), toy, pair.ground_truth);
    auto yc = Tsne(refined_multi, tsne_cfg);
    if (yc.ok()) {
      PrintProjection("(c) multi-order embeddings after refinement",
                      yc.ValueOrDie(), pairs);
    }
  }
  return 0;
}
