// galign_lint: project-contract static analysis (DESIGN.md §10).
//
// A standalone token/regex-level scanner (no libclang) that enforces the
// contracts the compiler cannot see on its own:
//
//   unchecked-status       a Status/Result<T>-returning call whose result is
//                          discarded (second net behind [[nodiscard]]).
//   banned-nondeterminism  std::random_device, rand(), time(), or a
//                          std::chrono clock ::now() outside the whitelisted
//                          homes (common/rng, common/timer,
//                          common/run_context, common/durable_io).
//   unbudgeted-alloc       Matrix::Create / SparseMatrix::Create — the raw
//                          factories PR 4 replaced with TryCreate under a
//                          reserved MemoryScope. They must not come back.
//   layering               an #include that violates the module DAG
//                          (kLayerDag below). New subsystems extend the
//                          table; everything else is a diagnostic.
//   no-naked-throw         `throw` outside test code. Library errors travel
//                          as Status/Result, never as exceptions.
//
// Diagnostics are `file:line: rule-id: message`, one per line on stdout.
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//
// Suppression: append `// galign-lint: allow(rule-id): reason` to the
// offending line. The reason is mandatory; an allow without one is itself a
// violation (rule-id `bad-allow`).
//
// Scanning model: every file is first "sanitized" — string literals,
// character literals, and comments are blanked out (line structure
// preserved) — so a clock call mentioned in a log message or a banned name
// in a comment never fires a rule. Suppression comments are read from the
// original text.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------- DAG table
//
// Allowed module-level includes under src/ ("module" = the longest DAG
// entry that path-prefixes the file, falling back to the first path
// component). A module may always include itself. Nested entries such as
// graph/ann are layered *above* their parent directory: graph/ann may use
// graph, but graph may not reach back into graph/ann. Extend this table
// when adding a subsystem; an unknown module is a diagnostic, not a free
// pass.
struct LayerRule {
  const char* module;
  std::vector<const char*> may_include;
};
const std::vector<LayerRule> kLayerDag = {
    {"common", {}},
    {"la", {"common"}},
    {"graph", {"la", "common"}},
    {"graph/ann", {"graph", "la", "common"}},
    {"autograd", {"la", "common"}},
    {"manifold", {"la", "common"}},
    {"align", {"graph", "graph/ann", "la", "common"}},
    {"baselines", {"align", "autograd", "graph", "graph/ann", "la", "common"}},
    {"core", {"align", "autograd", "graph", "graph/ann", "la", "common"}},
    // Serving sits on top of everything it reads; nothing below may
    // include serve/ (the artifact is a consumer of core + ANN, never a
    // dependency of them).
    {"serve",
     {"core", "align", "autograd", "graph", "graph/ann", "la", "common"}},
    // The hot-swap watcher drives serve/ (it publishes into AlignServer);
    // serve/ proper may never reach back up into serve/swap/.
    {"serve/swap",
     {"serve", "core", "align", "autograd", "graph", "graph/ann", "la",
      "common"}},
};

// Longest kLayerDag module that path-prefixes `path` at a '/' boundary;
// empty when none matches. "graph/ann/lsh_index.cc" resolves to graph/ann,
// not graph, so nested subsystems get their own layer rule.
std::string DagModuleOf(const std::string& path) {
  std::string best;
  for (const auto& r : kLayerDag) {
    const std::string m = r.module;
    if (path.size() > m.size() && path.compare(0, m.size(), m) == 0 &&
        path[m.size()] == '/' && m.size() > best.size()) {
      best = m;
    }
  }
  return best;
}

// Files allowed to touch clocks/entropy directly: the abstractions every
// other call site must go through (plus durable_io's retry jitter).
const std::vector<const char*> kNondeterminismHomes = {
    "common/rng.h",         "common/rng.cc",        "common/timer.h",
    "common/run_context.h", "common/durable_io.h",  "common/durable_io.cc",
};

struct Diagnostic {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

struct FileText {
  std::string path;       // path as reported in diagnostics
  std::string rel;        // path relative to the scan root, '/'-separated
  std::vector<std::string> raw;        // original lines
  std::vector<std::string> sanitized;  // strings/comments blanked
};

// Blanks string literals, char literals, // and /* */ comments with spaces,
// preserving newlines so line numbers survive. Handles raw strings
// R"delim(...)delim" and escape sequences inside quotes.
std::string Sanitize(const std::string& text) {
  std::string out(text);
  enum class St { kCode, kString, kChar, kLineComment, kBlockComment, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for raw strings: )delim"
  size_t i = 0;
  const size_t n = text.size();
  auto blank = [&](size_t at) {
    if (out[at] != '\n') out[at] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    switch (st) {
      case St::kCode:
        if (c == '"') {
          // Raw string? Look back for R / uR / u8R / LR prefix.
          size_t j = i;
          bool is_raw = false;
          if (j > 0 && text[j - 1] == 'R') {
            size_t k = j - 1;
            if (k == 0 || !(isalnum(text[k - 1]) || text[k - 1] == '_'))
              is_raw = true;
            else if (k >= 1 && (text[k - 1] == 'u' || text[k - 1] == 'U' ||
                                text[k - 1] == 'L'))
              is_raw = true;
            else if (k >= 2 && text[k - 2] == 'u' && text[k - 1] == '8')
              is_raw = true;
          }
          if (is_raw) {
            size_t open = text.find('(', i + 1);
            if (open == std::string::npos) { ++i; break; }
            raw_delim = ")" + text.substr(i + 1, open - i - 1) + "\"";
            for (size_t k = i; k <= open; ++k) blank(k);
            i = open + 1;
            st = St::kRaw;
          } else {
            blank(i);
            ++i;
            st = St::kString;
          }
        } else if (c == '\'') {
          blank(i);
          ++i;
          st = St::kChar;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          st = St::kLineComment;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          blank(i);
          blank(i + 1);
          i += 2;
          st = St::kBlockComment;
        } else {
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"') {
          blank(i);
          ++i;
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          blank(i);
          ++i;
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = i; k < i + raw_delim.size(); ++k) blank(k);
          i += raw_delim.size();
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

// `// galign-lint: allow(rule-id): reason` — returns true when `rule` is
// suppressed on this raw line. An allow with an empty reason emits a
// `bad-allow` diagnostic (once per line) instead of suppressing.
const std::regex kAllowRe(
    R"(galign-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(\S.*)?)?)");

bool LineAllows(const std::string& raw_line, const std::string& rule,
                const std::string& file, int line_no,
                std::vector<Diagnostic>* diags, std::set<int>* bad_allow_seen) {
  auto begin =
      std::sregex_iterator(raw_line.begin(), raw_line.end(), kAllowRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string allowed_rule = (*it)[1].str();
    const std::string reason = (*it)[2].matched ? (*it)[2].str() : "";
    if (reason.empty()) {
      if (bad_allow_seen->insert(line_no).second) {
        diags->push_back({file, line_no, "bad-allow",
                          "allow(" + allowed_rule +
                              ") needs a reason: `// galign-lint: allow(" +
                              allowed_rule + "): why`"});
      }
      continue;
    }
    if (allowed_rule == rule) return true;
  }
  return false;
}

// ------------------------------------------------------- rule: layering
void CheckLayering(const FileText& f, std::vector<Diagnostic>* diags,
                   std::set<int>* bad_allow) {
  if (f.rel.rfind("src/", 0) != 0) return;  // only library code is layered
  const std::string after = f.rel.substr(4);
  const size_t slash = after.find('/');
  if (slash == std::string::npos) return;
  std::string module = DagModuleOf(after);
  if (module.empty()) module = after.substr(0, slash);

  const LayerRule* rule = nullptr;
  for (const auto& r : kLayerDag)
    if (module == r.module) rule = &r;

  // Raw lines, not sanitized: the include path is itself a string literal.
  static const std::regex inc_re(R"(^\s*#\s*include\s+\"([^\"]+)\")");
  for (size_t i = 0; i < f.raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.raw[i], m, inc_re)) continue;
    const std::string target = m[1].str();
    const std::string tmodule = DagModuleOf(target);
    // Same-dir includes and non-module includes (e.g. "gtest/...") have no
    // DAG prefix and are not layered.
    if (tmodule.empty()) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (rule == nullptr) {
      if (LineAllows(f.raw[i], "layering", f.path, line_no, diags, bad_allow))
        continue;
      diags->push_back({f.path, line_no, "layering",
                        "module '" + module +
                            "' is not in the layering DAG table; add it to "
                            "kLayerDag in tools/lint/galign_lint.cc"});
      continue;
    }
    if (tmodule == module) continue;
    bool ok = false;
    for (const char* allowed : rule->may_include)
      if (tmodule == allowed) ok = true;
    if (ok) continue;
    if (LineAllows(f.raw[i], "layering", f.path, line_no, diags, bad_allow))
      continue;
    diags->push_back({f.path, line_no, "layering",
                      "'" + module + "' may not include '" + tmodule +
                          "' (allowed: self" +
                          [&] {
                            std::string s;
                            for (const char* a : rule->may_include)
                              s += std::string(", ") + a;
                            return s;
                          }() +
                          ")"});
  }
}

// --------------------------------------- rule: banned-nondeterminism
void CheckNondeterminism(const FileText& f, std::vector<Diagnostic>* diags,
                         std::set<int>* bad_allow) {
  for (const char* home : kNondeterminismHomes)
    if (EndsWith(f.rel, home)) return;

  static const std::regex bad_re(
      R"(std\s*::\s*random_device|\brand\s*\(|\bsrand\s*\(|\btime\s*\(|std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.sanitized[i], m, bad_re)) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "banned-nondeterminism", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back(
        {f.path, line_no, "banned-nondeterminism",
         "direct clock/entropy call '" + m[0].str() +
             "'; use common/rng (seeded), common/timer, or RunContext "
             "deadlines so runs stay bit-reproducible"});
  }
}

// ------------------------------------------- rule: unbudgeted-alloc
void CheckUnbudgetedAlloc(const FileText& f, std::vector<Diagnostic>* diags,
                          std::set<int>* bad_allow) {
  static const std::regex bad_re(R"(\b(Matrix|SparseMatrix)\s*::\s*Create\s*\()");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.sanitized[i], m, bad_re)) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "unbudgeted-alloc", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back({f.path, line_no, "unbudgeted-alloc",
                      m[1].str() +
                          "::Create was retired by the memory-budget work; "
                          "use " +
                          m[1].str() +
                          "::TryCreate under a reserved MemoryScope "
                          "(DESIGN.md §9)"});
  }
}

// --------------------------------------------- rule: no-naked-throw
void CheckNakedThrow(const FileText& f, std::vector<Diagnostic>* diags,
                     std::set<int>* bad_allow) {
  if (f.rel.rfind("tests/", 0) == 0) return;  // test code may throw
  static const std::regex throw_re(R"(\bthrow\b)");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.sanitized[i], m, throw_re)) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "no-naked-throw", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back({f.path, line_no, "no-naked-throw",
                      "library code reports failure through Status/Result, "
                      "never exceptions (DESIGN.md §7)"});
  }
}

// ------------------------------------------- rule: unchecked-status
//
// Phase 1 (per run): collect the names of functions declared in src/ headers
// whose return type is Status or Result<...>.  Phase 2: flag any statement
// that *begins* with a call to one of those names — i.e. the returned value
// is discarded. `(void)` casts, returns, assignments, macro wrapping, and
// condition contexts all consume the value and do not fire.
std::set<std::string> CollectStatusFunctions(
    const std::vector<FileText>& files) {
  std::set<std::string> names;
  static const std::regex decl_re(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+|inline\s+)*(?:::)?(?:galign::)?(?:Status|Result<[^;=]*>)\s+([A-Za-z_]\w*)\s*\()");
  for (const auto& f : files) {
    if (f.rel.rfind("src/", 0) != 0 || !EndsWith(f.rel, ".h")) continue;
    for (const auto& line : f.sanitized) {
      std::smatch m;
      if (std::regex_search(line, m, decl_re)) names.insert(m[1].str());
    }
  }
  // Never treat common identifier names as Status factories even if a
  // declaration matches: these collide with std/and member names too easily.
  for (const char* generic : {"OK", "get", "value", "status"})
    names.erase(generic);
  return names;
}

void CheckUncheckedStatus(const FileText& f,
                          const std::set<std::string>& status_fns,
                          std::vector<Diagnostic>* diags,
                          std::set<int>* bad_allow) {
  // Matches a line that *begins* with a call chain ending in NAME( — e.g.
  //   Foo(...);   obj.Foo(...)   ns::Obj::Foo(...)   ptr->Foo(...)
  // Anything consuming the value (return/=/(void)/macro wrap/if-cond) puts a
  // token before the chain and fails the anchored match.
  static const std::regex stmt_re(
      R"(^\s*(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)\s*\()");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    const std::string& line = f.sanitized[i];
    std::smatch m;
    if (!std::regex_search(line, m, stmt_re) || m.position(0) != 0) continue;
    const std::string name = m[1].str();
    if (status_fns.count(name) == 0) continue;
    // The value is only discarded when the statement ends right after the
    // call: balance parentheses from the call's '(' and require the next
    // token to be ';'. A following '.', '->', etc. (e.g. .CheckOK(), .ok())
    // consumes the result. Calls spanning lines are matched by scanning the
    // following lines too (bounded lookahead).
    size_t open = line.find('(', m.position(1));
    int depth = 0;
    size_t row = i, col = open;
    bool closed = false;
    for (size_t lookahead = 0; lookahead < 40 && row < f.sanitized.size();
         ++lookahead) {
      const std::string& l = f.sanitized[row];
      for (; col < l.size(); ++col) {
        if (l[col] == '(') ++depth;
        if (l[col] == ')' && --depth == 0) {
          closed = true;
          break;
        }
      }
      if (closed) break;
      ++row;
      col = 0;
    }
    if (!closed) continue;
    // Next non-space character after the close paren decides.
    char next = '\0';
    for (size_t r2 = row, c2 = col + 1; r2 < f.sanitized.size(); ++r2) {
      const std::string& l = f.sanitized[r2];
      const size_t pos = l.find_first_not_of(" \t", c2);
      if (pos != std::string::npos) {
        next = l[pos];
        break;
      }
      c2 = 0;
    }
    if (next != ';') continue;
    // Heuristic: the previous sanitized line must end a statement/block so
    // this really is an expression statement, not e.g. a continuation of
    // `return` or `=` from the line above, a declaration, or an if-cond.
    std::string prev;
    for (size_t j = i; j-- > 0;) {
      const auto& pl = f.sanitized[j];
      const size_t last = pl.find_last_not_of(" \t");
      if (last == std::string::npos) continue;
      prev = pl.substr(0, last + 1);
      break;
    }
    if (!prev.empty()) {
      const char tail = prev.back();
      if (tail != ';' && tail != '{' && tail != '}' && tail != ':') continue;
    }
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "unchecked-status", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back({f.path, line_no, "unchecked-status",
                      "result of Status/Result-returning call '" + name +
                          "' is discarded; check it, propagate it "
                          "(GALIGN_RETURN_NOT_OK), or assert it "
                          "(GALIGN_CHECK_OK)"});
  }
}

// -------------------------------------------------------------- scanning
bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

bool LoadFile(const fs::path& root, const fs::path& p, FileText* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  out->path = p.generic_string();
  out->rel = RelPath(root, p);
  out->raw = SplitLines(text);
  out->sanitized = SplitLines(Sanitize(text));
  return true;
}

void PrintDag() {
  std::printf("# galign layering DAG (module: allowed includes)\n");
  for (const auto& r : kLayerDag) {
    std::printf("%s:", r.module);
    if (r.may_include.empty()) std::printf(" (nothing below it)");
    for (const char* a : r.may_include) std::printf(" %s", a);
    std::printf("\n");
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: galign_lint [--root=DIR] [--print-dag] [paths...]\n"
      "  Scans src/ bench/ examples/ tests/ tools/ under --root (default:\n"
      "  current directory) unless explicit paths are given. Paths may be\n"
      "  files or directories. Exit: 0 clean, 1 violations, 2 error.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> paths;
  bool print_dag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path(arg.substr(7));
    } else if (arg == "--root" && i + 1 < argc) {
      root = fs::path(argv[++i]);
    } else if (arg == "--print-dag") {
      print_dag = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  if (print_dag) {
    PrintDag();
    return 0;
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "galign_lint: bad --root: %s\n", ec.message().c_str());
    return 2;
  }
  if (paths.empty()) {
    for (const char* d : {"src", "bench", "examples", "tests", "tools"}) {
      if (fs::exists(root / d)) paths.push_back(root / d);
    }
  }

  std::vector<FileText> files;
  for (const auto& p : paths) {
    const fs::path abs = p.is_absolute() ? p : root / p;
    if (!fs::exists(abs)) {
      std::fprintf(stderr, "galign_lint: no such path: %s\n",
                   abs.generic_string().c_str());
      return 2;
    }
    if (fs::is_directory(abs)) {
      for (auto it = fs::recursive_directory_iterator(abs);
           it != fs::recursive_directory_iterator(); ++it) {
        const fs::path& f = it->path();
        const std::string g = f.generic_string();
        // Fixture trees deliberately contain violations; skip them unless
        // the fixture dir itself was passed as the scan path.
        if (Contains(g, "lint_fixtures") &&
            !Contains(abs.generic_string(), "lint_fixtures")) {
          if (it->is_directory()) it.disable_recursion_pending();
          continue;
        }
        if (Contains(g, "/build")) {
          if (it->is_directory()) it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(f)) {
          FileText ft;
          if (LoadFile(root, f, &ft)) files.push_back(std::move(ft));
        }
      }
    } else if (IsSourceFile(abs)) {
      FileText ft;
      if (LoadFile(root, abs, &ft)) files.push_back(std::move(ft));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileText& a, const FileText& b) { return a.rel < b.rel; });

  const std::set<std::string> status_fns = CollectStatusFunctions(files);

  std::vector<Diagnostic> diags;
  for (const auto& f : files) {
    std::set<int> bad_allow_seen;
    CheckLayering(f, &diags, &bad_allow_seen);
    CheckNondeterminism(f, &diags, &bad_allow_seen);
    CheckUnbudgetedAlloc(f, &diags, &bad_allow_seen);
    CheckNakedThrow(f, &diags, &bad_allow_seen);
    CheckUncheckedStatus(f, status_fns, &diags, &bad_allow_seen);
  }

  for (const auto& d : diags) {
    std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "galign_lint: %zu violation(s) in %zu file(s)\n",
                 diags.size(), files.size());
    return 1;
  }
  std::printf("galign_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
