// galign_lint: project-contract static analysis (DESIGN.md §10).
//
// A standalone token/regex-level scanner (no libclang) that enforces the
// contracts the compiler cannot see on its own:
//
//   unchecked-status       a Status/Result<T>-returning call whose result is
//                          discarded (second net behind [[nodiscard]]).
//   banned-nondeterminism  std::random_device, rand(), time(), or a
//                          std::chrono clock ::now() outside the whitelisted
//                          homes (common/rng, common/timer,
//                          common/run_context, common/durable_io).
//   unbudgeted-alloc       Matrix::Create / SparseMatrix::Create — the raw
//                          factories PR 4 replaced with TryCreate under a
//                          reserved MemoryScope. They must not come back.
//   layering               an #include that violates the module DAG
//                          (kLayerDag below). New subsystems extend the
//                          table; everything else is a diagnostic.
//   no-naked-throw         `throw` outside test code. Library errors travel
//                          as Status/Result, never as exceptions.
//
// Flow-aware rules (DESIGN.md §14) — built on a token-level function
// segmenter + name-based cross-TU call graph, not just per-line patterns:
//
//   context-dropped        a function holding a RunContext/CancelToken
//                          parameter calls a deadline-aware callee (any
//                          src/ function taking a context) without
//                          forwarding it, or never consults the parameter.
//   fault-site-audit       every fault site instrumented in src/ must be
//                          armed by a test; armed-but-nonexistent sites and
//                          one-edit-apart near-duplicates are violations.
//                          Full-tree scans only. --fault-audit prints the
//                          coverage table (always present in JSON).
//   budget-discipline      TryReserve must pair with Release/MemoryScope in
//                          the same function; TryCreate results must be
//                          ok()-checked before ValueOrDie.
//   guarded-by             `// galign: guarded_by(mu_)` annotations checked
//                          against lock acquisitions in every function that
//                          touches the annotated symbol (`Locked` suffix and
//                          `// galign: requires_lock(mu_)` exempt).
//
// Output: text (default) `file:line: rule-id: message`, or --format=json.
// A committed baseline (--baseline=FILE, maintained by --write-baseline)
// grandfathers (rule,file) pairs without touching the code.
//
// Diagnostics are `file:line: rule-id: message`, one per line on stdout.
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//
// Suppression: append `// galign-lint: allow(rule-id): reason` to the
// offending line. The reason is mandatory; an allow without one is itself a
// violation (rule-id `bad-allow`).
//
// Scanning model: every file is first "sanitized" — string literals,
// character literals, and comments are blanked out (line structure
// preserved) — so a clock call mentioned in a log message or a banned name
// in a comment never fires a rule. Suppression comments are read from the
// original text.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------- DAG table
//
// Allowed module-level includes under src/ ("module" = the longest DAG
// entry that path-prefixes the file, falling back to the first path
// component). A module may always include itself. Nested entries such as
// graph/ann are layered *above* their parent directory: graph/ann may use
// graph, but graph may not reach back into graph/ann. Extend this table
// when adding a subsystem; an unknown module is a diagnostic, not a free
// pass.
struct LayerRule {
  const char* module;
  std::vector<const char*> may_include;
};
const std::vector<LayerRule> kLayerDag = {
    {"common", {}},
    {"la", {"common"}},
    {"graph", {"la", "common"}},
    {"graph/ann", {"graph", "la", "common"}},
    {"autograd", {"la", "common"}},
    {"manifold", {"la", "common"}},
    {"align", {"graph", "graph/ann", "la", "common"}},
    {"baselines", {"align", "autograd", "graph", "graph/ann", "la", "common"}},
    {"core", {"align", "autograd", "graph", "graph/ann", "la", "common"}},
    // Serving sits on top of everything it reads; nothing below may
    // include serve/ (the artifact is a consumer of core + ANN, never a
    // dependency of them).
    {"serve",
     {"core", "align", "autograd", "graph", "graph/ann", "la", "common"}},
    // The hot-swap watcher drives serve/ (it publishes into AlignServer);
    // serve/ proper may never reach back up into serve/swap/.
    {"serve/swap",
     {"serve", "core", "align", "autograd", "graph", "graph/ann", "la",
      "common"}},
};

// Longest kLayerDag module that path-prefixes `path` at a '/' boundary;
// empty when none matches. "graph/ann/lsh_index.cc" resolves to graph/ann,
// not graph, so nested subsystems get their own layer rule.
std::string DagModuleOf(const std::string& path) {
  std::string best;
  for (const auto& r : kLayerDag) {
    const std::string m = r.module;
    if (path.size() > m.size() && path.compare(0, m.size(), m) == 0 &&
        path[m.size()] == '/' && m.size() > best.size()) {
      best = m;
    }
  }
  return best;
}

// Files allowed to touch clocks/entropy directly: the abstractions every
// other call site must go through (plus durable_io's retry jitter).
const std::vector<const char*> kNondeterminismHomes = {
    "common/rng.h",         "common/rng.cc",        "common/timer.h",
    "common/run_context.h", "common/durable_io.h",  "common/durable_io.cc",
};

struct Diagnostic {
  std::string file;
  int line;
  std::string rule;
  std::string message;
  std::string rel{};  // scan-root-relative path; filled in before output
};

struct FileText {
  std::string path;       // path as reported in diagnostics
  std::string rel;        // path relative to the scan root, '/'-separated
  std::vector<std::string> raw;        // original lines
  std::vector<std::string> sanitized;  // strings/comments blanked
};

// Blanks string literals, char literals, // and /* */ comments with spaces,
// preserving newlines so line numbers survive. Handles raw strings
// R"delim(...)delim" and escape sequences inside quotes.
std::string Sanitize(const std::string& text) {
  std::string out(text);
  enum class St { kCode, kString, kChar, kLineComment, kBlockComment, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for raw strings: )delim"
  size_t i = 0;
  const size_t n = text.size();
  auto blank = [&](size_t at) {
    if (out[at] != '\n') out[at] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    switch (st) {
      case St::kCode:
        if (c == '"') {
          // Raw string? Look back for R / uR / u8R / LR prefix.
          size_t j = i;
          bool is_raw = false;
          if (j > 0 && text[j - 1] == 'R') {
            size_t k = j - 1;
            if (k == 0 || !(isalnum(text[k - 1]) || text[k - 1] == '_'))
              is_raw = true;
            else if (k >= 1 && (text[k - 1] == 'u' || text[k - 1] == 'U' ||
                                text[k - 1] == 'L'))
              is_raw = true;
            else if (k >= 2 && text[k - 2] == 'u' && text[k - 1] == '8')
              is_raw = true;
          }
          if (is_raw) {
            size_t open = text.find('(', i + 1);
            if (open == std::string::npos) { ++i; break; }
            raw_delim = ")" + text.substr(i + 1, open - i - 1) + "\"";
            for (size_t k = i; k <= open; ++k) blank(k);
            i = open + 1;
            st = St::kRaw;
          } else {
            blank(i);
            ++i;
            st = St::kString;
          }
        } else if (c == '\'') {
          blank(i);
          ++i;
          st = St::kChar;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          st = St::kLineComment;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          blank(i);
          blank(i + 1);
          i += 2;
          st = St::kBlockComment;
        } else {
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"') {
          blank(i);
          ++i;
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          blank(i);
          ++i;
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = i; k < i + raw_delim.size(); ++k) blank(k);
          i += raw_delim.size();
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

// `// galign-lint: allow(rule-id): reason` — returns true when `rule` is
// suppressed on this raw line. An allow with an empty reason emits a
// `bad-allow` diagnostic (once per line) instead of suppressing.
const std::regex kAllowRe(
    R"(galign-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(\S.*)?)?)");

bool LineAllows(const std::string& raw_line, const std::string& rule,
                const std::string& file, int line_no,
                std::vector<Diagnostic>* diags, std::set<int>* bad_allow_seen) {
  auto begin =
      std::sregex_iterator(raw_line.begin(), raw_line.end(), kAllowRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string allowed_rule = (*it)[1].str();
    const std::string reason = (*it)[2].matched ? (*it)[2].str() : "";
    if (reason.empty()) {
      if (bad_allow_seen->insert(line_no).second) {
        diags->push_back({file, line_no, "bad-allow",
                          "allow(" + allowed_rule +
                              ") needs a reason: `// galign-lint: allow(" +
                              allowed_rule + "): why`"});
      }
      continue;
    }
    if (allowed_rule == rule) return true;
  }
  return false;
}

// ------------------------------------------------------- rule: layering
void CheckLayering(const FileText& f, std::vector<Diagnostic>* diags,
                   std::set<int>* bad_allow) {
  if (f.rel.rfind("src/", 0) != 0) return;  // only library code is layered
  const std::string after = f.rel.substr(4);
  const size_t slash = after.find('/');
  if (slash == std::string::npos) return;
  std::string module = DagModuleOf(after);
  if (module.empty()) module = after.substr(0, slash);

  const LayerRule* rule = nullptr;
  for (const auto& r : kLayerDag)
    if (module == r.module) rule = &r;

  // Raw lines, not sanitized: the include path is itself a string literal.
  static const std::regex inc_re(R"(^\s*#\s*include\s+\"([^\"]+)\")");
  for (size_t i = 0; i < f.raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.raw[i], m, inc_re)) continue;
    const std::string target = m[1].str();
    const std::string tmodule = DagModuleOf(target);
    // Same-dir includes and non-module includes (e.g. "gtest/...") have no
    // DAG prefix and are not layered.
    if (tmodule.empty()) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (rule == nullptr) {
      if (LineAllows(f.raw[i], "layering", f.path, line_no, diags, bad_allow))
        continue;
      diags->push_back({f.path, line_no, "layering",
                        "module '" + module +
                            "' is not in the layering DAG table; add it to "
                            "kLayerDag in tools/lint/galign_lint.cc"});
      continue;
    }
    if (tmodule == module) continue;
    bool ok = false;
    for (const char* allowed : rule->may_include)
      if (tmodule == allowed) ok = true;
    if (ok) continue;
    if (LineAllows(f.raw[i], "layering", f.path, line_no, diags, bad_allow))
      continue;
    diags->push_back({f.path, line_no, "layering",
                      "'" + module + "' may not include '" + tmodule +
                          "' (allowed: self" +
                          [&] {
                            std::string s;
                            for (const char* a : rule->may_include)
                              s += std::string(", ") + a;
                            return s;
                          }() +
                          ")"});
  }
}

// --------------------------------------- rule: banned-nondeterminism
void CheckNondeterminism(const FileText& f, std::vector<Diagnostic>* diags,
                         std::set<int>* bad_allow) {
  for (const char* home : kNondeterminismHomes)
    if (EndsWith(f.rel, home)) return;

  static const std::regex bad_re(
      R"(std\s*::\s*random_device|\brand\s*\(|\bsrand\s*\(|\btime\s*\(|std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.sanitized[i], m, bad_re)) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "banned-nondeterminism", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back(
        {f.path, line_no, "banned-nondeterminism",
         "direct clock/entropy call '" + m[0].str() +
             "'; use common/rng (seeded), common/timer, or RunContext "
             "deadlines so runs stay bit-reproducible"});
  }
}

// ------------------------------------------- rule: unbudgeted-alloc
void CheckUnbudgetedAlloc(const FileText& f, std::vector<Diagnostic>* diags,
                          std::set<int>* bad_allow) {
  static const std::regex bad_re(R"(\b(Matrix|SparseMatrix)\s*::\s*Create\s*\()");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.sanitized[i], m, bad_re)) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "unbudgeted-alloc", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back({f.path, line_no, "unbudgeted-alloc",
                      m[1].str() +
                          "::Create was retired by the memory-budget work; "
                          "use " +
                          m[1].str() +
                          "::TryCreate under a reserved MemoryScope "
                          "(DESIGN.md §9)"});
  }
}

// --------------------------------------------- rule: no-naked-throw
void CheckNakedThrow(const FileText& f, std::vector<Diagnostic>* diags,
                     std::set<int>* bad_allow) {
  if (f.rel.rfind("tests/", 0) == 0) return;  // test code may throw
  static const std::regex throw_re(R"(\bthrow\b)");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.sanitized[i], m, throw_re)) continue;
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "no-naked-throw", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back({f.path, line_no, "no-naked-throw",
                      "library code reports failure through Status/Result, "
                      "never exceptions (DESIGN.md §7)"});
  }
}

// ------------------------------------------- rule: unchecked-status
//
// Phase 1 (per run): collect the names of functions declared in src/ headers
// whose return type is Status or Result<...>.  Phase 2: flag any statement
// that *begins* with a call to one of those names — i.e. the returned value
// is discarded. `(void)` casts, returns, assignments, macro wrapping, and
// condition contexts all consume the value and do not fire.
std::set<std::string> CollectStatusFunctions(
    const std::vector<FileText>& files) {
  std::set<std::string> names;
  static const std::regex decl_re(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+|inline\s+)*(?:::)?(?:galign::)?(?:Status|Result<[^;=]*>)\s+([A-Za-z_]\w*)\s*\()");
  for (const auto& f : files) {
    if (f.rel.rfind("src/", 0) != 0 || !EndsWith(f.rel, ".h")) continue;
    for (const auto& line : f.sanitized) {
      std::smatch m;
      if (std::regex_search(line, m, decl_re)) names.insert(m[1].str());
    }
  }
  // Never treat common identifier names as Status factories even if a
  // declaration matches: these collide with std/and member names too easily.
  for (const char* generic : {"OK", "get", "value", "status"})
    names.erase(generic);
  return names;
}

void CheckUncheckedStatus(const FileText& f,
                          const std::set<std::string>& status_fns,
                          std::vector<Diagnostic>* diags,
                          std::set<int>* bad_allow) {
  // Matches a line that *begins* with a call chain ending in NAME( — e.g.
  //   Foo(...);   obj.Foo(...)   ns::Obj::Foo(...)   ptr->Foo(...)
  // Anything consuming the value (return/=/(void)/macro wrap/if-cond) puts a
  // token before the chain and fails the anchored match.
  static const std::regex stmt_re(
      R"(^\s*(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)\s*\()");
  for (size_t i = 0; i < f.sanitized.size(); ++i) {
    const std::string& line = f.sanitized[i];
    std::smatch m;
    if (!std::regex_search(line, m, stmt_re) || m.position(0) != 0) continue;
    const std::string name = m[1].str();
    if (status_fns.count(name) == 0) continue;
    // The value is only discarded when the statement ends right after the
    // call: balance parentheses from the call's '(' and require the next
    // token to be ';'. A following '.', '->', etc. (e.g. .CheckOK(), .ok())
    // consumes the result. Calls spanning lines are matched by scanning the
    // following lines too (bounded lookahead).
    size_t open = line.find('(', m.position(1));
    int depth = 0;
    size_t row = i, col = open;
    bool closed = false;
    for (size_t lookahead = 0; lookahead < 40 && row < f.sanitized.size();
         ++lookahead) {
      const std::string& l = f.sanitized[row];
      for (; col < l.size(); ++col) {
        if (l[col] == '(') ++depth;
        if (l[col] == ')' && --depth == 0) {
          closed = true;
          break;
        }
      }
      if (closed) break;
      ++row;
      col = 0;
    }
    if (!closed) continue;
    // Next non-space character after the close paren decides.
    char next = '\0';
    for (size_t r2 = row, c2 = col + 1; r2 < f.sanitized.size(); ++r2) {
      const std::string& l = f.sanitized[r2];
      const size_t pos = l.find_first_not_of(" \t", c2);
      if (pos != std::string::npos) {
        next = l[pos];
        break;
      }
      c2 = 0;
    }
    if (next != ';') continue;
    // Heuristic: the previous sanitized line must end a statement/block so
    // this really is an expression statement, not e.g. a continuation of
    // `return` or `=` from the line above, a declaration, or an if-cond.
    std::string prev;
    for (size_t j = i; j-- > 0;) {
      const auto& pl = f.sanitized[j];
      const size_t last = pl.find_last_not_of(" \t");
      if (last == std::string::npos) continue;
      prev = pl.substr(0, last + 1);
      break;
    }
    if (!prev.empty()) {
      const char tail = prev.back();
      if (tail != ';' && tail != '{' && tail != '}' && tail != ':') continue;
    }
    const int line_no = static_cast<int>(i) + 1;
    if (LineAllows(f.raw[i], "unchecked-status", f.path, line_no, diags,
                   bad_allow))
      continue;
    diags->push_back({f.path, line_no, "unchecked-status",
                      "result of Status/Result-returning call '" + name +
                          "' is discarded; check it, propagate it "
                          "(GALIGN_RETURN_NOT_OK), or assert it "
                          "(GALIGN_CHECK_OK)"});
  }
}

// ===================================================== flow-aware analysis
//
// The four contract rules below (context-dropped, fault-site-audit,
// budget-discipline, guarded-by) need more than per-line pattern matching:
// they reason about *functions* — their parameters, their bodies, and the
// calls they make. A full C++ parse is out of scope for a dependency-free
// TU, so the segmenter here is a pragmatic token-level pass over the
// sanitized text: good enough to recover function extents, parameter
// lists, and name-based call sites across every TU we scan, and honest
// about its limits (name-based linking, no overload resolution). Every
// rule built on it keeps the same allow()/baseline escape hatches as the
// per-line rules, so a mis-segmented corner case is a one-line
// suppression, never a blocked commit.

struct Token {
  std::string text;
  int line = 0;  // 1-based
  bool ident = false;
};

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",         "for",          "while",      "switch",
      "return",     "sizeof",       "catch",      "do",
      "else",       "case",         "new",        "delete",
      "goto",       "break",        "continue",   "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast",
      "alignof",    "decltype",     "noexcept",   "throw",
      "co_return",  "co_await",     "co_yield",   "typeid",
      "assert",     "defined"};
  return kw.count(s) > 0;
}

// Tokens from the sanitized text. Preprocessor directives (and their
// backslash continuations) are dropped entirely so multi-line macro bodies
// like GALIGN_RETURN_NOT_OK never unbalance the segmenter's brace count.
std::vector<Token> Tokenize(const std::vector<std::string>& sanitized) {
  std::vector<Token> toks;
  bool in_pp = false;
  for (size_t ln = 0; ln < sanitized.size(); ++ln) {
    const std::string& l = sanitized[ln];
    const size_t first = l.find_first_not_of(" \t");
    if (!in_pp && first != std::string::npos && l[first] == '#') in_pp = true;
    if (in_pp) {
      const size_t last = l.find_last_not_of(" \t");
      in_pp = (last != std::string::npos && l[last] == '\\');
      continue;
    }
    for (size_t i = 0; i < l.size();) {
      const char c = l[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < l.size() &&
               (std::isalnum(static_cast<unsigned char>(l[j])) || l[j] == '_'))
          ++j;
        toks.push_back({l.substr(i, j - i), static_cast<int>(ln) + 1, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < l.size() &&
               (std::isalnum(static_cast<unsigned char>(l[j])) ||
                l[j] == '_' || l[j] == '.' || l[j] == '\''))
          ++j;
        toks.push_back({l.substr(i, j - i), static_cast<int>(ln) + 1, false});
        i = j;
      } else if (c == ':' && i + 1 < l.size() && l[i + 1] == ':') {
        toks.push_back({"::", static_cast<int>(ln) + 1, false});
        i += 2;
      } else if (c == '-' && i + 1 < l.size() && l[i + 1] == '>') {
        toks.push_back({"->", static_cast<int>(ln) + 1, false});
        i += 2;
      } else {
        toks.push_back({std::string(1, c), static_cast<int>(ln) + 1, false});
        ++i;
      }
    }
  }
  return toks;
}

struct Param {
  std::string text;      // space-joined declaration tokens
  std::string name;      // declared name; "" when unnamed/not recovered
  bool is_ctx = false;   // RunContext / CancelToken typed
};

struct CallSite {
  std::string callee;  // identifier immediately before the '('
  int line = 0;
  std::set<std::string> arg_idents;  // every identifier inside the parens
};

struct FunctionInfo {
  std::string name;  // "Align", "~AlignServer", "operator=" ...
  std::string qual;  // enclosing class / out-of-line qualifier, or ""
  bool is_ctor_dtor = false;
  bool has_body = false;
  int sig_line = 0;
  int body_begin = 0, body_end = 0;  // 1-based line extent of { ... }
  std::vector<Param> params;
  std::vector<CallSite> calls;
  std::set<std::string> body_idents;
};

// Token-level function segmenter. Walks one file's token stream tracking
// namespace/class scope, recognises `name ( params ) quals { body }` and
// `name ( params ) ;` shapes (plus ctor-init lists, trailing return types,
// operator overloads, = 0/default/delete), and extracts per-function call
// sites while consuming bodies. Anything it cannot shape-match it skips
// without recording — unknown constructs cost recall, never a crash.
class Segmenter {
 public:
  explicit Segmenter(const std::vector<Token>& toks)
      : t_(toks), n_(toks.size()) {}

  std::vector<FunctionInfo> Run() {
    size_t guard = 0;
    while (i_ < n_ && ++guard < 4 * n_ + 64) Step();
    return std::move(fns_);
  }

 private:
  void Step() {
    const std::string& s = t_[i_].text;
    if (s == "namespace") {
      ParseNamespace();
    } else if (s == "class" || s == "struct" || s == "union") {
      ParseClassHead();
    } else if (s == "enum") {
      SkipEnum();
    } else if (s == "using" || s == "typedef" || s == "static_assert") {
      SkipToSemi();
    } else if (s == "template") {
      ++i_;
      SkipAngles();
    } else if ((s == "public" || s == "private" || s == "protected") &&
               i_ + 1 < n_ && t_[i_ + 1].text == ":") {
      i_ += 2;
    } else if (s == "{") {
      scopes_.push_back("");
      ++i_;
    } else if (s == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
    } else if (s == ";" || s == ",") {
      ++i_;
    } else {
      ParseDeclish();
    }
  }

  void SkipBalanced(const char* open, const char* close) {
    int depth = 0;
    while (i_ < n_) {
      const std::string& s = t_[i_].text;
      if (s == open) ++depth;
      if (s == close && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  // `;` at zero brace/paren depth ends the statement (lambda bodies inside
  // initializers contain semicolons of their own).
  void SkipToSemi() {
    int bd = 0, pd = 0;
    while (i_ < n_) {
      const std::string& s = t_[i_].text;
      if (s == "{") ++bd;
      else if (s == "}") --bd;
      else if (s == "(") ++pd;
      else if (s == ")") --pd;
      else if (s == ";" && bd <= 0 && pd <= 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  void SkipAngles() {
    if (i_ >= n_ || t_[i_].text != "<") return;
    int depth = 0;
    while (i_ < n_) {
      const std::string& s = t_[i_].text;
      if (s == "<") ++depth;
      if (s == ">" && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  void ParseNamespace() {
    ++i_;
    while (i_ < n_ && (t_[i_].ident || t_[i_].text == "::")) ++i_;
    if (i_ < n_ && t_[i_].text == "=") {
      SkipToSemi();  // namespace alias
      return;
    }
    if (i_ < n_ && t_[i_].text == "{") {
      scopes_.push_back("");
      ++i_;
    }
  }

  void ParseClassHead() {
    ++i_;
    std::string name;
    while (i_ < n_ && (t_[i_].ident || t_[i_].text == "final")) {
      if (t_[i_].ident && t_[i_].text != "final") name = t_[i_].text;
      ++i_;
    }
    if (i_ < n_ && t_[i_].text == ":") {  // base clause
      int angle = 0;
      while (i_ < n_) {
        const std::string& s = t_[i_].text;
        if (s == "<") ++angle;
        else if (s == ">") --angle;
        else if ((s == "{" && angle <= 0) || s == ";") break;
        ++i_;
      }
    }
    if (i_ < n_ && t_[i_].text == "{") {
      scopes_.push_back(name);
      ++i_;
    }
  }

  void SkipEnum() {
    ++i_;
    while (i_ < n_ && t_[i_].text != "{" && t_[i_].text != ";") ++i_;
    if (i_ < n_ && t_[i_].text == "{") SkipBalanced("{", "}");
  }

  // One declaration-or-definition statement at namespace/class scope.
  void ParseDeclish() {
    int angle = 0;
    std::string prev_ident, qual;
    bool tilde = false, after_colons = false;
    while (i_ < n_) {
      const Token& tk = t_[i_];
      const std::string& s = tk.text;
      if (s == ";") {
        ++i_;
        return;
      }
      if (s == "}") return;  // let Step() pop the scope
      if (s == "=") {
        SkipToSemi();
        return;
      }
      if (s == "{") {  // brace-init or inline aggregate; skip and continue
        SkipBalanced("{", "}");
        continue;
      }
      if (s == "<") {
        ++angle;
        ++i_;
        continue;
      }
      if (s == ">") {
        if (angle > 0) --angle;
        ++i_;
        continue;
      }
      if (s == "~") {
        tilde = true;
        ++i_;
        continue;
      }
      if (s == "::") {
        after_colons = true;
        ++i_;
        continue;
      }
      if (tk.ident && s == "operator") {
        ParseOperator(after_colons ? prev_ident : CurrentClass());
        return;
      }
      if (tk.ident) {
        if (angle == 0) {
          qual = after_colons ? prev_ident : "";
          prev_ident = s;
        }
        after_colons = false;
        ++i_;
        continue;
      }
      if (s == "(") {
        if (angle == 0 && !prev_ident.empty() && !IsKeyword(prev_ident) &&
            TryFunction(prev_ident, qual, tilde, tk.line))
          return;
        SkipBalanced("(", ")");
        continue;
      }
      after_colons = false;
      ++i_;  // & * [ ] , : attributes ...
    }
  }

  std::string CurrentClass() const {
    return scopes_.empty() ? std::string() : scopes_.back();
  }

  void ParseOperator(const std::string& qual) {
    const size_t save = i_;
    const int line = t_[i_].line;
    ++i_;  // past 'operator'
    std::string op;
    if (i_ + 1 < n_ && t_[i_].text == "(" && t_[i_ + 1].text == ")") {
      op = "()";
      i_ += 2;
    } else {
      while (i_ < n_ && t_[i_].text != "(" && t_[i_].text != ";" &&
             t_[i_].text != "{")
        op += t_[i_++].text;
    }
    if (i_ >= n_ || t_[i_].text != "(" ||
        !TryFunction("operator" + op, qual, false, line)) {
      i_ = save + 1;  // make progress; body (if any) parses as a scope
    }
  }

  bool TryFunction(const std::string& raw_name, const std::string& qual,
                   bool tilde, int line) {
    const size_t save = i_;
    FunctionInfo fn;
    fn.name = (tilde ? "~" : "") + raw_name;
    fn.qual = qual;
    fn.sig_line = line;
    const std::string cls = !qual.empty() ? qual : CurrentClass();
    fn.is_ctor_dtor = tilde || (!cls.empty() && raw_name == cls);
    if (!ParseParams(&fn.params)) {
      i_ = save;
      return false;
    }
    while (i_ < n_) {  // trailing qualifiers
      const std::string& s = t_[i_].text;
      if (s == "const" || s == "override" || s == "final" || s == "&" ||
          s == "&&" || s == "mutable" || s == "volatile" || s == "try") {
        ++i_;
      } else if (s == "noexcept") {
        ++i_;
        if (i_ < n_ && t_[i_].text == "(") SkipBalanced("(", ")");
      } else if (s == "->") {  // trailing return type
        ++i_;
        int angle = 0;
        while (i_ < n_) {
          const std::string& r = t_[i_].text;
          if (r == "<") ++angle;
          else if (r == ">") { if (angle > 0) --angle; }
          else if (angle == 0 && (r == "{" || r == ";" || r == "=")) break;
          ++i_;
        }
      } else {
        break;
      }
    }
    if (i_ >= n_) {
      i_ = save;
      return false;
    }
    const std::string& s = t_[i_].text;
    if (s == ";") {
      ++i_;
      fns_.push_back(std::move(fn));
      return true;
    }
    if (s == "=") {
      if (i_ + 1 < n_ &&
          (t_[i_ + 1].text == "0" || t_[i_ + 1].text == "default" ||
           t_[i_ + 1].text == "delete")) {
        SkipToSemi();
        fns_.push_back(std::move(fn));
        return true;
      }
      i_ = save;
      return false;
    }
    if (s == ":") {
      if (!fn.is_ctor_dtor || !SkipCtorInit()) {
        i_ = save;
        return false;
      }
    }
    if (i_ < n_ && t_[i_].text == "{") {
      fn.has_body = true;
      ConsumeBody(&fn);
      fns_.push_back(std::move(fn));
      return true;
    }
    i_ = save;
    return false;
  }

  // Positioned at ':'. Consumes member initializers up to the body '{'.
  // A '{' directly after ')' or '}' is the body; after an identifier or
  // '>' it is a brace-initializer and is skipped whole.
  bool SkipCtorInit() {
    ++i_;
    int pd = 0;
    std::string last = ":";
    while (i_ < n_) {
      const std::string& s = t_[i_].text;
      if (s == "(") {
        ++pd;
      } else if (s == ")") {
        --pd;
      } else if (s == "{" && pd == 0) {
        if (last == ")" || last == "}") return true;
        SkipBalanced("{", "}");
        last = "}";
        continue;
      } else if (s == ";") {
        return false;
      }
      last = s;
      ++i_;
    }
    return false;
  }

  bool ParseParams(std::vector<Param>* out) {
    ++i_;  // past '('
    int pd = 1, ad = 0, bd = 0, sd = 0;
    std::vector<Token> cur;
    auto flush = [&]() {
      if (cur.empty()) return;
      Param p;
      size_t end = cur.size();  // tokens before any default argument
      for (size_t k = 0; k < cur.size(); ++k) {
        p.text += (k ? " " : "") + cur[k].text;
        if (cur[k].text == "RunContext" || cur[k].text == "CancelToken")
          p.is_ctx = true;
        if (cur[k].text == "=" && end == cur.size()) end = k;
      }
      for (size_t k = end; k-- > 0;) {
        if (!cur[k].ident) continue;
        const std::string& c = cur[k].text;
        // Project style: parameter names are lower_snake; an Uppercase
        // token in name position means the parameter is unnamed.
        if (!IsKeyword(c) && !(c[0] >= 'A' && c[0] <= 'Z')) p.name = c;
        break;
      }
      out->push_back(std::move(p));
      cur.clear();
    };
    size_t guard = 0;
    while (i_ < n_ && ++guard < 100000) {
      const Token& tk = t_[i_];
      const std::string& s = tk.text;
      if (s == "(") ++pd;
      else if (s == ")") {
        if (--pd == 0) {
          flush();
          ++i_;
          return true;
        }
      } else if (s == "<") ++ad;
      else if (s == ">") { if (ad > 0) --ad; }
      else if (s == "{") ++bd;
      else if (s == "}") {
        if (bd == 0) return false;  // ran out of the statement: not params
        --bd;
      } else if (s == "[") ++sd;
      else if (s == "]") { if (sd > 0) --sd; }
      else if (s == ";") return false;
      if (s == "," && pd == 1 && ad == 0 && bd == 0 && sd == 0) {
        flush();
      } else {
        cur.push_back(tk);
      }
      ++i_;
    }
    return false;
  }

  // Positioned at the body '{'. Consumes the balanced body, recording every
  // identifier and every `ident (` call site with the identifiers that
  // appear between its parentheses (the arg set used for forwarding
  // checks). Nested calls each get their own CallSite.
  void ConsumeBody(FunctionInfo* fn) {
    fn->body_begin = t_[i_].line;
    int depth = 0;
    std::string prev;
    bool prev_ident = false;
    int prev_line = 0;
    while (i_ < n_) {
      const Token& tk = t_[i_];
      if (tk.text == "{") {
        ++depth;
      } else if (tk.text == "}") {
        if (--depth == 0) {
          fn->body_end = tk.line;
          ++i_;
          return;
        }
      } else if (tk.ident) {
        fn->body_idents.insert(tk.text);
      }
      if (tk.text == "(" && prev_ident && !IsKeyword(prev)) {
        CallSite cs;
        cs.callee = prev;
        cs.line = prev_line;
        int d = 0;
        for (size_t j = i_; j < n_ && j < i_ + 20000; ++j) {
          const std::string& a = t_[j].text;
          if (a == "(") ++d;
          else if (a == ")") {
            if (--d == 0) break;
          } else if (t_[j].ident) {
            cs.arg_idents.insert(a);
          }
        }
        fn->calls.push_back(std::move(cs));
      }
      prev = tk.text;
      prev_ident = tk.ident;
      prev_line = tk.line;
      ++i_;
    }
    fn->body_end = (n_ > 0) ? t_[n_ - 1].line : fn->body_begin;
  }

  const std::vector<Token>& t_;
  const size_t n_;
  size_t i_ = 0;
  std::vector<std::string> scopes_;  // namespace ("") / class (name) nesting
  std::vector<FunctionInfo> fns_;
};

std::vector<FunctionInfo> SegmentFile(const FileText& f) {
  return Segmenter(Tokenize(f.sanitized)).Run();
}

bool IsLibraryish(const std::string& rel) {
  // Rules about *library* obligations: tests may legitimately use the
  // 3-arg Align convenience, ValueOrDie, and friends.
  return rel.rfind("tests/", 0) != 0;
}

bool LowerContains(const std::string& s, const char* needle) {
  std::string l(s);
  std::transform(l.begin(), l.end(), l.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return l.find(needle) != std::string::npos;
}

// ----------------------------------------- rule: context-dropped
//
// "Ctx-capable" = any function declared in src/ with a RunContext or
// CancelToken parameter (excluding common/run_context.h itself — the
// abstraction's own plumbing — and ctors, which *store* contexts rather
// than honor them). This set is the transitive deadline frontier by
// construction: anything that takes a context is expected to forward or
// poll it, so calling one without a context strands the caller's deadline
// no matter how deep the callee eventually polls.
std::set<std::string> CollectCtxCapable(
    const std::vector<FileText>& files,
    const std::vector<std::vector<FunctionInfo>>& fns) {
  std::set<std::string> out;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& rel = files[fi].rel;
    if (rel.rfind("src/", 0) != 0) continue;
    if (EndsWith(rel, "common/run_context.h") ||
        EndsWith(rel, "common/run_context.cc"))
      continue;
    for (const FunctionInfo& fn : fns[fi]) {
      if (fn.is_ctor_dtor || fn.name.rfind("operator", 0) == 0) continue;
      for (const Param& p : fn.params)
        if (p.is_ctx) out.insert(fn.name);
    }
  }
  return out;
}

// A call forwards the caller's context when any argument identifier is one
// of the caller's ctx parameters, mentions ctx/context by name (covers
// derived contexts like `sub_ctx` and inline `ctx.WithTimeout(...)`), or is
// an explicit `Unbounded` opt-out.
bool CallForwardsCtx(const CallSite& c,
                     const std::vector<std::string>& ctx_names) {
  for (const std::string& a : c.arg_idents) {
    for (const std::string& n : ctx_names)
      if (a == n) return true;
    if (a == "Unbounded") return true;
    if (LowerContains(a, "ctx") || LowerContains(a, "context")) return true;
  }
  return false;
}

void CheckContextDropped(const FileText& f,
                         const std::vector<FunctionInfo>& fns,
                         const std::set<std::string>& ctx_capable,
                         std::vector<Diagnostic>* diags,
                         std::set<int>* bad_allow) {
  if (!IsLibraryish(f.rel)) return;
  for (const FunctionInfo& fn : fns) {
    if (!fn.has_body || fn.is_ctor_dtor) continue;
    std::vector<std::string> ctx_names;
    for (const Param& p : fn.params)
      if (p.is_ctx && !p.name.empty()) ctx_names.push_back(p.name);
    if (ctx_names.empty()) continue;
    // Stranded parameter: a named context that the body never consults or
    // forwards is a deadline sink. One-liners (trivial forwarders whose
    // param exists for interface shape) are exempt; so is an explicitly
    // unnamed parameter, which is the idiom for "deliberately ignored".
    for (const std::string& n : ctx_names) {
      if (fn.body_idents.count(n) > 0) continue;
      if (fn.body_end - fn.body_begin < 3) continue;
      if (LineAllows(f.raw[fn.sig_line - 1], "context-dropped", f.path,
                     fn.sig_line, diags, bad_allow))
        continue;
      diags->push_back(
          {f.path, fn.sig_line, "context-dropped",
           "'" + fn.name + "' takes RunContext/CancelToken '" + n +
               "' but never polls or forwards it; honor the deadline "
               "(ShouldStop/forwarding) or unname the parameter if ignoring "
               "it is deliberate (DESIGN.md §14)"});
    }
    for (const CallSite& c : fn.calls) {
      if (ctx_capable.count(c.callee) == 0) continue;
      if (CallForwardsCtx(c, ctx_names)) continue;
      const int line_no = c.line;
      if (line_no < 1 || line_no > static_cast<int>(f.raw.size())) continue;
      if (LineAllows(f.raw[line_no - 1], "context-dropped", f.path, line_no,
                     diags, bad_allow))
        continue;
      diags->push_back(
          {f.path, line_no, "context-dropped",
           "call to deadline-aware '" + c.callee + "' drops '" +
               ctx_names.front() + "'; forward the caller's RunContext (or "
               "pass RunContext::Unbounded() to opt out explicitly) so "
               "cancellation propagates (DESIGN.md §14)"});
    }
  }
}

// ----------------------------------------- rule: budget-discipline
//
// Two per-function dataflow checks over the §9 memory-budget contract:
//  (a) a raw MemoryBudget::TryReserve must be paired with a Release or a
//      MemoryScope somewhere in the same function — a function that only
//      acquires is either leaking or doing a cross-function handoff, which
//      must be declared with an allow() naming the releasing function;
//  (b) a TryCreate result must be ok()/status()-checked before its first
//      ValueOrDie/MoveValueOrDie in the function, and never consumed
//      in place as TryCreate(...).ValueOrDie().
void CheckBudgetDiscipline(const FileText& f,
                           const std::vector<FunctionInfo>& fns,
                           std::vector<Diagnostic>* diags,
                           std::set<int>* bad_allow) {
  if (!IsLibraryish(f.rel)) return;
  // The budget implementation itself pairs the primitives internally.
  if (EndsWith(f.rel, "common/memory_budget.h") ||
      EndsWith(f.rel, "common/memory_budget.cc"))
    return;
  for (const FunctionInfo& fn : fns) {
    if (!fn.has_body) continue;
    const CallSite* reserve = nullptr;
    bool released = fn.body_idents.count("MemoryScope") > 0;
    for (const CallSite& c : fn.calls) {
      if (c.callee == "TryReserve" && reserve == nullptr) reserve = &c;
      if (c.callee == "Release" || c.callee == "release") released = true;
    }
    if (reserve != nullptr && !released) {
      const int line_no = reserve->line;
      if (line_no >= 1 && line_no <= static_cast<int>(f.raw.size()) &&
          !LineAllows(f.raw[line_no - 1], "budget-discipline", f.path,
                      line_no, diags, bad_allow)) {
        diags->push_back(
            {f.path, line_no, "budget-discipline",
             "'" + fn.name + "' reserves budget (TryReserve) but has no "
             "Release or MemoryScope on any path; pair them, or declare the "
             "cross-function handoff with an allow() naming the releasing "
             "function (DESIGN.md §14)"});
      }
    }
    for (const CallSite& c : fn.calls) {
      if (c.callee != "TryCreate") continue;
      const int call_line = c.line;
      if (call_line < 1 || call_line > static_cast<int>(f.sanitized.size()))
        continue;
      const std::string& line = f.sanitized[call_line - 1];
      if (Contains(line, "ValueOrDie")) {
        if (LineAllows(f.raw[call_line - 1], "budget-discipline", f.path,
                       call_line, diags, bad_allow))
          continue;
        diags->push_back(
            {f.path, call_line, "budget-discipline",
             "TryCreate(...).ValueOrDie() consumes an unchecked allocation "
             "result in place; bind it and check ok() (an over-budget "
             "allocation must degrade, not abort — DESIGN.md §9/§14)"});
        continue;
      }
      // Recover the bound variable: the last `name =` before the TryCreate
      // token, joining up to two preceding lines for wrapped initializers.
      std::string window;
      int wstart = call_line - 1;
      if (wstart - 2 >= fn.body_begin - 1) wstart -= 2;
      else if (wstart - 1 >= fn.body_begin - 1) wstart -= 1;
      for (int l = wstart; l <= call_line - 1; ++l)
        window += f.sanitized[l] + "\n";
      const size_t at = window.rfind("TryCreate");
      if (at == std::string::npos) continue;
      static const std::regex assign_re(R"(([A-Za-z_]\w*)\s*=[^=])");
      std::string before = window.substr(0, at);
      std::string var;
      for (std::sregex_iterator it(before.begin(), before.end(), assign_re);
           it != std::sregex_iterator(); ++it)
        var = (*it)[1].str();
      if (var.empty()) continue;  // returned / passed through: checked later
      const std::regex use_re("\\b" + var +
                              R"(\s*\.\s*(Move)?ValueOrDie\s*\()");
      const std::regex check_re("\\b" + var + R"(\s*\.\s*(ok|status)\s*\()");
      int use_line = -1;
      const int body_last =
          std::min<int>(fn.body_end, static_cast<int>(f.sanitized.size()));
      for (int l = call_line; l < body_last; ++l) {
        if (std::regex_search(f.sanitized[l], use_re)) {
          use_line = l + 1;
          break;
        }
      }
      if (use_line < 0) continue;
      bool checked = false;
      for (int l = call_line - 1; l < use_line - 1; ++l) {
        if (std::regex_search(f.sanitized[l], check_re)) {
          checked = true;
          break;
        }
      }
      if (checked) continue;
      if (LineAllows(f.raw[use_line - 1], "budget-discipline", f.path,
                     use_line, diags, bad_allow))
        continue;
      diags->push_back(
          {f.path, use_line, "budget-discipline",
           "ValueOrDie on '" + var + "' without a prior ok()/status() check "
           "in '" + fn.name + "'; a failed TryCreate must be handled, not "
           "crashed through (DESIGN.md §9/§14)"});
    }
  }
}

// ----------------------------------------------- rule: guarded-by
//
// `// galign: guarded_by(mu_)` on a member/state declaration names the
// mutex that must be held wherever that symbol is touched. Enforcement is
// function-granular (coarse by design — a compile-free complement to the
// TSan gate, not a replacement): every function body in the annotation's
// file or its .h/.cc counterpart that mentions the symbol must acquire the
// mutex (lock_guard/unique_lock/scoped_lock/.lock()), carry a `Locked`
// name suffix, or carry `// galign: requires_lock(mu_)` on its signature.
// Ctors/dtors are exempt (no concurrent access during construction).
struct GuardedSymbol {
  std::string symbol;
  std::string mutex;
  std::string file;  // abs path of the annotation (diagnostic anchor)
  std::string rel;
  int line = 0;
};

const std::regex kGuardRe(R"(galign:\s*guarded_by\(([A-Za-z_]\w*)\))");
const std::regex kRequiresRe(R"(galign:\s*requires_lock\(([A-Za-z_]\w*)\))");

std::vector<GuardedSymbol> CollectGuarded(const std::vector<FileText>& files,
                                          std::vector<Diagnostic>* diags) {
  std::vector<GuardedSymbol> out;
  for (const FileText& f : files) {
    for (size_t i = 0; i < f.raw.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(f.raw[i], m, kGuardRe)) continue;
      // The annotated symbol: last identifier before the first of ;={ on
      // the sanitized declaration line (skipping a closing param list, so
      // annotated accessor functions resolve to the function name).
      const std::string& decl = f.sanitized[i];
      size_t stop = decl.find_first_of(";={");
      if (stop == std::string::npos) stop = decl.size();
      std::string symbol;
      for (size_t j = stop; j-- > 0;) {
        const char c = decl[j];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
          size_t b = j + 1;
          while (j > 0 && (std::isalnum(static_cast<unsigned char>(
                               decl[j - 1])) ||
                           decl[j - 1] == '_'))
            --j;
          symbol = decl.substr(j, b - j);
          break;
        }
      }
      const int line_no = static_cast<int>(i) + 1;
      if (symbol.empty() ||
          std::isdigit(static_cast<unsigned char>(symbol[0]))) {
        // A comment-only line (prose mentioning the syntax) is not an
        // annotation; an annotation must ride on its declaration's line.
        if (decl.find_first_not_of(" \t") == std::string::npos) continue;
        diags->push_back({f.path, line_no, "guarded-by",
                          "could not parse the declaration this guarded_by "
                          "annotation is attached to"});
        continue;
      }
      out.push_back({symbol, m[1].str(), f.path, f.rel, line_no});
    }
  }
  return out;
}

std::string CounterpartRel(const std::string& rel) {
  if (EndsWith(rel, ".h")) return rel.substr(0, rel.size() - 2) + ".cc";
  if (EndsWith(rel, ".cc")) return rel.substr(0, rel.size() - 3) + ".h";
  return std::string();
}

bool BodyLocks(const FileText& f, const FunctionInfo& fn,
               const std::string& mutex) {
  const std::regex lock_re(
      std::string(R"((lock_guard|unique_lock|scoped_lock)\b)"));
  const std::regex mu_re("\\b" + mutex + "\\b");
  const std::regex direct_re("\\b" + mutex + R"(\s*\.\s*lock\s*\()");
  const int lo = std::max(1, fn.body_begin);
  const int hi = std::min<int>(fn.body_end, static_cast<int>(f.sanitized.size()));
  for (int l = lo; l <= hi; ++l) {
    const std::string& s = f.sanitized[l - 1];
    if (std::regex_search(s, direct_re)) return true;
    if (std::regex_search(s, lock_re) && std::regex_search(s, mu_re))
      return true;
  }
  return false;
}

bool SigRequiresLock(const FileText& f, const FunctionInfo& fn,
                     const std::string& mutex) {
  for (int l = std::max(1, fn.sig_line - 1); l <= fn.sig_line; ++l) {
    std::smatch m;
    if (l <= static_cast<int>(f.raw.size()) &&
        std::regex_search(f.raw[l - 1], m, kRequiresRe) &&
        m[1].str() == mutex)
      return true;
  }
  return false;
}

void CheckGuardedBy(const FileText& f, const std::vector<FunctionInfo>& fns,
                    const std::vector<GuardedSymbol>& guarded,
                    std::vector<Diagnostic>* diags, std::set<int>* bad_allow) {
  for (const GuardedSymbol& g : guarded) {
    if (f.rel != g.rel && f.rel != CounterpartRel(g.rel)) continue;
    const std::regex sym_re("\\b" + g.symbol + "\\b");
    for (const FunctionInfo& fn : fns) {
      if (!fn.has_body || fn.is_ctor_dtor) continue;
      if (EndsWith(fn.name, "Locked")) continue;
      if (fn.body_idents.count(g.symbol) == 0) continue;
      if (fn.name == g.symbol) continue;  // the annotated function itself
      if (SigRequiresLock(f, fn, g.mutex)) continue;
      if (BodyLocks(f, fn, g.mutex)) continue;
      // Anchor the diagnostic on the first body line touching the symbol.
      int use_line = fn.body_begin;
      const int hi =
          std::min<int>(fn.body_end, static_cast<int>(f.sanitized.size()));
      for (int l = std::max(1, fn.body_begin); l <= hi; ++l) {
        if (std::regex_search(f.sanitized[l - 1], sym_re)) {
          use_line = l;
          break;
        }
      }
      if (LineAllows(f.raw[use_line - 1], "guarded-by", f.path, use_line,
                     diags, bad_allow))
        continue;
      diags->push_back(
          {f.path, use_line, "guarded-by",
           "'" + fn.name + "' touches '" + g.symbol + "' (guarded by '" +
               g.mutex + "', " + g.rel + ":" + std::to_string(g.line) +
               ") without acquiring it; lock, rename with a Locked suffix, "
               "or annotate `// galign: requires_lock(" + g.mutex +
               ")` (DESIGN.md §14)"});
    }
  }
}

// ------------------------------------------ rule: fault-site-audit
//
// The §8 fault-injection contract: every site instrumented in src/
// (ShouldFailIO/CorruptBuffer/Perturb string) must be armed by at least one
// test, every directly-armed site must exist somewhere, and no two src
// sites may sit one typo apart. Harvested from RAW lines — the sanitizer
// blanks exactly the string literals this rule is about. Runs only on
// default (full-tree) scans: a single-file scan has no test set to audit
// against.
struct FaultSite {
  std::string file;  // abs path of first instrumentation
  std::string rel;
  int line = 0;
  int arming_tests = 0;
  std::string raw_line{};  // for allow() suppression checks
};

int EditDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1,
                         prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1)});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

const std::regex kInstrumentRe(
    R"(\b(?:ShouldFailIO|CorruptBuffer|Perturb)\s*\(\s*"([^"]+)\")");
const std::regex kArmRe(R"(\bArm\s*\(\s*"([^"]+)\")");
const std::regex kDottedRe(R"re("([a-z0-9_]+(?:\.[a-z0-9_]+)+)")re");

void CheckFaultSiteAudit(const std::vector<FileText>& files,
                         std::map<std::string, FaultSite>* table,
                         std::vector<Diagnostic>* diags) {
  // site -> first src instrumentation
  std::map<std::string, FaultSite>& src_sites = *table;
  std::set<std::string> test_instrumented;   // sites defined in test code
  std::set<std::string> test_references;     // any dotted literal in tests
  std::map<std::string, int> reference_files;  // site -> #test files
  struct ArmAt {
    std::string file;
    std::string raw_line;
    int line;
  };
  std::map<std::string, ArmAt> direct_arms;

  for (const FileText& f : files) {
    const bool in_src = f.rel.rfind("src/", 0) == 0;
    const bool in_tests = f.rel.rfind("tests/", 0) == 0;
    if (!in_src && !in_tests) continue;
    std::set<std::string> refs_here;
    for (size_t i = 0; i < f.raw.size(); ++i) {
      const std::string& line = f.raw[i];
      if (in_src) {
        for (std::sregex_iterator it(line.begin(), line.end(), kInstrumentRe);
             it != std::sregex_iterator(); ++it) {
          const std::string site = (*it)[1].str();
          if (src_sites.count(site) == 0)
            src_sites[site] = {f.path, f.rel, static_cast<int>(i) + 1, 0,
                               line};
        }
      } else {
        for (std::sregex_iterator it(line.begin(), line.end(), kInstrumentRe);
             it != std::sregex_iterator(); ++it)
          test_instrumented.insert((*it)[1].str());
        for (std::sregex_iterator it(line.begin(), line.end(), kArmRe);
             it != std::sregex_iterator(); ++it) {
          const std::string site = (*it)[1].str();
          if (direct_arms.count(site) == 0)
            direct_arms[site] = {f.path, line, static_cast<int>(i) + 1};
        }
        for (std::sregex_iterator it(line.begin(), line.end(), kDottedRe);
             it != std::sregex_iterator(); ++it) {
          test_references.insert((*it)[1].str());
          refs_here.insert((*it)[1].str());
        }
      }
    }
    for (const std::string& r : refs_here) ++reference_files[r];
  }

  std::set<int> audit_bad_allow;  // per-audit bad-allow dedup
  for (auto& [site, info] : src_sites) {
    auto it = reference_files.find(site);
    info.arming_tests = (it == reference_files.end()) ? 0 : it->second;
    if (info.arming_tests == 0) {
      if (LineAllows(info.raw_line, "fault-site-audit", info.file, info.line,
                     diags, &audit_bad_allow))
        continue;
      diags->push_back(
          {info.file, info.line, "fault-site-audit",
           "fault site '" + site + "' is instrumented in src but no test "
           "arms or references it; add an arming test so the failure path "
           "stays executable (DESIGN.md §8/§14)"});
    }
  }
  for (const auto& [site, at] : direct_arms) {
    if (src_sites.count(site) > 0 || test_instrumented.count(site) > 0)
      continue;
    std::string nearest;
    int best = 3;
    for (const auto& [s, info] : src_sites) {
      const int d = EditDistance(site, s);
      if (d < best) {
        best = d;
        nearest = s;
      }
    }
    std::string msg = "test arms fault site '" + site +
                      "' which no src or test code instruments (phantom "
                      "site: the test exercises nothing)";
    if (!nearest.empty()) msg += "; did you mean '" + nearest + "'?";
    // allow() on the arming line suppresses (e.g. negative tests that arm
    // a deliberately-unknown site).
    if (!LineAllows(at.raw_line, "fault-site-audit", at.file, at.line, diags,
                    &audit_bad_allow))
      diags->push_back({at.file, at.line, "fault-site-audit", msg});
  }
  std::vector<std::string> names;
  for (const auto& [site, info] : src_sites) names.push_back(site);
  for (size_t a = 0; a < names.size(); ++a) {
    for (size_t b = a + 1; b < names.size(); ++b) {
      if (EditDistance(names[a], names[b]) <= 1) {
        const FaultSite& info = src_sites[names[b]];
        diags->push_back(
            {info.file, info.line, "fault-site-audit",
             "fault sites '" + names[a] + "' and '" + names[b] +
                 "' are one edit apart; likely a typo'd duplicate — rename "
                 "one or merge them"});
      }
    }
  }
}

// -------------------------------------------------- output + baseline
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Baseline entries are (rule, file) pairs: every diagnostic of that rule in
// that file is grandfathered. Deliberately line-free so unrelated edits in
// a baselined file do not churn the baseline. Parsed with a strict regex —
// the file is machine-written by --write-baseline.
std::set<std::pair<std::string, std::string>> LoadBaseline(
    const fs::path& path, bool* ok) {
  std::set<std::pair<std::string, std::string>> out;
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  if (!*ok) return out;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  static const std::regex entry_re(
      R"re(\{\s*"rule"\s*:\s*"([^"]+)"\s*,\s*"file"\s*:\s*"([^"]+)"\s*\})re");
  for (std::sregex_iterator it(text.begin(), text.end(), entry_re);
       it != std::sregex_iterator(); ++it)
    out.insert({(*it)[1].str(), (*it)[2].str()});
  return out;
}

bool WriteBaseline(const fs::path& path,
                   const std::vector<Diagnostic>& diags) {
  std::set<std::pair<std::string, std::string>> entries;
  for (const Diagnostic& d : diags) entries.insert({d.rule, d.rel});
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"baseline\": [";
  bool first = true;
  for (const auto& [rule, file] : entries) {
    out << (first ? "" : ",") << "\n    {\"rule\": \"" << JsonEscape(rule)
        << "\", \"file\": \"" << JsonEscape(file) << "\"}";
    first = false;
  }
  out << (entries.empty() ? "" : "\n  ") << "]\n}\n";
  return static_cast<bool>(out);
}

// -------------------------------------------------------------- scanning
bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

bool LoadFile(const fs::path& root, const fs::path& p, FileText* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  out->path = p.generic_string();
  out->rel = RelPath(root, p);
  out->raw = SplitLines(text);
  out->sanitized = SplitLines(Sanitize(text));
  return true;
}

void PrintDag() {
  std::printf("# galign layering DAG (module: allowed includes)\n");
  for (const auto& r : kLayerDag) {
    std::printf("%s:", r.module);
    if (r.may_include.empty()) std::printf(" (nothing below it)");
    for (const char* a : r.may_include) std::printf(" %s", a);
    std::printf("\n");
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: galign_lint [--root=DIR] [--print-dag] [--format=text|json]\n"
      "                   [--baseline=FILE] [--write-baseline=FILE]\n"
      "                   [--fault-audit] [paths...]\n"
      "  Scans src/ bench/ examples/ tests/ tools/ under --root (default:\n"
      "  current directory) unless explicit paths are given. Paths may be\n"
      "  files or directories. The fault-site audit runs only on full-tree\n"
      "  scans (no explicit paths). --baseline suppresses grandfathered\n"
      "  (rule,file) pairs; --write-baseline blesses the current findings.\n"
      "  --fault-audit prints the site coverage table in text mode (always\n"
      "  present in JSON). Exit: 0 clean, 1 violations, 2 error.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> paths;
  bool print_dag = false;
  bool json = false;
  bool fault_audit_table = false;
  std::string baseline_file, write_baseline_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path(arg.substr(7));
    } else if (arg == "--root" && i + 1 < argc) {
      root = fs::path(argv[++i]);
    } else if (arg == "--print-dag") {
      print_dag = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_file = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_file = arg.substr(17);
    } else if (arg == "--fault-audit") {
      fault_audit_table = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  if (print_dag) {
    PrintDag();
    return 0;
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "galign_lint: bad --root: %s\n", ec.message().c_str());
    return 2;
  }
  const bool full_tree_scan = paths.empty();
  if (paths.empty()) {
    for (const char* d : {"src", "bench", "examples", "tests", "tools"}) {
      if (fs::exists(root / d)) paths.push_back(root / d);
    }
  }

  std::vector<FileText> files;
  for (const auto& p : paths) {
    const fs::path abs = p.is_absolute() ? p : root / p;
    if (!fs::exists(abs)) {
      std::fprintf(stderr, "galign_lint: no such path: %s\n",
                   abs.generic_string().c_str());
      return 2;
    }
    if (fs::is_directory(abs)) {
      for (auto it = fs::recursive_directory_iterator(abs);
           it != fs::recursive_directory_iterator(); ++it) {
        const fs::path& f = it->path();
        const std::string g = f.generic_string();
        // Fixture trees deliberately contain violations; skip them unless
        // the fixture dir itself was passed as the scan path.
        if (Contains(g, "lint_fixtures") &&
            !Contains(abs.generic_string(), "lint_fixtures")) {
          if (it->is_directory()) it.disable_recursion_pending();
          continue;
        }
        if (Contains(g, "/build")) {
          if (it->is_directory()) it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(f)) {
          FileText ft;
          if (LoadFile(root, f, &ft)) files.push_back(std::move(ft));
        }
      }
    } else if (IsSourceFile(abs)) {
      FileText ft;
      if (LoadFile(root, abs, &ft)) files.push_back(std::move(ft));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileText& a, const FileText& b) { return a.rel < b.rel; });

  const std::set<std::string> status_fns = CollectStatusFunctions(files);

  // Flow layer: segment every file once, then derive the cross-TU sets the
  // flow rules consume (ctx-capable call graph frontier, guarded symbols).
  std::vector<std::vector<FunctionInfo>> fns;
  fns.reserve(files.size());
  for (const auto& f : files) fns.push_back(SegmentFile(f));
  const std::set<std::string> ctx_capable = CollectCtxCapable(files, fns);

  std::vector<Diagnostic> diags;
  const std::vector<GuardedSymbol> guarded = CollectGuarded(files, &diags);

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const auto& f = files[fi];
    std::set<int> bad_allow_seen;
    CheckLayering(f, &diags, &bad_allow_seen);
    CheckNondeterminism(f, &diags, &bad_allow_seen);
    CheckUnbudgetedAlloc(f, &diags, &bad_allow_seen);
    CheckNakedThrow(f, &diags, &bad_allow_seen);
    CheckUncheckedStatus(f, status_fns, &diags, &bad_allow_seen);
    CheckContextDropped(f, fns[fi], ctx_capable, &diags, &bad_allow_seen);
    CheckBudgetDiscipline(f, fns[fi], &diags, &bad_allow_seen);
    CheckGuardedBy(f, fns[fi], guarded, &diags, &bad_allow_seen);
  }

  std::map<std::string, FaultSite> fault_table;
  if (full_tree_scan) CheckFaultSiteAudit(files, &fault_table, &diags);

  // Fill scan-root-relative paths (baseline + JSON keys).
  {
    std::map<std::string, std::string> rel_of;
    for (const auto& f : files) rel_of[f.path] = f.rel;
    for (auto& d : diags) {
      auto it = rel_of.find(d.file);
      d.rel = (it == rel_of.end()) ? d.file : it->second;
    }
  }
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.rel, a.line, a.rule) <
                     std::tie(b.rel, b.line, b.rule);
            });

  if (!write_baseline_file.empty()) {
    if (!WriteBaseline(root / write_baseline_file, diags)) {
      std::fprintf(stderr, "galign_lint: cannot write baseline: %s\n",
                   write_baseline_file.c_str());
      return 2;
    }
    std::printf("galign_lint: baselined %zu violation(s) to %s\n",
                diags.size(), write_baseline_file.c_str());
    return 0;
  }

  size_t baselined = 0;
  if (!baseline_file.empty()) {
    bool ok = false;
    const auto baseline = LoadBaseline(root / baseline_file, &ok);
    if (!ok) {
      std::fprintf(stderr, "galign_lint: cannot read baseline: %s\n",
                   baseline_file.c_str());
      return 2;
    }
    std::vector<Diagnostic> kept;
    for (auto& d : diags) {
      if (baseline.count({d.rule, d.rel}) > 0)
        ++baselined;
      else
        kept.push_back(std::move(d));
    }
    diags = std::move(kept);
  }

  if (json) {
    std::printf("{\n  \"clean\": %s,\n  \"files_scanned\": %zu,\n",
                diags.empty() ? "true" : "false", files.size());
    std::printf("  \"baselined\": %zu,\n", baselined);
    std::printf("  \"violations\": [");
    for (size_t i = 0; i < diags.size(); ++i) {
      const auto& d = diags[i];
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": "
                  "\"%s\", \"message\": \"%s\"}",
                  i ? "," : "", JsonEscape(d.rel).c_str(), d.line,
                  JsonEscape(d.rule).c_str(), JsonEscape(d.message).c_str());
    }
    std::printf("%s],\n", diags.empty() ? "" : "\n  ");
    std::printf("  \"fault_sites\": [");
    size_t i = 0;
    for (const auto& [site, info] : fault_table) {
      std::printf("%s\n    {\"site\": \"%s\", \"file\": \"%s\", \"line\": "
                  "%d, \"arming_tests\": %d}",
                  i++ ? "," : "", JsonEscape(site).c_str(),
                  JsonEscape(info.rel).c_str(), info.line, info.arming_tests);
    }
    std::printf("%s]\n}\n", fault_table.empty() ? "" : "\n  ");
    return diags.empty() ? 0 : 1;
  }

  for (const auto& d : diags) {
    std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (fault_audit_table && !fault_table.empty()) {
    std::printf("# fault-site coverage (site  arming-test-files  "
                "instrumented-at)\n");
    for (const auto& [site, info] : fault_table)
      std::printf("%-28s %3d  %s:%d\n", site.c_str(), info.arming_tests,
                  info.rel.c_str(), info.line);
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "galign_lint: %zu violation(s) in %zu file(s)\n",
                 diags.size(), files.size());
    return 1;
  }
  if (baselined > 0)
    std::fprintf(stderr, "galign_lint: %zu baselined violation(s) suppressed\n",
                 baselined);
  std::printf("galign_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
