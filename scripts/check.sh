#!/usr/bin/env bash
# Sanitizer gate: configures a dedicated ASan+UBSan build tree
# (build-sanitize/) and runs the full test suite under it. Any heap error,
# UB, or leak fails the run (-fno-sanitize-recover=all aborts on first
# report).
#
# Usage: scripts/check.sh [ctest-args...]
#   e.g. scripts/check.sh -R DivergenceRecovery
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-sanitize"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGALIGN_SANITIZE=ON \
  -DGALIGN_NO_NATIVE=ON

cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error keeps one crashing test from flooding the log; detecting
# leaks matters for the Result<T>/Status error paths exercised by the
# io_hardening and failure_injection suites.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# Crash-recovery gate (DESIGN.md §8): the kill-and-resume, torn-checkpoint,
# and deadline-cancellation suites run first and explicitly, so a durability
# regression fails loudly before the full sweep.
echo "=== crash-recovery gate (ASan+UBSan) ==="
ctest --test-dir "${build_dir}" --output-on-failure \
  -R "CheckpointResume|DurableIo|Cancellation"

# Fuzz-smoke gate (DESIGN.md §9): a fixed-seed sanitized sweep of the
# structure-aware fuzzer — hostile loader bytes, degenerate generator
# recipes, and the full aligner roster under random budgets, deadlines,
# and armed faults. Deterministic: failures replay with the printed seed.
echo "=== fuzz-smoke gate (ASan+UBSan, fixed seed) ==="
"${build_dir}/tests/fuzz/graph_fuzz" --seed 1337 --iters 60

# Low-budget gate (DESIGN.md §9): the budget-degradation suite proves the
# chunked fallback engages under a tight memory budget, stays under it,
# and matches the dense run's Accuracy@1 within tolerance.
echo "=== low-budget degradation gate (ASan+UBSan) ==="
ctest --test-dir "${build_dir}" --output-on-failure \
  -R "BudgetDegradation|DegenerateConformance|MemoryBudget|MemoryScope"

echo "=== full suite (ASan+UBSan) ==="
ctest --test-dir "${build_dir}" --output-on-failure "$@"
