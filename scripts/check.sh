#!/usr/bin/env bash
# Correctness gates (DESIGN.md §10), in fail-fast order:
#
#   lint  galign_lint project-contract scan (unchecked-status,
#         banned-nondeterminism, unbudgeted-alloc, layering DAG,
#         no-naked-throw) plus the flow-aware rules from DESIGN.md §14
#         (context-dropped, fault-site-audit, budget-discipline,
#         guarded-by) against the committed baseline, then shellcheck of
#         the shell entry points and a hard-failing clang-tidy pass over
#         src/ (skip with GALIGN_SKIP_CLANG_TIDY=1 on machines without
#         clang-tidy). galign_lint itself runs before any library build:
#         the lint binary is one dependency-free TU compiled directly
#         with g++.
#   asan  dedicated ASan+UBSan tree (build-sanitize/): crash-recovery,
#         fuzz-smoke, and low-budget gates, then the full suite. Any heap
#         error, UB, or leak fails the run.
#   tsan  dedicated ThreadSanitizer tree (build-tsan/): the race-stress
#         suite plus the parallel and kernel-equivalence suites, so the
#         parallel_for pool, MemoryBudget/MemoryTracker atomics,
#         CancelToken, fault-site registry, and the alignment server's
#         admission queue run under a race detector.
#   serve overload drill (DESIGN.md §12): export a small artifact with the
#         release galign_serve binary, then burst it at 16x queue capacity
#         — every request must resolve with a typed status (the binary's
#         own contract check is the exit code), plus the serve test suites.
#   swap  hot-swap chaos drill (DESIGN.md §13): under 16x burst the release
#         binary publishes good/torn/bit-flipped/fingerprint-tampered
#         generations; every response must be typed and correct for its
#         generation, every bad publication quarantined with a typed
#         reason. Plus a real exporter killed with SIGKILL mid-publish
#         followed by a --mode=health probe, and the swap test suites.
#
# Usage: scripts/check.sh [--stage=lint|asan|tsan|serve|swap|all] [ctest-args...]
#   e.g. scripts/check.sh -R DivergenceRecovery
#        scripts/check.sh --stage=tsan
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

stage="all"
ctest_args=()
for a in "$@"; do
  case "$a" in
    --stage=*) stage="${a#--stage=}" ;;
    *) ctest_args+=("$a") ;;
  esac
done

run_lint_stage() {
  echo "=== lint gate (galign_lint: contracts + layering DAG) ==="
  local lint_bin="${repo_root}/build-tools/galign_lint"
  local lint_src="${repo_root}/tools/lint/galign_lint.cc"
  mkdir -p "${repo_root}/build-tools"
  if [ ! -x "${lint_bin}" ] || [ "${lint_src}" -nt "${lint_bin}" ]; then
    g++ -std=c++20 -O2 -Wall -Wextra -o "${lint_bin}" "${lint_src}"
  fi
  "${lint_bin}" --root "${repo_root}" \
    --baseline=tools/lint/lint_baseline.json

  if command -v shellcheck >/dev/null 2>&1; then
    echo "=== lint gate (shellcheck) ==="
    shellcheck "${repo_root}/scripts/check.sh" "${repo_root}/bench/run_all.sh"
  else
    echo "(shellcheck not installed; skipping shell lint)"
  fi

  # clang-tidy is a hard gate (checks pinned in .clang-tidy). Machines
  # without clang-tidy opt out explicitly with GALIGN_SKIP_CLANG_TIDY=1 —
  # a silent skip would let the gate rot the way the advisory one did.
  if [ "${GALIGN_SKIP_CLANG_TIDY:-0}" = "1" ]; then
    echo "(GALIGN_SKIP_CLANG_TIDY=1; skipping clang-tidy gate)"
  else
    if ! command -v run-clang-tidy >/dev/null 2>&1; then
      echo "clang-tidy gate: run-clang-tidy not found." >&2
      echo "Install clang-tidy, or set GALIGN_SKIP_CLANG_TIDY=1 to skip." >&2
      exit 1
    fi
    if [ ! -f "${repo_root}/build/compile_commands.json" ]; then
      echo "=== lint gate (clang-tidy: configuring for compile_commands) ==="
      cmake -B "${repo_root}/build" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    echo "=== lint gate (clang-tidy, .clang-tidy config) ==="
    run-clang-tidy -quiet -p "${repo_root}/build" "src/.*\\.cc\$"
  fi
}

run_asan_stage() {
  local build_dir="${repo_root}/build-sanitize"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGALIGN_SANITIZE=ON \
    -DGALIGN_NO_NATIVE=ON
  cmake --build "${build_dir}" -j "$(nproc)"

  # halt_on_error keeps one crashing test from flooding the log; detecting
  # leaks matters for the Result<T>/Status error paths exercised by the
  # io_hardening and failure_injection suites.
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

  # Crash-recovery gate (DESIGN.md §8): the kill-and-resume, torn-checkpoint,
  # and deadline-cancellation suites run first and explicitly, so a durability
  # regression fails loudly before the full sweep.
  echo "=== crash-recovery gate (ASan+UBSan) ==="
  ctest --test-dir "${build_dir}" --output-on-failure \
    -R "CheckpointResume|DurableIo|Cancellation"

  # Fuzz-smoke gate (DESIGN.md §9): a fixed-seed sanitized sweep of the
  # structure-aware fuzzer — hostile loader bytes, degenerate generator
  # recipes, and the full aligner roster under random budgets, deadlines,
  # and armed faults. Deterministic: failures replay with the printed seed.
  echo "=== fuzz-smoke gate (ASan+UBSan, fixed seed) ==="
  "${build_dir}/tests/fuzz/graph_fuzz" --seed 1337 --iters 60

  # Low-budget gate (DESIGN.md §9): the budget-degradation suite proves the
  # chunked fallback engages under a tight memory budget, stays under it,
  # and matches the dense run's Accuracy@1 within tolerance.
  echo "=== low-budget degradation gate (ASan+UBSan) ==="
  ctest --test-dir "${build_dir}" --output-on-failure \
    -R "BudgetDegradation|DegenerateConformance|MemoryBudget|MemoryScope"

  # ANN recall smoke gate (DESIGN.md §11): fixed-seed generator graphs run
  # end to end through ANN-routed aligners, measured against the exact
  # chunked oracle — both backends must hold the recall target, and the
  # degenerate/conformance sweep covers empty/single-node/k>=n inputs.
  echo "=== ANN recall smoke gate (ASan+UBSan) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -R "AnnRecall"

  echo "=== full suite (ASan+UBSan) ==="
  if [ "${#ctest_args[@]}" -gt 0 ]; then
    ctest --test-dir "${build_dir}" --output-on-failure "${ctest_args[@]}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure
  fi
}

run_tsan_stage() {
  # Race gate (DESIGN.md §10): the concurrency machinery under
  # ThreadSanitizer. Scoped to the suites that exercise shared state —
  # RaceStress (pool, budget ledger, tracker gauge, cancel token, fault
  # registry), ParallelTest (parallel_for semantics), and the
  # kernel-equivalence GEMM suites (tile-parallel kernels) — so the stage
  # stays minutes, not hours, under TSan's ~10x slowdown.
  local tsan_dir="${repo_root}/build-tsan"
  cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGALIGN_TSAN=ON \
    -DGALIGN_NO_NATIVE=ON
  cmake --build "${tsan_dir}" -j "$(nproc)" \
    --target race_stress_test common_test la_ops_test

  echo "=== race gate (ThreadSanitizer) ==="
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ctest --test-dir "${tsan_dir}" --output-on-failure \
    -R "RaceStress|ParallelTest|BlockedGemm|GemmSizes|OpsTest"
}

run_serve_stage() {
  # Overload drill (DESIGN.md §12): the release binary publishes an
  # artifact and then gets burst at 16x its queue capacity. galign_serve
  # --mode=burst exits nonzero if any request resolved untyped or was lost,
  # so the serving contract is the exit code.
  local build_dir="${repo_root}/build"
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" -j "$(nproc)" \
    --target galign_serve serve_test serve_cli_test flag_validate_test

  echo "=== serve gate (artifact + admission-control tests) ==="
  ctest --test-dir "${build_dir}" --output-on-failure \
    -R "ServeTest|ServeCli|FlagValidate"

  echo "=== serve gate (16x overload drill, release binary) ==="
  local drill_dir
  drill_dir="$(mktemp -d)"
  trap 'rm -rf "${drill_dir}"' RETURN
  "${build_dir}/examples/galign_serve" --mode=export \
    --artifact-dir="${drill_dir}" --generate=80 --epochs=5 --dim=32
  "${build_dir}/examples/galign_serve" --mode=burst \
    --artifact-dir="${drill_dir}" --workers=2 --queue-capacity=8 \
    --clients=4 --load-multiple=16 --deadline-ms=2000 --mem-budget=256m
}

run_swap_stage() {
  # Hot-swap chaos drill (DESIGN.md §13): under 16x burst load the release
  # binary concurrently publishes good, torn, bit-flipped, and fingerprint-
  # tampered generations plus a simulated killed-exporter half-write.
  # galign_serve --mode=chaos exits nonzero if any response was untyped,
  # answered from a never-validated generation, or any bad publication is
  # missing its typed quarantine record — the swap contract is the exit
  # code. Then a real exporter is killed with SIGKILL mid-publish and
  # --mode=health must still report the store healthy: an atomic publish
  # leaves no damage a restart can see.
  local build_dir="${repo_root}/build"
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" -j "$(nproc)" \
    --target galign_serve swap_test serve_test

  echo "=== swap gate (quarantine + retention + generation tests) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -R "SwapTest|ServeTest"

  echo "=== swap gate (hot-swap chaos drill, release binary, 16x burst) ==="
  local drill_dir
  drill_dir="$(mktemp -d)"
  trap 'rm -rf "${drill_dir}"' RETURN
  "${build_dir}/examples/galign_serve" --mode=export \
    --artifact-dir="${drill_dir}" --generate=80 --epochs=5 --dim=32
  "${build_dir}/examples/galign_serve" --mode=chaos \
    --artifact-dir="${drill_dir}" --workers=2 --queue-capacity=8 \
    --clients=4 --load-multiple=16 --rounds=2 --deadline-ms=2000 \
    --mem-budget=512m

  echo "=== swap gate (kill -9 a live exporter, then health-probe) ==="
  local kill_dir
  kill_dir="$(mktemp -d)"
  "${build_dir}/examples/galign_serve" --mode=export \
    --artifact-dir="${kill_dir}" --generate=60 --epochs=4 --dim=16
  # A second exporter dies mid-run: SIGKILL at a random point during
  # training/publish. Atomic publication means the store either gained a
  # complete generation 2 or nothing — never a half-generation the probe
  # (or a restarted server) would trust.
  "${build_dir}/examples/galign_serve" --mode=export \
    --artifact-dir="${kill_dir}" --generate=60 --epochs=4 --dim=16 \
    >/dev/null 2>&1 &
  local exporter_pid=$!
  sleep 0.3
  kill -9 "${exporter_pid}" 2>/dev/null || true
  wait "${exporter_pid}" 2>/dev/null || true
  "${build_dir}/examples/galign_serve" --mode=health \
    --artifact-dir="${kill_dir}"
  rm -rf "${kill_dir}"
}

case "${stage}" in
  lint) run_lint_stage ;;
  asan) run_asan_stage ;;
  tsan) run_tsan_stage ;;
  serve) run_serve_stage ;;
  swap) run_swap_stage ;;
  all)
    run_lint_stage
    run_asan_stage
    run_tsan_stage
    run_serve_stage
    run_swap_stage
    ;;
  *)
    echo "unknown --stage=${stage} (expected lint|asan|tsan|serve|swap|all)" >&2
    exit 2
    ;;
esac
