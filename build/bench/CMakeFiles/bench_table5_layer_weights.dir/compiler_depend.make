# Empty compiler generated dependencies file for bench_table5_layer_weights.
# This may be replaced when dependencies are built.
