file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_layer_weights.dir/bench_table5_layer_weights.cc.o"
  "CMakeFiles/bench_table5_layer_weights.dir/bench_table5_layer_weights.cc.o.d"
  "bench_table5_layer_weights"
  "bench_table5_layer_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_layer_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
