# Empty compiler generated dependencies file for bench_fig3_structural_noise.
# This may be replaced when dependencies are built.
