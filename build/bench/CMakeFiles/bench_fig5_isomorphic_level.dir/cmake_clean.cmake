file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_isomorphic_level.dir/bench_fig5_isomorphic_level.cc.o"
  "CMakeFiles/bench_fig5_isomorphic_level.dir/bench_fig5_isomorphic_level.cc.o.d"
  "bench_fig5_isomorphic_level"
  "bench_fig5_isomorphic_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_isomorphic_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
