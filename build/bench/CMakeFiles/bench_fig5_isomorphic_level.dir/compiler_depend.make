# Empty compiler generated dependencies file for bench_fig5_isomorphic_level.
# This may be replaced when dependencies are built.
