# Empty dependencies file for bench_fig8_qualitative.
# This may be replaced when dependencies are built.
