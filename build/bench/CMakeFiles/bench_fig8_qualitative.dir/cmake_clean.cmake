file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_qualitative.dir/bench_fig8_qualitative.cc.o"
  "CMakeFiles/bench_fig8_qualitative.dir/bench_fig8_qualitative.cc.o.d"
  "bench_fig8_qualitative"
  "bench_fig8_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
