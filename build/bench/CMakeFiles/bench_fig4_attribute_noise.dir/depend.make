# Empty dependencies file for bench_fig4_attribute_noise.
# This may be replaced when dependencies are built.
