# Empty dependencies file for bench_fig7_embedding_dim.
# This may be replaced when dependencies are built.
