file(REMOVE_RECURSE
  "CMakeFiles/bench_hyperparams.dir/bench_hyperparams.cc.o"
  "CMakeFiles/bench_hyperparams.dir/bench_hyperparams.cc.o.d"
  "bench_hyperparams"
  "bench_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
