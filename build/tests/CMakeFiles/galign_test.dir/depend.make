# Empty dependencies file for galign_test.
# This may be replaced when dependencies are built.
