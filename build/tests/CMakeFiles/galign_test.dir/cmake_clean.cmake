file(REMOVE_RECURSE
  "CMakeFiles/galign_test.dir/galign_test.cc.o"
  "CMakeFiles/galign_test.dir/galign_test.cc.o.d"
  "galign_test"
  "galign_test.pdb"
  "galign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
