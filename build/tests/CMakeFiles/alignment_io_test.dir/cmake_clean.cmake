file(REMOVE_RECURSE
  "CMakeFiles/alignment_io_test.dir/alignment_io_test.cc.o"
  "CMakeFiles/alignment_io_test.dir/alignment_io_test.cc.o.d"
  "alignment_io_test"
  "alignment_io_test.pdb"
  "alignment_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alignment_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
