file(REMOVE_RECURSE
  "CMakeFiles/netalign_test.dir/netalign_test.cc.o"
  "CMakeFiles/netalign_test.dir/netalign_test.cc.o.d"
  "netalign_test"
  "netalign_test.pdb"
  "netalign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netalign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
