# Empty compiler generated dependencies file for netalign_test.
# This may be replaced when dependencies are built.
