
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netalign_test.cc" "tests/CMakeFiles/netalign_test.dir/netalign_test.cc.o" "gcc" "tests/CMakeFiles/netalign_test.dir/netalign_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/galign_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_manifold.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
