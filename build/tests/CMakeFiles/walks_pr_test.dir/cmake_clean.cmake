file(REMOVE_RECURSE
  "CMakeFiles/walks_pr_test.dir/walks_pr_test.cc.o"
  "CMakeFiles/walks_pr_test.dir/walks_pr_test.cc.o.d"
  "walks_pr_test"
  "walks_pr_test.pdb"
  "walks_pr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walks_pr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
