# Empty dependencies file for walks_pr_test.
# This may be replaced when dependencies are built.
