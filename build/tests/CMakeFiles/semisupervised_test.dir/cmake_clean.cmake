file(REMOVE_RECURSE
  "CMakeFiles/semisupervised_test.dir/semisupervised_test.cc.o"
  "CMakeFiles/semisupervised_test.dir/semisupervised_test.cc.o.d"
  "semisupervised_test"
  "semisupervised_test.pdb"
  "semisupervised_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semisupervised_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
