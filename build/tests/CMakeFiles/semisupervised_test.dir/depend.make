# Empty dependencies file for semisupervised_test.
# This may be replaced when dependencies are built.
