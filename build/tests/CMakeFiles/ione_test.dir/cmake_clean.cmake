file(REMOVE_RECURSE
  "CMakeFiles/ione_test.dir/ione_test.cc.o"
  "CMakeFiles/ione_test.dir/ione_test.cc.o.d"
  "ione_test"
  "ione_test.pdb"
  "ione_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ione_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
