# Empty dependencies file for ione_test.
# This may be replaced when dependencies are built.
