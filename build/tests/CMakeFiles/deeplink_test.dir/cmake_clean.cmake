file(REMOVE_RECURSE
  "CMakeFiles/deeplink_test.dir/deeplink_test.cc.o"
  "CMakeFiles/deeplink_test.dir/deeplink_test.cc.o.d"
  "deeplink_test"
  "deeplink_test.pdb"
  "deeplink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deeplink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
