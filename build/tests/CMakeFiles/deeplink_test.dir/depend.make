# Empty dependencies file for deeplink_test.
# This may be replaced when dependencies are built.
