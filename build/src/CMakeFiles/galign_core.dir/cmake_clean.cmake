file(REMOVE_RECURSE
  "CMakeFiles/galign_core.dir/core/augmenter.cc.o"
  "CMakeFiles/galign_core.dir/core/augmenter.cc.o.d"
  "CMakeFiles/galign_core.dir/core/config.cc.o"
  "CMakeFiles/galign_core.dir/core/config.cc.o.d"
  "CMakeFiles/galign_core.dir/core/galign.cc.o"
  "CMakeFiles/galign_core.dir/core/galign.cc.o.d"
  "CMakeFiles/galign_core.dir/core/gcn.cc.o"
  "CMakeFiles/galign_core.dir/core/gcn.cc.o.d"
  "CMakeFiles/galign_core.dir/core/losses.cc.o"
  "CMakeFiles/galign_core.dir/core/losses.cc.o.d"
  "CMakeFiles/galign_core.dir/core/model_io.cc.o"
  "CMakeFiles/galign_core.dir/core/model_io.cc.o.d"
  "CMakeFiles/galign_core.dir/core/refinement.cc.o"
  "CMakeFiles/galign_core.dir/core/refinement.cc.o.d"
  "CMakeFiles/galign_core.dir/core/trainer.cc.o"
  "CMakeFiles/galign_core.dir/core/trainer.cc.o.d"
  "libgalign_core.a"
  "libgalign_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
