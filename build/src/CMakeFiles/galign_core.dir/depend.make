# Empty dependencies file for galign_core.
# This may be replaced when dependencies are built.
