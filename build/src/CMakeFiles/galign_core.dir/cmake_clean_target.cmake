file(REMOVE_RECURSE
  "libgalign_core.a"
)
