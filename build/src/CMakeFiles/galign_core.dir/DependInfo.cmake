
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/augmenter.cc" "src/CMakeFiles/galign_core.dir/core/augmenter.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/augmenter.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/galign_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/galign.cc" "src/CMakeFiles/galign_core.dir/core/galign.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/galign.cc.o.d"
  "/root/repo/src/core/gcn.cc" "src/CMakeFiles/galign_core.dir/core/gcn.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/gcn.cc.o.d"
  "/root/repo/src/core/losses.cc" "src/CMakeFiles/galign_core.dir/core/losses.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/losses.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/CMakeFiles/galign_core.dir/core/model_io.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/model_io.cc.o.d"
  "/root/repo/src/core/refinement.cc" "src/CMakeFiles/galign_core.dir/core/refinement.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/refinement.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/galign_core.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/galign_core.dir/core/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/galign_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
