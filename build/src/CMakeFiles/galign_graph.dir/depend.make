# Empty dependencies file for galign_graph.
# This may be replaced when dependencies are built.
