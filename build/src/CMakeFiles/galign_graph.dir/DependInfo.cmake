
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/galign_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/galign_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/galign_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/kcore.cc" "src/CMakeFiles/galign_graph.dir/graph/kcore.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/kcore.cc.o.d"
  "/root/repo/src/graph/noise.cc" "src/CMakeFiles/galign_graph.dir/graph/noise.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/noise.cc.o.d"
  "/root/repo/src/graph/similarity.cc" "src/CMakeFiles/galign_graph.dir/graph/similarity.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/similarity.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/galign_graph.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/galign_graph.dir/graph/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/galign_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
