file(REMOVE_RECURSE
  "libgalign_graph.a"
)
