file(REMOVE_RECURSE
  "CMakeFiles/galign_graph.dir/graph/generators.cc.o"
  "CMakeFiles/galign_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/galign_graph.dir/graph/graph.cc.o"
  "CMakeFiles/galign_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/galign_graph.dir/graph/io.cc.o"
  "CMakeFiles/galign_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/galign_graph.dir/graph/kcore.cc.o"
  "CMakeFiles/galign_graph.dir/graph/kcore.cc.o.d"
  "CMakeFiles/galign_graph.dir/graph/noise.cc.o"
  "CMakeFiles/galign_graph.dir/graph/noise.cc.o.d"
  "CMakeFiles/galign_graph.dir/graph/similarity.cc.o"
  "CMakeFiles/galign_graph.dir/graph/similarity.cc.o.d"
  "CMakeFiles/galign_graph.dir/graph/stats.cc.o"
  "CMakeFiles/galign_graph.dir/graph/stats.cc.o.d"
  "libgalign_graph.a"
  "libgalign_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
