file(REMOVE_RECURSE
  "CMakeFiles/galign_manifold.dir/manifold/pca.cc.o"
  "CMakeFiles/galign_manifold.dir/manifold/pca.cc.o.d"
  "CMakeFiles/galign_manifold.dir/manifold/tsne.cc.o"
  "CMakeFiles/galign_manifold.dir/manifold/tsne.cc.o.d"
  "libgalign_manifold.a"
  "libgalign_manifold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_manifold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
