# Empty dependencies file for galign_manifold.
# This may be replaced when dependencies are built.
