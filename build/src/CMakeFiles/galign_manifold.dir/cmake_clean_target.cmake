file(REMOVE_RECURSE
  "libgalign_manifold.a"
)
