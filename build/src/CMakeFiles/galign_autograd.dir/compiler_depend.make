# Empty compiler generated dependencies file for galign_autograd.
# This may be replaced when dependencies are built.
