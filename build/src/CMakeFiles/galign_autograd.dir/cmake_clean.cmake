file(REMOVE_RECURSE
  "CMakeFiles/galign_autograd.dir/autograd/adam.cc.o"
  "CMakeFiles/galign_autograd.dir/autograd/adam.cc.o.d"
  "CMakeFiles/galign_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/galign_autograd.dir/autograd/ops.cc.o.d"
  "CMakeFiles/galign_autograd.dir/autograd/tape.cc.o"
  "CMakeFiles/galign_autograd.dir/autograd/tape.cc.o.d"
  "libgalign_autograd.a"
  "libgalign_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
