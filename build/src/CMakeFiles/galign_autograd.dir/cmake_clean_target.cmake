file(REMOVE_RECURSE
  "libgalign_autograd.a"
)
