# Empty dependencies file for galign_la.
# This may be replaced when dependencies are built.
