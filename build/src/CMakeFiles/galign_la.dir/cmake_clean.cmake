file(REMOVE_RECURSE
  "CMakeFiles/galign_la.dir/la/decomposition.cc.o"
  "CMakeFiles/galign_la.dir/la/decomposition.cc.o.d"
  "CMakeFiles/galign_la.dir/la/matrix.cc.o"
  "CMakeFiles/galign_la.dir/la/matrix.cc.o.d"
  "CMakeFiles/galign_la.dir/la/ops.cc.o"
  "CMakeFiles/galign_la.dir/la/ops.cc.o.d"
  "CMakeFiles/galign_la.dir/la/sparse.cc.o"
  "CMakeFiles/galign_la.dir/la/sparse.cc.o.d"
  "libgalign_la.a"
  "libgalign_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
