file(REMOVE_RECURSE
  "libgalign_la.a"
)
