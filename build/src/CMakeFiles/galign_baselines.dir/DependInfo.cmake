
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cenalp.cc" "src/CMakeFiles/galign_baselines.dir/baselines/cenalp.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/cenalp.cc.o.d"
  "/root/repo/src/baselines/deeplink.cc" "src/CMakeFiles/galign_baselines.dir/baselines/deeplink.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/deeplink.cc.o.d"
  "/root/repo/src/baselines/final.cc" "src/CMakeFiles/galign_baselines.dir/baselines/final.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/final.cc.o.d"
  "/root/repo/src/baselines/ione.cc" "src/CMakeFiles/galign_baselines.dir/baselines/ione.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/ione.cc.o.d"
  "/root/repo/src/baselines/isorank.cc" "src/CMakeFiles/galign_baselines.dir/baselines/isorank.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/isorank.cc.o.d"
  "/root/repo/src/baselines/naive.cc" "src/CMakeFiles/galign_baselines.dir/baselines/naive.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/naive.cc.o.d"
  "/root/repo/src/baselines/netalign.cc" "src/CMakeFiles/galign_baselines.dir/baselines/netalign.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/netalign.cc.o.d"
  "/root/repo/src/baselines/pale.cc" "src/CMakeFiles/galign_baselines.dir/baselines/pale.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/pale.cc.o.d"
  "/root/repo/src/baselines/regal.cc" "src/CMakeFiles/galign_baselines.dir/baselines/regal.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/regal.cc.o.d"
  "/root/repo/src/baselines/skipgram.cc" "src/CMakeFiles/galign_baselines.dir/baselines/skipgram.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/skipgram.cc.o.d"
  "/root/repo/src/baselines/unialign.cc" "src/CMakeFiles/galign_baselines.dir/baselines/unialign.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/unialign.cc.o.d"
  "/root/repo/src/baselines/walks.cc" "src/CMakeFiles/galign_baselines.dir/baselines/walks.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/walks.cc.o.d"
  "/root/repo/src/baselines/xnetmf.cc" "src/CMakeFiles/galign_baselines.dir/baselines/xnetmf.cc.o" "gcc" "src/CMakeFiles/galign_baselines.dir/baselines/xnetmf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/galign_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
