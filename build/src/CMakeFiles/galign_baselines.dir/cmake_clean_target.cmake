file(REMOVE_RECURSE
  "libgalign_baselines.a"
)
