# Empty dependencies file for galign_baselines.
# This may be replaced when dependencies are built.
