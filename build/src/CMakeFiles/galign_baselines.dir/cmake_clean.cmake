file(REMOVE_RECURSE
  "CMakeFiles/galign_baselines.dir/baselines/cenalp.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/cenalp.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/deeplink.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/deeplink.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/final.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/final.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/ione.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/ione.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/isorank.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/isorank.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/naive.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/naive.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/netalign.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/netalign.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/pale.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/pale.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/regal.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/regal.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/skipgram.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/skipgram.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/unialign.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/unialign.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/walks.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/walks.cc.o.d"
  "CMakeFiles/galign_baselines.dir/baselines/xnetmf.cc.o"
  "CMakeFiles/galign_baselines.dir/baselines/xnetmf.cc.o.d"
  "libgalign_baselines.a"
  "libgalign_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
