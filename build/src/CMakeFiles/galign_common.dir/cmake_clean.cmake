file(REMOVE_RECURSE
  "CMakeFiles/galign_common.dir/common/logging.cc.o"
  "CMakeFiles/galign_common.dir/common/logging.cc.o.d"
  "CMakeFiles/galign_common.dir/common/parallel.cc.o"
  "CMakeFiles/galign_common.dir/common/parallel.cc.o.d"
  "CMakeFiles/galign_common.dir/common/rng.cc.o"
  "CMakeFiles/galign_common.dir/common/rng.cc.o.d"
  "CMakeFiles/galign_common.dir/common/status.cc.o"
  "CMakeFiles/galign_common.dir/common/status.cc.o.d"
  "libgalign_common.a"
  "libgalign_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
