# Empty dependencies file for galign_common.
# This may be replaced when dependencies are built.
