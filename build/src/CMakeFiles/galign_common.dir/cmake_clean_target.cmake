file(REMOVE_RECURSE
  "libgalign_common.a"
)
