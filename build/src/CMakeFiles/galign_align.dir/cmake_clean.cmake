file(REMOVE_RECURSE
  "CMakeFiles/galign_align.dir/align/alignment.cc.o"
  "CMakeFiles/galign_align.dir/align/alignment.cc.o.d"
  "CMakeFiles/galign_align.dir/align/alignment_io.cc.o"
  "CMakeFiles/galign_align.dir/align/alignment_io.cc.o.d"
  "CMakeFiles/galign_align.dir/align/bootstrap.cc.o"
  "CMakeFiles/galign_align.dir/align/bootstrap.cc.o.d"
  "CMakeFiles/galign_align.dir/align/dataset_io.cc.o"
  "CMakeFiles/galign_align.dir/align/dataset_io.cc.o.d"
  "CMakeFiles/galign_align.dir/align/datasets.cc.o"
  "CMakeFiles/galign_align.dir/align/datasets.cc.o.d"
  "CMakeFiles/galign_align.dir/align/ensemble.cc.o"
  "CMakeFiles/galign_align.dir/align/ensemble.cc.o.d"
  "CMakeFiles/galign_align.dir/align/hungarian.cc.o"
  "CMakeFiles/galign_align.dir/align/hungarian.cc.o.d"
  "CMakeFiles/galign_align.dir/align/metrics.cc.o"
  "CMakeFiles/galign_align.dir/align/metrics.cc.o.d"
  "CMakeFiles/galign_align.dir/align/pipeline.cc.o"
  "CMakeFiles/galign_align.dir/align/pipeline.cc.o.d"
  "CMakeFiles/galign_align.dir/align/streaming.cc.o"
  "CMakeFiles/galign_align.dir/align/streaming.cc.o.d"
  "libgalign_align.a"
  "libgalign_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
