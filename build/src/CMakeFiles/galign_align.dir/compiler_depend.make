# Empty compiler generated dependencies file for galign_align.
# This may be replaced when dependencies are built.
