
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/alignment.cc" "src/CMakeFiles/galign_align.dir/align/alignment.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/alignment.cc.o.d"
  "/root/repo/src/align/alignment_io.cc" "src/CMakeFiles/galign_align.dir/align/alignment_io.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/alignment_io.cc.o.d"
  "/root/repo/src/align/bootstrap.cc" "src/CMakeFiles/galign_align.dir/align/bootstrap.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/bootstrap.cc.o.d"
  "/root/repo/src/align/dataset_io.cc" "src/CMakeFiles/galign_align.dir/align/dataset_io.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/dataset_io.cc.o.d"
  "/root/repo/src/align/datasets.cc" "src/CMakeFiles/galign_align.dir/align/datasets.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/datasets.cc.o.d"
  "/root/repo/src/align/ensemble.cc" "src/CMakeFiles/galign_align.dir/align/ensemble.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/ensemble.cc.o.d"
  "/root/repo/src/align/hungarian.cc" "src/CMakeFiles/galign_align.dir/align/hungarian.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/hungarian.cc.o.d"
  "/root/repo/src/align/metrics.cc" "src/CMakeFiles/galign_align.dir/align/metrics.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/metrics.cc.o.d"
  "/root/repo/src/align/pipeline.cc" "src/CMakeFiles/galign_align.dir/align/pipeline.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/pipeline.cc.o.d"
  "/root/repo/src/align/streaming.cc" "src/CMakeFiles/galign_align.dir/align/streaming.cc.o" "gcc" "src/CMakeFiles/galign_align.dir/align/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/galign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/galign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
