file(REMOVE_RECURSE
  "libgalign_align.a"
)
