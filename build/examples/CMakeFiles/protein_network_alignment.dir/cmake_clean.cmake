file(REMOVE_RECURSE
  "CMakeFiles/protein_network_alignment.dir/protein_network_alignment.cpp.o"
  "CMakeFiles/protein_network_alignment.dir/protein_network_alignment.cpp.o.d"
  "protein_network_alignment"
  "protein_network_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_network_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
