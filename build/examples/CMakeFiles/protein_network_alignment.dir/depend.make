# Empty dependencies file for protein_network_alignment.
# This may be replaced when dependencies are built.
