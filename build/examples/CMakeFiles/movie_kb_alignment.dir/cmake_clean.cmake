file(REMOVE_RECURSE
  "CMakeFiles/movie_kb_alignment.dir/movie_kb_alignment.cpp.o"
  "CMakeFiles/movie_kb_alignment.dir/movie_kb_alignment.cpp.o.d"
  "movie_kb_alignment"
  "movie_kb_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_kb_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
