# Empty compiler generated dependencies file for movie_kb_alignment.
# This may be replaced when dependencies are built.
