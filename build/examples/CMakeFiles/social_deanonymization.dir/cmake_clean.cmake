file(REMOVE_RECURSE
  "CMakeFiles/social_deanonymization.dir/social_deanonymization.cpp.o"
  "CMakeFiles/social_deanonymization.dir/social_deanonymization.cpp.o.d"
  "social_deanonymization"
  "social_deanonymization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_deanonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
