# Empty dependencies file for social_deanonymization.
# This may be replaced when dependencies are built.
