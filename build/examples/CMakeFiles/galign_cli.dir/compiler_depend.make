# Empty compiler generated dependencies file for galign_cli.
# This may be replaced when dependencies are built.
