file(REMOVE_RECURSE
  "CMakeFiles/galign_cli.dir/galign_cli.cpp.o"
  "CMakeFiles/galign_cli.dir/galign_cli.cpp.o.d"
  "galign_cli"
  "galign_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
