#include "la/decomposition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace galign {
namespace {

Matrix RandomSymmetric(int64_t n, Rng* rng) {
  Matrix a = Matrix::Gaussian(n, n, rng);
  Matrix at = Transpose(a);
  a.Add(at);
  a.Scale(0.5);
  return a;
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 1}};
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.ValueOrDie().eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.ValueOrDie().eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

class EigenSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigenSizes, ReconstructsInput) {
  const int n = GetParam();
  Rng rng(n);
  Matrix a = RandomSymmetric(n, &rng);
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  const auto& e = r.ValueOrDie();
  // Rebuild A = V diag(w) V^T.
  Matrix vd = e.eigenvectors;
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < n; ++i) vd(i, j) *= e.eigenvalues[j];
  }
  Matrix rebuilt = MatMulTransposedB(vd, e.eigenvectors);
  EXPECT_LT(Matrix::MaxAbsDiff(rebuilt, a), 1e-8);
  // Eigenvalues descending.
  for (int64_t j = 1; j < n; ++j) {
    EXPECT_GE(e.eigenvalues[j - 1], e.eigenvalues[j] - 1e-12);
  }
  // Eigenvectors orthonormal.
  Matrix gram = MatMulTransposedA(e.eigenvectors, e.eigenvectors);
  EXPECT_LT(Matrix::MaxAbsDiff(gram, Matrix::Identity(n)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizes, ::testing::Values(1, 2, 3, 8, 25, 60));

class SvdShapes
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, ReconstructsInput) {
  auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  Matrix a = Matrix::Gaussian(m, n, &rng);
  auto r = ThinSVD(a);
  ASSERT_TRUE(r.ok());
  const SVDResult& s = r.ValueOrDie();
  // A = U diag(sigma) V^T.
  Matrix us = s.u;
  for (int64_t j = 0; j < us.cols(); ++j) {
    for (int64_t i = 0; i < us.rows(); ++i) us(i, j) *= s.sigma[j];
  }
  Matrix rebuilt = MatMulTransposedB(us, s.v);
  EXPECT_LT(Matrix::MaxAbsDiff(rebuilt, a), 1e-7);
  // Singular values non-negative descending.
  for (size_t j = 1; j < s.sigma.size(); ++j) {
    EXPECT_GE(s.sigma[j - 1], s.sigma[j] - 1e-12);
    EXPECT_GE(s.sigma[j], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::make_pair(5, 5),
                                           std::make_pair(10, 4),
                                           std::make_pair(4, 10),
                                           std::make_pair(30, 8),
                                           std::make_pair(1, 6)));

TEST(SvdTest, RankDeficientMatrix) {
  // Rank-1 outer product: exactly one non-zero singular value.
  Matrix u{{1}, {2}, {3}};
  Matrix v{{4, 5}};
  Matrix a = MatMul(u, v);
  auto r = ThinSVD(a);
  ASSERT_TRUE(r.ok());
  const auto& sigma = r.ValueOrDie().sigma;
  EXPECT_GT(sigma[0], 1.0);
  for (size_t j = 1; j < sigma.size(); ++j) EXPECT_NEAR(sigma[j], 0.0, 1e-6);
}

TEST(SvdTest, RejectsEmpty) { EXPECT_FALSE(ThinSVD(Matrix()).ok()); }

TEST(PseudoInverseTest, InvertibleMatrixGivesInverse) {
  Matrix a{{2, 0}, {0, 4}};
  auto p = PseudoInverse(a);
  ASSERT_TRUE(p.ok());
  Matrix prod = MatMul(a, p.ValueOrDie());
  EXPECT_LT(Matrix::MaxAbsDiff(prod, Matrix::Identity(2)), 1e-10);
}

TEST(PseudoInverseTest, MoorePenroseConditions) {
  Rng rng(8);
  Matrix a = Matrix::Gaussian(6, 4, &rng);
  auto p = PseudoInverse(a);
  ASSERT_TRUE(p.ok());
  const Matrix& ap = p.ValueOrDie();
  EXPECT_EQ(ap.rows(), 4);
  EXPECT_EQ(ap.cols(), 6);
  // A A+ A = A and A+ A A+ = A+.
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(MatMul(a, ap), a), a), 1e-8);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(MatMul(ap, a), ap), ap), 1e-8);
}

TEST(PseudoInverseTest, SingularMatrix) {
  Matrix a{{1, 1}, {1, 1}};  // rank 1
  auto p = PseudoInverse(a);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(MatMul(a, p.ValueOrDie()), a), a), 1e-8);
}

TEST(PowerIterationTest, FindsTopEigenvalue) {
  Matrix a{{4, 1}, {1, 2}};
  auto r = PowerIterationTopEigenvalue(a);
  ASSERT_TRUE(r.ok());
  double expected = 3.0 + std::sqrt(2.0);  // (6 + sqrt(8)) / 2
  EXPECT_NEAR(r.ValueOrDie(), expected, 1e-6);
}

TEST(PowerIterationTest, ZeroMatrix) {
  auto r = PowerIterationTopEigenvalue(Matrix(3, 3));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie(), 0.0, 1e-9);
}

TEST(PowerIterationTest, RejectsNonSquare) {
  EXPECT_FALSE(PowerIterationTopEigenvalue(Matrix(2, 3)).ok());
}

}  // namespace
}  // namespace galign
