#include "graph/kcore.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace galign {
namespace {

TEST(KCoreTest, TriangleWithTail) {
  // Triangle 0-1-2 plus a path 2-3-4: triangle nodes have core 2, the tail
  // has core 1.
  auto g = AttributedGraph::Create(
               5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}, Matrix())
               .MoveValueOrDie();
  auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2);
  EXPECT_EQ(core[1], 2);
  EXPECT_EQ(core[2], 2);
  EXPECT_EQ(core[3], 1);
  EXPECT_EQ(core[4], 1);
  EXPECT_EQ(Degeneracy(g), 2);
}

TEST(KCoreTest, CompleteGraphCore) {
  std::vector<Edge> edges;
  for (int64_t u = 0; u < 6; ++u) {
    for (int64_t v = u + 1; v < 6; ++v) edges.emplace_back(u, v);
  }
  auto g = AttributedGraph::Create(6, edges, Matrix()).MoveValueOrDie();
  for (int64_t c : CoreNumbers(g)) EXPECT_EQ(c, 5);
}

TEST(KCoreTest, IsolatedNodesHaveCoreZero) {
  auto g = AttributedGraph::Create(4, {{0, 1}}, Matrix()).MoveValueOrDie();
  auto core = CoreNumbers(g);
  EXPECT_EQ(core[2], 0);
  EXPECT_EQ(core[3], 0);
  EXPECT_EQ(core[0], 1);
}

TEST(KCoreTest, EmptyGraph) {
  auto g = AttributedGraph::Create(0, {}, Matrix()).MoveValueOrDie();
  EXPECT_TRUE(CoreNumbers(g).empty());
  EXPECT_EQ(Degeneracy(g), 0);
}

TEST(KCoreTest, CoreDefinitionHolds) {
  // Property: within the k-core subgraph, every node has degree >= k.
  Rng rng(1);
  auto g = BarabasiAlbert(200, 3, &rng).MoveValueOrDie();
  const int64_t k = 3;
  auto sub = KCoreSubgraph(g, k).MoveValueOrDie();
  for (int64_t v = 0; v < sub.num_nodes(); ++v) {
    EXPECT_GE(sub.Degree(v), k);
  }
  EXPECT_GT(sub.num_nodes(), 0);
}

TEST(KCoreTest, CoreNumbersAreMonotoneUnderK) {
  Rng rng(2);
  auto g = ErdosRenyi(150, 0.06, &rng).MoveValueOrDie();
  auto c1 = KCore(g, 1);
  auto c2 = KCore(g, 2);
  auto c3 = KCore(g, 3);
  EXPECT_GE(c1.size(), c2.size());
  EXPECT_GE(c2.size(), c3.size());
}

TEST(KCoreTest, PermutationEquivariant) {
  Rng rng(3);
  auto g = BarabasiAlbert(80, 2, &rng).MoveValueOrDie();
  auto perm = rng.Permutation(80);
  auto pg = g.Permuted(perm).MoveValueOrDie();
  auto core = CoreNumbers(g);
  auto pcore = CoreNumbers(pg);
  for (int64_t v = 0; v < 80; ++v) {
    EXPECT_EQ(pcore[perm[v]], core[v]);
  }
}

}  // namespace
}  // namespace galign
