#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/trainer.h"
#include "graph/generators.h"

namespace galign {
namespace {

AttributedGraph SmallGraph(uint64_t seed) {
  Rng rng(seed);
  auto g = BarabasiAlbert(40, 2, &rng).MoveValueOrDie();
  return g.WithAttributes(BinaryAttributes(40, 6, 0.3, &rng))
      .MoveValueOrDie();
}

TEST(EarlyStopTest, DisabledRunsFullBudget) {
  AttributedGraph g = SmallGraph(1);
  GAlignConfig cfg;
  cfg.epochs = 25;
  cfg.embedding_dim = 10;
  cfg.early_stop_patience = 0;
  Rng rng(2);
  MultiOrderGcn gcn(cfg.num_layers, 6, cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &rng).ok());
  EXPECT_EQ(trainer.loss_history().size(), 25u);
}

TEST(EarlyStopTest, PlateauTerminatesEarly) {
  // A huge tolerance makes every epoch after the baseline count as "no
  // improvement": training must stop after 1 + patience epochs.
  AttributedGraph g = SmallGraph(3);
  GAlignConfig cfg;
  cfg.epochs = 50;
  cfg.embedding_dim = 10;
  cfg.early_stop_patience = 3;
  cfg.early_stop_tolerance = 1e9;
  Rng rng(4);
  MultiOrderGcn gcn(cfg.num_layers, 6, cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &rng).ok());
  EXPECT_EQ(trainer.loss_history().size(), 4u);  // baseline + 3 stalls
}

TEST(EarlyStopTest, StopConditionMatchesHistory) {
  // Whenever training stops before the epoch budget, the last `patience`
  // epochs must indeed show no improvement over the running best (i.e. the
  // stop was justified by the recorded history).
  AttributedGraph g = SmallGraph(5);
  GAlignConfig cfg;
  cfg.epochs = 40;
  cfg.embedding_dim = 10;
  cfg.early_stop_patience = 5;
  cfg.early_stop_tolerance = 1e-9;
  Rng rng(6);
  MultiOrderGcn gcn(cfg.num_layers, 6, cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &rng).ok());
  const auto& h = trainer.loss_history();
  if (h.size() < static_cast<size_t>(cfg.epochs)) {
    ASSERT_GE(h.size(), 5u);
    double best_before_tail = h[0];
    for (size_t i = 0; i + 5 < h.size(); ++i) {
      best_before_tail = std::min(best_before_tail, h[i]);
    }
    for (size_t i = h.size() - 5; i < h.size(); ++i) {
      EXPECT_GE(h[i], best_before_tail -
                          cfg.early_stop_tolerance * std::fabs(best_before_tail) -
                          1e-12);
    }
  }
}

TEST(EarlyStopTest, StoppedModelStillUsable) {
  AttributedGraph g = SmallGraph(7);
  GAlignConfig cfg;
  cfg.epochs = 200;
  cfg.embedding_dim = 10;
  cfg.early_stop_patience = 5;
  cfg.early_stop_tolerance = 1e-3;
  Rng rng(8);
  MultiOrderGcn gcn(cfg.num_layers, 6, cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &rng).ok());
  EXPECT_LT(trainer.loss_history().size(), 200u);  // actually stopped early
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto layers = gcn.ForwardInference(lap, g.attributes());
  for (const Matrix& h : layers) EXPECT_TRUE(h.AllFinite());
}

}  // namespace
}  // namespace galign
