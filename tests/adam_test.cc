#include "autograd/adam.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "common/rng.h"
#include "la/ops.h"

namespace galign {
namespace {

TEST(AdamTest, FirstStepMovesByLr) {
  // With bias correction, the very first Adam update has magnitude ~lr.
  Matrix p(1, 1, 0.0);
  Matrix g(1, 1, 3.0);
  AdamOptimizer adam(AdamOptimizer::Options{.lr = 0.1});
  adam.Register({&p});
  adam.Step({&p}, {&g});
  EXPECT_NEAR(p(0, 0), -0.1, 1e-6);
}

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 5)^2, grad = 2 (x - 5).
  Matrix x(1, 1, 0.0);
  AdamOptimizer adam(AdamOptimizer::Options{.lr = 0.1});
  adam.Register({&x});
  for (int i = 0; i < 500; ++i) {
    Matrix g(1, 1, 2.0 * (x(0, 0) - 5.0));
    adam.Step({&x}, {&g});
  }
  EXPECT_NEAR(x(0, 0), 5.0, 1e-2);
}

TEST(AdamTest, MinimizesRosenbrockish2D) {
  // f(x, y) = (1 - x)^2 + 10 (y - x^2)^2: a curved valley.
  Matrix p{{-1.0, 1.0}};
  AdamOptimizer adam(AdamOptimizer::Options{.lr = 0.02});
  adam.Register({&p});
  for (int i = 0; i < 8000; ++i) {
    double x = p(0, 0), y = p(0, 1);
    Matrix g(1, 2);
    g(0, 0) = -2.0 * (1 - x) - 40.0 * x * (y - x * x);
    g(0, 1) = 20.0 * (y - x * x);
    adam.Step({&p}, {&g});
  }
  EXPECT_NEAR(p(0, 0), 1.0, 0.05);
  EXPECT_NEAR(p(0, 1), 1.0, 0.1);
}

TEST(AdamTest, MultipleParameters) {
  Matrix a(2, 2, 1.0), b(3, 1, -2.0);
  AdamOptimizer adam(AdamOptimizer::Options{.lr = 0.5});
  adam.Register({&a, &b});
  // grad = value drives both to zero.
  for (int i = 0; i < 300; ++i) {
    Matrix ga = a, gb = b;
    adam.Step({&a, &b}, {&ga, &gb});
  }
  EXPECT_LT(a.MaxAbs(), 0.05);
  EXPECT_LT(b.MaxAbs(), 0.05);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Matrix p(1, 1, 1.0);
  Matrix zero_grad(1, 1, 0.0);
  AdamOptimizer adam(
      AdamOptimizer::Options{.lr = 0.01, .weight_decay = 0.1});
  adam.Register({&p});
  for (int i = 0; i < 200; ++i) adam.Step({&p}, {&zero_grad});
  EXPECT_LT(p(0, 0), 1.0);
}

TEST(AdamTest, StepCountTracksCalls) {
  Matrix p(1, 1, 0.0), g(1, 1, 1.0);
  AdamOptimizer adam;
  adam.Register({&p});
  EXPECT_EQ(adam.step_count(), 0);
  adam.Step({&p}, {&g});
  adam.Step({&p}, {&g});
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(AdamTest, RegisterResetsState) {
  Matrix p(1, 1, 0.0), g(1, 1, 1.0);
  AdamOptimizer adam(AdamOptimizer::Options{.lr = 0.1});
  adam.Register({&p});
  adam.Step({&p}, {&g});
  double after_one = p(0, 0);
  p(0, 0) = 0.0;
  adam.Register({&p});
  EXPECT_EQ(adam.step_count(), 0);
  adam.Step({&p}, {&g});
  EXPECT_NEAR(p(0, 0), after_one, 1e-12);  // identical fresh first step
}

TEST(AdamTest, TrainsLinearRegressionViaAutograd) {
  // Fit y = X w with the tape: full pipeline optimizer + autograd.
  Rng rng(21);
  Matrix x = Matrix::Gaussian(40, 3, &rng);
  Matrix w_true{{1.5}, {-2.0}, {0.5}};
  Matrix y = MatMul(x, w_true);
  Matrix w(3, 1, 0.0);
  AdamOptimizer adam(AdamOptimizer::Options{.lr = 0.05});
  adam.Register({&w});
  for (int epoch = 0; epoch < 400; ++epoch) {
    Tape tape;
    Var wv = tape.Leaf(w, true);
    Var xv = tape.Leaf(x, false);
    Var pred = ag::MatMul(&tape, xv, wv);
    Var loss = ag::MSELoss(&tape, pred, y);
    tape.Backward(loss);
    adam.Step({&w}, {&tape.grad(wv)});
  }
  EXPECT_LT(Matrix::MaxAbsDiff(w, w_true), 0.05);
}

}  // namespace
}  // namespace galign
