// Degenerate-graph conformance matrix (DESIGN.md §9): every aligner in the
// registry, against every degenerate pair shape, must return either a clean
// non-OK Status or a valid finite alignment — never crash, never NaN. Both
// the dense Align() and the budget-degraded AlignTopK() entry points are
// held to the contract.
//
// Also pins the degree-zero normalization contract: isolated nodes must not
// put 1/sqrt(0) infinities into any propagation matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "align/metrics.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"
#include "graph/ann/ann_index.h"
#include "graph/generators.h"

namespace galign {
namespace {

std::vector<std::unique_ptr<Aligner>> AllAligners() {
  std::vector<std::unique_ptr<Aligner>> out;
  GAlignConfig cfg;
  cfg.epochs = 4;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 1;
  out.push_back(std::make_unique<GAlignAligner>(cfg));
  out.push_back(std::make_unique<FinalAligner>());
  out.push_back(std::make_unique<IsoRankAligner>());
  out.push_back(std::make_unique<RegalAligner>());
  out.push_back(std::make_unique<UniAlignAligner>());
  out.push_back(std::make_unique<DegreeRankAligner>());
  out.push_back(std::make_unique<AttributeOnlyAligner>());
  out.push_back(std::make_unique<RandomAligner>());

  PaleConfig pale;
  pale.embedding_dim = 8;
  pale.embedding_epochs = 3;
  pale.mapping_epochs = 10;
  out.push_back(std::make_unique<PaleAligner>(pale));

  DeepLinkConfig deeplink;
  deeplink.walks.walks_per_node = 2;
  deeplink.walks.walk_length = 4;
  deeplink.skipgram.dim = 8;
  deeplink.skipgram.epochs = 1;
  deeplink.mapping_epochs = 10;
  out.push_back(std::make_unique<DeepLinkAligner>(deeplink));

  IoneConfig ione;
  ione.dim = 8;
  ione.epochs = 5;
  out.push_back(std::make_unique<IoneAligner>(ione));

  CenalpConfig cenalp;
  cenalp.walks.walks_per_node = 2;
  cenalp.walks.walk_length = 4;
  cenalp.skipgram.dim = 8;
  cenalp.skipgram.epochs = 1;
  cenalp.expansion_rounds = 1;
  out.push_back(std::make_unique<CenalpAligner>(cenalp));

  NetAlignConfig netalign;
  netalign.candidates_per_node = 3;
  netalign.iterations = 3;
  out.push_back(std::make_unique<NetAlignAligner>(netalign));
  return out;
}

AttributedGraph EmptyGraph() {
  return AttributedGraph::Create(0, {}, Matrix(0, 4)).MoveValueOrDie();
}

AttributedGraph SingleNode() {
  return AttributedGraph::Create(1, {}, Matrix(1, 4, 1.0)).MoveValueOrDie();
}

AttributedGraph NoEdges(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return AttributedGraph::Create(n, {}, BinaryAttributes(n, 4, 0.3, &rng))
      .MoveValueOrDie();
}

// Nodes with an all-zero attribute row next to regular nodes: the cosine
// kernels must define them as zero similarity, not 0/0.
AttributedGraph ZeroAttributeRows(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int64_t v = 1; v < n; ++v) edges.push_back({v - 1, v});
  Matrix attrs = BinaryAttributes(n, 4, 0.4, &rng);
  for (int64_t c = 0; c < attrs.cols(); ++c) attrs(0, c) = 0.0;
  return AttributedGraph::Create(n, std::move(edges), std::move(attrs))
      .MoveValueOrDie();
}

AttributedGraph CompleteGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return AttributedGraph::Create(n, std::move(edges),
                                 BinaryAttributes(n, 4, 0.3, &rng))
      .MoveValueOrDie();
}

// Hub + leaves + a few isolated nodes: maximal degree skew plus degree 0.
AttributedGraph StarWithIsolated(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int64_t v = 1; v < n - 2; ++v) edges.push_back({0, v});
  return AttributedGraph::Create(n, std::move(edges),
                                 BinaryAttributes(n, 4, 0.3, &rng))
      .MoveValueOrDie();
}

Supervision FewSeeds(const AttributedGraph& s, const AttributedGraph& t) {
  Supervision sup;
  const int64_t n = std::min({s.num_nodes(), t.num_nodes(), int64_t{3}});
  for (int64_t v = 0; v < n; ++v) sup.seeds.emplace_back(v, v);
  return sup;
}

void ExpectConformance(Aligner* a, const AttributedGraph& s,
                       const AttributedGraph& t, const std::string& shape) {
  for (const Supervision& sup : {Supervision{}, FewSeeds(s, t)}) {
    const std::string label =
        a->name() + " on " + shape + " (seeds=" +
        std::to_string(sup.seeds.size()) + ")";
    auto dense = a->Align(s, t, sup);
    if (dense.ok()) {
      EXPECT_EQ(dense.ValueOrDie().rows(), s.num_nodes()) << label;
      EXPECT_EQ(dense.ValueOrDie().cols(), t.num_nodes()) << label;
      EXPECT_TRUE(dense.ValueOrDie().AllFinite()) << label;
    }
    auto topk = a->AlignTopK(s, t, sup, RunContext(), 3);
    if (topk.ok()) {
      const TopKAlignment& c = topk.ValueOrDie();
      EXPECT_EQ(c.rows, s.num_nodes()) << label;
      EXPECT_EQ(c.cols, t.num_nodes()) << label;
      for (size_t i = 0; i < c.score.size(); ++i) {
        if (c.index[i] >= 0) {
          EXPECT_TRUE(std::isfinite(c.score[i])) << label << " slot " << i;
        }
      }
    }
    // Non-OK is conforming: the contract is a clean Status, not success.
  }
}

struct ShapeCase {
  std::string name;
  AttributedGraph source;
  AttributedGraph target;
};

std::vector<ShapeCase> DegenerateShapes() {
  std::vector<ShapeCase> shapes;
  shapes.push_back({"empty", EmptyGraph(), EmptyGraph()});
  shapes.push_back({"empty-vs-regular", EmptyGraph(), NoEdges(6, 11)});
  shapes.push_back({"single-node", SingleNode(), SingleNode()});
  shapes.push_back({"no-edges", NoEdges(10, 1), NoEdges(8, 2)});
  shapes.push_back(
      {"zero-attribute-rows", ZeroAttributeRows(10, 3), ZeroAttributeRows(10, 4)});
  shapes.push_back({"complete-K20", CompleteGraph(20, 5), CompleteGraph(20, 6)});
  shapes.push_back(
      {"star-with-isolated", StarWithIsolated(12, 7), StarWithIsolated(12, 8)});
  return shapes;
}

TEST(DegenerateConformanceTest, AllAlignersAllShapes) {
  auto shapes = DegenerateShapes();
  for (auto& a : AllAligners()) {
    for (const auto& shape : shapes) {
      ExpectConformance(a.get(), shape.source, shape.target, shape.name);
    }
  }
}

TEST(DegenerateConformanceTest, BudgetedRunsOnDegenerateShapesStayClean) {
  // A tiny budget on degenerate shapes must produce a clean Status or a
  // valid result — never a crash inside admission or the chunked kernel.
  auto shapes = DegenerateShapes();
  for (auto& a : AllAligners()) {
    for (const auto& shape : shapes) {
      RunContext ctx = RunContext::WithMemoryBudget(32 << 10);
      auto topk = a->AlignTopK(shape.source, shape.target, Supervision{}, ctx,
                               3);
      if (topk.ok()) {
        EXPECT_EQ(topk.ValueOrDie().rows, shape.source.num_nodes())
            << a->name() << " on " << shape.name;
      }
    }
  }
}

// --- ANN-routed conformance (DESIGN.md §11) -------------------------------
//
// Every aligner that gained an ANN route (GAlign, REGAL, DegreeRank,
// AttributeOnly) is forced through it (mode kOn bypasses the size
// threshold) over the degenerate shapes, plus the ANN-specific hazards:
// k >= n (padding, not out-of-range ids), all-identical embeddings (every
// point in one LSH bucket / one HNSW cluster), and a low memory budget.

std::vector<std::unique_ptr<Aligner>> AnnRoutedAligners() {
  std::vector<std::unique_ptr<Aligner>> out;
  GAlignConfig cfg;
  cfg.epochs = 4;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 1;
  out.push_back(std::make_unique<GAlignAligner>(cfg));
  out.push_back(std::make_unique<RegalAligner>());
  out.push_back(std::make_unique<DegreeRankAligner>());
  out.push_back(std::make_unique<AttributeOnlyAligner>());
  return out;
}

// All nodes share one attribute row: embeddings collapse to a single point.
AttributedGraph IdenticalAttributes(int64_t n) {
  std::vector<Edge> edges;
  for (int64_t v = 1; v < n; ++v) edges.push_back({v - 1, v});
  return AttributedGraph::Create(n, std::move(edges), Matrix(n, 4, 1.0))
      .MoveValueOrDie();
}

void ExpectAnnConformance(Aligner* a, const AttributedGraph& s,
                          const AttributedGraph& t, const std::string& shape,
                          const RunContext& ctx) {
  for (int64_t k : {int64_t{3}, t.num_nodes() + 5}) {
    const std::string label = a->name() + " (ann) on " + shape +
                              " k=" + std::to_string(k);
    auto topk = a->AlignTopK(s, t, Supervision{}, ctx, k);
    if (!topk.ok()) continue;  // a clean Status is conforming
    const TopKAlignment& c = topk.ValueOrDie();
    EXPECT_EQ(c.rows, s.num_nodes()) << label;
    EXPECT_EQ(c.cols, t.num_nodes()) << label;
    EXPECT_LE(c.k, std::max<int64_t>(k, 0)) << label;
    for (int64_t i = 0; i < c.rows_computed * c.k; ++i) {
      EXPECT_GE(c.index[i], -1) << label << " slot " << i;
      EXPECT_LT(c.index[i], t.num_nodes()) << label << " slot " << i;
      if (c.index[i] >= 0) {
        EXPECT_TRUE(std::isfinite(c.score[i])) << label << " slot " << i;
      }
    }
  }
}

TEST(DegenerateConformanceTest, AnnRoutedAlignersAllShapes) {
  auto shapes = DegenerateShapes();
  shapes.push_back(
      {"identical-attributes", IdenticalAttributes(10), IdenticalAttributes(8)});
  for (AnnBackend backend : {AnnBackend::kLsh, AnnBackend::kHnsw}) {
    for (auto& a : AnnRoutedAligners()) {
      AnnPolicy policy;
      policy.mode = AnnMode::kOn;
      policy.config.backend = backend;
      a->set_ann_policy(policy);
      for (const auto& shape : shapes) {
        ExpectAnnConformance(a.get(), shape.source, shape.target, shape.name,
                             RunContext());
      }
    }
  }
}

TEST(DegenerateConformanceTest, AnnRoutedBudgetedRunsStayClean) {
  auto shapes = DegenerateShapes();
  shapes.push_back(
      {"identical-attributes", IdenticalAttributes(10), IdenticalAttributes(8)});
  for (AnnBackend backend : {AnnBackend::kLsh, AnnBackend::kHnsw}) {
    for (auto& a : AnnRoutedAligners()) {
      AnnPolicy policy;
      policy.mode = AnnMode::kOn;
      policy.config.backend = backend;
      a->set_ann_policy(policy);
      for (const auto& shape : shapes) {
        RunContext ctx = RunContext::WithMemoryBudget(32 << 10);
        ExpectAnnConformance(a.get(), shape.source, shape.target, shape.name,
                             ctx);
      }
    }
  }
}

// --- Degree-zero normalization regression (satellite audit) ---------------

TEST(DegreeZeroTest, NormalizedAdjacencyFiniteWithIsolatedNodes) {
  auto g = StarWithIsolated(12, 9);
  auto norm = g.NormalizedAdjacency();
  ASSERT_TRUE(norm.ok()) << norm.status().ToString();
  const SparseMatrix& m = norm.ValueOrDie();
  for (double v : m.values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // The self-loop augmentation defines an isolated node's row as exactly
  // its self-loop: degree 0 becomes (0 + 1)^-1/2 * (0 + 1)^-1/2 = 1.
  const int64_t isolated = g.num_nodes() - 1;
  ASSERT_EQ(g.Degree(isolated), 0);
  EXPECT_DOUBLE_EQ(m.At(isolated, isolated), 1.0);
  // And no spurious coupling to the rest of the graph.
  EXPECT_DOUBLE_EQ(m.At(isolated, 0), 0.0);
}

TEST(DegreeZeroTest, InfluenceNormalizationFiniteWithIsolatedNodes) {
  auto g = StarWithIsolated(10, 10);
  std::vector<double> influence(g.num_nodes(), 1.0);
  influence[0] = 0.25;  // amplified hub, as refinement produces
  auto norm = g.NormalizedAdjacency(influence);
  ASSERT_TRUE(norm.ok()) << norm.status().ToString();
  for (double v : norm.ValueOrDie().values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(DegreeZeroTest, FinalAndIsoRankFiniteWithIsolatedNodes) {
  auto s = StarWithIsolated(10, 11);
  auto t = StarWithIsolated(10, 12);
  Supervision sup = FewSeeds(s, t);
  FinalAligner fin;
  auto fr = fin.Align(s, t, sup);
  ASSERT_TRUE(fr.ok()) << fr.status().ToString();
  EXPECT_TRUE(fr.ValueOrDie().AllFinite());
  IsoRankAligner iso;
  auto ir = iso.Align(s, t, sup);
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  EXPECT_TRUE(ir.ValueOrDie().AllFinite());
}

TEST(DegreeZeroTest, GAlignFiniteWithIsolatedNodes) {
  GAlignConfig cfg;
  cfg.epochs = 3;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 1;
  GAlignAligner a(cfg);
  auto s = StarWithIsolated(10, 13);
  auto t = StarWithIsolated(10, 14);
  auto r = a.Align(s, t, Supervision{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().AllFinite());
}

}  // namespace
}  // namespace galign
