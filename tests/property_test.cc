// Cross-cutting property tests over the whole alignment stack:
//  - self-alignment: every method must align a graph with an exact permuted
//    copy of itself far above chance, across topology generators;
//  - metric invariances: permutation consistency and monotone-transform
//    invariance of rank-based metrics;
//  - aligner output contracts under unusual but legal inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "align/metrics.h"
#include "baselines/final.h"
#include "baselines/isorank.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "la/ops.h"

namespace galign {
namespace {

enum class Topology { kErdosRenyi, kBarabasiAlbert, kWattsStrogatz, kPowerLaw };
enum class Method { kGAlign, kFinal, kIsoRank, kRegal, kUniAlign };

AttributedGraph MakeTopology(Topology t, int64_t n, Rng* rng) {
  AttributedGraph g;
  switch (t) {
    case Topology::kErdosRenyi:
      g = ErdosRenyi(n, 8.0 / n, rng).MoveValueOrDie();
      break;
    case Topology::kBarabasiAlbert:
      g = BarabasiAlbert(n, 3, rng).MoveValueOrDie();
      break;
    case Topology::kWattsStrogatz:
      g = WattsStrogatz(n, 3, 0.2, rng).MoveValueOrDie();
      break;
    case Topology::kPowerLaw:
      g = PowerLawGraph(n, 3 * n, 2.5, rng).MoveValueOrDie();
      break;
  }
  return g.WithAttributes(BinaryAttributes(n, 10, 0.25, rng))
      .MoveValueOrDie();
}

std::unique_ptr<Aligner> MakeMethod(Method m) {
  switch (m) {
    case Method::kGAlign: {
      GAlignConfig cfg;
      cfg.epochs = 15;
      cfg.embedding_dim = 16;
      cfg.refinement_iterations = 2;
      return std::make_unique<GAlignAligner>(cfg);
    }
    case Method::kFinal:
      return std::make_unique<FinalAligner>();
    case Method::kIsoRank:
      return std::make_unique<IsoRankAligner>();
    case Method::kRegal:
      return std::make_unique<RegalAligner>();
    case Method::kUniAlign:
      return std::make_unique<UniAlignAligner>();
  }
  return nullptr;
}

class SelfAlignment
    : public ::testing::TestWithParam<std::tuple<Topology, Method>> {};

TEST_P(SelfAlignment, BeatsChanceOnExactPermutedCopy) {
  auto [topology, method] = GetParam();
  Rng rng(static_cast<uint64_t>(topology) * 17 +
          static_cast<uint64_t>(method) + 5);
  AttributedGraph g = MakeTopology(topology, 60, &rng);
  NoisyCopyOptions opts;  // zero noise, permutation only
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

  auto aligner = MakeMethod(method);
  Rng seed_rng(7);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.1, &seed_rng);
  auto s = aligner->Align(pair.source, pair.target, sup);
  ASSERT_TRUE(s.ok()) << aligner->name() << ": " << s.status().ToString();
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  // Chance AUC is 0.5; every real method must clear it decisively on an
  // exact copy.
  EXPECT_GT(m.auc, 0.58) << aligner->name() << " on topology "
                         << static_cast<int>(topology);
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfAlignment,
    ::testing::Combine(::testing::Values(Topology::kErdosRenyi,
                                         Topology::kBarabasiAlbert,
                                         Topology::kWattsStrogatz,
                                         Topology::kPowerLaw),
                       ::testing::Values(Method::kGAlign, Method::kFinal,
                                         Method::kIsoRank, Method::kRegal,
                                         Method::kUniAlign)));

TEST(MetricInvarianceTest, MonotoneTransformPreservesRankMetrics) {
  Rng rng(1);
  Matrix s = Matrix::Uniform(30, 30, &rng);
  std::vector<int64_t> gt(30);
  for (int64_t v = 0; v < 30; ++v) gt[v] = (v * 7) % 30;
  AlignmentMetrics before = ComputeMetrics(s, gt);
  // exp() is strictly monotone: all rank-based metrics must be unchanged.
  Matrix transformed = Map(s, [](double v) { return std::exp(3.0 * v); });
  AlignmentMetrics after = ComputeMetrics(transformed, gt);
  EXPECT_DOUBLE_EQ(before.success_at_1, after.success_at_1);
  EXPECT_DOUBLE_EQ(before.map, after.map);
  EXPECT_DOUBLE_EQ(before.auc, after.auc);
}

TEST(MetricInvarianceTest, ColumnPermutationConsistency) {
  // Permuting target columns together with the ground truth leaves every
  // metric unchanged.
  Rng rng(2);
  Matrix s = Matrix::Uniform(20, 25, &rng);
  std::vector<int64_t> gt(20);
  for (int64_t v = 0; v < 20; ++v) gt[v] = v;
  AlignmentMetrics before = ComputeMetrics(s, gt);

  std::vector<int64_t> perm = rng.Permutation(25);
  Matrix permuted(20, 25);
  for (int64_t r = 0; r < 20; ++r) {
    for (int64_t c = 0; c < 25; ++c) permuted(r, perm[c]) = s(r, c);
  }
  std::vector<int64_t> permuted_gt(20);
  for (int64_t v = 0; v < 20; ++v) permuted_gt[v] = perm[gt[v]];
  AlignmentMetrics after = ComputeMetrics(permuted, permuted_gt);
  EXPECT_DOUBLE_EQ(before.success_at_1, after.success_at_1);
  EXPECT_DOUBLE_EQ(before.map, after.map);
  EXPECT_NEAR(before.auc, after.auc, 1e-12);
}

TEST(MetricInvarianceTest, RowSubsetConsistency) {
  // Metrics over a subset of anchors equal metrics computed with the other
  // anchors masked out of the ground truth.
  Rng rng(3);
  Matrix s = Matrix::Uniform(20, 20, &rng);
  std::vector<int64_t> full(20), masked(20, -1);
  for (int64_t v = 0; v < 20; ++v) full[v] = (v * 3) % 20;
  for (int64_t v = 0; v < 10; ++v) masked[v] = full[v];
  AlignmentMetrics m = ComputeMetrics(s, masked);
  EXPECT_EQ(m.num_anchors, 10);
  // Manual mean over the kept rows.
  double mrr = 0;
  for (int64_t v = 0; v < 10; ++v) {
    mrr += 1.0 / static_cast<double>(RankInRow(s, v, full[v]));
  }
  EXPECT_NEAR(m.map, mrr / 10.0, 1e-12);
}

TEST(PermutationEquivarianceTest, GAlignScoresFollowNodeRelabeling) {
  // Aligning (G, P(G)) and (G, P'(P(G))) must produce matrices related by
  // the column permutation P'.
  Rng rng(4);
  AttributedGraph g = MakeTopology(Topology::kBarabasiAlbert, 40, &rng);
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

  std::vector<int64_t> relabel = rng.Permutation(pair.target.num_nodes());
  AttributedGraph target2 = pair.target.Permuted(relabel).MoveValueOrDie();

  GAlignConfig cfg;
  cfg.epochs = 10;
  cfg.embedding_dim = 12;
  cfg.use_refinement = false;  // refinement breaks exact equality (greedy)
  cfg.use_augmentation = false;  // augmentation draws graph-dependent noise
  GAlignAligner a1(cfg), a2(cfg);
  Matrix s1 = a1.Align(pair.source, pair.target, {}).MoveValueOrDie();
  Matrix s2 = a2.Align(pair.source, target2, {}).MoveValueOrDie();
  double max_diff = 0;
  for (int64_t v = 0; v < s1.rows(); ++v) {
    for (int64_t u = 0; u < s1.cols(); ++u) {
      max_diff = std::max(max_diff,
                          std::fabs(s1(v, u) - s2(v, relabel[u])));
    }
  }
  EXPECT_LT(max_diff, 1e-9);
}

}  // namespace
}  // namespace galign
