#include <gtest/gtest.h>

#include "align/metrics.h"
#include "baselines/cenalp.h"
#include "baselines/final.h"
#include "baselines/isorank.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/skipgram.h"
#include "baselines/walks.h"
#include "baselines/xnetmf.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "la/ops.h"

namespace galign {
namespace {

AlignmentPair CleanPair(uint64_t seed, int64_t n = 60) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 10, 0.25, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;  // pure permutation
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

Supervision TenPercentSeeds(const AlignmentPair& pair, uint64_t seed) {
  Rng rng(seed);
  return SampleSeeds(pair.ground_truth, 0.1, &rng);
}

// ---------------------------------------------------------------- xNetMF

TEST(XNetMfTest, StructuralFeaturesShape) {
  AlignmentPair pair = CleanPair(1);
  XNetMfConfig cfg;
  Matrix f = StructuralFeatures(pair.source, cfg);
  EXPECT_EQ(f.rows(), pair.source.num_nodes());
  EXPECT_GT(f.cols(), 0);
  EXPECT_TRUE(f.AllFinite());
  // A node's 1-hop mass equals its degree.
  cfg.max_hops = 1;
  Matrix f1 = StructuralFeatures(pair.source, cfg);
  for (int64_t v = 0; v < pair.source.num_nodes(); ++v) {
    EXPECT_NEAR(f1.Row(v).Sum(), static_cast<double>(pair.source.Degree(v)),
                1e-9);
  }
}

TEST(XNetMfTest, IsomorphicNodesGetCloseFeatures) {
  AlignmentPair pair = CleanPair(2);
  XNetMfConfig cfg;
  Matrix fs = StructuralFeatures(pair.source, cfg);
  Matrix ft = StructuralFeatures(pair.target, cfg);
  for (int64_t v = 0; v < pair.source.num_nodes(); ++v) {
    int64_t t = pair.ground_truth[v];
    EXPECT_NEAR(RowSquaredDistance(fs, v, ft, t), 0.0, 1e-9);
  }
}

TEST(XNetMfTest, EmbeddingShapeAndNormalization) {
  AlignmentPair pair = CleanPair(3);
  XNetMfConfig cfg;
  cfg.num_landmarks = 20;
  auto y = XNetMfEmbed(pair.source, pair.target, cfg);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y.ValueOrDie().rows(),
            pair.source.num_nodes() + pair.target.num_nodes());
  EXPECT_TRUE(y.ValueOrDie().AllFinite());
}

// ---------------------------------------------------------------- Walks

TEST(WalksTest, UniformWalksShapeAndValidity) {
  AlignmentPair pair = CleanPair(4);
  WalkConfig cfg;
  cfg.walks_per_node = 2;
  cfg.walk_length = 10;
  Rng rng(5);
  auto walks = UniformWalks(pair.source, cfg, &rng);
  EXPECT_EQ(walks.size(), static_cast<size_t>(2 * pair.source.num_nodes()));
  for (const auto& w : walks) {
    ASSERT_FALSE(w.empty());
    EXPECT_LE(w.size(), 10u);
    for (size_t i = 1; i < w.size(); ++i) {
      EXPECT_TRUE(pair.source.HasEdge(w[i - 1], w[i]))
          << "walk step must follow an edge";
    }
  }
}

TEST(WalksTest, CrossWalksMergeAnchoredTokens) {
  AlignmentPair pair = CleanPair(6);
  std::vector<int64_t> anchors(pair.source.num_nodes(), -1);
  anchors[0] = pair.ground_truth[0];
  WalkConfig cfg;
  cfg.walks_per_node = 1;
  cfg.walk_length = 15;
  cfg.cross_probability = 1.0;
  Rng rng(7);
  auto walks = CrossNetworkWalks(pair.source, pair.target, anchors, cfg, &rng);
  const int64_t n1 = pair.source.num_nodes();
  // The anchored target node's token (n1 + t) must never appear: it is
  // rewritten to the shared source token.
  const int64_t forbidden = n1 + anchors[0];
  for (const auto& w : walks) {
    for (int64_t tok : w) {
      EXPECT_NE(tok, forbidden);
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, n1 + pair.target.num_nodes());
    }
  }
}

// ---------------------------------------------------------------- SkipGram

TEST(SkipGramTest, EmbedsCoOccurringTokensCloser) {
  // Corpus with two disjoint token communities.
  std::vector<std::vector<int64_t>> walks;
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    std::vector<int64_t> w;
    int64_t base = (i % 2) * 4;  // tokens 0-3 or 4-7
    for (int j = 0; j < 12; ++j) w.push_back(base + rng.UniformInt(4));
    walks.push_back(std::move(w));
  }
  SkipGramConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 3;
  Matrix emb = TrainSkipGram(walks, 8, cfg);
  EXPECT_EQ(emb.rows(), 8);
  // Within-community similarity must dominate cross-community similarity.
  double within = RowCosine(emb, 0, emb, 1);
  double across = RowCosine(emb, 0, emb, 5);
  EXPECT_GT(within, across + 0.2);
}

// ---------------------------------------------------------------- Aligners

TEST(IsoRankTest, PerfectOnCleanCopyWithSeeds) {
  AlignmentPair pair = CleanPair(9);
  IsoRankAligner aligner;
  auto s = aligner.Align(pair.source, pair.target,
                         TenPercentSeeds(pair, 10));
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.success_at_10, 0.3);
  EXPECT_GT(m.auc, 0.6);
}

TEST(IsoRankTest, WorksUnsupervisedViaAttributePrior) {
  AlignmentPair pair = CleanPair(11);
  IsoRankAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(FinalTest, StrongOnCleanAttributedCopy) {
  AlignmentPair pair = CleanPair(12);
  FinalAligner aligner;
  auto s = aligner.Align(pair.source, pair.target,
                         TenPercentSeeds(pair, 13));
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.success_at_10, 0.5);
}

TEST(FinalTest, AttributelessVariantRuns) {
  AlignmentPair pair = CleanPair(14);
  FinalConfig cfg;
  cfg.use_attributes = false;
  FinalAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target,
                         TenPercentSeeds(pair, 15));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(RegalTest, UnsupervisedAndDecentOnCleanCopy) {
  AlignmentPair pair = CleanPair(16);
  RegalAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  // Structural identity on an exact copy must beat random by far.
  EXPECT_GT(m.auc, 0.7);
}

TEST(PaleTest, RequiresSeeds) {
  AlignmentPair pair = CleanPair(17);
  PaleAligner aligner;
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, {}).ok());
}

TEST(PaleTest, AlignsWithSeeds) {
  AlignmentPair pair = CleanPair(18, 100);
  PaleConfig cfg;
  cfg.embedding_epochs = 80;
  cfg.embedding_dim = 32;
  PaleAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target,
                         TenPercentSeeds(pair, 19));
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.7);
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(PaleTest, LinearMappingVariant) {
  AlignmentPair pair = CleanPair(20, 40);
  PaleConfig cfg;
  cfg.mlp_mapping = true;
  cfg.embedding_epochs = 10;
  cfg.mapping_epochs = 100;
  PaleAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target,
                         TenPercentSeeds(pair, 21));
  ASSERT_TRUE(s.ok());
}

TEST(PaleTest, RejectsOutOfRangeSeeds) {
  AlignmentPair pair = CleanPair(22, 30);
  Supervision bad;
  bad.seeds = {{500, 0}};
  PaleAligner aligner;
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, bad).ok());
}

TEST(CenalpTest, AlignsWithSeeds) {
  AlignmentPair pair = CleanPair(23, 50);
  CenalpConfig cfg;
  cfg.walks.walks_per_node = 6;
  cfg.walks.walk_length = 15;
  cfg.skipgram.epochs = 2;
  cfg.skipgram.dim = 24;
  cfg.expansion_rounds = 2;
  CenalpAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target,
                         TenPercentSeeds(pair, 24));
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.55);
}

TEST(CenalpTest, BootstrapsWithoutSeeds) {
  AlignmentPair pair = CleanPair(25, 40);
  CenalpConfig cfg;
  cfg.walks.walks_per_node = 2;
  cfg.walks.walk_length = 10;
  cfg.skipgram.epochs = 1;
  cfg.expansion_rounds = 1;
  CenalpAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

// Contract test over every baseline: shape, finiteness, determinism.
class AlignerContract : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Aligner> MakeAligner() {
    switch (GetParam()) {
      case 0:
        return std::make_unique<IsoRankAligner>();
      case 1:
        return std::make_unique<FinalAligner>();
      case 2:
        return std::make_unique<RegalAligner>();
      case 3: {
        PaleConfig cfg;
        cfg.embedding_epochs = 8;
        cfg.mapping_epochs = 60;
        return std::make_unique<PaleAligner>(cfg);
      }
      default: {
        CenalpConfig cfg;
        cfg.walks.walks_per_node = 2;
        cfg.walks.walk_length = 8;
        cfg.skipgram.epochs = 1;
        cfg.expansion_rounds = 1;
        return std::make_unique<CenalpAligner>(cfg);
      }
    }
  }
};

TEST_P(AlignerContract, ShapeFinitenessDeterminism) {
  AlignmentPair pair = CleanPair(30, 40);
  Supervision sup = TenPercentSeeds(pair, 31);
  auto a1 = MakeAligner();
  auto a2 = MakeAligner();
  auto s1 = a1->Align(pair.source, pair.target, sup);
  auto s2 = a2->Align(pair.source, pair.target, sup);
  ASSERT_TRUE(s1.ok()) << a1->name() << ": " << s1.status().ToString();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.ValueOrDie().rows(), pair.source.num_nodes());
  EXPECT_EQ(s1.ValueOrDie().cols(), pair.target.num_nodes());
  EXPECT_TRUE(s1.ValueOrDie().AllFinite());
  EXPECT_LT(Matrix::MaxAbsDiff(s1.ValueOrDie(), s2.ValueOrDie()), 1e-12)
      << a1->name() << " is not deterministic";
  EXPECT_FALSE(a1->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, AlignerContract,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace galign
