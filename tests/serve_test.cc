// The serving subsystem's contract tests (DESIGN.md §12): the immutable
// AlignmentIndex artifact (build / serialize / verify-or-reject load /
// generation fallback), AlignServer admission control and load shedding,
// degraded-mode answers, and the typed-failure surface of both under
// injected faults. The invariant every test circles back to: an admitted
// request always resolves — full answer, marked degraded answer, or typed
// rejection — and overload never crashes or hangs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>
#include <unistd.h>

#include "common/fault.h"
#include "core/checkpoint.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "serve/alignment_index.h"
#include "serve/client.h"
#include "serve/server.h"

namespace galign {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    auto g = BarabasiAlbert(60, 3, &rng).MoveValueOrDie();
    g = g.WithAttributes(BinaryAttributes(60, 8, 0.3, &rng)).MoveValueOrDie();
    NoisyCopyOptions opts;
    opts.structural_noise = 0.05;
    auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

    GAlignConfig config;
    config.epochs = 4;
    config.embedding_dim = 16;
    AlignmentIndexOptions options;
    options.anchor_k = 5;
    auto built =
        AlignmentIndex::Build(config, pair.source, pair.target, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = new std::shared_ptr<const AlignmentIndex>(built.ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_serve_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  const std::shared_ptr<const AlignmentIndex>& Index() { return *index_; }
  std::string Dir(const std::string& name) { return (dir_ / name).string(); }

  /// A small, fast server config: one worker so queue depth is
  /// controllable, degraded effort from half-full.
  ServeConfig SmallConfig() {
    ServeConfig config;
    config.workers = 1;
    config.queue_capacity = 4;
    config.default_deadline_ms = 2000.0;
    config.retry_after_ms = 5.0;
    return config;
  }

  std::filesystem::path dir_;
  static std::shared_ptr<const AlignmentIndex>* index_;
};

std::shared_ptr<const AlignmentIndex>* ServeTest::index_ = nullptr;

// --- Artifact ------------------------------------------------------------

TEST_F(ServeTest, BuildProducesCompleteArtifact) {
  const AlignmentIndex& index = *Index();
  EXPECT_EQ(index.num_source(), 60);
  EXPECT_EQ(index.num_target(), 60);
  EXPECT_EQ(index.anchor_k(), 5);
  EXPECT_EQ(index.anchors().rows_computed, index.num_source());
  EXPECT_FALSE(index.ann().truncated());
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST_F(ServeTest, SerializeIsDeterministic) {
  EXPECT_EQ(Index()->Serialize(), Index()->Serialize());
}

TEST_F(ServeTest, ParseRoundTripsBitExactly) {
  const std::string payload = Index()->Serialize();
  auto back = AlignmentIndex::Parse(payload, "round-trip");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const AlignmentIndex& a = *Index();
  const AlignmentIndex& b = *back.ValueOrDie();
  EXPECT_EQ(a.theta(), b.theta());
  EXPECT_EQ(a.anchors().index, b.anchors().index);
  EXPECT_EQ(a.anchors().score, b.anchors().score);
  ASSERT_EQ(a.queries().rows(), b.queries().rows());
  ASSERT_EQ(a.queries().cols(), b.queries().cols());
  for (int64_t i = 0; i < a.queries().size(); ++i) {
    EXPECT_EQ(a.queries().data()[i], b.queries().data()[i]);
  }
  // The rebuilt ANN index answers identically (that is what the recipe
  // fingerprint asserts; double-check through the public query surface).
  auto qa = a.ann().QueryBatch(a.queries(), 3);
  auto qb = b.ann().QueryBatch(b.queries(), 3);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa.ValueOrDie().index, qb.ValueOrDie().index);
  EXPECT_EQ(qa.ValueOrDie().score, qb.ValueOrDie().score);
  EXPECT_EQ(payload, b.Serialize());
}

TEST_F(ServeTest, ParseRejectsTamperedTargetLayers) {
  const std::string payload = Index()->Serialize();
  // Flip the leading hex digit (exponent bits) of target_layers[0](0,0):
  // still valid hex, so the matrix list parses, but the value changes by
  // orders of magnitude. Row 0 is one of the fingerprint's probe rows, so
  // the rebuilt ANN index answers differently and verify-or-reject fires.
  const size_t target_pos = payload.find("target_layers");
  ASSERT_NE(target_pos, std::string::npos);
  const size_t header_end = payload.find('\n', target_pos);
  ASSERT_NE(header_end, std::string::npos);
  const size_t shape_end = payload.find('\n', header_end + 1);
  ASSERT_NE(shape_end, std::string::npos);
  std::string tampered = payload;
  const size_t p = shape_end + 1;  // first hex digit of the first value
  tampered[p] = tampered[p] == '4' ? '5' : '4';
  auto r = AlignmentIndex::Parse(tampered, "tampered");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(ServeTest, ParseRejectsTamperedFingerprint) {
  const std::string payload = Index()->Serialize();
  const size_t fp_pos = payload.find("fingerprint ");
  ASSERT_NE(fp_pos, std::string::npos);
  std::string tampered = payload;
  const size_t p = fp_pos + std::string("fingerprint ").size();
  tampered[p] = tampered[p] == 'a' ? 'b' : 'a';
  auto r = AlignmentIndex::Parse(tampered, "tampered");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("fingerprint"), std::string::npos)
      << r.status().message();
}

TEST_F(ServeTest, ParseRejectsTruncation) {
  const std::string payload = Index()->Serialize();
  for (double frac : {0.1, 0.5, 0.9, 0.99}) {
    auto r = AlignmentIndex::Parse(
        payload.substr(0, static_cast<size_t>(payload.size() * frac)),
        "truncated");
    ASSERT_FALSE(r.ok()) << "at fraction " << frac;
    EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  }
}

// --- Store ---------------------------------------------------------------

TEST_F(ServeTest, StoreRoundTripAndGenerations) {
  AlignmentIndexStore store(Dir("store"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  ASSERT_TRUE(store.Save(*Index()).ok());  // second generation
  EXPECT_TRUE(std::filesystem::exists(Dir("store") + "/aidx_00000002"));
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie()->Serialize(), Index()->Serialize());
}

TEST_F(ServeTest, StoreFallsBackPastTornNewestGeneration) {
  AlignmentIndexStore store(Dir("store"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  ASSERT_TRUE(store.Save(*Index()).ok());
  {
    std::ofstream torn(Dir("store") + "/aidx_00000002",
                       std::ios::trunc | std::ios::binary);
    torn << "torn write: not a valid artifact";
  }
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie()->Serialize(), Index()->Serialize());
}

TEST_F(ServeTest, StoreDistinguishesEmptyFromAllTorn) {
  AlignmentIndexStore empty(Dir("nothing"));
  std::filesystem::create_directories(Dir("nothing"));
  auto none = empty.LoadLatest();
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);

  AlignmentIndexStore store(Dir("store"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  ASSERT_TRUE(store.Save(*Index()).ok());
  for (const char* name : {"/aidx_00000001", "/aidx_00000002"}) {
    std::ofstream torn(Dir("store") + name,
                       std::ios::trunc | std::ios::binary);
    torn << "bit rot";
  }
  auto all_torn = store.LoadLatest();
  ASSERT_FALSE(all_torn.ok());
  EXPECT_EQ(all_torn.status().code(), StatusCode::kIOError);
  EXPECT_NE(all_torn.status().message().find("artifact generations"),
            std::string::npos);
  EXPECT_NE(all_torn.status().message().find("newest error"),
            std::string::npos);
}

TEST_F(ServeTest, CheckpointManagerDistinguishesEmptyFromAllTorn) {
  // The same typed contract, retrofitted onto the trainer's checkpoint
  // loader.
  CheckpointManager empty(Dir("ckpt_none"));
  std::filesystem::create_directories(Dir("ckpt_none"));
  auto none = empty.LoadLatest();
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);

  std::filesystem::create_directories(Dir("ckpt"));
  {
    std::ofstream torn(Dir("ckpt") + "/ckpt_00000003",
                       std::ios::trunc | std::ios::binary);
    torn << "garbage checkpoint bytes";
  }
  CheckpointManager mgr(Dir("ckpt"));
  auto r = mgr.LoadLatest();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("checkpoint generations"),
            std::string::npos);
}

TEST_F(ServeTest, StoreFaultSitesInjectTypedFailures) {
  AlignmentIndexStore store(Dir("store"));
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("serve.artifact.save", spec);
  Status saved = store.Save(*Index());
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kIOError);
  fault::DisarmAll();

  ASSERT_TRUE(store.Save(*Index()).ok());
  spec.repeat = 1000;  // every generation read fails
  fault::Arm("serve.artifact.load", spec);
  auto loaded = store.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  fault::DisarmAll();
  // And with the fault gone the same store loads fine — the failure was
  // injected, not persistent.
  EXPECT_TRUE(store.LoadLatest().ok());
}

// --- Server admission + shedding -----------------------------------------

TEST_F(ServeTest, AnswersMatchAnchorTableAtFullEffort) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  QueryRequest request;
  request.node = 7;
  request.k = Index()->anchor_k();
  QueryResponse response = server.SubmitAndWait(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.answer_source, "ann");
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.effort_step, 0);
  // An unloaded full-effort query reproduces the precomputed anchor row —
  // the degraded path serves stale-but-consistent data, not different data.
  const TopKAlignment& anchors = Index()->anchors();
  ASSERT_EQ(static_cast<int64_t>(response.targets.size()), anchors.k);
  for (int64_t j = 0; j < anchors.k; ++j) {
    EXPECT_EQ(response.targets[j], anchors.index[request.node * anchors.k + j]);
    EXPECT_EQ(response.scores[j], anchors.score[request.node * anchors.k + j]);
  }
}

TEST_F(ServeTest, RejectsMalformedRequestsTyped) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  QueryRequest bad_node;
  bad_node.node = Index()->num_source();  // one past the end
  QueryResponse r1 = server.SubmitAndWait(bad_node);
  EXPECT_EQ(r1.status.code(), StatusCode::kInvalidArgument);
  QueryRequest bad_k;
  bad_k.node = 0;
  bad_k.k = 0;
  QueryResponse r2 = server.SubmitAndWait(bad_k);
  EXPECT_EQ(r2.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Snapshot().invalid_argument, 2u);
}

TEST_F(ServeTest, ShedsTypedOverloadedWhenQueueIsFull) {
  ServeConfig config = SmallConfig();
  config.queue_capacity = 2;
  AlignServer server(Index(), config);
  // Not started: admitted requests stay queued, deterministically.
  std::vector<std::future<QueryResponse>> queued;
  QueryRequest request;
  request.node = 1;
  queued.push_back(server.Submit(request));
  queued.push_back(server.Submit(request));
  QueryResponse shed = server.SubmitAndWait(request);
  EXPECT_EQ(shed.status.code(), StatusCode::kOverloaded);
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_EQ(server.Snapshot().shed_queue_full, 1u);
  EXPECT_EQ(server.Snapshot().admitted, 2u);
  // The admitted requests still complete once workers run.
  server.Start();
  for (auto& future : queued) {
    QueryResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST_F(ServeTest, ShedsTypedOverloadedOnBudgetExhaustion) {
  ServeConfig config = SmallConfig();
  config.budget = std::make_shared<MemoryBudget>(uint64_t{1} << 20);
  config.per_request_bytes = uint64_t{4} << 20;  // never fits
  AlignServer server(Index(), config);
  server.Start();
  QueryRequest request;
  request.node = 0;
  QueryResponse response = server.SubmitAndWait(request);
  EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(server.Snapshot().shed_budget, 1u);
  // The failed admission released its (never-taken) reservation.
  EXPECT_EQ(config.budget->reserved(), 0u);
}

TEST_F(ServeTest, AdmissionFaultSiteShedsTyped) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("serve.admit", spec);
  QueryRequest request;
  request.node = 0;
  QueryResponse response = server.SubmitAndWait(request);
  EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(server.Snapshot().shed_fault, 1u);
  fault::DisarmAll();
  EXPECT_TRUE(server.SubmitAndWait(request).status.ok());
}

TEST_F(ServeTest, RetryClientSurvivesTransientShed) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  spec.at_call = 0;
  spec.repeat = 1;  // only the first admission sheds
  fault::Arm("serve.admit", spec);
  QueryRequest request;
  request.node = 3;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.1;
  QueryResponse response = QueryWithRetry(&server, request, policy);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GE(fault::CallCount("serve.admit"), 2);
}

TEST_F(ServeTest, RetryBudgetExhaustsTypedUnderPersistentShed) {
  // Every admission sheds: the client must spend exactly its retry budget
  // (max_attempts submissions, not one more), honor the server's
  // retry-after hint as a floor on every backoff sleep, and hand back the
  // final typed kOverloaded — never a hang, never an untyped failure.
  ServeConfig config = SmallConfig();
  config.retry_after_ms = 5.0;
  AlignServer server(Index(), config);
  server.Start();
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  spec.repeat = 1000;  // persistent overload
  fault::Arm("serve.admit", spec);
  QueryRequest request;
  request.node = 3;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.1;  // schedule alone would barely sleep
  Timer timer;
  QueryResponse response = QueryWithRetry(&server, request, policy);
  const double elapsed_ms = timer.Seconds() * 1000.0;
  EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
  EXPECT_GT(response.retry_after_ms, 0.0);
  // Exactly the budget: three admissions, two sleeps between them.
  EXPECT_EQ(fault::CallCount("serve.admit"), 3);
  EXPECT_EQ(server.Snapshot().shed_fault, 3u);
  // Each sleep was floored by the 5 ms hint, so two sleeps bound the wall
  // time from below (slack for timer granularity).
  EXPECT_GE(elapsed_ms, 9.0);
}

// --- Degraded answers ----------------------------------------------------

TEST_F(ServeTest, ExpiredDeadlineFallsBackToAnchorTable) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  QueryRequest request;
  request.node = 9;
  request.k = 3;
  request.deadline_ms = 1e-6;  // expired by the time a worker sees it
  QueryResponse response = server.SubmitAndWait(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.answer_source, "anchor_table");
  const TopKAlignment& anchors = Index()->anchors();
  ASSERT_LE(static_cast<int64_t>(response.targets.size()), request.k);
  for (size_t j = 0; j < response.targets.size(); ++j) {
    EXPECT_EQ(response.targets[j],
              anchors.index[request.node * anchors.k + static_cast<int64_t>(j)]);
  }
  EXPECT_EQ(server.Snapshot().completed_anchor, 1u);
}

TEST_F(ServeTest, ExpiredDeadlineWithoutDegradedIsTyped) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  QueryRequest request;
  request.node = 9;
  request.deadline_ms = 1e-6;
  request.allow_degraded = false;
  QueryResponse response = server.SubmitAndWait(request);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.Snapshot().deadline_exceeded, 1u);
}

TEST_F(ServeTest, MidQueryCancellationFallsBackToAnchorTable) {
  AlignServer server(Index(), SmallConfig());
  server.Start();
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("serve.query.cancel", spec);
  QueryRequest request;
  request.node = 2;
  QueryResponse response = server.SubmitAndWait(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.answer_source, "anchor_table");
  EXPECT_TRUE(response.degraded);
  EXPECT_GE(fault::CallCount("serve.query.cancel"), 1);
}

TEST_F(ServeTest, QueuePressureStepsEffortDown) {
  ServeConfig config = SmallConfig();
  config.queue_capacity = 8;
  config.degrade_watermark = 0.25;
  config.max_effort_step = 3;
  AlignServer server(Index(), config);
  // Fill the queue before starting the worker so early pops observe a
  // deep queue.
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    QueryRequest request;
    request.node = i;
    futures.push_back(server.Submit(request));
  }
  server.Start();
  int degraded_effort = 0;
  for (auto& future : futures) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    if (response.effort_step > 0) {
      ++degraded_effort;
      EXPECT_TRUE(response.degraded);
      EXPECT_EQ(response.answer_source, "ann");
    }
  }
  EXPECT_GT(degraded_effort, 0);
  EXPECT_EQ(server.Snapshot().completed_reduced_effort,
            static_cast<uint64_t>(degraded_effort));
}

TEST_F(ServeTest, ShutdownResolvesQueuedRequestsTyped) {
  ServeConfig config = SmallConfig();
  AlignServer server(Index(), config);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    QueryRequest request;
    request.node = i;
    futures.push_back(server.Submit(request));
  }
  // Never started: Shutdown must still resolve every promise.
  server.Shutdown();
  for (auto& future : futures) {
    QueryResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
    EXPECT_NE(response.status.message().find("shutting down"),
              std::string::npos);
  }
  EXPECT_EQ(server.Snapshot().shed_shutdown, 4u);
  // Submit after shutdown sheds immediately instead of hanging.
  QueryRequest late;
  late.node = 0;
  EXPECT_EQ(server.SubmitAndWait(late).status.code(), StatusCode::kOverloaded);
}

TEST_F(ServeTest, QueryEffortParameterDegradesGracefully) {
  // The AnnIndex-level knob the server's pressure response rides on:
  // reduced effort still honors the TopKAlignment contract.
  const AlignmentIndex& index = *Index();
  for (double effort : {1.0, 0.5, 0.25, 0.05}) {
    auto got = index.ann().QueryBatch(index.queries(), 5, RunContext(), effort);
    ASSERT_TRUE(got.ok()) << "effort " << effort;
    const TopKAlignment& top = got.ValueOrDie();
    EXPECT_EQ(top.rows_computed, index.num_source());
    for (int64_t v = 0; v < top.rows; ++v) {
      for (int64_t j = 1; j < top.k; ++j) {
        if (top.index[v * top.k + j] < 0) break;
        EXPECT_LE(top.score[v * top.k + j], top.score[v * top.k + j - 1]);
      }
    }
  }
  // Full effort through the parameter equals the default-parameter path.
  auto a = index.ann().QueryBatch(index.queries(), 5);
  auto b = index.ann().QueryBatch(index.queries(), 5, RunContext(), 1.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().index, b.ValueOrDie().index);
}

}  // namespace
}  // namespace galign
