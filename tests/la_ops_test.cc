#include "la/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace galign {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (int64_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(OpsTest, MatMulSmallKnown) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

// Parameterized cross-check of all GEMM variants against the naive kernel.
class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, VariantsAgreeWithNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = Matrix::Gaussian(m, k, &rng);
  Matrix b = Matrix::Gaussian(k, n, &rng);
  Matrix expected = NaiveMatMul(a, b);

  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a, b), expected), 1e-10);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMulTransposedB(a, Transpose(b)), expected),
            1e-10);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMulTransposedA(Transpose(a), b), expected),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(17, 9, 23), std::make_tuple(64, 64, 64),
                      std::make_tuple(130, 7, 130),
                      std::make_tuple(5, 200, 5)));

TEST(OpsTest, TransposeRoundTrip) {
  Rng rng(1);
  Matrix a = Matrix::Gaussian(7, 13, &rng);
  EXPECT_LT(Matrix::MaxAbsDiff(Transpose(Transpose(a)), a), 1e-15);
}

TEST(OpsTest, AddSubScaleHadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  EXPECT_DOUBLE_EQ(Add(a, b)(1, 1), 44);
  EXPECT_DOUBLE_EQ(Sub(b, a)(0, 0), 9);
  EXPECT_DOUBLE_EQ(Scale(a, -2)(0, 1), -4);
  EXPECT_DOUBLE_EQ(Hadamard(a, b)(1, 0), 90);
}

TEST(OpsTest, MapAppliesFunction) {
  Matrix a{{1, 4}, {9, 16}};
  Matrix r = Map(a, [](double v) { return std::sqrt(v); });
  EXPECT_DOUBLE_EQ(r(0, 1), 2);
  EXPECT_DOUBLE_EQ(r(1, 1), 4);
}

TEST(OpsTest, TanhMatchesStd) {
  Rng rng(2);
  Matrix a = Matrix::Gaussian(11, 7, &rng, 2.0);
  Matrix t = Tanh(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.data()[i], std::tanh(a.data()[i]));
  }
}

TEST(OpsTest, DotIsFrobeniusInner) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(Dot(a, a), 30);
}

TEST(OpsTest, RowSquaredDistance) {
  Matrix a{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 0, a, 1), 25);
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 1, a, 1), 0);
}

TEST(OpsTest, RowCosine) {
  Matrix a{{1, 0}, {0, 2}, {3, 3}, {0, 0}};
  EXPECT_DOUBLE_EQ(RowCosine(a, 0, a, 1), 0.0);
  EXPECT_NEAR(RowCosine(a, 0, a, 2), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(RowCosine(a, 0, a, 0), 1.0);
  EXPECT_DOUBLE_EQ(RowCosine(a, 0, a, 3), 0.0);  // zero row guard
}

TEST(OpsTest, ArgMaxAndMaxRow) {
  Matrix m{{1, 5, 3}, {9, 2, 9}};
  EXPECT_EQ(ArgMaxRow(m, 0), 1);
  EXPECT_DOUBLE_EQ(MaxRow(m, 0), 5);
  EXPECT_EQ(ArgMaxRow(m, 1), 0);  // first of ties
}

TEST(OpsTest, TopKRowOrdering) {
  Matrix m{{0.1, 0.9, 0.5, 0.7}};
  auto top = TopKRow(m, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
}

TEST(OpsTest, TopKClampsToWidth) {
  Matrix m{{1.0, 2.0}};
  EXPECT_EQ(TopKRow(m, 0, 10).size(), 2u);
}

TEST(OpsTest, RankInRow) {
  Matrix m{{0.1, 0.9, 0.5, 0.7}};
  EXPECT_EQ(RankInRow(m, 0, 1), 1);
  EXPECT_EQ(RankInRow(m, 0, 3), 2);
  EXPECT_EQ(RankInRow(m, 0, 2), 3);
  EXPECT_EQ(RankInRow(m, 0, 0), 4);
}

TEST(OpsTest, RankInRowTiesUseMidRank) {
  // A constant row must NOT rank everything first (that would let a
  // degenerate all-ties alignment matrix score Success@1 = 1).
  Matrix m{{0.5, 0.5, 0.5}};
  EXPECT_EQ(RankInRow(m, 0, 1), 2);  // 1 + 0 greater + 2/2 equal
  Matrix wide(1, 101, 0.0);
  EXPECT_EQ(RankInRow(wide, 0, 50), 51);  // ~middle of the row
}

TEST(OpsTest, ConcatCols) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5}, {6}};
  Matrix c = ConcatCols({&a, &b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_DOUBLE_EQ(c(0, 2), 5);
  EXPECT_DOUBLE_EQ(c(1, 0), 3);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(5, 8, &rng, 3.0);
  Matrix s = SoftmaxRows(a);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_GT(s(r, c), 0.0);
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Matrix a{{1000.0, 1001.0}};  // would overflow without max-shift
  Matrix s = SoftmaxRows(a);
  EXPECT_NEAR(s(0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
}

}  // namespace
}  // namespace galign
