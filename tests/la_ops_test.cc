#include "la/ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace galign {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (int64_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(OpsTest, MatMulSmallKnown) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

// Parameterized cross-check of all GEMM variants against the naive kernel.
class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, VariantsAgreeWithNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = Matrix::Gaussian(m, k, &rng);
  Matrix b = Matrix::Gaussian(k, n, &rng);
  Matrix expected = NaiveMatMul(a, b);

  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a, b), expected), 1e-10);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMulTransposedB(a, Transpose(b)), expected),
            1e-10);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMulTransposedA(Transpose(a), b), expected),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(17, 9, 23), std::make_tuple(64, 64, 64),
                      std::make_tuple(130, 7, 130),
                      std::make_tuple(5, 200, 5)));

double FrobDiff(const Matrix& a, const Matrix& b) {
  EXPECT_TRUE(a.SameShape(b));
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s);
}

// Blocked kernels vs. the retained naive references, on shapes chosen to
// exercise every fringe of the blocking scheme: empty extents, single
// elements, micro-tile remainders (non-multiples of 4/8), and dimensions
// crossing the MC=96 / KC=256 / NC=1024 panel boundaries.
TEST(BlockedGemmTest, MatchesReferenceAcrossShapes) {
  const std::vector<std::tuple<int64_t, int64_t, int64_t>> shapes = {
      {0, 5, 3},   {4, 0, 3},    {3, 5, 0},    {1, 1, 1},    {2, 3, 1},
      {4, 8, 8},   {5, 9, 11},   {96, 16, 64}, {97, 13, 130}, {33, 257, 9},
      {7, 300, 1029}, {100, 128, 100}, {130, 70, 1025}};
  for (const auto& [m, k, n] : shapes) {
    Rng rng(1000 + m * 31 + k * 7 + n);
    Matrix a = Matrix::Gaussian(m, k, &rng);
    Matrix b = Matrix::Gaussian(k, n, &rng);
    Matrix at = Transpose(a);
    Matrix bt = Transpose(b);
    const Matrix expected = reference::MatMul(a, b);
    EXPECT_LT(FrobDiff(MatMul(a, b), expected), 1e-9)
        << "MatMul " << m << "x" << k << "x" << n;
    EXPECT_LT(FrobDiff(MatMulTransposedB(a, bt), expected), 1e-9)
        << "MatMulTransposedB " << m << "x" << k << "x" << n;
    EXPECT_LT(FrobDiff(MatMulTransposedA(at, b), expected), 1e-9)
        << "MatMulTransposedA " << m << "x" << k << "x" << n;
  }
}

TEST(BlockedGemmTest, IntoReusesAndAccumulates) {
  Rng rng(7);
  Matrix a = Matrix::Gaussian(37, 19, &rng);
  Matrix b = Matrix::Gaussian(19, 41, &rng);
  const Matrix expected = reference::MatMul(a, b);
  // Wrong-shaped out is resized; a second accumulate pass doubles it.
  Matrix out(3, 2, 99.0);
  MatMulInto(a, b, &out);
  EXPECT_LT(FrobDiff(out, expected), 1e-9);
  MatMulInto(a, b, &out, /*accumulate=*/true);
  Matrix doubled = expected;
  doubled.Scale(2.0);
  EXPECT_LT(FrobDiff(out, doubled), 1e-9);

  Matrix out_bt(37, 41, -5.0);
  MatMulTransposedBInto(a, Transpose(b), &out_bt);
  EXPECT_LT(FrobDiff(out_bt, expected), 1e-9);
  Matrix out_at;
  MatMulTransposedAInto(Transpose(a), b, &out_at);
  EXPECT_LT(FrobDiff(out_at, expected), 1e-9);
}

// ParallelFor partitioning must not leak into results: every output tile is
// owned by one task with a fixed accumulation order, so two runs must agree
// bit for bit.
TEST(BlockedGemmTest, RunToRunDeterministic) {
  Rng rng(11);
  Matrix a = Matrix::Gaussian(201, 130, &rng);
  Matrix b = Matrix::Gaussian(130, 99, &rng);
  Matrix c1 = MatMul(a, b);
  Matrix c2 = MatMul(a, b);
  ASSERT_TRUE(c1.SameShape(c2));
  EXPECT_EQ(std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(double)), 0);
  Matrix s1 = MatMulTransposedB(a, Transpose(b));
  Matrix s2 = MatMulTransposedB(a, Transpose(b));
  EXPECT_EQ(std::memcmp(s1.data(), s2.data(), s1.size() * sizeof(double)), 0);
}

TEST(OpsTest, TransposeBlockedMatchesNaiveOddShapes) {
  for (auto [r, c] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 1}, {5, 33}, {64, 64}, {37, 65}, {100, 3}}) {
    Rng rng(r * 100 + c);
    Matrix a = Matrix::Gaussian(r, c, &rng);
    Matrix t = Transpose(a);
    ASSERT_EQ(t.rows(), c);
    ASSERT_EQ(t.cols(), r);
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < c; ++j) EXPECT_EQ(t(j, i), a(i, j));
    }
  }
}

TEST(OpsTest, TransposeRoundTrip) {
  Rng rng(1);
  Matrix a = Matrix::Gaussian(7, 13, &rng);
  EXPECT_LT(Matrix::MaxAbsDiff(Transpose(Transpose(a)), a), 1e-15);
}

TEST(OpsTest, AddSubScaleHadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  EXPECT_DOUBLE_EQ(Add(a, b)(1, 1), 44);
  EXPECT_DOUBLE_EQ(Sub(b, a)(0, 0), 9);
  EXPECT_DOUBLE_EQ(Scale(a, -2)(0, 1), -4);
  EXPECT_DOUBLE_EQ(Hadamard(a, b)(1, 0), 90);
}

TEST(OpsTest, MapAppliesFunction) {
  Matrix a{{1, 4}, {9, 16}};
  Matrix r = Map(a, [](double v) { return std::sqrt(v); });
  EXPECT_DOUBLE_EQ(r(0, 1), 2);
  EXPECT_DOUBLE_EQ(r(1, 1), 4);
}

TEST(OpsTest, TanhMatchesStd) {
  Rng rng(2);
  Matrix a = Matrix::Gaussian(11, 7, &rng, 2.0);
  Matrix t = Tanh(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.data()[i], std::tanh(a.data()[i]));
  }
}

TEST(OpsTest, DotIsFrobeniusInner) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(Dot(a, a), 30);
}

TEST(OpsTest, RowSquaredDistance) {
  Matrix a{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 0, a, 1), 25);
  EXPECT_DOUBLE_EQ(RowSquaredDistance(a, 1, a, 1), 0);
}

TEST(OpsTest, RowCosine) {
  Matrix a{{1, 0}, {0, 2}, {3, 3}, {0, 0}};
  EXPECT_DOUBLE_EQ(RowCosine(a, 0, a, 1), 0.0);
  EXPECT_NEAR(RowCosine(a, 0, a, 2), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(RowCosine(a, 0, a, 0), 1.0);
  EXPECT_DOUBLE_EQ(RowCosine(a, 0, a, 3), 0.0);  // zero row guard
}

TEST(OpsTest, ArgMaxAndMaxRow) {
  Matrix m{{1, 5, 3}, {9, 2, 9}};
  EXPECT_EQ(ArgMaxRow(m, 0), 1);
  EXPECT_DOUBLE_EQ(MaxRow(m, 0), 5);
  EXPECT_EQ(ArgMaxRow(m, 1), 0);  // first of ties
}

TEST(OpsTest, TopKRowOrdering) {
  Matrix m{{0.1, 0.9, 0.5, 0.7}};
  auto top = TopKRow(m, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
}

TEST(OpsTest, TopKClampsToWidth) {
  Matrix m{{1.0, 2.0}};
  EXPECT_EQ(TopKRow(m, 0, 10).size(), 2u);
}

TEST(OpsTest, TopKRowMatchesSortReference) {
  Rng rng(21);
  // Duplicated values (coarse quantization) exercise the tie rule: equal
  // values rank by ascending column index.
  Matrix m(6, 200);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = std::floor(rng.Uniform(0.0, 8.0));
  }
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t k : {1, 3, 10, 199, 200}) {
      std::vector<int64_t> ref(m.cols());
      for (int64_t c = 0; c < m.cols(); ++c) ref[c] = c;
      std::sort(ref.begin(), ref.end(), [&](int64_t a, int64_t b) {
        return m(r, a) != m(r, b) ? m(r, a) > m(r, b) : a < b;
      });
      ref.resize(k);
      EXPECT_EQ(TopKRow(m, r, k), ref) << "row " << r << " k " << k;
    }
  }
}

TEST(OpsTest, TanhIntoInPlaceAndSoftmaxInto) {
  Rng rng(22);
  Matrix a = Matrix::Gaussian(9, 13, &rng, 2.0);
  Matrix expected = Tanh(a);
  Matrix inplace = a;
  TanhInto(inplace, &inplace);
  EXPECT_LT(Matrix::MaxAbsDiff(inplace, expected), 1e-15);

  Matrix sm_expected = SoftmaxRows(a);
  Matrix sm = a;
  SoftmaxRowsInto(sm, &sm);
  EXPECT_LT(Matrix::MaxAbsDiff(sm, sm_expected), 1e-15);
}

TEST(OpsTest, RankInRow) {
  Matrix m{{0.1, 0.9, 0.5, 0.7}};
  EXPECT_EQ(RankInRow(m, 0, 1), 1);
  EXPECT_EQ(RankInRow(m, 0, 3), 2);
  EXPECT_EQ(RankInRow(m, 0, 2), 3);
  EXPECT_EQ(RankInRow(m, 0, 0), 4);
}

TEST(OpsTest, RankInRowTiesUseMidRank) {
  // A constant row must NOT rank everything first (that would let a
  // degenerate all-ties alignment matrix score Success@1 = 1).
  Matrix m{{0.5, 0.5, 0.5}};
  EXPECT_EQ(RankInRow(m, 0, 1), 2);  // 1 + 0 greater + 2/2 equal
  Matrix wide(1, 101, 0.0);
  EXPECT_EQ(RankInRow(wide, 0, 50), 51);  // ~middle of the row
}

TEST(OpsTest, ConcatCols) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5}, {6}};
  Matrix c = ConcatCols({&a, &b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_DOUBLE_EQ(c(0, 2), 5);
  EXPECT_DOUBLE_EQ(c(1, 0), 3);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(5, 8, &rng, 3.0);
  Matrix s = SoftmaxRows(a);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_GT(s(r, c), 0.0);
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Matrix a{{1000.0, 1001.0}};  // would overflow without max-shift
  Matrix s = SoftmaxRows(a);
  EXPECT_NEAR(s(0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
}

}  // namespace
}  // namespace galign
