// Unit tests for the resource-governance layer (DESIGN.md §9): budget
// reserve/release accounting, RAII scopes, allocation tracking on Matrix
// storage, Try-creation failure modes, and the row-blocked top-k kernel's
// agreement with the dense path.
#include <gtest/gtest.h>

#include <vector>

#include "common/memory_budget.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "la/sparse.h"

namespace galign {
namespace {

TEST(MemoryBudgetTest, ReserveReleaseAccounting) {
  MemoryBudget b(1000);
  EXPECT_TRUE(b.bounded());
  EXPECT_EQ(b.limit(), 1000u);
  EXPECT_EQ(b.remaining(), 1000u);

  ASSERT_TRUE(b.TryReserve(600, "first").ok());
  EXPECT_EQ(b.reserved(), 600u);
  EXPECT_EQ(b.remaining(), 400u);

  Status st = b.TryReserve(500, "second");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // A failed reserve must not consume headroom.
  EXPECT_EQ(b.reserved(), 600u);

  ASSERT_TRUE(b.TryReserve(400, "fits exactly").ok());
  EXPECT_EQ(b.remaining(), 0u);
  EXPECT_EQ(b.reserved_peak(), 1000u);

  b.Release(600);
  EXPECT_EQ(b.reserved(), 400u);
  b.Release(400);
  EXPECT_EQ(b.reserved(), 0u);
  EXPECT_EQ(b.reserved_peak(), 1000u);  // peak survives releases
}

TEST(MemoryBudgetTest, UnboundedBudgetAdmitsEverything) {
  MemoryBudget b;
  EXPECT_FALSE(b.bounded());
  EXPECT_TRUE(b.TryReserve(uint64_t{1} << 62, "huge").ok());
  EXPECT_TRUE(b.Admit(uint64_t{1} << 62, "huge").ok());
}

TEST(MemoryBudgetTest, AdmitChecksWithoutRecording) {
  MemoryBudget b(100);
  EXPECT_TRUE(b.Admit(80, "probe").ok());
  EXPECT_EQ(b.reserved(), 0u);
  EXPECT_EQ(b.Admit(200, "too big").code(), StatusCode::kResourceExhausted);
}

TEST(MemoryScopeTest, RaiiReleasesOnDestruction) {
  MemoryBudget b(1000);
  {
    MemoryScope scope;
    ASSERT_TRUE(MemoryScope::Reserve(&b, 700, "scoped", &scope).ok());
    EXPECT_TRUE(scope.active());
    EXPECT_EQ(scope.bytes(), 700u);
    EXPECT_EQ(b.reserved(), 700u);
  }
  EXPECT_EQ(b.reserved(), 0u);
}

TEST(MemoryScopeTest, MoveTransfersOwnership) {
  MemoryBudget b(1000);
  MemoryScope outer;
  {
    MemoryScope inner;
    ASSERT_TRUE(MemoryScope::Reserve(&b, 300, "moved", &inner).ok());
    outer = std::move(inner);
    EXPECT_FALSE(inner.active());
  }
  // inner's destruction must not have released the moved reservation.
  EXPECT_EQ(b.reserved(), 300u);
  outer.reset();
  EXPECT_EQ(b.reserved(), 0u);
}

TEST(MemoryScopeTest, GrowExtendsAndFailsCleanly) {
  MemoryBudget b(1000);
  MemoryScope scope;
  ASSERT_TRUE(MemoryScope::Reserve(&b, 400, "base", &scope).ok());
  ASSERT_TRUE(scope.Grow(500, "more").ok());
  EXPECT_EQ(scope.bytes(), 900u);
  EXPECT_EQ(scope.Grow(200, "too much").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scope.bytes(), 900u);  // failed grow leaves the scope unchanged
  scope.reset();
  EXPECT_EQ(b.reserved(), 0u);
}

TEST(MemoryScopeTest, NullBudgetIsNoOp) {
  MemoryScope scope;
  EXPECT_TRUE(MemoryScope::Reserve(nullptr, 1 << 20, "none", &scope).ok());
  EXPECT_FALSE(scope.active());
}

TEST(DenseBytesTest, Basics) {
  EXPECT_EQ(DenseBytes(10, 10), 800u);
  EXPECT_EQ(DenseBytes(0, 10), 0u);
  EXPECT_EQ(DenseBytes(-1, 10), 0u);
  // Overflow saturates rather than wrapping.
  EXPECT_EQ(DenseBytes(int64_t{1} << 62, int64_t{1} << 62),
            MemoryBudget::kUnlimited);
}

TEST(MemoryTrackerTest, MatrixAllocationsAreObserved) {
  const uint64_t before = MemoryTracker::LiveBytes();
  {
    Matrix m(64, 64);
    EXPECT_GE(MemoryTracker::LiveBytes(), before + 64 * 64 * sizeof(double));
  }
  EXPECT_EQ(MemoryTracker::LiveBytes(), before);
}

TEST(TryCreateTest, RejectsNegativeAndOversized) {
  EXPECT_EQ(Matrix::TryCreate(-1, 4).status().code(),
            StatusCode::kInvalidArgument);
  // An absurd extent must come back as a status, not a bad_alloc crash.
  auto r = Matrix::TryCreate(int64_t{1} << 40, int64_t{1} << 40);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(TryCreateTest, BudgetGatesAllocation) {
  MemoryBudget b(1024);
  EXPECT_TRUE(Matrix::TryCreate(8, 8, 0.0, &b).ok());  // 512 bytes
  auto r = Matrix::TryCreate(64, 64, 0.0, &b);         // 32 KiB > 1 KiB
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(TryCreateTest, SparseBudgetGating) {
  MemoryBudget b(256);
  std::vector<Triplet> t;
  for (int64_t i = 0; i < 100; ++i) t.push_back({i, i, 1.0});
  auto r = SparseMatrix::TryCreate(100, 100, t, &b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(SparseMatrix::TryCreate(100, 100, std::move(t)).ok());
}

TEST(RunContextTest, CarriesBudget) {
  RunContext ctx;
  EXPECT_FALSE(ctx.HasMemoryLimit());
  EXPECT_EQ(ctx.budget(), nullptr);
  RunContext bounded = RunContext::WithMemoryBudget(1 << 20);
  ASSERT_TRUE(bounded.HasMemoryLimit());
  EXPECT_EQ(bounded.budget()->limit(), uint64_t{1} << 20);
}

// --- Chunked top-k kernel --------------------------------------------------

Matrix RandomMatrix(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Uniform(r, c, &rng);
}

TEST(ChunkedTopKTest, MatchesDenseCompression) {
  Matrix s = RandomMatrix(37, 23, 7);
  auto fill = [&](int64_t r0, int64_t nrows, Matrix* block) -> Status {
    for (int64_t i = 0; i < nrows; ++i) {
      for (int64_t c = 0; c < s.cols(); ++c) (*block)(i, c) = s(r0 + i, c);
    }
    return Status::OK();
  };
  for (int64_t block_rows : {1, 5, 37, 64}) {
    auto chunked = ChunkedTopK(s.rows(), s.cols(), 4, block_rows, fill);
    ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
    TopKAlignment dense = TopKFromDense(s, 4);
    EXPECT_EQ(chunked.ValueOrDie().index, dense.index)
        << "block_rows=" << block_rows;
    for (size_t i = 0; i < dense.score.size(); ++i) {
      EXPECT_DOUBLE_EQ(chunked.ValueOrDie().score[i], dense.score[i]);
    }
  }
}

TEST(ChunkedTopKTest, TopKAlignmentAccessors) {
  Matrix s(2, 3);
  s(0, 0) = 1.0; s(0, 1) = 3.0; s(0, 2) = 2.0;
  s(1, 0) = 5.0; s(1, 1) = 4.0; s(1, 2) = 6.0;
  TopKAlignment a = TopKFromDense(s, 2);
  EXPECT_EQ(a.Top1(0), 1);
  EXPECT_EQ(a.Top1(1), 2);
  EXPECT_EQ(a.RankOf(0, 1), 1);
  EXPECT_EQ(a.RankOf(0, 2), 2);
  EXPECT_EQ(a.RankOf(0, 0), -1);  // fell outside top-2
  auto dense = a.ToDense(-1.0);
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense.ValueOrDie()(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(dense.ValueOrDie()(0, 1), 3.0);
}

TEST(ChunkedTopKTest, EmptyShapes) {
  auto fill = [](int64_t, int64_t, Matrix*) { return Status::OK(); };
  auto empty = ChunkedTopK(0, 5, 3, 8, fill);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.ValueOrDie().rows, 0);
  auto no_cols = ChunkedTopK(5, 0, 3, 8, fill);
  ASSERT_TRUE(no_cols.ok());
  EXPECT_EQ(no_cols.ValueOrDie().k, 0);
}

TEST(ChunkedEmbeddingTopKTest, MatchesDenseAggregation) {
  std::vector<Matrix> hs, ht;
  hs.push_back(RandomMatrix(19, 6, 1));
  hs.push_back(RandomMatrix(19, 4, 2));
  ht.push_back(RandomMatrix(13, 6, 3));
  ht.push_back(RandomMatrix(13, 4, 4));
  std::vector<double> theta = {0.4, 0.6};

  Matrix dense(19, 13);
  for (size_t l = 0; l < hs.size(); ++l) {
    dense.Axpy(theta[l], MatMulTransposedB(hs[l], ht[l]));
  }
  TopKAlignment expect = TopKFromDense(dense, 5);

  auto got = ChunkedEmbeddingTopK(hs, ht, theta, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.ValueOrDie().index, expect.index);
  for (size_t i = 0; i < expect.score.size(); ++i) {
    EXPECT_NEAR(got.ValueOrDie().score[i], expect.score[i], 1e-12);
  }
}

TEST(ChunkedEmbeddingTopKTest, RespectsBudgetAndFailsWhenImpossible) {
  std::vector<Matrix> hs{RandomMatrix(40, 8, 5)};
  std::vector<Matrix> ht{RandomMatrix(30, 8, 6)};
  // Generous enough for a few rows per block.
  RunContext ok_ctx = RunContext::WithMemoryBudget(
      TopKOutputBytes(40, 3) + 8 * ChunkedRowBytes(30, hs) + (64 << 10));
  auto ok = ChunkedEmbeddingTopK(hs, ht, {1.0}, 3, ok_ctx);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // Too small for even one block row.
  RunContext tiny_ctx = RunContext::WithMemoryBudget(64);
  auto tiny = ChunkedEmbeddingTopK(hs, ht, {1.0}, 3, tiny_ctx);
  ASSERT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetedBlockRowsTest, DerivesFromHeadroom) {
  RunContext unbounded;
  auto def = BudgetedBlockRows(100, 5, 800, unbounded);
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def.ValueOrDie(), 512);

  RunContext ctx = RunContext::WithMemoryBudget(
      TopKOutputBytes(100, 5) + 10 * 800 + 1);
  auto bounded = BudgetedBlockRows(100, 5, 800, ctx);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded.ValueOrDie(), 10);
}

}  // namespace
}  // namespace galign
