#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/ops.h"
#include "manifold/pca.h"
#include "manifold/tsne.h"

namespace galign {
namespace {

TEST(PcaTest, ShapeAndCentering) {
  Rng rng(1);
  Matrix x = Matrix::Gaussian(30, 8, &rng);
  auto p = Pca(x, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.ValueOrDie().rows(), 30);
  EXPECT_EQ(p.ValueOrDie().cols(), 2);
  // Projection of centered data has ~zero column means.
  for (int64_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(p.ValueOrDie().Col(c).Sum() / 30.0, 0.0, 1e-10);
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points along (1, 1) with small orthogonal noise: PC1 variance must
  // dominate PC2 variance by a large factor.
  Rng rng(2);
  Matrix x(200, 2);
  for (int64_t i = 0; i < 200; ++i) {
    double t = rng.Normal() * 5.0;
    double noise = rng.Normal() * 0.1;
    x(i, 0) = t + noise;
    x(i, 1) = t - noise;
  }
  auto p = Pca(x, 2).MoveValueOrDie();
  double var1 = p.Col(0).SquaredNorm();
  double var2 = p.Col(1).SquaredNorm();
  EXPECT_GT(var1, var2 * 100);
}

TEST(PcaTest, ComponentsClampedToInputDim) {
  Rng rng(3);
  Matrix x = Matrix::Gaussian(10, 3, &rng);
  auto p = Pca(x, 99);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.ValueOrDie().cols(), 3);
}

TEST(PcaTest, RejectsEmpty) { EXPECT_FALSE(Pca(Matrix(), 2).ok()); }

TEST(TsneTest, OutputShape) {
  Rng rng(4);
  Matrix x = Matrix::Gaussian(25, 10, &rng);
  TsneConfig cfg;
  cfg.iterations = 150;
  auto y = Tsne(x, cfg);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y.ValueOrDie().rows(), 25);
  EXPECT_EQ(y.ValueOrDie().cols(), 2);
  EXPECT_TRUE(y.ValueOrDie().AllFinite());
}

TEST(TsneTest, SeparatesTwoGaussianClusters) {
  Rng rng(5);
  const int64_t per = 15;
  Matrix x(2 * per, 6);
  for (int64_t i = 0; i < per; ++i) {
    for (int64_t c = 0; c < 6; ++c) {
      x(i, c) = rng.Normal() * 0.3;              // cluster A near origin
      x(per + i, c) = 8.0 + rng.Normal() * 0.3;  // cluster B far away
    }
  }
  TsneConfig cfg;
  cfg.iterations = 600;
  cfg.learning_rate = 20.0;
  auto y = Tsne(x, cfg).MoveValueOrDie();
  // Mean within-cluster distance must be far below across-cluster distance.
  double within = 0, across = 0;
  int64_t wn = 0, an = 0;
  for (int64_t i = 0; i < 2 * per; ++i) {
    for (int64_t j = i + 1; j < 2 * per; ++j) {
      double d = std::sqrt(RowSquaredDistance(y, i, y, j));
      if ((i < per) == (j < per)) {
        within += d;
        ++wn;
      } else {
        across += d;
        ++an;
      }
    }
  }
  EXPECT_GT(across / an, 2.0 * (within / wn));
}

TEST(TsneTest, RejectsBadInput) {
  EXPECT_FALSE(Tsne(Matrix(1, 3)).ok());  // too few rows
  Matrix x(4, 3);
  TsneConfig cfg;
  cfg.perplexity = 10.0;  // >= n
  EXPECT_FALSE(Tsne(x, cfg).ok());
}

TEST(TsneTest, DeterministicUnderSeed) {
  Rng rng(6);
  Matrix x = Matrix::Gaussian(12, 4, &rng);
  TsneConfig cfg;
  cfg.iterations = 100;
  auto y1 = Tsne(x, cfg).MoveValueOrDie();
  auto y2 = Tsne(x, cfg).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(y1, y2), 1e-12);
}

}  // namespace
}  // namespace galign
