#include "core/gcn.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/noise.h"
#include "la/ops.h"

namespace galign {
namespace {

AttributedGraph RandomGraph(uint64_t seed, int64_t n = 60) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 8, 0.3, &rng);
  return g.WithAttributes(f).MoveValueOrDie();
}

TEST(GcnTest, WeightShapes) {
  Rng rng(1);
  MultiOrderGcn gcn(3, 8, 16, &rng);
  EXPECT_EQ(gcn.num_layers(), 3);
  EXPECT_EQ(gcn.weights()[0].rows(), 8);
  EXPECT_EQ(gcn.weights()[0].cols(), 16);
  EXPECT_EQ(gcn.weights()[1].rows(), 16);
  EXPECT_EQ(gcn.weights()[2].cols(), 16);
}

TEST(GcnTest, PerLayerDimensions) {
  // Paper Table I allows a distinct d^(l) per layer; build a pyramid.
  Rng rng(21);
  MultiOrderGcn gcn({32, 16, 8}, /*input_dim=*/6, &rng);
  EXPECT_EQ(gcn.num_layers(), 3);
  EXPECT_EQ(gcn.embedding_dim(), 8);
  EXPECT_EQ(gcn.weights()[0].rows(), 6);
  EXPECT_EQ(gcn.weights()[0].cols(), 32);
  EXPECT_EQ(gcn.weights()[1].rows(), 32);
  EXPECT_EQ(gcn.weights()[1].cols(), 16);
  EXPECT_EQ(gcn.weights()[2].cols(), 8);

  AttributedGraph g = RandomGraph(22);
  auto g6 = g.WithAttributes(Matrix::Uniform(g.num_nodes(), 6, &rng))
                .MoveValueOrDie();
  auto lap = g6.NormalizedAdjacency().MoveValueOrDie();
  auto layers = gcn.ForwardInference(lap, g6.attributes());
  ASSERT_EQ(layers.size(), 4u);
  EXPECT_EQ(layers[1].cols(), 32);
  EXPECT_EQ(layers[2].cols(), 16);
  EXPECT_EQ(layers[3].cols(), 8);
  for (const Matrix& h : layers) EXPECT_TRUE(h.AllFinite());
}

TEST(GcnTest, PerLayerDimsKeepPermutationImmunity) {
  Rng rng(23);
  AttributedGraph g = RandomGraph(24, 30);
  std::vector<int64_t> perm = rng.Permutation(g.num_nodes());
  AttributedGraph pg = g.Permuted(perm).MoveValueOrDie();
  MultiOrderGcn gcn({12, 6}, g.num_attributes(), &rng);
  auto hs = gcn.ForwardInference(g.NormalizedAdjacency().MoveValueOrDie(),
                                 g.attributes());
  auto ht = gcn.ForwardInference(pg.NormalizedAdjacency().MoveValueOrDie(),
                                 pg.attributes());
  for (size_t l = 0; l < hs.size(); ++l) {
    for (int64_t v = 0; v < g.num_nodes(); ++v) {
      for (int64_t c = 0; c < hs[l].cols(); ++c) {
        ASSERT_NEAR(ht[l](perm[v], c), hs[l](v, c), 1e-10);
      }
    }
  }
}

TEST(GcnTest, UniformConstructorMatchesVectorConstructor) {
  Rng r1(25), r2(25);
  MultiOrderGcn a(2, 5, 9, &r1);
  MultiOrderGcn b({9, 9}, 5, &r2);
  for (int l = 0; l < 2; ++l) {
    EXPECT_LT(Matrix::MaxAbsDiff(a.weights()[l], b.weights()[l]), 1e-15);
  }
}

TEST(GcnTest, ForwardInferenceShapesAndNorms) {
  AttributedGraph g = RandomGraph(2);
  Rng rng(3);
  MultiOrderGcn gcn(2, 8, 12, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto layers = gcn.ForwardInference(lap, g.attributes());
  ASSERT_EQ(layers.size(), 3u);  // H0..H2
  EXPECT_EQ(layers[0].cols(), 8);
  EXPECT_EQ(layers[1].cols(), 12);
  EXPECT_EQ(layers[2].cols(), 12);
  // Every layer is row-normalized.
  for (const Matrix& h : layers) {
    for (int64_t r = 0; r < h.rows(); ++r) {
      double n = h.RowNorm(r);
      EXPECT_TRUE(n < 1e-9 || std::fabs(n - 1.0) < 1e-9);
    }
  }
}

TEST(GcnTest, TapeForwardMatchesInference) {
  AttributedGraph g = RandomGraph(4);
  Rng rng(5);
  MultiOrderGcn gcn(2, 8, 10, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto inference = gcn.ForwardInference(lap, g.attributes());
  Tape tape;
  std::vector<Var> wv;
  auto layers = gcn.Forward(&tape, &lap, g.attributes(), &wv);
  ASSERT_EQ(layers.size(), inference.size());
  for (size_t l = 0; l < layers.size(); ++l) {
    EXPECT_LT(Matrix::MaxAbsDiff(tape.value(layers[l]), inference[l]), 1e-12);
  }
}

// ------------------------------------------------- Proposition 1 (paper IV-B)

class PermutationImmunity : public ::testing::TestWithParam<int> {};

TEST_P(PermutationImmunity, EmbeddingsPermuteWithTheGraph) {
  // If A_t = P A_s P^T (and attributes move with nodes), then
  // H_t^(l) = P H_s^(l) exactly, at every layer.
  const int trial = GetParam();
  AttributedGraph g = RandomGraph(100 + trial, 40 + 10 * trial);
  Rng rng(200 + trial);
  std::vector<int64_t> perm = rng.Permutation(g.num_nodes());
  AttributedGraph pg = g.Permuted(perm).MoveValueOrDie();

  MultiOrderGcn gcn(3, g.num_attributes(), 16, &rng);
  auto lap_s = g.NormalizedAdjacency().MoveValueOrDie();
  auto lap_t = pg.NormalizedAdjacency().MoveValueOrDie();
  auto hs = gcn.ForwardInference(lap_s, g.attributes());
  auto ht = gcn.ForwardInference(lap_t, pg.attributes());

  for (size_t l = 0; l < hs.size(); ++l) {
    for (int64_t v = 0; v < g.num_nodes(); ++v) {
      for (int64_t c = 0; c < hs[l].cols(); ++c) {
        ASSERT_NEAR(ht[l](perm[v], c), hs[l](v, c), 1e-10)
            << "layer " << l << " node " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, PermutationImmunity,
                         ::testing::Values(0, 1, 2, 3, 4));

// ------------------------------------------------- Proposition 2 (paper IV-C)

TEST(GcnTest, MatchedNeighborhoodsGiveEqualEmbeddings) {
  // Two disjoint triangles with identical attributes: corresponding nodes
  // have degree-matched, embedding-matched neighbourhoods, so their
  // embeddings must coincide at every layer.
  Matrix f(6, 4);
  for (int64_t v = 0; v < 3; ++v) {
    for (int64_t c = 0; c < 4; ++c) {
      double val = (v * 7 + c * 3) % 5 + 1.0;
      f(v, c) = val;
      f(v + 3, c) = val;  // twin node
    }
  }
  auto g = AttributedGraph::Create(
               6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}, f)
               .MoveValueOrDie();
  Rng rng(7);
  MultiOrderGcn gcn(3, 4, 8, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto layers = gcn.ForwardInference(lap, g.attributes());
  for (const Matrix& h : layers) {
    for (int64_t v = 0; v < 3; ++v) {
      for (int64_t c = 0; c < h.cols(); ++c) {
        ASSERT_NEAR(h(v, c), h(v + 3, c), 1e-12);
      }
    }
  }
}

TEST(GcnTest, TanhBoundsPreNormalizationOutputs) {
  AttributedGraph g = RandomGraph(8);
  Rng rng(9);
  MultiOrderGcn gcn(2, 8, 12, &rng, Activation::kTanh);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto layers = gcn.ForwardInference(lap, g.attributes());
  // After normalization entries stay within [-1, 1] regardless.
  for (const Matrix& h : layers) {
    EXPECT_LE(h.MaxAbs(), 1.0 + 1e-12);
  }
}

TEST(GcnTest, ReluActivationNonNegative) {
  AttributedGraph g = RandomGraph(10);
  Rng rng(11);
  MultiOrderGcn gcn(2, 8, 12, &rng, Activation::kRelu);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto layers = gcn.ForwardInference(lap, g.attributes());
  for (size_t l = 1; l < layers.size(); ++l) {
    for (int64_t i = 0; i < layers[l].size(); ++i) {
      EXPECT_GE(layers[l].data()[i], 0.0);
    }
  }
}

TEST(GcnTest, ReluIsNotSignPreserving) {
  // The paper's argument for tanh: two graphs whose pre-activations differ
  // only in sign collapse to the same ReLU embedding. Verify tanh separates
  // a pattern that relu cannot: tanh(-x) != tanh(x) while relu(-x) ==
  // relu(0) for x > 0 collapses negatives.
  Matrix pre{{-0.5, 0.5}};
  Matrix relu = Map(pre, [](double v) { return v > 0 ? v : 0.0; });
  Matrix t = Tanh(pre);
  EXPECT_DOUBLE_EQ(relu(0, 0), 0.0);   // sign information destroyed
  EXPECT_LT(t(0, 0), 0.0);             // sign information kept
}

TEST(GcnTest, WeightSharingAcrossGraphsOnOneTape) {
  AttributedGraph g1 = RandomGraph(12);
  AttributedGraph g2 = RandomGraph(13);
  Rng rng(14);
  MultiOrderGcn gcn(2, 8, 10, &rng);
  auto lap1 = g1.NormalizedAdjacency().MoveValueOrDie();
  auto lap2 = g2.NormalizedAdjacency().MoveValueOrDie();
  Tape tape;
  auto wv = gcn.MakeWeightLeaves(&tape);
  auto h1 = gcn.ForwardWithWeights(&tape, &lap1, g1.attributes(), wv);
  auto h2 = gcn.ForwardWithWeights(&tape, &lap2, g2.attributes(), wv);
  // Gradients from both graphs accumulate into the same weight leaves.
  Var loss1 = ag::FrobeniusNorm(&tape, h1.back());
  Var loss2 = ag::FrobeniusNorm(&tape, h2.back());
  Var total = ag::WeightedSum(&tape, {{loss1, 1.0}, {loss2, 1.0}});
  tape.Backward(total);
  EXPECT_GT(tape.grad(wv[0]).MaxAbs(), 0.0);
}

}  // namespace
}  // namespace galign
