// Weighted-edge support: construction semantics, weighted GCN propagation,
// and the permutation-immunity invariant (Prop. 1) under weights.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gcn.h"
#include "graph/graph.h"

namespace galign {
namespace {

AttributedGraph WeightedTriangle() {
  std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 0.5}, {0, 2, 1.0}};
  return AttributedGraph::CreateWeighted(3, edges, Matrix(3, 2, 1.0))
      .MoveValueOrDie();
}

TEST(WeightedGraphTest, BasicConstruction) {
  AttributedGraph g = WeightedTriangle();
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.0);  // symmetric
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 2.5);
  EXPECT_EQ(g.Degree(0), 2);  // structural degree unchanged
}

TEST(WeightedGraphTest, DuplicateEdgesSumWeights) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 0, 2.5}};
  auto g = AttributedGraph::CreateWeighted(2, edges, Matrix())
               .MoveValueOrDie();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 3.5);
}

TEST(WeightedGraphTest, RejectsNonPositiveWeights) {
  EXPECT_FALSE(
      AttributedGraph::CreateWeighted(2, {{0, 1, 0.0}}, Matrix()).ok());
  EXPECT_FALSE(
      AttributedGraph::CreateWeighted(2, {{0, 1, -1.0}}, Matrix()).ok());
  EXPECT_FALSE(
      AttributedGraph::CreateWeighted(2, {{0, 1, std::nan("")}}, Matrix())
          .ok());
}

TEST(WeightedGraphTest, UnweightedFactoryReportsUnweighted) {
  auto g = AttributedGraph::Create(3, {{0, 1}, {0, 1}, {1, 2}}, Matrix())
               .MoveValueOrDie();
  EXPECT_FALSE(g.is_weighted());
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);  // duplicates collapse to 1
}

TEST(WeightedGraphTest, AllOnesWeightsReportUnweighted) {
  auto g = AttributedGraph::CreateWeighted(2, {{0, 1, 1.0}}, Matrix())
               .MoveValueOrDie();
  EXPECT_FALSE(g.is_weighted());
}

TEST(WeightedGraphTest, NormalizationUsesWeightedDegrees) {
  // Path 0 -(4)- 1: weighted degrees + self loop: d0 = 5, d1 = 5.
  auto g = AttributedGraph::CreateWeighted(2, {{0, 1, 4.0}}, Matrix())
               .MoveValueOrDie();
  auto c = g.NormalizedAdjacency().MoveValueOrDie();
  EXPECT_NEAR(c.At(0, 1), 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(c.At(0, 0), 1.0 / 5.0, 1e-12);
}

TEST(WeightedGraphTest, PermutationPreservesWeights) {
  AttributedGraph g = WeightedTriangle();
  auto pg = g.Permuted({2, 0, 1}).MoveValueOrDie();
  EXPECT_TRUE(pg.is_weighted());
  EXPECT_DOUBLE_EQ(pg.EdgeWeight(2, 0), 2.0);  // was (0, 1)
  EXPECT_DOUBLE_EQ(pg.EdgeWeight(0, 1), 0.5);  // was (1, 2)
}

TEST(WeightedGraphTest, InducedSubgraphPreservesWeights) {
  AttributedGraph g = WeightedTriangle();
  auto sub = g.InducedSubgraph({0, 1}).MoveValueOrDie();
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_DOUBLE_EQ(sub.EdgeWeight(0, 1), 2.0);
}

TEST(WeightedGraphTest, GcnPermutationImmunityWithWeights) {
  // Prop. 1 holds for arbitrary positive weights as well.
  Rng rng(5);
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < 60; ++i) {
    int64_t u = rng.UniformInt(20), v = rng.UniformInt(20);
    if (u != v) edges.push_back({u, v, rng.Uniform(0.1, 3.0)});
  }
  Matrix f = Matrix::Uniform(20, 5, &rng);
  auto g = AttributedGraph::CreateWeighted(20, edges, f).MoveValueOrDie();
  std::vector<int64_t> perm = rng.Permutation(20);
  auto pg = g.Permuted(perm).MoveValueOrDie();

  MultiOrderGcn gcn(2, 5, 8, &rng);
  auto hs = gcn.ForwardInference(g.NormalizedAdjacency().MoveValueOrDie(),
                                 g.attributes());
  auto ht = gcn.ForwardInference(pg.NormalizedAdjacency().MoveValueOrDie(),
                                 pg.attributes());
  for (size_t l = 0; l < hs.size(); ++l) {
    for (int64_t v = 0; v < 20; ++v) {
      for (int64_t c = 0; c < hs[l].cols(); ++c) {
        ASSERT_NEAR(ht[l](perm[v], c), hs[l](v, c), 1e-10);
      }
    }
  }
}

TEST(WeightedGraphTest, WeightsChangeEmbeddings) {
  // Same topology, different weights => different GCN output.
  Rng rng(6);
  Matrix f = Matrix::Uniform(4, 3, &rng);
  auto g1 = AttributedGraph::CreateWeighted(
                4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}, f)
                .MoveValueOrDie();
  auto g2 = AttributedGraph::CreateWeighted(
                4, {{0, 1, 5.0}, {1, 2, 1.0}, {2, 3, 1.0}}, f)
                .MoveValueOrDie();
  MultiOrderGcn gcn(2, 3, 6, &rng);
  auto h1 = gcn.ForwardInference(g1.NormalizedAdjacency().MoveValueOrDie(),
                                 g1.attributes());
  auto h2 = gcn.ForwardInference(g2.NormalizedAdjacency().MoveValueOrDie(),
                                 g2.attributes());
  EXPECT_GT(Matrix::MaxAbsDiff(h1.back(), h2.back()), 1e-6);
}

}  // namespace
}  // namespace galign
