#include "align/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/isorank.h"
#include "baselines/regal.h"
#include "graph/generators.h"

namespace galign {
namespace {

AlignmentPair SmallPair(uint64_t seed) {
  Rng rng(seed);
  auto g = BarabasiAlbert(40, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(40, 6, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

TEST(RunAlignerTest, PopulatesMetricsAndTime) {
  AlignmentPair pair = SmallPair(1);
  IsoRankAligner aligner;
  Rng rng(2);
  RunResult r = RunAligner(&aligner, pair, 0.1, &rng);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.method, "IsoRank");
  EXPECT_EQ(r.metrics.num_anchors, 40);
  EXPECT_GT(r.metrics.seconds, 0.0);
  EXPECT_GE(r.metrics.auc, 0.0);
  EXPECT_LE(r.metrics.auc, 1.0);
}

TEST(RunAlignerTest, ZeroSeedFractionMeansUnsupervised) {
  AlignmentPair pair = SmallPair(3);
  RegalAligner aligner;
  Rng rng(4);
  RunResult r = RunAligner(&aligner, pair, 0.0, &rng);
  EXPECT_TRUE(r.status.ok());
}

TEST(RunAlignerTest, FailureIsCaptured) {
  // PALE without seeds fails; the pipeline must record the status, not die.
  AlignmentPair pair = SmallPair(5);
  class FailingAligner : public Aligner {
   public:
    std::string name() const override { return "Failing"; }
    using Aligner::Align;
    Result<Matrix> Align(const AttributedGraph&, const AttributedGraph&,
                         const Supervision&,
                         const RunContext&) override {
      return Status::Internal("synthetic failure");
    }
  } failing;
  Rng rng(6);
  RunResult r = RunAligner(&failing, pair, 0.0, &rng);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.metrics.num_anchors, 0);
}

TEST(RunAllTest, OneResultPerAligner) {
  AlignmentPair pair = SmallPair(7);
  IsoRankAligner a;
  RegalAligner b;
  Rng rng(8);
  auto results = RunAll({&a, &b}, pair, 0.1, &rng);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].method, "IsoRank");
  EXPECT_EQ(results[1].method, "REGAL");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"Method", "MAP"});
  t.AddRow({"GAlign", "0.85"});
  t.AddRow({"IsoRank-long-name", "0.10"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("GAlign"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Each data line is at least as wide as the widest cells.
  EXPECT_NE(s.find("IsoRank-long-name  0.10"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"x"});
  EXPECT_NO_THROW(t.ToString());
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(0.5), "0.5000");
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
}

TEST(TextTableTest, CsvRendering) {
  TextTable t({"Method", "MAP"});
  t.AddRow({"GAlign", "0.85"});
  t.AddRow({"FINAL", "0.52"});
  EXPECT_EQ(t.ToCsv(), "Method,MAP\nGAlign,0.85\nFINAL,0.52\n");
}

TEST(TextTableTest, CsvQuotesSpecialCharacters) {
  TextTable t({"name", "value"});
  t.AddRow({"has,comma", "has\"quote"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTableTest, WriteCsvCreatesFile) {
  TextTable t({"a"});
  t.AddRow({"1"});
  std::string path = "/tmp/galign_texttable_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace galign
