#include "baselines/netalign.h"

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair CleanPair(uint64_t seed, int64_t n = 70) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 10, 0.25, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

Supervision Seeds(const AlignmentPair& pair, double frac, uint64_t seed) {
  Rng rng(seed);
  return SampleSeeds(pair.ground_truth, frac, &rng);
}

TEST(NetAlignTest, StrongOnCleanCopyWithSeeds) {
  AlignmentPair pair = CleanPair(1);
  NetAlignAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, Seeds(pair, 0.1, 2));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  // Squares reward edge overlap, which is perfect on a clean copy: the BP
  // should recover a large share of anchors.
  EXPECT_GT(m.success_at_10, 0.4);
  EXPECT_GT(m.auc, 0.7);
}

TEST(NetAlignTest, UnsupervisedViaAttributePrior) {
  AlignmentPair pair = CleanPair(3);
  NetAlignAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.55);
}

TEST(NetAlignTest, SquareRewardHelps) {
  // With beta = 0 the method degenerates to the prior alone; the overlap
  // reward must improve matters on a structurally clean pair.
  AlignmentPair pair = CleanPair(4);
  Supervision sup = Seeds(pair, 0.1, 5);
  NetAlignConfig no_squares;
  no_squares.beta = 0.0;
  NetAlignConfig with_squares;
  with_squares.beta = 2.0;
  NetAlignAligner a(no_squares), b(with_squares);
  auto s0 = a.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s1 = b.Align(pair.source, pair.target, sup).MoveValueOrDie();
  double map0 = ComputeMetrics(s0, pair.ground_truth).map;
  double map1 = ComputeMetrics(s1, pair.ground_truth).map;
  EXPECT_GT(map1, map0 - 0.02);
}

TEST(NetAlignTest, CandidateFloorIsBelowAllCandidates) {
  AlignmentPair pair = CleanPair(6, 30);
  NetAlignConfig cfg;
  cfg.candidates_per_node = 3;
  NetAlignAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target, {}).MoveValueOrDie();
  // Each row's candidates (top-k prior + square expansion, capped at 2k)
  // sit above the shared floor value.
  for (int64_t i = 0; i < s.rows(); ++i) {
    double floor_val = s(i, 0);
    for (int64_t j = 0; j < s.cols(); ++j) {
      floor_val = std::min(floor_val, s(i, j));
    }
    int64_t above = 0;
    for (int64_t j = 0; j < s.cols(); ++j) {
      if (s(i, j) > floor_val) ++above;
    }
    EXPECT_LE(above, 2 * 3 + 1);  // row cap (2k) + possible seed
    EXPECT_GE(above, 1);
  }
}

TEST(NetAlignTest, DeterministicAndShapeCorrect) {
  AlignmentPair pair = CleanPair(7, 40);
  Supervision sup = Seeds(pair, 0.1, 8);
  NetAlignAligner a, b;
  auto s1 = a.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = b.Align(pair.source, pair.target, sup).MoveValueOrDie();
  EXPECT_EQ(s1.rows(), pair.source.num_nodes());
  EXPECT_EQ(s1.cols(), pair.target.num_nodes());
  EXPECT_LT(Matrix::MaxAbsDiff(s1, s2), 1e-12);
}

TEST(NetAlignTest, RejectsInvalidConfig) {
  AlignmentPair pair = CleanPair(9, 20);
  NetAlignConfig cfg;
  cfg.candidates_per_node = 0;
  NetAlignAligner aligner(cfg);
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, {}).ok());
}

TEST(NetAlignTest, HandlesEdgelessGraphs) {
  Rng rng(10);
  auto s = AttributedGraph::Create(8, {}, BinaryAttributes(8, 4, 0.4, &rng))
               .MoveValueOrDie();
  NetAlignAligner aligner;
  auto result = aligner.Align(s, s, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().AllFinite());
}

}  // namespace
}  // namespace galign
