#include "graph/similarity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AttributedGraph TestGraph(uint64_t seed, int64_t n = 80) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  return g.WithAttributes(BinaryAttributes(n, 8, 0.3, &rng))
      .MoveValueOrDie();
}

std::vector<int64_t> Identity(int64_t n) {
  std::vector<int64_t> v(n);
  for (int64_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(DegreeDivergenceTest, ZeroForIdenticalGraphs) {
  AttributedGraph g = TestGraph(1);
  EXPECT_NEAR(DegreeDistributionDivergence(g, g), 0.0, 1e-12);
}

TEST(DegreeDivergenceTest, PermutationInvariant) {
  AttributedGraph g = TestGraph(2);
  Rng rng(3);
  auto pg = g.Permuted(rng.Permutation(g.num_nodes())).MoveValueOrDie();
  EXPECT_NEAR(DegreeDistributionDivergence(g, pg), 0.0, 1e-12);
}

TEST(DegreeDivergenceTest, GrowsWithStructuralDifference) {
  AttributedGraph g = TestGraph(4);
  Rng rng(5);
  auto mild = RemoveEdges(g, 0.1, &rng).MoveValueOrDie();
  auto severe = RemoveEdges(g, 0.6, &rng).MoveValueOrDie();
  double d_mild = DegreeDistributionDivergence(g, mild);
  double d_severe = DegreeDistributionDivergence(g, severe);
  EXPECT_GT(d_severe, d_mild);
  EXPECT_GT(d_mild, 0.0);
  EXPECT_LE(d_severe, std::log(2.0) + 1e-12);  // JS upper bound
}

TEST(DegreeDivergenceTest, SymmetricInArguments) {
  AttributedGraph a = TestGraph(6);
  AttributedGraph b = TestGraph(7);
  EXPECT_NEAR(DegreeDistributionDivergence(a, b),
              DegreeDistributionDivergence(b, a), 1e-12);
}

TEST(SpectralDistanceTest, ZeroForPermutedCopy) {
  AttributedGraph g = TestGraph(8, 40);
  Rng rng(9);
  auto pg = g.Permuted(rng.Permutation(g.num_nodes())).MoveValueOrDie();
  auto d = SpectralDistance(g, pg, 10);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.ValueOrDie(), 0.0, 1e-7);
}

TEST(SpectralDistanceTest, PositiveForDifferentGraphs) {
  AttributedGraph a = TestGraph(10, 40);
  Rng rng(11);
  auto noisy = PerturbStructure(a, 0.5, &rng).MoveValueOrDie();
  auto d = SpectralDistance(a, noisy, 10);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d.ValueOrDie(), 1e-3);
}

TEST(SpectralDistanceTest, HandlesDifferentSizes) {
  AttributedGraph a = TestGraph(12, 40);
  AttributedGraph b = TestGraph(13, 25);
  auto d = SpectralDistance(a, b, 8);
  ASSERT_TRUE(d.ok());
  EXPECT_GE(d.ValueOrDie(), 0.0);
}

TEST(EdgeOverlapTest, PerfectForTrueAlignment) {
  AttributedGraph g = TestGraph(14);
  Rng rng(15);
  NoisyCopyOptions opts;  // permutation only
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  EXPECT_NEAR(EdgeOverlap(pair.source, pair.target, pair.ground_truth), 1.0,
              1e-12);
}

TEST(EdgeOverlapTest, DropsUnderWrongAlignment) {
  AttributedGraph g = TestGraph(16);
  Rng rng(17);
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  // A random (wrong) correspondence preserves almost nothing.
  std::vector<int64_t> wrong = rng.Permutation(g.num_nodes());
  double right = EdgeOverlap(pair.source, pair.target, pair.ground_truth);
  double bad = EdgeOverlap(pair.source, pair.target, wrong);
  EXPECT_GT(right, bad + 0.5);
}

TEST(EdgeOverlapTest, PartialCorrespondenceIgnoresUnmapped) {
  AttributedGraph g = TestGraph(18, 30);
  std::vector<int64_t> empty_map(30, -1);
  // Nothing mapped: vacuous overlap = 1.
  EXPECT_DOUBLE_EQ(EdgeOverlap(g, g, empty_map), 1.0);
}

TEST(AttributeAgreementTest, OneForTrueAlignmentWithoutNoise) {
  AttributedGraph g = TestGraph(19);
  Rng rng(20);
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  EXPECT_NEAR(
      AttributeAgreement(pair.source, pair.target, pair.ground_truth), 1.0,
      1e-12);
}

TEST(AttributeAgreementTest, DropsWithAttributeNoise) {
  AttributedGraph g = TestGraph(21);
  Rng rng(22);
  NoisyCopyOptions opts;
  opts.attribute_noise = 0.8;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  double agreement =
      AttributeAgreement(pair.source, pair.target, pair.ground_truth);
  EXPECT_LT(agreement, 0.95);
  EXPECT_GT(agreement, 0.1);
}

TEST(AttributeAgreementTest, ZeroForIncomparableDims) {
  AttributedGraph a = TestGraph(23, 20);
  auto b = a.WithAttributes(Matrix(20, 3, 1.0)).MoveValueOrDie();
  EXPECT_DOUBLE_EQ(AttributeAgreement(a, b, Identity(20)), 0.0);
}

TEST(StructuralConsistencyTest, MatchesNoiseLevel) {
  AttributedGraph g = TestGraph(24, 150);
  Rng rng(25);
  NoisyCopyOptions opts;
  opts.structural_noise = 0.3;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  double consistency =
      StructuralConsistency(pair.source, pair.target, pair.ground_truth);
  // ~30% of edges were dropped and replaced: consistency should land near
  // 0.7 (the kept fraction).
  EXPECT_NEAR(consistency, 0.7, 0.12);
}

TEST(StructuralConsistencyTest, PerfectForCleanCopy) {
  AttributedGraph g = TestGraph(26);
  Rng rng(27);
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  EXPECT_DOUBLE_EQ(
      StructuralConsistency(pair.source, pair.target, pair.ground_truth),
      1.0);
}

}  // namespace
}  // namespace galign
