#include "core/config.h"

#include <gtest/gtest.h>

namespace galign {
namespace {

TEST(ConfigValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(GAlignConfig{}.Validate().ok());
}

TEST(ConfigValidateTest, PaperSettingsAreValid) {
  GAlignConfig cfg;
  cfg.gamma = 0.8;
  cfg.accumulation_factor = 1.1;
  cfg.stability_threshold = 0.94;
  cfg.num_layers = 2;
  cfg.embedding_dim = 200;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadDimensions) {
  GAlignConfig cfg;
  cfg.num_layers = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.embedding_dim = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.epochs = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadProbabilities) {
  GAlignConfig cfg;
  cfg.gamma = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.gamma = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.augment_structural_noise = 2.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.augment_attribute_noise = -0.5;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsBadRefinementParams) {
  GAlignConfig cfg;
  cfg.accumulation_factor = 1.0;  // must be strictly > 1 (Eq. 14)
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.stability_threshold = 1.0;  // cosine bound is open
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.refinement_iterations = -1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsWrongLayerWeightCount) {
  GAlignConfig cfg;
  cfg.num_layers = 2;
  cfg.layer_weights = {0.5, 0.5};  // needs 3 entries (H0..H2)
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.layer_weights = {0.2, 0.3, 0.5};
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, RejectsNegativeExtensionParams) {
  GAlignConfig cfg;
  cfg.seed_loss_weight = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.early_stop_patience = -2;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.adaptivity_threshold = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigValidateTest, ErrorMessagesNameTheField) {
  GAlignConfig cfg;
  cfg.gamma = 7.0;
  EXPECT_NE(cfg.Validate().message().find("gamma"), std::string::npos);
  cfg = {};
  cfg.accumulation_factor = 0.5;
  EXPECT_NE(cfg.Validate().message().find("beta"), std::string::npos);
}

}  // namespace
}  // namespace galign
