// Unit tests for the ANN retrieval layer (DESIGN.md §11): both backends'
// construction/query contracts, determinism, truncation under cancellation,
// budget admission, the concat reduction, and the routing policy. The
// recall *property* (measured recall >= target on generated workloads)
// lives in ann_recall_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/ann/ann.h"
#include "graph/ann/ann_index.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {
namespace {

Matrix UnitRows(int64_t n, int64_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m = Matrix::Gaussian(n, d, &rng);
  m.NormalizeRows();
  return m;
}

AnnConfig BackendConfig(AnnBackend backend) {
  AnnConfig cfg;
  cfg.backend = backend;
  return cfg;
}

const AnnBackend kBackends[] = {AnnBackend::kLsh, AnnBackend::kHnsw};

TEST(AnnIndexTest, SelfQueryRecoversSelfTop1) {
  // Querying the indexed rows themselves: every unit row's best inner
  // product is itself (similarity 1), a retrieval-sanity floor both
  // backends must clear on a small index.
  const Matrix base = UnitRows(200, 16, 7);
  for (AnnBackend backend : kBackends) {
    auto index = BuildAnnIndex(base, BackendConfig(backend), RunContext());
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_EQ(index.ValueOrDie()->size(), 200);
    EXPECT_EQ(index.ValueOrDie()->dim(), 16);
    EXPECT_FALSE(index.ValueOrDie()->truncated());
    EXPECT_GT(index.ValueOrDie()->MemoryBytes(), 0u);
    auto topk = index.ValueOrDie()->QueryBatch(base, 5);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    const TopKAlignment& a = topk.ValueOrDie();
    EXPECT_EQ(a.rows_computed, 200);
    int hits = 0;
    for (int64_t v = 0; v < a.rows; ++v) {
      if (a.Top1(v) == v) ++hits;
      // Scores descend within each row; indices stay in range.
      for (int64_t j = 0; j < a.k; ++j) {
        EXPECT_LT(a.index[v * a.k + j], 200);
        if (j > 0 && a.index[v * a.k + j] >= 0) {
          EXPECT_LE(a.score[v * a.k + j], a.score[v * a.k + j - 1]);
        }
      }
    }
    EXPECT_EQ(hits, 200) << "backend " << static_cast<int>(backend);
  }
}

TEST(AnnIndexTest, DeterministicAcrossRebuilds) {
  const Matrix base = UnitRows(150, 12, 11);
  const Matrix queries = UnitRows(40, 12, 13);
  for (AnnBackend backend : kBackends) {
    auto i1 = BuildAnnIndex(base, BackendConfig(backend), RunContext());
    auto i2 = BuildAnnIndex(base, BackendConfig(backend), RunContext());
    ASSERT_TRUE(i1.ok() && i2.ok());
    auto r1 = i1.ValueOrDie()->QueryBatch(queries, 7);
    auto r2 = i2.ValueOrDie()->QueryBatch(queries, 7);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ(r1.ValueOrDie().index, r2.ValueOrDie().index);
    EXPECT_EQ(r1.ValueOrDie().score, r2.ValueOrDie().score);
  }
}

TEST(AnnIndexTest, KLargerThanIndexClampsWithPadding) {
  const Matrix base = UnitRows(6, 8, 3);
  const Matrix queries = UnitRows(4, 8, 5);
  for (AnnBackend backend : kBackends) {
    auto index = BuildAnnIndex(base, BackendConfig(backend), RunContext());
    ASSERT_TRUE(index.ok());
    auto topk = index.ValueOrDie()->QueryBatch(queries, 50);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    const TopKAlignment& a = topk.ValueOrDie();
    EXPECT_LE(a.k, 6);
    for (int64_t i = 0; i < a.rows * a.k; ++i) {
      EXPECT_GE(a.index[i], -1);
      EXPECT_LT(a.index[i], 6);
    }
  }
}

TEST(AnnIndexTest, EmptyBaseAndEmptyQueriesStayClean) {
  for (AnnBackend backend : kBackends) {
    auto index =
        BuildAnnIndex(Matrix(0, 8), BackendConfig(backend), RunContext());
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_EQ(index.ValueOrDie()->size(), 0);
    auto topk = index.ValueOrDie()->QueryBatch(UnitRows(3, 8, 1), 4);
    ASSERT_TRUE(topk.ok());
    EXPECT_EQ(topk.ValueOrDie().rows_computed, 3);
    for (int64_t idx : topk.ValueOrDie().index) EXPECT_EQ(idx, -1);

    auto full = BuildAnnIndex(UnitRows(5, 8, 2), BackendConfig(backend),
                              RunContext());
    ASSERT_TRUE(full.ok());
    auto none = full.ValueOrDie()->QueryBatch(Matrix(0, 8), 4);
    ASSERT_TRUE(none.ok());
    EXPECT_EQ(none.ValueOrDie().rows, 0);
  }
}

TEST(AnnIndexTest, CancelledBuildYieldsTruncatedButServingIndex) {
  CancelToken token;
  token.Cancel();
  RunContext ctx = RunContext().SetToken(token);
  const Matrix base = UnitRows(100, 8, 17);
  for (AnnBackend backend : kBackends) {
    auto index = BuildAnnIndex(base, BackendConfig(backend), ctx);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_TRUE(index.ValueOrDie()->truncated());
    EXPECT_LT(index.ValueOrDie()->size(), 100);
    // The truncated index still answers over the inserted prefix.
    auto topk = index.ValueOrDie()->QueryBatch(UnitRows(5, 8, 19), 3);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  }
}

TEST(AnnIndexTest, CancelledQueryWindsDownWithPartialRows) {
  const Matrix base = UnitRows(300, 8, 23);
  const Matrix queries = UnitRows(600, 8, 29);
  for (AnnBackend backend : kBackends) {
    auto index = BuildAnnIndex(base, BackendConfig(backend), RunContext());
    ASSERT_TRUE(index.ok());
    CancelToken token;
    token.Cancel();
    RunContext ctx = RunContext().SetToken(token);
    auto topk = index.ValueOrDie()->QueryBatch(queries, 3, ctx);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    const TopKAlignment& a = topk.ValueOrDie();
    EXPECT_EQ(a.rows_computed, 0);
    for (int64_t idx : a.index) EXPECT_EQ(idx, -1);
  }
}

TEST(AnnIndexTest, TinyBudgetIsRefusedCleanly) {
  const Matrix base = UnitRows(4096, 32, 31);
  RunContext ctx = RunContext::WithMemoryBudget(16 << 10);
  for (AnnBackend backend : kBackends) {
    auto index = BuildAnnIndex(base, BackendConfig(backend), ctx);
    EXPECT_FALSE(index.ok()) << "backend " << static_cast<int>(backend);
    EXPECT_EQ(index.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(AnnIndexTest, EstimateCoversActualFootprint) {
  const Matrix base = UnitRows(2000, 16, 37);
  for (AnnBackend backend : kBackends) {
    const AnnConfig cfg = BackendConfig(backend);
    auto index = BuildAnnIndex(base, cfg, RunContext());
    ASSERT_TRUE(index.ok());
    EXPECT_LE(index.ValueOrDie()->MemoryBytes(),
              EstimateAnnIndexBytes(2000, 16, cfg))
        << index.ValueOrDie()->name();
  }
}

TEST(AnnConfigTest, EffectiveLshBitsAutoAndClamp) {
  AnnConfig cfg;
  cfg.lsh_bits = 0;
  EXPECT_EQ(EffectiveLshBits(cfg, 0), 4);      // floor
  EXPECT_EQ(EffectiveLshBits(cfg, 16), 4);     // 2^4 = 16
  EXPECT_EQ(EffectiveLshBits(cfg, 17), 5);
  EXPECT_EQ(EffectiveLshBits(cfg, 1 << 20), 20);  // cap
  cfg.lsh_bits = 40;
  EXPECT_EQ(EffectiveLshBits(cfg, 100), 20);   // explicit value clamped
  cfg.lsh_bits = 6;
  EXPECT_EQ(EffectiveLshBits(cfg, 1 << 20), 6);
}

TEST(AnnPolicyTest, ShouldUseAnnRespectsModeAndThreshold) {
  AnnPolicy policy;
  policy.min_rows = 100;
  policy.mode = AnnMode::kOff;
  EXPECT_FALSE(ShouldUseAnn(policy, 1000, 1000));
  policy.mode = AnnMode::kOn;
  EXPECT_TRUE(ShouldUseAnn(policy, 10, 10));
  EXPECT_FALSE(ShouldUseAnn(policy, 0, 10));
  policy.mode = AnnMode::kAuto;
  EXPECT_FALSE(ShouldUseAnn(policy, 99, 1000));
  EXPECT_FALSE(ShouldUseAnn(policy, 1000, 99));
  EXPECT_TRUE(ShouldUseAnn(policy, 100, 100));
}

TEST(AnnPolicyTest, EffortScalesWithRecallTarget) {
  AnnPolicy policy;
  policy.config.lsh_probes = 10;
  policy.config.hnsw_ef_search = 50;
  policy.recall_target = 0.98;
  EXPECT_EQ(EffortScaledConfig(policy).lsh_probes, 10);
  policy.recall_target = 0.995;
  AnnConfig scaled = EffortScaledConfig(policy);
  EXPECT_EQ(scaled.lsh_probes, 20);
  EXPECT_EQ(scaled.hnsw_ef_search, 100);
  policy.recall_target = 0.999;
  EXPECT_EQ(EffortScaledConfig(policy).lsh_probes, 30);
}

TEST(AnnConcatTest, ConcatLayerRowsScalesQuerySideOnly) {
  Matrix a(3, 2);
  Matrix b(3, 1);
  for (int64_t r = 0; r < 3; ++r) {
    a(r, 0) = r + 1;
    a(r, 1) = 2 * (r + 1);
    b(r, 0) = 10.0 * (r + 1);
  }
  std::vector<double> scale = {0.5, 2.0};
  auto out = ConcatLayerRows({a, b}, &scale, nullptr);
  ASSERT_TRUE(out.ok());
  const Matrix& m = out.ValueOrDie();
  ASSERT_EQ(m.rows(), 3);
  ASSERT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 2.0 * 20.0);
  auto unscaled = ConcatLayerRows({a, b}, nullptr, nullptr);
  ASSERT_TRUE(unscaled.ok());
  EXPECT_DOUBLE_EQ(unscaled.ValueOrDie()(2, 2), 30.0);

  Matrix mismatched(2, 2);
  EXPECT_FALSE(ConcatLayerRows({a, mismatched}, nullptr, nullptr).ok());
  EXPECT_FALSE(ConcatLayerRows({}, nullptr, nullptr).ok());
}

TEST(AnnEmbeddingTest, MatchesChunkedContractOnMultiOrderInput) {
  // Two-layer multi-order input with non-uniform theta: the ANN route must
  // produce the same shape/ordering contract as ChunkedEmbeddingTopK and —
  // at full search effort on a small problem — the same top-1 matches.
  std::vector<Matrix> hs = {UnitRows(120, 8, 41), UnitRows(120, 8, 43)};
  std::vector<Matrix> ht = {UnitRows(90, 8, 47), UnitRows(90, 8, 53)};
  const std::vector<double> theta = {0.7, 0.3};
  auto exact = ChunkedEmbeddingTopK(hs, ht, theta, 5, RunContext());
  ASSERT_TRUE(exact.ok());
  for (AnnBackend backend : kBackends) {
    AnnPolicy policy;
    policy.mode = AnnMode::kOn;
    policy.config.backend = backend;
    // Exhaustive effort on a toy problem: probe everything / full beam.
    policy.config.lsh_probes = 1 << 10;
    policy.config.hnsw_ef_search = 90;
    auto ann = AnnEmbeddingTopK(hs, ht, theta, 5, policy, RunContext());
    ASSERT_TRUE(ann.ok()) << ann.status().ToString();
    const TopKAlignment& a = ann.ValueOrDie();
    const TopKAlignment& e = exact.ValueOrDie();
    EXPECT_EQ(a.rows, e.rows);
    EXPECT_EQ(a.cols, e.cols);
    EXPECT_EQ(a.k, e.k);
    int top1_matches = 0;
    for (int64_t v = 0; v < a.rows; ++v) {
      if (a.Top1(v) == e.Top1(v)) ++top1_matches;
    }
    EXPECT_GE(top1_matches, 114)  // >= 95% at exhaustive effort
        << "backend " << static_cast<int>(backend);
  }
}

TEST(AnnEmbeddingTest, RejectsMalformedInput) {
  AnnPolicy policy;
  policy.mode = AnnMode::kOn;
  std::vector<Matrix> hs = {UnitRows(10, 4, 1)};
  std::vector<Matrix> ht = {UnitRows(8, 4, 2)};
  EXPECT_FALSE(AnnEmbeddingTopK(hs, ht, {1.0, 2.0}, 3, policy, RunContext())
                   .ok());  // theta size mismatch
  EXPECT_FALSE(AnnEmbeddingTopK({}, {}, {}, 3, policy, RunContext()).ok());
  EXPECT_FALSE(AnnEmbeddingTopK(hs, ht, {1.0}, 0, policy, RunContext()).ok());
  std::vector<Matrix> ht_wrong_dim = {UnitRows(8, 6, 2)};
  EXPECT_FALSE(
      AnnEmbeddingTopK(hs, ht_wrong_dim, {1.0}, 3, policy, RunContext()).ok());
}

}  // namespace
}  // namespace galign
