#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/stats.h"
#include "la/ops.h"

namespace galign {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(1);
  auto g = ErdosRenyi(200, 0.05, &rng).MoveValueOrDie();
  double expected = 0.05 * 200 * 199 / 2;
  EXPECT_NEAR(g.num_edges(), expected, expected * 0.25);
}

TEST(ErdosRenyiTest, DensePathMatchesExpectation) {
  Rng rng(2);
  auto g = ErdosRenyi(100, 0.5, &rng).MoveValueOrDie();
  double expected = 0.5 * 100 * 99 / 2;
  EXPECT_NEAR(g.num_edges(), expected, expected * 0.1);
}

TEST(ErdosRenyiTest, ZeroProbabilityGivesNoEdges) {
  Rng rng(3);
  EXPECT_EQ(ErdosRenyi(50, 0.0, &rng).ValueOrDie().num_edges(), 0);
}

TEST(ErdosRenyiTest, RejectsInvalidArgs) {
  Rng rng(4);
  EXPECT_FALSE(ErdosRenyi(-1, 0.5, &rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, 1.5, &rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, -0.1, &rng).ok());
}

TEST(ErdosRenyiTest, DeterministicUnderSeed) {
  Rng a(7), b(7);
  auto g1 = ErdosRenyi(100, 0.05, &a).MoveValueOrDie();
  auto g2 = ErdosRenyi(100, 0.05, &b).MoveValueOrDie();
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(BarabasiAlbertTest, EdgeCountFormula) {
  Rng rng(5);
  auto g = BarabasiAlbert(300, 3, &rng).MoveValueOrDie();
  // Seed star contributes m edges; each of the n-m-1 later nodes adds m.
  EXPECT_EQ(g.num_edges(), 3 + (300 - 4) * 3);
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  Rng rng(6);
  auto g = BarabasiAlbert(500, 2, &rng).MoveValueOrDie();
  int64_t max_deg = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  // Preferential attachment creates hubs far above the mean (~4).
  EXPECT_GT(max_deg, 20);
}

TEST(BarabasiAlbertTest, RejectsInvalidArgs) {
  Rng rng(7);
  EXPECT_FALSE(BarabasiAlbert(5, 5, &rng).ok());
  EXPECT_FALSE(BarabasiAlbert(5, 0, &rng).ok());
}

TEST(WattsStrogatzTest, KeepsRingEdgeCount) {
  Rng rng(8);
  auto g = WattsStrogatz(100, 3, 0.2, &rng).MoveValueOrDie();
  // Rewiring preserves the number of edges (n * k).
  EXPECT_EQ(g.num_edges(), 300);
}

TEST(WattsStrogatzTest, ZeroBetaIsPureLattice) {
  Rng rng(9);
  auto g = WattsStrogatz(20, 2, 0.0, &rng).MoveValueOrDie();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(19, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(WattsStrogatzTest, RejectsInvalidArgs) {
  Rng rng(10);
  EXPECT_FALSE(WattsStrogatz(10, 5, 0.1, &rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.5, &rng).ok());
}

class PowerLawSizes
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(PowerLawSizes, HitsTargetEdgeCountApproximately) {
  auto [n, e] = GetParam();
  Rng rng(n);
  auto g = PowerLawGraph(n, e, 2.5, &rng).MoveValueOrDie();
  EXPECT_EQ(g.num_nodes(), n);
  // Stub pairing discards collisions; allow 30% slack.
  EXPECT_GT(g.num_edges(), e * 0.6);
  EXPECT_LT(g.num_edges(), e * 1.4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PowerLawSizes,
                         ::testing::Values(std::make_pair(100, 300),
                                           std::make_pair(500, 1500),
                                           std::make_pair(1000, 5000),
                                           std::make_pair(2000, 4000)));

TEST(PowerLawTest, HeavyTailExists) {
  Rng rng(11);
  auto g = PowerLawGraph(2000, 8000, 2.2, &rng).MoveValueOrDie();
  auto hist = DegreeHistogram(g);
  // Max degree should be many times the average (8).
  EXPECT_GT(static_cast<int64_t>(hist.size()) - 1, 40);
}

TEST(PowerLawTest, RejectsInvalidArgs) {
  Rng rng(12);
  EXPECT_FALSE(PowerLawGraph(1, 10, 2.5, &rng).ok());
  EXPECT_FALSE(PowerLawGraph(10, 10, 0.9, &rng).ok());
}

TEST(AttributeGeneratorsTest, BinaryAttributesAreBinaryAndNonEmpty) {
  Rng rng(13);
  Matrix f = BinaryAttributes(100, 20, 0.1, &rng);
  for (int64_t i = 0; i < f.size(); ++i) {
    EXPECT_TRUE(f.data()[i] == 0.0 || f.data()[i] == 1.0);
  }
  for (int64_t r = 0; r < f.rows(); ++r) {
    EXPECT_GT(f.Row(r).Sum(), 0.0);  // every node has a profile
  }
}

TEST(AttributeGeneratorsTest, BinaryDensityApproximate) {
  Rng rng(14);
  Matrix f = BinaryAttributes(500, 50, 0.2, &rng);
  double density = f.Sum() / f.size();
  EXPECT_NEAR(density, 0.2, 0.03);
}

TEST(AttributeGeneratorsTest, OneHotExactlyOnePerRow) {
  Rng rng(15);
  Matrix f = OneHotAttributes(200, 10, 1.0, &rng);
  for (int64_t r = 0; r < f.rows(); ++r) {
    EXPECT_DOUBLE_EQ(f.Row(r).Sum(), 1.0);
  }
}

TEST(AttributeGeneratorsTest, OneHotSkewPrefersEarlyCategories) {
  Rng rng(16);
  Matrix f = OneHotAttributes(2000, 10, 2.0, &rng);
  double first = f.Col(0).Sum();
  double last = f.Col(9).Sum();
  EXPECT_GT(first, last * 3);
}

TEST(AttributeGeneratorsTest, RealAttributesShape) {
  Rng rng(17);
  Matrix f = RealAttributes(50, 4, 3.0, &rng);
  EXPECT_EQ(f.rows(), 50);
  EXPECT_EQ(f.cols(), 4);
  EXPECT_TRUE(f.AllFinite());
}

TEST(AttributeGeneratorsTest, CommunityAttributesClusterTogether) {
  Rng rng(18);
  Matrix f = CommunityAttributes(100, 8, 2, /*noise=*/0.01, &rng);
  // Nodes in the same block are near-identical, across blocks they differ.
  double within = RowSquaredDistance(f, 0, f, 1);
  double across = RowSquaredDistance(f, 0, f, 99);
  EXPECT_LT(within, across);
}

}  // namespace
}  // namespace galign
