// Fixture: the retired raw factories must fire in budget-aware code.
#include "la/matrix.h"

namespace demo {
void Alloc() {
  auto m = galign::Matrix::Create(10, 10);
  auto s = galign::SparseMatrix::Create(10, 10, {});
  (void)m;
  (void)s;
}
}  // namespace demo
