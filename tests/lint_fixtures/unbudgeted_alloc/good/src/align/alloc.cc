// Fixture: TryCreate under a budget is the sanctioned path.
#include "la/matrix.h"

namespace demo {
galign::Status Alloc(galign::MemoryBudget* budget) {
  auto m = galign::Matrix::TryCreate(10, 10, 0.0, budget);
  if (!m.ok()) return m.status();
  return galign::Status::OK();
}
}  // namespace demo
