// Fixture: discards a Status and a Result — both must fire.
#include "api/api.h"

namespace demo {
void Caller() {
  DoWork();
  Compute();
}
}  // namespace demo
