// Fixture: declares Status-returning functions the lint must track.
#pragma once

namespace demo {
galign::Status DoWork();
galign::Status Propagate();
}  // namespace demo
