// Fixture: every Status is consumed — nothing may fire.
#include "api/api.h"

namespace demo {
galign::Status Propagate() {
  GALIGN_RETURN_NOT_OK(DoWork());
  galign::Status s = DoWork();
  if (!s.ok()) return s;
  DoWork().CheckOK();
  DoWork()
      .CheckOK();
  return galign::Status::OK();
}
}  // namespace demo
