// Fixture: budget primitives for the budget-discipline rule.
#pragma once
namespace demo {
struct Status {
  bool ok() const { return true; }
};
struct MatrixResult {
  bool ok() const { return true; }
  Status status() const { return Status{}; }
  int ValueOrDie() const { return 1; }
};
struct Budget {
  Status TryReserve(long bytes, const char* what);
  void Release(long bytes);
};
struct Matrix {
  static MatrixResult TryCreate(long rows, long cols);
};
}  // namespace demo
