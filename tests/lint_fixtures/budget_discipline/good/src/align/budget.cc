#include "budget.h"
namespace demo {
int Paired(Budget* b) {
  if (!b->TryReserve(64, "scratch").ok()) return 0;
  int v = 1;
  b->Release(64);
  return v;
}
int Checked() {
  auto r = Matrix::TryCreate(4, 4);
  if (!r.ok()) return 0;
  return r.ValueOrDie();
}
}  // namespace demo
