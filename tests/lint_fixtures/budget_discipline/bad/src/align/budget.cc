#include "budget.h"
namespace demo {
int Leaky(Budget* b) {
  if (!b->TryReserve(64, "scratch").ok()) return 0;
  return 1;
}
int Unchecked() {
  auto r = Matrix::TryCreate(4, 4);
  return r.ValueOrDie();
}
int InPlace() { return Matrix::TryCreate(2, 2).ValueOrDie(); }
}  // namespace demo
