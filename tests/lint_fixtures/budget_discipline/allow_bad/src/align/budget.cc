#include "budget.h"
namespace demo {
int Leaky(Budget* b) {
  if (!b->TryReserve(64, "scratch").ok()) return 0;  // galign-lint: allow(budget-discipline)
  return 1;
}
}  // namespace demo
