namespace demo {
void Arm(const char* site);
}
void TestAll() {
  demo::Arm("io.fixture.save");
  demo::Arm("io.fixture.sava");
  demo::Arm("io.fixture.saev");
}
