// Fixture: one unarmed site, one armed pair that is a one-edit typo apart.
namespace demo {
bool ShouldFailIO(const char* site);
bool Read() { return ShouldFailIO("io.fixture.load"); }
bool Write() { return ShouldFailIO("io.fixture.save"); }
bool WriteTwo() { return ShouldFailIO("io.fixture.sava"); }
}  // namespace demo
