// No arming tests: io.fixture.load stays uncovered.
