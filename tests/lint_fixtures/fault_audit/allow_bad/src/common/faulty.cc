namespace demo {
bool ShouldFailIO(const char* site);
bool Read() { return ShouldFailIO("io.fixture.load"); }  // galign-lint: allow(fault-site-audit)
}  // namespace demo
