namespace demo {
bool ShouldFailIO(const char* site);
bool Read() { return ShouldFailIO("io.fixture.load"); }
bool Write() { return ShouldFailIO("io.fixture.save"); }
}  // namespace demo
