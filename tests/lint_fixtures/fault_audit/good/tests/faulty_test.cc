namespace demo {
void Arm(const char* site);
}
// Direct arm plus a table-driven reference: both count as coverage.
void TestAll() { demo::Arm("io.fixture.load"); }
const char* kSites[] = {"io.fixture.save"};
