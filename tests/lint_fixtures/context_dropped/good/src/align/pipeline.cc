#include "pipeline.h"
namespace demo {
int Align(const Matrix& a, const RunContext& ctx) {
  int total = Solve(a, ctx);
  total += Solve(a, ctx);
  return total;
}
int Quick(const Matrix& a, const RunContext&) {
  int total = 0;
  for (int i = 0; i < 2; ++i) total += i;
  return total;
}
}  // namespace demo
