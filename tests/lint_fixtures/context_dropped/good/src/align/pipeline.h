// Fixture: deadline-aware callees for the context-dropped rule.
#pragma once
namespace demo {
struct RunContext {
  int deadline_ms = 0;
};
struct Matrix {};
int Solve(const Matrix& a, const RunContext& ctx);
void Refine(const Matrix& a, const RunContext& run_ctx);
}  // namespace demo
