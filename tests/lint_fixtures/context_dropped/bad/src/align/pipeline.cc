#include "pipeline.h"
namespace demo {
int Align(const Matrix& a, const RunContext& ctx) {
  RunContext fresh;
  int total = Solve(a, fresh);
  total += Solve(a, ctx);
  return total;
}
int Stranded(const Matrix& a, const RunContext& ctx) {
  int total = 0;
  for (int i = 0; i < 3; ++i) total += i;
  return total + 1;
}
}  // namespace demo
