#include "pipeline.h"
namespace demo {
int Align(const Matrix& a, const RunContext& ctx) {
  RunContext fresh;
  int total = Solve(a, fresh);  // galign-lint: allow(context-dropped)
  total += Solve(a, ctx);
  return total;
}
}  // namespace demo
