// Fixture: banned names inside strings/comments must not fire.
// A comment mentioning std::random_device and rand() is fine.
namespace demo {
const char* Label() { return "run time (seconds) vs rand() baseline"; }
}  // namespace demo
