// Fixture: common/rng is a whitelisted home for entropy.
#include <random>

namespace demo {
unsigned Seed() {
  std::random_device rd;
  return rd();
}
}  // namespace demo
