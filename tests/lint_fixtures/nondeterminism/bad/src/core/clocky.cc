// Fixture: raw clock/entropy calls outside the whitelisted homes.
#include <chrono>
#include <random>

namespace demo {
void Clocky() {
  std::random_device rd;
  auto t = std::chrono::steady_clock::now();
  (void)rd;
  (void)t;
}
}  // namespace demo
