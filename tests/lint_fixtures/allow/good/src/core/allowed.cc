// Fixture: an allow comment with a reason suppresses the rule.
#include <stdexcept>

namespace demo {
void Boom() {
  throw std::runtime_error("x");  // galign-lint: allow(no-naked-throw): fixture proves suppression works
}
}  // namespace demo
