// Fixture: an allow without a reason is itself a violation (bad-allow)
// and does not suppress the underlying rule.
#include <stdexcept>

namespace demo {
void Boom() {
  throw std::runtime_error("x");  // galign-lint: allow(no-naked-throw)
}
}  // namespace demo
