// Fixture: la may include common.
#pragma once
#include "common/status.h"
#include "la/ops.h"
