// Fixture: serve/swap sits above serve and may include it (and core, the
// ANN layer, la, common, itself) — longest-prefix module resolution again.
#pragma once
#include "common/status.h"
#include "core/config.h"
#include "serve/server.h"
#include "serve/swap/other.h"
