// Fixture: graph may include la and common (and itself).
#pragma once
#include "common/status.h"
#include "graph/graph.h"
#include "la/matrix.h"
#include <vector>
