// Fixture: graph/ann sits above graph and may include it (and la, common,
// itself) — the longest-prefix module rule, not first-path-component.
#pragma once
#include "common/status.h"
#include "graph/ann/other.h"
#include "graph/graph.h"
#include "la/matrix.h"
