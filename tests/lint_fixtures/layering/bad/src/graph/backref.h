// Fixture: graph must not reach back up into the graph/ann sub-layer.
#pragma once
#include "graph/ann/ann_index.h"
