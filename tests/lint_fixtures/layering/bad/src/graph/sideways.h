// Fixture: graph must not include align or baselines.
#pragma once
#include "align/alignment.h"
