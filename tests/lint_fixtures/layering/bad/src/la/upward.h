// Fixture: la reaching up into graph and core breaks the DAG.
#pragma once
#include "common/status.h"
#include "graph/graph.h"
#include "core/gcn.h"
