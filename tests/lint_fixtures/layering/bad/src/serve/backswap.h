// Fixture: serve must not reach back up into the serve/swap sub-layer.
#pragma once
#include "serve/swap/swap.h"
