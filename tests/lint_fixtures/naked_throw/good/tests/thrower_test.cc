// Fixture: test code may throw (gtest itself does).
#include <stdexcept>

namespace demo {
void Boom() { throw std::runtime_error("expected in tests"); }
}  // namespace demo
