// Fixture: library code must not throw.
#include <stdexcept>

namespace demo {
void Boom() { throw std::runtime_error("boom"); }
}  // namespace demo
