#include "state.h"
namespace demo {
void Counter::Bump() {
  std::lock_guard<std::mutex> lock(mu_);
  ++value_;
}
int Counter::Peek() const {
  return value_;
}
}  // namespace demo
