#include "state.h"
namespace demo {
void Counter::Bump() {
  std::lock_guard<std::mutex> lock(mu_);
  ++value_;
}
int Counter::Peek() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}
int Counter::PeekLocked() const {
  return value_;
}
// galign: requires_lock(mu_)
int Counter::Sum() const {
  return value_ + 1;
}
}  // namespace demo
