// Fixture: annotated shared state for the guarded-by rule.
#pragma once
#include <mutex>
namespace demo {
class Counter {
 public:
  void Bump();
  int Peek() const;

 private:
  mutable std::mutex mu_;
  int value_ = 0;  // galign: guarded_by(mu_)
};
}  // namespace demo
