// Unit tests for the typed flag-validation helpers shared by galign_cli
// and galign_serve (DESIGN.md §12). The binary-level rejection tests — one
// per user-facing flag — live in cli_test.cc and serve_cli_test.cc; this
// file pins the helpers' domains and the file:line diagnostic format.
#include <gtest/gtest.h>

#include <string>

#include "common/flag_validate.h"

namespace galign {
namespace {

TEST(FlagValidateTest, ByteSizeAcceptsSuffixes) {
  EXPECT_EQ(GALIGN_VALIDATE_BYTE_SIZE("512", "--mem-budget").ValueOrDie(),
            512u);
  EXPECT_EQ(GALIGN_VALIDATE_BYTE_SIZE("64k", "--mem-budget").ValueOrDie(),
            64ull << 10);
  EXPECT_EQ(GALIGN_VALIDATE_BYTE_SIZE("512M", "--mem-budget").ValueOrDie(),
            512ull << 20);
  EXPECT_EQ(GALIGN_VALIDATE_BYTE_SIZE("2g", "--mem-budget").ValueOrDie(),
            2ull << 30);
}

TEST(FlagValidateTest, ByteSizeRejectsMalformedTyped) {
  for (const char* bad : {"", "m", "1mb", "512q", "0", "-4k", "1.5g",
                          "99999999999999999999g"}) {
    auto r = GALIGN_VALIDATE_BYTE_SIZE(bad, "--mem-budget");
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(r.status().message().find("--mem-budget"), std::string::npos)
        << bad;
  }
}

TEST(FlagValidateTest, ErrorsCarryFileAndLine) {
  auto r = GALIGN_VALIDATE_BYTE_SIZE("1mb", "--mem-budget");
  ASSERT_FALSE(r.ok());
  // "file:123: --mem-budget=1mb rejected: ..." — the file is this test.
  EXPECT_NE(r.status().message().find("flag_validate_test.cc:"),
            std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("rejected:"), std::string::npos);
}

TEST(FlagValidateTest, UnitIntervalDomain) {
  EXPECT_DOUBLE_EQ(
      GALIGN_VALIDATE_UNIT_INTERVAL("0.9", "--ann-recall-target").ValueOrDie(),
      0.9);
  EXPECT_DOUBLE_EQ(
      GALIGN_VALIDATE_UNIT_INTERVAL("1", "--ann-recall-target").ValueOrDie(),
      1.0);
  for (const char* bad : {"0", "-0.5", "1.5", "nan", "recall", ""}) {
    auto r = GALIGN_VALIDATE_UNIT_INTERVAL(bad, "--ann-recall-target");
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FlagValidateTest, PositiveIntDomain) {
  EXPECT_EQ(GALIGN_VALIDATE_POSITIVE_INT("10", "--topk").ValueOrDie(), 10);
  for (const char* bad : {"0", "-3", "ten", "3.5", ""}) {
    auto r = GALIGN_VALIDATE_POSITIVE_INT(bad, "--topk");
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FlagValidateTest, TopKBoundIsDataDependent) {
  EXPECT_TRUE(GALIGN_VALIDATE_TOPK_BOUND(10, 10, "--topk").ok());
  Status s = GALIGN_VALIDATE_TOPK_BOUND(11, 10, "--topk");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("10 target nodes"), std::string::npos);
}

}  // namespace
}  // namespace galign
