#include "align/ensemble.h"

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "baselines/final.h"
#include "baselines/naive.h"
#include "baselines/regal.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair CleanPair(uint64_t seed, int64_t n = 60) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 10, 0.25, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

TEST(FuseTest, ReciprocalRankFavorsConsensus) {
  // Two matrices agree that column 1 is best for row 0; a third disagrees.
  Matrix a{{0.1, 0.9, 0.2}};
  Matrix b{{0.2, 0.8, 0.1}};
  Matrix c{{0.9, 0.1, 0.2}};
  auto fused =
      FuseAlignments({&a, &b, &c}, FusionRule::kReciprocalRank)
          .MoveValueOrDie();
  EXPECT_GT(fused(0, 1), fused(0, 0));
  EXPECT_GT(fused(0, 1), fused(0, 2));
}

TEST(FuseTest, NormalizedScoreIsScaleInvariant) {
  Matrix a{{1.0, 3.0}, {2.0, 0.0}};
  Matrix a_scaled{{100.0, 300.0}, {200.0, 0.0}};
  Matrix b{{0.5, 0.1}, {0.3, 0.9}};
  auto f1 = FuseAlignments({&a, &b}, FusionRule::kNormalizedScore)
                .MoveValueOrDie();
  auto f2 = FuseAlignments({&a_scaled, &b}, FusionRule::kNormalizedScore)
                .MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(f1, f2), 1e-12);
}

TEST(FuseTest, WeightsBias) {
  Matrix a{{1.0, 0.0}};
  Matrix b{{0.0, 1.0}};
  auto fused = FuseAlignments({&a, &b}, FusionRule::kNormalizedScore,
                              {3.0, 1.0})
                   .MoveValueOrDie();
  EXPECT_GT(fused(0, 0), fused(0, 1));
}

TEST(FuseTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(FuseAlignments({}, FusionRule::kReciprocalRank).ok());
  Matrix a(2, 2), b(3, 2);
  EXPECT_FALSE(
      FuseAlignments({&a, &b}, FusionRule::kReciprocalRank).ok());
}

TEST(EnsembleTest, AtLeastAsGoodAsWorstMember) {
  AlignmentPair pair = CleanPair(1, 80);
  Rng rng(2);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.1, &rng);

  RegalAligner regal;
  FinalAligner final_aligner;
  AttributeOnlyAligner attrs;
  EnsembleAligner ensemble({&regal, &final_aligner, &attrs});
  auto se = ensemble.Align(pair.source, pair.target, sup).MoveValueOrDie();
  EXPECT_EQ(ensemble.last_contributors(), 3);

  double ens_map = ComputeMetrics(se, pair.ground_truth).map;
  double worst = 1.0;
  for (Aligner* a : std::vector<Aligner*>{&regal, &final_aligner, &attrs}) {
    auto s = a->Align(pair.source, pair.target, sup).MoveValueOrDie();
    worst = std::min(worst, ComputeMetrics(s, pair.ground_truth).map);
  }
  EXPECT_GT(ens_map, worst - 0.02);
}

TEST(EnsembleTest, SkipsFailingMembers) {
  AlignmentPair pair = CleanPair(3, 30);
  class FailingAligner : public Aligner {
   public:
    std::string name() const override { return "Failing"; }
    using Aligner::Align;
    Result<Matrix> Align(const AttributedGraph&, const AttributedGraph&,
                         const Supervision&,
                         const RunContext&) override {
      return Status::Internal("nope");
    }
  } failing;
  RegalAligner regal;
  EnsembleAligner ensemble({&failing, &regal});
  auto s = ensemble.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(ensemble.last_contributors(), 1);

  EnsembleAligner all_fail({&failing});
  EXPECT_FALSE(all_fail.Align(pair.source, pair.target, {}).ok());
}

TEST(EnsembleTest, RejectsEmptyMemberList) {
  AlignmentPair pair = CleanPair(4, 20);
  EnsembleAligner empty({});
  EXPECT_FALSE(empty.Align(pair.source, pair.target, {}).ok());
}

}  // namespace
}  // namespace galign
