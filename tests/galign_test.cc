#include "core/galign.h"

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

GAlignConfig FastConfig() {
  GAlignConfig cfg;
  cfg.epochs = 20;
  cfg.embedding_dim = 16;
  cfg.refinement_iterations = 4;
  return cfg;
}

AlignmentPair MakePair(uint64_t seed, int64_t n, double p_s, double p_a) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 10, 0.25, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = p_s;
  opts.attribute_noise = p_a;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

TEST(GAlignTest, AlignsCleanPermutedCopyAlmostPerfectly) {
  AlignmentPair pair = MakePair(1, 60, 0.0, 0.0);
  GAlignAligner aligner(FastConfig());
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.success_at_1, 0.85);
  EXPECT_GT(m.map, 0.9);
}

TEST(GAlignTest, SurvivesModerateStructuralNoise) {
  AlignmentPair pair = MakePair(2, 60, 0.15, 0.0);
  GAlignAligner aligner(FastConfig());
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.success_at_1, 0.5);
}

TEST(GAlignTest, OutputShapeAndFiniteness) {
  AlignmentPair pair = MakePair(3, 40, 0.1, 0.1);
  GAlignAligner aligner(FastConfig());
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.ValueOrDie().rows(), pair.source.num_nodes());
  EXPECT_EQ(s.ValueOrDie().cols(), pair.target.num_nodes());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(GAlignTest, DeterministicUnderFixedSeed) {
  AlignmentPair pair = MakePair(4, 40, 0.1, 0.0);
  GAlignAligner a1(FastConfig()), a2(FastConfig());
  auto s1 = a1.Align(pair.source, pair.target, {});
  auto s2 = a2.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(s1.ValueOrDie(), s2.ValueOrDie()), 1e-12);
}

TEST(GAlignTest, IgnoresSupervision) {
  AlignmentPair pair = MakePair(5, 40, 0.1, 0.0);
  GAlignAligner a1(FastConfig()), a2(FastConfig());
  Supervision sup;
  sup.seeds = {{0, pair.ground_truth[0]}};
  auto s1 = a1.Align(pair.source, pair.target, {});
  auto s2 = a2.Align(pair.source, pair.target, sup);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(s1.ValueOrDie(), s2.ValueOrDie()), 1e-12);
}

TEST(GAlignTest, RejectsEmptyAndMismatchedInputs) {
  AlignmentPair pair = MakePair(6, 30, 0.0, 0.0);
  auto empty = AttributedGraph::Create(0, {}, Matrix()).MoveValueOrDie();
  GAlignAligner aligner(FastConfig());
  EXPECT_FALSE(aligner.Align(empty, pair.target, {}).ok());
  auto other =
      pair.source.WithAttributes(Matrix(30, 3, 1.0)).MoveValueOrDie();
  EXPECT_FALSE(aligner.Align(other, pair.target, {}).ok());
}

TEST(GAlignTest, ExposesDiagnostics) {
  AlignmentPair pair = MakePair(7, 30, 0.1, 0.0);
  GAlignConfig cfg = FastConfig();
  GAlignAligner aligner(cfg);
  ASSERT_TRUE(aligner.Align(pair.source, pair.target, {}).ok());
  EXPECT_EQ(aligner.last_loss_history().size(),
            static_cast<size_t>(cfg.epochs));
  EXPECT_EQ(aligner.last_refinement_scores().size(),
            static_cast<size_t>(cfg.refinement_iterations) + 1);
}

TEST(GAlignTest, SizeImbalancedNetworks) {
  // Target much smaller than source (Douban-style).
  Rng rng(8);
  auto g = BarabasiAlbert(80, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(80, 8, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  std::vector<int64_t> keep = rng.SampleWithoutReplacement(80, 30);
  auto target = g.InducedSubgraph(keep).MoveValueOrDie();
  GAlignAligner aligner(FastConfig());
  auto s = aligner.Align(g, target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.ValueOrDie().rows(), 80);
  EXPECT_EQ(s.ValueOrDie().cols(), 30);
  // Shared nodes should rank their counterpart well.
  std::vector<int64_t> gt(80, -1);
  for (size_t i = 0; i < keep.size(); ++i) gt[keep[i]] = static_cast<int64_t>(i);
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), gt);
  EXPECT_GT(m.success_at_10, 0.4);
}

TEST(GAlignTest, AlignsWeightedNetworks) {
  // Weighted-edge pair: confidence-weighted interactome aligned with its
  // permuted copy (weights preserved through permutation).
  Rng rng(20);
  auto topo = BarabasiAlbert(60, 3, &rng).MoveValueOrDie();
  std::vector<WeightedEdge> weighted;
  for (const auto& [u, v] : topo.edges()) {
    weighted.push_back({u, v, rng.Uniform(0.2, 1.0)});
  }
  auto g = AttributedGraph::CreateWeighted(
               60, weighted, BinaryAttributes(60, 8, 0.3, &rng))
               .MoveValueOrDie();
  std::vector<int64_t> perm = rng.Permutation(60);
  auto target = g.Permuted(perm).MoveValueOrDie();
  ASSERT_TRUE(target.is_weighted());

  GAlignAligner aligner(FastConfig());
  auto s = aligner.Align(g, target, {});
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), perm);
  EXPECT_GT(m.success_at_5, 0.8);
}

// --------------------------------------------- Ablation presets (Table IV)

TEST(GAlignVariantsTest, PresetsTweakFlags) {
  GAlignConfig base = FastConfig();
  EXPECT_FALSE(GAlignAligner::WithoutAugmentation(base).use_augmentation);
  EXPECT_FALSE(GAlignAligner::WithoutRefinement(base).use_refinement);
  EXPECT_TRUE(GAlignAligner::FinalLayerOnly(base).final_layer_only);
}

TEST(GAlignVariantsTest, EffectiveLayerWeights) {
  GAlignConfig cfg;
  cfg.num_layers = 2;
  auto uniform = cfg.EffectiveLayerWeights();
  ASSERT_EQ(uniform.size(), 3u);
  EXPECT_NEAR(uniform[0], 1.0 / 3.0, 1e-12);

  cfg.layer_weights = {1.0, 2.0, 1.0};
  auto weighted = cfg.EffectiveLayerWeights();
  EXPECT_NEAR(weighted[1], 0.5, 1e-12);

  cfg.final_layer_only = true;
  auto final_only = cfg.EffectiveLayerWeights();
  EXPECT_DOUBLE_EQ(final_only[2], 1.0);
  EXPECT_DOUBLE_EQ(final_only[0], 0.0);
}

TEST(GAlignVariantsTest, AllVariantsRunAndFullModelCompetitive) {
  AlignmentPair pair = MakePair(9, 50, 0.1, 0.1);
  GAlignConfig base = FastConfig();

  GAlignAligner full(base, "GAlign");
  GAlignAligner no_aug(GAlignAligner::WithoutAugmentation(base), "GAlign-1");
  GAlignAligner no_ref(GAlignAligner::WithoutRefinement(base), "GAlign-2");
  GAlignAligner last_only(GAlignAligner::FinalLayerOnly(base), "GAlign-3");

  double full_s1 = 0, variants_best = 0;
  for (GAlignAligner* a :
       std::vector<GAlignAligner*>{&full, &no_aug, &no_ref, &last_only}) {
    auto s = a->Align(pair.source, pair.target, {});
    ASSERT_TRUE(s.ok()) << a->name();
    double s1 =
        ComputeMetrics(s.ValueOrDie(), pair.ground_truth).success_at_1;
    if (a == &full) {
      full_s1 = s1;
    } else {
      variants_best = std::max(variants_best, s1);
    }
  }
  // The full model should not be far behind its own ablations.
  EXPECT_GE(full_s1, variants_best - 0.15);
}

}  // namespace
}  // namespace galign
