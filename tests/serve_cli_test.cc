// End-to-end test of the galign_serve binary (DESIGN.md §12): export a
// synthetic artifact, answer stdin queries through serve mode, hold the
// typed-response contract under a 16x burst, and reject each malformed
// flag with a typed file:line diagnostic. The binary path is injected by
// CMake as GALIGN_SERVE_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#ifndef GALIGN_SERVE_PATH
#define GALIGN_SERVE_PATH "galign_serve"
#endif

namespace galign {
namespace {

class ServeCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_serve_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Dir(const std::string& name) { return (dir_ / name).string(); }

  /// Runs the binary with `extra` flags; stdout+stderr land in out.txt.
  /// Returns the process exit code (-1 if it died on a signal).
  int Run(const std::string& extra, const std::string& stdin_file = "") {
    std::string cmd = std::string(GALIGN_SERVE_PATH) + " " + extra;
    if (!stdin_file.empty()) cmd += " < " + stdin_file;
    cmd += " > " + Dir("out.txt") + " 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  std::string CapturedOutput() {
    std::ifstream in(Dir("out.txt"));
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  /// Publishes a small artifact once per test that needs one.
  void ExportArtifact() {
    ASSERT_EQ(Run("--mode=export --artifact-dir=" + Dir("aidx") +
                  " --generate=50 --epochs=4 --dim=16 --anchor-k=5"),
              0)
        << CapturedOutput();
    ASSERT_TRUE(std::filesystem::exists(Dir("aidx") + "/MANIFEST"));
    ASSERT_TRUE(std::filesystem::exists(Dir("aidx") + "/aidx_00000001"));
  }

  std::filesystem::path dir_;
};

TEST_F(ServeCliTest, ExportThenServeAnswersQueries) {
  ExportArtifact();
  {
    std::ofstream script(Dir("script.txt"));
    script << "query 3\n"          // full answer
           << "query 3 2\n"        // explicit k
           << "query 9999\n"       // typed rejection, server keeps going
           << "bogus command\n"    // parse error, server keeps going
           << "quit\n";
  }
  ASSERT_EQ(Run("--mode=serve --artifact-dir=" + Dir("aidx") +
                    " --topk=5 --retry",
                Dir("script.txt")),
            0)
      << CapturedOutput();
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("serving 50 source nodes"), std::string::npos) << out;
  EXPECT_NE(out.find("node 3 [ann"), std::string::npos) << out;
  EXPECT_NE(out.find("InvalidArgument"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown command 'bogus'"), std::string::npos) << out;
}

TEST_F(ServeCliTest, BurstAt16xCapacityHoldsTypedContract) {
  ExportArtifact();
  // 16x a tiny queue from 4 clients with one worker: most requests must
  // shed, every one must resolve typed, and the binary's own contract
  // check is the exit code.
  ASSERT_EQ(Run("--mode=burst --artifact-dir=" + Dir("aidx") +
                " --workers=1 --queue-capacity=8 --load-multiple=16"
                " --clients=4 --deadline-ms=2000 --mem-budget=256m"),
            0)
      << CapturedOutput();
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("burst: 128 requests"), std::string::npos) << out;
  EXPECT_NE(out.find("untyped 0"), std::string::npos) << out;
  EXPECT_EQ(out.find("contract violated"), std::string::npos) << out;
}

TEST_F(ServeCliTest, ServeFallsBackPastTornNewestGeneration) {
  ExportArtifact();
  ASSERT_EQ(Run("--mode=export --artifact-dir=" + Dir("aidx") +
                " --generate=50 --epochs=4 --dim=16 --anchor-k=5"),
            0);
  {
    std::ofstream torn(Dir("aidx") + "/aidx_00000002",
                       std::ios::trunc | std::ios::binary);
    torn << "crashed mid-write";
  }
  std::ofstream(Dir("quit.txt")) << "quit\n";
  EXPECT_EQ(Run("--mode=serve --artifact-dir=" + Dir("aidx"),
                Dir("quit.txt")),
            0)
      << CapturedOutput();
}

TEST_F(ServeCliTest, ServeOnEmptyDirFailsTyped) {
  std::filesystem::create_directories(Dir("empty"));
  EXPECT_NE(Run("--mode=serve --artifact-dir=" + Dir("empty")), 0);
  EXPECT_NE(CapturedOutput().find("NotFound"), std::string::npos)
      << CapturedOutput();
}

// One rejection test per validated flag: exit code 2 and a typed
// diagnostic naming the flag, the value, and the validation site.

struct BadFlagCase {
  const char* flag_value;  ///< e.g. "--topk=0"
  const char* expect;      ///< substring the diagnostic must carry
};

void PrintTo(const BadFlagCase& c, std::ostream* os) { *os << c.flag_value; }

class ServeCliBadFlagTest : public ServeCliTest,
                            public ::testing::WithParamInterface<BadFlagCase> {
};

TEST_P(ServeCliBadFlagTest, RejectedTypedWithFileLine) {
  const BadFlagCase& c = GetParam();
  EXPECT_EQ(Run(std::string("--mode=serve --artifact-dir=") + Dir("aidx") +
                " " + c.flag_value),
            2);
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find(c.expect), std::string::npos) << out;
  EXPECT_NE(out.find("galign_serve.cpp:"), std::string::npos) << out;
  EXPECT_NE(out.find("rejected:"), std::string::npos) << out;
}

INSTANTIATE_TEST_SUITE_P(
    AllFlags, ServeCliBadFlagTest,
    ::testing::Values(
        BadFlagCase{"--generate=0", "--generate=0"},
        BadFlagCase{"--epochs=-3", "--epochs=-3"},
        BadFlagCase{"--dim=zero", "--dim=zero"},
        BadFlagCase{"--anchor-k=0", "--anchor-k=0"},
        BadFlagCase{"--ann-recall-target=1.5", "0 < value <= 1"},
        BadFlagCase{"--ann-recall-target=0", "0 < value <= 1"},
        BadFlagCase{"--topk=0", "--topk=0"},
        BadFlagCase{"--mem-budget=1mb", "bad suffix"},
        BadFlagCase{"--mem-budget=q", "must start with a digit"},
        BadFlagCase{"--workers=0", "--workers=0"},
        BadFlagCase{"--queue-capacity=-1", "--queue-capacity=-1"},
        BadFlagCase{"--deadline-ms=0", "--deadline-ms=0"},
        BadFlagCase{"--clients=0", "--clients=0"},
        BadFlagCase{"--load-multiple=0", "--load-multiple=0"}));

TEST_F(ServeCliTest, TopKBeyondArtifactTargetRejectedTyped) {
  ExportArtifact();
  std::ofstream(Dir("quit.txt")) << "quit\n";
  EXPECT_EQ(Run("--mode=serve --artifact-dir=" + Dir("aidx") + " --topk=500",
                Dir("quit.txt")),
            2);
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("--topk=500 rejected"), std::string::npos) << out;
  EXPECT_NE(out.find("50 target nodes"), std::string::npos) << out;
}

TEST_F(ServeCliTest, UnknownFlagRejected) {
  EXPECT_NE(Run("--mode=serve --artifact-dir=" + Dir("aidx") +
                " --definitely-not-a-flag=1"),
            0);
  EXPECT_NE(CapturedOutput().find("unknown flag"), std::string::npos);
}

}  // namespace
}  // namespace galign
