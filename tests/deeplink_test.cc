#include "baselines/deeplink.h"

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair CleanPair(uint64_t seed, int64_t n = 80) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 8, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

DeepLinkConfig FastConfig() {
  DeepLinkConfig cfg;
  cfg.walks.walks_per_node = 8;
  cfg.walks.walk_length = 15;
  cfg.skipgram.epochs = 3;
  cfg.skipgram.dim = 32;
  cfg.mapping_epochs = 150;
  return cfg;
}

TEST(DeepLinkTest, RequiresSeeds) {
  AlignmentPair pair = CleanPair(1);
  DeepLinkAligner aligner(FastConfig());
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, {}).ok());
}

TEST(DeepLinkTest, AlignsAboveChanceWithSeeds) {
  AlignmentPair pair = CleanPair(2);
  Rng rng(3);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.15, &rng);
  DeepLinkAligner aligner(FastConfig());
  auto s = aligner.Align(pair.source, pair.target, sup);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.6);
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(DeepLinkTest, DualModeDiffersFromSingle) {
  AlignmentPair pair = CleanPair(4, 50);
  Rng rng(5);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.2, &rng);
  DeepLinkConfig cfg = FastConfig();
  cfg.dual = true;
  DeepLinkAligner dual(cfg);
  cfg.dual = false;
  DeepLinkAligner single(cfg);
  auto s1 = dual.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = single.Align(pair.source, pair.target, sup).MoveValueOrDie();
  EXPECT_GT(Matrix::MaxAbsDiff(s1, s2), 1e-9);
}

TEST(DeepLinkTest, RejectsOutOfRangeSeeds) {
  AlignmentPair pair = CleanPair(6, 30);
  Supervision bad;
  bad.seeds = {{500, 0}};
  DeepLinkAligner aligner(FastConfig());
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, bad).ok());
}

TEST(DeepLinkTest, DeterministicUnderSeed) {
  AlignmentPair pair = CleanPair(7, 40);
  Rng rng(8);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.2, &rng);
  DeepLinkAligner a(FastConfig()), b(FastConfig());
  auto s1 = a.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = b.Align(pair.source, pair.target, sup).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(s1, s2), 1e-12);
}

TEST(DeepLinkTest, StructureOnlyIgnoresAttributes) {
  // Identical topologies with different attributes must give identical
  // scores: DeepLink never reads F.
  AlignmentPair pair = CleanPair(9, 40);
  Rng rng(10);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.2, &rng);
  auto other_attrs =
      pair.source.WithAttributes(Matrix(40, 8, 0.5)).MoveValueOrDie();
  DeepLinkAligner a(FastConfig()), b(FastConfig());
  auto s1 = a.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = b.Align(other_attrs, pair.target, sup).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(s1, s2), 1e-12);
}

}  // namespace
}  // namespace galign
