#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ops.h"

namespace galign {
namespace {

AttributedGraph Triangle() {
  Matrix f{{1, 0}, {0, 1}, {1, 1}};
  return AttributedGraph::Create(3, {{0, 1}, {1, 2}, {0, 2}}, f)
      .MoveValueOrDie();
}

TEST(GraphTest, BasicConstruction) {
  AttributedGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_attributes(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // symmetric
  EXPECT_EQ(g.Degree(0), 2);
}

TEST(GraphTest, RejectsOutOfRangeEdges) {
  EXPECT_FALSE(AttributedGraph::Create(2, {{0, 5}}, Matrix()).ok());
  EXPECT_FALSE(AttributedGraph::Create(2, {{-1, 0}}, Matrix()).ok());
}

TEST(GraphTest, RejectsAttributeRowMismatch) {
  EXPECT_FALSE(AttributedGraph::Create(3, {}, Matrix(2, 4)).ok());
}

TEST(GraphTest, EmptyAttributesGetConstantColumn) {
  auto g = AttributedGraph::Create(4, {{0, 1}}, Matrix());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_attributes(), 1);
  EXPECT_DOUBLE_EQ(g.ValueOrDie().attributes()(3, 0), 1.0);
}

TEST(GraphTest, DeduplicatesAndCanonicalizesEdges) {
  auto g = AttributedGraph::Create(3, {{1, 0}, {0, 1}, {0, 1}}, Matrix());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_edges(), 1);
  EXPECT_EQ(g.ValueOrDie().edges()[0], Edge(0, 1));
}

TEST(GraphTest, DropsSelfLoops) {
  auto g = AttributedGraph::Create(3, {{1, 1}, {0, 2}}, Matrix());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_edges(), 1);
}

TEST(GraphTest, NeighborsSorted) {
  auto g = AttributedGraph::Create(5, {{2, 4}, {2, 0}, {2, 3}}, Matrix())
               .MoveValueOrDie();
  auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 3);
  EXPECT_EQ(nbrs[2], 4);
}

TEST(GraphTest, AverageDegree) {
  AttributedGraph g = Triangle();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
  auto empty = AttributedGraph::Create(0, {}, Matrix()).MoveValueOrDie();
  EXPECT_DOUBLE_EQ(empty.AverageDegree(), 0.0);
}

TEST(GraphTest, NormalizedAdjacencyRowProperty) {
  AttributedGraph g = Triangle();
  auto c = g.NormalizedAdjacency();
  ASSERT_TRUE(c.ok());
  // Triangle with self loops: all degrees 3, every entry 1/3.
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(c.ValueOrDie().At(i, j), 1.0 / 3.0, 1e-12);
    }
  }
}

TEST(GraphTest, PermutedMovesEdgesAndAttributes) {
  AttributedGraph g = Triangle();
  std::vector<int64_t> perm{2, 0, 1};  // node i -> perm[i]
  auto pg = g.Permuted(perm);
  ASSERT_TRUE(pg.ok());
  const AttributedGraph& p = pg.ValueOrDie();
  EXPECT_EQ(p.num_edges(), 3);
  // Attribute row of original node 0 now lives at row 2.
  EXPECT_DOUBLE_EQ(p.attributes()(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.attributes()(2, 1), 0.0);
  // Degrees preserved under permutation.
  for (int64_t v = 0; v < 3; ++v) {
    EXPECT_EQ(p.Degree(perm[v]), g.Degree(v));
  }
}

TEST(GraphTest, PermutedRejectsNonPermutation) {
  AttributedGraph g = Triangle();
  EXPECT_FALSE(g.Permuted({0, 0, 1}).ok());
  EXPECT_FALSE(g.Permuted({0, 1}).ok());
  EXPECT_FALSE(g.Permuted({0, 1, 5}).ok());
}

TEST(GraphTest, PermutationAdjacencyIdentity) {
  // A_p = P A P^T exactly, verified densely on a random graph.
  Rng rng(3);
  std::vector<Edge> edges;
  for (int i = 0; i < 30; ++i) {
    int64_t u = rng.UniformInt(12), v = rng.UniformInt(12);
    if (u != v) edges.emplace_back(u, v);
  }
  auto g = AttributedGraph::Create(12, edges, Matrix()).MoveValueOrDie();
  std::vector<int64_t> perm = rng.Permutation(12);
  auto pg = g.Permuted(perm).MoveValueOrDie();

  Matrix a = g.adjacency().ToDense();
  Matrix ap = pg.adjacency().ToDense();
  Matrix p(12, 12);
  for (int64_t i = 0; i < 12; ++i) p(perm[i], i) = 1.0;
  Matrix expected = MatMul(MatMul(p, a), Transpose(p));
  EXPECT_LT(Matrix::MaxAbsDiff(ap, expected), 1e-12);
}

TEST(GraphTest, InducedSubgraphKeepsInternalEdges) {
  auto g = AttributedGraph::Create(
               5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}, Matrix())
               .MoveValueOrDie();
  auto sub = g.InducedSubgraph({1, 2, 3});
  ASSERT_TRUE(sub.ok());
  const AttributedGraph& s = sub.ValueOrDie();
  EXPECT_EQ(s.num_nodes(), 3);
  EXPECT_EQ(s.num_edges(), 2);  // 1-2 and 2-3 survive
  EXPECT_TRUE(s.HasEdge(0, 1));
  EXPECT_TRUE(s.HasEdge(1, 2));
  EXPECT_FALSE(s.HasEdge(0, 2));
}

TEST(GraphTest, InducedSubgraphRelabelsAttributes) {
  AttributedGraph g = Triangle();
  auto sub = g.InducedSubgraph({2, 0});
  ASSERT_TRUE(sub.ok());
  EXPECT_DOUBLE_EQ(sub.ValueOrDie().attributes()(0, 0), 1.0);  // node 2
  EXPECT_DOUBLE_EQ(sub.ValueOrDie().attributes()(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(sub.ValueOrDie().attributes()(1, 1), 0.0);  // node 0
}

TEST(GraphTest, InducedSubgraphRejectsDuplicatesAndRange) {
  AttributedGraph g = Triangle();
  EXPECT_FALSE(g.InducedSubgraph({0, 0}).ok());
  EXPECT_FALSE(g.InducedSubgraph({0, 7}).ok());
}

TEST(GraphTest, WithAttributesReplaces) {
  AttributedGraph g = Triangle();
  auto g2 = g.WithAttributes(Matrix(3, 5, 2.0));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.ValueOrDie().num_attributes(), 5);
  EXPECT_EQ(g2.ValueOrDie().num_edges(), 3);
  EXPECT_FALSE(g.WithAttributes(Matrix(4, 2)).ok());
}

TEST(GraphTest, InfluenceNormalizationMatchesManual) {
  AttributedGraph g = Triangle();
  std::vector<double> q{1.0, 4.0, 1.0};
  auto c = g.NormalizedAdjacency(q);
  ASSERT_TRUE(c.ok());
  // deg+self = 3 for all; dq = {3, 12, 3}.
  EXPECT_NEAR(c.ValueOrDie().At(0, 1), 1.0 / std::sqrt(36.0), 1e-12);
  EXPECT_NEAR(c.ValueOrDie().At(0, 2), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace galign
