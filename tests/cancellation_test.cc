// Deadline-aware cancellation (DESIGN.md §8): every aligner — GAlign and
// all twelve baselines — degrades to a valid best-so-far alignment when its
// RunContext is already expired, RunAligner flags the blown budget, and a
// mid-run deadline stops the trainer early instead of running unbounded.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "align/ensemble.h"
#include "align/pipeline.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair SmallPair(uint64_t seed, int64_t n = 40) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 6, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = 0.1;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

/// GAlign plus the full 12-method baseline roster, sized for test speed.
std::vector<std::unique_ptr<Aligner>> FullRoster() {
  std::vector<std::unique_ptr<Aligner>> roster;
  GAlignConfig galign;
  galign.epochs = 10;
  galign.embedding_dim = 8;
  galign.refinement_iterations = 4;
  roster.push_back(std::make_unique<GAlignAligner>(galign));
  CenalpConfig cenalp;
  cenalp.walks.walks_per_node = 3;
  cenalp.walks.walk_length = 8;
  cenalp.skipgram.epochs = 1;
  cenalp.skipgram.dim = 16;
  cenalp.expansion_rounds = 1;
  roster.push_back(std::make_unique<CenalpAligner>(cenalp));
  PaleConfig pale;
  pale.embedding_epochs = 10;
  pale.embedding_dim = 16;
  roster.push_back(std::make_unique<PaleAligner>(pale));
  roster.push_back(std::make_unique<RegalAligner>());
  roster.push_back(std::make_unique<IsoRankAligner>());
  roster.push_back(std::make_unique<FinalAligner>());
  DeepLinkConfig deeplink;
  deeplink.walks.walks_per_node = 3;
  deeplink.walks.walk_length = 8;
  deeplink.skipgram.epochs = 1;
  deeplink.skipgram.dim = 16;
  roster.push_back(std::make_unique<DeepLinkAligner>(deeplink));
  IoneConfig ione;
  ione.epochs = 10;
  ione.dim = 16;
  roster.push_back(std::make_unique<IoneAligner>(ione));
  roster.push_back(std::make_unique<NetAlignAligner>());
  roster.push_back(std::make_unique<UniAlignAligner>());
  roster.push_back(std::make_unique<DegreeRankAligner>());
  roster.push_back(std::make_unique<AttributeOnlyAligner>());
  roster.push_back(std::make_unique<RandomAligner>());
  return roster;
}

TEST(CancellationTest, ExpiredDeadlineStillYieldsResultForEveryMethod) {
  AlignmentPair pair = SmallPair(1);
  auto roster = FullRoster();
  ASSERT_EQ(roster.size(), 13u);  // GAlign + the 12 baselines
  RunContext expired = RunContext::WithTimeout(0.0);
  ASSERT_TRUE(expired.DeadlineExceeded());

  for (const auto& aligner : roster) {
    Rng rng(2);
    RunResult r = RunAligner(aligner.get(), pair, 0.1, &rng, expired);
    ASSERT_TRUE(r.status.ok())
        << aligner->name() << ": " << r.status.ToString();
    EXPECT_TRUE(r.deadline_exceeded) << aligner->name();
    EXPECT_FALSE(r.cancelled) << aligner->name();
  }
}

TEST(CancellationTest, PreCancelledTokenIsFlaggedAndStillYieldsResult) {
  AlignmentPair pair = SmallPair(3);
  CancelToken token;
  token.Cancel();
  RunContext ctx;
  ctx.SetToken(token);
  ASSERT_TRUE(ctx.ShouldStop());
  ASSERT_FALSE(ctx.DeadlineExceeded());

  GAlignConfig cfg;
  cfg.epochs = 10;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 4;
  GAlignAligner aligner(cfg);
  Rng rng(4);
  RunResult r = RunAligner(&aligner, pair, 0.0, &rng, ctx);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.deadline_exceeded);
}

TEST(CancellationTest, UnboundedContextLeavesFlagsClear) {
  AlignmentPair pair = SmallPair(5);
  RegalAligner aligner;
  Rng rng(6);
  RunResult r = RunAligner(&aligner, pair, 0.0, &rng);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.deadline_exceeded);
  EXPECT_FALSE(r.cancelled);
}

TEST(CancellationTest, TrainerStopsEarlyOnMidRunDeadline) {
  AlignmentPair pair = SmallPair(7);
  GAlignConfig cfg;
  cfg.epochs = 100000;  // would run for minutes unbounded
  cfg.embedding_dim = 16;
  Rng rng(8);
  MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                    cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  Status st = trainer.Train(&gcn, pair.source, pair.target, &rng, {},
                            RunContext::WithTimeout(0.2));
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(trainer.report().deadline_exceeded);
  EXPECT_LT(trainer.report().epochs_run, cfg.epochs);
  // The wound-down weights are healthy, not mid-step garbage.
  for (const Matrix& w : gcn.weights()) EXPECT_TRUE(w.AllFinite());
}

TEST(CancellationTest, CancelTokenSharedAcrossCopiesStops) {
  CancelToken token;
  RunContext ctx = RunContext::WithTimeout(3600.0);
  ctx.SetToken(token);
  RunContext copy = ctx;  // copies observe the same flag
  EXPECT_FALSE(copy.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(copy.ShouldStop());
  EXPECT_TRUE(copy.Cancelled());
  EXPECT_FALSE(copy.DeadlineExceeded());
}

TEST(CancellationTest, EnsembleRespectsExpiredDeadline) {
  AlignmentPair pair = SmallPair(9);
  RegalAligner regal;
  UniAlignAligner unialign;
  EnsembleAligner ensemble({&regal, &unialign});
  auto s = ensemble.Align(pair.source, pair.target, {},
                          RunContext::WithTimeout(0.0));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

}  // namespace
}  // namespace galign
