#include "graph/noise.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace galign {
namespace {

AttributedGraph TestGraph(uint64_t seed = 1, int64_t n = 200) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 10, 0.2, &rng);
  return g.WithAttributes(f).MoveValueOrDie();
}

TEST(RemoveEdgesTest, RemovesApproximatelyRatio) {
  AttributedGraph g = TestGraph();
  Rng rng(2);
  auto r = RemoveEdges(g, 0.3, &rng).MoveValueOrDie();
  double kept = static_cast<double>(r.num_edges()) / g.num_edges();
  EXPECT_NEAR(kept, 0.7, 0.08);
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
}

TEST(RemoveEdgesTest, ZeroAndFullRatios) {
  AttributedGraph g = TestGraph();
  Rng rng(3);
  EXPECT_EQ(RemoveEdges(g, 0.0, &rng).ValueOrDie().num_edges(),
            g.num_edges());
  EXPECT_EQ(RemoveEdges(g, 1.0, &rng).ValueOrDie().num_edges(), 0);
  EXPECT_FALSE(RemoveEdges(g, 1.5, &rng).ok());
}

TEST(AddRandomEdgesTest, AddsApproximatelyRatio) {
  AttributedGraph g = TestGraph();
  Rng rng(4);
  auto r = AddRandomEdges(g, 0.25, &rng).MoveValueOrDie();
  EXPECT_NEAR(r.num_edges(), g.num_edges() * 1.25, g.num_edges() * 0.02);
}

TEST(AddRandomEdgesTest, NeverDuplicatesEdges) {
  // On a near-complete graph, additions must not duplicate: the result can
  // never exceed the complete-graph edge count.
  Rng rng(5);
  auto g = ErdosRenyi(20, 0.9, &rng).MoveValueOrDie();
  auto r = AddRandomEdges(g, 1.0, &rng).MoveValueOrDie();
  EXPECT_LE(r.num_edges(), 20 * 19 / 2);
}

TEST(PerturbStructureTest, KeepsDensityRoughlyConstant) {
  AttributedGraph g = TestGraph();
  Rng rng(6);
  auto r = PerturbStructure(g, 0.2, &rng).MoveValueOrDie();
  EXPECT_NEAR(r.num_edges(), g.num_edges(), g.num_edges() * 0.1);
  // But the edge set must actually change.
  int64_t common = 0;
  for (const Edge& e : r.edges()) {
    if (g.HasEdge(e.first, e.second)) ++common;
  }
  EXPECT_LT(common, g.num_edges());
}

TEST(PerturbBinaryAttributesTest, PreservesBitCountPerRow) {
  AttributedGraph g = TestGraph();
  Rng rng(7);
  Matrix noisy = PerturbBinaryAttributes(g.attributes(), 1.0, &rng);
  for (int64_t r = 0; r < noisy.rows(); ++r) {
    // Bits are relocated, possibly with collisions, never created.
    EXPECT_LE(noisy.Row(r).Sum(), g.attributes().Row(r).Sum());
    EXPECT_GE(noisy.Row(r).Sum(), 1.0);
  }
}

TEST(PerturbBinaryAttributesTest, ZeroProbabilityIsIdentity) {
  AttributedGraph g = TestGraph();
  Rng rng(8);
  Matrix noisy = PerturbBinaryAttributes(g.attributes(), 0.0, &rng);
  EXPECT_LT(Matrix::MaxAbsDiff(noisy, g.attributes()), 1e-15);
}

TEST(PerturbRealAttributesTest, BoundedRelativeChange) {
  Rng rng(9);
  Matrix f = Matrix::Gaussian(50, 5, &rng, 2.0);
  Matrix noisy = PerturbRealAttributes(f, 0.3, &rng);
  for (int64_t i = 0; i < f.size(); ++i) {
    double delta = std::fabs(noisy.data()[i] - f.data()[i]);
    EXPECT_LE(delta, 0.3 * std::fabs(f.data()[i]) + 1e-12);
  }
}

TEST(IsBinaryMatrixTest, Detects) {
  EXPECT_TRUE(IsBinaryMatrix(Matrix{{0, 1}, {1, 1}}));
  EXPECT_FALSE(IsBinaryMatrix(Matrix{{0, 0.5}}));
}

TEST(NoisyCopyPairTest, NoNoiseIsExactPermutation) {
  AttributedGraph g = TestGraph();
  Rng rng(10);
  NoisyCopyOptions opts;  // no noise, permute
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  EXPECT_EQ(pair.target.num_edges(), g.num_edges());
  EXPECT_EQ(pair.NumAnchors(), g.num_nodes());
  // Ground truth maps each source node to a node with identical degree and
  // attributes.
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    int64_t v2 = pair.ground_truth[v];
    EXPECT_EQ(pair.target.Degree(v2), g.Degree(v));
    for (int64_t c = 0; c < g.num_attributes(); ++c) {
      EXPECT_DOUBLE_EQ(pair.target.attributes()(v2, c),
                       g.attributes()(v, c));
    }
  }
}

TEST(NoisyCopyPairTest, NoPermuteKeepsIdentity) {
  AttributedGraph g = TestGraph();
  Rng rng(11);
  NoisyCopyOptions opts;
  opts.permute = false;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(pair.ground_truth[v], v);
  }
}

TEST(NoisyCopyPairTest, StructuralNoiseChangesEdges) {
  AttributedGraph g = TestGraph();
  Rng rng(12);
  NoisyCopyOptions opts;
  opts.structural_noise = 0.3;
  opts.permute = false;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  int64_t common = 0;
  for (const Edge& e : pair.target.edges()) {
    if (g.HasEdge(e.first, e.second)) ++common;
  }
  EXPECT_LT(common, g.num_edges() * 0.9);
}

TEST(NoisyCopyPairTest, AttributeNoiseChangesAttributes) {
  AttributedGraph g = TestGraph();
  Rng rng(13);
  NoisyCopyOptions opts;
  opts.attribute_noise = 0.8;
  opts.permute = false;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  EXPECT_GT(Matrix::MaxAbsDiff(pair.target.attributes(), g.attributes()),
            0.0);
}

class OverlapLevels : public ::testing::TestWithParam<double> {};

TEST_P(OverlapLevels, SharedFractionMatches) {
  const double overlap = GetParam();
  AttributedGraph g = TestGraph(14, 300);
  Rng rng(15);
  NoisyCopyOptions opts;
  auto pair = MakeOverlapPair(g, overlap, opts, &rng).MoveValueOrDie();
  int64_t shared = pair.NumAnchors();
  int64_t expected = static_cast<int64_t>(overlap * 300);
  EXPECT_NEAR(shared, expected, 2);
  // Both sides contain shared + exclusive nodes.
  int64_t exclusive = (300 - expected) / 2;
  EXPECT_NEAR(pair.source.num_nodes(), expected + exclusive, 2);
  EXPECT_NEAR(pair.target.num_nodes(), expected + exclusive, 2);
  // Ground truth entries are valid target ids.
  for (int64_t t : pair.ground_truth) {
    EXPECT_LT(t, pair.target.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, OverlapLevels,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

TEST(OverlapPairTest, RejectsInvalidOverlap) {
  AttributedGraph g = TestGraph();
  Rng rng(16);
  EXPECT_FALSE(MakeOverlapPair(g, 0.0, {}, &rng).ok());
  EXPECT_FALSE(MakeOverlapPair(g, 1.2, {}, &rng).ok());
}

}  // namespace
}  // namespace galign
