#include "align/bootstrap.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace galign {
namespace {

Matrix PerfectAlignment(int64_t n) {
  Matrix s(n, n, 0.1);
  for (int64_t v = 0; v < n; ++v) s(v, v) = 1.0;
  return s;
}

std::vector<int64_t> IdentityGt(int64_t n) {
  std::vector<int64_t> gt(n);
  for (int64_t v = 0; v < n; ++v) gt[v] = v;
  return gt;
}

TEST(BootstrapTest, PerfectAlignmentHasDegenerateIntervals) {
  auto r = BootstrapEvaluate(PerfectAlignment(20), IdentityGt(20), 200);
  ASSERT_TRUE(r.ok());
  const BootstrapMetrics& m = r.ValueOrDie();
  EXPECT_DOUBLE_EQ(m.success_at_1.mean, 1.0);
  EXPECT_DOUBLE_EQ(m.success_at_1.stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.success_at_1.p5, 1.0);
  EXPECT_DOUBLE_EQ(m.success_at_1.p95, 1.0);
  EXPECT_DOUBLE_EQ(m.auc.mean, 1.0);
}

TEST(BootstrapTest, MeanTracksPointEstimate) {
  Rng rng(1);
  Matrix s = Matrix::Uniform(60, 60, &rng);
  auto gt = IdentityGt(60);
  AlignmentMetrics point = ComputeMetrics(s, gt);
  auto r = BootstrapEvaluate(s, gt, 2000, 9);
  ASSERT_TRUE(r.ok());
  const BootstrapMetrics& m = r.ValueOrDie();
  EXPECT_NEAR(m.map.mean, point.map, 0.02);
  EXPECT_NEAR(m.auc.mean, point.auc, 0.02);
  // The interval brackets the point estimate.
  EXPECT_LE(m.map.p5, point.map);
  EXPECT_GE(m.map.p95, point.map);
}

TEST(BootstrapTest, IntervalsShrinkWithMoreAnchors) {
  Rng rng(2);
  Matrix small = Matrix::Uniform(20, 50, &rng);
  Matrix large = Matrix::Uniform(400, 50, &rng);
  std::vector<int64_t> gt_small(20), gt_large(400);
  for (int64_t v = 0; v < 20; ++v) gt_small[v] = v % 50;
  for (int64_t v = 0; v < 400; ++v) gt_large[v] = v % 50;
  auto rs = BootstrapEvaluate(small, gt_small, 1000, 3).MoveValueOrDie();
  auto rl = BootstrapEvaluate(large, gt_large, 1000, 3).MoveValueOrDie();
  EXPECT_GT(rs.auc.stddev, rl.auc.stddev);
}

TEST(BootstrapTest, DeterministicUnderSeed) {
  Rng rng(4);
  Matrix s = Matrix::Uniform(30, 30, &rng);
  auto gt = IdentityGt(30);
  auto r1 = BootstrapEvaluate(s, gt, 500, 11).MoveValueOrDie();
  auto r2 = BootstrapEvaluate(s, gt, 500, 11).MoveValueOrDie();
  EXPECT_DOUBLE_EQ(r1.map.mean, r2.map.mean);
  EXPECT_DOUBLE_EQ(r1.map.p95, r2.map.p95);
}

TEST(BootstrapTest, RejectsInvalidInputs) {
  Matrix s = PerfectAlignment(5);
  EXPECT_FALSE(BootstrapEvaluate(s, IdentityGt(5), 0).ok());
  std::vector<int64_t> no_anchors(5, -1);
  EXPECT_FALSE(BootstrapEvaluate(s, no_anchors, 100).ok());
}

TEST(BootstrapTest, ToStringIsReadable) {
  auto r = BootstrapEvaluate(PerfectAlignment(10), IdentityGt(10), 50)
               .MoveValueOrDie();
  std::string str = r.ToString();
  EXPECT_NE(str.find("S@1"), std::string::npos);
  EXPECT_NE(str.find("50 resamples"), std::string::npos);
}

}  // namespace
}  // namespace galign
