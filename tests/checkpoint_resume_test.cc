// Crash-safe checkpoint/resume (DESIGN.md §8): a training run killed after
// a checkpoint resumes from it and finishes bit-identical to the
// uninterrupted run; torn/corrupt checkpoints are skipped in favour of the
// previous valid one; checkpoint-save failures never kill training.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Dir(const std::string& sub) { return (dir_ / sub).string(); }
  std::filesystem::path dir_;
};

AlignmentPair SmallPair(uint64_t seed) {
  Rng rng(seed);
  auto g = BarabasiAlbert(30, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(30, 5, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = 0.1;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

GAlignConfig FastConfig() {
  GAlignConfig cfg;
  cfg.epochs = 12;
  cfg.embedding_dim = 8;
  cfg.num_augmentations = 2;
  return cfg;
}

/// Trains from scratch under `cfg` with a fixed RNG seed and returns the
/// final weights (plus the run's report through `report`).
std::vector<Matrix> TrainWeights(const GAlignConfig& cfg,
                                 const AlignmentPair& pair,
                                 TrainReport* report = nullptr,
                                 Status* status = nullptr) {
  Rng rng(7);
  MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                    cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  Status st = trainer.Train(&gcn, pair.source, pair.target, &rng);
  if (status != nullptr) *status = st;
  if (report != nullptr) *report = trainer.report();
  return gcn.weights();
}

void ExpectBitIdentical(const std::vector<Matrix>& a,
                        const std::vector<Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows());
    ASSERT_EQ(a[i].cols(), b[i].cols());
    for (int64_t r = 0; r < a[i].rows(); ++r) {
      for (int64_t c = 0; c < a[i].cols(); ++c) {
        // Exact (bit-level) equality is the resume contract.
        ASSERT_EQ(a[i](r, c), b[i](r, c))
            << "layer " << i << " weight (" << r << ", " << c << ")";
      }
    }
  }
}

TEST_F(CheckpointResumeTest, ResumedRunIsBitIdenticalToUninterrupted) {
  AlignmentPair pair = SmallPair(1);

  // Reference: 12 uninterrupted epochs (checkpointing on — writing
  // snapshots must not perturb the math).
  GAlignConfig ref_cfg = FastConfig();
  ref_cfg.checkpoint_dir = Dir("ref");
  ref_cfg.checkpoint_every = 4;
  TrainReport ref_report;
  Status ref_status;
  auto ref = TrainWeights(ref_cfg, pair, &ref_report, &ref_status);
  ASSERT_TRUE(ref_status.ok()) << ref_status.ToString();
  EXPECT_GT(ref_report.checkpoints_written, 0);

  // "Killed" run: the process dies after epoch 6 (simulated by a run whose
  // epoch budget ends there — the checkpoint on disk is exactly what a
  // kill -9 after that epoch's snapshot would leave).
  GAlignConfig cut_cfg = FastConfig();
  cut_cfg.epochs = 6;
  cut_cfg.checkpoint_dir = Dir("crash");
  cut_cfg.checkpoint_every = 4;
  Status cut_status;
  TrainWeights(cut_cfg, pair, nullptr, &cut_status);
  ASSERT_TRUE(cut_status.ok());

  // Resume with the full budget: must pick up at epoch 6 and finish
  // bit-identical to the uninterrupted reference.
  GAlignConfig resume_cfg = FastConfig();
  resume_cfg.checkpoint_dir = Dir("crash");
  resume_cfg.checkpoint_every = 4;
  resume_cfg.resume_from_checkpoint = true;
  TrainReport resume_report;
  Status resume_status;
  auto resumed = TrainWeights(resume_cfg, pair, &resume_report,
                              &resume_status);
  ASSERT_TRUE(resume_status.ok()) << resume_status.ToString();
  EXPECT_TRUE(resume_report.resumed);
  EXPECT_EQ(resume_report.resume_epoch, 6);
  ExpectBitIdentical(ref, resumed);
}

TEST_F(CheckpointResumeTest, FallsBackPastTruncatedNewestCheckpoint) {
  AlignmentPair pair = SmallPair(2);

  GAlignConfig cfg = FastConfig();
  cfg.epochs = 8;
  cfg.checkpoint_every = 4;

  // Reference: uninterrupted 8 epochs, no checkpointing.
  auto ref = TrainWeights(cfg, pair);

  // Write checkpoints at epochs 4 and 8, then tear the newest one in half
  // (a torn write that slipped past the rename barrier, e.g. media fault).
  GAlignConfig ckpt_cfg = cfg;
  ckpt_cfg.checkpoint_dir = Dir("state");
  Status st;
  TrainWeights(ckpt_cfg, pair, nullptr, &st);
  ASSERT_TRUE(st.ok());
  const std::string newest = Dir("state") + "/ckpt_00000008";
  ASSERT_TRUE(std::filesystem::exists(newest));
  std::string content;
  {
    std::ifstream in(newest);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(newest, std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }

  // Resume must skip the torn epoch-8 file, restore epoch 4, replay 4..7,
  // and still land bit-identical on the reference weights.
  GAlignConfig resume_cfg = ckpt_cfg;
  resume_cfg.resume_from_checkpoint = true;
  TrainReport report;
  auto resumed = TrainWeights(resume_cfg, pair, &report, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.resume_epoch, 4);
  ExpectBitIdentical(ref, resumed);
}

TEST_F(CheckpointResumeTest, InjectedLoadFaultFallsBackToOlderCheckpoint) {
  AlignmentPair pair = SmallPair(3);
  GAlignConfig cfg = FastConfig();
  cfg.epochs = 8;
  cfg.checkpoint_every = 4;
  cfg.checkpoint_dir = Dir("state");
  Status st;
  TrainWeights(cfg, pair, nullptr, &st);
  ASSERT_TRUE(st.ok());

  // First checkpoint read (the newest) fails; the loader must fall back.
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("io.checkpoint.load", spec);
  GAlignConfig resume_cfg = cfg;
  resume_cfg.resume_from_checkpoint = true;
  TrainReport report;
  TrainWeights(resume_cfg, pair, &report, &st);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.resume_epoch, 4);
}

TEST_F(CheckpointResumeTest, SaveFailureIsNonFatal) {
  AlignmentPair pair = SmallPair(4);

  GAlignConfig plain = FastConfig();
  auto ref = TrainWeights(plain, pair);

  // Every checkpoint write fails; training must still complete, with the
  // exact same result as a run without checkpointing.
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  spec.repeat = 1000;
  fault::Arm("io.checkpoint.save", spec);
  GAlignConfig cfg = FastConfig();
  cfg.checkpoint_dir = Dir("state");
  cfg.checkpoint_every = 4;
  TrainReport report;
  Status st;
  auto weights = TrainWeights(cfg, pair, &report, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.checkpoints_written, 0);
  ExpectBitIdentical(ref, weights);
}

TEST_F(CheckpointResumeTest, AllCheckpointsCorruptMeansFreshStart) {
  AlignmentPair pair = SmallPair(5);
  GAlignConfig cfg = FastConfig();
  cfg.epochs = 8;
  cfg.checkpoint_every = 4;
  cfg.checkpoint_dir = Dir("state");
  Status st;
  TrainWeights(cfg, pair, nullptr, &st);
  ASSERT_TRUE(st.ok());

  // Corrupt every file in the state dir (checkpoints and manifest).
  for (const auto& entry :
       std::filesystem::directory_iterator(Dir("state"))) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "garbage that fails every checksum\n";
  }

  GAlignConfig resume_cfg = cfg;
  resume_cfg.resume_from_checkpoint = true;
  TrainReport report;
  auto weights = TrainWeights(resume_cfg, pair, &report, &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(report.resumed);  // degraded to a clean fresh start

  // And the fresh start is still the correct deterministic result.
  GAlignConfig plain = FastConfig();
  plain.epochs = 8;
  ExpectBitIdentical(TrainWeights(plain, pair), weights);
}

TEST_F(CheckpointResumeTest, CheckpointSerializationRoundTrips) {
  TrainerCheckpoint ckpt;
  ckpt.epoch = 7;
  ckpt.lr = 0.01 / 3.0;  // not exactly representable: exercises hex codec
  ckpt.adam_step = 21;
  Matrix w(2, 3);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) w(r, c) = 0.1 * (r * 3.0 + c) - 0.2;
  }
  ckpt.weights = {w};
  ckpt.adam_m = {w};
  ckpt.adam_v = {w};
  ckpt.snapshot = {w};
  ckpt.snapshot_loss = 1.5;
  ckpt.best_loss = 1.25;
  ckpt.epochs_without_improvement = 2;
  ckpt.loss_history = {3.0, 2.0, 1.5};
  ckpt.epochs_run = 7;
  ckpt.steps_applied = 6;
  ckpt.rollbacks = 1;
  ckpt.rollback_epochs = {3};
  ckpt.final_lr = 0.005;
  ckpt.final_loss = 1.5;
  std::mt19937_64 engine(123);
  engine.discard(17);
  {
    std::ostringstream os;
    os << engine;
    ckpt.rng_state = os.str();
  }

  auto parsed = ParseCheckpoint(SerializeCheckpoint(ckpt), "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TrainerCheckpoint& back = parsed.ValueOrDie();
  EXPECT_EQ(back.epoch, 7);
  EXPECT_EQ(back.lr, ckpt.lr);  // bit-exact through the hex codec
  EXPECT_EQ(back.adam_step, 21);
  ASSERT_EQ(back.weights.size(), 1u);
  EXPECT_EQ(back.weights[0](1, 2), w(1, 2));
  EXPECT_EQ(back.loss_history, ckpt.loss_history);
  EXPECT_EQ(back.rollback_epochs, ckpt.rollback_epochs);
  EXPECT_EQ(back.rng_state, ckpt.rng_state);

  // The restored engine continues the exact same stream.
  std::mt19937_64 restored;
  std::istringstream is(back.rng_state);
  is >> restored;
  EXPECT_EQ(restored(), engine());
}

TEST_F(CheckpointResumeTest, ManagerReportsNotFoundOnEmptyDir) {
  CheckpointManager mgr(Dir("empty"));
  auto r = mgr.LoadLatest();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace galign
