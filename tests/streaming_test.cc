#include "align/streaming.h"

#include <gtest/gtest.h>

#include "align/alignment.h"
#include "common/rng.h"
#include "core/refinement.h"

namespace galign {
namespace {

struct Fixture {
  std::vector<Matrix> hs, ht;
  std::vector<double> theta;
  std::vector<int64_t> gt;
};

Fixture MakeSetup(uint64_t seed, int64_t n1 = 37, int64_t n2 = 29) {
  Rng rng(seed);
  Fixture s;
  for (int l = 0; l < 3; ++l) {
    Matrix a = Matrix::Gaussian(n1, 6, &rng);
    a.NormalizeRows();
    s.hs.push_back(a);
    Matrix b = Matrix::Gaussian(n2, 6, &rng);
    b.NormalizeRows();
    s.ht.push_back(b);
  }
  s.theta = {0.2, 0.5, 0.3};
  s.gt.resize(n1);
  for (int64_t v = 0; v < n1; ++v) s.gt[v] = v % n2;
  return s;
}

class StreamingChunks : public ::testing::TestWithParam<int64_t> {};

TEST_P(StreamingChunks, MetricsMatchDensePath) {
  Fixture s = MakeSetup(1);
  Matrix dense = AggregateAlignment(s.hs, s.ht, s.theta);
  AlignmentMetrics expected = ComputeMetrics(dense, s.gt);
  auto streamed =
      ComputeMetricsStreaming(s.hs, s.ht, s.theta, s.gt, GetParam());
  ASSERT_TRUE(streamed.ok());
  const AlignmentMetrics& m = streamed.ValueOrDie();
  EXPECT_DOUBLE_EQ(m.success_at_1, expected.success_at_1);
  EXPECT_DOUBLE_EQ(m.success_at_5, expected.success_at_5);
  EXPECT_DOUBLE_EQ(m.success_at_10, expected.success_at_10);
  EXPECT_NEAR(m.map, expected.map, 1e-12);
  EXPECT_NEAR(m.auc, expected.auc, 1e-12);
  EXPECT_EQ(m.num_anchors, expected.num_anchors);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamingChunks,
                         ::testing::Values(1, 2, 7, 37, 100));

TEST(StreamingTest, Top1MatchesDense) {
  Fixture s = MakeSetup(2);
  Matrix dense = AggregateAlignment(s.hs, s.ht, s.theta);
  auto expected = Top1Anchors(dense);
  auto streamed = Top1AnchorsStreaming(s.hs, s.ht, s.theta, 5);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed.ValueOrDie(), expected);
}

TEST(StreamingTest, HandlesPartialGroundTruth) {
  Fixture s = MakeSetup(3);
  for (int64_t v = 0; v < 10; ++v) s.gt[v] = -1;
  Matrix dense = AggregateAlignment(s.hs, s.ht, s.theta);
  AlignmentMetrics expected = ComputeMetrics(dense, s.gt);
  auto streamed = ComputeMetricsStreaming(s.hs, s.ht, s.theta, s.gt);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed.ValueOrDie().num_anchors, expected.num_anchors);
  EXPECT_NEAR(streamed.ValueOrDie().map, expected.map, 1e-12);
}

TEST(StreamingTest, ZeroWeightLayersSkipped) {
  Fixture s = MakeSetup(4);
  s.theta = {0.0, 1.0, 0.0};
  Matrix dense = AggregateAlignment(s.hs, s.ht, s.theta);
  auto streamed = ComputeMetricsStreaming(s.hs, s.ht, s.theta, s.gt);
  ASSERT_TRUE(streamed.ok());
  EXPECT_NEAR(streamed.ValueOrDie().map, ComputeMetrics(dense, s.gt).map,
              1e-12);
}

TEST(StreamingTest, RejectsInconsistentInputs) {
  Fixture s = MakeSetup(5);
  std::vector<double> short_theta{0.5, 0.5};
  EXPECT_FALSE(
      ComputeMetricsStreaming(s.hs, s.ht, short_theta, s.gt).ok());
  Fixture mismatched = MakeSetup(6);
  mismatched.ht[1] = Matrix(29, 9);  // wrong layer dim
  EXPECT_FALSE(ComputeMetricsStreaming(mismatched.hs, mismatched.ht,
                                       mismatched.theta, mismatched.gt)
                   .ok());
}

}  // namespace
}  // namespace galign
