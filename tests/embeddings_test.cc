// Tests for the EmbedNetworks public API (multi-order embedding export for
// downstream tasks) and cross-checks against the GAlignAligner path.
#include <gtest/gtest.h>

#include "core/galign.h"
#include "core/refinement.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "la/ops.h"

namespace galign {
namespace {

AlignmentPair MakePair(uint64_t seed, int64_t n = 50) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 8, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = 0.05;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

GAlignConfig FastConfig() {
  GAlignConfig cfg;
  cfg.epochs = 15;
  cfg.embedding_dim = 12;
  return cfg;
}

TEST(EmbedNetworksTest, ShapesAndLayerCount) {
  AlignmentPair pair = MakePair(1);
  GAlignConfig cfg = FastConfig();
  auto e = EmbedNetworks(cfg, pair.source, pair.target);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  const MultiOrderEmbeddings& emb = e.ValueOrDie();
  ASSERT_EQ(emb.source_layers.size(), static_cast<size_t>(cfg.num_layers) + 1);
  ASSERT_EQ(emb.target_layers.size(), emb.source_layers.size());
  EXPECT_EQ(emb.source_layers[0].cols(), pair.source.num_attributes());
  EXPECT_EQ(emb.source_layers[1].cols(), cfg.embedding_dim);
  // Concatenation width = attr dim + k * embedding dim.
  EXPECT_EQ(emb.source_concat.cols(),
            pair.source.num_attributes() + cfg.num_layers * cfg.embedding_dim);
  EXPECT_EQ(emb.source_concat.rows(), pair.source.num_nodes());
  EXPECT_EQ(emb.target_concat.rows(), pair.target.num_nodes());
  EXPECT_TRUE(emb.source_concat.AllFinite());
}

TEST(EmbedNetworksTest, AnchorsAreMutuallyClosest) {
  AlignmentPair pair = MakePair(2);
  auto e = EmbedNetworks(FastConfig(), pair.source, pair.target)
               .MoveValueOrDie();
  // For most anchors, the matched target row should be among the closest in
  // the concatenated embedding space.
  int64_t good = 0;
  for (int64_t v = 0; v < pair.source.num_nodes(); ++v) {
    int64_t t = pair.ground_truth[v];
    double anchor_sim =
        RowCosine(e.source_concat, v, e.target_concat, t);
    int64_t better = 0;
    for (int64_t u = 0; u < pair.target.num_nodes(); ++u) {
      if (u != t &&
          RowCosine(e.source_concat, v, e.target_concat, u) > anchor_sim) {
        ++better;
      }
    }
    if (better < 5) ++good;
  }
  EXPECT_GT(good, pair.source.num_nodes() * 6 / 10);
}

TEST(EmbedNetworksTest, RejectsMismatchedAttributes) {
  AlignmentPair pair = MakePair(3, 30);
  auto other =
      pair.source.WithAttributes(Matrix(30, 3, 1.0)).MoveValueOrDie();
  EXPECT_FALSE(EmbedNetworks(FastConfig(), other, pair.target).ok());
}

TEST(EmbedNetworksTest, DeterministicUnderSeed) {
  AlignmentPair pair = MakePair(4, 30);
  GAlignConfig cfg = FastConfig();
  auto e1 = EmbedNetworks(cfg, pair.source, pair.target).MoveValueOrDie();
  auto e2 = EmbedNetworks(cfg, pair.source, pair.target).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(e1.source_concat, e2.source_concat), 1e-15);
}

TEST(RefinementEmbeddingsTest, ExposedThroughResult) {
  AlignmentPair pair = MakePair(5, 40);
  GAlignConfig cfg = FastConfig();
  cfg.refinement_iterations = 3;
  Rng rng(cfg.seed);
  MultiOrderGcn gcn(cfg.num_layers, pair.source.num_attributes(),
                    cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  trainer.Train(&gcn, pair.source, pair.target, &rng).CheckOK();
  auto r = RefineAlignment(gcn, pair.source, pair.target, cfg);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().source_embeddings.size(),
            static_cast<size_t>(cfg.num_layers) + 1);
  // Aggregating the returned embeddings reproduces the returned alignment.
  Matrix s = AggregateAlignment(r.ValueOrDie().source_embeddings,
                                r.ValueOrDie().target_embeddings,
                                cfg.EffectiveLayerWeights());
  EXPECT_LT(Matrix::MaxAbsDiff(s, r.ValueOrDie().alignment), 1e-12);
}

}  // namespace
}  // namespace galign
