// Failure-injection tests: every aligner in the registry must either handle
// or cleanly reject degenerate-but-legal inputs (no crashes, no NaNs, no
// silent garbage): edgeless graphs, isolated nodes, single-node graphs,
// star graphs, disconnected components, constant attributes. Supervised
// methods (PALE, DeepLink, IONE, CENALP) run both without supervision
// (clean rejection expected) and with a handful of seed anchors.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "align/metrics.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

// Every Aligner implementation in the repo, configured small enough that
// the full matrix of degenerate inputs stays fast.
std::vector<std::unique_ptr<Aligner>> AllRobustAligners() {
  std::vector<std::unique_ptr<Aligner>> out;
  GAlignConfig cfg;
  cfg.epochs = 8;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 2;
  out.push_back(std::make_unique<GAlignAligner>(cfg));
  out.push_back(std::make_unique<FinalAligner>());
  out.push_back(std::make_unique<IsoRankAligner>());
  out.push_back(std::make_unique<RegalAligner>());
  out.push_back(std::make_unique<UniAlignAligner>());
  out.push_back(std::make_unique<DegreeRankAligner>());
  out.push_back(std::make_unique<AttributeOnlyAligner>());
  out.push_back(std::make_unique<RandomAligner>());

  PaleConfig pale;
  pale.embedding_dim = 8;
  pale.embedding_epochs = 5;
  pale.mapping_epochs = 20;
  out.push_back(std::make_unique<PaleAligner>(pale));

  DeepLinkConfig deeplink;
  deeplink.walks.walks_per_node = 2;
  deeplink.walks.walk_length = 5;
  deeplink.skipgram.dim = 8;
  deeplink.skipgram.epochs = 1;
  deeplink.mapping_epochs = 20;
  out.push_back(std::make_unique<DeepLinkAligner>(deeplink));

  IoneConfig ione;
  ione.dim = 8;
  ione.epochs = 10;
  out.push_back(std::make_unique<IoneAligner>(ione));

  CenalpConfig cenalp;
  cenalp.walks.walks_per_node = 2;
  cenalp.walks.walk_length = 5;
  cenalp.skipgram.dim = 8;
  cenalp.skipgram.epochs = 1;
  cenalp.expansion_rounds = 1;
  out.push_back(std::make_unique<CenalpAligner>(cenalp));

  NetAlignConfig netalign;
  netalign.candidates_per_node = 5;
  netalign.iterations = 5;
  out.push_back(std::make_unique<NetAlignAligner>(netalign));
  return out;
}

// Seed supervision for supervised aligners: identity pairs over the first
// few nodes that exist in both networks.
Supervision SmallSeeds(const AttributedGraph& s, const AttributedGraph& t) {
  Supervision sup;
  const int64_t n = std::min({s.num_nodes(), t.num_nodes(), int64_t{4}});
  for (int64_t v = 0; v < n; ++v) sup.seeds.emplace_back(v, v);
  return sup;
}

void ExpectCleanOutcome(Aligner* a, const AttributedGraph& s,
                        const AttributedGraph& t) {
  for (const Supervision& sup : {Supervision{}, SmallSeeds(s, t)}) {
    auto result = a->Align(s, t, sup);
    if (result.ok()) {
      EXPECT_EQ(result.ValueOrDie().rows(), s.num_nodes())
          << a->name() << " (seeds=" << sup.seeds.size() << ")";
      EXPECT_EQ(result.ValueOrDie().cols(), t.num_nodes())
          << a->name() << " (seeds=" << sup.seeds.size() << ")";
      EXPECT_TRUE(result.ValueOrDie().AllFinite())
          << a->name() << " (seeds=" << sup.seeds.size() << ")";
    }
    // A non-OK status is also acceptable: the contract is "no crash, no
    // NaN" — supervised methods reject the seedless run descriptively.
  }
}

TEST(FailureInjectionTest, EdgelessGraphs) {
  Rng rng(1);
  auto s = AttributedGraph::Create(10, {}, BinaryAttributes(10, 4, 0.3, &rng))
               .MoveValueOrDie();
  auto t = AttributedGraph::Create(8, {}, BinaryAttributes(8, 4, 0.3, &rng))
               .MoveValueOrDie();
  for (auto& a : AllRobustAligners()) ExpectCleanOutcome(a.get(), s, t);
}

TEST(FailureInjectionTest, SingleNodeGraphs) {
  auto s = AttributedGraph::Create(1, {}, Matrix(1, 4, 1.0)).MoveValueOrDie();
  auto t = AttributedGraph::Create(1, {}, Matrix(1, 4, 1.0)).MoveValueOrDie();
  for (auto& a : AllRobustAligners()) ExpectCleanOutcome(a.get(), s, t);
}

TEST(FailureInjectionTest, ManyIsolatedNodes) {
  Rng rng(2);
  // Half the nodes have no edges at all.
  std::vector<Edge> edges;
  for (int64_t v = 0; v < 15; ++v) edges.emplace_back(v, (v + 1) % 15);
  auto g = AttributedGraph::Create(30, edges,
                                   BinaryAttributes(30, 5, 0.3, &rng))
               .MoveValueOrDie();
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  for (auto& a : AllRobustAligners()) {
    ExpectCleanOutcome(a.get(), pair.source, pair.target);
  }
}

TEST(FailureInjectionTest, StarGraph) {
  Rng rng(3);
  std::vector<Edge> edges;
  for (int64_t v = 1; v < 25; ++v) edges.emplace_back(0, v);
  auto g = AttributedGraph::Create(25, edges,
                                   BinaryAttributes(25, 5, 0.3, &rng))
               .MoveValueOrDie();
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  for (auto& a : AllRobustAligners()) {
    ExpectCleanOutcome(a.get(), pair.source, pair.target);
  }
}

TEST(FailureInjectionTest, DisconnectedComponents) {
  Rng rng(4);
  std::vector<Edge> edges;
  // Three disjoint cliques of 8.
  for (int64_t block = 0; block < 3; ++block) {
    for (int64_t i = 0; i < 8; ++i) {
      for (int64_t j = i + 1; j < 8; ++j) {
        edges.emplace_back(block * 8 + i, block * 8 + j);
      }
    }
  }
  auto g = AttributedGraph::Create(24, edges,
                                   BinaryAttributes(24, 6, 0.3, &rng))
               .MoveValueOrDie();
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  for (auto& a : AllRobustAligners()) {
    ExpectCleanOutcome(a.get(), pair.source, pair.target);
  }
}

TEST(FailureInjectionTest, ConstantAttributes) {
  // Attributes carry zero signal; methods must still run on structure.
  Rng rng(5);
  auto g = BarabasiAlbert(30, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(Matrix(30, 4, 1.0)).MoveValueOrDie();
  NoisyCopyOptions opts;
  AlignmentPair pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  for (auto& a : AllRobustAligners()) {
    ExpectCleanOutcome(a.get(), pair.source, pair.target);
  }
}

TEST(FailureInjectionTest, WildlyImbalancedSizes) {
  Rng rng(6);
  auto big = BarabasiAlbert(120, 3, &rng).MoveValueOrDie();
  big = big.WithAttributes(BinaryAttributes(120, 5, 0.3, &rng))
            .MoveValueOrDie();
  auto tiny = big.InducedSubgraph({0, 1, 2, 3, 4}).MoveValueOrDie();
  for (auto& a : AllRobustAligners()) {
    ExpectCleanOutcome(a.get(), big, tiny);
    ExpectCleanOutcome(a.get(), tiny, big);
  }
}

TEST(FailureInjectionTest, GAlignSurvivesExtremeAugmentationNoise) {
  Rng rng(7);
  auto g = BarabasiAlbert(40, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(40, 5, 0.3, &rng)).MoveValueOrDie();
  GAlignConfig cfg;
  cfg.epochs = 8;
  cfg.embedding_dim = 8;
  cfg.augment_structural_noise = 0.9;
  cfg.augment_attribute_noise = 0.9;
  GAlignAligner aligner(cfg);
  auto s = aligner.Align(g, g, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(FailureInjectionTest, RefinementWithEverythingStable) {
  // A graph aligned with itself: every node is stable, influence factors
  // compound each iteration — must stay finite.
  Rng rng(8);
  auto g = BarabasiAlbert(25, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(25, 5, 0.4, &rng)).MoveValueOrDie();
  GAlignConfig cfg;
  cfg.epochs = 10;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 25;  // lots of compounding
  GAlignAligner aligner(cfg);
  auto s = aligner.Align(g, g, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
  AlignmentMetrics m;
  std::vector<int64_t> identity(25);
  for (int64_t v = 0; v < 25; ++v) identity[v] = v;
  m = ComputeMetrics(s.ValueOrDie(), identity);
  EXPECT_GT(m.success_at_5, 0.8);
}

}  // namespace
}  // namespace galign
