#include "align/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace galign {
namespace {

// Alignment matrix where row v ranks its true target gt[v] at a known rank.
Matrix PerfectAlignment(int64_t n) {
  Matrix s(n, n, 0.1);
  for (int64_t v = 0; v < n; ++v) s(v, v) = 1.0;
  return s;
}

std::vector<int64_t> IdentityGt(int64_t n) {
  std::vector<int64_t> gt(n);
  for (int64_t v = 0; v < n; ++v) gt[v] = v;
  return gt;
}

TEST(MetricsTest, PerfectAlignmentScoresOne) {
  Matrix s = PerfectAlignment(10);
  auto gt = IdentityGt(10);
  AlignmentMetrics m = ComputeMetrics(s, gt);
  EXPECT_DOUBLE_EQ(m.success_at_1, 1.0);
  EXPECT_DOUBLE_EQ(m.success_at_5, 1.0);
  EXPECT_DOUBLE_EQ(m.success_at_10, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
  EXPECT_EQ(m.num_anchors, 10);
}

TEST(MetricsTest, KnownRanks) {
  // 3 anchors; true target ranked 1st, 2nd, 3rd respectively.
  Matrix s{{0.9, 0.5, 0.1},   // gt 0 at rank 1
           {0.9, 0.5, 0.1},   // gt 1 at rank 2
           {0.9, 0.5, 0.1}};  // gt 2 at rank 3
  std::vector<int64_t> gt{0, 1, 2};
  AlignmentMetrics m = ComputeMetrics(s, gt);
  EXPECT_NEAR(m.success_at_1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.map, (1.0 + 0.5 + 1.0 / 3.0) / 3.0, 1e-12);
  // AUC per Eq. 18 with 2 negatives: ranks 1,2,3 -> (2+1-r)/2 = 1, .5, 0.
  EXPECT_NEAR(m.auc, 0.5, 1e-12);
}

TEST(MetricsTest, SuccessAtQMonotonic) {
  Rng rng(1);
  Matrix s = Matrix::Uniform(50, 50, &rng);
  auto gt = IdentityGt(50);
  double s1 = SuccessAtQ(s, gt, 1);
  double s5 = SuccessAtQ(s, gt, 5);
  double s10 = SuccessAtQ(s, gt, 10);
  double s50 = SuccessAtQ(s, gt, 50);
  EXPECT_LE(s1, s5);
  EXPECT_LE(s5, s10);
  EXPECT_LE(s10, s50);
  EXPECT_DOUBLE_EQ(s50, 1.0);
}

TEST(MetricsTest, MissingAnchorsSkipped) {
  Matrix s = PerfectAlignment(4);
  std::vector<int64_t> gt{0, -1, 2, -1};
  AlignmentMetrics m = ComputeMetrics(s, gt);
  EXPECT_EQ(m.num_anchors, 2);
  EXPECT_DOUBLE_EQ(m.success_at_1, 1.0);
}

TEST(MetricsTest, EmptyGroundTruthYieldsZeros) {
  Matrix s = PerfectAlignment(3);
  std::vector<int64_t> gt{-1, -1, -1};
  AlignmentMetrics m = ComputeMetrics(s, gt);
  EXPECT_EQ(m.num_anchors, 0);
  EXPECT_DOUBLE_EQ(m.map, 0.0);
}

TEST(MetricsTest, OutOfRangeTargetsSkipped) {
  Matrix s = PerfectAlignment(3);
  std::vector<int64_t> gt{0, 99, 2};  // 99 is out of range
  AlignmentMetrics m = ComputeMetrics(s, gt);
  EXPECT_EQ(m.num_anchors, 2);
}

TEST(MetricsTest, MapEqualsMrr) {
  // MAP under the pairwise setting is mean reciprocal rank (paper Eq. 17).
  Rng rng(2);
  Matrix s = Matrix::Uniform(30, 30, &rng);
  auto gt = IdentityGt(30);
  double map = MeanAveragePrecision(s, gt);
  double manual = 0;
  for (int64_t v = 0; v < 30; ++v) {
    int64_t rank = 1;
    for (int64_t c = 0; c < 30; ++c) {
      if (c != v && s(v, c) > s(v, v)) ++rank;
    }
    manual += 1.0 / rank;
  }
  EXPECT_NEAR(map, manual / 30, 1e-12);
}

TEST(MetricsTest, AucWorstCaseIsZero) {
  // True target ranked dead last for every anchor.
  int64_t n = 5;
  Matrix s(n, n, 1.0);
  for (int64_t v = 0; v < n; ++v) s(v, v) = 0.0;
  AlignmentMetrics m = ComputeMetrics(s, IdentityGt(n));
  EXPECT_NEAR(m.auc, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.success_at_1, 0.0);
}

TEST(MetricsTest, RandomScoresGiveMidAuc) {
  Rng rng(3);
  Matrix s = Matrix::Uniform(200, 200, &rng);
  AlignmentMetrics m = ComputeMetrics(s, IdentityGt(200));
  EXPECT_NEAR(m.auc, 0.5, 0.06);
}

TEST(MetricsTest, ToStringContainsValues) {
  AlignmentMetrics m;
  m.map = 0.5;
  m.success_at_1 = 0.25;
  std::string s = m.ToString();
  EXPECT_NE(s.find("MAP=0.5000"), std::string::npos);
  EXPECT_NE(s.find("S@1=0.2500"), std::string::npos);
}

TEST(MetricsTest, RectangularMatrixSupported) {
  // More target candidates than sources.
  Rng rng(4);
  Matrix s = Matrix::Uniform(10, 40, &rng);
  std::vector<int64_t> gt(10);
  for (int64_t v = 0; v < 10; ++v) gt[v] = 3 * v;
  AlignmentMetrics m = ComputeMetrics(s, gt);
  EXPECT_EQ(m.num_anchors, 10);
  EXPECT_GE(m.auc, 0.0);
  EXPECT_LE(m.auc, 1.0);
}

}  // namespace
}  // namespace galign
