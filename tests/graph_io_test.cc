#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "graph/generators.h"

namespace galign {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  Rng rng(1);
  auto g = ErdosRenyi(40, 0.1, &rng).MoveValueOrDie();
  ASSERT_TRUE(SaveEdgeList(g, Path("g.edges")).ok());
  auto loaded = LoadEdgeList(Path("g.edges"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.ValueOrDie().edges(), g.edges());
}

TEST_F(IoTest, EdgeListPreservesIsolatedTrailingNodes) {
  auto g = AttributedGraph::Create(10, {{0, 1}}, Matrix()).MoveValueOrDie();
  ASSERT_TRUE(SaveEdgeList(g, Path("iso.edges")).ok());
  auto loaded = LoadEdgeList(Path("iso.edges"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().num_nodes(), 10);
}

TEST_F(IoTest, EdgeListWithoutHeaderInfersNodeCount) {
  std::ofstream out(Path("raw.edges"));
  out << "0 3\n2 1\n";
  out.close();
  auto loaded = LoadEdgeList(Path("raw.edges"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().num_nodes(), 4);
  EXPECT_EQ(loaded.ValueOrDie().num_edges(), 2);
}

TEST_F(IoTest, LoadEdgeListRejectsMalformed) {
  std::ofstream out(Path("bad.edges"));
  out << "0 not_a_number\n";
  out.close();
  EXPECT_FALSE(LoadEdgeList(Path("bad.edges")).ok());
}

TEST_F(IoTest, LoadEdgeListRejectsNegativeIds) {
  std::ofstream out(Path("neg.edges"));
  out << "-1 2\n";
  out.close();
  EXPECT_FALSE(LoadEdgeList(Path("neg.edges")).ok());
}

TEST_F(IoTest, LoadEdgeListMissingFile) {
  EXPECT_FALSE(LoadEdgeList(Path("nonexistent")).ok());
}

TEST_F(IoTest, LoadEdgeListRejectsMaxNodeId) {
  // Without a declared node count, num_nodes = max_id + 1, which would
  // overflow for an id of INT64_MAX (found by the fuzz-smoke gate).
  std::ofstream out(Path("huge.edges"));
  out << "0 9223372036854775807\n";
  out.close();
  EXPECT_FALSE(LoadEdgeList(Path("huge.edges")).ok());
}

TEST_F(IoTest, AttributesRoundTripExact) {
  Rng rng(2);
  Matrix f = Matrix::Gaussian(12, 5, &rng);
  ASSERT_TRUE(SaveAttributes(f, Path("f.tsv")).ok());
  auto loaded = LoadAttributes(Path("f.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(loaded.ValueOrDie(), f), 1e-15);
}

TEST_F(IoTest, LoadAttributesRejectsRagged) {
  std::ofstream out(Path("ragged.tsv"));
  out << "1 2 3\n4 5\n";
  out.close();
  EXPECT_FALSE(LoadAttributes(Path("ragged.tsv")).ok());
}

TEST_F(IoTest, GroundTruthRoundTrip) {
  std::vector<int64_t> gt{3, -1, 0, 2};
  ASSERT_TRUE(SaveGroundTruth(gt, Path("gt.txt")).ok());
  auto loaded = LoadGroundTruth(Path("gt.txt"), 4);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie(), gt);
}

TEST_F(IoTest, LoadGroundTruthRejectsOutOfRangeSource) {
  std::ofstream out(Path("gt_bad.txt"));
  out << "9 1\n";
  out.close();
  EXPECT_FALSE(LoadGroundTruth(Path("gt_bad.txt"), 4).ok());
}

TEST_F(IoTest, FullGraphRoundTripWithAttributes) {
  Rng rng(3);
  auto g = BarabasiAlbert(30, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(30, 6, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  ASSERT_TRUE(SaveEdgeList(g, Path("g2.edges")).ok());
  ASSERT_TRUE(SaveAttributes(g.attributes(), Path("g2.attrs")).ok());

  auto edges = LoadEdgeList(Path("g2.edges"));
  auto attrs = LoadAttributes(Path("g2.attrs"));
  ASSERT_TRUE(edges.ok());
  ASSERT_TRUE(attrs.ok());
  auto rebuilt =
      edges.ValueOrDie().WithAttributes(attrs.MoveValueOrDie());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.ValueOrDie().num_edges(), g.num_edges());
  EXPECT_LT(
      Matrix::MaxAbsDiff(rebuilt.ValueOrDie().attributes(), g.attributes()),
      1e-15);
}

}  // namespace
}  // namespace galign
