#include "align/alignment_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "align/alignment.h"
#include "common/rng.h"

namespace galign {
namespace {

class AlignmentIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_align_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(AlignmentIoTest, MatrixRoundTripExact) {
  Rng rng(1);
  Matrix s = Matrix::Gaussian(7, 11, &rng);
  ASSERT_TRUE(SaveAlignmentMatrix(s, Path("s.tsv")).ok());
  auto loaded = LoadAlignmentMatrix(Path("s.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().rows(), 7);
  EXPECT_EQ(loaded.ValueOrDie().cols(), 11);
  EXPECT_LT(Matrix::MaxAbsDiff(loaded.ValueOrDie(), s), 1e-15);
}

TEST_F(AlignmentIoTest, LoadRejectsMissingAndEmpty) {
  EXPECT_FALSE(LoadAlignmentMatrix(Path("missing.tsv")).ok());
  std::ofstream(Path("empty.tsv")) << "# only a header\n";
  EXPECT_FALSE(LoadAlignmentMatrix(Path("empty.tsv")).ok());
}

TEST_F(AlignmentIoTest, LoadRejectsRagged) {
  std::ofstream(Path("ragged.tsv")) << "1 2 3\n1 2\n";
  EXPECT_FALSE(LoadAlignmentMatrix(Path("ragged.tsv")).ok());
}

TEST_F(AlignmentIoTest, AnchorsRoundTrip) {
  Rng rng(2);
  Matrix s = Matrix::Uniform(6, 6, &rng);
  auto anchors = GreedyOneToOneAnchors(s);
  ASSERT_TRUE(SaveAnchors(s, anchors, Path("a.txt")).ok());
  auto loaded = LoadAnchors(Path("a.txt"), 6);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie(), anchors);
}

TEST_F(AlignmentIoTest, AnchorsSkipUnmatched) {
  Matrix s(3, 2, 0.5);
  std::vector<int64_t> anchors{1, -1, 0};
  ASSERT_TRUE(SaveAnchors(s, anchors, Path("partial.txt")).ok());
  auto loaded = LoadAnchors(Path("partial.txt"), 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie()[0], 1);
  EXPECT_EQ(loaded.ValueOrDie()[1], -1);
  EXPECT_EQ(loaded.ValueOrDie()[2], 0);
}

TEST_F(AlignmentIoTest, LoadAnchorsRejectsOutOfRange) {
  std::ofstream(Path("bad.txt")) << "99 0 0.5\n";
  EXPECT_FALSE(LoadAnchors(Path("bad.txt"), 3).ok());
}

TEST(TopKAnchorsTest, ReturnsDescendingCandidates) {
  Matrix s{{0.1, 0.9, 0.5}, {0.7, 0.2, 0.8}};
  auto topk = TopKAnchors(s, 2);
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_EQ(topk[0], (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(topk[1], (std::vector<int64_t>{2, 0}));
}

TEST(AnchorsAboveThresholdTest, FiltersAndSorts) {
  Matrix s{{0.1, 0.9, 0.5}, {0.05, 0.02, 0.08}};
  auto soft = AnchorsAboveThreshold(s, 0.4);
  ASSERT_EQ(soft.size(), 2u);
  EXPECT_EQ(soft[0], (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(soft[1].empty());
}

TEST(AnchorsAboveThresholdTest, OneToManySemantics) {
  // Several targets can pass the bar for one source node — the one-to-many
  // instantiation of §VI-A.
  Matrix s{{0.8, 0.9, 0.85, 0.1}};
  auto soft = AnchorsAboveThreshold(s, 0.5);
  EXPECT_EQ(soft[0].size(), 3u);
  EXPECT_EQ(soft[0][0], 1);
}

}  // namespace
}  // namespace galign
