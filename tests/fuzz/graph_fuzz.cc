// Structure-aware graph fuzzer (DESIGN.md §9).
//
// Each iteration draws a random graph recipe (generator family, size,
// attribute scheme, degenerate mutations), then drives it through the
// public surface: text loaders on hostile bytes, normalized propagation
// matrices, graph statistics, and a randomly chosen aligner under a random
// combination of memory budget, deadline, supervision, and armed fault.
//
// The invariant is the robustness contract: every call returns a valid
// finite result or a clean non-OK Status — never a crash, hang, NaN in a
// "successful" result, or UB (run under sanitizers in scripts/check.sh).
//
// Deterministic: `graph_fuzz --seed S --iters N` replays bit for bit, and a
// failure report prints the seed and iteration to reproduce.
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "align/alignment.h"
#include "baselines/cenalp.h"
#include "baselines/deeplink.h"
#include "baselines/final.h"
#include "baselines/ione.h"
#include "baselines/isorank.h"
#include "baselines/naive.h"
#include "baselines/netalign.h"
#include "baselines/pale.h"
#include "baselines/regal.h"
#include "baselines/unialign.h"
#include "common/fault.h"
#include "core/galign.h"
#include "common/durable_io.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/noise.h"
#include "graph/stats.h"
#include "serve/alignment_index.h"
#include "serve/server.h"
#include "serve/swap/swap.h"

namespace galign {
namespace {

struct FuzzFailure {
  std::string stage;
  std::string detail;
};

// Forward readable failure context instead of assert(): the harness must
// keep the seed/iteration in the report so every finding replays.
#define FUZZ_CHECK(cond, stage_str, detail_str)            \
  do {                                                     \
    if (!(cond)) return FuzzFailure{(stage_str), (detail_str)}; \
  } while (0)

constexpr FuzzFailure kOk{"", ""};

bool Failed(const FuzzFailure& f) { return !f.stage.empty(); }

Matrix RandomAttributes(int64_t n, Rng* rng) {
  switch (rng->UniformInt(3)) {
    case 0:
      return Matrix();  // attribute-free graph
    case 1:
      return BinaryAttributes(n, 2 + rng->UniformInt(6), 0.05 + rng->Uniform() * 0.6,
                              rng);
    default: {
      // Binary attributes with some all-zero rows (degenerate cosine input).
      Matrix m = BinaryAttributes(n, 2 + rng->UniformInt(6), 0.3, rng);
      for (int64_t v = 0; v < n; ++v) {
        if (rng->Bernoulli(0.2)) {
          for (int64_t c = 0; c < m.cols(); ++c) m(v, c) = 0.0;
        }
      }
      return m;
    }
  }
}

Result<AttributedGraph> RandomGraph(Rng* rng) {
  const int64_t kind = rng->UniformInt(8);
  const int64_t n = 2 + rng->UniformInt(38);
  Matrix attrs = RandomAttributes(n, rng);
  switch (kind) {
    case 0:
      return ErdosRenyi(n, rng->Uniform() * 0.3, rng, std::move(attrs));
    case 1:
      return BarabasiAlbert(n, 1 + rng->UniformInt(3), rng, std::move(attrs));
    case 2:
      return WattsStrogatz(n, 2, rng->Uniform(), rng, std::move(attrs));
    case 3:
      return PowerLawGraph(n, n + rng->UniformInt(2 * n), 2.5, rng,
                           std::move(attrs));
    case 4:  // no edges at all
      return AttributedGraph::Create(n, {}, std::move(attrs));
    case 5:  // empty graph
      return AttributedGraph::Create(0, {}, Matrix(0, attrs.cols()));
    case 6:  // single node
      return AttributedGraph::Create(
          1, {}, attrs.rows() > 0 ? Matrix(1, attrs.cols(), 1.0) : Matrix());
    default: {  // star hub plus isolated tail nodes: degree skew + degree 0
      std::vector<Edge> edges;
      for (int64_t v = 1; v < n - 1 - rng->UniformInt(2); ++v) {
        edges.push_back({0, v});
      }
      return AttributedGraph::Create(n, std::move(edges), std::move(attrs));
    }
  }
}

// --- Stage 1: text loaders on hostile bytes --------------------------------

const char* const kHostileEdgeFiles[] = {
    "",                          // empty file
    "\n\n\n",                    // blank lines only
    "a b\n",                     // non-numeric
    "1\n",                       // truncated pair
    "1 2 3 4 5\n",               // too many fields
    "-5 2\n",                    // negative id
    "0 99999999999999999999\n",  // overflowing id
    "1 2\n1 2\n2 1\n",           // duplicates both directions
    "3 3\n",                     // self loop
    "0 1\x00trailing\n",         // embedded NUL (written via size below)
    "9223372036854775807 0\n",   // INT64_MAX id
};

const char* const kHostileAttrFiles[] = {
    "",
    "1.0\t2.0\n3.0\n",        // ragged rows
    "nan\tinf\n-inf\t1e999\n",  // non-finite and overflowing literals
    "1.0,2.0\n",              // wrong separator
    "\t\t\t\n",
};

FuzzFailure FuzzLoaders(const std::string& tmp_prefix, Rng* rng) {
  const std::string edge_path = tmp_prefix + ".edges";
  const std::string attr_path = tmp_prefix + ".attrs";
  // Hostile fixed corpus entry, occasionally bit-flipped.
  {
    const size_t pick =
        static_cast<size_t>(rng->UniformInt(std::size(kHostileEdgeFiles)));
    std::string bytes = kHostileEdgeFiles[pick];
    if (!bytes.empty() && rng->Bernoulli(0.5)) {
      bytes[static_cast<size_t>(rng->UniformInt(
          static_cast<int64_t>(bytes.size())))] ^=
          static_cast<char>(1 << rng->UniformInt(7));
    }
    std::ofstream(edge_path, std::ios::binary).write(bytes.data(),
                                                     static_cast<std::streamsize>(bytes.size()));
    auto g = LoadEdgeList(edge_path);
    if (g.ok()) {
      FUZZ_CHECK(g.ValueOrDie().num_nodes() >= 0, "loader.edges",
                 "negative node count from: " + bytes);
    }
  }
  {
    const size_t pick =
        static_cast<size_t>(rng->UniformInt(std::size(kHostileAttrFiles)));
    std::ofstream(attr_path, std::ios::binary) << kHostileAttrFiles[pick];
    auto m = LoadAttributes(attr_path);
    if (m.ok()) {
      FUZZ_CHECK(m.ValueOrDie().rows() >= 0, "loader.attrs", "negative rows");
    }
  }
  // Round-trip a valid graph, sometimes with an injected IO read fault:
  // the loader must surface a clean IOError, never a torn graph.
  auto g = RandomGraph(rng);
  if (g.ok() && g.ValueOrDie().num_nodes() > 0) {
    const AttributedGraph& graph = g.ValueOrDie();
    if (SaveEdgeList(graph, edge_path).ok()) {
      const bool inject = rng->Bernoulli(0.3);
      if (inject) {
        fault::Spec spec;
        spec.kind = fault::Kind::kFailIO;
        spec.at_call = rng->UniformInt(3);
        fault::Arm("io.edges.load", spec);
      }
      auto back = LoadEdgeList(edge_path);
      fault::DisarmAll();
      if (back.ok()) {
        FUZZ_CHECK(back.ValueOrDie().num_edges() == graph.num_edges(),
                   "loader.roundtrip", "edge count changed in round trip");
      } else {
        FUZZ_CHECK(inject, "loader.roundtrip",
                   "clean save failed to load: " + back.status().ToString());
      }
    }
  }
  std::remove(edge_path.c_str());
  std::remove(attr_path.c_str());
  return kOk;
}

// --- Stage 2: propagation matrices and statistics --------------------------

FuzzFailure FuzzPropagation(const AttributedGraph& g, Rng* rng) {
  auto norm = g.NormalizedAdjacency();
  if (norm.ok()) {
    for (double v : norm.ValueOrDie().values()) {
      FUZZ_CHECK(std::isfinite(v), "laplacian", "non-finite entry");
    }
  }
  std::vector<double> influence(static_cast<size_t>(g.num_nodes()), 1.0);
  for (double& x : influence) {
    // Includes zero and negative influence: must be a clean status, not UB.
    x = rng->Uniform(-0.5, 2.0);
  }
  auto weighted = g.NormalizedAdjacency(influence);
  if (weighted.ok()) {
    for (double v : weighted.ValueOrDie().values()) {
      FUZZ_CHECK(std::isfinite(v), "laplacian.influence", "non-finite entry");
    }
  }
  const GraphStats stats = ComputeStats(g, /*clustering_samples=*/64);
  FUZZ_CHECK(std::isfinite(stats.avg_degree) &&
                 std::isfinite(stats.avg_clustering) &&
                 std::isfinite(stats.degree_assortativity),
             "stats", "non-finite statistic");
  FUZZ_CHECK(stats.num_nodes == g.num_nodes(), "stats", "node count mismatch");
  return kOk;
}

// --- Stage 3: serving artifact bytes under corruption -----------------------

/// One small golden AlignmentIndex, trained once and reused: the stage
/// fuzzes the *decoder*, so only the serialized bytes vary per iteration.
const std::string& GoldenArtifactPayload() {
  static const std::string* payload = []() -> const std::string* {
    Rng rng(99);
    auto g = BarabasiAlbert(40, 2, &rng);
    if (!g.ok()) return new std::string();
    auto attributed =
        g.ValueOrDie().WithAttributes(BinaryAttributes(40, 6, 0.3, &rng));
    if (!attributed.ok()) return new std::string();
    NoisyCopyOptions opts;
    opts.structural_noise = 0.05;
    auto pair = MakeNoisyCopyPair(attributed.ValueOrDie(), opts, &rng);
    if (!pair.ok()) return new std::string();
    GAlignConfig config;
    config.epochs = 2;
    config.embedding_dim = 8;
    AlignmentIndexOptions options;
    options.anchor_k = 3;
    auto index = AlignmentIndex::Build(config, pair.ValueOrDie().source,
                                       pair.ValueOrDie().target, options);
    if (!index.ok()) return new std::string();
    return new std::string(index.ValueOrDie()->Serialize());
  }();
  return *payload;
}

/// Truncates or bit-flips serialized artifact bytes at seeded offsets and
/// asserts the verify-or-reject contract: Parse / AlignmentIndexStore
/// either reject with a clean typed Status or accept a self-consistent
/// index — never crash, hang, or return a torn artifact.
FuzzFailure FuzzArtifact(const std::string& tmp_prefix, Rng* rng) {
  const std::string& golden = GoldenArtifactPayload();
  if (golden.empty()) {
    return FuzzFailure{"artifact.golden", "failed to build golden artifact"};
  }

  std::string bytes = golden;
  const int64_t n = static_cast<int64_t>(bytes.size());
  if (rng->Bernoulli(0.5)) {
    bytes.resize(static_cast<size_t>(rng->UniformInt(n)));  // torn write
  } else {
    const int64_t flips = 1 + rng->UniformInt(8);
    for (int64_t i = 0; i < flips; ++i) {  // bit rot
      bytes[static_cast<size_t>(rng->UniformInt(n))] ^=
          static_cast<char>(1 << rng->UniformInt(8));
    }
  }

  auto parsed = AlignmentIndex::Parse(bytes, "graph_fuzz artifact");
  if (parsed.ok()) {
    // Corruption that survives every check must still describe a complete,
    // self-consistent artifact (e.g. a mantissa-tail flip the behavioral
    // fingerprint legitimately cannot distinguish).
    const AlignmentIndex& index = *parsed.ValueOrDie();
    FUZZ_CHECK(index.num_source() > 0 && index.num_target() > 0,
               "artifact.parse", "accepted artifact with empty sides");
    FUZZ_CHECK(index.anchors().rows_computed == index.num_source(),
               "artifact.parse", "accepted artifact with partial anchors");
    FUZZ_CHECK(!index.Serialize().empty(), "artifact.parse",
               "accepted artifact does not re-serialize");
  }

  // File level: a corrupted generation behind a valid manifest. With a
  // valid CRC trailer *over the corrupted payload* the structural
  // validation after the CRC gate is exercised; without one the CRC gate
  // itself rejects. Either way LoadLatest must end typed.
  if (rng->Bernoulli(0.25)) {
    const std::string dir = tmp_prefix + "_aidx";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return FuzzFailure{"artifact.store", "tmp dir create failed"};
    AlignmentIndexStore store(dir, /*keep=*/1);
    const std::string trailed =
        rng->Bernoulli(0.5) ? AppendCrc32Trailer(bytes) : bytes;
    if (!AtomicWriteFile(dir + "/aidx_00000001", trailed).ok()) {
      return FuzzFailure{"artifact.store", "tmp write failed"};
    }
    if (!AtomicWriteFile(dir + "/MANIFEST",
                         AppendCrc32Trailer(
                             "galign-aidx-manifest-v1\naidx_00000001\n"))
             .ok()) {
      return FuzzFailure{"artifact.store", "tmp manifest write failed"};
    }
    auto loaded = store.LoadLatest();
    if (loaded.ok()) {
      FUZZ_CHECK(loaded.ValueOrDie()->anchors().rows_computed ==
                     loaded.ValueOrDie()->num_source(),
                 "artifact.store", "accepted torn generation");
    } else {
      FUZZ_CHECK(loaded.status().code() == StatusCode::kIOError ||
                     loaded.status().code() == StatusCode::kNotFound,
                 "artifact.store",
                 "untyped failure: " + loaded.status().ToString());
    }
    std::remove((dir + "/aidx_00000001").c_str());
    std::remove((dir + "/MANIFEST").c_str());
  }
  return kOk;
}

// --- Stage 3b: hot-swap quarantine under corrupted candidates ---------------

/// The golden payload parsed back into a servable index, once.
const std::shared_ptr<const AlignmentIndex>& GoldenServingIndex() {
  static const auto* index =
      []() -> const std::shared_ptr<const AlignmentIndex>* {
    const std::string& payload = GoldenArtifactPayload();
    if (payload.empty()) {
      return new std::shared_ptr<const AlignmentIndex>();
    }
    auto parsed = AlignmentIndex::Parse(payload, "graph_fuzz golden");
    if (!parsed.ok()) return new std::shared_ptr<const AlignmentIndex>();
    return new std::shared_ptr<const AlignmentIndex>(parsed.ValueOrDie());
  }();
  return *index;
}

/// Publishes a seeded-corrupted candidate generation while a live
/// ArtifactWatcher polls a serving AlignServer, and asserts the DESIGN.md
/// §13 contract: the candidate is either published (it genuinely passed
/// quarantine) or poisoned with a typed record — and either way the server
/// keeps answering last-good with typed statuses, never an untyped failure
/// or a generation that was never published.
FuzzFailure FuzzHotSwap(const std::string& tmp_prefix, Rng* rng) {
  const std::shared_ptr<const AlignmentIndex>& golden_index =
      GoldenServingIndex();
  if (!golden_index) {
    return FuzzFailure{"swap.golden", "failed to parse golden artifact"};
  }
  const std::string& golden = GoldenArtifactPayload();

  const std::string dir = tmp_prefix + "_swap";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) return FuzzFailure{"swap.store", "tmp dir create failed"};
  AlignmentIndexStore store(dir, /*keep=*/2);
  if (!store.Save(*golden_index).ok()) {
    return FuzzFailure{"swap.store", "golden save failed"};
  }

  FuzzFailure failure = kOk;
  {
    ServeConfig config;
    config.workers = 1;
    config.queue_capacity = 8;
    config.default_deadline_ms = 500.0;
    AlignServer server(golden_index, config, /*generation=*/1);
    server.Start();
    SwapConfig swap_config;
    swap_config.poll_interval_ms = 1.0;
    ArtifactWatcher watcher(&server, &store, swap_config);
    watcher.Start();  // candidate corruption lands under a live watcher

    // Corrupt the golden bytes (torn write or bit rot), sometimes behind a
    // valid CRC trailer so the post-CRC validation battery is what rejects.
    std::string bytes = golden;
    const int64_t n = static_cast<int64_t>(bytes.size());
    if (rng->Bernoulli(0.5)) {
      bytes.resize(static_cast<size_t>(rng->UniformInt(n)));
    } else {
      const int64_t flips = 1 + rng->UniformInt(8);
      for (int64_t i = 0; i < flips; ++i) {
        bytes[static_cast<size_t>(rng->UniformInt(n))] ^=
            static_cast<char>(1 << rng->UniformInt(8));
      }
    }
    const std::string framed =
        rng->Bernoulli(0.5) ? AppendCrc32Trailer(bytes) : bytes;
    if (!AtomicWriteFile(store.GenerationPath(2), framed).ok()) {
      return FuzzFailure{"swap.store", "candidate write failed"};
    }
    watcher.PollOnce();  // serialized with the background thread

    // The candidate's fate is decided and typed: published or poisoned.
    const bool poisoned = watcher.IsPoisoned(2);
    const int64_t serving = server.serving_generation();
    if (poisoned == (serving == 2)) {
      failure = {"swap.watcher",
                 "candidate neither quarantined nor published"};
    }
    if (!Failed(failure) && poisoned) {
      const SwapHealth health = watcher.Health();
      if (health.quarantined.size() != 1 ||
          health.quarantined[0].generation != 2 ||
          health.quarantined[0].detail.empty()) {
        failure = {"swap.health",
                   "poisoned generation lacks a typed quarantine record"};
      }
    }

    // Last-good keeps answering across (attempted) swaps.
    const int64_t num_source = golden_index->num_source();
    for (int i = 0; i < 8 && !Failed(failure); ++i) {
      QueryRequest request;
      request.node = rng->UniformInt(num_source);
      request.k = 3;
      const QueryResponse response = server.SubmitAndWait(request);
      switch (response.status.code()) {
        case StatusCode::kOk:
          if (response.generation != 1 && response.generation != 2) {
            failure = {"swap.serve", "answer from an unpublished generation"};
          } else if (poisoned && response.generation == 2) {
            failure = {"swap.serve", "answer from a poisoned generation"};
          }
          break;
        case StatusCode::kOverloaded:
        case StatusCode::kDeadlineExceeded:
          break;
        default:
          failure = {"swap.serve",
                     "untyped response: " + response.status.ToString()};
          break;
      }
    }
    watcher.Stop();
    server.Shutdown();
  }
  std::filesystem::remove_all(dir, ec);
  return failure;
}

// --- Stage 4: aligners under budget, deadline, and faults -------------------

std::unique_ptr<Aligner> PickAligner(Rng* rng) {
  switch (rng->UniformInt(13)) {
    case 0: {
      GAlignConfig cfg;
      cfg.epochs = 1 + rng->UniformInt(3);
      cfg.embedding_dim = 4 + 4 * rng->UniformInt(2);
      cfg.refinement_iterations = rng->UniformInt(2);
      cfg.use_augmentation = rng->Bernoulli(0.5);
      return std::make_unique<GAlignAligner>(cfg);
    }
    case 1:
      return std::make_unique<FinalAligner>();
    case 2:
      return std::make_unique<IsoRankAligner>();
    case 3:
      return std::make_unique<RegalAligner>();
    case 4:
      return std::make_unique<UniAlignAligner>();
    case 5:
      return std::make_unique<DegreeRankAligner>();
    case 6:
      return std::make_unique<AttributeOnlyAligner>();
    case 7:
      return std::make_unique<RandomAligner>();
    case 8: {
      PaleConfig cfg;
      cfg.embedding_dim = 8;
      cfg.embedding_epochs = 2;
      cfg.mapping_epochs = 5;
      return std::make_unique<PaleAligner>(cfg);
    }
    case 9: {
      DeepLinkConfig cfg;
      cfg.walks.walks_per_node = 2;
      cfg.walks.walk_length = 4;
      cfg.skipgram.dim = 8;
      cfg.skipgram.epochs = 1;
      cfg.mapping_epochs = 5;
      return std::make_unique<DeepLinkAligner>(cfg);
    }
    case 10: {
      IoneConfig cfg;
      cfg.dim = 8;
      cfg.epochs = 3;
      return std::make_unique<IoneAligner>(cfg);
    }
    case 11: {
      CenalpConfig cfg;
      cfg.walks.walks_per_node = 2;
      cfg.walks.walk_length = 4;
      cfg.skipgram.dim = 8;
      cfg.skipgram.epochs = 1;
      cfg.expansion_rounds = 1;
      return std::make_unique<CenalpAligner>(cfg);
    }
    default: {
      NetAlignConfig cfg;
      cfg.candidates_per_node = 3;
      cfg.iterations = 2;
      return std::make_unique<NetAlignAligner>(cfg);
    }
  }
}

const char* const kBufferFaultSites[] = {"train.grad"};
const char* const kScalarFaultSites[] = {"train.loss", "solver.final.residual",
                                         "solver.isorank.residual",
                                         "la.jacobi.residual"};

FuzzFailure FuzzAligner(const AttributedGraph& s, const AttributedGraph& t,
                        Rng* rng) {
  std::unique_ptr<Aligner> aligner = PickAligner(rng);

  Supervision sup;
  const int64_t max_seeds = std::min(s.num_nodes(), t.num_nodes());
  if (max_seeds > 0 && rng->Bernoulli(0.5)) {
    const int64_t count = 1 + rng->UniformInt(std::min<int64_t>(max_seeds, 5));
    for (int64_t v = 0; v < count; ++v) sup.seeds.emplace_back(v, v);
  }

  RunContext ctx;
  switch (rng->UniformInt(4)) {
    case 0:
      break;  // unbounded
    case 1:
      ctx = RunContext::WithMemoryBudget(
          static_cast<uint64_t>(1) << (12 + rng->UniformInt(12)));
      break;
    case 2:
      ctx = RunContext::WithTimeout(rng->Bernoulli(0.3) ? 0.0 : 0.25);
      break;
    default:
      ctx = RunContext::WithMemoryBudget(
          static_cast<uint64_t>(1) << (14 + rng->UniformInt(10)));
      ctx.SetToken(CancelToken());  // armed but never fired
      break;
  }

  const bool inject = rng->Bernoulli(0.4);
  if (inject) {
    fault::Spec spec;
    spec.at_call = rng->UniformInt(4);
    spec.seed = static_cast<uint64_t>(rng->UniformInt(1 << 20)) + 1;
    if (rng->Bernoulli(0.5)) {
      spec.kind = rng->Bernoulli(0.5) ? fault::Kind::kNaN : fault::Kind::kInf;
      fault::Arm(kBufferFaultSites[rng->UniformInt(
                     std::size(kBufferFaultSites))],
                 spec);
    } else {
      spec.kind = fault::Kind::kPerturb;
      spec.magnitude = std::pow(10.0, rng->Uniform(-2.0, 4.0));
      fault::Arm(kScalarFaultSites[rng->UniformInt(
                     std::size(kScalarFaultSites))],
                 spec);
    }
  }

  FuzzFailure failure = kOk;
  const std::string label = aligner->name();
  if (rng->Bernoulli(0.5)) {
    auto dense = aligner->Align(s, t, sup, ctx);
    if (dense.ok()) {
      const Matrix& m = dense.ValueOrDie();
      if (m.rows() != s.num_nodes() || m.cols() != t.num_nodes()) {
        failure = {"align." + label, "dense result has wrong shape"};
      } else if (!m.AllFinite()) {
        failure = {"align." + label, "dense result has non-finite scores"};
      }
    }
  } else {
    const int64_t k = 1 + rng->UniformInt(5);
    auto topk = aligner->AlignTopK(s, t, sup, ctx, k);
    if (topk.ok()) {
      const TopKAlignment& c = topk.ValueOrDie();
      if (c.rows != s.num_nodes() || c.cols != t.num_nodes()) {
        failure = {"topk." + label, "compressed result has wrong shape"};
      } else {
        for (size_t i = 0; i < c.score.size() && !Failed(failure); ++i) {
          if (c.index[i] >= 0 &&
              (c.index[i] >= c.cols || !std::isfinite(c.score[i]))) {
            failure = {"topk." + label, "invalid top-k slot"};
          }
        }
      }
    }
  }
  fault::DisarmAll();
  return failure;
}

// --- Driver -----------------------------------------------------------------

FuzzFailure RunIteration(uint64_t seed, int64_t iter,
                         const std::string& tmp_prefix) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(iter) + 1);

  FuzzFailure f = FuzzLoaders(tmp_prefix, &rng);
  if (Failed(f)) return f;

  // Serving-artifact decoder under seeded corruption (every other
  // iteration: the stage re-parses a full artifact, which dominates the
  // iteration cost when it runs).
  if (rng.Bernoulli(0.5)) {
    f = FuzzArtifact(tmp_prefix, &rng);
    if (Failed(f)) return f;
  }

  // Hot-swap quarantine under a live watcher (every fourth iteration: it
  // spins up a server + watcher and reloads a full candidate artifact).
  if (rng.Bernoulli(0.25)) {
    f = FuzzHotSwap(tmp_prefix, &rng);
    if (Failed(f)) return f;
  }

  auto gs = RandomGraph(&rng);
  if (!gs.ok()) return kOk;  // a clean rejection is conforming
  AttributedGraph source = gs.MoveValueOrDie();

  f = FuzzPropagation(source, &rng);
  if (Failed(f)) return f;

  // Partner graph: a noisy copy when possible (realistic alignment input),
  // otherwise an independent draw (mismatched shapes, attribute dims...).
  AttributedGraph target = source;
  if (rng.Bernoulli(0.6) && source.num_nodes() > 2) {
    NoisyCopyOptions opts;
    opts.structural_noise = rng.Uniform() * 0.3;
    opts.attribute_noise = rng.Uniform() * 0.3;
    auto pair = MakeNoisyCopyPair(source, opts, &rng);
    if (pair.ok()) target = std::move(pair.ValueOrDie().target);
  } else {
    auto gt = RandomGraph(&rng);
    if (gt.ok()) target = gt.MoveValueOrDie();
  }

  return FuzzAligner(source, target, &rng);
}

int FuzzMain(int argc, char** argv) {
  uint64_t seed = 1;
  int64_t iters = 50;
  int64_t start = 0;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = std::strtoll(arg.c_str() + 8, nullptr, 10);
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg.rfind("--start=", 0) == 0) {
      // Direct replay of a reported iteration without re-running the ones
      // before it (every iteration draws an independent RNG stream).
      start = std::strtoll(arg.c_str() + 8, nullptr, 10);
    } else if (arg == "--start" && i + 1 < argc) {
      start = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: graph_fuzz [--seed N] [--iters M] [--start I] "
                   "[--verbose]\n");
      return 2;
    }
  }

  const std::string tmp_prefix =
      "graph_fuzz_tmp_" + std::to_string(seed);
  for (int64_t iter = start; iter < iters; ++iter) {
    const FuzzFailure f = RunIteration(seed, iter, tmp_prefix);
    if (Failed(f)) {
      std::fprintf(stderr,
                   "FUZZ FAILURE: stage=%s detail=%s\n"
                   "reproduce with: graph_fuzz --seed %" PRIu64
                   " --iters %" PRId64 "  (fails at iteration %" PRId64 ")\n",
                   f.stage.c_str(), f.detail.c_str(), seed, iter + 1, iter);
      return 1;
    }
    if (verbose && (iter + 1) % 10 == 0) {
      std::fprintf(stderr, "graph_fuzz: %" PRId64 "/%" PRId64 " iterations\n",
                   iter + 1, iters);
    }
  }
  std::printf("graph_fuzz: %" PRId64 " iterations, 0 failures (seed %" PRIu64
              ")\n",
              iters, seed);
  return 0;
}

}  // namespace
}  // namespace galign

int main(int argc, char** argv) { return galign::FuzzMain(argc, argv); }
