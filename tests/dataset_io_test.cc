#include "align/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "align/datasets.h"
#include "graph/generators.h"

namespace galign {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_dataset_io_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Dir(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

AlignmentPair MakePair(uint64_t seed) {
  Rng rng(seed);
  auto g = BarabasiAlbert(40, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(40, 6, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = 0.1;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  AlignmentPair pair = MakePair(1);
  ASSERT_TRUE(SaveAlignmentPair(pair, Dir("pair")).ok());
  auto loaded = LoadAlignmentPair(Dir("pair"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const AlignmentPair& p = loaded.ValueOrDie();
  EXPECT_EQ(p.source.num_nodes(), pair.source.num_nodes());
  EXPECT_EQ(p.source.edges(), pair.source.edges());
  EXPECT_EQ(p.target.edges(), pair.target.edges());
  EXPECT_LT(Matrix::MaxAbsDiff(p.source.attributes(),
                               pair.source.attributes()),
            1e-15);
  EXPECT_LT(Matrix::MaxAbsDiff(p.target.attributes(),
                               pair.target.attributes()),
            1e-15);
  EXPECT_EQ(p.ground_truth, pair.ground_truth);
}

TEST_F(DatasetIoTest, CreatesNestedDirectories) {
  AlignmentPair pair = MakePair(2);
  EXPECT_TRUE(SaveAlignmentPair(pair, Dir("a/b/c")).ok());
  EXPECT_TRUE(LoadAlignmentPair(Dir("a/b/c")).ok());
}

TEST_F(DatasetIoTest, LoadFailsOnMissingDirectory) {
  EXPECT_FALSE(LoadAlignmentPair(Dir("nonexistent")).ok());
}

TEST_F(DatasetIoTest, LoadRejectsInconsistentGroundTruth) {
  AlignmentPair pair = MakePair(3);
  // Ground truth pointing past the target's node count must be rejected.
  pair.ground_truth[0] = 10000;
  ASSERT_TRUE(SaveAlignmentPair(pair, Dir("bad")).ok());
  EXPECT_FALSE(LoadAlignmentPair(Dir("bad")).ok());
}

TEST_F(DatasetIoTest, SynthesizedDatasetSurvivesRoundTrip) {
  DatasetSpec spec = DoubanSpec().Scaled(30.0);
  Rng rng(4);
  AlignmentPair pair = SynthesizePair(spec, &rng).MoveValueOrDie();
  ASSERT_TRUE(SaveAlignmentPair(pair, Dir("douban")).ok());
  auto loaded = LoadAlignmentPair(Dir("douban")).MoveValueOrDie();
  EXPECT_EQ(loaded.NumAnchors(), pair.NumAnchors());
  EXPECT_EQ(loaded.source.num_edges(), pair.source.num_edges());
}

}  // namespace
}  // namespace galign
