#include "core/losses.h"

#include <gtest/gtest.h>

#include "core/augmenter.h"
#include "core/gcn.h"
#include "graph/generators.h"

namespace galign {
namespace {

AttributedGraph SmallGraph(uint64_t seed) {
  Rng rng(seed);
  auto g = BarabasiAlbert(30, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(30, 6, 0.3, &rng);
  return g.WithAttributes(f).MoveValueOrDie();
}

TEST(ConsistencyLossAllLayersTest, SumsLayerTerms) {
  AttributedGraph g = SmallGraph(1);
  Rng rng(2);
  MultiOrderGcn gcn(2, 6, 8, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Tape tape;
  std::vector<Var> wv;
  auto layers = gcn.Forward(&tape, &lap, g.attributes(), &wv);
  Var total = ConsistencyLossAllLayers(&tape, &lap, layers);
  // Equals the sum of per-layer fused losses.
  Var l1 = ag::ConsistencyLoss(&tape, &lap, layers[1]);
  Var l2 = ag::ConsistencyLoss(&tape, &lap, layers[2]);
  EXPECT_NEAR(tape.value(total)(0, 0),
              tape.value(l1)(0, 0) + tape.value(l2)(0, 0), 1e-9);
  EXPECT_GT(tape.value(total)(0, 0), 0.0);
}

TEST(AdaptivityLossAllLayersTest, ZeroForIdenticalEmbeddings) {
  AttributedGraph g = SmallGraph(3);
  Rng rng(4);
  MultiOrderGcn gcn(2, 6, 8, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Tape tape;
  std::vector<Var> wv = gcn.MakeWeightLeaves(&tape);
  auto l1 = gcn.ForwardWithWeights(&tape, &lap, g.attributes(), wv);
  auto l2 = gcn.ForwardWithWeights(&tape, &lap, g.attributes(), wv);
  std::vector<int64_t> identity(g.num_nodes());
  for (int64_t v = 0; v < g.num_nodes(); ++v) identity[v] = v;
  Var loss = AdaptivityLossAllLayers(&tape, l1, l2, identity, 1.0);
  EXPECT_NEAR(tape.value(loss)(0, 0), 0.0, 1e-12);
}

TEST(AdaptivityLossAllLayersTest, PermutationImmuneUnderCorrespondence) {
  // Embeddings of a permuted copy matched through the permutation give zero
  // adaptivity loss (Prop. 1 in action inside the loss).
  AttributedGraph g = SmallGraph(5);
  Rng rng(6);
  std::vector<int64_t> perm = rng.Permutation(g.num_nodes());
  AttributedGraph pg = g.Permuted(perm).MoveValueOrDie();
  MultiOrderGcn gcn(2, 6, 8, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto lap_p = pg.NormalizedAdjacency().MoveValueOrDie();
  Tape tape;
  std::vector<Var> wv = gcn.MakeWeightLeaves(&tape);
  auto hs = gcn.ForwardWithWeights(&tape, &lap, g.attributes(), wv);
  auto hp = gcn.ForwardWithWeights(&tape, &lap_p, pg.attributes(), wv);
  Var loss = AdaptivityLossAllLayers(&tape, hs, hp, perm, 10.0);
  EXPECT_NEAR(tape.value(loss)(0, 0), 0.0, 1e-9);
}

TEST(NetworkLossTest, GammaBalancesTerms) {
  AttributedGraph g = SmallGraph(7);
  Rng rng(8);
  GAlignConfig cfg;
  cfg.num_augmentations = 1;
  cfg.augment_structural_noise = 0.3;
  auto augs = MakeAugmentations(g, cfg, &rng).MoveValueOrDie();
  MultiOrderGcn gcn(cfg.num_layers, 6, 8, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();

  auto eval_with_gamma = [&](double gamma) {
    GAlignConfig c = cfg;
    c.gamma = gamma;
    Tape tape;
    std::vector<Var> wv = gcn.MakeWeightLeaves(&tape);
    auto layers = gcn.ForwardWithWeights(&tape, &lap, g.attributes(), wv);
    std::vector<std::vector<Var>> aug_layers;
    std::vector<const std::vector<int64_t>*> corrs;
    for (const auto& a : augs) {
      aug_layers.push_back(gcn.ForwardWithWeights(
          &tape, &a.laplacian, a.graph.attributes(), wv));
      corrs.push_back(&a.correspondence);
    }
    Var loss = NetworkLoss(&tape, &lap, layers, aug_layers, corrs, c);
    return tape.value(loss)(0, 0);
  };

  double pure_consistency = eval_with_gamma(1.0);
  double pure_adaptivity = eval_with_gamma(0.0);
  double mixed = eval_with_gamma(0.8);
  EXPECT_NEAR(mixed, 0.8 * pure_consistency + 0.2 * pure_adaptivity, 1e-6);
}

TEST(NetworkLossTest, GradientFlowsToWeights) {
  AttributedGraph g = SmallGraph(9);
  Rng rng(10);
  GAlignConfig cfg;
  cfg.num_augmentations = 2;
  auto augs = MakeAugmentations(g, cfg, &rng).MoveValueOrDie();
  MultiOrderGcn gcn(cfg.num_layers, 6, 8, &rng);
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  Tape tape;
  std::vector<Var> wv = gcn.MakeWeightLeaves(&tape);
  auto layers = gcn.ForwardWithWeights(&tape, &lap, g.attributes(), wv);
  std::vector<std::vector<Var>> aug_layers;
  std::vector<const std::vector<int64_t>*> corrs;
  for (const auto& a : augs) {
    aug_layers.push_back(
        gcn.ForwardWithWeights(&tape, &a.laplacian, a.graph.attributes(), wv));
    corrs.push_back(&a.correspondence);
  }
  Var loss = NetworkLoss(&tape, &lap, layers, aug_layers, corrs, cfg);
  tape.Backward(loss);
  for (Var w : wv) {
    EXPECT_GT(tape.grad(w).MaxAbs(), 0.0);
  }
}

}  // namespace
}  // namespace galign
