#include <gtest/gtest.h>

#include "align/metrics.h"
#include "baselines/naive.h"
#include "baselines/unialign.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair CleanPair(uint64_t seed, int64_t n = 60) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 10, 0.25, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

TEST(UniAlignTest, DecentOnCleanCopy) {
  AlignmentPair pair = CleanPair(1);
  UniAlignAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.7);
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(UniAlignTest, WorksWithoutAttributes) {
  AlignmentPair pair = CleanPair(2);
  UniAlignConfig cfg;
  cfg.use_attributes = false;
  UniAlignAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.55);  // pure structure still beats random
}

TEST(UniAlignTest, RejectsEmptyNetworks) {
  auto empty = AttributedGraph::Create(0, {}, Matrix()).MoveValueOrDie();
  AlignmentPair pair = CleanPair(3, 20);
  UniAlignAligner aligner;
  EXPECT_FALSE(aligner.Align(empty, pair.target, {}).ok());
}

TEST(DegreeRankTest, ScoresDegreeTwinsHighest) {
  AlignmentPair pair = CleanPair(4);
  DegreeRankAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {}).MoveValueOrDie();
  // A clean permuted copy preserves degrees, so every true anchor pair gets
  // the maximal score 1.0.
  for (int64_t v = 0; v < pair.source.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(s(v, pair.ground_truth[v]), 1.0);
  }
}

TEST(DegreeRankTest, BetterThanRandomWorseThanInformed) {
  AlignmentPair pair = CleanPair(5, 100);
  DegreeRankAligner degree;
  RandomAligner random;
  auto sd = degree.Align(pair.source, pair.target, {}).MoveValueOrDie();
  auto sr = random.Align(pair.source, pair.target, {}).MoveValueOrDie();
  double auc_d = ComputeMetrics(sd, pair.ground_truth).auc;
  double auc_r = ComputeMetrics(sr, pair.ground_truth).auc;
  EXPECT_GT(auc_d, auc_r + 0.1);
  // But degree alone cannot disambiguate same-degree nodes.
  EXPECT_LT(ComputeMetrics(sd, pair.ground_truth).success_at_1, 0.9);
}

TEST(AttributeOnlyTest, PerfectScoresForMatchingProfiles) {
  AlignmentPair pair = CleanPair(6);
  AttributeOnlyAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {}).MoveValueOrDie();
  for (int64_t v = 0; v < pair.source.num_nodes(); ++v) {
    EXPECT_NEAR(s(v, pair.ground_truth[v]), 1.0, 1e-12);
  }
}

TEST(AttributeOnlyTest, RejectsMismatchedDims) {
  AlignmentPair pair = CleanPair(7, 20);
  auto other =
      pair.source.WithAttributes(Matrix(20, 3, 1.0)).MoveValueOrDie();
  AttributeOnlyAligner aligner;
  EXPECT_FALSE(aligner.Align(other, pair.target, {}).ok());
}

TEST(RandomAlignerTest, NearChanceMetrics) {
  AlignmentPair pair = CleanPair(8, 200);
  RandomAligner aligner;
  auto s = aligner.Align(pair.source, pair.target, {}).MoveValueOrDie();
  AlignmentMetrics m = ComputeMetrics(s, pair.ground_truth);
  EXPECT_NEAR(m.auc, 0.5, 0.07);
  EXPECT_LT(m.success_at_1, 0.05);
}

TEST(RandomAlignerTest, DeterministicUnderSeed) {
  AlignmentPair pair = CleanPair(9, 30);
  RandomAligner a(7), b(7), c(8);
  auto sa = a.Align(pair.source, pair.target, {}).MoveValueOrDie();
  auto sb = b.Align(pair.source, pair.target, {}).MoveValueOrDie();
  auto sc = c.Align(pair.source, pair.target, {}).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(sa, sb), 1e-15);
  EXPECT_GT(Matrix::MaxAbsDiff(sa, sc), 0.0);
}

TEST(NaiveBaselinesTest, NamesAreStable) {
  EXPECT_EQ(DegreeRankAligner().name(), "DegreeRank");
  EXPECT_EQ(AttributeOnlyAligner().name(), "AttributeOnly");
  EXPECT_EQ(RandomAligner().name(), "Random");
  EXPECT_EQ(UniAlignAligner().name(), "UniAlign");
}

}  // namespace
}  // namespace galign
