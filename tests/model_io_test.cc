#include "core/model_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/trainer.h"
#include "graph/generators.h"

namespace galign {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_model_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
  Rng rng(1);
  MultiOrderGcn gcn(3, 7, 12, &rng, Activation::kTanh);
  ASSERT_TRUE(SaveGcnModel(gcn, Path("m.txt")).ok());
  auto loaded = LoadGcnModel(Path("m.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const MultiOrderGcn& g = loaded.ValueOrDie();
  EXPECT_EQ(g.num_layers(), 3);
  EXPECT_EQ(g.input_dim(), 7);
  EXPECT_EQ(g.embedding_dim(), 12);
  EXPECT_EQ(g.activation(), Activation::kTanh);
  for (int l = 0; l < 3; ++l) {
    EXPECT_LT(Matrix::MaxAbsDiff(g.weights()[l], gcn.weights()[l]), 1e-15);
  }
}

TEST_F(ModelIoTest, ActivationSurvivesRoundTrip) {
  Rng rng(2);
  MultiOrderGcn gcn(2, 4, 8, &rng, Activation::kRelu);
  ASSERT_TRUE(SaveGcnModel(gcn, Path("relu.txt")).ok());
  EXPECT_EQ(LoadGcnModel(Path("relu.txt")).ValueOrDie().activation(),
            Activation::kRelu);
}

TEST_F(ModelIoTest, TrainedModelGivesIdenticalEmbeddingsAfterReload) {
  Rng rng(3);
  auto g = BarabasiAlbert(30, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(30, 5, 0.3, &rng)).MoveValueOrDie();
  GAlignConfig cfg;
  cfg.epochs = 10;
  cfg.embedding_dim = 8;
  MultiOrderGcn gcn(cfg.num_layers, 5, cfg.embedding_dim, &rng);
  Trainer trainer(cfg);
  trainer.Train(&gcn, g, g, &rng).CheckOK();
  ASSERT_TRUE(SaveGcnModel(gcn, Path("trained.txt")).ok());
  auto loaded = LoadGcnModel(Path("trained.txt")).MoveValueOrDie();

  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  auto h1 = gcn.ForwardInference(lap, g.attributes());
  auto h2 = loaded.ForwardInference(lap, g.attributes());
  for (size_t l = 0; l < h1.size(); ++l) {
    EXPECT_LT(Matrix::MaxAbsDiff(h1[l], h2[l]), 1e-12);
  }
}

TEST_F(ModelIoTest, RejectsCorruptFiles) {
  EXPECT_FALSE(LoadGcnModel(Path("missing.txt")).ok());
  std::ofstream(Path("garbage.txt")) << "not a model\n1 2 3\n";
  EXPECT_FALSE(LoadGcnModel(Path("garbage.txt")).ok());
  std::ofstream(Path("truncated.txt"))
      << "galign-gcn-v1 layers=2 input_dim=4 embedding_dim=8 "
         "activation=tanh\n4 8\n0.5\n";
  EXPECT_FALSE(LoadGcnModel(Path("truncated.txt")).ok());
}

TEST_F(ModelIoTest, RejectsBadHeaderValues) {
  std::ofstream(Path("bad.txt"))
      << "galign-gcn-v1 layers=0 input_dim=4 embedding_dim=8 "
         "activation=tanh\n";
  EXPECT_FALSE(LoadGcnModel(Path("bad.txt")).ok());
  std::ofstream(Path("badact.txt"))
      << "galign-gcn-v1 layers=1 input_dim=4 embedding_dim=8 "
         "activation=swish\n";
  EXPECT_FALSE(LoadGcnModel(Path("badact.txt")).ok());
}

}  // namespace
}  // namespace galign
