#include "la/sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "la/ops.h"

namespace galign {
namespace {

SparseMatrix SmallSparse() {
  // [[0, 2, 0], [1, 0, 3], [0, 0, 4]]
  return SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {1, 0, 1.0}, {1, 2, 3.0}, {2, 2, 4.0}});
}

TEST(SparseTest, FromTripletsBasic) {
  SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);  // missing entry
}

TEST(SparseTest, DuplicatesAreSummed) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, -1.0}, {1, 1, 1.0}});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.5);
  // Exact cancellation drops the entry.
  EXPECT_EQ(m.RowNnz(1), 0);
}

TEST(SparseTest, ExplicitZerosDropped) {
  SparseMatrix m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 0.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 1);
}

TEST(SparseTest, UnsortedTripletsAreSorted) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{1, 2, 6.0}, {0, 0, 1.0}, {1, 0, 4.0}, {0, 2, 3.0}});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  // Columns inside each row must be ascending.
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t i = m.row_ptr()[r] + 1; i < m.row_ptr()[r + 1]; ++i) {
      EXPECT_LT(m.col_idx()[i - 1], m.col_idx()[i]);
    }
  }
}

TEST(SparseTest, IdentityActsAsIdentity) {
  SparseMatrix i = SparseMatrix::Identity(5);
  Rng rng(2);
  Matrix x = Matrix::Gaussian(5, 3, &rng);
  Matrix y = i.Multiply(x);
  EXPECT_LT(Matrix::MaxAbsDiff(x, y), 1e-15);
}

TEST(SparseTest, RowSum) {
  SparseMatrix m = SmallSparse();
  EXPECT_DOUBLE_EQ(m.RowSum(0), 2.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 4.0);
  EXPECT_DOUBLE_EQ(m.RowSum(2), 4.0);
}

TEST(SparseTest, ToDenseMatchesAt) {
  SparseMatrix m = SmallSparse();
  Matrix d = m.ToDense();
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(d(r, c), m.At(r, c));
    }
  }
}

TEST(SparseTest, TransposedIsCorrect) {
  SparseMatrix m = SmallSparse();
  SparseMatrix t = m.Transposed();
  Matrix td = t.ToDense();
  Matrix d = m.ToDense();
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(td(c, r), d(r, c));
    }
  }
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(3);
  std::vector<Triplet> trip;
  for (int i = 0; i < 200; ++i) {
    trip.push_back({rng.UniformInt(20), rng.UniformInt(15),
                    rng.Normal()});
  }
  SparseMatrix sp = SparseMatrix::FromTriplets(20, 15, trip);
  Matrix x = Matrix::Gaussian(15, 7, &rng);
  Matrix expected = MatMul(sp.ToDense(), x);
  Matrix got = sp.Multiply(x);
  EXPECT_LT(Matrix::MaxAbsDiff(expected, got), 1e-10);
}

TEST(SparseTest, TransposedMultiplyMatchesDense) {
  Rng rng(4);
  std::vector<Triplet> trip;
  for (int i = 0; i < 150; ++i) {
    trip.push_back({rng.UniformInt(12), rng.UniformInt(12), rng.Normal()});
  }
  SparseMatrix sp = SparseMatrix::FromTriplets(12, 12, trip);
  Matrix x = Matrix::Gaussian(12, 5, &rng);
  Matrix expected = MatMul(Transpose(sp.ToDense()), x);
  Matrix got = sp.TransposedMultiply(x);
  EXPECT_LT(Matrix::MaxAbsDiff(expected, got), 1e-10);
}

TEST(SparseTest, ScaleRow) {
  SparseMatrix m = SmallSparse();
  m.ScaleRow(1, 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);  // other rows untouched
}

TEST(SparseTest, NormalizedWithSelfLoopsRowSums) {
  // Path graph 0-1-2 (symmetric adjacency).
  SparseMatrix a = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0}});
  auto norm = a.NormalizedWithSelfLoops();
  ASSERT_TRUE(norm.ok());
  const SparseMatrix& c = norm.ValueOrDie();
  // Entries: c_ij = (a_ij + delta_ij) / sqrt(d_i d_j), d = {2, 3, 2}.
  EXPECT_NEAR(c.At(0, 0), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(c.At(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_NEAR(c.At(1, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.At(2, 2), 1.0 / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.At(0, 2), 0.0);
}

TEST(SparseTest, NormalizedSpectrumBounded) {
  // Symmetric normalized adjacency with self loops has eigenvalues in
  // [-1, 1]; check via the dense spectral radius estimate |Cx| <= |x|.
  Rng rng(9);
  std::vector<Triplet> trip;
  for (int i = 0; i < 60; ++i) {
    int64_t u = rng.UniformInt(20), v = rng.UniformInt(20);
    if (u == v) continue;
    trip.push_back({u, v, 1.0});
    trip.push_back({v, u, 1.0});
  }
  SparseMatrix a = SparseMatrix::FromTriplets(20, 20, trip);
  // Clamp multi-edges to 1 by rebuilding from the dense pattern.
  std::vector<Triplet> binary;
  Matrix d = a.ToDense();
  for (int64_t r = 0; r < 20; ++r) {
    for (int64_t c = 0; c < 20; ++c) {
      if (d(r, c) != 0.0) binary.push_back({r, c, 1.0});
    }
  }
  a = SparseMatrix::FromTriplets(20, 20, binary);
  auto norm = a.NormalizedWithSelfLoops();
  ASSERT_TRUE(norm.ok());
  Matrix x = Matrix::Gaussian(20, 1, &rng);
  Matrix y = norm.ValueOrDie().Multiply(x);
  EXPECT_LE(y.FrobeniusNorm(), x.FrobeniusNorm() * (1.0 + 1e-9));
}

TEST(SparseTest, NormalizedWithInfluenceScalesEntries) {
  SparseMatrix a = SparseMatrix::FromTriplets(
      2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  std::vector<double> q{4.0, 1.0};  // quadruple node 0's scaled degree
  auto norm = a.NormalizedWithInfluence(q);
  ASSERT_TRUE(norm.ok());
  // d = {2, 2}; dq = {8, 2}; entry (0,1) = 1/sqrt(8 * 2) = 1/4.
  EXPECT_NEAR(norm.ValueOrDie().At(0, 1), 0.25, 1e-12);
}

TEST(SparseTest, NormalizedRejectsNonSquare) {
  SparseMatrix a = SparseMatrix::FromTriplets(2, 3, {{0, 1, 1.0}});
  EXPECT_FALSE(a.NormalizedWithSelfLoops().ok());
}

TEST(SparseTest, NormalizedRejectsBadInfluence) {
  SparseMatrix a = SparseMatrix::FromTriplets(2, 2, {{0, 1, 1.0}});
  EXPECT_FALSE(a.NormalizedWithInfluence({1.0}).ok());          // wrong size
  EXPECT_FALSE(a.NormalizedWithInfluence({0.0, 1.0}).ok());     // zero factor
  EXPECT_FALSE(a.NormalizedWithInfluence({-1.0, 1.0}).ok());    // negative
}

TEST(SparseTest, EmptyMatrixMultiply) {
  SparseMatrix m = SparseMatrix::FromTriplets(3, 3, {});
  Matrix x(3, 2, 1.0);
  Matrix y = m.Multiply(x);
  EXPECT_DOUBLE_EQ(y.Sum(), 0.0);
}

// Random rectangular sparse matrix for the SpMM property tests. Skewed row
// occupancy (quadratic in the row index) mimics the power-law degree
// distributions the nnz-balanced partitioning is built for.
SparseMatrix RandomSkewedSparse(int64_t rows, int64_t cols, Rng* rng) {
  std::vector<Triplet> t;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t budget = 1 + (r * r) % 23;
    for (int64_t i = 0; i < budget; ++i) {
      t.push_back({r, rng->UniformInt(cols), rng->Uniform(-1.0, 1.0)});
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(t));
}

TEST(SparseTest, MultiplyMatchesDenseReference) {
  Rng rng(31);
  for (auto [rows, cols, d] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {1, 1, 1}, {17, 9, 5}, {200, 150, 33}, {150, 200, 8}}) {
    SparseMatrix m = RandomSkewedSparse(rows, cols, &rng);
    Matrix x = Matrix::Gaussian(cols, d, &rng);
    Matrix expected = MatMul(m.ToDense(), x);
    EXPECT_LT(Matrix::MaxAbsDiff(m.Multiply(x), expected), 1e-9);
    // TransposedMultiply goes through the memoized transpose.
    Matrix xt = Matrix::Gaussian(rows, d, &rng);
    Matrix expected_t = MatMul(Transpose(m.ToDense()), xt);
    EXPECT_LT(Matrix::MaxAbsDiff(m.TransposedMultiply(xt), expected_t), 1e-9);
  }
}

TEST(SparseTest, MultiplyIntoAccumulates) {
  Rng rng(32);
  SparseMatrix m = RandomSkewedSparse(40, 30, &rng);
  Matrix x = Matrix::Gaussian(30, 7, &rng);
  Matrix once = m.Multiply(x);
  Matrix out = once;
  m.MultiplyInto(x, &out, /*accumulate=*/true);
  Matrix doubled = once;
  doubled.Scale(2.0);
  EXPECT_LT(Matrix::MaxAbsDiff(out, doubled), 1e-12);
}

TEST(SparseTest, MultiplyRunToRunDeterministic) {
  Rng rng(33);
  SparseMatrix m = RandomSkewedSparse(300, 120, &rng);
  Matrix x = Matrix::Gaussian(120, 17, &rng);
  Matrix y1 = m.Multiply(x);
  Matrix y2 = m.Multiply(x);
  EXPECT_EQ(
      std::memcmp(y1.data(), y2.data(), y1.size() * sizeof(double)), 0);
}

TEST(SparseTest, TransposedFastPathMatchesTriplets) {
  Rng rng(34);
  SparseMatrix m = RandomSkewedSparse(50, 70, &rng);
  SparseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 70);
  EXPECT_EQ(t.cols(), 50);
  EXPECT_EQ(t.nnz(), m.nnz());
  EXPECT_LT(Matrix::MaxAbsDiff(t.ToDense(), Transpose(m.ToDense())), 0.0 + 1e-15);
  // CSR invariant: columns ascending within each row.
  for (int64_t r = 0; r < t.rows(); ++r) {
    for (int64_t i = t.row_ptr()[r] + 1; i < t.row_ptr()[r + 1]; ++i) {
      EXPECT_LT(t.col_idx()[i - 1], t.col_idx()[i]);
    }
  }
}

TEST(SparseTest, TransposeCacheIsInvalidatedByMutation) {
  SparseMatrix m = SmallSparse();
  Matrix x = Matrix::Identity(3);
  Matrix before = m.TransposedMultiply(x);  // builds + memoizes transpose
  EXPECT_LT(Matrix::MaxAbsDiff(before, Transpose(m.ToDense())), 1e-15);
  m.ScaleRow(1, 10.0);  // must drop the memoized transpose
  Matrix after = m.TransposedMultiply(x);
  EXPECT_LT(Matrix::MaxAbsDiff(after, Transpose(m.ToDense())), 1e-15);
  EXPECT_DOUBLE_EQ(after(0, 1), 10.0);  // value (1,0) scaled, seen transposed
  m.mutable_values()[0] = -2.0;         // direct mutation also invalidates
  Matrix again = m.TransposedMultiply(x);
  EXPECT_DOUBLE_EQ(again(1, 0), -2.0);
}

TEST(SparseTest, CopyDoesNotShareTransposeCache) {
  SparseMatrix m = SmallSparse();
  (void)m.TransposedCached();
  SparseMatrix copy = m;
  copy.ScaleRow(0, 3.0);
  EXPECT_DOUBLE_EQ(copy.TransposedMultiply(Matrix::Identity(3))(1, 0), 6.0);
  // Original still sees its own (unscaled) values.
  EXPECT_DOUBLE_EQ(m.TransposedMultiply(Matrix::Identity(3))(1, 0), 2.0);
}

}  // namespace
}  // namespace galign
