#include "core/refinement.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "la/ops.h"

namespace galign {
namespace {

TEST(AggregateAlignmentTest, MatchesManualSum) {
  Rng rng(1);
  std::vector<Matrix> hs{Matrix::Gaussian(4, 3, &rng),
                         Matrix::Gaussian(4, 3, &rng)};
  std::vector<Matrix> ht{Matrix::Gaussian(5, 3, &rng),
                         Matrix::Gaussian(5, 3, &rng)};
  std::vector<double> theta{0.3, 0.7};
  Matrix s = AggregateAlignment(hs, ht, theta);
  Matrix expected = Scale(MatMulTransposedB(hs[0], ht[0]), 0.3);
  expected.Axpy(0.7, MatMulTransposedB(hs[1], ht[1]));
  EXPECT_LT(Matrix::MaxAbsDiff(s, expected), 1e-12);
}

TEST(AggregateAlignmentTest, ZeroWeightSkipsLayer) {
  Rng rng(2);
  std::vector<Matrix> hs{Matrix::Gaussian(3, 2, &rng),
                         Matrix::Gaussian(3, 2, &rng)};
  std::vector<Matrix> ht{Matrix::Gaussian(3, 2, &rng),
                         Matrix::Gaussian(3, 2, &rng)};
  Matrix only_last = AggregateAlignment(hs, ht, {0.0, 1.0});
  EXPECT_LT(Matrix::MaxAbsDiff(only_last, MatMulTransposedB(hs[1], ht[1])),
            1e-12);
}

TEST(ScanStabilityTest, AggregateScoreMatchesDense) {
  Rng rng(3);
  std::vector<Matrix> hs{Matrix::Gaussian(30, 4, &rng),
                         Matrix::Gaussian(30, 4, &rng)};
  std::vector<Matrix> ht{Matrix::Gaussian(20, 4, &rng),
                         Matrix::Gaussian(20, 4, &rng)};
  std::vector<double> theta{0.5, 0.5};
  Matrix s = AggregateAlignment(hs, ht, theta);
  double expected = 0.0;
  for (int64_t v = 0; v < 30; ++v) expected += MaxRow(s, v);
  StabilityScan scan = ScanStability(hs, ht, theta, 0.5);
  EXPECT_NEAR(scan.aggregate_score, expected, 1e-9);
}

TEST(ScanStabilityTest, IdenticalEmbeddingsAreAllStable) {
  // Source == target, normalized rows: self-cosine is 1 > lambda at every
  // layer, argmax consistent => all nodes stable.
  Rng rng(4);
  Matrix h = Matrix::Gaussian(15, 6, &rng);
  h.NormalizeRows();
  std::vector<Matrix> hs{h, h};
  std::vector<Matrix> ht{h, h};
  StabilityScan scan = ScanStability(hs, ht, {0.5, 0.5}, 0.94);
  EXPECT_EQ(scan.stable_source.size(), 15u);
  EXPECT_EQ(scan.stable_target.size(), 15u);
}

TEST(ScanStabilityTest, InconsistentArgmaxIsUnstable) {
  // Three layers (H0 + two GCN layers). GCN layer 1 points node 0 at
  // target 0, GCN layer 2 points it at target 1: unstable per Eq. 13.
  Matrix h0s{{1.0, 0.0}};
  Matrix h1s{{1.0, 0.0}};
  Matrix h2s{{0.0, 1.0}};
  Matrix ht_id{{1.0, 0.0}, {0.0, 1.0}};
  StabilityScan scan = ScanStability({h0s, h1s, h2s}, {ht_id, ht_id, ht_id},
                                     {0.34, 0.33, 0.33}, 0.9);
  EXPECT_TRUE(scan.stable_source.empty());
}

TEST(ScanStabilityTest, AttributeLayerArgmaxTiesDoNotBlockStability) {
  // H^(0) is tie-degenerate (identical attribute rows); the GCN layers
  // agree confidently. The node must still count as stable (layer 0 is
  // excluded from the argmax-consistency requirement).
  Matrix h0s{{1.0, 0.0}};
  Matrix h0t{{1.0, 0.0}, {1.0, 0.0}};  // both targets tie at layer 0
  Matrix h1s{{0.0, 1.0}};
  Matrix h1t{{1.0, 0.0}, {0.0, 1.0}};
  StabilityScan scan =
      ScanStability({h0s, h1s, h1s}, {h0t, h1t, h1t}, {0.34, 0.33, 0.33}, 0.9);
  ASSERT_EQ(scan.stable_source.size(), 1u);
  EXPECT_EQ(scan.stable_source[0], 0);
}

TEST(ScanStabilityTest, LowScoresAreUnstable) {
  Matrix hs{{0.5, 0.5}};
  Matrix ht{{0.5, 0.5}};
  // Cosine-ish score 0.5 < lambda 0.94.
  StabilityScan scan = ScanStability({hs}, {ht}, {1.0}, 0.94);
  EXPECT_TRUE(scan.stable_source.empty());
  EXPECT_TRUE(scan.stable_target.empty());
}

class RefinementEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    auto g = BarabasiAlbert(50, 3, &rng).MoveValueOrDie();
    Matrix f = BinaryAttributes(50, 8, 0.3, &rng);
    g = g.WithAttributes(f).MoveValueOrDie();
    NoisyCopyOptions opts;
    opts.structural_noise = 0.1;
    pair_ = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

    cfg_.epochs = 20;
    cfg_.embedding_dim = 16;
    cfg_.refinement_iterations = 5;
    gcn_ = std::make_unique<MultiOrderGcn>(cfg_.num_layers,
                                           g.num_attributes(),
                                           cfg_.embedding_dim, &rng);
    Trainer trainer(cfg_);
    trainer.Train(gcn_.get(), pair_.source, pair_.target, &rng).CheckOK();
  }

  GAlignConfig cfg_;
  AlignmentPair pair_;
  std::unique_ptr<MultiOrderGcn> gcn_;
};

TEST_F(RefinementEndToEnd, ReturnsBestScoringIteration) {
  auto result = RefineAlignment(*gcn_, pair_.source, pair_.target, cfg_);
  ASSERT_TRUE(result.ok());
  const RefinementResult& r = result.ValueOrDie();
  EXPECT_EQ(r.score_history.size(),
            static_cast<size_t>(cfg_.refinement_iterations) + 1);
  // best_score is the max over the history (greedy keep-best, Alg. 2).
  double max_seen = -1e300;
  for (double g : r.score_history) max_seen = std::max(max_seen, g);
  EXPECT_NEAR(r.best_score, max_seen, 1e-9);
  EXPECT_EQ(r.alignment.rows(), pair_.source.num_nodes());
  EXPECT_EQ(r.alignment.cols(), pair_.target.num_nodes());
  EXPECT_TRUE(r.alignment.AllFinite());
}

TEST_F(RefinementEndToEnd, BestIterationConsistentWithHistory) {
  auto result = RefineAlignment(*gcn_, pair_.source, pair_.target, cfg_);
  ASSERT_TRUE(result.ok());
  const RefinementResult& r = result.ValueOrDie();
  EXPECT_NEAR(r.score_history[r.best_iteration], r.best_score, 1e-9);
}

TEST_F(RefinementEndToEnd, RejectsMismatchedLayerWeights) {
  GAlignConfig bad = cfg_;
  bad.num_layers = 5;  // theta of size 6 vs 2-layer GCN
  auto result = RefineAlignment(*gcn_, pair_.source, pair_.target, bad);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace galign
