// End-to-end integration test of the galign_cli tool: writes a dataset to
// disk, invokes the real binary, and validates the artifacts it produces.
// The binary path is injected by CMake as GALIGN_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "align/alignment_io.h"
#include "align/dataset_io.h"
#include "align/metrics.h"
#include "graph/generators.h"
#include "graph/noise.h"

#ifndef GALIGN_CLI_PATH
#define GALIGN_CLI_PATH "galign_cli"
#endif

namespace galign {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    Rng rng(1);
    auto g = BarabasiAlbert(60, 3, &rng).MoveValueOrDie();
    g = g.WithAttributes(BinaryAttributes(60, 8, 0.3, &rng)).MoveValueOrDie();
    NoisyCopyOptions opts;
    opts.structural_noise = 0.05;
    pair_ = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
    ASSERT_TRUE(SaveAlignmentPair(pair_, Dir("data")).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Dir(const std::string& name) { return (dir_ / name).string(); }

  int RunCli(const std::string& extra) {
    std::string cmd = std::string(GALIGN_CLI_PATH) +
                      " --source=" + Dir("data/source.edges") +
                      " --target=" + Dir("data/target.edges") +
                      " --source-attrs=" + Dir("data/source.attrs") +
                      " --target-attrs=" + Dir("data/target.attrs") + " " +
                      extra + " > " + Dir("stdout.txt") + " 2>&1";
    return std::system(cmd.c_str());
  }

  std::string CapturedOutput() {
    std::ifstream in(Dir("stdout.txt"));
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  std::filesystem::path dir_;
  AlignmentPair pair_;
};

TEST_F(CliTest, GAlignProducesAccurateAnchors) {
  int rc = RunCli("--method=galign --epochs=20 --dim=32 --anchors-out=" +
                  Dir("anchors.txt"));
  ASSERT_EQ(rc, 0);
  auto anchors = LoadAnchors(Dir("anchors.txt"), pair_.source.num_nodes());
  ASSERT_TRUE(anchors.ok());
  int64_t correct = 0, total = 0;
  for (size_t v = 0; v < anchors.ValueOrDie().size(); ++v) {
    if (anchors.ValueOrDie()[v] == -1) continue;
    ++total;
    if (anchors.ValueOrDie()[v] == pair_.ground_truth[v]) ++correct;
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(static_cast<double>(correct) / total, 0.5);
}

TEST_F(CliTest, MatrixOutputRoundTrips) {
  int rc = RunCli("--method=unialign --matrix-out=" + Dir("s.tsv"));
  ASSERT_EQ(rc, 0);
  auto s = LoadAlignmentMatrix(Dir("s.tsv"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.ValueOrDie().rows(), pair_.source.num_nodes());
  EXPECT_EQ(s.ValueOrDie().cols(), pair_.target.num_nodes());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST_F(CliTest, HungarianFlagWorks) {
  int rc = RunCli(
      "--method=galign --epochs=15 --dim=24 --hungarian --anchors-out=" +
      Dir("h.txt"));
  ASSERT_EQ(rc, 0);
  auto anchors = LoadAnchors(Dir("h.txt"), pair_.source.num_nodes());
  ASSERT_TRUE(anchors.ok());
  // Hungarian output is injective.
  std::vector<bool> used(pair_.target.num_nodes(), false);
  for (int64_t a : anchors.ValueOrDie()) {
    if (a == -1) continue;
    EXPECT_FALSE(used[a]);
    used[a] = true;
  }
}

TEST_F(CliTest, UnknownMethodFails) {
  EXPECT_NE(RunCli("--method=definitely_not_a_method"), 0);
}

// Typed flag validation (DESIGN.md §12): each rejection exits nonzero and
// prints an InvalidArgument diagnostic that carries the flag name, the
// offending value, and the file:line of the validation site.

TEST_F(CliTest, MalformedMemBudgetSuffixRejectedTyped) {
  EXPECT_NE(RunCli("--method=unialign --mem-budget=512q"), 0);
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("--mem-budget=512q rejected"), std::string::npos) << out;
  EXPECT_NE(out.find("galign_cli.cpp:"), std::string::npos) << out;
}

TEST_F(CliTest, NonPositiveTopKRejectedTyped) {
  EXPECT_NE(RunCli("--method=unialign --topk=0"), 0);
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("--topk=0 rejected"), std::string::npos) << out;
}

TEST_F(CliTest, OversizedTopKRejectedTyped) {
  // 60-node target: a per-row top-1000 cannot exist; rejected after load
  // instead of silently clamped.
  EXPECT_NE(RunCli("--method=unialign --topk=1000 --anchors-out=" +
                   Dir("never.txt")),
            0);
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("--topk=1000 rejected"), std::string::npos) << out;
  EXPECT_NE(out.find("target nodes"), std::string::npos) << out;
  EXPECT_FALSE(std::filesystem::exists(Dir("never.txt")));
}

TEST_F(CliTest, AnnRecallTargetOutsideDomainRejectedTyped) {
  EXPECT_NE(RunCli("--method=galign --ann-recall-target=1.5"), 0);
  const std::string out = CapturedOutput();
  EXPECT_NE(out.find("--ann-recall-target=1.5 rejected"), std::string::npos)
      << out;
  EXPECT_NE(out.find("0 < value <= 1"), std::string::npos) << out;
}

TEST_F(CliTest, MissingInputFails) {
  std::string cmd = std::string(GALIGN_CLI_PATH) +
                    " --source=/nonexistent --target=/nonexistent > " +
                    Dir("out.txt") + " 2>&1";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

}  // namespace
}  // namespace galign
