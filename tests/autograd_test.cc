#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "common/rng.h"
#include "la/ops.h"

namespace galign {
namespace {

// Central finite-difference check: builds the scalar loss twice per probed
// entry and compares to the analytic gradient from Backward().
void CheckGradient(
    const Matrix& x,
    const std::function<Var(Tape*, Var)>& build_loss,
    double tol = 1e-6, double eps = 1e-6) {
  Tape tape;
  Var leaf = tape.Leaf(x, /*requires_grad=*/true);
  Var loss = build_loss(&tape, leaf);
  ASSERT_EQ(tape.value(loss).rows(), 1);
  ASSERT_EQ(tape.value(loss).cols(), 1);
  tape.Backward(loss);
  Matrix analytic = tape.grad(leaf);

  auto eval = [&](const Matrix& probe) {
    Tape t2;
    Var l2 = t2.Leaf(probe, false);
    Var loss2 = build_loss(&t2, l2);
    return t2.value(loss2)(0, 0);
  };

  for (int64_t i = 0; i < x.size(); ++i) {
    Matrix plus = x, minus = x;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    double numeric = (eval(plus) - eval(minus)) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "entry " << i << " of " << x.rows() << "x" << x.cols();
  }
}

// Reduces any matrix-valued var to a scalar via a fixed random projection so
// every op can be gradient-checked through a scalar loss.
Var ProjectToScalar(Tape* t, Var m, uint64_t seed = 123) {
  Rng rng(seed);
  const Matrix& v = t->value(m);
  Matrix w = Matrix::Gaussian(v.rows(), v.cols(), &rng);
  Var wconst = t->Leaf(w, false);
  Var had = t->Emit(
      Hadamard(t->value(m), w), {m, wconst},
      [m, wconst](Tape* tp, Var self) {
        tp->AccumulateGrad(m, Hadamard(tp->grad(self), tp->value(wconst)));
      },
      t->requires_grad(m));
  // Sum all entries.
  const Matrix& hv = t->value(had);
  Matrix s(1, 1, hv.Sum());
  return t->Emit(
      std::move(s), {had},
      [had](Tape* tp, Var self) {
        const Matrix& hv = tp->value(had);
        Matrix ones(hv.rows(), hv.cols(), tp->grad(self)(0, 0));
        tp->AccumulateGrad(had, ones);
      },
      t->requires_grad(had));
}

TEST(TapeTest, LeafValueRoundTrip) {
  Tape t;
  Matrix m{{1, 2}, {3, 4}};
  Var v = t.Leaf(m, true);
  EXPECT_LT(Matrix::MaxAbsDiff(t.value(v), m), 1e-15);
  EXPECT_TRUE(t.requires_grad(v));
}

TEST(TapeTest, BackwardThroughChainedScales) {
  Tape t;
  Var x = t.Leaf(Matrix(1, 1, 3.0), true);
  Var y = ag::Scale(&t, x, 2.0);
  Var z = ag::Scale(&t, y, 5.0);
  t.Backward(z);
  EXPECT_DOUBLE_EQ(t.grad(x)(0, 0), 10.0);
}

TEST(TapeTest, GradAccumulatesAcrossUses) {
  // loss = x + x => dloss/dx = 2.
  Tape t;
  Var x = t.Leaf(Matrix(1, 1, 1.5), true);
  Var y = ag::Add(&t, x, x);
  t.Backward(y);
  EXPECT_DOUBLE_EQ(t.grad(x)(0, 0), 2.0);
}

TEST(TapeTest, NoGradLeafStaysUntouched) {
  Tape t;
  Var x = t.Leaf(Matrix(1, 1, 3.0), false);
  Var y = ag::Scale(&t, x, 2.0);
  t.Backward(y);
  EXPECT_TRUE(t.grad(x).empty() || t.grad(x).MaxAbs() == 0.0);
}

TEST(GradCheck, MatMulLeft) {
  Rng rng(1);
  Matrix x = Matrix::Gaussian(3, 4, &rng);
  Matrix b = Matrix::Gaussian(4, 5, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    Var bv = t->Leaf(b, false);
    return ProjectToScalar(t, ag::MatMul(t, leaf, bv));
  });
}

TEST(GradCheck, MatMulRight) {
  Rng rng(2);
  Matrix a = Matrix::Gaussian(4, 3, &rng);
  Matrix x = Matrix::Gaussian(3, 6, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    Var av = t->Leaf(a, false);
    return ProjectToScalar(t, ag::MatMul(t, av, leaf));
  });
}

TEST(GradCheck, SpMM) {
  Rng rng(3);
  std::vector<Triplet> trip;
  for (int i = 0; i < 20; ++i) {
    trip.push_back({rng.UniformInt(5), rng.UniformInt(5), rng.Normal()});
  }
  SparseMatrix sp = SparseMatrix::FromTriplets(5, 5, trip);
  Matrix x = Matrix::Gaussian(5, 3, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ProjectToScalar(t, ag::SpMM(t, &sp, leaf));
  });
}

TEST(GradCheck, Tanh) {
  Rng rng(4);
  Matrix x = Matrix::Gaussian(4, 4, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ProjectToScalar(t, ag::Tanh(t, leaf));
  });
}

TEST(GradCheck, Sigmoid) {
  Rng rng(5);
  Matrix x = Matrix::Gaussian(3, 5, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ProjectToScalar(t, ag::Sigmoid(t, leaf));
  });
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(6);
  Matrix x = Matrix::Gaussian(4, 4, &rng);
  // Keep entries away from 0 where ReLU is non-differentiable.
  for (int64_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x.data()[i]) < 0.1) x.data()[i] = 0.5;
  }
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ProjectToScalar(t, ag::Relu(t, leaf));
  });
}

TEST(GradCheck, NormalizeRows) {
  Rng rng(7);
  Matrix x = Matrix::Gaussian(4, 5, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ProjectToScalar(t, ag::NormalizeRows(t, leaf));
  }, 1e-5);
}

TEST(GradCheck, AddSub) {
  Rng rng(8);
  Matrix x = Matrix::Gaussian(3, 3, &rng);
  Matrix b = Matrix::Gaussian(3, 3, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    Var bv = t->Leaf(b, false);
    Var sum = ag::Add(t, leaf, bv);
    Var diff = ag::Sub(t, sum, leaf);  // cancels leaf partially
    Var mixed = ag::Add(t, diff, leaf);
    return ProjectToScalar(t, mixed);
  });
}

TEST(GradCheck, AddBiasOnInput) {
  Rng rng(9);
  Matrix x = Matrix::Gaussian(4, 3, &rng);
  Matrix bias = Matrix::Gaussian(1, 3, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    Var bv = t->Leaf(bias, false);
    return ProjectToScalar(t, ag::AddBias(t, leaf, bv));
  });
}

TEST(GradCheck, AddBiasOnBias) {
  Rng rng(10);
  Matrix input = Matrix::Gaussian(4, 3, &rng);
  Matrix bias = Matrix::Gaussian(1, 3, &rng);
  CheckGradient(bias, [&](Tape* t, Var leaf) {
    Var iv = t->Leaf(input, false);
    return ProjectToScalar(t, ag::AddBias(t, iv, leaf));
  });
}

TEST(GradCheck, FrobeniusNorm) {
  Rng rng(11);
  Matrix x = Matrix::Gaussian(4, 4, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ag::FrobeniusNorm(t, leaf);
  });
}

TEST(GradCheck, MSELoss) {
  Rng rng(12);
  Matrix x = Matrix::Gaussian(5, 3, &rng);
  Matrix target = Matrix::Gaussian(5, 3, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    return ag::MSELoss(t, leaf, target);
  });
}

TEST(GradCheck, WeightedSum) {
  Rng rng(13);
  Matrix x = Matrix::Gaussian(3, 3, &rng);
  CheckGradient(x, [&](Tape* t, Var leaf) {
    Var n1 = ag::FrobeniusNorm(t, leaf);
    Var n2 = ag::FrobeniusNorm(t, ag::Scale(t, leaf, 2.0));
    return ag::WeightedSum(t, {{n1, 0.3}, {n2, 0.7}});
  });
}

TEST(GradCheck, ConsistencyLoss) {
  Rng rng(14);
  // Symmetric sparse "Laplacian-like" matrix.
  std::vector<Triplet> trip;
  for (int i = 0; i < 12; ++i) {
    int64_t u = rng.UniformInt(6), v = rng.UniformInt(6);
    double val = rng.Uniform(0.1, 0.5);
    trip.push_back({u, v, val});
    trip.push_back({v, u, val});
  }
  SparseMatrix c = SparseMatrix::FromTriplets(6, 6, trip);
  Matrix h = Matrix::Gaussian(6, 4, &rng, 0.5);
  CheckGradient(h, [&](Tape* t, Var leaf) {
    return ag::ConsistencyLoss(t, &c, leaf);
  }, 1e-5);
}

TEST(GradCheck, ConsistencyLossAsymmetricSparse) {
  Rng rng(15);
  std::vector<Triplet> trip;
  for (int i = 0; i < 10; ++i) {
    trip.push_back({rng.UniformInt(5), rng.UniformInt(5),
                    rng.Uniform(0.1, 0.4)});
  }
  SparseMatrix c = SparseMatrix::FromTriplets(5, 5, trip);
  Matrix h = Matrix::Gaussian(5, 3, &rng, 0.5);
  CheckGradient(h, [&](Tape* t, Var leaf) {
    return ag::ConsistencyLoss(t, &c, leaf);
  }, 1e-5);
}

TEST(GradCheck, AdaptivityLossOnA) {
  Rng rng(16);
  Matrix a = Matrix::Gaussian(5, 3, &rng, 0.2);
  Matrix b = Matrix::Gaussian(5, 3, &rng, 0.2);
  std::vector<int64_t> corr{2, 0, 1, 4, 3};
  CheckGradient(a, [&](Tape* t, Var leaf) {
    Var bv = t->Leaf(b, false);
    return ag::AdaptivityLoss(t, leaf, bv, corr, /*threshold=*/10.0);
  }, 1e-5);
}

TEST(GradCheck, AdaptivityLossOnB) {
  Rng rng(17);
  Matrix a = Matrix::Gaussian(5, 3, &rng, 0.2);
  Matrix b = Matrix::Gaussian(5, 3, &rng, 0.2);
  std::vector<int64_t> corr{2, 0, 1, 4, 3};
  CheckGradient(b, [&](Tape* t, Var leaf) {
    Var av = t->Leaf(a, false);
    return ag::AdaptivityLoss(t, av, leaf, corr, /*threshold=*/10.0);
  }, 1e-5);
}

TEST(GradCheck, AnchorLossOnA) {
  Rng rng(30);
  Matrix a = Matrix::Gaussian(6, 3, &rng, 0.3);
  Matrix b = Matrix::Gaussian(5, 3, &rng, 0.3);
  std::vector<std::pair<int64_t, int64_t>> pairs{{0, 2}, {3, 4}, {5, 0}};
  CheckGradient(a, [&](Tape* t, Var leaf) {
    Var bv = t->Leaf(b, false);
    return ag::AnchorLoss(t, leaf, bv, pairs);
  }, 1e-5);
}

TEST(GradCheck, AnchorLossOnB) {
  Rng rng(31);
  Matrix a = Matrix::Gaussian(6, 3, &rng, 0.3);
  Matrix b = Matrix::Gaussian(5, 3, &rng, 0.3);
  std::vector<std::pair<int64_t, int64_t>> pairs{{1, 1}, {2, 3}};
  CheckGradient(b, [&](Tape* t, Var leaf) {
    Var av = t->Leaf(a, false);
    return ag::AnchorLoss(t, av, leaf, pairs);
  }, 1e-5);
}

TEST(AnchorLossTest, ValueIsSumOfPairDistances) {
  Tape t;
  Matrix a{{0, 0}, {1, 0}};
  Matrix b{{3, 4}, {1, 0}};
  Var av = t.Leaf(a, true);
  Var bv = t.Leaf(b, false);
  std::vector<std::pair<int64_t, int64_t>> pairs{{0, 0}, {1, 1}};
  Var loss = ag::AnchorLoss(&t, av, bv, pairs);
  EXPECT_NEAR(t.value(loss)(0, 0), 5.0 + 0.0, 1e-12);
}

TEST(AdaptivityLossTest, ThresholdMasksLargeDistances) {
  Tape t;
  Matrix a{{0, 0}, {0, 0}};
  Matrix b{{3, 4}, {0.1, 0}};  // distances 5 and 0.1
  Var av = t.Leaf(a, true);
  Var bv = t.Leaf(b, false);
  std::vector<int64_t> corr{0, 1};
  Var loss = ag::AdaptivityLoss(&t, av, bv, corr, /*threshold=*/1.0);
  // Only the 0.1 distance survives the sigma_< mask.
  EXPECT_NEAR(t.value(loss)(0, 0), 0.1, 1e-12);
  t.Backward(loss);
  // Masked row contributes zero gradient.
  EXPECT_DOUBLE_EQ(t.grad(av)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.grad(av)(0, 1), 0.0);
  EXPECT_NE(t.grad(av)(1, 0), 0.0);
}

TEST(ConsistencyLossTest, PerfectGramGivesZeroLoss) {
  // If C == H H^T exactly, the loss must be ~0.
  Matrix h{{1, 0}, {0, 1}};
  std::vector<Triplet> trip{{0, 0, 1.0}, {1, 1, 1.0}};
  SparseMatrix c = SparseMatrix::FromTriplets(2, 2, trip);
  Tape t;
  Var hv = t.Leaf(h, true);
  Var loss = ag::ConsistencyLoss(&t, &c, hv);
  EXPECT_NEAR(t.value(loss)(0, 0), 0.0, 1e-9);
}

TEST(ConsistencyLossTest, MatchesDenseFormula) {
  Rng rng(18);
  std::vector<Triplet> trip;
  for (int i = 0; i < 8; ++i) {
    int64_t u = rng.UniformInt(4), v = rng.UniformInt(4);
    double val = rng.Uniform(0.1, 0.5);
    trip.push_back({u, v, val});
    trip.push_back({v, u, val});
  }
  SparseMatrix c = SparseMatrix::FromTriplets(4, 4, trip);
  Matrix h = Matrix::Gaussian(4, 3, &rng, 0.4);
  Tape t;
  Var hv = t.Leaf(h, false);
  Var loss = ag::ConsistencyLoss(&t, &c, hv);
  Matrix dense_diff = Sub(c.ToDense(), MatMulTransposedB(h, h));
  EXPECT_NEAR(t.value(loss)(0, 0), dense_diff.FrobeniusNorm(), 1e-9);
}

}  // namespace
}  // namespace galign
