// Self-test for tools/lint/galign_lint (DESIGN.md §10).
//
// Each lint rule is proven *live* by running the real binary over a known-bad
// fixture tree (asserting the exact rule-id, file, and line) and proven
// *quiet* over the matching known-good tree. The final test runs the lint
// over the actual repository — the zero-violation gate scripts/check.sh
// relies on, kept inside the test suite so plain ctest enforces it too.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(GALIGN_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string Fixture(const std::string& rel) {
  return std::string("--root ") + GALIGN_LINT_FIXTURES + "/" + rel;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(LintUncheckedStatus, BadFixtureFiresPerDiscardedCall) {
  LintRun run = RunLint(Fixture("unchecked_status/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("use.cc:6: unchecked-status:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("use.cc:7: unchecked-status:"), std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-status"), 2)
      << run.output;
}

TEST(LintUncheckedStatus, ConsumedResultsStayQuiet) {
  LintRun run = RunLint(Fixture("unchecked_status/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-status"), 0)
      << run.output;
}

TEST(LintNondeterminism, RawClockAndEntropyFire) {
  LintRun run = RunLint(Fixture("nondeterminism/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("clocky.cc:7: banned-nondeterminism:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("clocky.cc:8: banned-nondeterminism:"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "banned-nondeterminism"), 2)
      << run.output;
}

TEST(LintNondeterminism, WhitelistedHomesAndStringLiteralsStayQuiet) {
  // common/rng.cc is a whitelisted entropy home; strings.cc mentions the
  // banned names only inside string literals and comments.
  LintRun run = RunLint(Fixture("nondeterminism/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "banned-nondeterminism"), 0)
      << run.output;
}

TEST(LintUnbudgetedAlloc, RetiredRawFactoriesFire) {
  LintRun run = RunLint(Fixture("unbudgeted_alloc/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("alloc.cc:6: unbudgeted-alloc:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("alloc.cc:7: unbudgeted-alloc:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("Matrix::TryCreate"), std::string::npos)
      << run.output;
}

TEST(LintUnbudgetedAlloc, TryCreateUnderBudgetStaysQuiet) {
  LintRun run = RunLint(Fixture("unbudgeted_alloc/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintLayering, UpwardAndSidewaysIncludesFire) {
  LintRun run = RunLint(Fixture("layering/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(
      run.output.find("upward.h:4: layering: 'la' may not include 'graph'"),
      std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("upward.h:5: layering: 'la' may not include 'core'"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "sideways.h:3: layering: 'graph' may not include 'align'"),
            std::string::npos)
      << run.output;
  // Nested sub-layer: graph may not reach back up into graph/ann.
  EXPECT_NE(
      run.output.find(
          "backref.h:3: layering: 'graph' may not include 'graph/ann'"),
      std::string::npos)
      << run.output;
  // Same shape one level up: serve may not reach into serve/swap.
  EXPECT_NE(
      run.output.find(
          "backswap.h:3: layering: 'serve' may not include 'serve/swap'"),
      std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, ": layering:"), 5) << run.output;
}

TEST(LintLayering, DownwardIncludesStayQuiet) {
  LintRun run = RunLint(Fixture("layering/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintLayering, PrintDagExposesTheTable) {
  // The allowed-includes DAG is encoded in exactly one table; --print-dag is
  // how scripts and humans read it back. Pin the edges the project
  // guarantees (ISSUE/DESIGN §10): common at the bottom, la below graph,
  // autograd restricted to la+common, graph blind to align/baselines.
  LintRun run = RunLint("--print-dag");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("common: (nothing below it)"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("la: common"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("graph: la common"), std::string::npos)
      << run.output;
  // graph/ann is a distinct layer above graph (longest-prefix matching):
  // it may use graph's kernels, graph may not depend back on it.
  EXPECT_NE(run.output.find("graph/ann: graph la common"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("autograd: la common"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("align: graph graph/ann la common"),
            std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("baselines: align autograd graph graph/ann la common"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("core: align autograd graph graph/ann la common"),
            std::string::npos)
      << run.output;
  // serve is the top of the stack: it may read core artifacts and the ANN
  // layer, and nothing below may reach back into it.
  EXPECT_NE(run.output.find(
                "serve: core align autograd graph graph/ann la common"),
            std::string::npos)
      << run.output;
  // ...and serve/swap (the hot-swap watcher) is the layer above serve.
  EXPECT_NE(
      run.output.find(
          "serve/swap: serve core align autograd graph graph/ann la common"),
      std::string::npos)
      << run.output;
}

TEST(LintNakedThrow, LibraryThrowFires) {
  LintRun run = RunLint(Fixture("naked_throw/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("thrower.cc:5: no-naked-throw:"),
            std::string::npos)
      << run.output;
}

TEST(LintNakedThrow, TestCodeIsExempt) {
  LintRun run = RunLint(Fixture("naked_throw/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintAllow, ReasonedAllowSuppresses) {
  LintRun run = RunLint(Fixture("allow/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintAllow, ReasonlessAllowIsItselfAViolation) {
  LintRun run = RunLint(Fixture("allow/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("reasonless.cc:7: bad-allow:"), std::string::npos)
      << run.output;
  // ...and the underlying rule still fires.
  EXPECT_NE(run.output.find("reasonless.cc:7: no-naked-throw:"),
            std::string::npos)
      << run.output;
}

TEST(LintCli, BadRootExitsTwo) {
  LintRun run = RunLint("--root /nonexistent/galign-lint-test");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(LintGate, RepositoryTreeIsClean) {
  // The acceptance gate: zero violations over the real src/bench/examples/
  // tests/tools tree. A failure here prints the exact file:line: rule-id.
  LintRun run = RunLint(std::string("--root ") + GALIGN_REPO_ROOT);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("galign_lint: clean"), std::string::npos)
      << run.output;
}

}  // namespace
