// Self-test for tools/lint/galign_lint (DESIGN.md §10).
//
// Each lint rule is proven *live* by running the real binary over a known-bad
// fixture tree (asserting the exact rule-id, file, and line) and proven
// *quiet* over the matching known-good tree. The final test runs the lint
// over the actual repository — the zero-violation gate scripts/check.sh
// relies on, kept inside the test suite so plain ctest enforces it too.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(GALIGN_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string Fixture(const std::string& rel) {
  return std::string("--root ") + GALIGN_LINT_FIXTURES + "/" + rel;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(LintUncheckedStatus, BadFixtureFiresPerDiscardedCall) {
  LintRun run = RunLint(Fixture("unchecked_status/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("use.cc:6: unchecked-status:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("use.cc:7: unchecked-status:"), std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-status"), 2)
      << run.output;
}

TEST(LintUncheckedStatus, ConsumedResultsStayQuiet) {
  LintRun run = RunLint(Fixture("unchecked_status/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-status"), 0)
      << run.output;
}

TEST(LintNondeterminism, RawClockAndEntropyFire) {
  LintRun run = RunLint(Fixture("nondeterminism/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("clocky.cc:7: banned-nondeterminism:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("clocky.cc:8: banned-nondeterminism:"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "banned-nondeterminism"), 2)
      << run.output;
}

TEST(LintNondeterminism, WhitelistedHomesAndStringLiteralsStayQuiet) {
  // common/rng.cc is a whitelisted entropy home; strings.cc mentions the
  // banned names only inside string literals and comments.
  LintRun run = RunLint(Fixture("nondeterminism/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "banned-nondeterminism"), 0)
      << run.output;
}

TEST(LintUnbudgetedAlloc, RetiredRawFactoriesFire) {
  LintRun run = RunLint(Fixture("unbudgeted_alloc/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("alloc.cc:6: unbudgeted-alloc:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("alloc.cc:7: unbudgeted-alloc:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("Matrix::TryCreate"), std::string::npos)
      << run.output;
}

TEST(LintUnbudgetedAlloc, TryCreateUnderBudgetStaysQuiet) {
  LintRun run = RunLint(Fixture("unbudgeted_alloc/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintLayering, UpwardAndSidewaysIncludesFire) {
  LintRun run = RunLint(Fixture("layering/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(
      run.output.find("upward.h:4: layering: 'la' may not include 'graph'"),
      std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("upward.h:5: layering: 'la' may not include 'core'"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "sideways.h:3: layering: 'graph' may not include 'align'"),
            std::string::npos)
      << run.output;
  // Nested sub-layer: graph may not reach back up into graph/ann.
  EXPECT_NE(
      run.output.find(
          "backref.h:3: layering: 'graph' may not include 'graph/ann'"),
      std::string::npos)
      << run.output;
  // Same shape one level up: serve may not reach into serve/swap.
  EXPECT_NE(
      run.output.find(
          "backswap.h:3: layering: 'serve' may not include 'serve/swap'"),
      std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, ": layering:"), 5) << run.output;
}

TEST(LintLayering, DownwardIncludesStayQuiet) {
  LintRun run = RunLint(Fixture("layering/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintLayering, PrintDagExposesTheTable) {
  // The allowed-includes DAG is encoded in exactly one table; --print-dag is
  // how scripts and humans read it back. Pin the edges the project
  // guarantees (ISSUE/DESIGN §10): common at the bottom, la below graph,
  // autograd restricted to la+common, graph blind to align/baselines.
  LintRun run = RunLint("--print-dag");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("common: (nothing below it)"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("la: common"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("graph: la common"), std::string::npos)
      << run.output;
  // graph/ann is a distinct layer above graph (longest-prefix matching):
  // it may use graph's kernels, graph may not depend back on it.
  EXPECT_NE(run.output.find("graph/ann: graph la common"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("autograd: la common"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("align: graph graph/ann la common"),
            std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("baselines: align autograd graph graph/ann la common"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("core: align autograd graph graph/ann la common"),
            std::string::npos)
      << run.output;
  // serve is the top of the stack: it may read core artifacts and the ANN
  // layer, and nothing below may reach back into it.
  EXPECT_NE(run.output.find(
                "serve: core align autograd graph graph/ann la common"),
            std::string::npos)
      << run.output;
  // ...and serve/swap (the hot-swap watcher) is the layer above serve.
  EXPECT_NE(
      run.output.find(
          "serve/swap: serve core align autograd graph graph/ann la common"),
      std::string::npos)
      << run.output;
}

TEST(LintNakedThrow, LibraryThrowFires) {
  LintRun run = RunLint(Fixture("naked_throw/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("thrower.cc:5: no-naked-throw:"),
            std::string::npos)
      << run.output;
}

TEST(LintNakedThrow, TestCodeIsExempt) {
  LintRun run = RunLint(Fixture("naked_throw/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintAllow, ReasonedAllowSuppresses) {
  LintRun run = RunLint(Fixture("allow/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintAllow, ReasonlessAllowIsItselfAViolation) {
  LintRun run = RunLint(Fixture("allow/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("reasonless.cc:7: bad-allow:"), std::string::npos)
      << run.output;
  // ...and the underlying rule still fires.
  EXPECT_NE(run.output.find("reasonless.cc:7: no-naked-throw:"),
            std::string::npos)
      << run.output;
}

TEST(LintContextDropped, FreshContextAndStrandedParamFire) {
  LintRun run = RunLint(Fixture("context_dropped/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Line 5 passes a freshly-constructed context instead of forwarding the
  // caller's; line 9 declares a named context it never consults.
  EXPECT_NE(run.output.find("pipeline.cc:5: context-dropped:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("pipeline.cc:9: context-dropped:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'Stranded'"), std::string::npos) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "context-dropped"), 2)
      << run.output;
}

TEST(LintContextDropped, ForwardedAndUnnamedContextsStayQuiet) {
  LintRun run = RunLint(Fixture("context_dropped/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "context-dropped"), 0)
      << run.output;
}

TEST(LintContextDropped, ReasonlessAllowIsItselfAViolation) {
  LintRun run = RunLint(Fixture("context_dropped/allow_bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("pipeline.cc:5: bad-allow:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("pipeline.cc:5: context-dropped:"),
            std::string::npos)
      << run.output;
}

TEST(LintFaultAudit, UnarmedPhantomAndNearDuplicateFire) {
  LintRun run = RunLint(Fixture("fault_audit/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // An instrumented-but-never-armed site (the "arming test was removed"
  // scenario the audit exists for)...
  EXPECT_NE(run.output.find("faulty.cc:4: fault-site-audit:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("no test arms"), std::string::npos)
      << run.output;
  // ...a pair of src sites one edit apart...
  EXPECT_NE(run.output.find("one edit apart"), std::string::npos)
      << run.output;
  // ...and a test arming a site that exists nowhere, with a suggestion.
  EXPECT_NE(run.output.find("faulty_test.cc:7: fault-site-audit:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("did you mean"), std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "fault-site-audit"), 3)
      << run.output;
}

TEST(LintFaultAudit, DirectAndTableDrivenArmingBothCount) {
  LintRun run = RunLint(Fixture("fault_audit/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "fault-site-audit"), 0)
      << run.output;
}

TEST(LintFaultAudit, ReasonlessAllowIsItselfAViolation) {
  LintRun run = RunLint(Fixture("fault_audit/allow_bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("faulty.cc:3: bad-allow:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("faulty.cc:3: fault-site-audit:"),
            std::string::npos)
      << run.output;
}

TEST(LintBudgetDiscipline, LeakedReserveAndUncheckedTryCreateFire) {
  LintRun run = RunLint(Fixture("budget_discipline/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // TryReserve with no Release/MemoryScope anywhere in the function...
  EXPECT_NE(run.output.find("budget.cc:4: budget-discipline:"),
            std::string::npos)
      << run.output;
  // ...ValueOrDie without a prior ok() check...
  EXPECT_NE(run.output.find("budget.cc:9: budget-discipline:"),
            std::string::npos)
      << run.output;
  // ...and the in-place TryCreate(...).ValueOrDie() chain.
  EXPECT_NE(run.output.find("budget.cc:11: budget-discipline:"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "budget-discipline"), 3)
      << run.output;
}

TEST(LintBudgetDiscipline, PairedReleaseAndCheckedResultStayQuiet) {
  LintRun run = RunLint(Fixture("budget_discipline/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintBudgetDiscipline, ReasonlessAllowIsItselfAViolation) {
  LintRun run = RunLint(Fixture("budget_discipline/allow_bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("budget.cc:4: bad-allow:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("budget.cc:4: budget-discipline:"),
            std::string::npos)
      << run.output;
}

TEST(LintGuardedBy, UnlockedTouchFires) {
  LintRun run = RunLint(Fixture("guarded_by/bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("state.cc:8: guarded-by:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'Peek' touches 'value_'"), std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, ": guarded-by:"), 1) << run.output;
}

TEST(LintGuardedBy, LockSuffixAndRequiresLockStayQuiet) {
  LintRun run = RunLint(Fixture("guarded_by/good"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintGuardedBy, ReasonlessAllowIsItselfAViolation) {
  LintRun run = RunLint(Fixture("guarded_by/allow_bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("state.cc:8: bad-allow:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("state.cc:8: guarded-by:"), std::string::npos)
      << run.output;
}

TEST(LintBaseline, WriteThenReadSuppressesGrandfatheredViolations) {
  const std::string bl =
      "/tmp/galign_lint_baseline_" + std::to_string(::getpid()) + ".json";
  LintRun wrote = RunLint(Fixture("budget_discipline/bad") +
                          " --write-baseline=" + bl);
  EXPECT_EQ(wrote.exit_code, 0) << wrote.output;
  EXPECT_NE(wrote.output.find("baselined 3 violation(s)"), std::string::npos)
      << wrote.output;
  LintRun masked =
      RunLint(Fixture("budget_discipline/bad") + " --baseline=" + bl);
  EXPECT_EQ(masked.exit_code, 0) << masked.output;
  EXPECT_NE(masked.output.find("galign_lint: clean"), std::string::npos)
      << masked.output;
  // A missing baseline file is a usage error, not a silent pass.
  LintRun missing = RunLint(Fixture("budget_discipline/bad") +
                            " --baseline=/nonexistent/bl.json");
  EXPECT_EQ(missing.exit_code, 2) << missing.output;
  std::remove(bl.c_str());
}

TEST(LintJson, RepositoryTreeEmitsMachineReadableReport) {
  // JSON mode over the real tree: clean, and the fault-site coverage table
  // enumerates the src-instrumented sites with their arming-test counts.
  LintRun run =
      RunLint(std::string("--root ") + GALIGN_REPO_ROOT + " --format=json");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"clean\": true"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"violations\": []"), std::string::npos)
      << run.output;
  EXPECT_GE(CountOccurrences(run.output, "\"arming_tests\": "), 10)
      << "fault-site audit should enumerate the src-instrumented sites: "
      << run.output;
}

TEST(LintGate, FaultSiteAuditCoversEveryRepositorySite) {
  // The audit's own self-test: every site in the JSON table must report at
  // least one arming test file, so removing a site's arming test flips the
  // repository gate to exit 1 (proven live by the fault_audit/bad fixture).
  LintRun run = RunLint(std::string("--root ") + GALIGN_REPO_ROOT +
                        " --format=json");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "\"arming_tests\": 0"), 0)
      << run.output;
}

TEST(LintCli, BadRootExitsTwo) {
  LintRun run = RunLint("--root /nonexistent/galign-lint-test");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(LintGate, RepositoryTreeIsClean) {
  // The acceptance gate: zero violations over the real src/bench/examples/
  // tests/tools tree. A failure here prints the exact file:line: rule-id.
  LintRun run = RunLint(std::string("--root ") + GALIGN_REPO_ROOT);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("galign_lint: clean"), std::string::npos)
      << run.output;
}

}  // namespace
