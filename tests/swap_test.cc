// Hot-swap continuous-availability tests (DESIGN.md §13): the quarantine
// validation battery, AlignServer generation plumbing, the ArtifactWatcher
// detect → quarantine → validate → publish state machine, the poisoned-
// generation (never-retry) semantics, the health surface, and the shared
// keep-last-N + last-good-pin retention policy of AlignmentIndexStore and
// CheckpointManager. The invariant: a live server only ever answers from a
// generation that passed validation, and a bad publication costs a typed
// quarantine record, never availability.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>
#include <unistd.h>

#include "common/durable_io.h"
#include "common/fault.h"
#include "core/checkpoint.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "serve/alignment_index.h"
#include "serve/server.h"
#include "serve/swap/swap.h"

namespace galign {
namespace {

class SwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(23);
    auto g = BarabasiAlbert(50, 3, &rng).MoveValueOrDie();
    g = g.WithAttributes(BinaryAttributes(50, 8, 0.3, &rng)).MoveValueOrDie();
    NoisyCopyOptions opts;
    opts.structural_noise = 0.05;
    auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
    GAlignConfig config;
    config.epochs = 3;
    config.embedding_dim = 16;
    AlignmentIndexOptions options;
    options.anchor_k = 4;
    auto built =
        AlignmentIndex::Build(config, pair.source, pair.target, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = new std::shared_ptr<const AlignmentIndex>(built.ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_swap_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  const std::shared_ptr<const AlignmentIndex>& Index() { return *index_; }
  std::string Dir(const std::string& name) { return (dir_ / name).string(); }

  ServeConfig SmallConfig() {
    ServeConfig config;
    config.workers = 1;
    config.queue_capacity = 4;
    config.default_deadline_ms = 2000.0;
    return config;
  }

  /// A fast-polling (test-driven) watcher config.
  SwapConfig FastConfig() {
    SwapConfig config;
    config.poll_interval_ms = 1.0;
    return config;
  }

  /// Writes `payload` (CRC-trailered) as generation `gen` of `store`,
  /// bypassing Save — the chaos publisher's path.
  void PublishRaw(const AlignmentIndexStore& store, int gen,
                  const std::string& payload) {
    ASSERT_TRUE(
        AtomicWriteFile(store.GenerationPath(gen), AppendCrc32Trailer(payload))
            .ok());
  }

  /// Golden payload with one hex digit of the recipe's recorded ANN
  /// fingerprint flipped: loads must reject with a fingerprint mismatch.
  std::string FingerprintTampered() {
    std::string payload = Index()->Serialize();
    const size_t fp = payload.find("fingerprint ");
    EXPECT_NE(fp, std::string::npos);
    const size_t p = fp + std::string("fingerprint ").size();
    payload[p] = payload[p] == '7' ? '3' : '7';
    return payload;
  }

  /// Golden payload with one hex digit of theta[0] flipped: still parses
  /// (valid hex, valid CRC) but the anchors disagree with the rebuilt
  /// queries — only the quarantine anchor spot check catches it.
  std::string ThetaTampered() {
    std::string payload = Index()->Serialize();
    const size_t theta = payload.find("\ntheta ");
    EXPECT_NE(theta, std::string::npos);
    const size_t p = payload.find(' ', theta + 7) + 1;
    payload[p] = payload[p] == '7' ? '3' : '7';
    return payload;
  }

  std::filesystem::path dir_;
  static std::shared_ptr<const AlignmentIndex>* index_;
};

std::shared_ptr<const AlignmentIndex>* SwapTest::index_ = nullptr;

// --- Quarantine validation battery ---------------------------------------

TEST_F(SwapTest, ValidateCandidateAcceptsGoldenArtifact) {
  const ValidationOutcome verdict = ValidateCandidate(*Index(), SwapConfig{});
  EXPECT_TRUE(verdict.ok) << QuarantineReasonName(verdict.reason) << ": "
                          << verdict.detail;
  EXPECT_GT(verdict.latency_ms, 0.0);
}

TEST_F(SwapTest, ValidateCandidateCatchesAnchorDisagreement) {
  // A reload of a theta-tampered artifact: parses fine, answers wrong.
  auto tampered = AlignmentIndex::Parse(ThetaTampered(), "theta-tampered");
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  const ValidationOutcome verdict =
      ValidateCandidate(*tampered.ValueOrDie(), SwapConfig{});
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.reason, QuarantineReason::kAnchorMismatch);
  EXPECT_NE(verdict.detail.find("anchor row"), std::string::npos)
      << verdict.detail;
}

TEST_F(SwapTest, ValidateCandidateSmokeLatencyBound) {
  SwapConfig config;
  config.smoke_latency_ms = 0.0;  // nothing is fast enough
  const ValidationOutcome verdict = ValidateCandidate(*Index(), config);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.reason, QuarantineReason::kSmokeLatency);
}

// --- AlignServer generation plumbing -------------------------------------

TEST_F(SwapTest, InFlightRequestsFinishOnAdmissionGeneration) {
  // Admit requests against generation 1, swap to generation 2 before any
  // worker runs: the queued requests must answer from (and be stamped
  // with) the artifact they were admitted against.
  auto second = AlignmentIndex::Parse(Index()->Serialize(), "gen2");
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  AlignServer server(Index(), SmallConfig(), /*generation=*/1);
  std::vector<std::future<QueryResponse>> queued;
  for (int i = 0; i < 3; ++i) {
    QueryRequest request;
    request.node = i;
    queued.push_back(server.Submit(request));
  }
  server.SwapIndex(second.ValueOrDie(), /*generation=*/2);
  EXPECT_EQ(server.serving_generation(), 2);
  EXPECT_EQ(server.Snapshot().swaps, 1u);
  server.Start();
  for (auto& future : queued) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.generation, 1);
  }
  // New admissions see the new generation.
  QueryRequest request;
  request.node = 0;
  QueryResponse fresh = server.SubmitAndWait(request);
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_EQ(fresh.generation, 2);
}

TEST_F(SwapTest, SwapRetiresOldArtifactOnceInFlightDrains) {
  auto second = AlignmentIndex::Parse(Index()->Serialize(), "gen2");
  ASSERT_TRUE(second.ok());
  std::weak_ptr<const AlignmentIndex> old_alive;
  {
    std::shared_ptr<const AlignmentIndex> old_copy =
        AlignmentIndex::Parse(Index()->Serialize(), "gen1").ValueOrDie();
    old_alive = old_copy;
    AlignServer server(std::move(old_copy), SmallConfig(), 1);
    server.Start();
    QueryRequest request;
    request.node = 1;
    EXPECT_TRUE(server.SubmitAndWait(request).status.ok());
    EXPECT_FALSE(old_alive.expired());  // server still holds it
    server.SwapIndex(second.ValueOrDie(), 2);
    // No request in flight: the swap dropped the server's reference, and
    // the worker's transient Pending copy drains within moments.
    Timer wait;
    while (!old_alive.expired() && wait.Seconds() < 5.0) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(old_alive.expired());
    EXPECT_TRUE(server.SubmitAndWait(request).status.ok());
    server.Shutdown();
  }
}

// --- ArtifactWatcher: publish path ---------------------------------------

TEST_F(SwapTest, WatcherPublishesNewGenerationAndRecordsHistory) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  int gen = 0;
  auto loaded = store.LoadLatest(RunContext(), &gen);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(gen, 1);

  AlignServer server(loaded.ValueOrDie(), SmallConfig(), gen);
  server.Start();
  ArtifactWatcher watcher(&server, &store, FastConfig());
  EXPECT_FALSE(watcher.PollOnce());  // nothing newer than serving

  ASSERT_TRUE(store.Save(*Index()).ok());  // generation 2 appears
  EXPECT_TRUE(watcher.PollOnce());
  EXPECT_EQ(server.serving_generation(), 2);
  EXPECT_EQ(store.pinned_generation(), 2);  // last-good re-pinned

  const SwapHealth health = watcher.Health();
  EXPECT_TRUE(health.ready);
  EXPECT_EQ(health.serving_generation, 2);
  EXPECT_EQ(health.newest_seen_generation, 2);
  EXPECT_EQ(health.candidate_generation, 0);
  ASSERT_EQ(health.swaps.size(), 1u);
  EXPECT_EQ(health.swaps[0].from_generation, 1);
  EXPECT_EQ(health.swaps[0].to_generation, 2);
  EXPECT_GE(health.swaps[0].quarantine_ms, 0.0);
  EXPECT_TRUE(health.quarantined.empty());
  EXPECT_EQ(health.stats.swaps, 1u);

  // Queries answer from the new generation.
  QueryRequest request;
  request.node = 3;
  QueryResponse response = server.SubmitAndWait(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.generation, 2);
  EXPECT_NE(FormatHealth(health).find("serving_generation: 2"),
            std::string::npos);
}

TEST_F(SwapTest, BackgroundWatcherThreadPublishes) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  int gen = 0;
  auto loaded = store.LoadLatest(RunContext(), &gen);
  ASSERT_TRUE(loaded.ok());

  AlignServer server(loaded.ValueOrDie(), SmallConfig(), gen);
  server.Start();
  ArtifactWatcher watcher(&server, &store, FastConfig());
  watcher.Start();
  ASSERT_TRUE(store.Save(*Index()).ok());
  Timer wait;
  while (server.serving_generation() != 2 && wait.Seconds() < 10.0) {
    std::this_thread::yield();
  }
  watcher.Stop();
  EXPECT_EQ(server.serving_generation(), 2);
}

// --- ArtifactWatcher: quarantine + poisoned generations ------------------

TEST_F(SwapTest, TornCandidateIsPoisonedAndNeverRetried) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  AlignServer server(loaded.ValueOrDie(), SmallConfig(), 1);
  server.Start();
  ArtifactWatcher watcher(&server, &store, FastConfig());

  {
    std::ofstream torn(store.GenerationPath(2),
                       std::ios::trunc | std::ios::binary);
    torn << "crashed mid-write";
  }
  EXPECT_FALSE(watcher.PollOnce());
  EXPECT_TRUE(watcher.IsPoisoned(2));
  EXPECT_EQ(server.serving_generation(), 1);  // still on last-good

  // Poisoned means *never retried*: subsequent passes do not reload it.
  const int loads_after_poison = fault::CallCount("serve.artifact.load");
  EXPECT_FALSE(watcher.PollOnce());
  EXPECT_FALSE(watcher.PollOnce());
  EXPECT_EQ(fault::CallCount("serve.artifact.load"), loads_after_poison);

  const SwapHealth health = watcher.Health();
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].generation, 2);
  EXPECT_EQ(health.quarantined[0].reason, QuarantineReason::kLoadFailed);
  EXPECT_FALSE(health.quarantined[0].detail.empty());

  // A good generation published *after* the poisoned one still lands.
  PublishRaw(store, 3, Index()->Serialize());
  EXPECT_TRUE(watcher.PollOnce());
  EXPECT_EQ(server.serving_generation(), 3);
}

TEST_F(SwapTest, FingerprintTamperedCandidateQuarantinedTyped) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  AlignServer server(loaded.ValueOrDie(), SmallConfig(), 1);
  ArtifactWatcher watcher(&server, &store, FastConfig());

  PublishRaw(store, 2, FingerprintTampered());
  EXPECT_FALSE(watcher.PollOnce());
  const SwapHealth health = watcher.Health();
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].reason,
            QuarantineReason::kFingerprintMismatch);
  EXPECT_EQ(server.serving_generation(), 1);
}

TEST_F(SwapTest, AnchorDisagreementQuarantinedTyped) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  AlignServer server(loaded.ValueOrDie(), SmallConfig(), 1);
  ArtifactWatcher watcher(&server, &store, FastConfig());

  PublishRaw(store, 2, ThetaTampered());
  EXPECT_FALSE(watcher.PollOnce());
  const SwapHealth health = watcher.Health();
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].reason, QuarantineReason::kAnchorMismatch);
  EXPECT_EQ(server.serving_generation(), 1);
}

TEST_F(SwapTest, SwapFaultSitesQuarantineTyped) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  AlignServer server(loaded.ValueOrDie(), SmallConfig(), 1);
  ArtifactWatcher watcher(&server, &store, FastConfig());

  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;

  // Detect fault: the pass is skipped, nothing is poisoned, and the next
  // clean pass publishes — detection has no candidate to blame.
  PublishRaw(store, 2, Index()->Serialize());
  fault::Arm("serve.swap.detect", spec);
  EXPECT_FALSE(watcher.PollOnce());
  EXPECT_TRUE(watcher.Health().quarantined.empty());
  fault::DisarmAll();
  EXPECT_TRUE(watcher.PollOnce());
  EXPECT_EQ(server.serving_generation(), 2);

  // Validate fault poisons the candidate with its own typed reason.
  PublishRaw(store, 3, Index()->Serialize());
  fault::Arm("serve.swap.validate", spec);
  EXPECT_FALSE(watcher.PollOnce());
  fault::DisarmAll();
  ASSERT_TRUE(watcher.IsPoisoned(3));
  EXPECT_EQ(server.serving_generation(), 2);

  // Publish fault likewise; the server never saw either candidate.
  PublishRaw(store, 4, Index()->Serialize());
  fault::Arm("serve.swap.publish", spec);
  EXPECT_FALSE(watcher.PollOnce());
  fault::DisarmAll();
  ASSERT_TRUE(watcher.IsPoisoned(4));
  EXPECT_EQ(server.serving_generation(), 2);

  const SwapHealth health = watcher.Health();
  ASSERT_EQ(health.quarantined.size(), 2u);
  EXPECT_EQ(health.quarantined[0].reason, QuarantineReason::kValidateFault);
  EXPECT_EQ(health.quarantined[1].reason, QuarantineReason::kPublishFault);

  // A later good generation still publishes past both poisoned ones.
  PublishRaw(store, 5, Index()->Serialize());
  EXPECT_TRUE(watcher.PollOnce());
  EXPECT_EQ(server.serving_generation(), 5);
}

TEST_F(SwapTest, CandidateOverBudgetQuarantinedAsMemory) {
  AlignmentIndexStore store(Dir("aidx"));
  ASSERT_TRUE(store.Save(*Index()).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  AlignServer server(loaded.ValueOrDie(), SmallConfig(), 1);
  SwapConfig config = FastConfig();
  config.budget = std::make_shared<MemoryBudget>(uint64_t{1} << 10);  // 1 KiB
  ArtifactWatcher watcher(&server, &store, config);

  PublishRaw(store, 2, Index()->Serialize());
  EXPECT_FALSE(watcher.PollOnce());
  const SwapHealth health = watcher.Health();
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].reason, QuarantineReason::kMemoryBudget);
  EXPECT_EQ(server.serving_generation(), 1);
  // The rejected candidate's reservation was fully released.
  EXPECT_EQ(config.budget->reserved(), 0u);
}

// --- Retention: keep-last-N + last-good pin + torn GC --------------------

TEST_F(SwapTest, StoreRetentionKeepsNewestAndPinned) {
  AlignmentIndexStore store(Dir("aidx"), /*keep=*/2);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(store.Save(*Index()).ok());
  // keep=2, no pin: only generations 3 and 4 survive.
  EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(1)));
  EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(2)));
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(3)));
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(4)));

  // Pin 3 (the generation a live server answers from), publish two more:
  // 3 outlives the keep window.
  store.SetPinnedGeneration(3);
  ASSERT_TRUE(store.Save(*Index()).ok());
  ASSERT_TRUE(store.Save(*Index()).ok());
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(3)));
  EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(4)));
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(5)));
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(6)));

  // The survivors all still load.
  auto latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
}

TEST_F(SwapTest, StoreRetentionCollectsTornOnlyWithValidSurvivor) {
  AlignmentIndexStore store(Dir("aidx"), /*keep=*/2);
  ASSERT_TRUE(store.Save(*Index()).ok());
  {
    std::ofstream torn(store.GenerationPath(2),
                       std::ios::trunc | std::ios::binary);
    torn << "bit rot";
  }
  // The next Save's retention pass garbage-collects the torn file because
  // generation 1 (and now 3) are valid survivors.
  ASSERT_TRUE(store.Save(*Index()).ok());
  EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(2)));
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(1)));
  EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(3)));
  // The all-torn → IOError contract is untouched: LoadLatest never turns
  // "every generation torn" into a silent cold start (serve_test covers
  // that path; here every survivor is valid).
  EXPECT_TRUE(store.LoadLatest().ok());
}

TEST_F(SwapTest, CheckpointManagerSharesRetentionPolicy) {
  CheckpointManager mgr(Dir("ckpt"), /*keep=*/2);
  TrainerCheckpoint ckpt;
  ckpt.weights.push_back(Matrix(2, 2, 1.0));
  for (int epoch = 1; epoch <= 4; ++epoch) {
    ckpt.epoch = epoch;
    ASSERT_TRUE(mgr.Save(ckpt).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000001"));
  EXPECT_FALSE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000002"));
  EXPECT_TRUE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000003"));
  EXPECT_TRUE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000004"));

  // Pinned epoch survives past the keep window, exactly like the store.
  mgr.SetPinnedEpoch(3);
  for (int epoch = 5; epoch <= 6; ++epoch) {
    ckpt.epoch = epoch;
    ASSERT_TRUE(mgr.Save(ckpt).ok());
  }
  EXPECT_TRUE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000003"));
  EXPECT_FALSE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000004"));
  EXPECT_TRUE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000005"));
  EXPECT_TRUE(std::filesystem::exists(Dir("ckpt") + "/ckpt_00000006"));
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.ValueOrDie().epoch, 6);
  EXPECT_EQ(mgr.pinned_epoch(), 6);  // LoadLatest re-pins what it returned
}

}  // namespace
}  // namespace galign
