// Durable IO primitives (DESIGN.md §8): atomic replace semantics, CRC32
// trailer validation, and bounded transient-fault retry.
#include "common/durable_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

namespace galign {
namespace {

class DurableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_durable_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(DurableIoTest, Crc32MatchesCheckValue) {
  // The standard CRC-32 (IEEE, reflected) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST_F(DurableIoTest, AtomicWriteCreatesThenReplaces) {
  const std::string path = Path("f.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "first\n").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "first\n");
  ASSERT_TRUE(AtomicWriteFile(path, "second\n").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "second\n");

  // No temp droppings: the directory holds exactly the target file.
  int entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1);
}

TEST_F(DurableIoTest, AtomicWriteFailsCleanlyIntoMissingDirectory) {
  Status st = AtomicWriteFile(Path("no/such/dir/f.txt"), "x");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST_F(DurableIoTest, ReadMissingFileIsIOError) {
  auto r = ReadFileToString(Path("missing.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(DurableIoTest, TrailerRoundTrips) {
  const std::string payload = "line one\nline two\n";
  const std::string stamped = AppendCrc32Trailer(payload);
  auto stripped = StripAndVerifyCrc32Trailer(stamped,
                                             /*require_trailer=*/true, "test");
  ASSERT_TRUE(stripped.ok()) << stripped.status().ToString();
  EXPECT_EQ(stripped.ValueOrDie(), payload);
}

TEST_F(DurableIoTest, TrailerCoversAddedFinalNewline) {
  // A payload without a trailing newline gets one, and the CRC covers it.
  const std::string stamped = AppendCrc32Trailer("no newline");
  auto stripped = StripAndVerifyCrc32Trailer(stamped,
                                             /*require_trailer=*/true, "test");
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.ValueOrDie(), "no newline\n");
}

TEST_F(DurableIoTest, TrailerDetectsCorruption) {
  std::string stamped = AppendCrc32Trailer("precious payload\n");
  stamped[3] ^= 0x01;  // single bit flip in the payload
  auto r = StripAndVerifyCrc32Trailer(stamped, /*require_trailer=*/false,
                                      "test");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum mismatch"), std::string::npos);
}

TEST_F(DurableIoTest, TrailerDetectsTruncation) {
  // Truncating the payload while keeping the trailer must fail the CRC.
  const std::string stamped = AppendCrc32Trailer("aaaa\nbbbb\ncccc\n");
  const std::string truncated = stamped.substr(0, 5) + stamped.substr(10);
  auto r = StripAndVerifyCrc32Trailer(truncated, /*require_trailer=*/true,
                                      "test");
  ASSERT_FALSE(r.ok());
}

TEST_F(DurableIoTest, MissingTrailerPolicies) {
  const std::string legacy = "old format content\n";
  // Optional: legacy files pass through untouched.
  auto pass = StripAndVerifyCrc32Trailer(legacy, /*require_trailer=*/false,
                                         "test");
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass.ValueOrDie(), legacy);
  // Required (checkpoints, manifests, bench cells): missing is an error.
  auto fail = StripAndVerifyCrc32Trailer(legacy, /*require_trailer=*/true,
                                         "test");
  ASSERT_FALSE(fail.ok());
  EXPECT_NE(fail.status().message().find("missing"), std::string::npos);
}

TEST_F(DurableIoTest, RetryTransientRecoversFromTransientFault) {
  RetryPolicy fast;
  fast.base_backoff_ms = 0.01;
  fast.max_backoff_ms = 0.02;
  int calls = 0;
  Status st = RetryTransient(fast, [&] {
    return ++calls < 3 ? Status::IOError("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST_F(DurableIoTest, RetryTransientDoesNotRetryNonIOErrors) {
  int calls = 0;
  Status st = RetryTransient(RetryPolicy{}, [&] {
    ++calls;
    return Status::InvalidArgument("deterministic");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // retrying a parse error cannot help
}

TEST_F(DurableIoTest, RetryTransientGivesUpAfterMaxAttempts) {
  RetryPolicy fast;
  fast.max_attempts = 4;
  fast.base_backoff_ms = 0.01;
  fast.max_backoff_ms = 0.02;
  int calls = 0;
  Status st = RetryTransient(fast, [&] {
    ++calls;
    return Status::IOError("persistent");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 4);
}

TEST_F(DurableIoTest, RetryTransientResultCarriesValueThrough) {
  RetryPolicy fast;
  fast.base_backoff_ms = 0.01;
  fast.max_backoff_ms = 0.02;
  int calls = 0;
  auto r = RetryTransientResult(fast, [&]() -> Result<int> {
    if (++calls < 2) return Status::IOError("flaky");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace galign
