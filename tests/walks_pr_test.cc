// Tests for the node2vec biased walks and the threshold precision/recall
// metrics added beyond the core reproduction.
#include <gtest/gtest.h>

#include "align/metrics.h"
#include "baselines/walks.h"
#include "graph/generators.h"

namespace galign {
namespace {

AttributedGraph TestGraph(uint64_t seed, int64_t n = 100) {
  Rng rng(seed);
  return BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
}

TEST(Node2VecTest, WalksFollowEdges) {
  AttributedGraph g = TestGraph(1);
  WalkConfig cfg;
  cfg.walks_per_node = 2;
  cfg.walk_length = 12;
  Rng rng(2);
  auto walks = Node2VecWalks(g, cfg, 0.5, 2.0, &rng);
  EXPECT_EQ(walks.size(), static_cast<size_t>(2 * g.num_nodes()));
  for (const auto& w : walks) {
    for (size_t i = 1; i < w.size(); ++i) {
      ASSERT_TRUE(g.HasEdge(w[i - 1], w[i]));
    }
  }
}

TEST(Node2VecTest, UnitPQBehavesLikeUniform) {
  // p = q = 1: same distributional behaviour as a uniform walk (check via
  // mean revisit rate over many walks, loose tolerance).
  AttributedGraph g = TestGraph(3, 60);
  WalkConfig cfg;
  cfg.walks_per_node = 20;
  cfg.walk_length = 10;
  auto revisit_rate = [&](const std::vector<std::vector<int64_t>>& walks) {
    int64_t revisits = 0, steps = 0;
    for (const auto& w : walks) {
      for (size_t i = 2; i < w.size(); ++i) {
        ++steps;
        if (w[i] == w[i - 2]) ++revisits;
      }
    }
    return steps == 0 ? 0.0 : static_cast<double>(revisits) / steps;
  };
  Rng r1(4), r2(4);
  double uniform = revisit_rate(UniformWalks(g, cfg, &r1));
  double n2v = revisit_rate(Node2VecWalks(g, cfg, 1.0, 1.0, &r2));
  EXPECT_NEAR(uniform, n2v, 0.05);
}

TEST(Node2VecTest, LowPIncreasesBacktracking) {
  AttributedGraph g = TestGraph(5, 60);
  WalkConfig cfg;
  cfg.walks_per_node = 20;
  cfg.walk_length = 10;
  auto backtrack_rate = [&](double p, double q) {
    Rng rng(6);
    auto walks = Node2VecWalks(g, cfg, p, q, &rng);
    int64_t back = 0, steps = 0;
    for (const auto& w : walks) {
      for (size_t i = 2; i < w.size(); ++i) {
        ++steps;
        if (w[i] == w[i - 2]) ++back;
      }
    }
    return static_cast<double>(back) / steps;
  };
  // p << 1 rewards returning to the previous node.
  EXPECT_GT(backtrack_rate(0.1, 1.0), backtrack_rate(10.0, 1.0) + 0.05);
}

TEST(PrecisionRecallTest, PerfectPredictionsAtTightThreshold) {
  Matrix s(4, 4, 0.0);
  std::vector<int64_t> gt{0, 1, 2, 3};
  for (int64_t v = 0; v < 4; ++v) s(v, v) = 1.0;
  PrecisionRecall pr = EvaluateThreshold(s, gt, 0.5);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.f1, 1.0);
  EXPECT_EQ(pr.predicted, 4);
}

TEST(PrecisionRecallTest, LooseThresholdTradesPrecisionForRecall) {
  Rng rng(7);
  Matrix s = Matrix::Uniform(20, 20, &rng);
  std::vector<int64_t> gt(20);
  for (int64_t v = 0; v < 20; ++v) {
    gt[v] = v;
    s(v, v) = 0.9 + 0.1 * rng.Uniform();  // true anchors score high
  }
  PrecisionRecall tight = EvaluateThreshold(s, gt, 0.95);
  PrecisionRecall loose = EvaluateThreshold(s, gt, 0.5);
  EXPECT_GE(loose.recall, tight.recall);
  EXPECT_GE(tight.precision, loose.precision);
}

TEST(PrecisionRecallTest, UnanchoredRowsHurtPrecisionOnly) {
  Matrix s(2, 2, 0.0);
  s(0, 0) = 1.0;  // anchored, correct
  s(1, 1) = 1.0;  // unanchored prediction
  std::vector<int64_t> gt{0, -1};
  PrecisionRecall pr = EvaluateThreshold(s, gt, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
}

TEST(PrecisionRecallTest, BestF1FindsSeparatingThreshold) {
  // Scores perfectly separable: anchors at 0.9, noise at 0.1 -> best F1 = 1.
  Matrix s(10, 10, 0.1);
  std::vector<int64_t> gt(10);
  for (int64_t v = 0; v < 10; ++v) {
    gt[v] = (v + 3) % 10;
    s(v, gt[v]) = 0.9;
  }
  PrecisionRecall best = BestF1(s, gt);
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
}

TEST(PrecisionRecallTest, EmptyPredictionIsZero) {
  Matrix s(3, 3, 0.0);
  std::vector<int64_t> gt{0, 1, 2};
  PrecisionRecall pr = EvaluateThreshold(s, gt, 10.0);
  EXPECT_EQ(pr.predicted, 0);
  EXPECT_DOUBLE_EQ(pr.f1, 0.0);
}

}  // namespace
}  // namespace galign
