// Tests for the semi-supervised GAlign extension (seed-anchor loss).
#include <gtest/gtest.h>

#include "align/metrics.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair HardPair(uint64_t seed, int64_t n = 60) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 6, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = 0.35;  // heavy violation regime
  opts.attribute_noise = 0.30;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

GAlignConfig FastConfig() {
  GAlignConfig cfg;
  cfg.epochs = 25;
  cfg.embedding_dim = 16;
  cfg.refinement_iterations = 3;
  return cfg;
}

TEST(SemiSupervisedTest, ZeroWeightIgnoresSeeds) {
  AlignmentPair pair = HardPair(1);
  Supervision sup;
  for (int64_t v = 0; v < 10; ++v) sup.seeds.emplace_back(v, pair.ground_truth[v]);
  GAlignConfig cfg = FastConfig();  // seed_loss_weight = 0
  GAlignAligner with_seeds(cfg), without_seeds(cfg);
  auto s1 = with_seeds.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = without_seeds.Align(pair.source, pair.target, {}).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(s1, s2), 1e-12);
}

TEST(SemiSupervisedTest, SeedLossChangesOutput) {
  AlignmentPair pair = HardPair(2);
  Supervision sup;
  for (int64_t v = 0; v < 10; ++v) sup.seeds.emplace_back(v, pair.ground_truth[v]);
  GAlignConfig cfg = FastConfig();
  cfg.seed_loss_weight = 1.0;
  GAlignAligner supervised(cfg);
  GAlignAligner unsupervised(FastConfig());
  auto s1 = supervised.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = unsupervised.Align(pair.source, pair.target, {}).MoveValueOrDie();
  EXPECT_GT(Matrix::MaxAbsDiff(s1, s2), 1e-9);
}

TEST(SemiSupervisedTest, SeedsImproveHardAlignment) {
  // Averaged over pairs: seeding should not hurt and typically helps in the
  // heavy-noise regime.
  double sup_total = 0, unsup_total = 0;
  for (uint64_t trial = 0; trial < 3; ++trial) {
    AlignmentPair pair = HardPair(10 + trial);
    Supervision sup = [&] {
      Rng rng(99 + trial);
      return SampleSeeds(pair.ground_truth, 0.2, &rng);
    }();
    GAlignConfig cfg = FastConfig();
    cfg.seed_loss_weight = 2.0;
    GAlignAligner supervised(cfg);
    GAlignAligner unsupervised(FastConfig());
    auto s1 = supervised.Align(pair.source, pair.target, sup).MoveValueOrDie();
    auto s2 =
        unsupervised.Align(pair.source, pair.target, {}).MoveValueOrDie();
    sup_total += ComputeMetrics(s1, pair.ground_truth).map;
    unsup_total += ComputeMetrics(s2, pair.ground_truth).map;
  }
  EXPECT_GT(sup_total, unsup_total - 0.05);
}

TEST(SemiSupervisedTest, RejectsOutOfRangeSeeds) {
  AlignmentPair pair = HardPair(3, 30);
  Supervision sup;
  sup.seeds = {{500, 0}};
  GAlignConfig cfg = FastConfig();
  cfg.seed_loss_weight = 1.0;
  GAlignAligner aligner(cfg);
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, sup).ok());
}

TEST(SemiSupervisedTest, SeedPairsEndUpClose) {
  AlignmentPair pair = HardPair(4);
  Supervision sup;
  for (int64_t v = 0; v < 12; ++v) {
    sup.seeds.emplace_back(v, pair.ground_truth[v]);
  }
  GAlignConfig cfg = FastConfig();
  cfg.seed_loss_weight = 3.0;
  cfg.use_refinement = false;  // inspect raw aggregated similarities
  GAlignAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target, sup).MoveValueOrDie();
  // Seeded pairs should score higher than the average entry of their row.
  int64_t wins = 0;
  for (const auto& [v, u] : sup.seeds) {
    double row_mean = 0;
    for (int64_t c = 0; c < s.cols(); ++c) row_mean += s(v, c);
    row_mean /= static_cast<double>(s.cols());
    if (s(v, u) > row_mean) ++wins;
  }
  EXPECT_GE(wins, 10);
}

}  // namespace
}  // namespace galign
