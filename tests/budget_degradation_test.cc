// End-to-end budget governance (DESIGN.md §9):
//  - the pipeline degrades GAlign/REGAL to the chunked top-k path when the
//    dense run does not fit, with peak tracked bytes under the cap and
//    Success@1 within tolerance of the unbudgeted run;
//  - an unbudgeted context changes nothing;
//  - the MemoryTracker gauge agrees with an independent shadow count of
//    every matrix allocation across a full GAlign train+refine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "align/pipeline.h"
#include "baselines/regal.h"
#include "core/galign.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair SmallWorkload(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto g = ErdosRenyi(n, 6.0 / static_cast<double>(n), &rng,
                      BinaryAttributes(n, 8, 0.3, &rng))
               .MoveValueOrDie();
  NoisyCopyOptions opts;
  opts.structural_noise = 0.05;
  opts.attribute_noise = 0.05;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

GAlignConfig SmallGAlign() {
  GAlignConfig cfg;
  cfg.epochs = 5;
  cfg.embedding_dim = 8;
  cfg.refinement_iterations = 2;
  return cfg;
}

TEST(BudgetDegradationTest, GAlignDegradesAndStaysAccurate) {
  AlignmentPair pair = SmallWorkload(300, 21);

  GAlignAligner baseline(SmallGAlign());
  Rng rng1(7);
  RunResult dense = RunAligner(&baseline, pair, 0.0, &rng1);
  ASSERT_TRUE(dense.status.ok()) << dense.status.ToString();
  EXPECT_FALSE(dense.degraded_chunked);

  // A budget below the dense estimate but above the chunked working set.
  GAlignAligner budgeted(SmallGAlign());
  const uint64_t dense_estimate = budgeted.EstimatePeakBytes(
      pair.source.num_nodes(), pair.target.num_nodes(),
      pair.source.attributes().cols());
  const uint64_t cap = dense_estimate - DenseBytes(pair.source.num_nodes(),
                                                   pair.target.num_nodes()) /
                                            2;
  ASSERT_LT(cap, dense_estimate);
  RunContext ctx = RunContext::WithMemoryBudget(cap);
  Rng rng2(7);
  RunResult degraded = RunAligner(&budgeted, pair, 0.0, &rng2, ctx);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.degraded_chunked);
  EXPECT_EQ(degraded.budget_bytes, cap);
  EXPECT_LE(degraded.peak_alloc_bytes, cap);
  EXPECT_GT(degraded.peak_alloc_bytes, 0u);

  // Same seed, same training: the compressed ranking must agree with the
  // dense one (2% tolerance covers tie-ordering differences).
  EXPECT_NEAR(degraded.metrics.success_at_1, dense.metrics.success_at_1, 0.02);
  EXPECT_NEAR(degraded.metrics.success_at_10, dense.metrics.success_at_10,
              0.02);
}

TEST(BudgetDegradationTest, RegalDegradesAndStaysAccurate) {
  AlignmentPair pair = SmallWorkload(300, 22);

  RegalAligner baseline;
  Rng rng1(9);
  RunResult dense = RunAligner(&baseline, pair, 0.0, &rng1);
  ASSERT_TRUE(dense.status.ok()) << dense.status.ToString();

  RegalAligner budgeted;
  const uint64_t dense_estimate = budgeted.EstimatePeakBytes(
      pair.source.num_nodes(), pair.target.num_nodes(),
      pair.source.attributes().cols());
  const uint64_t cap =
      dense_estimate -
      DenseBytes(pair.source.num_nodes(), pair.target.num_nodes());
  RunContext ctx = RunContext::WithMemoryBudget(cap);
  Rng rng2(9);
  RunResult degraded = RunAligner(&budgeted, pair, 0.0, &rng2, ctx);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.degraded_chunked);
  EXPECT_LE(degraded.peak_alloc_bytes, cap);
  EXPECT_NEAR(degraded.metrics.success_at_1, dense.metrics.success_at_1, 0.02);
}

TEST(BudgetDegradationTest, NoBudgetMeansNoBehaviorChange) {
  AlignmentPair pair = SmallWorkload(60, 23);
  GAlignAligner a1(SmallGAlign());
  GAlignAligner a2(SmallGAlign());
  Rng rng1(3), rng2(3);
  RunResult unbounded = RunAligner(&a1, pair, 0.0, &rng1);
  RunResult plain = RunAligner(&a2, pair, 0.0, &rng2, RunContext());
  ASSERT_TRUE(unbounded.status.ok());
  ASSERT_TRUE(plain.status.ok());
  EXPECT_FALSE(unbounded.degraded_chunked);
  EXPECT_FALSE(plain.degraded_chunked);
  EXPECT_EQ(unbounded.budget_bytes, 0u);
  EXPECT_DOUBLE_EQ(unbounded.metrics.success_at_1, plain.metrics.success_at_1);
  EXPECT_DOUBLE_EQ(unbounded.metrics.map, plain.metrics.map);
}

TEST(BudgetDegradationTest, ImpossibleBudgetFailsCleanly) {
  AlignmentPair pair = SmallWorkload(80, 24);
  GAlignAligner a(SmallGAlign());
  RunContext ctx = RunContext::WithMemoryBudget(1024);  // 1 KiB: hopeless
  Rng rng(5);
  RunResult r = RunAligner(&a, pair, 0.0, &rng, ctx);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(r.degraded_chunked);
}

// --- Shadow-accounting property test --------------------------------------

struct ShadowCounter {
  uint64_t live = 0;
  uint64_t peak = 0;
  int64_t events = 0;
};

void ShadowTrace(int64_t delta, uint64_t live_after, void* user) {
  auto* s = static_cast<ShadowCounter*>(user);
  (void)delta;
  s->live = live_after;
  s->peak = std::max(s->peak, live_after);
  ++s->events;
}

TEST(BudgetDegradationTest, TrackerAgreesWithShadowCount) {
  AlignmentPair pair = SmallWorkload(80, 25);

  MemoryTracker::ResetPeak();
  ShadowCounter shadow;
  shadow.live = MemoryTracker::LiveBytes();
  shadow.peak = MemoryTracker::PeakBytes();
  MemoryTracker::SetTrace(&ShadowTrace, &shadow);

  {
    GAlignAligner a(SmallGAlign());
    auto r = a.Align(pair.source, pair.target, Supervision{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  MemoryTracker::SetTrace(nullptr, nullptr);
  EXPECT_GT(shadow.events, 0);
  // Every allocation/free went through the trace, so the shadow's view of
  // live bytes and the peak water mark must equal the tracker gauge.
  EXPECT_EQ(shadow.live, MemoryTracker::LiveBytes());
  EXPECT_EQ(shadow.peak, MemoryTracker::PeakBytes());
  // Training a 3-layer GCN on 80+80 nodes certainly allocated more than the
  // final alignment matrix alone.
  EXPECT_GT(shadow.peak, DenseBytes(80, 80));
}

}  // namespace
}  // namespace galign
