// Recall property test for the ANN retrieval layer (DESIGN.md §11): on
// generated workloads with meaningful neighborhood structure, the measured
// recall of ANN top-k against the exact chunked top-k must meet the
// policy's recall target, for both backends, across seeds. The exact path
// is the oracle — the same role it plays in ComputeMetricsTopK evaluation.
//
// Everything here is seeded, so a passing configuration passes forever;
// there is no statistical flake margin hiding in the assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/naive.h"
#include "common/rng.h"
#include "graph/ann/ann.h"
#include "graph/ann/ann_index.h"
#include "graph/generators.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {
namespace {

// Unit rows clustered around `clusters` random centers with per-row noise —
// the planted-neighborhood workload where retrieval quality is measurable
// (uniform random points have no neighbors worth recalling). The query and
// base sides of a workload share `center_seed` (so queries actually have
// near neighbors in the base) and differ in `noise_seed`.
Matrix ClusteredRows(int64_t n, int64_t d, int64_t clusters, double noise,
                     uint64_t center_seed, uint64_t noise_seed) {
  Rng crng(center_seed);
  Matrix centers = Matrix::Gaussian(clusters, d, &crng);
  centers.NormalizeRows();
  Rng nrng(noise_seed);
  Matrix out = Matrix::Gaussian(n, d, &nrng);
  for (int64_t r = 0; r < n; ++r) {
    const double* c = centers.row_data(r % clusters);
    double* o = out.row_data(r);
    for (int64_t j = 0; j < d; ++j) o[j] = c[j] + noise * o[j];
  }
  out.NormalizeRows();
  return out;
}

// |ann top-k ∩ exact top-k| / |exact top-k|, over the rows both computed.
double MeasuredRecall(const TopKAlignment& exact, const TopKAlignment& ann) {
  int64_t denom = 0, hits = 0;
  const int64_t rows = std::min(exact.rows_computed, ann.rows_computed);
  for (int64_t v = 0; v < rows; ++v) {
    for (int64_t j = 0; j < exact.k; ++j) {
      const int64_t want = exact.index[v * exact.k + j];
      if (want < 0) continue;
      ++denom;
      for (int64_t i = 0; i < ann.k; ++i) {
        if (ann.index[v * ann.k + i] == want) {
          ++hits;
          break;
        }
      }
    }
  }
  return denom == 0 ? 1.0 : static_cast<double>(hits) / denom;
}

TEST(AnnRecallTest, MeetsTargetOnClusteredWorkloadsBothBackends) {
  const int64_t k = 8;
  struct Case {
    int64_t n1, n2, d, clusters;
    double noise;
    uint64_t seed;
  };
  const Case cases[] = {
      {900, 1200, 24, 30, 0.05, 101},
      {700, 1000, 16, 25, 0.08, 202},
  };
  for (const Case& c : cases) {
    std::vector<Matrix> ht = {ClusteredRows(c.n2, c.d, c.clusters, c.noise,
                                            c.seed, c.seed + 11)};
    std::vector<Matrix> hs = {ClusteredRows(c.n1, c.d, c.clusters, c.noise,
                                            c.seed, c.seed + 12)};
    auto exact = ChunkedEmbeddingTopK(hs, ht, {1.0}, k, RunContext());
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    for (AnnBackend backend : {AnnBackend::kLsh, AnnBackend::kHnsw}) {
      AnnPolicy policy;
      policy.mode = AnnMode::kOn;
      policy.recall_target = 0.98;
      policy.config.backend = backend;
      auto ann = AnnEmbeddingTopK(hs, ht, {1.0}, k, policy, RunContext());
      ASSERT_TRUE(ann.ok()) << ann.status().ToString();
      const double recall = MeasuredRecall(exact.ValueOrDie(),
                                           ann.ValueOrDie());
      EXPECT_GE(recall, policy.recall_target)
          << "backend=" << (backend == AnnBackend::kLsh ? "lsh" : "hnsw")
          << " seed=" << c.seed;
    }
  }
}

TEST(AnnRecallTest, MultiOrderThetaWeightingPreservesRecall) {
  // The concat reduction under non-uniform theta: recall must hold for the
  // weighted multi-order score, not just single-layer cosine.
  const int64_t k = 6;
  std::vector<Matrix> ht = {ClusteredRows(800, 12, 20, 0.06, 301, 331),
                            ClusteredRows(800, 12, 20, 0.06, 302, 332)};
  std::vector<Matrix> hs = {ClusteredRows(600, 12, 20, 0.06, 301, 333),
                            ClusteredRows(600, 12, 20, 0.06, 302, 334)};
  const std::vector<double> theta = {0.65, 0.35};
  auto exact = ChunkedEmbeddingTopK(hs, ht, theta, k, RunContext());
  ASSERT_TRUE(exact.ok());
  for (AnnBackend backend : {AnnBackend::kLsh, AnnBackend::kHnsw}) {
    AnnPolicy policy;
    policy.mode = AnnMode::kOn;
    policy.recall_target = 0.98;
    policy.config.backend = backend;
    auto ann = AnnEmbeddingTopK(hs, ht, theta, k, policy, RunContext());
    ASSERT_TRUE(ann.ok()) << ann.status().ToString();
    EXPECT_GE(MeasuredRecall(exact.ValueOrDie(), ann.ValueOrDie()),
              policy.recall_target)
        << (backend == AnnBackend::kLsh ? "lsh" : "hnsw");
  }
}

TEST(AnnRecallTest, SmokeOnFuzzerStyleGraphPair) {
  // The scripts/check.sh smoke gate: a fixed-seed generator graph pair run
  // end to end through an ANN-routed aligner, held to the same oracle. The
  // target graph reuses the source's attribute seed so corresponding nodes
  // have correlated profiles — the structure ANN must recover.
  Rng gs(41), gt(42);
  auto src = PowerLawGraph(500, 1500, 2.5, &gs,
                           ClusteredRows(500, 16, 20, 0.06, 400, 401));
  auto tgt = PowerLawGraph(500, 1500, 2.5, &gt,
                           ClusteredRows(500, 16, 20, 0.06, 400, 402));
  ASSERT_TRUE(src.ok() && tgt.ok());
  AttributeOnlyAligner exact_aligner;
  AnnPolicy off;
  off.mode = AnnMode::kOff;
  exact_aligner.set_ann_policy(off);
  auto exact = exact_aligner.AlignTopK(src.ValueOrDie(), tgt.ValueOrDie(),
                                       Supervision{}, RunContext(), 5);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  for (AnnBackend backend : {AnnBackend::kLsh, AnnBackend::kHnsw}) {
    AttributeOnlyAligner ann_aligner;
    AnnPolicy policy;
    policy.mode = AnnMode::kOn;
    policy.recall_target = 0.98;
    policy.config.backend = backend;
    ann_aligner.set_ann_policy(policy);
    auto ann = ann_aligner.AlignTopK(src.ValueOrDie(), tgt.ValueOrDie(),
                                     Supervision{}, RunContext(), 5);
    ASSERT_TRUE(ann.ok()) << ann.status().ToString();
    EXPECT_GE(MeasuredRecall(exact.ValueOrDie(), ann.ValueOrDie()), 0.98)
        << (backend == AnnBackend::kLsh ? "lsh" : "hnsw");
  }
}

TEST(AnnRecallTest, DegreeRankRouteIsExact) {
  // DegreeRank's retrieval route answers from the degree-sorted group
  // structure: recall is 1.0 by construction, bitwise-equal to the scan.
  Rng gs(51), gt(52);
  auto src = PowerLawGraph(400, 1200, 2.5, &gs);
  auto tgt = PowerLawGraph(450, 1400, 2.5, &gt);
  ASSERT_TRUE(src.ok() && tgt.ok());
  DegreeRankAligner exact_aligner;
  AnnPolicy off;
  off.mode = AnnMode::kOff;
  exact_aligner.set_ann_policy(off);
  auto exact = exact_aligner.AlignTopK(src.ValueOrDie(), tgt.ValueOrDie(),
                                       Supervision{}, RunContext(), 7);
  ASSERT_TRUE(exact.ok());
  DegreeRankAligner routed;
  AnnPolicy on;
  on.mode = AnnMode::kOn;
  routed.set_ann_policy(on);
  auto fast = routed.AlignTopK(src.ValueOrDie(), tgt.ValueOrDie(),
                               Supervision{}, RunContext(), 7);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(exact.ValueOrDie().index, fast.ValueOrDie().index);
  EXPECT_EQ(exact.ValueOrDie().score, fast.ValueOrDie().score);
}

}  // namespace
}  // namespace galign
