// Tie-breaking determinism regression for the top-k selection kernels
// (DESIGN.md §11's comparability contract): TopKSelect, TopKRow, and the
// chunked scans must order ties toward the lowest column index, and the
// result must be invariant to the block size the scan happened to run with
// (and, by per-row independence, to the thread count — every row's top-k
// is a pure function of that row, so ParallelFor partitioning cannot
// change it; block geometry is the axis that could, and is pinned here).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"
#include "la/ops.h"

namespace galign {
namespace {

TEST(TopKDeterminismTest, TopKSelectBreaksTiesTowardLowestIndex) {
  // Heavy duplication: every value appears many times.
  const std::vector<double> values = {2.0, 1.0, 2.0, 3.0, 1.0, 3.0,
                                      2.0, 3.0, 1.0, 2.0};
  std::vector<int64_t> idx(5);
  std::vector<double> score(5);
  TopKSelect(values.data(), static_cast<int64_t>(values.size()), 5, idx.data(),
             score.data());
  // Descending value, ascending index among equals: 3.0 at {3,5,7}, then
  // 2.0 at {0,2}.
  const std::vector<int64_t> want_idx = {3, 5, 7, 0, 2};
  const std::vector<double> want_score = {3.0, 3.0, 3.0, 2.0, 2.0};
  EXPECT_EQ(idx, want_idx);
  EXPECT_EQ(score, want_score);
}

TEST(TopKDeterminismTest, TopKSelectPadsBeyondN) {
  const std::vector<double> values = {5.0, 7.0};
  std::vector<int64_t> idx(4);
  std::vector<double> score(4);
  TopKSelect(values.data(), 2, 4, idx.data(), score.data());
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
  EXPECT_EQ(idx[2], -1);
  EXPECT_EQ(idx[3], -1);
  EXPECT_EQ(score[2], -std::numeric_limits<double>::infinity());
}

TEST(TopKDeterminismTest, TopKRowAgreesWithTopKSelect) {
  Rng rng(9);
  Matrix m = Matrix::Gaussian(6, 40, &rng);
  // Inject ties within rows.
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      m(r, c) = std::round(m(r, c) * 2.0) / 2.0;
    }
  }
  for (int64_t r = 0; r < m.rows(); ++r) {
    std::vector<int64_t> idx(7);
    std::vector<double> score(7);
    TopKSelect(m.row_data(r), m.cols(), 7, idx.data(), score.data());
    const std::vector<int64_t> row = TopKRow(m, r, 7);
    ASSERT_EQ(row.size(), 7u);
    for (size_t j = 0; j < row.size(); ++j) {
      EXPECT_EQ(row[j], idx[j]) << "row " << r << " slot " << j;
    }
  }
}

// Quantized similarity filler: scores collide constantly, so any
// block-boundary or merge-order sensitivity in tie handling shows up as a
// diff between block sizes.
Status QuantizedFill(int64_t r0, int64_t nrows, Matrix* block) {
  for (int64_t i = 0; i < nrows; ++i) {
    for (int64_t u = 0; u < block->cols(); ++u) {
      (*block)(i, u) = static_cast<double>(((r0 + i) * 7 + u * 3) % 5);
    }
  }
  return Status::OK();
}

TEST(TopKDeterminismTest, ChunkedTopKInvariantAcrossBlockSizes) {
  const int64_t rows = 37, cols = 53, k = 6;
  auto reference = ChunkedTopK(rows, cols, k, /*block_rows=*/rows,
                               QuantizedFill, RunContext());
  ASSERT_TRUE(reference.ok());
  for (int64_t block_rows : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{16},
                             int64_t{64}}) {
    auto got = ChunkedTopK(rows, cols, k, block_rows, QuantizedFill,
                           RunContext());
    ASSERT_TRUE(got.ok()) << "block_rows=" << block_rows;
    EXPECT_EQ(got.ValueOrDie().index, reference.ValueOrDie().index)
        << "block_rows=" << block_rows;
    EXPECT_EQ(got.ValueOrDie().score, reference.ValueOrDie().score)
        << "block_rows=" << block_rows;
  }
  // And the ties really resolve to the lowest column: recompute row 0
  // directly.
  Matrix row(1, cols);
  ASSERT_TRUE(QuantizedFill(0, 1, &row).ok());
  std::vector<int64_t> idx(k);
  std::vector<double> score(k);
  TopKSelect(row.row_data(0), cols, k, idx.data(), score.data());
  for (int64_t j = 0; j < k; ++j) {
    EXPECT_EQ(reference.ValueOrDie().index[j], idx[j]) << "slot " << j;
  }
}

TEST(TopKDeterminismTest, ChunkedEmbeddingTopKInvariantUnderBudgetBlocks) {
  // Duplicate target rows force exact score ties in the GEMM path; the
  // budget sizes below force different internal block heights. All runs
  // must agree bitwise with the unbudgeted scan.
  Rng rng(17);
  Matrix ht_base = Matrix::Gaussian(30, 8, &rng);
  ht_base.NormalizeRows();
  Matrix ht_dup(60, 8);
  for (int64_t r = 0; r < 60; ++r) {
    for (int64_t c = 0; c < 8; ++c) ht_dup(r, c) = ht_base(r % 30, c);
  }
  Matrix hs = Matrix::Gaussian(200, 8, &rng);
  hs.NormalizeRows();
  auto reference = ChunkedEmbeddingTopK({hs}, {ht_dup}, {1.0}, 9,
                                        RunContext());
  ASSERT_TRUE(reference.ok());
  // Every duplicated column pair ties; the lower index must win each pair.
  const TopKAlignment& ref = reference.ValueOrDie();
  for (int64_t v = 0; v < ref.rows; ++v) {
    EXPECT_LT(ref.Top1(v), 30) << "row " << v;
  }
  // 40K affords ~20-row blocks, 64K ~60, 512K the full default: three
  // different block geometries over the same implicit matrix.
  for (uint64_t budget : {40u << 10, 64u << 10, 512u << 10}) {
    RunContext ctx = RunContext::WithMemoryBudget(budget);
    auto got = ChunkedEmbeddingTopK({hs}, {ht_dup}, {1.0}, 9, ctx);
    ASSERT_TRUE(got.ok()) << "budget=" << budget << ": "
                          << got.status().ToString();
    EXPECT_EQ(got.ValueOrDie().index, ref.index) << "budget=" << budget;
    EXPECT_EQ(got.ValueOrDie().score, ref.score) << "budget=" << budget;
  }
}

}  // namespace
}  // namespace galign
