// Concurrency stress suite for the ThreadSanitizer gate (DESIGN.md §10).
//
// The parallel_for pool, the MemoryBudget/MemoryTracker atomics, the shared
// CancelToken, and the fault-injection registry are all assumed data-race
// free by the rest of the library; this suite hammers each one from many
// threads so a TSan build (scripts/check.sh tsan stage, -DGALIGN_TSAN=ON)
// turns any racy access into a hard failure. The tests also assert
// functional invariants (exact sums, balanced ledgers) so they earn their
// keep in plain builds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "core/galign.h"
#include "graph/ann/ann_index.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "la/matrix.h"
#include "serve/alignment_index.h"
#include "serve/server.h"

namespace galign {
namespace {

// ------------------------------------------------------------- ParallelFor

TEST(RaceStress, ParallelForManyConcurrentCallers) {
  // Several external threads issue ParallelFor calls into the shared pool
  // at once; every range must still be covered exactly once.
  constexpr int kCallers = 6;
  constexpr int64_t kRange = 200000;
  std::vector<std::thread> callers;
  std::vector<int64_t> sums(kCallers, 0);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &sums] {
      std::atomic<int64_t> sum{0};
      ParallelFor(0, kRange, [&sum](int64_t b, int64_t e) {
        int64_t local = 0;
        for (int64_t i = b; i < e; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      });
      sums[t] = sum.load();
    });
  }
  for (auto& th : callers) th.join();
  const int64_t expect = kRange * (kRange - 1) / 2;
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(sums[t], expect);
}

TEST(RaceStress, ParallelForNestedAndUnbalanced) {
  // Outer parallel loop spawning inner parallel loops with deliberately
  // unbalanced chunk work — the re-entrant path must neither deadlock nor
  // race on the pool's internal queue.
  std::atomic<int64_t> total{0};
  ParallelFor(
      0, 64,
      [&total](int64_t ob, int64_t oe) {
        for (int64_t o = ob; o < oe; ++o) {
          const int64_t inner = (o % 7 == 0) ? 20000 : 50;  // unbalanced
          ParallelFor(
              0, inner,
              [&total](int64_t b, int64_t e) {
                total.fetch_add(e - b, std::memory_order_relaxed);
              },
              /*min_chunk=*/16);
        }
      },
      /*min_chunk=*/1);
  int64_t expect = 0;
  for (int64_t o = 0; o < 64; ++o) expect += (o % 7 == 0) ? 20000 : 50;
  EXPECT_EQ(total.load(), expect);
}

// ------------------------------------- MemoryBudget / MemoryTracker gauge

TEST(RaceStress, BudgetReserveReleaseConcurrent) {
  // N threads fight over a budget that only fits a few reservations at a
  // time. Invariants: no thread ever observes success past the limit, and
  // the ledger drains back to zero when everyone is done.
  MemoryBudget budget(1 << 20);  // 1 MiB
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr uint64_t kChunk = 200 * 1024;  // five fit, eight don't
  std::atomic<int64_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MemoryScope scope;
        Status st = MemoryScope::Reserve(&budget, kChunk, "race", &scope);
        if (st.ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          EXPECT_LE(budget.reserved(), budget.limit());
        }
        // scope releases at end of iteration either way
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(admitted.load(), 0);
  EXPECT_EQ(budget.reserved(), 0u);
  EXPECT_LE(budget.reserved_peak(), budget.limit());
}

TEST(RaceStress, TrackerGaugeUnderConcurrentMatrixChurn) {
  // Matrix allocations feed the process-wide MemoryTracker through
  // TrackingAllocator from every thread; live bytes must return exactly to
  // the baseline once all matrices die.
  const uint64_t baseline = MemoryTracker::LiveBytes();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        Matrix m(16 + t, 32 + i % 7, 1.0);
        ASSERT_GT(MemoryTracker::LiveBytes(), 0u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(MemoryTracker::LiveBytes(), baseline);
  EXPECT_GE(MemoryTracker::PeakBytes(), baseline);
}

// --------------------------------------- CancelToken + deadline polling

TEST(RaceStress, CancelTokenTripWhileManyPollers) {
  // Pollers spin on ShouldStop() while another thread trips the shared
  // token; every poller must observe the (sticky) cancellation.
  CancelToken token;
  RunContext ctx = RunContext::WithTimeout(30.0);
  ctx.SetToken(token);
  constexpr int kPollers = 8;
  std::atomic<int> seen{0};
  std::vector<std::thread> pollers;
  for (int t = 0; t < kPollers; ++t) {
    pollers.emplace_back([&] {
      while (!ctx.ShouldStop()) std::this_thread::yield();
      EXPECT_TRUE(ctx.Cancelled());
      EXPECT_FALSE(ctx.DeadlineExceeded());
      seen.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::thread tripper([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
    token.Cancel();  // idempotent from any thread
  });
  tripper.join();
  for (auto& th : pollers) th.join();
  EXPECT_EQ(seen.load(), kPollers);
}

TEST(RaceStress, DeadlinePollingFromManyThreads) {
  // An already-short deadline polled concurrently: RemainingSeconds() and
  // DeadlineExceeded() read the same immutable deadline from every thread.
  RunContext ctx = RunContext::WithTimeout(0.02);
  constexpr int kPollers = 8;
  std::vector<std::thread> pollers;
  std::atomic<int> expired{0};
  for (int t = 0; t < kPollers; ++t) {
    pollers.emplace_back([&] {
      while (!ctx.DeadlineExceeded()) std::this_thread::yield();
      EXPECT_LE(ctx.RemainingSeconds(), 0.0);
      expired.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : pollers) th.join();
  EXPECT_EQ(expired.load(), kPollers);
  EXPECT_TRUE(ctx.ShouldStop());
}

// ------------------------------------------------ fault-site registry

#ifndef GALIGN_DISABLE_FAULT_INJECTION
TEST(RaceStress, FaultRegistryConcurrentArmFireDisarm) {
  // Writers arm/disarm sites while readers hit the instrumentation points;
  // the registry must serialize internally without losing determinism for
  // a site armed and probed by a single thread.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string site = "race.site." + std::to_string(t);
      fault::Spec spec;
      spec.kind = fault::Kind::kFailIO;
      spec.at_call = 3;
      for (int i = 0; i < 100; ++i) {
        fault::Arm(site, spec);
        int fired = 0;
        for (int c = 0; c < 6; ++c) {
          if (fault::ShouldFailIO(site.c_str())) ++fired;
        }
        EXPECT_EQ(fired, 1) << site;  // fires exactly at call 3
        EXPECT_EQ(fault::CallCount(site), 6);
        // Hammer a *shared* site concurrently with everyone else; only
        // the serialization matters here, not who wins.
        fault::Arm("race.shared", spec);
        (void)fault::ShouldFailIO("race.shared");
        (void)fault::CallCount("race.shared");
        fault::Disarm(site);
      }
    });
  }
  for (auto& th : threads) th.join();
  fault::DisarmAll();
}
#endif  // GALIGN_DISABLE_FAULT_INJECTION

// ----------------------------------------------------- shared ANN index

TEST(RaceStress, ConcurrentQueriesAgainstSharedAnnIndex) {
  // The serving contract of DESIGN.md §11: an AnnIndex is immutable after
  // construction and QueryBatch is const, so many threads may query one
  // shared index concurrently. Every thread must get the same answer as a
  // pre-computed serial baseline — and under TSan any mutation hiding in
  // the query path (scratch sharing, lazy caching) becomes a hard failure.
  Rng rng(77);
  Matrix base = Matrix::Gaussian(400, 12, &rng);
  base.NormalizeRows();
  Matrix queries = Matrix::Gaussian(64, 12, &rng);
  queries.NormalizeRows();
  for (AnnBackend backend : {AnnBackend::kLsh, AnnBackend::kHnsw}) {
    AnnConfig cfg;
    cfg.backend = backend;
    auto index = BuildAnnIndex(base, cfg, RunContext());
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    const AnnIndex& shared = *index.ValueOrDie();
    auto baseline = shared.QueryBatch(queries, 5);
    ASSERT_TRUE(baseline.ok());

    constexpr int kThreads = 6;
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&shared, &queries, &baseline, &mismatches] {
        for (int round = 0; round < 4; ++round) {
          auto got = shared.QueryBatch(queries, 5);
          if (!got.ok() ||
              got.ValueOrDie().index != baseline.ValueOrDie().index ||
              got.ValueOrDie().score != baseline.ValueOrDie().score) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0)
        << (backend == AnnBackend::kLsh ? "lsh" : "hnsw");
  }
}

// ------------------------------------------------- shared alignment server

TEST(RaceStress, ServingQueueUnderMixedClientPressure) {
  // The serving contract of DESIGN.md §12 under concurrency: many client
  // threads push through one bounded admission queue into one shared
  // immutable AlignmentIndex, with a mix of generous deadlines, already-
  // expired deadlines, cross-thread cancellations, and (when fault
  // injection is compiled in) an intermittently armed admission fault.
  // Invariants: every submitted request resolves with a typed status, the
  // budget ledger drains to zero, and under TSan any racy access in the
  // queue/worker/cancellation paths becomes a hard failure.
  Rng rng(5);
  auto g = BarabasiAlbert(50, 3, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(50, 8, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions noise;
  noise.structural_noise = 0.05;
  auto pair = MakeNoisyCopyPair(g, noise, &rng).MoveValueOrDie();
  GAlignConfig config;
  config.epochs = 3;
  config.embedding_dim = 16;
  AlignmentIndexOptions options;
  options.anchor_k = 4;
  auto built =
      AlignmentIndex::Build(config, pair.source, pair.target, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  ServeConfig serve_config;
  serve_config.workers = 3;
  serve_config.queue_capacity = 8;
  serve_config.default_deadline_ms = 500.0;
  serve_config.retry_after_ms = 1.0;
  serve_config.budget = std::make_shared<MemoryBudget>(uint64_t{8} << 20);
  serve_config.per_request_bytes = uint64_t{1} << 20;
  AlignServer server(built.ValueOrDie(), serve_config);
  server.Start();

  constexpr int kClients = 8;
  constexpr int kPerClient = 60;
  std::atomic<int64_t> resolved{0};
  std::atomic<int64_t> untyped{0};
  std::atomic<bool> stop_arming{false};

#ifndef GALIGN_DISABLE_FAULT_INJECTION
  // Overload injector: keeps re-arming the admission fault while clients
  // hammer the queue, so sheds interleave with every other outcome.
  std::thread arming([&stop_arming] {
    fault::Spec spec;
    spec.kind = fault::Kind::kFailIO;
    spec.at_call = 5;
    spec.repeat = 3;
    while (!stop_arming.load(std::memory_order_relaxed)) {
      fault::Arm("serve.admit", spec);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      fault::Disarm("serve.admit");
      std::this_thread::yield();
    }
    fault::Disarm("serve.admit");
  });
#endif

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        QueryRequest request;
        request.node = (c * kPerClient + i) % 50;
        request.k = 4;
        switch ((c + i) % 4) {
          case 0:
            break;  // generous default deadline
          case 1:
            request.deadline_ms = 1e-3;  // expired on arrival
            break;
          case 2:
            request.deadline_ms = 1e-2;
            request.allow_degraded = false;  // typed DeadlineExceeded path
            break;
          default:
            break;
        }
        CancelToken token = request.token;
        std::future<QueryResponse> future = server.Submit(request);
        if ((c + i) % 5 == 0) token.Cancel();  // cross-thread mid-flight
        const QueryResponse response = future.get();
        resolved.fetch_add(1, std::memory_order_relaxed);
        switch (response.status.code()) {
          case StatusCode::kOk:
          case StatusCode::kOverloaded:
          case StatusCode::kDeadlineExceeded:
            break;
          default:
            untyped.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& th : clients) th.join();
#ifndef GALIGN_DISABLE_FAULT_INJECTION
  stop_arming.store(true, std::memory_order_relaxed);
  arming.join();
  fault::DisarmAll();
#endif
  server.Shutdown();

  EXPECT_EQ(resolved.load(), int64_t{kClients} * kPerClient);
  EXPECT_EQ(untyped.load(), 0);
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kClients) * kPerClient);
  // Every admission reservation was released: the ledger is balanced even
  // though sheds, cancellations, and shutdown all raced with admission.
  EXPECT_EQ(serve_config.budget->reserved(), 0u);
}

TEST(RaceStress, HotSwapWhileQueryingAndCancelling) {
  // The continuous-availability contract of DESIGN.md §13 under TSan: a
  // swapper thread repeatedly republishes the serving artifact while client
  // threads query, expire deadlines, and cancel mid-flight. Invariants:
  // every response is typed; every OK response is stamped with a generation
  // that was actually published (never 0, never a retired half-state); the
  // old artifact's refcount plumbing never races worker reads; the budget
  // ledger drains to zero.
  Rng rng(7);
  auto g = BarabasiAlbert(50, 3, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(50, 8, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions noise;
  noise.structural_noise = 0.05;
  auto pair = MakeNoisyCopyPair(g, noise, &rng).MoveValueOrDie();
  GAlignConfig config;
  config.epochs = 3;
  config.embedding_dim = 16;
  AlignmentIndexOptions options;
  options.anchor_k = 4;
  auto built =
      AlignmentIndex::Build(config, pair.source, pair.target, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // A second, behaviorally identical generation: a serialize/parse
  // round-trip, exactly what the watcher would load from disk.
  auto reloaded =
      AlignmentIndex::Parse(built.ValueOrDie()->Serialize(), "swap clone");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  ServeConfig serve_config;
  serve_config.workers = 3;
  serve_config.queue_capacity = 8;
  serve_config.default_deadline_ms = 500.0;
  serve_config.retry_after_ms = 1.0;
  serve_config.budget = std::make_shared<MemoryBudget>(uint64_t{8} << 20);
  serve_config.per_request_bytes = uint64_t{1} << 20;
  AlignServer server(built.ValueOrDie(), serve_config, /*generation=*/1);
  server.Start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 50;
  constexpr int kSwaps = 40;
  std::atomic<int64_t> resolved{0};
  std::atomic<int64_t> untyped{0};
  std::atomic<int64_t> bad_generation{0};
  std::atomic<bool> clients_done{false};

  std::thread swapper([&] {
    // Alternate between the two artifacts, odd swaps publishing the
    // round-tripped clone as generations 2, 3, 4, ... while queries are in
    // flight on the previous one.
    for (int s = 0; s < kSwaps || !clients_done.load(std::memory_order_relaxed);
         ++s) {
      server.SwapIndex(s % 2 == 0 ? reloaded.ValueOrDie() : built.ValueOrDie(),
                       /*generation=*/s + 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (s > 10000) break;  // safety valve, never hit in practice
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        QueryRequest request;
        request.node = (c * kPerClient + i) % 50;
        request.k = 4;
        if ((c + i) % 3 == 1) request.deadline_ms = 1e-3;  // expired
        CancelToken token = request.token;
        std::future<QueryResponse> future = server.Submit(request);
        if ((c + i) % 5 == 0) token.Cancel();
        const QueryResponse response = future.get();
        resolved.fetch_add(1, std::memory_order_relaxed);
        switch (response.status.code()) {
          case StatusCode::kOk:
          case StatusCode::kOverloaded:
          case StatusCode::kDeadlineExceeded:
            break;
          default:
            untyped.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        // Every answer must name a generation that existed: the initial
        // one or one the swapper published. Zero or a future generation
        // would mean a torn snapshot of (index, generation).
        if (response.status.ok() &&
            (response.generation < 1 || response.generation > kSwaps + 10001)) {
          bad_generation.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  clients_done.store(true, std::memory_order_relaxed);
  swapper.join();
  server.Shutdown();

  EXPECT_EQ(resolved.load(), int64_t{kClients} * kPerClient);
  EXPECT_EQ(untyped.load(), 0);
  EXPECT_EQ(bad_generation.load(), 0);
  const ServerStats stats = server.Snapshot();
  EXPECT_GE(stats.swaps, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(serve_config.budget->reserved(), 0u);
}

}  // namespace
}  // namespace galign
