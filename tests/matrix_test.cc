#include "la/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace galign {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructionFillsValue) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 2.5);
  }
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 2), 3);
  EXPECT_DOUBLE_EQ(m(1, 0), 4);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  Matrix i = Matrix::Identity(4);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_TRUE(m.At(1, 1).ok());
  EXPECT_FALSE(m.At(2, 0).ok());
  EXPECT_FALSE(m.At(0, 2).ok());
  EXPECT_FALSE(m.At(-1, 0).ok());
}

TEST(MatrixTest, RowColBlockExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix row = m.Row(1);
  EXPECT_EQ(row.rows(), 1);
  EXPECT_DOUBLE_EQ(row(0, 0), 4);
  EXPECT_DOUBLE_EQ(row(0, 2), 6);

  Matrix col = m.Col(2);
  EXPECT_EQ(col.rows(), 3);
  EXPECT_DOUBLE_EQ(col(0, 0), 3);
  EXPECT_DOUBLE_EQ(col(2, 0), 9);

  Matrix blk = m.Block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(blk(0, 0), 5);
  EXPECT_DOUBLE_EQ(blk(1, 1), 9);
}

TEST(MatrixTest, FillScaleAddAxpy) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 3.0);
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
  a.Axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a(0, 1), 8.0);
  a.Fill(0.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 0.0);
}

TEST(MatrixTest, Norms) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.RowNorm(0), 5.0);
}

TEST(MatrixTest, SumAndMaxAbsWithNegatives) {
  Matrix m{{-5, 2}, {1, -1}};
  EXPECT_DOUBLE_EQ(m.Sum(), -3.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 5.0);
}

TEST(MatrixTest, AllFiniteDetectsNanAndInf) {
  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(m.AllFinite());
  m(0, 1) = std::nan("");
  EXPECT_FALSE(m.AllFinite());
  m(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.AllFinite());
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {3, 3}};
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, a), 0.0);
}

TEST(MatrixTest, NormalizeRowsMakesUnitRows) {
  Matrix m{{3, 4}, {0, 0}, {1, 0}};
  m.NormalizeRows();
  EXPECT_NEAR(m.RowNorm(0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.RowNorm(1), 0.0);  // zero rows untouched
  EXPECT_NEAR(m.RowNorm(2), 1.0, 1e-12);
  EXPECT_NEAR(m(0, 0), 0.6, 1e-12);
}

TEST(MatrixTest, UniformRespectsRange) {
  Rng rng(1);
  Matrix m = Matrix::Uniform(20, 20, &rng, -2.0, 3.0);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -2.0);
    EXPECT_LT(m.data()[i], 3.0);
  }
}

TEST(MatrixTest, GaussianHasRequestedSpread) {
  Rng rng(1);
  Matrix m = Matrix::Gaussian(100, 100, &rng, 2.0);
  double var = m.SquaredNorm() / m.size();
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(MatrixTest, XavierBoundsFollowFanInFanOut) {
  Rng rng(1);
  Matrix m = Matrix::Xavier(50, 200, &rng);
  double limit = std::sqrt(6.0 / 250.0);
  EXPECT_LE(m.MaxAbs(), limit);
  EXPECT_GT(m.MaxAbs(), limit * 0.5);  // actually uses the range
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(20, 20, 1.0);
  std::string s = m.ToString(4, 4);
  EXPECT_NE(s.find("Matrix 20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(2, 2, 1.0);
  Matrix b = a;
  b(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
}

TEST(MatrixTest, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).SameShape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).SameShape(Matrix(3, 2)));
}

TEST(MatrixTest, ResizeReshapesAndReusesStorage) {
  Matrix m(4, 6, 1.0);
  const double* before = m.data();
  m.Resize(6, 4);  // same total size: must not reallocate
  EXPECT_EQ(m.rows(), 6);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.data(), before);
  m.Resize(2, 3);
  EXPECT_EQ(m.size(), 6);
  m.Resize(0, 5);
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace galign
