#include "align/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "align/alignment.h"
#include "common/rng.h"

namespace galign {
namespace {

// Brute-force maximum-weight complete matching over all permutations
// (square case).
double BruteForceBest(const Matrix& s) {
  const int64_t n = s.rows();
  std::vector<int64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -1e300;
  do {
    double total = 0;
    for (int64_t r = 0; r < n; ++r) total += s(r, perm[r]);
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, TrivialOneByOne) {
  Matrix s{{0.7}};
  auto m = HungarianMatch(s);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.ValueOrDie()[0], 0);
}

TEST(HungarianTest, KnownTwoByTwo) {
  // Greedy would pick (0,0)=0.9 then (1,1)=0.1 for 1.0; optimal is
  // (0,1)+(1,0) = 0.8 + 0.8 = 1.6.
  Matrix s{{0.9, 0.8}, {0.8, 0.1}};
  auto m = HungarianMatch(s).MoveValueOrDie();
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 0);
  EXPECT_NEAR(AssignmentWeight(s, m), 1.6, 1e-12);
}

TEST(HungarianTest, HandlesNegativeScores) {
  Matrix s{{-1.0, -5.0}, {-2.0, -1.0}};
  auto m = HungarianMatch(s).MoveValueOrDie();
  EXPECT_NEAR(AssignmentWeight(s, m), -2.0, 1e-12);
}

class HungarianRandom : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandom, MatchesBruteForceOnSquare) {
  const int n = GetParam();
  Rng rng(n * 7 + 1);
  Matrix s = Matrix::Uniform(n, n, &rng);
  auto m = HungarianMatch(s).MoveValueOrDie();
  // Injective and complete.
  std::set<int64_t> used;
  for (int64_t a : m) {
    ASSERT_NE(a, -1);
    EXPECT_TRUE(used.insert(a).second);
  }
  EXPECT_NEAR(AssignmentWeight(s, m), BruteForceBest(s), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianRandom,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(HungarianTest, WideMatrixMatchesAllRows) {
  Rng rng(3);
  Matrix s = Matrix::Uniform(4, 9, &rng);
  auto m = HungarianMatch(s).MoveValueOrDie();
  std::set<int64_t> used;
  for (int64_t a : m) {
    ASSERT_NE(a, -1);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 9);
    EXPECT_TRUE(used.insert(a).second);
  }
}

TEST(HungarianTest, TallMatrixLeavesRowsUnmatched) {
  Rng rng(4);
  Matrix s = Matrix::Uniform(9, 4, &rng);
  auto m = HungarianMatch(s).MoveValueOrDie();
  int64_t matched = 0;
  std::set<int64_t> used;
  for (int64_t a : m) {
    if (a != -1) {
      ++matched;
      EXPECT_TRUE(used.insert(a).second);
    }
  }
  EXPECT_EQ(matched, 4);
}

TEST(HungarianTest, TallCaseIsOptimal) {
  // 3 rows, 2 columns: optimum picks rows 0 and 2.
  Matrix s{{5.0, 1.0}, {2.0, 1.0}, {1.0, 6.0}};
  auto m = HungarianMatch(s).MoveValueOrDie();
  EXPECT_NEAR(AssignmentWeight(s, m), 11.0, 1e-12);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], -1);
  EXPECT_EQ(m[2], 1);
}

TEST(HungarianTest, BeatsOrTiesGreedy) {
  // Property: the optimal matching weight is always >= greedy matching.
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(100 + trial);
    Matrix s = Matrix::Uniform(12, 12, &rng);
    auto optimal = HungarianMatch(s).MoveValueOrDie();
    auto greedy = GreedyOneToOneAnchors(s);
    EXPECT_GE(AssignmentWeight(s, optimal),
              AssignmentWeight(s, greedy) - 1e-9);
  }
}

TEST(HungarianTest, RejectsEmptyAndNonFinite) {
  EXPECT_FALSE(HungarianMatch(Matrix()).ok());
  Matrix s(2, 2, 1.0);
  s(0, 0) = std::nan("");
  EXPECT_FALSE(HungarianMatch(s).ok());
}

}  // namespace
}  // namespace galign
