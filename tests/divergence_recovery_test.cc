// Divergence recovery and deterministic fault injection (DESIGN.md §7).
//
// The fault facility is exercised directly (exact call counts, determinism,
// disarm semantics), then through the trainer: a NaN injected into the
// gradient stream must trigger exactly one rollback, decay the learning
// rate, and still produce a finite final loss — bitwise reproducibly across
// two identical runs. Solver budget semantics (degraded-but-usable results
// with honest ConvergenceReports) are covered at the end.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/final.h"
#include "baselines/isorank.h"
#include "common/fault.h"
#include "core/refinement.h"
#include "core/trainer.h"
#include "graph/generators.h"
#include "graph/noise.h"
#include "la/decomposition.h"

namespace galign {
namespace {

class DivergenceRecoveryTest : public ::testing::Test {
 protected:
  // Leave no armed site behind regardless of how a test exits.
  void TearDown() override { fault::DisarmAll(); }
};

AttributedGraph SmallGraph(uint64_t seed, int64_t n = 30) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 5, 0.3, &rng);
  return g.WithAttributes(f).MoveValueOrDie();
}

GAlignConfig FastConfig() {
  GAlignConfig cfg;
  cfg.epochs = 12;
  cfg.embedding_dim = 8;
  cfg.num_augmentations = 2;
  cfg.early_stop_patience = 0;  // run all epochs: exact counts matter here
  return cfg;
}

// --- Fault facility unit tests -------------------------------------------

TEST_F(DivergenceRecoveryTest, FaultFiresAtExactCallCount) {
  fault::Spec spec;
  spec.kind = fault::Kind::kNaN;
  spec.at_call = 2;
  fault::Arm("unit.scalar", spec);
  EXPECT_TRUE(std::isfinite(fault::Perturb("unit.scalar", 1.0)));  // call 0
  EXPECT_TRUE(std::isfinite(fault::Perturb("unit.scalar", 1.0)));  // call 1
  EXPECT_TRUE(std::isnan(fault::Perturb("unit.scalar", 1.0)));     // call 2
  EXPECT_TRUE(std::isfinite(fault::Perturb("unit.scalar", 1.0)));  // call 3
  EXPECT_EQ(fault::CallCount("unit.scalar"), 4);
}

TEST_F(DivergenceRecoveryTest, RepeatFiresConsecutiveCalls) {
  fault::Spec spec;
  spec.kind = fault::Kind::kInf;
  spec.at_call = 1;
  spec.repeat = 2;
  fault::Arm("unit.scalar", spec);
  EXPECT_TRUE(std::isfinite(fault::Perturb("unit.scalar", 0.5)));
  EXPECT_TRUE(std::isinf(fault::Perturb("unit.scalar", 0.5)));
  EXPECT_TRUE(std::isinf(fault::Perturb("unit.scalar", 0.5)));
  EXPECT_TRUE(std::isfinite(fault::Perturb("unit.scalar", 0.5)));
}

TEST_F(DivergenceRecoveryTest, CorruptBufferIsDeterministic) {
  auto corrupt_once = [] {
    std::vector<double> buf(64, 1.0);
    fault::Spec spec;
    spec.kind = fault::Kind::kNaN;
    spec.seed = 77;
    fault::Arm("unit.buffer", spec);
    fault::CorruptBuffer("unit.buffer", buf.data(),
                         static_cast<int64_t>(buf.size()));
    for (size_t i = 0; i < buf.size(); ++i) {
      if (std::isnan(buf[i])) return static_cast<int64_t>(i);
    }
    return int64_t{-1};
  };
  const int64_t first = corrupt_once();
  ASSERT_GE(first, 0) << "armed kNaN fault must corrupt exactly one entry";
  EXPECT_EQ(corrupt_once(), first) << "same seed must pick the same entry";
}

TEST_F(DivergenceRecoveryTest, DisarmedSitesAreInert) {
  fault::Spec spec;
  spec.kind = fault::Kind::kNaN;
  fault::Arm("unit.scalar", spec);
  fault::Disarm("unit.scalar");
  EXPECT_DOUBLE_EQ(fault::Perturb("unit.scalar", 3.5), 3.5);
  EXPECT_EQ(fault::CallCount("unit.scalar"), 0);
  EXPECT_FALSE(fault::ShouldFailIO("unit.io"));
}

// --- Trainer recovery -----------------------------------------------------

struct TrainRun {
  Status status = Status::OK();
  TrainReport report;
  std::vector<double> losses;
  std::vector<Matrix> weights;
};

TrainRun RunTraining(const GAlignConfig& cfg) {
  AttributedGraph g = SmallGraph(11);
  Rng pair_rng(12);
  NoisyCopyOptions opts;
  opts.structural_noise = 0.1;
  auto pair = MakeNoisyCopyPair(g, opts, &pair_rng).MoveValueOrDie();

  Rng rng(13);
  MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                    &rng);
  Trainer trainer(cfg);
  TrainRun run;
  run.status = trainer.Train(&gcn, pair.source, pair.target, &rng);
  run.report = trainer.report();
  run.losses = trainer.loss_history();
  run.weights = gcn.weights();
  return run;
}

TEST_F(DivergenceRecoveryTest, TrainerRecoversFromInjectedNaNGradient) {
  GAlignConfig cfg = FastConfig();
  fault::Spec spec;
  spec.kind = fault::Kind::kNaN;
  spec.at_call = 5;  // corrupt the gradient of epoch 5
  fault::Arm("train.grad", spec);

  TrainRun run = RunTraining(cfg);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.report.rollbacks, 1);
  ASSERT_EQ(run.report.rollback_epochs.size(), 1u);
  EXPECT_EQ(run.report.rollback_epochs[0], 5);
  EXPECT_TRUE(run.report.recovered());
  EXPECT_FALSE(run.report.diverged);
  EXPECT_TRUE(std::isfinite(run.report.final_loss));
  EXPECT_DOUBLE_EQ(run.report.final_lr,
                   cfg.learning_rate * cfg.rollback_lr_decay);
  // The poisoned epoch is not recorded; every recorded loss is finite.
  EXPECT_EQ(run.losses.size(), static_cast<size_t>(cfg.epochs - 1));
  for (double l : run.losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_EQ(run.report.epochs_run, cfg.epochs);
  EXPECT_EQ(run.report.steps_applied, cfg.epochs - 1);
}

TEST_F(DivergenceRecoveryTest, RecoveryIsBitwiseReproducible) {
  GAlignConfig cfg = FastConfig();
  auto run_with_fault = [&] {
    fault::Spec spec;
    spec.kind = fault::Kind::kNaN;
    spec.at_call = 5;
    fault::Arm("train.grad", spec);
    TrainRun run = RunTraining(cfg);
    fault::DisarmAll();
    return run;
  };
  TrainRun a = run_with_fault();
  TrainRun b = run_with_fault();
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.losses[i], b.losses[i]) << "loss " << i;
  }
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t l = 0; l < a.weights.size(); ++l) {
    ASSERT_EQ(a.weights[l].size(), b.weights[l].size());
    const double* pa = a.weights[l].data();
    const double* pb = b.weights[l].data();
    for (int64_t i = 0; i < a.weights[l].size(); ++i) {
      ASSERT_EQ(pa[i], pb[i]) << "layer " << l << " weight " << i;
    }
  }
  EXPECT_EQ(a.report.rollback_epochs, b.report.rollback_epochs);
}

TEST_F(DivergenceRecoveryTest, TrainerGivesUpAfterRollbackBudget) {
  GAlignConfig cfg = FastConfig();
  cfg.max_rollbacks = 2;
  fault::Spec spec;
  spec.kind = fault::Kind::kNaN;
  spec.at_call = 0;
  spec.repeat = 1000;  // every epoch's gradient is poisoned
  fault::Arm("train.grad", spec);

  TrainRun run = RunTraining(cfg);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kNotConverged);
  EXPECT_TRUE(run.report.diverged);
  EXPECT_EQ(run.report.rollbacks, cfg.max_rollbacks + 1);
  EXPECT_FALSE(run.report.recovered());
}

TEST_F(DivergenceRecoveryTest, ZeroRollbackBudgetFailsFast) {
  GAlignConfig cfg = FastConfig();
  cfg.max_rollbacks = 0;
  fault::Spec spec;
  spec.kind = fault::Kind::kNaN;
  spec.at_call = 3;
  fault::Arm("train.grad", spec);

  TrainRun run = RunTraining(cfg);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kNotConverged);
  EXPECT_TRUE(run.report.diverged);
}

TEST_F(DivergenceRecoveryTest, TrainerRecoversFromInjectedNaNLoss) {
  GAlignConfig cfg = FastConfig();
  fault::Spec spec;
  spec.kind = fault::Kind::kNaN;
  spec.at_call = 4;
  fault::Arm("train.loss", spec);

  TrainRun run = RunTraining(cfg);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.report.rollbacks, 1);
  EXPECT_TRUE(std::isfinite(run.report.final_loss));
  // The rejected epoch never reaches the Adam step.
  EXPECT_EQ(run.report.steps_applied, cfg.epochs - 1);
}

TEST_F(DivergenceRecoveryTest, GradientExplosionThresholdTriggersRollback) {
  GAlignConfig cfg = FastConfig();
  cfg.max_grad_norm = 1e-12;  // everything counts as an explosion
  cfg.max_rollbacks = 1;
  TrainRun run = RunTraining(cfg);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kNotConverged);
  EXPECT_GE(run.report.rollbacks, 1);
}

// --- Solver convergence budgets -------------------------------------------

TEST_F(DivergenceRecoveryTest, JacobiReportsDegradedUnderTinyBudget) {
  Rng rng(21);
  Matrix m(12, 12);
  for (int64_t r = 0; r < 12; ++r) {
    for (int64_t c = r; c < 12; ++c) {
      m(r, c) = m(c, r) = rng.Uniform(-1.0, 1.0);
    }
  }
  auto full = SymmetricEigen(m).MoveValueOrDie();
  EXPECT_TRUE(full.report.converged);

  auto tiny = SymmetricEigen(m, /*max_sweeps=*/1).MoveValueOrDie();
  EXPECT_FALSE(tiny.report.converged);
  EXPECT_TRUE(tiny.report.degraded);
  EXPECT_EQ(tiny.report.iterations, 1);
  EXPECT_GT(tiny.report.residual, 0.0);
  // Degraded but usable: eigenvectors are still finite.
  EXPECT_TRUE(tiny.eigenvectors.AllFinite());
}

TEST_F(DivergenceRecoveryTest, PowerIterationReportsBudgetExhaustion) {
  Matrix m(6, 6);
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 6; ++c) m(r, c) = 1.0 / (1.0 + r + c);
  }
  ConvergenceReport report;
  auto value =
      PowerIterationTopEigenvalue(m, /*max_iters=*/2, /*tol=*/0.0, &report);
  ASSERT_TRUE(value.ok());
  EXPECT_FALSE(report.converged);
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(std::isfinite(value.ValueOrDie()));
}

TEST_F(DivergenceRecoveryTest, IsoRankReportsNonConvergenceUnderTinyBudget) {
  Rng rng(22);
  auto g = BarabasiAlbert(25, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(25, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

  IsoRankConfig tight;
  tight.max_iterations = 1;
  tight.tolerance = 1e-15;
  IsoRankAligner strict(tight);
  auto s = strict.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite()) << "degraded result must be usable";
  EXPECT_FALSE(strict.last_report().converged);
  EXPECT_TRUE(strict.last_report().degraded);
  EXPECT_EQ(strict.last_report().iterations, 1);

  IsoRankConfig roomy;  // a generous budget converges on this small pair
  roomy.max_iterations = 500;
  IsoRankAligner loose(roomy);
  ASSERT_TRUE(loose.Align(pair.source, pair.target, {}).ok());
  EXPECT_TRUE(loose.last_report().converged);
  EXPECT_LT(loose.last_report().iterations, roomy.max_iterations);
}

TEST_F(DivergenceRecoveryTest, ResidualPerturbationDelaysIsoRankConvergence) {
  Rng rng(23);
  auto g = BarabasiAlbert(20, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(20, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

  // Every residual check reads +inf — the loop can never observe
  // convergence and must exhaust its budget and degrade. (kPerturb would be
  // unsuitable here: its signed noise can push the residual below zero,
  // which would satisfy `delta < tolerance`.)
  fault::Spec spec;
  spec.kind = fault::Kind::kInf;
  spec.at_call = 0;
  spec.repeat = 1000000;
  fault::Arm("solver.isorank.residual", spec);

  IsoRankConfig cfg;
  cfg.max_iterations = 5;
  IsoRankAligner aligner(cfg);
  auto s = aligner.Align(pair.source, pair.target, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
  EXPECT_FALSE(aligner.last_report().converged);
  EXPECT_EQ(aligner.last_report().iterations, cfg.max_iterations);
}

TEST_F(DivergenceRecoveryTest, FinalReportsConvergence) {
  Rng rng(24);
  auto g = BarabasiAlbert(20, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(20, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  FinalAligner aligner;
  ASSERT_TRUE(aligner.Align(pair.source, pair.target, {}).ok());
  const ConvergenceReport& report = aligner.last_report();
  EXPECT_TRUE(report.converged || report.degraded);
  EXPECT_GT(report.iterations, 0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST_F(DivergenceRecoveryTest, RefinementToleranceStopsEarly) {
  Rng rng(25);
  auto g = BarabasiAlbert(25, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(25, 5, 0.4, &rng)).MoveValueOrDie();

  GAlignConfig cfg = FastConfig();
  cfg.refinement_iterations = 20;
  cfg.refinement_tolerance = 0.5;  // very lax: stop as soon as g(S) settles
  Rng train_rng(26);
  MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                    &train_rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &train_rng).ok());
  auto refined = RefineAlignment(gcn, g, g, cfg).MoveValueOrDie();
  EXPECT_TRUE(refined.report.converged);
  EXPECT_LT(refined.report.iterations, cfg.refinement_iterations);
  EXPECT_TRUE(refined.alignment.AllFinite());
}

}  // namespace
}  // namespace galign
