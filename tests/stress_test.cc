// Stress and fuzz tests: randomized cross-checks of sparse kernels against
// dense references, deep/wide autograd graphs, thread-pool hammering, and
// randomized end-to-end gradient checks of full GCN losses.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/gcn.h"
#include "core/losses.h"
#include "graph/generators.h"
#include "la/ops.h"

namespace galign {
namespace {

TEST(SparseFuzzTest, MultiplyMatchesDenseAcrossShapes) {
  Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    int64_t rows = 1 + rng.UniformInt(40);
    int64_t cols = 1 + rng.UniformInt(40);
    int64_t d = 1 + rng.UniformInt(8);
    int64_t nnz = rng.UniformInt(rows * cols + 1);
    std::vector<Triplet> trip;
    for (int64_t i = 0; i < nnz; ++i) {
      trip.push_back({rng.UniformInt(rows), rng.UniformInt(cols),
                      rng.Normal()});
    }
    SparseMatrix sp = SparseMatrix::FromTriplets(rows, cols, trip);
    Matrix x = Matrix::Gaussian(cols, d, &rng);
    Matrix expected = MatMul(sp.ToDense(), x);
    EXPECT_LT(Matrix::MaxAbsDiff(sp.Multiply(x), expected), 1e-9)
        << "trial " << trial;
    Matrix y = Matrix::Gaussian(rows, d, &rng);
    Matrix expected_t = MatMul(Transpose(sp.ToDense()), y);
    EXPECT_LT(Matrix::MaxAbsDiff(sp.TransposedMultiply(y), expected_t), 1e-9);
  }
}

TEST(SparseFuzzTest, TransposeInvolution) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t rows = 1 + rng.UniformInt(30), cols = 1 + rng.UniformInt(30);
    std::vector<Triplet> trip;
    for (int i = 0; i < 50; ++i) {
      trip.push_back({rng.UniformInt(rows), rng.UniformInt(cols),
                      rng.Normal()});
    }
    SparseMatrix sp = SparseMatrix::FromTriplets(rows, cols, trip);
    Matrix round = sp.Transposed().Transposed().ToDense();
    EXPECT_LT(Matrix::MaxAbsDiff(round, sp.ToDense()), 1e-15);
  }
}

TEST(AutogradStressTest, DeepChainGradientIsExact) {
  // y = tanh(tanh(...tanh(x)...)) 60 levels deep; dy/dx is the product of
  // the per-level derivatives.
  Tape tape;
  double x0 = 0.4;
  Var x = tape.Leaf(Matrix(1, 1, x0), true);
  Var cur = x;
  double value = x0;
  double deriv = 1.0;
  for (int i = 0; i < 60; ++i) {
    cur = ag::Tanh(&tape, cur);
    value = std::tanh(value);
    deriv *= 1.0 - value * value;
  }
  tape.Backward(cur);
  EXPECT_NEAR(tape.grad(x)(0, 0), deriv, 1e-12);
}

TEST(AutogradStressTest, WideFanOutAccumulates) {
  // loss = sum of 100 scaled copies of x; grad = sum of the scales.
  Tape tape;
  Var x = tape.Leaf(Matrix(1, 1, 2.0), true);
  std::vector<std::pair<Var, double>> terms;
  double expected = 0.0;
  for (int i = 1; i <= 100; ++i) {
    terms.emplace_back(x, 0.01 * i);
    expected += 0.01 * i;
  }
  Var total = ag::WeightedSum(&tape, terms);
  tape.Backward(total);
  EXPECT_NEAR(tape.grad(x)(0, 0), expected, 1e-10);
}

TEST(AutogradStressTest, RandomizedGcnLossGradientCheck) {
  // End-to-end finite-difference check of the full network loss through a
  // real 2-layer GCN on a random graph — the exact training configuration.
  Rng rng(3);
  auto g = BarabasiAlbert(12, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(12, 4, 0.4, &rng)).MoveValueOrDie();
  auto lap = g.NormalizedAdjacency().MoveValueOrDie();
  MultiOrderGcn gcn(2, 4, 5, &rng);

  auto loss_at = [&](const std::vector<Matrix>& weights) {
    MultiOrderGcn probe = gcn;
    probe.weights() = weights;
    Tape tape;
    std::vector<Var> wv;
    auto layers = probe.Forward(&tape, &lap, g.attributes(), &wv);
    Var loss = ConsistencyLossAllLayers(&tape, &lap, layers);
    return tape.value(loss)(0, 0);
  };

  Tape tape;
  std::vector<Var> wv;
  auto layers = gcn.Forward(&tape, &lap, g.attributes(), &wv);
  Var loss = ConsistencyLossAllLayers(&tape, &lap, layers);
  tape.Backward(loss);

  const double eps = 1e-6;
  Rng pick(4);
  for (int probe_idx = 0; probe_idx < 12; ++probe_idx) {
    size_t layer = pick.UniformInt(2);
    const Matrix& w = gcn.weights()[layer];
    int64_t entry = pick.UniformInt(w.size());
    std::vector<Matrix> plus = gcn.weights(), minus = gcn.weights();
    plus[layer].data()[entry] += eps;
    minus[layer].data()[entry] -= eps;
    double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    double analytic = tape.grad(wv[layer]).data()[entry];
    EXPECT_NEAR(analytic, numeric, 1e-5)
        << "layer " << layer << " entry " << entry;
  }
}

TEST(ParallelStressTest, ManySmallJobsInSequence) {
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(
        0, 97 + round,
        [&](int64_t b, int64_t e) { sum.fetch_add(e - b); },
        /*min_chunk=*/1);
    EXPECT_EQ(sum.load(), 97 + round);
  }
}

TEST(ParallelStressTest, AlternatingLargeAndTinyJobs) {
  for (int round = 0; round < 30; ++round) {
    std::atomic<int64_t> big{0}, small{0};
    ParallelFor(0, 100000, [&](int64_t b, int64_t e) { big.fetch_add(e - b); });
    ParallelFor(0, 3, [&](int64_t b, int64_t e) { small.fetch_add(e - b); },
                1);
    EXPECT_EQ(big.load(), 100000);
    EXPECT_EQ(small.load(), 3);
  }
}

TEST(GemmStressTest, AssociativityHolds) {
  // (A B) C == A (B C) within numerical tolerance, across random shapes.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t a = 1 + rng.UniformInt(20), b = 1 + rng.UniformInt(20);
    int64_t c = 1 + rng.UniformInt(20), d = 1 + rng.UniformInt(20);
    Matrix A = Matrix::Gaussian(a, b, &rng);
    Matrix B = Matrix::Gaussian(b, c, &rng);
    Matrix C = Matrix::Gaussian(c, d, &rng);
    Matrix left = MatMul(MatMul(A, B), C);
    Matrix right = MatMul(A, MatMul(B, C));
    EXPECT_LT(Matrix::MaxAbsDiff(left, right), 1e-8);
  }
}

TEST(RngStressTest, ForkedStreamsStayIndependentUnderInterleaving) {
  Rng parent(1);
  Rng f1 = parent.Fork();
  Rng f2 = parent.Fork();
  // Consuming f1 must not perturb f2's stream.
  Rng parent2(1);
  Rng g1 = parent2.Fork();
  Rng g2 = parent2.Fork();
  for (int i = 0; i < 1000; ++i) (void)f1.Uniform();
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(f2.Uniform(), g2.Uniform());
  }
  (void)g1;
}

}  // namespace
}  // namespace galign
