#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace galign {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    GALIGN_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  auto p = rng.Permutation(50);
  std::set<int64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(1000, 30);
  std::set<int64_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 30u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(RngTest, SampleWithoutReplacementDensePath) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(10, 9);
  std::set<int64_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 9u);
}

TEST(RngTest, SampleClampsKtoN) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  Rng b(7);
  (void)b.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (fork.Uniform() == a.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------- Parallel

TEST(ParallelTest, CoversWholeRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, 10000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, SmallRangeRunsSerially) {
  std::vector<int> hits(10, 0);
  ParallelFor(0, 10, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, SumMatchesSerial) {
  std::atomic<int64_t> total{0};
  ParallelFor(1, 100001, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 100000LL * 100001 / 2);
}

TEST(ParallelTest, ReentrantCallsDoNotDeadlock) {
  // Nested ParallelFor must complete (inner calls run serially or not).
  std::atomic<int64_t> count{0};
  ParallelFor(
      0, 8,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          for (int64_t j = 0; j < 100; ++j) count.fetch_add(1);
        }
      },
      1);
  EXPECT_EQ(count.load(), 800);
}

TEST(ParallelTest, ParallelismLevelPositive) {
  EXPECT_GE(ParallelismLevel(), 1);
}

// ---------------------------------------------------------------- Timer

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  EXPECT_GT(t.Seconds(), 0.0);
  double first = t.Millis();
  EXPECT_GE(t.Millis(), first);  // monotonic
}

TEST(TimerTest, ResetRestartsClock) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  double before = t.Seconds();
  t.Reset();
  EXPECT_LT(t.Seconds(), before);
}

}  // namespace
}  // namespace galign
