#include "baselines/ione.h"

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AlignmentPair CleanPair(uint64_t seed, int64_t n = 80) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 3, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 8, 0.3, &rng);
  g = g.WithAttributes(f).MoveValueOrDie();
  NoisyCopyOptions opts;
  return MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
}

IoneConfig FastConfig() {
  IoneConfig cfg;
  cfg.epochs = 150;
  cfg.dim = 32;
  return cfg;
}

TEST(IoneTest, RequiresSeeds) {
  AlignmentPair pair = CleanPair(1);
  IoneAligner aligner(FastConfig());
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, {}).ok());
}

TEST(IoneTest, AlignsAboveChanceWithSeeds) {
  AlignmentPair pair = CleanPair(2);
  Rng rng(3);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.25, &rng);
  IoneAligner aligner(FastConfig());
  auto s = aligner.Align(pair.source, pair.target, sup);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  AlignmentMetrics m = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
  EXPECT_GT(m.auc, 0.65);
  EXPECT_TRUE(s.ValueOrDie().AllFinite());
}

TEST(IoneTest, SeedPairsScoreMaximallyWithThemselves) {
  // Anchored pairs share one embedding vector, so their mutual cosine is
  // exactly 1 — the maximum possible entry of the score matrix.
  AlignmentPair pair = CleanPair(4, 50);
  Rng rng(5);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.2, &rng);
  IoneAligner aligner(FastConfig());
  auto s = aligner.Align(pair.source, pair.target, sup).MoveValueOrDie();
  for (const auto& [v, u] : sup.seeds) {
    EXPECT_NEAR(s(v, u), 1.0, 1e-9);
  }
}

TEST(IoneTest, RejectsOutOfRangeSeeds) {
  AlignmentPair pair = CleanPair(6, 30);
  Supervision bad;
  bad.seeds = {{500, 0}};
  IoneAligner aligner(FastConfig());
  EXPECT_FALSE(aligner.Align(pair.source, pair.target, bad).ok());
}

TEST(IoneTest, DeterministicUnderSeed) {
  AlignmentPair pair = CleanPair(7, 40);
  Rng rng(8);
  Supervision sup = SampleSeeds(pair.ground_truth, 0.2, &rng);
  IoneAligner a(FastConfig()), b(FastConfig());
  auto s1 = a.Align(pair.source, pair.target, sup).MoveValueOrDie();
  auto s2 = b.Align(pair.source, pair.target, sup).MoveValueOrDie();
  EXPECT_LT(Matrix::MaxAbsDiff(s1, s2), 1e-12);
}

TEST(IoneTest, MoreSeedsHelp) {
  AlignmentPair pair = CleanPair(9, 100);
  Rng r1(10), r2(10);
  Supervision few = SampleSeeds(pair.ground_truth, 0.05, &r1);
  Supervision many = SampleSeeds(pair.ground_truth, 0.3, &r2);
  IoneAligner a(FastConfig()), b(FastConfig());
  auto s_few = a.Align(pair.source, pair.target, few).MoveValueOrDie();
  auto s_many = b.Align(pair.source, pair.target, many).MoveValueOrDie();
  double map_few = ComputeMetrics(s_few, pair.ground_truth).map;
  double map_many = ComputeMetrics(s_many, pair.ground_truth).map;
  EXPECT_GT(map_many, map_few - 0.02);
}

}  // namespace
}  // namespace galign
