#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/augmenter.h"
#include "graph/generators.h"
#include "graph/noise.h"

namespace galign {
namespace {

AttributedGraph SmallGraph(uint64_t seed, int64_t n = 40) {
  Rng rng(seed);
  auto g = BarabasiAlbert(n, 2, &rng).MoveValueOrDie();
  Matrix f = BinaryAttributes(n, 6, 0.3, &rng);
  return g.WithAttributes(f).MoveValueOrDie();
}

GAlignConfig FastConfig() {
  GAlignConfig cfg;
  cfg.epochs = 15;
  cfg.embedding_dim = 12;
  cfg.num_augmentations = 2;
  return cfg;
}

TEST(AugmenterTest, ProducesRequestedCopies) {
  AttributedGraph g = SmallGraph(1);
  GAlignConfig cfg;
  cfg.num_augmentations = 3;
  Rng rng(2);
  auto augs = MakeAugmentations(g, cfg, &rng).MoveValueOrDie();
  ASSERT_EQ(augs.size(), 3u);
  for (const auto& a : augs) {
    EXPECT_EQ(a.graph.num_nodes(), g.num_nodes());
    EXPECT_EQ(a.correspondence.size(), static_cast<size_t>(g.num_nodes()));
    EXPECT_EQ(a.laplacian.rows(), g.num_nodes());
  }
}

TEST(AugmenterTest, EvenCopiesPerturbStructureOddCopiesAttributes) {
  AttributedGraph g = SmallGraph(3, 100);
  GAlignConfig cfg;
  cfg.num_augmentations = 2;
  cfg.augment_structural_noise = 0.3;
  cfg.augment_attribute_noise = 0.5;
  Rng rng(4);
  auto augs = MakeAugmentations(g, cfg, &rng).MoveValueOrDie();

  // Structural copy: attribute rows still match through correspondence.
  const auto& structural = augs[0];
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    int64_t v2 = structural.correspondence[v];
    for (int64_t c = 0; c < g.num_attributes(); ++c) {
      ASSERT_DOUBLE_EQ(structural.graph.attributes()(v2, c),
                       g.attributes()(v, c));
    }
  }
  // Attribute copy: edge count unchanged (only attributes perturbed).
  EXPECT_EQ(augs[1].graph.num_edges(), g.num_edges());
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  AttributedGraph g = SmallGraph(5);
  Rng rng(6);
  NoisyCopyOptions opts;
  opts.structural_noise = 0.1;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();

  GAlignConfig cfg = FastConfig();
  cfg.epochs = 30;
  MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                    &rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, pair.source, pair.target, &rng).ok());
  const auto& history = trainer.loss_history();
  ASSERT_EQ(history.size(), 30u);
  // Final loss must improve substantially on the initial loss.
  EXPECT_LT(history.back(), history.front() * 0.9);
  for (double loss : history) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GE(loss, 0.0);
  }
}

TEST(TrainerTest, RejectsMismatchedAttributes) {
  AttributedGraph a = SmallGraph(7);
  Rng rng(8);
  auto b = SmallGraph(9).WithAttributes(Matrix(40, 3, 1.0)).MoveValueOrDie();
  GAlignConfig cfg = FastConfig();
  MultiOrderGcn gcn(cfg.num_layers, a.num_attributes(), cfg.embedding_dim,
                    &rng);
  Trainer trainer(cfg);
  EXPECT_FALSE(trainer.Train(&gcn, a, b, &rng).ok());
}

TEST(TrainerTest, RejectsWrongInputDim) {
  AttributedGraph a = SmallGraph(10);
  Rng rng(11);
  MultiOrderGcn gcn(2, /*input_dim=*/99, 12, &rng);
  Trainer trainer(FastConfig());
  EXPECT_FALSE(trainer.Train(&gcn, a, a, &rng).ok());
}

TEST(TrainerTest, TrainsWithoutAugmentation) {
  AttributedGraph g = SmallGraph(12);
  Rng rng(13);
  GAlignConfig cfg = FastConfig();
  cfg.use_augmentation = false;
  MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                    &rng);
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &rng).ok());
  EXPECT_EQ(trainer.loss_history().size(), static_cast<size_t>(cfg.epochs));
}

TEST(TrainerTest, WeightsChangeDuringTraining) {
  AttributedGraph g = SmallGraph(14);
  Rng rng(15);
  GAlignConfig cfg = FastConfig();
  MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                    &rng);
  Matrix before = gcn.weights()[0];
  Trainer trainer(cfg);
  ASSERT_TRUE(trainer.Train(&gcn, g, g, &rng).ok());
  EXPECT_GT(Matrix::MaxAbsDiff(before, gcn.weights()[0]), 1e-6);
  for (const Matrix& w : gcn.weights()) EXPECT_TRUE(w.AllFinite());
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  AttributedGraph g = SmallGraph(16);
  GAlignConfig cfg = FastConfig();
  cfg.epochs = 5;

  auto run = [&]() {
    Rng rng(99);
    MultiOrderGcn gcn(cfg.num_layers, g.num_attributes(), cfg.embedding_dim,
                      &rng);
    Trainer trainer(cfg);
    trainer.Train(&gcn, g, g, &rng).CheckOK();
    return gcn.weights()[0];
  };
  Matrix w1 = run();
  Matrix w2 = run();
  EXPECT_LT(Matrix::MaxAbsDiff(w1, w2), 1e-15);
}

}  // namespace
}  // namespace galign
