// IO hardening (DESIGN.md §7): every loader must reject truncated, garbage,
// and shape-mismatched files with a descriptive Status — never crash, hang,
// or silently accept NaN payloads — and every loader's fault-injection site
// must produce a clean, recoverable IOError.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "align/alignment_io.h"
#include "align/dataset_io.h"
#include "common/fault.h"
#include "core/model_io.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/noise.h"

namespace galign {
namespace {

class IoHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("galign_io_hardening_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }
  std::filesystem::path dir_;
};

// Expects a failed load whose message mentions `needle` — corrupt-file
// errors must tell the operator what is wrong, not just that something is.
template <typename R>
void ExpectErrorMentioning(const R& result, const std::string& needle) {
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(needle), std::string::npos)
      << "error message was: " << result.status().message();
}

// --- Model files ----------------------------------------------------------

TEST_F(IoHardeningTest, ModelRejectsGarbageHeaderCount) {
  WriteFile("m.txt", "galign-gcn-v1 layers=abc input_dim=4 embedding_dim=8 "
                     "activation=tanh\n");
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "layers");
}

TEST_F(IoHardeningTest, ModelRejectsAbsurdLayerCount) {
  WriteFile("m.txt", "galign-gcn-v1 layers=99999999 input_dim=4 "
                     "embedding_dim=8 activation=tanh\n");
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "malformed model header");
}

TEST_F(IoHardeningTest, ModelRejectsTruncatedWeights) {
  Rng rng(1);
  MultiOrderGcn gcn(2, 3, 4, &rng);
  ASSERT_TRUE(SaveGcnModel(gcn, Path("m.txt")).ok());
  // Keep the header, the first layer's shape, and one of its weight rows.
  std::ifstream in(Path("m.txt"));
  std::string content, line;
  for (int kept = 0; kept < 3 && std::getline(in, line); ++kept) {
    content += line + "\n";
  }
  WriteFile("m.txt", content);
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "truncated");
}

TEST_F(IoHardeningTest, ModelRejectsNaNWeight) {
  WriteFile("m.txt",
            "galign-gcn-v1 layers=1 input_dim=2 embedding_dim=2 "
            "activation=tanh\n2 2\n0.5 nan\n0.25 0.125\n");
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "non-finite weight");
}

TEST_F(IoHardeningTest, ModelRejectsShapeMismatch) {
  WriteFile("m.txt",
            "galign-gcn-v1 layers=1 input_dim=2 embedding_dim=2 "
            "activation=tanh\n3 2\n1 2\n3 4\n5 6\n");
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "shape mismatch");
}

TEST_F(IoHardeningTest, ModelRejectsTrailingData) {
  Rng rng(2);
  MultiOrderGcn gcn(1, 2, 2, &rng);
  ASSERT_TRUE(SaveGcnModel(gcn, Path("m.txt")).ok());
  std::ofstream out(Path("m.txt"), std::ios::app);
  out << "9 9\n1 2 3\n";
  out.close();
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "trailing data");
}

TEST_F(IoHardeningTest, ModelLoadRetriesTransientFaultThenFailsPersistent) {
  Rng rng(3);
  MultiOrderGcn gcn(2, 3, 4, &rng);
  ASSERT_TRUE(SaveGcnModel(gcn, Path("m.txt")).ok());

  // A single-shot injection is transient: the loader's bounded retry
  // absorbs it and the caller never sees an error.
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("io.model.load", spec);
  EXPECT_TRUE(LoadGcnModel(Path("m.txt")).ok());
  EXPECT_GE(fault::CallCount("io.model.load"), 2) << "loader did not retry";

  // A fault outlasting every retry attempt surfaces as a clean IOError.
  spec.repeat = 1000;
  fault::Arm("io.model.load", spec);
  auto failed = LoadGcnModel(Path("m.txt"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  ExpectErrorMentioning(failed, "injected fault");
}

TEST_F(IoHardeningTest, ModelLoadDetectsChecksumMismatch) {
  Rng rng(3);
  MultiOrderGcn gcn(1, 2, 2, &rng);
  ASSERT_TRUE(SaveGcnModel(gcn, Path("m.txt")).ok());

  // Flip one payload byte without touching the trailer: rename atomicity
  // can't catch post-write bit rot, the CRC must.
  std::ifstream in(Path("m.txt"));
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  auto digit = content.find_first_of("0123456789", content.find('\n'));
  ASSERT_NE(digit, std::string::npos);
  content[digit] = content[digit] == '9' ? '8' : '9';
  WriteFile("m.txt", content);
  ExpectErrorMentioning(LoadGcnModel(Path("m.txt")), "checksum mismatch");
}

// --- Edge lists and attributes --------------------------------------------

TEST_F(IoHardeningTest, EdgeListRejectsGarbageNodeCount) {
  WriteFile("g.edges", "# nodes=12abc\n0 1\n");
  ExpectErrorMentioning(LoadEdgeList(Path("g.edges")), "node count");
}

TEST_F(IoHardeningTest, EdgeListRejectsEndpointBeyondDeclaredCount) {
  WriteFile("g.edges", "# nodes=3\n0 1\n1 7\n");
  auto r = LoadEdgeList(Path("g.edges"));
  ExpectErrorMentioning(r, "exceeds declared node count");
  ExpectErrorMentioning(r, "7");
}

TEST_F(IoHardeningTest, EdgeListRejectsMalformedLineWithLineNumber) {
  WriteFile("g.edges", "# nodes=3\n0 1\n1 two\n");
  ExpectErrorMentioning(LoadEdgeList(Path("g.edges")), ":3");
}

TEST_F(IoHardeningTest, AttributesRejectNaN) {
  WriteFile("g.attrs", "1 0 1\n0 nan 1\n");
  ExpectErrorMentioning(LoadAttributes(Path("g.attrs")), "non-finite");
}

TEST_F(IoHardeningTest, AttributesRejectNonNumericToken) {
  WriteFile("g.attrs", "1 0 1\n0 hello 1\n");
  ExpectErrorMentioning(LoadAttributes(Path("g.attrs")), "hello");
}

TEST_F(IoHardeningTest, AttributesRejectRaggedRows) {
  WriteFile("g.attrs", "1 0 1\n0 1\n");
  auto r = LoadAttributes(Path("g.attrs"));
  ExpectErrorMentioning(r, "expected 3 columns, got 2");
}

// --- Alignment matrices ---------------------------------------------------

TEST_F(IoHardeningTest, AlignmentRoundTripsThenDetectsTruncation) {
  Matrix s(3, 4);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) s(r, c) = 0.1 * static_cast<double>(r + c);
  }
  ASSERT_TRUE(SaveAlignmentMatrix(s, Path("a.txt")).ok());
  ASSERT_TRUE(LoadAlignmentMatrix(Path("a.txt")).ok());

  // Drop the last data row; the surviving header gives the truncation away.
  std::ifstream in(Path("a.txt"));
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  WriteFile("a.txt", content.substr(0, content.rfind('\n', content.size() - 2) + 1));
  auto r = LoadAlignmentMatrix(Path("a.txt"));
  ExpectErrorMentioning(r, "truncated or corrupt");
}

TEST_F(IoHardeningTest, AlignmentRejectsNonFiniteScore) {
  WriteFile("a.txt", "0.5 0.25\ninf 0.125\n");
  ExpectErrorMentioning(LoadAlignmentMatrix(Path("a.txt")),
                        "non-finite alignment score");
}

TEST_F(IoHardeningTest, AlignmentIgnoresUnrelatedComments) {
  WriteFile("a.txt", "# produced by sweep run=42\n0.5 0.25\n0.125 0.0625\n");
  auto r = LoadAlignmentMatrix(Path("a.txt"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().rows(), 2);
}

// --- Dataset directories --------------------------------------------------

TEST_F(IoHardeningTest, DatasetErrorNamesThePartAndFile) {
  Rng rng(4);
  auto g = BarabasiAlbert(15, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(15, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  ASSERT_TRUE(SaveAlignmentPair(pair, dir_.string()).ok());
  ASSERT_TRUE(LoadAlignmentPair(dir_.string()).ok());

  // Corrupt one part: the error must name both the part and the file.
  WriteFile("target.attrs", "1 0\nnan 1\n");
  auto r = LoadAlignmentPair(dir_.string());
  ExpectErrorMentioning(r, "target attributes");
  ExpectErrorMentioning(r, "target.attrs");
}

TEST_F(IoHardeningTest, DatasetRejectsAttributeRowCountMismatch) {
  Rng rng(5);
  auto g = BarabasiAlbert(15, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(15, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  ASSERT_TRUE(SaveAlignmentPair(pair, dir_.string()).ok());

  WriteFile("source.attrs", "1 0 1 0\n0 1 0 1\n");  // 2 rows for 15 nodes
  auto r = LoadAlignmentPair(dir_.string());
  ExpectErrorMentioning(r, "source attributes");
  ExpectErrorMentioning(r, "declares 15 nodes");
}

TEST_F(IoHardeningTest, DatasetRejectsGroundTruthBeyondTarget) {
  Rng rng(6);
  auto g = BarabasiAlbert(10, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(10, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  ASSERT_TRUE(SaveAlignmentPair(pair, dir_.string()).ok());

  WriteFile("ground_truth.txt", "0 99\n");
  auto r = LoadAlignmentPair(dir_.string());
  ExpectErrorMentioning(r, "ground truth");
  ExpectErrorMentioning(r, "99");
}

TEST_F(IoHardeningTest, EdgeListFaultSiteContextualizedByDataset) {
  Rng rng(7);
  auto g = BarabasiAlbert(10, 2, &rng).MoveValueOrDie();
  g = g.WithAttributes(BinaryAttributes(10, 4, 0.3, &rng)).MoveValueOrDie();
  NoisyCopyOptions opts;
  auto pair = MakeNoisyCopyPair(g, opts, &rng).MoveValueOrDie();
  ASSERT_TRUE(SaveAlignmentPair(pair, dir_.string()).ok());

  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  spec.repeat = 1000;  // persistent: must outlast the loader's retries
  fault::Arm("io.edges.load", spec);  // fires on the source network read
  auto r = LoadAlignmentPair(dir_.string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  ExpectErrorMentioning(r, "source network");
  ExpectErrorMentioning(r, "injected fault");

  // A transient (single-shot) fault, by contrast, is retried away.
  spec.repeat = 1;
  fault::Arm("io.edges.load", spec);
  EXPECT_TRUE(LoadAlignmentPair(dir_.string()).ok());

  fault::DisarmAll();
  EXPECT_TRUE(LoadAlignmentPair(dir_.string()).ok());
}

TEST_F(IoHardeningTest, AlignmentMatrixLoadFaultSiteRetriesThenFails) {
  auto m = Matrix::TryCreate(3, 2).MoveValueOrDie();
  for (int64_t r = 0; r < 3; ++r)
    for (int64_t c = 0; c < 2; ++c) m(r, c) = 0.25 * static_cast<double>(r + c);
  ASSERT_TRUE(SaveAlignmentMatrix(m, Path("s.tsv")).ok());

  // Transient: the loader's bounded retry absorbs a single-shot fault.
  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("io.alignment.load", spec);
  EXPECT_TRUE(LoadAlignmentMatrix(Path("s.tsv")).ok());
  EXPECT_GE(fault::CallCount("io.alignment.load"), 2)
      << "loader did not retry";

  // Persistent: outlasts every retry, surfaces as a clean typed IOError.
  spec.repeat = 1000;
  fault::Arm("io.alignment.load", spec);
  auto failed = LoadAlignmentMatrix(Path("s.tsv"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  ExpectErrorMentioning(failed, "injected fault");
}

TEST_F(IoHardeningTest, AttributesLoadFaultSiteRetriesThenFails) {
  auto attrs = Matrix::TryCreate(4, 3).MoveValueOrDie();
  for (int64_t r = 0; r < 4; ++r)
    for (int64_t c = 0; c < 3; ++c) attrs(r, c) = (r + c) % 2 ? 1.0 : 0.0;
  ASSERT_TRUE(SaveAttributes(attrs, Path("a.tsv")).ok());

  fault::Spec spec;
  spec.kind = fault::Kind::kFailIO;
  fault::Arm("io.attrs.load", spec);
  EXPECT_TRUE(LoadAttributes(Path("a.tsv")).ok());
  EXPECT_GE(fault::CallCount("io.attrs.load"), 2) << "loader did not retry";

  spec.repeat = 1000;
  fault::Arm("io.attrs.load", spec);
  auto failed = LoadAttributes(Path("a.tsv"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  ExpectErrorMentioning(failed, "injected fault");
}

}  // namespace
}  // namespace galign
