#include "align/datasets.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace galign {
namespace {

TEST(SpecTest, PaperSpecsMatchTableII) {
  DatasetSpec douban = DoubanSpec();
  EXPECT_EQ(douban.source_nodes, 3906);
  EXPECT_EQ(douban.source_edges, 8164);
  EXPECT_EQ(douban.target_nodes, 1118);
  EXPECT_EQ(douban.num_attributes, 538);
  EXPECT_EQ(douban.num_anchors, 1118);

  DatasetSpec fm = FlickrMyspaceSpec();
  EXPECT_EQ(fm.source_nodes, 5740);
  EXPECT_EQ(fm.target_nodes, 4504);
  EXPECT_EQ(fm.num_attributes, 3);
  EXPECT_EQ(fm.num_anchors, 323);

  DatasetSpec ai = AllmovieImdbSpec();
  EXPECT_EQ(ai.source_nodes, 6011);
  EXPECT_EQ(ai.source_edges, 124709);
  EXPECT_EQ(ai.num_anchors, 5176);
}

TEST(SpecTest, ScalingShrinksProportionally) {
  DatasetSpec s = DoubanSpec().Scaled(4.0);
  EXPECT_NEAR(s.source_nodes, 3906 / 4, 2);
  EXPECT_NEAR(s.target_nodes, 1118 / 4, 2);
  EXPECT_LE(s.num_anchors, std::min(s.source_nodes, s.target_nodes));
  // Factor <= 1 is identity.
  EXPECT_EQ(DoubanSpec().Scaled(1.0).source_nodes, 3906);
}

TEST(SpecTest, ScalingNeverBelowFloor) {
  DatasetSpec s = DoubanSpec().Scaled(1e9);
  EXPECT_GE(s.source_nodes, 8);
  EXPECT_GE(s.target_nodes, 8);
}

class SynthesizedDatasets : public ::testing::TestWithParam<int> {};

DatasetSpec SpecByIndex(int i) {
  switch (i) {
    case 0:
      return DoubanSpec().Scaled(10.0);
    case 1:
      return FlickrMyspaceSpec().Scaled(10.0);
    default:
      return AllmovieImdbSpec().Scaled(10.0);
  }
}

TEST_P(SynthesizedDatasets, MatchesSpecShape) {
  DatasetSpec spec = SpecByIndex(GetParam());
  Rng rng(42);
  auto pair = SynthesizePair(spec, &rng);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  const AlignmentPair& p = pair.ValueOrDie();
  EXPECT_EQ(p.source.num_nodes(), spec.source_nodes);
  EXPECT_EQ(p.target.num_nodes(), spec.target_nodes);
  EXPECT_EQ(p.source.num_attributes(), spec.num_attributes);
  EXPECT_EQ(p.target.num_attributes(), spec.num_attributes);
  EXPECT_EQ(p.NumAnchors(), spec.num_anchors);
  // Edge counts within a loose band of the spec.
  EXPECT_GT(p.source.num_edges(), spec.source_edges * 0.5);
  EXPECT_LT(p.source.num_edges(), spec.source_edges * 1.6);
  EXPECT_GT(p.target.num_edges(), spec.target_edges * 0.4);
  EXPECT_LT(p.target.num_edges(), spec.target_edges * 1.7);
  // Ground truth entries are valid and injective.
  std::vector<bool> used(p.target.num_nodes(), false);
  for (int64_t t : p.ground_truth) {
    if (t == -1) continue;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, p.target.num_nodes());
    EXPECT_FALSE(used[t]);
    used[t] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SynthesizedDatasets,
                         ::testing::Values(0, 1, 2));

TEST(SynthesizeTest, AnchorAttributesSurviveModuloNoise) {
  DatasetSpec spec = AllmovieImdbSpec().Scaled(20.0);
  spec.attribute_noise = 0.0;
  spec.structural_noise = 0.0;
  Rng rng(7);
  auto pair = SynthesizePair(spec, &rng).MoveValueOrDie();
  // With zero noise, anchored nodes carry identical attribute rows.
  for (int64_t v = 0; v < pair.source.num_nodes(); ++v) {
    int64_t t = pair.ground_truth[v];
    if (t == -1) continue;
    for (int64_t c = 0; c < pair.source.num_attributes(); ++c) {
      EXPECT_DOUBLE_EQ(pair.source.attributes()(v, c),
                       pair.target.attributes()(t, c));
    }
  }
}

TEST(SynthesizeTest, RejectsImpossibleAnchorCount) {
  DatasetSpec spec = DoubanSpec().Scaled(10.0);
  spec.num_anchors = spec.target_nodes + 100;
  Rng rng(8);
  EXPECT_FALSE(SynthesizePair(spec, &rng).ok());
}

TEST(SynthesizeTest, DeterministicUnderSeed) {
  DatasetSpec spec = DoubanSpec().Scaled(20.0);
  Rng r1(77), r2(77);
  auto p1 = SynthesizePair(spec, &r1).MoveValueOrDie();
  auto p2 = SynthesizePair(spec, &r2).MoveValueOrDie();
  EXPECT_EQ(p1.source.edges(), p2.source.edges());
  EXPECT_EQ(p1.target.edges(), p2.target.edges());
  EXPECT_EQ(p1.ground_truth, p2.ground_truth);
  EXPECT_LT(Matrix::MaxAbsDiff(p1.source.attributes(),
                               p2.source.attributes()),
            1e-15);
}

TEST(SynthesizeTest, SparseGraphWithIsolatedNodesTerminates) {
  // Regression: endpoint-only sampling used to loop forever when the
  // number of distinct non-isolated nodes was below target_nodes.
  DatasetSpec spec;
  spec.name = "sparse";
  spec.source_nodes = 200;
  spec.source_edges = 30;  // most nodes isolated
  spec.target_nodes = 180;
  spec.target_edges = 25;
  spec.num_anchors = 150;
  spec.num_attributes = 4;
  Rng rng(78);
  auto pair = SynthesizePair(spec, &rng);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair.ValueOrDie().target.num_nodes(), 180);
  EXPECT_EQ(pair.ValueOrDie().NumAnchors(), 150);
}

TEST(RepositoryGraphsTest, MatchPublishedSizes) {
  Rng rng(9);
  auto bn = MakeBnLike(&rng).MoveValueOrDie();
  EXPECT_EQ(bn.num_nodes(), 1781);
  EXPECT_NEAR(bn.num_edges(), 9016, 9016 * 0.35);
  EXPECT_EQ(bn.num_attributes(), 20);

  auto econ = MakeEconLike(&rng).MoveValueOrDie();
  EXPECT_EQ(econ.num_nodes(), 1258);
  auto email = MakeEmailLike(&rng).MoveValueOrDie();
  EXPECT_EQ(email.num_nodes(), 1133);
}

TEST(RepositoryGraphsTest, ScaleShrinks) {
  Rng rng(10);
  auto bn = MakeBnLike(&rng, 8.0).MoveValueOrDie();
  EXPECT_NEAR(bn.num_nodes(), 1781 / 8, 2);
}

TEST(MakeAttributesTest, KindsProduceExpectedShapes) {
  Rng rng(11);
  DatasetSpec spec;
  spec.num_attributes = 12;
  spec.attribute_kind = AttributeKind::kBinaryTags;
  Matrix f1 = MakeAttributes(spec, 30, &rng);
  EXPECT_EQ(f1.cols(), 12);
  for (int64_t i = 0; i < f1.size(); ++i) {
    EXPECT_TRUE(f1.data()[i] == 0.0 || f1.data()[i] == 1.0);
  }
  spec.attribute_kind = AttributeKind::kRealProfile;
  Matrix f2 = MakeAttributes(spec, 30, &rng);
  EXPECT_EQ(f2.rows(), 30);
  EXPECT_TRUE(f2.AllFinite());
  spec.attribute_kind = AttributeKind::kCategories;
  Matrix f3 = MakeAttributes(spec, 30, &rng);
  for (int64_t r = 0; r < 30; ++r) {
    EXPECT_GE(f3.Row(r).Sum(), 1.0);  // at least one category
    EXPECT_LE(f3.Row(r).Sum(), 2.0);  // at most two (1 + optional extra)
  }
}

}  // namespace
}  // namespace galign
