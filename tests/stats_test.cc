#include "graph/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace galign {
namespace {

TEST(StatsTest, TriangleStats) {
  auto g = AttributedGraph::Create(3, {{0, 1}, {1, 2}, {0, 2}}, Matrix())
               .MoveValueOrDie();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 3);
  EXPECT_EQ(s.num_edges, 3);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_EQ(s.min_degree, 2);
  EXPECT_EQ(s.isolated_nodes, 0);
  EXPECT_DOUBLE_EQ(s.avg_clustering, 1.0);
  EXPECT_EQ(s.connected_components, 1);
}

TEST(StatsTest, PathHasZeroClustering) {
  auto g = AttributedGraph::Create(4, {{0, 1}, {1, 2}, {2, 3}}, Matrix())
               .MoveValueOrDie();
  GraphStats s = ComputeStats(g);
  EXPECT_DOUBLE_EQ(s.avg_clustering, 0.0);
}

TEST(StatsTest, IsolatedNodesAndComponents) {
  auto g = AttributedGraph::Create(6, {{0, 1}, {2, 3}}, Matrix())
               .MoveValueOrDie();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.isolated_nodes, 2);
  EXPECT_EQ(s.connected_components, 4);  // {0,1}, {2,3}, {4}, {5}
}

TEST(StatsTest, EmptyGraph) {
  auto g = AttributedGraph::Create(0, {}, Matrix()).MoveValueOrDie();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 0);
  EXPECT_EQ(s.connected_components, 0);
}

TEST(StatsTest, DegreeHistogramSums) {
  Rng rng(1);
  auto g = BarabasiAlbert(100, 2, &rng).MoveValueOrDie();
  auto hist = DegreeHistogram(g);
  int64_t total = 0, weighted = 0;
  for (size_t d = 0; d < hist.size(); ++d) {
    total += hist[d];
    weighted += static_cast<int64_t>(d) * hist[d];
  }
  EXPECT_EQ(total, 100);
  EXPECT_EQ(weighted, 2 * g.num_edges());
}

TEST(StatsTest, ConnectedComponentsOnRing) {
  Rng rng(2);
  auto g = WattsStrogatz(30, 1, 0.0, &rng).MoveValueOrDie();
  EXPECT_EQ(CountConnectedComponents(g), 1);
}

TEST(StatsTest, StatsToStringContainsFields) {
  auto g = AttributedGraph::Create(3, {{0, 1}}, Matrix()).MoveValueOrDie();
  std::string s = StatsToString(ComputeStats(g));
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("e=1"), std::string::npos);
}

TEST(StatsTest, StarIsDisassortative) {
  // Hub-and-spoke graphs have negative degree assortativity.
  std::vector<Edge> edges;
  for (int64_t v = 1; v < 20; ++v) edges.emplace_back(0, v);
  auto g = AttributedGraph::Create(20, edges, Matrix()).MoveValueOrDie();
  GraphStats s = ComputeStats(g);
  EXPECT_LT(s.degree_assortativity, 0.0);
}

TEST(StatsTest, SampledClusteringCloseToExact) {
  Rng rng(3);
  auto g = ErdosRenyi(300, 0.1, &rng).MoveValueOrDie();
  GraphStats exact = ComputeStats(g, /*clustering_samples=*/10000);
  GraphStats sampled = ComputeStats(g, /*clustering_samples=*/150);
  EXPECT_NEAR(sampled.avg_clustering, exact.avg_clustering, 0.05);
}

}  // namespace
}  // namespace galign
