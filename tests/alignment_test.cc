#include "align/alignment.h"

#include <gtest/gtest.h>

#include <set>

namespace galign {
namespace {

TEST(Top1AnchorsTest, PicksRowArgmax) {
  Matrix s{{0.1, 0.9, 0.3}, {0.8, 0.2, 0.5}};
  auto anchors = Top1Anchors(s);
  ASSERT_EQ(anchors.size(), 2u);
  EXPECT_EQ(anchors[0], 1);
  EXPECT_EQ(anchors[1], 0);
}

TEST(GreedyOneToOneTest, ResolvesConflictsGlobally) {
  // Both rows prefer column 0, but row 1 wants it more.
  Matrix s{{0.8, 0.7}, {0.9, 0.1}};
  auto anchors = GreedyOneToOneAnchors(s);
  EXPECT_EQ(anchors[1], 0);  // higher score wins the contested column
  EXPECT_EQ(anchors[0], 1);
}

TEST(GreedyOneToOneTest, ProducesInjectiveMatching) {
  Rng rng(1);
  Matrix s = Matrix::Uniform(20, 20, &rng);
  auto anchors = GreedyOneToOneAnchors(s);
  std::set<int64_t> used;
  for (int64_t a : anchors) {
    ASSERT_NE(a, -1);
    EXPECT_TRUE(used.insert(a).second) << "column assigned twice";
  }
}

TEST(GreedyOneToOneTest, MoreRowsThanColumns) {
  Rng rng(2);
  Matrix s = Matrix::Uniform(5, 3, &rng);
  auto anchors = GreedyOneToOneAnchors(s);
  int64_t assigned = 0;
  std::set<int64_t> used;
  for (int64_t a : anchors) {
    if (a != -1) {
      ++assigned;
      EXPECT_TRUE(used.insert(a).second);
    }
  }
  EXPECT_EQ(assigned, 3);
}

TEST(SampleSeedsTest, FractionAndValidity) {
  std::vector<int64_t> gt(100);
  for (int64_t v = 0; v < 100; ++v) gt[v] = 99 - v;
  Rng rng(3);
  Supervision sup = SampleSeeds(gt, 0.1, &rng);
  EXPECT_EQ(sup.seeds.size(), 10u);
  for (const auto& [s, t] : sup.seeds) {
    EXPECT_EQ(t, gt[s]);
  }
}

TEST(SampleSeedsTest, SkipsUnanchoredNodes) {
  std::vector<int64_t> gt{5, -1, 3, -1};
  Rng rng(4);
  Supervision sup = SampleSeeds(gt, 1.0, &rng);
  EXPECT_EQ(sup.seeds.size(), 2u);
}

TEST(SampleSeedsTest, ZeroFractionIsEmpty) {
  std::vector<int64_t> gt{1, 2, 3};
  Rng rng(5);
  EXPECT_TRUE(SampleSeeds(gt, 0.0, &rng).seeds.empty());
}

TEST(PriorFromSeedsTest, SeedRowsAreOneHot) {
  Supervision sup;
  sup.seeds = {{0, 2}, {3, 1}};
  Matrix h = PriorFromSeeds(4, 3, sup);
  EXPECT_DOUBLE_EQ(h(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(h(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(h(3, 1), 1.0);
  // Unseeded rows are uniform.
  EXPECT_NEAR(h(1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(h(2, 2), 1.0 / 3.0, 1e-12);
}

TEST(AttributePriorTest, RowsAreNormalized) {
  Matrix fs{{1, 0}, {0, 1}};
  Matrix ft{{1, 0}, {0.5, 0.5}, {0, 1}};
  auto gs = AttributedGraph::Create(2, {}, fs).MoveValueOrDie();
  auto gt = AttributedGraph::Create(3, {}, ft).MoveValueOrDie();
  Matrix n = AttributePrior(gs, gt);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += n(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Exact attribute match dominates the row.
  EXPECT_GT(n(0, 0), n(0, 2));
}

TEST(AttributePriorTest, IncomparableModalitiesFallBackToUniform) {
  auto gs = AttributedGraph::Create(2, {}, Matrix(2, 3, 1.0)).MoveValueOrDie();
  auto gt = AttributedGraph::Create(2, {}, Matrix(2, 5, 1.0)).MoveValueOrDie();
  Matrix n = AttributePrior(gs, gt);
  EXPECT_NEAR(n(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(n(1, 1), 0.5, 1e-12);
}

}  // namespace
}  // namespace galign
