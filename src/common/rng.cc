#include "common/rng.h"

#include <numeric>
#include <unordered_set>

namespace galign {

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> p(n);
  std::iota(p.begin(), p.end(), 0);
  Shuffle(&p);
  return p;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  if (k > n) k = n;
  // For dense samples a shuffled prefix is cheaper; for sparse samples use
  // rejection into a hash set.
  if (k * 3 >= n) {
    std::vector<int64_t> p = Permutation(n);
    p.resize(k);
    return p;
  }
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  out.reserve(k);
  while (static_cast<int64_t>(out.size()) < k) {
    int64_t x = UniformInt(n);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

}  // namespace galign
