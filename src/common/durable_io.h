// Durable file IO primitives (DESIGN.md §8).
//
// Three building blocks shared by model/alignment writers, the trainer
// checkpointer, and the bench cell cache:
//
//  * AtomicWriteFile — write-to-temp → fsync → rename, so a reader (or a
//    process resuming after a crash) never observes a torn file: it sees
//    either the old complete content or the new complete content.
//  * CRC32 trailers — AppendCrc32Trailer stamps a payload with a trailing
//    `#crc32 <hex>` line; StripAndVerifyCrc32Trailer detects any bit rot or
//    truncation that slipped past the rename barrier (e.g. media faults).
//  * RetryTransient — seeded, jittered exponential backoff for transient
//    IO failures, bounded in attempts so persistent faults still surface.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace galign {

/// \brief CRC-32 (IEEE 802.3, reflected) of `data`.
///
/// Software table implementation; check value: Crc32("123456789") ==
/// 0xCBF43926. Fast enough for the small text payloads we durably persist.
uint32_t Crc32(const void* data, size_t size);
uint32_t Crc32(const std::string& data);

/// \brief Durably replaces `path` with `content`.
///
/// Writes `path`.tmp.<pid>, fsyncs it, then rename(2)s over `path` and
/// fsyncs the containing directory. POSIX rename atomicity guarantees any
/// concurrent or post-crash reader sees either the previous file or the
/// full new content — never a prefix.
[[nodiscard]] Status AtomicWriteFile(const std::string& path, const std::string& content);

/// \brief Reads the entire file at `path` into a string.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

/// \brief Bit-exact text encoding of a double: the 16 lowercase hex digits
/// of its IEEE-754 bit pattern.
///
/// operator<< at precision(17) round-trips finite values but istream >>
/// refuses "inf"/"nan", and bit identity (not value identity) is the
/// durability contract — so every persisted double goes through this.
std::string HexDouble(double d);

/// \brief Inverse of HexDouble. IOError naming `context` when `tok` is not
/// exactly 16 lowercase hex digits.
[[nodiscard]] Result<double> ParseHexDouble(const std::string& tok,
                                            const std::string& context);

/// Trailer line marking the CRC of everything before it in the file.
inline constexpr char kCrcTrailerPrefix[] = "#crc32 ";

/// \brief Returns `payload` with a `#crc32 <hex>` trailer line appended.
///
/// The checksum covers every byte before the trailer line (a trailing
/// newline is added to the payload if missing, and is covered).
std::string AppendCrc32Trailer(const std::string& payload);

/// \brief Verifies and removes a `#crc32` trailer.
///
/// Returns the payload without the trailer. When `require_trailer` is
/// false and no trailer is present the payload is returned as-is (legacy
/// files written before checksumming); a present-but-wrong trailer is
/// always an IOError mentioning "checksum mismatch".
[[nodiscard]] Result<std::string> StripAndVerifyCrc32Trailer(const std::string& content,
                                               bool require_trailer,
                                               const std::string& context);

/// \brief Bounded retry schedule for transient IO faults.
///
/// Backoff for attempt k (1-based) is base_backoff_ms * 2^(k-1), capped at
/// max_backoff_ms, each multiplied by a seeded jitter in [0.5, 1.0] so
/// colliding retriers decorrelate deterministically.
struct RetryPolicy {
  int max_attempts = 3;
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 8.0;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// \brief Runs `fn` (a callable returning Status) under `policy`.
///
/// Only kIOError results are retried — parse/corruption errors surface on
/// the first attempt. Sleeps the jittered backoff between attempts and
/// returns the last Status when attempts are exhausted.
template <typename Fn>
[[nodiscard]] Status RetryTransient(const RetryPolicy& policy, Fn&& fn);

namespace internal {
/// Jittered backoff duration in ms for `attempt` (1-based) under `policy`.
double BackoffMillis(const RetryPolicy& policy, int attempt);
/// Sleeps the backoff for `attempt` (1-based) under `policy`. `floor_ms`
/// raises (never lowers) the sleep — a server-provided retry-after hint is
/// a promise that earlier retries are wasted, so it acts as a floor under
/// the schedule's own jittered backoff.
void BackoffSleep(const RetryPolicy& policy, int attempt,
                  double floor_ms = 0.0);
}  // namespace internal

/// \brief Outcome of one generation-directory retention pass.
struct RetentionReport {
  int kept = 0;                           ///< surviving generation files
  std::vector<std::string> pruned;        ///< valid but beyond the keep window
  std::vector<std::string> torn_removed;  ///< failed CRC, garbage-collected
};

/// \brief Keep-last-N retention with last-good pinning over a generation
/// directory (checkpoints, serving artifacts).
///
/// `gen_of` maps a filename to its generation number; a negative return
/// means "not a generation file" and the entry is never touched. Survivors
/// are the `keep` newest CRC-valid generations plus the generation
/// `pinned_gen` when it is present and valid (last-good pinning: the
/// generation a live reader depends on is never pruned out from under it,
/// even once `keep` newer generations exist). The manifest
/// (`<dir>/MANIFEST`, `manifest_magic` + survivors newest-first + CRC
/// trailer) is rewritten before any file is deleted, so a crash mid-pass
/// never leaves the manifest naming a removed file.
///
/// Torn files (missing/wrong CRC trailer) are garbage-collected only when
/// at least one valid generation survives: when *everything* is torn they
/// are left in place as evidence, preserving the loaders' "all generations
/// failed validation" IOError over a silent NotFound.
[[nodiscard]] Result<RetentionReport> ApplyGenerationRetention(
    const std::string& dir, const std::string& manifest_magic,
    const std::function<int(const std::string&)>& gen_of, int keep,
    int pinned_gen = -1);

template <typename Fn>
[[nodiscard]] Status RetryTransient(const RetryPolicy& policy, Fn&& fn) {
  Status last = Status::OK();
  int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = fn();
    if (last.ok() || last.code() != StatusCode::kIOError) return last;
    if (attempt < attempts) internal::BackoffSleep(policy, attempt);
  }
  return last;
}

/// \brief Result-returning sibling of RetryTransient.
///
/// `fn` returns Result<T>; only kIOError outcomes are retried, and the
/// final attempt's result (success or not) is returned verbatim.
template <typename Fn>
auto RetryTransientResult(const RetryPolicy& policy, Fn&& fn)
    -> decltype(fn()) {
  int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    auto res = fn();
    if (res.ok() || res.status().code() != StatusCode::kIOError ||
        attempt >= attempts) {
      return res;
    }
    internal::BackoffSleep(policy, attempt);
  }
}

}  // namespace galign
