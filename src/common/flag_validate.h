// Typed validation of command-line / config inputs (DESIGN.md §12).
//
// The CLI entry points (galign_cli, galign_serve) historically validated
// flags ad hoc: some out-of-domain values were rejected with a bare
// fprintf, others were silently clamped, and a malformed byte-size suffix
// could slip through strtoull as a giant number. These helpers make flag
// validation uniform: every check returns a typed InvalidArgument Status
// whose message carries the flag name, the offending value, the expected
// domain, and the file:line of the validation site — so a rejected
// invocation is diagnosable from the error alone.
//
// Use through the GALIGN_VALIDATE_* macros so the call site's location is
// captured automatically.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/parse.h"
#include "common/status.h"

namespace galign {

namespace flag_internal {

/// "file:123: --flag=value rejected: detail".
inline std::string FlagError(const char* file, int line, const char* flag,
                             const std::string& value,
                             const std::string& detail) {
  return std::string(file) + ":" + std::to_string(line) + ": " + flag + "=" +
         value + " rejected: " + detail;
}

}  // namespace flag_internal

/// Parses a byte-size flag value: a base-10 count with an optional single
/// k/m/g suffix (case-insensitive). Rejects empty strings, zero, malformed
/// suffixes ("512q", "1mb", "m"), negative or overflowing counts.
[[nodiscard]] inline Result<uint64_t> ValidateByteSizeFlag(
    const std::string& value, const char* flag, const char* file, int line) {
  auto err = [&](const std::string& detail) -> Status {
    return Status::InvalidArgument(
        flag_internal::FlagError(file, line, flag, value, detail));
  };
  if (value.empty()) return err("empty value (expected e.g. 512m, 2g, 64k)");
  size_t digits = 0;
  while (digits < value.size() && value[digits] >= '0' &&
         value[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) return err("must start with a digit (e.g. 512m)");
  uint64_t mult = 1;
  const std::string suffix = value.substr(digits);
  if (suffix == "k" || suffix == "K") mult = 1ull << 10;
  else if (suffix == "m" || suffix == "M") mult = 1ull << 20;
  else if (suffix == "g" || suffix == "G") mult = 1ull << 30;
  else if (!suffix.empty()) {
    return err("bad suffix '" + suffix + "' (expected k, m, or g)");
  }
  auto count = ParseInt64(value.substr(0, digits), flag);
  if (!count.ok()) return err(count.status().message());
  const uint64_t n = static_cast<uint64_t>(count.ValueOrDie());
  if (n == 0) return err("must be > 0");
  if (n > UINT64_MAX / mult) return err("overflows 64-bit byte count");
  return n * mult;
}

/// Parses a flag value that must lie in the half-open unit interval (0, 1]
/// — e.g. --ann-recall-target. Rejects non-numeric text, NaN, and values
/// outside the domain instead of clamping.
[[nodiscard]] inline Result<double> ValidateUnitIntervalFlag(
    const std::string& value, const char* flag, const char* file, int line) {
  auto parsed = ParseDouble(value, flag);
  if (!parsed.ok()) {
    return Status::InvalidArgument(flag_internal::FlagError(
        file, line, flag, value, parsed.status().message()));
  }
  const double v = parsed.ValueOrDie();
  if (!(v > 0.0 && v <= 1.0)) {  // !(...) also catches NaN
    return Status::InvalidArgument(flag_internal::FlagError(
        file, line, flag, value, "must satisfy 0 < value <= 1"));
  }
  return v;
}

/// Parses a strictly positive integer flag value (--topk, --epochs,
/// --workers, ...). Rejects garbage, zero, and negatives.
[[nodiscard]] inline Result<int64_t> ValidatePositiveIntFlag(
    const std::string& value, const char* flag, const char* file, int line) {
  auto parsed = ParseInt64(value, flag);
  if (!parsed.ok()) {
    return Status::InvalidArgument(flag_internal::FlagError(
        file, line, flag, value, parsed.status().message()));
  }
  if (parsed.ValueOrDie() <= 0) {
    return Status::InvalidArgument(
        flag_internal::FlagError(file, line, flag, value, "must be > 0"));
  }
  return parsed.ValueOrDie();
}

/// Data-dependent bound for --topk: k cannot exceed the number of target
/// nodes (a top-k over n2 candidates has at most n2 entries; silently
/// clamping would mislabel the output). Checked after the networks load.
[[nodiscard]] inline Status ValidateTopKBound(int64_t k, int64_t n_target,
                                              const char* flag,
                                              const char* file, int line) {
  if (k > n_target) {
    return Status::InvalidArgument(flag_internal::FlagError(
        file, line, flag, std::to_string(k),
        "exceeds the " + std::to_string(n_target) +
            " target nodes (a per-row top-k has at most n2 entries)"));
  }
  return Status::OK();
}

#define GALIGN_VALIDATE_BYTE_SIZE(value, flag) \
  ::galign::ValidateByteSizeFlag((value), (flag), __FILE__, __LINE__)
#define GALIGN_VALIDATE_UNIT_INTERVAL(value, flag) \
  ::galign::ValidateUnitIntervalFlag((value), (flag), __FILE__, __LINE__)
#define GALIGN_VALIDATE_POSITIVE_INT(value, flag) \
  ::galign::ValidatePositiveIntFlag((value), (flag), __FILE__, __LINE__)
#define GALIGN_VALIDATE_TOPK_BOUND(k, n_target, flag) \
  ::galign::ValidateTopKBound((k), (n_target), (flag), __FILE__, __LINE__)

}  // namespace galign
