// A small static thread pool exposing parallel_for. Dense kernels in la/ use
// it to scale GEMM/SpMM across cores without an OpenMP dependency.
#pragma once

#include <cstdint>
#include <functional>

namespace galign {

/// Number of worker threads the pool was created with (>= 1).
int ParallelismLevel();

/// \brief Runs fn(begin..end) partitioned across the thread pool.
///
/// Blocks until all chunks complete. fn receives half-open ranges
/// [chunk_begin, chunk_end). Falls back to a serial call when the range is
/// small or the pool has a single worker. fn must be thread-safe across
/// disjoint ranges.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1024);

}  // namespace galign
