// Wall-clock timing helper used by the experiment pipeline to report
// per-method run times (Table III "Time(s)" column).
#pragma once

#include <chrono>

namespace galign {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace galign
