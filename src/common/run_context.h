// Cooperative cancellation, deadline, and memory-budget propagation
// (DESIGN.md §8 and §9).
//
// A RunContext carries an optional wall-clock deadline, an optional
// shared cancellation token, and an optional shared MemoryBudget. It is threaded through every long-running
// computation in the library — Trainer epochs, refinement iterations, the
// budgeted solvers behind ConvergenceReport, and all baseline aligners — so
// a run that exceeds its budget degrades to its best-so-far result instead
// of running unbounded. Checks are cooperative: loops poll ShouldStop() at
// iteration granularity (one steady_clock read + one relaxed atomic load),
// never inside kernels.
//
// A default-constructed RunContext is unbounded: ShouldStop() is always
// false and the legacy Align()/Train() entry points behave exactly as
// before.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/memory_budget.h"

namespace galign {

/// \brief Shared cancellation flag.
///
/// Copies observe the same underlying flag, so a token handed to a worker
/// can be cancelled from the coordinating thread. Cancel() is sticky —
/// there is no un-cancel.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Safe to call from any thread, idempotent.
  void Cancel() const { state_->store(true, std::memory_order_release); }

  bool cancelled() const {
    return state_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// \brief Deadline + cancellation context of one run.
///
/// Cheap to copy; pass by const reference down call chains. Use
/// RunContext::WithTimeout(seconds) for the common "bound this run" case.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded: no deadline, token never fires unless explicitly shared.
  RunContext() = default;

  static RunContext Unbounded() { return RunContext(); }

  /// A context expiring `seconds` from now (<= 0 is already expired).
  static RunContext WithTimeout(double seconds) {
    return WithDeadline(Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds)));
  }

  static RunContext WithDeadline(Clock::time_point deadline) {
    RunContext ctx;
    ctx.deadline_ = deadline;
    ctx.has_deadline_ = true;
    return ctx;
  }

  /// A context bounded only by a memory budget of `bytes` (DESIGN.md §9).
  static RunContext WithMemoryBudget(uint64_t bytes) {
    RunContext ctx;
    ctx.SetBudget(std::make_shared<MemoryBudget>(bytes));
    return ctx;
  }

  /// Attaches a cancellation token (chainable with the factories above).
  RunContext& SetToken(const CancelToken& token) {
    token_ = token;
    return *this;
  }

  /// Attaches a memory budget shared by everything running under this
  /// context. Aligners reserve their estimated peak against it before
  /// allocating (admission control); a null budget means unbounded.
  RunContext& SetBudget(std::shared_ptr<MemoryBudget> budget) {
    budget_ = std::move(budget);
    return *this;
  }

  /// The attached budget, or nullptr when memory is unbounded.
  MemoryBudget* budget() const { return budget_.get(); }

  /// True when a finite memory limit applies to this run.
  bool HasMemoryLimit() const {
    return budget_ != nullptr && budget_->bounded();
  }

  const CancelToken& token() const { return token_; }

  bool has_deadline() const { return has_deadline_; }

  bool DeadlineExceeded() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  bool Cancelled() const { return token_.cancelled(); }

  /// True when the run must wind down: deadline passed or token fired.
  bool ShouldStop() const { return Cancelled() || DeadlineExceeded(); }

  /// Seconds until the deadline (negative once passed); +infinity when
  /// unbounded. Lets callers size remaining work (e.g. skip an expensive
  /// refinement stage that cannot possibly fit).
  double RemainingSeconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  CancelToken token_{};
  std::shared_ptr<MemoryBudget> budget_;
};

}  // namespace galign
