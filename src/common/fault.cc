#include "common/fault.h"

#ifndef GALIGN_DISABLE_FAULT_INJECTION

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <random>
#include <unordered_map>

namespace galign {
namespace fault {

namespace {

struct SiteState {
  Spec spec;
  int64_t calls = 0;  // calls observed since Arm()
};

// Number of armed sites; lets disarmed instrumentation points bail out with
// a single relaxed load instead of taking the mutex.
std::atomic<int> g_armed{0};
std::mutex g_mu;
std::unordered_map<std::string, SiteState>& Sites() {  // galign: guarded_by(g_mu)
  static auto* sites = new std::unordered_map<std::string, SiteState>();
  return *sites;
}

// Bumps the site counter and returns the spec if this call fires.
bool Fires(const char* site, Spec* spec, int64_t* call_index) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(site);
  if (it == Sites().end()) return false;
  SiteState& s = it->second;
  const int64_t call = s.calls++;
  if (call < s.spec.at_call || call >= s.spec.at_call + s.spec.repeat) {
    return false;
  }
  *spec = s.spec;
  *call_index = call;
  return true;
}

}  // namespace

void Arm(const std::string& site, const Spec& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto [it, inserted] = Sites().insert_or_assign(site, SiteState{spec, 0});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (Sites().erase(site) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.fetch_sub(static_cast<int>(Sites().size()),
                    std::memory_order_relaxed);
  Sites().clear();
}

int64_t CallCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.calls;
}

bool ShouldFailIO(const char* site) {
  Spec spec;
  int64_t call;
  return Fires(site, &spec, &call) && spec.kind == Kind::kFailIO;
}

void CorruptBuffer(const char* site, double* data, int64_t size) {
  Spec spec;
  int64_t call;
  if (size <= 0 || !Fires(site, &spec, &call)) return;
  // The corrupted entry depends only on (seed, firing index), so two runs
  // with the same arm spec corrupt the same entry on the same call.
  std::mt19937_64 rng(spec.seed + static_cast<uint64_t>(call - spec.at_call));
  const int64_t idx = static_cast<int64_t>(rng() % static_cast<uint64_t>(size));
  switch (spec.kind) {
    case Kind::kNaN:
      data[idx] = std::numeric_limits<double>::quiet_NaN();
      break;
    case Kind::kInf:
      data[idx] = std::numeric_limits<double>::infinity();
      break;
    case Kind::kPerturb: {
      std::uniform_real_distribution<double> u(-1.0, 1.0);
      data[idx] += spec.magnitude * u(rng);
      break;
    }
    case Kind::kFailIO:
      break;  // not meaningful for buffers
  }
}

double Perturb(const char* site, double value) {
  Spec spec;
  int64_t call;
  if (!Fires(site, &spec, &call)) return value;
  switch (spec.kind) {
    case Kind::kNaN:
      return std::numeric_limits<double>::quiet_NaN();
    case Kind::kInf:
      return std::numeric_limits<double>::infinity();
    case Kind::kPerturb: {
      std::mt19937_64 rng(spec.seed +
                          static_cast<uint64_t>(call - spec.at_call));
      std::uniform_real_distribution<double> u(-1.0, 1.0);
      return value + spec.magnitude * u(rng);
    }
    case Kind::kFailIO:
      return value;
  }
  return value;
}

}  // namespace fault
}  // namespace galign

#endif  // GALIGN_DISABLE_FAULT_INJECTION
