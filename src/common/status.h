// Status / Result error-handling primitives, in the style of Apache Arrow and
// RocksDB: fallible operations return a Status (or Result<T>) instead of
// throwing, and callers are expected to check it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace galign {

/// Error categories used across the library.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIOError,
  kNotConverged,
  kResourceExhausted,
  kInternal,
  /// A serving-side admission rejection: the request was never queued
  /// because the server is at capacity. Retryable after backoff
  /// (DESIGN.md §12) — unlike kResourceExhausted, which signals a memory
  /// admission failure that a retry alone will not fix.
  kOverloaded,
  /// The request's deadline expired before any result could be produced.
  /// Long-running *computations* still return best-so-far results instead
  /// of this (DESIGN.md §8); only the serving path, where an empty partial
  /// result helps nobody, rejects with this code.
  kDeadlineExceeded,
};

/// \brief Outcome of a fallible operation.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// human-readable message otherwise. Use the GALIGN_RETURN_NOT_OK macro to
/// propagate errors.
///
/// [[nodiscard]] at class level: any function returning a Status by value
/// is implicitly nodiscard, so a silently dropped error is a compile error
/// (-Werror=unused-result). galign_lint's unchecked-status rule covers the
/// same contract at statement level (DESIGN.md §10).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  /// A memory (or other resource) budget would be exceeded. Degradable:
  /// callers fall back to chunked computation where one exists.
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Serving admission rejection (shed load). Typed so clients can key
  /// retry-with-backoff on it without string matching.
  [[nodiscard]] static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  /// Per-request deadline expired with no usable partial answer.
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Returns e.g. "InvalidArgument: negative dimension".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Intended for
  /// callers that have already validated inputs (internal invariants).
  void CheckOK() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A value or an error, for fallible factory-style functions.
/// Class-level [[nodiscard]], same rationale as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Aborts if the result holds an error.
  T& ValueOrDie() {
    status_.CheckOK();
    return *value_;
  }
  const T& ValueOrDie() const {
    status_.CheckOK();
    return *value_;
  }
  T&& MoveValueOrDie() {
    status_.CheckOK();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define GALIGN_RETURN_NOT_OK(expr)        \
  do {                                    \
    ::galign::Status _st = (expr);        \
    if (!_st.ok()) return _st;            \
  } while (0)

#define GALIGN_CHECK_OK(expr) (expr).CheckOK()

}  // namespace galign
