// Deterministic fault injection for robustness testing.
//
// Every recovery path in the library (divergence rollback in the trainer,
// solver degradation, IO error handling) is exercised by *injecting* the
// fault it defends against, at an exactly chosen call count, under a fixed
// seed — so the failure tests are reproducible bit for bit.
//
// A fault *site* is a string name compiled into an instrumentation point
// (e.g. "train.grad", "io.model.load"). Sites are inert until a test arms
// them with Arm(); the hot-path cost of a disarmed site is one relaxed
// atomic load. Defining GALIGN_DISABLE_FAULT_INJECTION (CMake option
// -DGALIGN_FAULT_INJECTION=OFF) compiles all hooks out entirely.
//
// Call counts are per-site and start at zero when the site is armed, which
// makes "fail the 3rd read after this point" deterministic regardless of
// what ran before the test.
#pragma once

#include <cstdint>
#include <string>

namespace galign {
namespace fault {

/// What an armed site injects when it fires.
enum class Kind : int8_t {
  kNaN,      ///< overwrite one buffer entry (or the scalar) with quiet NaN
  kInf,      ///< overwrite with +infinity
  kPerturb,  ///< add magnitude * uniform(-1, 1) noise
  kFailIO,   ///< ShouldFailIO() returns true (caller returns an IOError)
};

/// An armed fault: fires on calls [at_call, at_call + repeat) of the site,
/// counting from the moment it was armed.
struct Spec {
  Kind kind = Kind::kNaN;
  int64_t at_call = 0;     ///< 0-based call index of the first firing
  int64_t repeat = 1;      ///< number of consecutive firing calls
  double magnitude = 1.0;  ///< perturbation amplitude (kPerturb only)
  uint64_t seed = 1;       ///< picks the corrupted buffer entry
};

#ifndef GALIGN_DISABLE_FAULT_INJECTION

/// Arms `site` with `spec`, resetting the site's call counter. Replaces any
/// previously armed spec for the same site.
void Arm(const std::string& site, const Spec& spec);

/// Disarms one site / all sites. Counters are discarded.
void Disarm(const std::string& site);
void DisarmAll();

/// Calls observed by `site` since it was armed (0 if not armed).
int64_t CallCount(const std::string& site);

// --- Instrumentation points (called from library code) -------------------

/// IO sites: true when the armed kFailIO fault fires on this call.
bool ShouldFailIO(const char* site);

/// Buffer sites (gradients, weights): corrupts one deterministically chosen
/// entry of data[0..size) when a kNaN/kInf/kPerturb fault fires.
void CorruptBuffer(const char* site, double* data, int64_t size);

/// Scalar sites (losses, solver residuals): returns the injected value when
/// a fault fires, `value` unchanged otherwise.
double Perturb(const char* site, double value);

#else  // GALIGN_DISABLE_FAULT_INJECTION: hooks compile to nothing.

inline void Arm(const std::string&, const Spec&) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline int64_t CallCount(const std::string&) { return 0; }
inline constexpr bool ShouldFailIO(const char*) { return false; }
inline constexpr void CorruptBuffer(const char*, double*, int64_t) {}
inline constexpr double Perturb(const char*, double value) { return value; }

#endif  // GALIGN_DISABLE_FAULT_INJECTION

}  // namespace fault
}  // namespace galign
