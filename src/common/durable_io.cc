#include "common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

namespace galign {

namespace {

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// Directory part of `path` ("." when the path has no separator), used to
// fsync the directory entry after rename so the new name itself is durable.
std::string DirOf(const std::string& path) {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot create", tmp));

  const char* buf = content.data();
  size_t remaining = content.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, buf, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::IOError(ErrnoMessage("write failed for", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    buf += n;
    remaining -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::IOError(ErrnoMessage("fsync failed for", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    Status st = Status::IOError(ErrnoMessage("close failed for", tmp));
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::IOError(ErrnoMessage("rename failed onto", path));
    ::unlink(tmp.c_str());
    return st;
  }
  // Make the rename itself durable: fsync the directory entry. Failure here
  // is non-fatal for correctness of readers (the file content is complete),
  // so surface it but do not roll back.
  int dfd = ::open(DirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return out.str();
}

std::string AppendCrc32Trailer(const std::string& payload) {
  std::string body = payload;
  if (body.empty() || body.back() != '\n') body += '\n';
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", Crc32(body));
  return body + kCrcTrailerPrefix + hex + "\n";
}

Result<std::string> StripAndVerifyCrc32Trailer(const std::string& content,
                                               bool require_trailer,
                                               const std::string& context) {
  // The trailer is the last non-empty line; find its start.
  size_t end = content.size();
  while (end > 0 && content[end - 1] == '\n') --end;
  size_t line_start = content.rfind('\n', end == 0 ? 0 : end - 1);
  line_start = (line_start == std::string::npos) ? 0 : line_start + 1;
  const std::string last_line = content.substr(line_start, end - line_start);

  const size_t prefix_len = sizeof(kCrcTrailerPrefix) - 1;
  if (last_line.compare(0, prefix_len, kCrcTrailerPrefix) != 0) {
    if (require_trailer) {
      return Status::IOError("missing #crc32 trailer in " + context);
    }
    return content;
  }
  uint32_t expected = 0;
  {
    std::istringstream hs(last_line.substr(prefix_len));
    hs >> std::hex >> expected;
    if (hs.fail()) {
      return Status::IOError("malformed #crc32 trailer in " + context);
    }
  }
  const std::string payload = content.substr(0, line_start);
  uint32_t actual = Crc32(payload);
  if (actual != expected) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "checksum mismatch (stored %08x, computed %08x) in ",
                  expected, actual);
    return Status::IOError(buf + context);
  }
  return payload;
}

std::string HexDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

Result<double> ParseHexDouble(const std::string& tok,
                              const std::string& context) {
  if (tok.size() != 16 ||
      tok.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::IOError("bad double bit pattern '" + tok + "' in " +
                           context);
  }
  uint64_t bits = std::strtoull(tok.c_str(), nullptr, 16);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

namespace internal {

double BackoffMillis(const RetryPolicy& policy, int attempt) {
  double backoff = policy.base_backoff_ms;
  for (int i = 1; i < attempt; ++i) backoff *= 2.0;
  if (backoff > policy.max_backoff_ms) backoff = policy.max_backoff_ms;
  // Deterministic per-(seed, attempt) jitter in [0.5, 1.0] decorrelates
  // concurrent retriers without a global RNG dependency.
  std::mt19937_64 gen(policy.seed + static_cast<uint64_t>(attempt));
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  return backoff * jitter(gen);
}

void BackoffSleep(const RetryPolicy& policy, int attempt, double floor_ms) {
  const double sleep_ms = std::max(BackoffMillis(policy, attempt), floor_ms);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(sleep_ms));
}

}  // namespace internal

Result<RetentionReport> ApplyGenerationRetention(
    const std::string& dir, const std::string& manifest_magic,
    const std::function<int(const std::string&)>& gen_of, int keep,
    int pinned_gen) {
  keep = std::max(1, keep);
  struct Entry {
    std::string name;
    int gen;
    bool valid;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = item.path().filename().string();
    const int gen = gen_of(name);
    if (gen < 0) continue;
    bool valid = false;
    auto content = ReadFileToString(dir + "/" + name);
    if (content.ok()) {
      valid = StripAndVerifyCrc32Trailer(content.ValueOrDie(),
                                         /*require_trailer=*/true,
                                         dir + "/" + name)
                  .ok();
    }
    entries.push_back({name, gen, valid});
  }
  if (ec) {
    return Status::IOError("cannot scan generation dir " + dir + ": " +
                           ec.message());
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.gen > b.gen; });

  RetentionReport report;
  std::vector<std::string> survivors;
  std::vector<std::string> victims;
  int valid_kept = 0;
  bool any_valid = false;
  for (const Entry& e : entries) any_valid |= e.valid;
  for (const Entry& e : entries) {
    if (!e.valid) {
      // A torn file is never a survivor, but it is only deleted when a
      // valid generation remains to serve from — an all-torn directory
      // keeps its evidence so loaders still report data loss (IOError)
      // instead of a clean NotFound.
      if (any_valid) victims.push_back(e.name);
      continue;
    }
    if (valid_kept < keep || e.gen == pinned_gen) {
      survivors.push_back(e.name);
      ++valid_kept;
    } else {
      victims.push_back(e.name);
      report.pruned.push_back(e.name);
    }
  }
  report.kept = valid_kept;

  // Manifest first: after this write no surviving reader path references a
  // victim, so deleting them cannot tear a concurrent load.
  std::string manifest = manifest_magic + "\n";
  for (const std::string& s : survivors) manifest += s + "\n";
  GALIGN_RETURN_NOT_OK(
      AtomicWriteFile(dir + "/MANIFEST", AppendCrc32Trailer(manifest)));

  for (const std::string& v : victims) {
    std::filesystem::remove(dir + "/" + v, ec);
  }
  for (const Entry& e : entries) {
    if (!e.valid && any_valid) report.torn_removed.push_back(e.name);
  }
  return report;
}

}  // namespace galign
