// Minimal leveled logger. Logging is synchronous and writes to stderr; the
// level can be changed globally (benchmarks silence INFO output).
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace galign {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace galign

#define GALIGN_LOG(level)                                              \
  ::galign::internal::LogMessage(::galign::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#define GALIGN_DCHECK(cond)                                                \
  do {                                                                     \
    if (!(cond)) {                                                         \
      { GALIGN_LOG(Error) << "DCHECK failed: " #cond << " (aborting)"; }   \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
