// Strict, non-throwing numeric parsing for loaders. std::stoll/std::stoi
// throw on garbage and silently accept trailing junk ("12abc" -> 12); file
// loaders must instead reject corrupt fields with a descriptive Status.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/status.h"

namespace galign {

/// Parses a whole string as a base-10 signed 64-bit integer. The entire
/// string must be consumed: "12abc", "", and out-of-range values all fail.
/// `what` names the field for the error message ("node count", "layers").
[[nodiscard]] inline Result<int64_t> ParseInt64(const std::string& s, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::IOError(std::string("malformed ") + what + ": '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::IOError(std::string(what) + " out of range: '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

/// Parses a whole string as a double. Unlike istream extraction (which
/// fails outright on "nan"/"inf" text under libstdc++), strtod accepts
/// them — so loaders can reject non-finite payloads with a precise message
/// instead of a generic parse failure.
[[nodiscard]] inline Result<double> ParseDouble(const std::string& s, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::IOError(std::string("malformed ") + what + ": '" + s + "'");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::IOError(std::string(what) + " out of range: '" + s + "'");
  }
  return v;
}

}  // namespace galign
