#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace galign {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace galign
