#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace galign {

namespace {

// Set while a thread is executing pool work; nested ParallelFor calls from
// inside a worker run serially instead of deadlocking on the job mutex.
thread_local bool t_inside_pool = false;

// A lazily constructed pool of N-1 workers; the calling thread acts as the
// Nth worker so small loops never pay a wake-up latency for the entire
// range. Run() does not return until every worker has left Work(), so job
// state can be reused safely by the next call.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  void Run(int64_t begin, int64_t end,
           const std::function<void(int64_t, int64_t)>& fn,
           int64_t min_chunk) {
    const int64_t range = end - begin;
    const int nthreads = size();
    int64_t chunks = (range + min_chunk - 1) / min_chunk;
    if (chunks > nthreads) chunks = nthreads;
    if (chunks <= 1 || t_inside_pool) {
      fn(begin, end);
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_chunk_ = (range + chunks - 1) / chunks;
    next_.store(begin);
    // Ceil-rounding of job_chunk_ can reduce the number of real chunks
    // below `chunks` (e.g. range 9 over 4 threads -> 3 chunks of 3); count
    // the windows that will actually be claimed.
    pending_.store(static_cast<int>((range + job_chunk_ - 1) / job_chunk_));
    generation_++;
    lock.unlock();
    cv_.notify_all();
    // Participate from the calling thread.
    Work();
    // Wait until all chunks ran AND no worker is still inside Work().
    std::unique_lock<std::mutex> done_lock(mu_);
    done_cv_.wait(done_lock,
                  [this] { return pending_.load() == 0 && active_.load() == 0; });
    job_fn_ = nullptr;
  }

 private:
  ThreadPool() {
    unsigned hw = std::thread::hardware_concurrency();
    int n = hw == 0 ? 4 : static_cast<int>(hw);
    for (int i = 0; i < n - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    while (true) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      // Enter Work() while still holding the lock so Run()'s completion
      // wait cannot miss this worker (active_ is raised before the job can
      // be observed complete).
      const auto* fn = job_fn_;
      if (fn == nullptr) continue;
      active_.fetch_add(1);
      lock.unlock();
      Work();
      if (active_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> done_lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  // Claims chunks until the range is exhausted. Caller (worker loop or
  // Run()) is responsible for active_ accounting of non-main threads.
  void Work() {
    const auto* fn = job_fn_;
    if (fn == nullptr) return;
    t_inside_pool = true;
    while (true) {
      int64_t start = next_.fetch_add(job_chunk_);
      if (start >= job_end_) break;
      int64_t stop = std::min(start + job_chunk_, job_end_);
      (*fn)(start, stop);
      if (pending_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    t_inside_pool = false;
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  uint64_t generation_ = 0;

  const std::function<void(int64_t, int64_t)>* job_fn_ = nullptr;
  int64_t job_end_ = 0;
  int64_t job_chunk_ = 0;
  std::atomic<int64_t> next_{0};
  std::atomic<int> pending_{0};
  std::atomic<int> active_{0};
};

}  // namespace

int ParallelismLevel() { return ThreadPool::Instance().size(); }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk) {
  if (end <= begin) return;
  ThreadPool::Instance().Run(begin, end, fn, min_chunk);
}

}  // namespace galign
