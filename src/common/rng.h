// Deterministic random number generation. All stochastic components of the
// library (generators, noise injection, weight init, walks) draw from an
// explicitly seeded Rng so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace galign {

/// \brief Seeded pseudo-random generator wrapping a 64-bit Mersenne twister.
///
/// Rng instances are cheap to fork: `Fork()` derives an independent stream,
/// which lets parallel components stay deterministic regardless of thread
/// scheduling.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  int64_t UniformInt(int64_t n) {
    return std::uniform_int_distribution<int64_t>(0, n - 1)(engine_);
  }

  /// Standard normal sample.
  double Normal() { return normal_(engine_); }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

  /// Sample k distinct values from {0, ..., n-1} (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Fisher-Yates shuffle in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[UniformInt(i + 1)]);
    }
  }

  /// Derives an independent deterministic stream.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace galign
