// Convergence accounting shared by every iterative solver in the library
// (Jacobi eigen, thin SVD, power iteration, IsoRank/FINAL fixed points,
// alignment refinement). Solvers run under an explicit iteration + residual
// budget and report how they exited instead of silently truncating; callers
// decide whether a non-converged best-so-far result is acceptable.
#pragma once

#include <sstream>
#include <string>

namespace galign {

/// \brief How an iterative solve exited its budget.
struct ConvergenceReport {
  /// True when the residual criterion was met within the iteration budget.
  bool converged = false;
  /// Iterations (or sweeps) actually executed.
  int iterations = 0;
  /// Final residual measure (solver-specific: off-diagonal norm, max |delta|
  /// between iterates, relative score improvement, ...).
  double residual = 0.0;
  /// True when the returned value is a best-so-far fallback rather than the
  /// natural result of the iteration (e.g. refinement hit non-finite
  /// embeddings and rolled back to the best finite iterate).
  bool degraded = false;

  std::string ToString() const {
    std::ostringstream os;
    os << (converged ? "converged" : "not converged") << " after "
       << iterations << " iteration(s), residual=" << residual;
    if (degraded) os << " (degraded: best-so-far result)";
    return os.str();
  }
};

}  // namespace galign
