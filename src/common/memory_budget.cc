#include "common/memory_budget.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace galign {

namespace {

std::atomic<uint64_t> g_live{0};
std::atomic<uint64_t> g_peak{0};

// Trace hook: installed only by tests; the common path is one relaxed load.
std::atomic<MemoryTracker::TraceFn> g_trace{nullptr};
std::atomic<void*> g_trace_user{nullptr};
std::mutex g_trace_mu;

void BumpPeak(uint64_t live) noexcept {
  uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live,
                                       std::memory_order_relaxed)) {
  }
}

void Trace(int64_t delta, uint64_t live_after) noexcept {
  MemoryTracker::TraceFn fn = g_trace.load(std::memory_order_acquire);
  if (fn == nullptr) return;
  std::lock_guard<std::mutex> lock(g_trace_mu);
  // Re-read under the lock so uninstall can't race a call into stale state.
  fn = g_trace.load(std::memory_order_acquire);
  if (fn != nullptr) fn(delta, live_after, g_trace_user.load());
}

std::string HumanBytes(uint64_t bytes) {
  const char* unit[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), u == 0 ? "%.0f%s" : "%.1f%s", v, unit[u]);
  return buf;
}

}  // namespace

void MemoryTracker::OnAlloc(uint64_t bytes) noexcept {
  const uint64_t live =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  BumpPeak(live);
  Trace(static_cast<int64_t>(bytes), live);
}

void MemoryTracker::OnFree(uint64_t bytes) noexcept {
  uint64_t prev = g_live.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = prev >= bytes ? prev - bytes : 0;  // clamp against drift
  } while (!g_live.compare_exchange_weak(prev, next,
                                         std::memory_order_relaxed));
  Trace(-static_cast<int64_t>(bytes), next);
}

uint64_t MemoryTracker::LiveBytes() noexcept {
  return g_live.load(std::memory_order_relaxed);
}

uint64_t MemoryTracker::PeakBytes() noexcept {
  return g_peak.load(std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() noexcept {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

void MemoryTracker::SetTrace(TraceFn fn, void* user) noexcept {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  g_trace_user.store(user);
  g_trace.store(fn, std::memory_order_release);
}

Status MemoryBudget::TryReserve(uint64_t bytes, const std::string& what) {
  uint64_t prev = reserved_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    if (bytes > limit_ || prev > limit_ - bytes) {
      return Status::ResourceExhausted(
          what + " needs " + HumanBytes(bytes) + " but only " +
          HumanBytes(limit_ - std::min(prev, limit_)) +
          " of the " + HumanBytes(limit_) + " budget remains");
    }
    next = prev + bytes;
  } while (!reserved_.compare_exchange_weak(prev, next,
                                            std::memory_order_acq_rel));
  uint64_t peak = reserved_peak_.load(std::memory_order_relaxed);
  while (next > peak &&
         !reserved_peak_.compare_exchange_weak(peak, next,
                                               std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) noexcept {
  uint64_t prev = reserved_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = prev >= bytes ? prev - bytes : 0;
  } while (!reserved_.compare_exchange_weak(prev, next,
                                            std::memory_order_acq_rel));
}

Status MemoryBudget::Admit(uint64_t bytes, const std::string& what) const {
  const uint64_t held = reserved();
  if (bytes > limit_ || held > limit_ - bytes) {
    return Status::ResourceExhausted(
        what + " needs " + HumanBytes(bytes) + " but only " +
        HumanBytes(limit_ - std::min(held, limit_)) + " of the " +
        HumanBytes(limit_) + " budget remains");
  }
  return Status::OK();
}

uint64_t MemoryBudget::remaining() const {
  if (!bounded()) return kUnlimited;
  const uint64_t held = reserved();
  return held >= limit_ ? 0 : limit_ - held;
}

Status MemoryScope::Reserve(MemoryBudget* budget, uint64_t bytes,
                            const std::string& what, MemoryScope* scope) {
  scope->reset();
  if (budget == nullptr) return Status::OK();
  GALIGN_RETURN_NOT_OK(budget->TryReserve(bytes, what));
  scope->budget_ = budget;
  scope->bytes_ = bytes;
  return Status::OK();
}

Status MemoryScope::Grow(uint64_t extra, const std::string& what) {
  if (budget_ == nullptr) return Status::OK();
  GALIGN_RETURN_NOT_OK(budget_->TryReserve(extra, what));
  bytes_ += extra;
  return Status::OK();
}

uint64_t DenseBytes(int64_t rows, int64_t cols) {
  if (rows <= 0 || cols <= 0) return 0;
  const uint64_t r = static_cast<uint64_t>(rows);
  const uint64_t c = static_cast<uint64_t>(cols);
  if (c != 0 && r > MemoryBudget::kUnlimited / c) {
    return MemoryBudget::kUnlimited;
  }
  const uint64_t cells = r * c;
  if (cells > MemoryBudget::kUnlimited / sizeof(double)) {
    return MemoryBudget::kUnlimited;
  }
  return cells * sizeof(double);
}

}  // namespace galign
