// Resource governance: byte-accounted memory budgets (DESIGN.md §9).
//
// Three cooperating pieces defend the process against resource exhaustion —
// the failure mode where an oversized alignment pair turns the O(n1*n2)
// dense similarity matrix into an uncatchable std::bad_alloc process kill:
//
//   * MemoryTracker — an always-on, process-wide live/peak gauge of
//     Matrix-owned heap bytes. TrackingAllocator (the allocator behind
//     Matrix storage) reports every allocate/deallocate with two relaxed
//     atomic ops, so RunAligner can report the true peak working set of a
//     run and the budget tests can cross-check accounting.
//
//   * MemoryBudget — an admission-control ledger with a hard byte limit.
//     Aligners reserve their EstimatePeakBytes() up front (TryReserve);
//     a reservation that does not fit comes back as
//     Status::ResourceExhausted *before* any large allocation happens, and
//     callers degrade to the chunked kernels instead of dying.
//
//   * MemoryScope — RAII around a reservation so early returns and error
//     paths always release what they admitted.
//
// The split matters: reservations (declared intent, enforced against the
// limit) and live bytes (observed truth, never enforced) are tracked
// separately, so an aligner that both reserves its estimate and then
// allocates does not double-count against the limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <new>
#include <string>
#include <utility>

#include "common/status.h"

namespace galign {

/// \brief Process-wide gauge of tracked heap bytes (Matrix storage).
///
/// All operations are lock-free; OnAlloc/OnFree cost two relaxed atomic
/// RMWs and are called only when a Matrix (re)allocates, never per element.
class MemoryTracker {
 public:
  /// Test hook observing every tracked delta. `delta` is signed bytes,
  /// `live_after` the gauge after applying it. The hook runs under an
  /// internal mutex (allocations from worker threads serialize through it)
  /// and must not allocate tracked memory. Pass nullptr to uninstall.
  using TraceFn = void (*)(int64_t delta, uint64_t live_after, void* user);

  static void OnAlloc(uint64_t bytes) noexcept;
  static void OnFree(uint64_t bytes) noexcept;

  /// Currently live tracked bytes.
  static uint64_t LiveBytes() noexcept;
  /// High-water mark since the last ResetPeak() (or process start).
  static uint64_t PeakBytes() noexcept;
  /// Sets the peak to the current live gauge. Benches call this per run to
  /// measure per-run peaks; concurrent runs share the one global window.
  static void ResetPeak() noexcept;

  static void SetTrace(TraceFn fn, void* user) noexcept;
};

/// \brief Minimal allocator that reports through MemoryTracker.
///
/// Used by Matrix for its element storage so every dense allocation in the
/// library is visible to the tracker without touching call sites.
template <typename T>
class TrackingAllocator {
 public:
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    T* p = static_cast<T*>(::operator new(n * sizeof(T)));
    MemoryTracker::OnAlloc(n * sizeof(T));
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    MemoryTracker::OnFree(n * sizeof(T));
    ::operator delete(p);
  }

  bool operator==(const TrackingAllocator&) const noexcept { return true; }
  bool operator!=(const TrackingAllocator&) const noexcept { return false; }
};

/// \brief Admission-control ledger with a hard byte limit.
///
/// Thread-safe; attach one to a RunContext (shared_ptr) to bound every
/// aligner running under that context. A default-constructed budget is
/// unlimited and never rejects.
class MemoryBudget {
 public:
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  explicit MemoryBudget(uint64_t limit_bytes = kUnlimited)
      : limit_(limit_bytes) {}

  /// True when a finite limit is set.
  bool bounded() const { return limit_ != kUnlimited; }
  uint64_t limit() const { return limit_; }

  /// Reserves `bytes` against the limit. Fails with ResourceExhausted
  /// (naming `what`, the request, and the remaining headroom) when the
  /// reservation would exceed it. Pair every success with Release — or use
  /// MemoryScope, which does it for you.
  [[nodiscard]] Status TryReserve(uint64_t bytes, const std::string& what);

  /// Returns bytes to the ledger (clamped at zero against accounting bugs).
  void Release(uint64_t bytes) noexcept;

  /// Single-shot admission check: would `bytes` fit right now? Does not
  /// record anything; cooperative call sites (Matrix::TryCreate) use it as
  /// a cheap pre-flight without owning a reservation.
  [[nodiscard]] Status Admit(uint64_t bytes, const std::string& what) const;

  uint64_t reserved() const { return reserved_.load(std::memory_order_acquire); }
  /// High-water mark of reservations over the budget's lifetime.
  uint64_t reserved_peak() const {
    return reserved_peak_.load(std::memory_order_acquire);
  }
  /// Headroom left under the limit (kUnlimited when unbounded).
  uint64_t remaining() const;

 private:
  uint64_t limit_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> reserved_peak_{0};
};

/// \brief RAII reservation against a MemoryBudget.
///
/// Movable, not copyable. A scope over a null budget is a no-op (the
/// unbounded case costs nothing). Release happens at destruction or
/// explicit reset().
class MemoryScope {
 public:
  MemoryScope() = default;
  MemoryScope(MemoryScope&& other) noexcept
      : budget_(std::exchange(other.budget_, nullptr)),
        bytes_(std::exchange(other.bytes_, 0)) {}
  MemoryScope& operator=(MemoryScope&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = std::exchange(other.budget_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }
  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;
  ~MemoryScope() { reset(); }

  /// Reserves `bytes` from `budget` (no-op success when budget is null).
  /// On success the returned Status is OK and *scope owns the reservation;
  /// on failure *scope is left empty.
  [[nodiscard]] static Status Reserve(MemoryBudget* budget, uint64_t bytes,
                        const std::string& what, MemoryScope* scope);

  /// Grows the held reservation by `extra` bytes against the same budget.
  [[nodiscard]] Status Grow(uint64_t extra, const std::string& what);

  /// Releases the reservation now.
  void reset() noexcept {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }
  bool active() const { return budget_ != nullptr; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Overflow-safe rows x cols x sizeof(double) in bytes; returns kUnlimited
/// on overflow (which no budget admits) and 0 for negative extents.
uint64_t DenseBytes(int64_t rows, int64_t cols);

}  // namespace galign
