#include "serve/client.h"

#include <chrono>
#include <thread>

namespace galign {

QueryResponse QueryWithRetry(AlignServer* server, const QueryRequest& request,
                             const RetryPolicy& policy) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  QueryResponse response;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    response = server->SubmitAndWait(request);
    if (response.status.code() != StatusCode::kOverloaded) return response;
    if (attempt == attempts) break;
    // The schedule's jittered backoff, floored by the server's own hint —
    // retrying sooner than the server asked just sheds again.
    if (response.retry_after_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          response.retry_after_ms));
    }
    internal::BackoffSleep(policy, attempt);
  }
  return response;
}

}  // namespace galign
