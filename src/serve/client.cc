#include "serve/client.h"

namespace galign {

QueryResponse QueryWithRetry(AlignServer* server, const QueryRequest& request,
                             const RetryPolicy& policy) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  QueryResponse response;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    response = server->SubmitAndWait(request);
    if (response.status.code() != StatusCode::kOverloaded) return response;
    if (attempt == attempts) break;
    // One sleep per retry: the RetryPolicy's seeded jittered exponential
    // backoff, floored by the server's retry-after hint — the hint is a
    // promise that retrying sooner just sheds again, so it raises (never
    // replaces, never stacks on) the schedule's own backoff.
    internal::BackoffSleep(policy, attempt,
                           /*floor_ms=*/response.retry_after_ms);
  }
  return response;
}

}  // namespace galign
