// The immutable serving artifact (DESIGN.md §12).
//
// An AlignmentIndex is everything `galign_serve` needs to answer "which
// target nodes align with source node v?" without touching the training
// stack: the trained multi-order GCN, the per-layer embeddings of both
// networks, the theta layer weights, an ANN index over the concatenated
// target rows, and a precomputed top-k anchor table used for degraded-mode
// answers. Once built (or loaded) it is deeply immutable — every member is
// read-only after construction, so any number of serving threads may query
// it concurrently with no synchronization beyond the shared_ptr that keeps
// it alive across artifact swaps.
//
// Durability follows the checkpoint contract (DESIGN.md §8): one artifact
// generation per file (`aidx_<8-digit gen>`), AtomicWriteFile + CRC32
// trailer, a CRC'd MANIFEST listing survivors newest-first, and
// verify-or-reject loading that falls back past torn generations. The ANN
// section is stored as a recipe and rebuilt+fingerprint-verified at load
// (graph/ann/ann_io.h), so a loaded artifact provably answers queries the
// way the saved one did.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/config.h"
#include "core/gcn.h"
#include "graph/ann/ann_index.h"
#include "graph/graph.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {

/// Knobs of the artifact build that are not training configuration.
struct AlignmentIndexOptions {
  /// Width of the precomputed anchor table (degraded-mode answers return a
  /// prefix of this). Clamped to the target size.
  int64_t anchor_k = 10;
  /// Retrieval backend + effort baseline for the embedded ANN index.
  AnnConfig ann;
};

/// \brief Immutable, versioned alignment-serving artifact.
///
/// Build once (offline), serve forever: queries() row v against ann() is
/// the multi-order similarity argmax machinery of DESIGN.md §11, and
/// anchors() holds the full precomputed top-anchor_k table for requests
/// that must be answered after their query budget is gone.
class AlignmentIndex {
 public:
  /// \brief Trains Alg. 1 under `config` and assembles the artifact.
  ///
  /// Fails with DeadlineExceeded instead of emitting a partial artifact
  /// when `ctx` stops the build early — a half-built serving index is not
  /// a degraded answer, it is a wrong one.
  [[nodiscard]] static Result<std::shared_ptr<const AlignmentIndex>> Build(
      const GAlignConfig& config, const AttributedGraph& source,
      const AttributedGraph& target, const AlignmentIndexOptions& options,
      const RunContext& ctx = RunContext());

  int64_t num_source() const { return queries_.rows(); }
  int64_t num_target() const { return ann_->base().rows(); }
  int64_t anchor_k() const { return anchors_.k; }
  const std::vector<double>& theta() const { return theta_; }
  const MultiOrderGcn& model() const { return *gcn_; }
  /// Theta-scaled source concatenation: row v is the ready-made ANN query
  /// for source node v.
  const Matrix& queries() const { return queries_; }
  const AnnIndex& ann() const { return *ann_; }
  const AnnConfig& ann_config() const { return ann_config_; }
  /// Behavioral fingerprint of ann(): CRC32 over the answers to a fixed
  /// probe batch, recorded at Build and recomputed at Parse. Quarantine
  /// validation (serve/swap) replays the probes against this value to prove
  /// a candidate artifact answers the way the published one did.
  uint32_t ann_fingerprint() const { return ann_fingerprint_; }
  /// Precomputed top-anchor_k alignment of every source row (the
  /// degraded-mode answer table).
  const TopKAlignment& anchors() const { return anchors_; }
  /// Bytes held live by the artifact (embeddings + ANN + anchor table).
  uint64_t MemoryBytes() const;

  /// Text payload (no CRC trailer — the store frames it).
  std::string Serialize() const;

  /// \brief Verify-or-reject parse: every section is validated (shapes,
  /// hex payloads, ANN fingerprint) and any defect is a typed IOError
  /// naming `context` — never a partially-initialized artifact.
  [[nodiscard]] static Result<std::shared_ptr<const AlignmentIndex>> Parse(
      const std::string& payload, const std::string& context,
      const RunContext& ctx = RunContext());

 private:
  AlignmentIndex() = default;

  std::vector<double> theta_;
  uint32_t ann_fingerprint_ = 0;
  std::unique_ptr<MultiOrderGcn> gcn_;
  std::vector<Matrix> source_layers_;
  std::vector<Matrix> target_layers_;
  Matrix queries_;
  AnnConfig ann_config_;
  std::unique_ptr<AnnIndex> ann_;
  TopKAlignment anchors_;
};

/// \brief Generation store for AlignmentIndex artifacts.
///
/// Mirrors CheckpointManager: Save() atomically writes the next generation
/// file plus a CRC'd MANIFEST and prunes to `keep` survivors; LoadLatest()
/// walks generations newest-first, falling back past torn files, and
/// distinguishes "nothing published yet" (NotFound) from "every published
/// generation is torn" (IOError naming the generation count and newest
/// failure). Fault sites: "serve.artifact.save", "serve.artifact.load".
///
/// Retention (DESIGN.md §13): survivors are the `keep` newest CRC-valid
/// generations plus the pinned (last-good) generation; torn files are
/// garbage-collected once a valid generation exists to serve from.
/// LoadLatest() pins whatever it returns; the swap watcher re-pins each
/// generation it publishes, so the artifact a live server answers from is
/// never pruned out from under a restart.
class AlignmentIndexStore {
 public:
  explicit AlignmentIndexStore(std::string dir, int keep = 2);

  /// Durably publishes `index` as the next generation and applies the
  /// retention policy.
  [[nodiscard]] Status Save(const AlignmentIndex& index);

  /// Loads the newest generation that passes full verification. On success
  /// pins the returned generation (and reports it via `loaded_generation`
  /// when non-null).
  [[nodiscard]] Result<std::shared_ptr<const AlignmentIndex>> LoadLatest(
      const RunContext& ctx = RunContext(),
      int* loaded_generation = nullptr) const;

  /// \brief Loads exactly generation `gen`, verify-or-reject.
  ///
  /// Unlike LoadLatest there is no fallback and no pinning — this is the
  /// quarantine load: the candidate has not earned trust yet. Honors the
  /// "serve.artifact.load" fault site.
  [[nodiscard]] Result<std::shared_ptr<const AlignmentIndex>> LoadGeneration(
      int gen, const RunContext& ctx = RunContext()) const;

  /// Highest generation number present on disk (manifest or scan), or 0.
  /// The swap watcher polls this to detect new publications.
  int NewestGeneration() const;

  /// Last-good pinning: `gen` survives retention regardless of age.
  void SetPinnedGeneration(int gen) { pinned_.store(gen); }
  int pinned_generation() const { return pinned_.load(); }

  /// Runs the retention pass now (keep-last-N + pin + torn GC). Save() does
  /// this automatically; the swap watcher calls it after each publish.
  [[nodiscard]] Status ApplyRetention();

  /// Candidate filenames newest-first (manifest order, else dir scan).
  std::vector<std::string> Candidates() const;

  /// Path of generation `gen`'s artifact file (chaos/test tooling).
  std::string GenerationPath(int gen) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string ManifestPath() const;

  std::string dir_;
  int keep_;
  /// Last generation handed to a caller as good; -1 until the first load.
  mutable std::atomic<int> pinned_{-1};
};

}  // namespace galign
