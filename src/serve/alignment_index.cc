#include "serve/alignment_index.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/durable_io.h"
#include "common/fault.h"
#include "common/logging.h"
#include "core/galign.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "graph/ann/ann.h"
#include "graph/ann/ann_io.h"

namespace galign {

namespace {

constexpr char kArtifactMagic[] = "galign-aidx-v1";
constexpr char kManifestMagic[] = "galign-aidx-manifest-v1";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kFilePrefix[] = "aidx_";

std::string GenerationFileName(int gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08d", kFilePrefix, gen);
  return buf;
}

// Generation encoded in an artifact filename, or -1 when the name does not
// match aidx_<digits>.
int GenerationOfFileName(const std::string& name) {
  const size_t prefix_len = sizeof(kFilePrefix) - 1;
  if (name.compare(0, prefix_len, kFilePrefix) != 0) return -1;
  if (name.size() <= prefix_len) return -1;
  int gen = 0;
  for (size_t i = prefix_len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    gen = gen * 10 + (name[i] - '0');
    if (gen > 99999999) return -1;
  }
  return gen;
}

// Reads `key <nbytes>\n` then exactly nbytes of raw payload (the embedded
// model / ANN-recipe sections, whose bodies are not token streams).
Status ReadRawSection(std::istringstream* in, const char* key,
                      std::string* out, const std::string& context) {
  std::string tok;
  int64_t nbytes = -1;
  if (!(*in >> tok) || tok != key || !(*in >> nbytes) || nbytes < 0 ||
      nbytes > (int64_t{1} << 30)) {
    return Status::IOError("expected '" + std::string(key) +
                           " <nbytes>' in " + context);
  }
  if (in->get() != '\n') {
    return Status::IOError("missing newline after '" + std::string(key) +
                           "' header in " + context);
  }
  out->resize(static_cast<size_t>(nbytes));
  if (nbytes > 0 && !in->read(out->data(), nbytes)) {
    return Status::IOError("truncated '" + std::string(key) + "' section in " +
                           context);
  }
  return Status::OK();
}

void EmitRawSection(std::ostringstream* out, const char* key,
                    const std::string& payload) {
  *out << key << " " << payload.size() << "\n" << payload << "\n";
}

}  // namespace

Result<std::shared_ptr<const AlignmentIndex>> AlignmentIndex::Build(
    const GAlignConfig& config, const AttributedGraph& source,
    const AttributedGraph& target, const AlignmentIndexOptions& options,
    const RunContext& ctx) {
  GALIGN_RETURN_NOT_OK(config.Validate());
  if (source.num_attributes() != target.num_attributes()) {
    return Status::InvalidArgument(
        "AlignmentIndex::Build requires equal attribute dimensionality");
  }
  if (options.anchor_k <= 0) {
    return Status::InvalidArgument("AlignmentIndex::Build: anchor_k must be > 0");
  }

  std::shared_ptr<AlignmentIndex> out(new AlignmentIndex());

  // Alg. 1 training; the artifact keeps the trained model itself so a
  // reload can verify (or re-derive) everything downstream of it.
  Rng rng(config.seed);
  out->gcn_ = std::make_unique<MultiOrderGcn>(
      config.num_layers, source.num_attributes(), config.embedding_dim, &rng);
  Trainer trainer(config);
  GALIGN_RETURN_NOT_OK(
      trainer.Train(out->gcn_.get(), source, target, &rng, /*seeds=*/{}, ctx));
  if (ctx.ShouldStop()) {
    return Status::DeadlineExceeded(
        "AlignmentIndex::Build stopped during training — refusing to emit a "
        "partial artifact");
  }

  auto lap_s = source.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_s.status());
  auto lap_t = target.NormalizedAdjacency();
  GALIGN_RETURN_NOT_OK(lap_t.status());
  out->source_layers_ =
      out->gcn_->ForwardInference(lap_s.ValueOrDie(), source.attributes());
  out->target_layers_ =
      out->gcn_->ForwardInference(lap_t.ValueOrDie(), target.attributes());
  out->theta_ = config.EffectiveLayerWeights();

  // Query side carries theta so the multi-order score is one inner product
  // (DESIGN.md §11); base side stays unscaled.
  auto queries =
      ConcatLayerRows(out->source_layers_, &out->theta_, ctx.budget());
  GALIGN_RETURN_NOT_OK(queries.status());
  out->queries_ = std::move(queries.ValueOrDie());
  auto base = ConcatLayerRows(out->target_layers_, nullptr, ctx.budget());
  GALIGN_RETURN_NOT_OK(base.status());

  out->ann_config_ = options.ann;
  auto ann = BuildAnnIndex(std::move(base.ValueOrDie()), options.ann, ctx);
  GALIGN_RETURN_NOT_OK(ann.status());
  out->ann_ = std::move(ann.ValueOrDie());
  if (out->ann_->truncated()) {
    return Status::DeadlineExceeded(
        "AlignmentIndex::Build stopped during ANN construction — refusing to "
        "emit a partial artifact");
  }
  out->ann_fingerprint_ = AnnIndexFingerprint(*out->ann_);

  const int64_t k = std::min(options.anchor_k, target.num_nodes());
  auto anchors = out->ann_->QueryBatch(out->queries_, std::max<int64_t>(1, k),
                                       ctx);
  GALIGN_RETURN_NOT_OK(anchors.status());
  out->anchors_ = std::move(anchors.ValueOrDie());
  if (out->anchors_.rows_computed < out->anchors_.rows) {
    return Status::DeadlineExceeded(
        "AlignmentIndex::Build stopped during anchor precomputation — "
        "refusing to emit a partial artifact");
  }
  return Result<std::shared_ptr<const AlignmentIndex>>(std::move(out));
}

uint64_t AlignmentIndex::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const Matrix& m : source_layers_) bytes += DenseBytes(m.rows(), m.cols());
  for (const Matrix& m : target_layers_) bytes += DenseBytes(m.rows(), m.cols());
  bytes += DenseBytes(queries_.rows(), queries_.cols());
  bytes += ann_->MemoryBytes();
  bytes += anchors_.index.size() * sizeof(int64_t) +
           anchors_.score.size() * sizeof(double);
  return bytes;
}

std::string AlignmentIndex::Serialize() const {
  std::ostringstream out;
  out << kArtifactMagic << "\n";
  out << "theta " << theta_.size();
  for (double t : theta_) out << " " << HexDouble(t);
  out << "\n";
  EmitRawSection(&out, "model", SerializeGcnModel(*gcn_));
  EmitMatrixList(&out, "source_layers", source_layers_);
  EmitMatrixList(&out, "target_layers", target_layers_);
  EmitRawSection(&out, "ann", SerializeAnnRecipe(*ann_, ann_config_));
  out << "anchors " << anchors_.rows << " " << anchors_.cols << " "
      << anchors_.k << " " << anchors_.rows_computed << "\n";
  for (size_t i = 0; i < anchors_.index.size(); ++i) {
    if (i) out << (i % 16 == 0 ? "\n" : " ");
    out << anchors_.index[i];
  }
  if (!anchors_.index.empty()) out << "\n";
  for (size_t i = 0; i < anchors_.score.size(); ++i) {
    if (i) out << (i % 8 == 0 ? "\n" : " ");
    out << HexDouble(anchors_.score[i]);
  }
  if (!anchors_.score.empty()) out << "\n";
  out << "end\n";
  return out.str();
}

Result<std::shared_ptr<const AlignmentIndex>> AlignmentIndex::Parse(
    const std::string& payload, const std::string& context,
    const RunContext& ctx) {
  std::istringstream in(payload);
  std::string tok;
  if (!(in >> tok) || tok != kArtifactMagic) {
    return Status::IOError("not an alignment artifact (bad magic) in " +
                           context);
  }

  std::shared_ptr<AlignmentIndex> out(new AlignmentIndex());

  size_t theta_count = 0;
  if (!(in >> tok) || tok != "theta" || !(in >> theta_count) ||
      theta_count == 0 || theta_count > 4096) {
    return Status::IOError("expected 'theta <count>' in " + context);
  }
  out->theta_.resize(theta_count);
  for (size_t i = 0; i < theta_count; ++i) {
    if (!(in >> tok)) {
      return Status::IOError("truncated theta in " + context);
    }
    auto v = ParseHexDouble(tok, context);
    GALIGN_RETURN_NOT_OK(v.status());
    out->theta_[i] = v.ValueOrDie();
  }

  std::string model_payload;
  GALIGN_RETURN_NOT_OK(ReadRawSection(&in, "model", &model_payload, context));
  auto gcn = ParseGcnModel(model_payload, context + " model section");
  GALIGN_RETURN_NOT_OK(gcn.status());
  out->gcn_ = std::make_unique<MultiOrderGcn>(std::move(gcn.ValueOrDie()));

  GALIGN_RETURN_NOT_OK(
      ParseMatrixList(&in, "source_layers", &out->source_layers_, context));
  GALIGN_RETURN_NOT_OK(
      ParseMatrixList(&in, "target_layers", &out->target_layers_, context));
  if (out->source_layers_.size() != theta_count ||
      out->target_layers_.size() != theta_count) {
    return Status::IOError(
        "layer count disagrees with theta width in " + context + ": theta " +
        std::to_string(theta_count) + ", source " +
        std::to_string(out->source_layers_.size()) + ", target " +
        std::to_string(out->target_layers_.size()));
  }

  std::string ann_payload;
  GALIGN_RETURN_NOT_OK(ReadRawSection(&in, "ann", &ann_payload, context));

  TopKAlignment& a = out->anchors_;
  if (!(in >> tok) || tok != "anchors" || !(in >> a.rows >> a.cols >> a.k >>
                                            a.rows_computed) ||
      a.rows < 0 || a.cols < 0 || a.k < 0 || a.rows_computed != a.rows ||
      a.rows > (int64_t{1} << 30) || a.k > (int64_t{1} << 20) ||
      a.rows * a.k > (int64_t{1} << 32)) {
    return Status::IOError("bad 'anchors' header in " + context);
  }
  a.index.resize(static_cast<size_t>(a.rows * a.k));
  a.score.resize(static_cast<size_t>(a.rows * a.k));
  for (size_t i = 0; i < a.index.size(); ++i) {
    if (!(in >> a.index[i]) || a.index[i] < -1 || a.index[i] >= a.cols) {
      return Status::IOError("bad anchor index in " + context);
    }
  }
  for (size_t i = 0; i < a.score.size(); ++i) {
    if (!(in >> tok)) {
      return Status::IOError("truncated anchor scores in " + context);
    }
    auto v = ParseHexDouble(tok, context);
    GALIGN_RETURN_NOT_OK(v.status());
    a.score[i] = v.ValueOrDie();
  }
  if (!(in >> tok) || tok != "end") {
    return Status::IOError("missing 'end' sentinel in " + context);
  }

  // Derived state: rebuild the query matrix and the ANN index from the
  // stored layers. The recipe's fingerprint check makes the rebuilt index
  // verify-or-reject against the one that was saved.
  auto queries =
      ConcatLayerRows(out->source_layers_, &out->theta_, ctx.budget());
  GALIGN_RETURN_NOT_OK(queries.status());
  out->queries_ = std::move(queries.ValueOrDie());
  auto base = ConcatLayerRows(out->target_layers_, nullptr, ctx.budget());
  GALIGN_RETURN_NOT_OK(base.status());
  auto ann = RebuildAnnIndex(ann_payload, std::move(base.ValueOrDie()), ctx,
                             context + " ann section");
  GALIGN_RETURN_NOT_OK(ann.status());
  out->ann_ = std::move(ann.ValueOrDie());
  // RebuildAnnIndex verified the rebuilt index against the recipe's saved
  // fingerprint, so recomputing here records the proven-good value.
  out->ann_fingerprint_ = AnnIndexFingerprint(*out->ann_);
  if (out->anchors_.rows != out->queries_.rows() ||
      out->anchors_.cols != out->ann_->base().rows()) {
    return Status::IOError("anchor table shape disagrees with embeddings in " +
                           context);
  }
  return Result<std::shared_ptr<const AlignmentIndex>>(std::move(out));
}

AlignmentIndexStore::AlignmentIndexStore(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep < 1 ? 1 : keep) {}

std::string AlignmentIndexStore::ManifestPath() const {
  return dir_ + "/" + kManifestName;
}

int AlignmentIndexStore::NewestGeneration() const {
  int newest = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    newest = std::max(newest,
                      GenerationOfFileName(entry.path().filename().string()));
  }
  return newest;
}

std::string AlignmentIndexStore::GenerationPath(int gen) const {
  return dir_ + "/" + GenerationFileName(gen);
}

Status AlignmentIndexStore::Save(const AlignmentIndex& index) {
  if (fault::ShouldFailIO("serve.artifact.save")) {
    return Status::IOError("injected fault: artifact save to " + dir_);
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create artifact dir " + dir_ + ": " +
                           ec.message());
  }

  const std::string name = GenerationFileName(NewestGeneration() + 1);
  GALIGN_RETURN_NOT_OK(AtomicWriteFile(
      dir_ + "/" + name, AppendCrc32Trailer(index.Serialize())));
  return ApplyRetention();
}

Status AlignmentIndexStore::ApplyRetention() {
  auto report = ApplyGenerationRetention(dir_, kManifestMagic,
                                         GenerationOfFileName, keep_,
                                         pinned_.load());
  GALIGN_RETURN_NOT_OK(report.status());
  for (const std::string& torn : report.ValueOrDie().torn_removed) {
    GALIGN_LOG(Warning) << "Artifact " << dir_ << "/" << torn
                        << " failed its CRC; garbage-collected";
  }
  return Status::OK();
}

std::vector<std::string> AlignmentIndexStore::Candidates() const {
  auto content = ReadFileToString(ManifestPath());
  if (content.ok()) {
    auto payload = StripAndVerifyCrc32Trailer(
        content.ValueOrDie(), /*require_trailer=*/true, ManifestPath());
    if (payload.ok()) {
      std::istringstream in(payload.ValueOrDie());
      std::string tok;
      if (in >> tok && tok == kManifestMagic) {
        std::vector<std::string> names;
        while (in >> tok) {
          if (GenerationOfFileName(tok) >= 1) names.push_back(tok);
        }
        if (!names.empty()) return names;
      }
    } else {
      GALIGN_LOG(Warning) << "Artifact manifest unreadable ("
                          << payload.status().message()
                          << "); falling back to directory scan";
    }
  }
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string fname = entry.path().filename().string();
    if (GenerationOfFileName(fname) >= 1) names.push_back(fname);
  }
  std::sort(names.begin(), names.end(), [](const auto& a, const auto& b) {
    return GenerationOfFileName(a) > GenerationOfFileName(b);
  });
  return names;
}

Result<std::shared_ptr<const AlignmentIndex>>
AlignmentIndexStore::LoadGeneration(int gen, const RunContext& ctx) const {
  const std::string path = GenerationPath(gen);
  if (fault::ShouldFailIO("serve.artifact.load")) {
    return Status::IOError("injected fault: artifact load from " + path);
  }
  auto content = ReadFileToString(path);
  if (!content.ok()) {
    return Status::NotFound("artifact generation " + std::to_string(gen) +
                            " unreadable: " +
                            std::string(content.status().message()));
  }
  auto payload = StripAndVerifyCrc32Trailer(content.ValueOrDie(),
                                            /*require_trailer=*/true, path);
  GALIGN_RETURN_NOT_OK(payload.status());
  return AlignmentIndex::Parse(payload.ValueOrDie(), path, ctx);
}

Result<std::shared_ptr<const AlignmentIndex>> AlignmentIndexStore::LoadLatest(
    const RunContext& ctx, int* loaded_generation) const {
  // Same typed terminal contract as CheckpointManager::LoadLatest: NotFound
  // is a cold start, IOError means every published generation was lost.
  int tried = 0;
  std::string newest_error;
  auto note = [&](const std::string& msg) {
    if (tried == 1) newest_error = msg;
  };
  for (const std::string& name : Candidates()) {
    const std::string path = dir_ + "/" + name;
    ++tried;
    if (fault::ShouldFailIO("serve.artifact.load")) {
      GALIGN_LOG(Warning) << "Artifact " << path
                          << " unreadable (injected fault); trying previous";
      note("injected fault: artifact load from " + path);
      continue;
    }
    auto content = ReadFileToString(path);
    if (!content.ok()) {
      GALIGN_LOG(Warning) << "Artifact " << path << " unreadable ("
                          << content.status().message() << "); trying previous";
      note(content.status().message());
      continue;
    }
    auto payload = StripAndVerifyCrc32Trailer(content.ValueOrDie(),
                                              /*require_trailer=*/true, path);
    if (!payload.ok()) {
      GALIGN_LOG(Warning) << "Artifact " << path << " failed validation ("
                          << payload.status().message() << "); trying previous";
      note(payload.status().message());
      continue;
    }
    auto index = AlignmentIndex::Parse(payload.ValueOrDie(), path, ctx);
    if (!index.ok()) {
      GALIGN_LOG(Warning) << "Artifact " << path << " corrupt ("
                          << index.status().message() << "); trying previous";
      note(index.status().message());
      continue;
    }
    // This generation is the one callers will serve from: pin it so
    // retention never deletes the artifact a live deployment depends on.
    const int gen = GenerationOfFileName(name);
    pinned_.store(gen);
    if (loaded_generation != nullptr) *loaded_generation = gen;
    return index;
  }
  if (tried > 0) {
    return Status::IOError("all " + std::to_string(tried) +
                           " artifact generations under " + dir_ +
                           " failed validation (newest error: " +
                           newest_error + ")");
  }
  return Status::NotFound("no alignment artifact under " + dir_);
}

}  // namespace galign
