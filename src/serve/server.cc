#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault.h"

namespace galign {

namespace {

// Resolves a promise with a typed rejection built on the caller's thread.
std::future<QueryResponse> Rejected(QueryResponse response) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

}  // namespace

AlignServer::AlignServer(std::shared_ptr<const AlignmentIndex> index,
                         ServeConfig config, int64_t generation)
    : index_(std::move(index)), generation_(generation), config_(config) {
  config_.workers = std::max(1, config_.workers);
  config_.queue_capacity = std::max<int64_t>(1, config_.queue_capacity);
  config_.max_effort_step = std::max(0, config_.max_effort_step);
  config_.degrade_watermark =
      std::clamp(config_.degrade_watermark, 0.0, 1.0);
}

AlignServer::~AlignServer() { Shutdown(); }

void AlignServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void AlignServer::Shutdown() {
  std::deque<std::unique_ptr<Pending>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(queue_);
    stats_.shed_shutdown += drained.size();
  }
  // Every queued promise still resolves — a shutdown is an overload event
  // from the client's point of view, not a hang.
  for (auto& pending : drained) {
    if (config_.budget && pending->reserved_bytes > 0) {
      config_.budget->Release(pending->reserved_bytes);
    }
    QueryResponse response;
    response.status = Status::Overloaded("server shutting down");
    response.retry_after_ms = config_.retry_after_ms;
    response.latency_ms = pending->timer.Millis();
    response.generation = pending->generation;
    pending->promise.set_value(std::move(response));
  }
}

int AlignServer::EffortStepLocked() const {
  if (config_.max_effort_step == 0) return 0;
  const double fill = static_cast<double>(queue_.size()) /
                      static_cast<double>(config_.queue_capacity);
  if (fill < config_.degrade_watermark) return 0;
  // Linear ramp from the watermark to a full queue, so a saturated queue
  // runs at the deepest step and light pressure barely degrades.
  const double span = std::max(1e-9, 1.0 - config_.degrade_watermark);
  const double frac = std::min(1.0, (fill - config_.degrade_watermark) / span);
  return std::max(
      1, static_cast<int>(std::ceil(frac * config_.max_effort_step)));
}

std::future<QueryResponse> AlignServer::Submit(const QueryRequest& request) {
  // Admission binds the request to the serving artifact *now*: a swap that
  // lands later must not change what this request runs against.
  std::shared_ptr<const AlignmentIndex> index;
  int64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    index = index_;
    generation = generation_;
  }

  // Malformed requests are the caller's bug, not load: typed
  // kInvalidArgument, no retry hint.
  if (request.node < 0 || request.node >= index->num_source() ||
      request.k <= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.invalid_argument;
    QueryResponse response;
    response.status = Status::InvalidArgument(
        "bad query: node " + std::to_string(request.node) + " (have " +
        std::to_string(index->num_source()) + " source nodes), k " +
        std::to_string(request.k));
    return Rejected(std::move(response));
  }

  auto shed = [&](uint64_t ServerStats::*counter, const std::string& detail) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++(stats_.*counter);
    }
    QueryResponse response;
    response.status = Status::Overloaded(detail);
    response.retry_after_ms = config_.retry_after_ms;
    return Rejected(std::move(response));
  };

  if (fault::ShouldFailIO("serve.admit")) {
    return shed(&ServerStats::shed_fault, "injected fault: admission");
  }

  auto pending = std::make_unique<Pending>();
  pending->request = request;
  pending->index = std::move(index);
  pending->generation = generation;
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  pending->ctx = RunContext::WithTimeout(deadline_ms / 1e3);
  pending->ctx.SetToken(request.token);
  pending->ctx.SetBudget(config_.budget);

  // Budget admission happens before touching the queue so a shed request
  // never holds a reservation.
  if (config_.budget) {
    Status reserve =
        config_.budget->TryReserve(config_.per_request_bytes, "serve request");
    if (!reserve.ok()) {
      return shed(&ServerStats::shed_budget,
                  "memory budget exhausted: " + std::string(reserve.message()));
    }
    pending->reserved_bytes = config_.per_request_bytes;
  }

  std::future<QueryResponse> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ ||
        static_cast<int64_t>(queue_.size()) >= config_.queue_capacity) {
      const bool was_stopping = stopping_;
      if (config_.budget) config_.budget->Release(pending->reserved_bytes);
      ++(was_stopping ? stats_.shed_shutdown : stats_.shed_queue_full);
      QueryResponse response;
      response.status = Status::Overloaded(
          was_stopping ? "server shutting down"
                       : "queue full (" +
                             std::to_string(config_.queue_capacity) +
                             " requests waiting)");
      response.retry_after_ms = config_.retry_after_ms;
      pending->promise.set_value(std::move(response));
      return future;
    }
    ++stats_.admitted;
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

QueryResponse AlignServer::SubmitAndWait(const QueryRequest& request) {
  return Submit(request).get();
}

QueryResponse AlignServer::AnchorAnswer(const AlignmentIndex& index,
                                        const QueryRequest& request,
                                        int effort_step) {
  // The precomputed table costs nothing at query time — the degraded
  // answer of last resort when the request's own budget is gone.
  const TopKAlignment& anchors = index.anchors();
  QueryResponse response;
  response.degraded = true;
  response.effort_step = effort_step;
  response.answer_source = "anchor_table";
  const int64_t width = std::min(request.k, anchors.k);
  for (int64_t j = 0; j < width; ++j) {
    const int64_t id = anchors.index[request.node * anchors.k + j];
    if (id < 0) break;
    response.targets.push_back(id);
    response.scores.push_back(anchors.score[request.node * anchors.k + j]);
  }
  return response;
}

QueryResponse AlignServer::Process(Pending* pending, int effort_step) const {
  const QueryRequest& request = pending->request;
  // The admission-time artifact, not index_: a swap between admission and
  // now must not change (or free) what this request reads.
  const AlignmentIndex& index = *pending->index;

  // A deterministic stand-in for "the client went away mid-request".
  if (fault::ShouldFailIO("serve.query.cancel")) {
    request.token.Cancel();
  }

  auto degraded_or_deadline = [&]() {
    if (request.allow_degraded) {
      return AnchorAnswer(index, request, effort_step);
    }
    QueryResponse response;
    response.status = Status::DeadlineExceeded(
        "request budget exhausted before a full answer (degraded answers "
        "disabled)");
    response.effort_step = effort_step;
    return response;
  };

  // Deadline already gone (queue wait ate it) or the client cancelled:
  // skip the query entirely.
  if (pending->ctx.ShouldStop()) return degraded_or_deadline();

  const double effort = std::pow(0.5, effort_step);
  const int64_t k = std::min(request.k, index.num_target());
  const Matrix query_row =
      index.queries().Block(request.node, 0, 1, index.queries().cols());
  auto got = index.ann().QueryBatch(query_row, k, pending->ctx, effort);
  if (!got.ok()) {
    // Mid-query budget exhaustion is load, not corruption: degrade rather
    // than fail when the client permits it.
    if (got.status().code() == StatusCode::kResourceExhausted) {
      return degraded_or_deadline();
    }
    QueryResponse response;
    response.status = got.status();
    response.effort_step = effort_step;
    return response;
  }
  const TopKAlignment& top = got.ValueOrDie();
  if (top.rows_computed < 1) {
    // The query wound down before finishing its single row.
    return degraded_or_deadline();
  }

  QueryResponse response;
  response.effort_step = effort_step;
  response.degraded = effort_step > 0;
  response.answer_source = "ann";
  for (int64_t j = 0; j < top.k; ++j) {
    if (top.index[j] < 0) break;
    response.targets.push_back(top.index[j]);
    response.scores.push_back(top.score[j]);
  }
  return response;
}

void AlignServer::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Pending> pending;
    int effort_step = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Shutdown drains what is left
      // Effort reflects the pressure *behind* this request: the depth of
      // the queue it just left.
      pending = std::move(queue_.front());
      queue_.pop_front();
      effort_step = EffortStepLocked();
    }

    QueryResponse response = Process(pending.get(), effort_step);
    response.latency_ms = pending->timer.Millis();
    response.generation = pending->generation;

    if (config_.budget && pending->reserved_bytes > 0) {
      config_.budget->Release(pending->reserved_bytes);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!response.status.ok()) {
        if (response.status.code() == StatusCode::kDeadlineExceeded) {
          ++stats_.deadline_exceeded;
        }
      } else if (response.answer_source == "anchor_table") {
        ++stats_.completed_anchor;
      } else if (response.effort_step > 0) {
        ++stats_.completed_reduced_effort;
      } else {
        ++stats_.completed_full;
      }
    }
    pending->promise.set_value(std::move(response));
  }
}

void AlignServer::SwapIndex(std::shared_ptr<const AlignmentIndex> index,
                            int64_t generation) {
  // The old artifact is not torn down here: every admitted request holds
  // its own reference, so the last in-flight request on the old generation
  // releases it. The swap itself is one pointer store under mu_.
  std::shared_ptr<const AlignmentIndex> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(index_);
    index_ = std::move(index);
    generation_ = generation;
    ++stats_.swaps;
  }
  // `retired` drops its reference outside the lock — if this was the last
  // one, the (potentially large) artifact destructor runs without blocking
  // admissions.
}

std::shared_ptr<const AlignmentIndex> AlignServer::index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_;
}

int64_t AlignServer::serving_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

ServerStats AlignServer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t AlignServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

}  // namespace galign
