// Client-side retry for shed requests (DESIGN.md §12).
//
// A kOverloaded shed is the server saying "come back shortly" — it carries
// a retry-after hint and, unlike kIOError, is guaranteed side-effect free
// (the request never entered the queue). QueryWithRetry resubmits under
// the shared RetryPolicy backoff schedule, honoring the server's hint when
// it exceeds the schedule's own backoff, and gives up with the last typed
// response once attempts are exhausted. Every other status (full answers,
// degraded answers, kDeadlineExceeded, kInvalidArgument) returns
// immediately — retrying a deadline miss or a malformed request cannot
// help.
#pragma once

#include "common/durable_io.h"
#include "serve/server.h"

namespace galign {

/// \brief Submits `request` to `server`, resubmitting on kOverloaded sheds
/// with jittered exponential backoff (at most policy.max_attempts
/// submissions).
QueryResponse QueryWithRetry(AlignServer* server, const QueryRequest& request,
                             const RetryPolicy& policy = RetryPolicy{});

}  // namespace galign
