// Continuous-availability artifact rotation (DESIGN.md §13).
//
// ArtifactWatcher turns AlignServer's one-artifact-for-life deployment into
// a zero-downtime loop: it polls an AlignmentIndexStore for generations
// newer than the one being served, loads each candidate into a
// **quarantine** stage, and only publishes it — one pointer swap via
// AlignServer::SwapIndex — after the candidate passes validation:
//
//   detect   — a new `aidx_<gen>` appeared (MANIFEST or directory scan);
//   load     — CRC + verify-or-reject Parse under the watcher's own memory
//              admission, so a candidate can never OOM live serving;
//   validate — ANN behavioral-fingerprint probe replay, an anchor-table
//              spot check (the precomputed table must agree with what the
//              rebuilt ANN index actually answers), and a bounded-latency
//              smoke query;
//   publish  — SwapIndex + last-good pin + retention pass;
//   retire   — the old generation drains as its in-flight requests finish
//              (each Pending holds its own reference).
//
// A candidate that fails any stage is recorded on the **poisoned list**
// with a typed QuarantineReason and is never retried — the watcher skips
// known-bad generations instead of hot-looping on them, keeps serving
// last-good, and surfaces every rejection through Health(). Fault sites:
// "serve.swap.detect", "serve.swap.validate", "serve.swap.publish".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_budget.h"
#include "serve/alignment_index.h"
#include "serve/server.h"

namespace galign {

/// Why a candidate generation was refused publication. One reason per
/// poisoned generation; `--health` prints the name plus a detail string.
enum class QuarantineReason : int8_t {
  kLoadFailed,           ///< unreadable / torn CRC / Parse rejected
  kMemoryBudget,         ///< candidate did not fit the swap memory budget
  kFingerprintMismatch,  ///< ANN probe replay disagreed with the recorded
                         ///< behavioral fingerprint
  kAnchorMismatch,       ///< anchor-table spot check disagreed with the ANN
  kSmokeLatency,         ///< smoke query exceeded the latency bound
  kValidateFault,        ///< injected "serve.swap.validate" fault
  kPublishFault,         ///< injected "serve.swap.publish" fault
};
const char* QuarantineReasonName(QuarantineReason reason);

/// One poisoned generation: never retried until the process restarts.
struct QuarantineRecord {
  int generation = 0;
  QuarantineReason reason = QuarantineReason::kLoadFailed;
  std::string detail;
};

/// Where the watcher currently is with a candidate.
enum class CandidatePhase : int8_t { kIdle, kLoading, kValidating, kPublishing };
const char* CandidatePhaseName(CandidatePhase phase);

/// One completed swap, oldest first in SwapHealth::swaps.
struct SwapEvent {
  int64_t from_generation = 0;
  int64_t to_generation = 0;
  /// Detect-to-publish time: what quarantine (load + validate) cost.
  double quarantine_ms = 0.0;
};

/// Readiness/health snapshot assembled by ArtifactWatcher::Health().
struct SwapHealth {
  bool ready = false;               ///< a valid generation is being served
  int64_t serving_generation = 0;   ///< generation answering new admissions
  int newest_seen_generation = 0;   ///< newest generation ever detected
  CandidatePhase candidate_phase = CandidatePhase::kIdle;
  int candidate_generation = 0;     ///< 0 when no candidate is in quarantine
  std::vector<QuarantineRecord> quarantined;  ///< poisoned list, ascending
  std::vector<SwapEvent> swaps;               ///< swap history, oldest first
  int64_t queue_depth = 0;
  ServerStats stats;                ///< shed counts, completions, swaps
};

/// Human-readable multi-line rendering (galign_serve --health / `health`).
std::string FormatHealth(const SwapHealth& health);

struct SwapConfig {
  /// Background detect cadence.
  double poll_interval_ms = 50.0;
  /// Anchor-table rows replayed against the ANN during validation.
  int spot_check_rows = 4;
  /// Upper bound on the full-effort smoke query; slower candidates are
  /// quarantined (kSmokeLatency) — a "valid" artifact that answers 100×
  /// slower than last-good is an outage, not an upgrade.
  double smoke_latency_ms = 1000.0;
  /// Memory admission for the quarantine overlap window, when both the old
  /// and the candidate artifact are alive. Null = unbounded.
  std::shared_ptr<MemoryBudget> budget;
  /// Bounded history: oldest swap events beyond this are dropped.
  size_t max_history = 64;
};

/// Outcome of the quarantine validation stage alone.
struct ValidationOutcome {
  bool ok = false;
  QuarantineReason reason = QuarantineReason::kLoadFailed;
  std::string detail;
  double latency_ms = 0.0;  ///< validation wall time (probes + smoke)
};

/// \brief Runs the quarantine validation battery against a loaded
/// candidate: fingerprint probe replay, anchor spot check, smoke query.
///
/// Pure function of the index + config — `galign_serve --health` uses it to
/// report per-generation verdicts without a live server.
ValidationOutcome ValidateCandidate(const AlignmentIndex& index,
                                    const SwapConfig& config);

/// \brief MANIFEST watcher + quarantine state machine over one server.
///
/// Start() spawns the polling thread; PollOnce() drives one full
/// detect → quarantine → validate → publish pass synchronously (tests and
/// the chaos drill call it directly for determinism — it is safe to call
/// concurrently with the background thread, passes are serialized). The
/// watcher never takes the server's lock while loading or validating, so
/// serving latency is unaffected by a candidate in quarantine.
class ArtifactWatcher {
 public:
  ArtifactWatcher(AlignServer* server, AlignmentIndexStore* store,
                  SwapConfig config = SwapConfig{});
  ~ArtifactWatcher();

  ArtifactWatcher(const ArtifactWatcher&) = delete;
  ArtifactWatcher& operator=(const ArtifactWatcher&) = delete;

  /// Spawns the background polling thread. Idempotent.
  void Start();
  /// Stops and joins the polling thread. Idempotent.
  void Stop();

  /// \brief One synchronous watcher pass. Returns true when a new
  /// generation was published to the server.
  bool PollOnce();

  /// True when `generation` failed quarantine and will never be retried.
  bool IsPoisoned(int generation) const;

  SwapHealth Health() const;

 private:
  void ThreadLoop();
  void Quarantine(int generation, QuarantineReason reason,
                  std::string detail);
  /// Highest non-poisoned generation in (serving, newest], or 0.
  int PickCandidateLocked(int newest, int64_t serving) const;

  AlignServer* server_;
  AlignmentIndexStore* store_;
  SwapConfig config_;

  /// Serializes watcher passes (background thread vs direct PollOnce).
  std::mutex poll_mu_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;                         // galign: guarded_by(mu_)
  bool stopping_ = false;                        // galign: guarded_by(mu_)
  int newest_seen_ = 0;                          // galign: guarded_by(mu_)
  CandidatePhase phase_ = CandidatePhase::kIdle;  // galign: guarded_by(mu_)
  int candidate_ = 0;                            // galign: guarded_by(mu_)
  std::map<int, QuarantineRecord> poisoned_;     // galign: guarded_by(mu_)
  std::vector<SwapEvent> swaps_;                 // galign: guarded_by(mu_)
};

}  // namespace galign
