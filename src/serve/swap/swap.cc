#include "serve/swap/swap.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/durable_io.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/ann/ann_io.h"

namespace galign {

namespace {

// Load failures carry their own typing: a budget trip during Parse is a
// memory-admission rejection, a tampered recipe fingerprint is a
// fingerprint mismatch, everything else (torn CRC, truncation, bad magic)
// is a plain load failure.
QuarantineReason ClassifyLoadFailure(const Status& status) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return QuarantineReason::kMemoryBudget;
  }
  if (std::string(status.message()).find("fingerprint") != std::string::npos) {
    return QuarantineReason::kFingerprintMismatch;
  }
  return QuarantineReason::kLoadFailed;
}

}  // namespace

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kLoadFailed:
      return "load_failed";
    case QuarantineReason::kMemoryBudget:
      return "memory_budget";
    case QuarantineReason::kFingerprintMismatch:
      return "fingerprint_mismatch";
    case QuarantineReason::kAnchorMismatch:
      return "anchor_mismatch";
    case QuarantineReason::kSmokeLatency:
      return "smoke_latency";
    case QuarantineReason::kValidateFault:
      return "validate_fault";
    case QuarantineReason::kPublishFault:
      return "publish_fault";
  }
  return "unknown";
}

const char* CandidatePhaseName(CandidatePhase phase) {
  switch (phase) {
    case CandidatePhase::kIdle:
      return "idle";
    case CandidatePhase::kLoading:
      return "loading";
    case CandidatePhase::kValidating:
      return "validating";
    case CandidatePhase::kPublishing:
      return "publishing";
  }
  return "unknown";
}

ValidationOutcome ValidateCandidate(const AlignmentIndex& index,
                                    const SwapConfig& config) {
  ValidationOutcome out;
  Timer timer;

  // 1. Behavioral fingerprint probe replay: re-execute the fixed probe
  // batch against the candidate's ANN index, now, in this process, and
  // require the answers to hash to the recorded fingerprint. Parse already
  // verified the rebuilt index against the recipe; this replays the probes
  // at validation time as the publish-side proof.
  const uint32_t replayed = AnnIndexFingerprint(index.ann());
  if (replayed != index.ann_fingerprint()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "probe replay fingerprint %08x != recorded %08x", replayed,
                  index.ann_fingerprint());
    out.reason = QuarantineReason::kFingerprintMismatch;
    out.detail = buf;
    out.latency_ms = timer.Millis();
    return out;
  }

  // 2. Anchor-table spot check: the precomputed degraded-answer table must
  // agree with what the ANN actually answers at full effort. Parse only
  // checks the table's *shape*, so a bit-flipped anchor entry that
  // re-trailered its CRC gets past the loader — this is the stage that
  // catches it.
  const TopKAlignment& anchors = index.anchors();
  const int64_t rows = index.num_source();
  const int spots = std::max(1, config.spot_check_rows);
  for (int i = 0; i < spots; ++i) {
    const int64_t row = std::min<int64_t>(
        rows - 1, (static_cast<int64_t>(i) * rows) / spots);
    const Matrix query =
        index.queries().Block(row, 0, 1, index.queries().cols());
    auto got = index.ann().QueryBatch(query, anchors.k);
    if (!got.ok()) {
      out.reason = QuarantineReason::kAnchorMismatch;
      out.detail = "spot query for row " + std::to_string(row) +
                   " failed: " + std::string(got.status().message());
      out.latency_ms = timer.Millis();
      return out;
    }
    const TopKAlignment& answer = got.ValueOrDie();
    for (int64_t j = 0; j < anchors.k; ++j) {
      const int64_t want_id = anchors.index[row * anchors.k + j];
      const double want_score = anchors.score[row * anchors.k + j];
      const int64_t got_id = j < answer.k ? answer.index[j] : -1;
      const double got_score = j < answer.k ? answer.score[j] : 0.0;
      if (want_id != got_id ||
          (want_id >= 0 && want_score != got_score)) {
        std::ostringstream detail;
        detail << "anchor row " << row << " entry " << j << ": table ("
               << want_id << ", " << HexDouble(want_score) << ") vs ann ("
               << got_id << ", " << HexDouble(got_score) << ")";
        out.reason = QuarantineReason::kAnchorMismatch;
        out.detail = detail.str();
        out.latency_ms = timer.Millis();
        return out;
      }
      if (want_id < 0) break;
    }
  }

  // 3. Bounded-latency smoke query: one full-effort query timed on its
  // own. A candidate that validates correct but answers pathologically
  // slowly would turn the swap into an outage.
  Timer smoke;
  const Matrix query = index.queries().Block(0, 0, 1, index.queries().cols());
  auto smoke_got = index.ann().QueryBatch(query, std::min<int64_t>(
                                                     10, index.num_target()));
  const double smoke_ms = smoke.Millis();
  if (!smoke_got.ok()) {
    out.reason = QuarantineReason::kAnchorMismatch;
    out.detail =
        "smoke query failed: " + std::string(smoke_got.status().message());
    out.latency_ms = timer.Millis();
    return out;
  }
  if (smoke_ms > config.smoke_latency_ms) {
    std::ostringstream detail;
    detail << "smoke query took " << smoke_ms << " ms (bound "
           << config.smoke_latency_ms << " ms)";
    out.reason = QuarantineReason::kSmokeLatency;
    out.detail = detail.str();
    out.latency_ms = timer.Millis();
    return out;
  }

  out.ok = true;
  out.latency_ms = timer.Millis();
  return out;
}

std::string FormatHealth(const SwapHealth& health) {
  std::ostringstream out;
  out << "ready: " << (health.ready ? "yes" : "no") << "\n";
  out << "serving_generation: " << health.serving_generation << "\n";
  out << "newest_seen_generation: " << health.newest_seen_generation << "\n";
  out << "candidate: ";
  if (health.candidate_generation == 0) {
    out << "none\n";
  } else {
    out << "gen " << health.candidate_generation << " ("
        << CandidatePhaseName(health.candidate_phase) << ")\n";
  }
  out << "queue_depth: " << health.queue_depth << "\n";
  const ServerStats& s = health.stats;
  out << "stats: submitted=" << s.submitted << " admitted=" << s.admitted
      << " completed_full=" << s.completed_full
      << " completed_reduced_effort=" << s.completed_reduced_effort
      << " completed_anchor=" << s.completed_anchor
      << " deadline_exceeded=" << s.deadline_exceeded
      << " shed_queue_full=" << s.shed_queue_full
      << " shed_budget=" << s.shed_budget << " shed_fault=" << s.shed_fault
      << " shed_shutdown=" << s.shed_shutdown
      << " invalid_argument=" << s.invalid_argument << " swaps=" << s.swaps
      << "\n";
  out << "quarantined: " << health.quarantined.size() << "\n";
  for (const QuarantineRecord& q : health.quarantined) {
    out << "  gen " << q.generation << ": " << QuarantineReasonName(q.reason)
        << " — " << q.detail << "\n";
  }
  out << "swap_history: " << health.swaps.size() << "\n";
  for (const SwapEvent& e : health.swaps) {
    out << "  " << e.from_generation << " -> " << e.to_generation
        << " (quarantine " << e.quarantine_ms << " ms)\n";
  }
  return out.str();
}

ArtifactWatcher::ArtifactWatcher(AlignServer* server,
                                 AlignmentIndexStore* store, SwapConfig config)
    : server_(server), store_(store), config_(std::move(config)) {
  config_.poll_interval_ms = std::max(1.0, config_.poll_interval_ms);
}

ArtifactWatcher::~ArtifactWatcher() { Stop(); }

void ArtifactWatcher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || stopping_) return;
  running_ = true;
  thread_ = std::thread([this] { ThreadLoop(); });
}

void ArtifactWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  stopping_ = false;
}

void ArtifactWatcher::ThreadLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(config_.poll_interval_ms),
          [this] { return stopping_; });
      if (stopping_) return;
    }
    PollOnce();
  }
}

bool ArtifactWatcher::IsPoisoned(int generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_.count(generation) > 0;
}

void ArtifactWatcher::Quarantine(int generation, QuarantineReason reason,
                                 std::string detail) {
  GALIGN_LOG(Warning) << "Artifact generation " << generation
                      << " quarantined (" << QuarantineReasonName(reason)
                      << "): " << detail;
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_[generation] =
      QuarantineRecord{generation, reason, std::move(detail)};
  phase_ = CandidatePhase::kIdle;
  candidate_ = 0;
}

int ArtifactWatcher::PickCandidateLocked(int newest, int64_t serving) const {
  // Newest-first so a good publication behind a bad one still lands: a
  // poisoned gen 7 must not stop gen 6 from being served.
  for (int gen = newest; gen > serving; --gen) {
    if (poisoned_.count(gen) == 0) return gen;
  }
  return 0;
}

bool ArtifactWatcher::PollOnce() {
  // One pass at a time: the background thread and a direct caller (tests,
  // chaos drill) must not both be mid-quarantine.
  std::lock_guard<std::mutex> poll_lock(poll_mu_);

  // A detect fault models a failed MANIFEST scan: skip this pass, next
  // poll retries — detection has no candidate to poison.
  if (fault::ShouldFailIO("serve.swap.detect")) return false;

  const int newest = store_->NewestGeneration();
  const int64_t serving = server_->serving_generation();
  int candidate = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    newest_seen_ = std::max(newest_seen_, newest);
    candidate = PickCandidateLocked(newest, serving);
    if (candidate != 0) {
      phase_ = CandidatePhase::kLoading;
      candidate_ = candidate;
    }
  }
  if (candidate == 0) return false;

  Timer quarantine_timer;

  // Quarantine load, under the watcher's own memory admission: during
  // validation the old and new artifacts are both alive, and that overlap
  // must not OOM live serving.
  RunContext load_ctx;
  load_ctx.SetBudget(config_.budget);
  auto loaded = store_->LoadGeneration(candidate, load_ctx);
  if (!loaded.ok()) {
    Quarantine(candidate, ClassifyLoadFailure(loaded.status()),
               std::string(loaded.status().message()));
    return false;
  }
  std::shared_ptr<const AlignmentIndex> index = loaded.ValueOrDie();

  uint64_t reserved = 0;
  if (config_.budget) {
    const uint64_t bytes = index->MemoryBytes();
    Status admit = config_.budget->TryReserve(bytes, "swap candidate");
    if (!admit.ok()) {
      Quarantine(candidate, QuarantineReason::kMemoryBudget,
                 std::string(admit.message()));
      return false;
    }
    reserved = bytes;
  }
  auto release = [&] {
    if (config_.budget && reserved > 0) config_.budget->Release(reserved);
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = CandidatePhase::kValidating;
  }
  if (fault::ShouldFailIO("serve.swap.validate")) {
    release();
    Quarantine(candidate, QuarantineReason::kValidateFault,
               "injected fault: candidate validation");
    return false;
  }
  ValidationOutcome verdict = ValidateCandidate(*index, config_);
  if (!verdict.ok) {
    release();
    Quarantine(candidate, verdict.reason, std::move(verdict.detail));
    return false;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = CandidatePhase::kPublishing;
  }
  if (fault::ShouldFailIO("serve.swap.publish")) {
    release();
    Quarantine(candidate, QuarantineReason::kPublishFault,
               "injected fault: publish");
    return false;
  }

  server_->SwapIndex(index, candidate);
  store_->SetPinnedGeneration(candidate);
  Status retained = store_->ApplyRetention();
  if (!retained.ok()) {
    // Retention is housekeeping; a failed pass must not un-publish.
    GALIGN_LOG(Warning) << "Post-swap retention pass failed: "
                        << retained.message();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    swaps_.push_back(
        SwapEvent{serving, candidate, quarantine_timer.Millis()});
    if (swaps_.size() > config_.max_history) {
      swaps_.erase(swaps_.begin(),
                   swaps_.end() - static_cast<ptrdiff_t>(config_.max_history));
    }
    phase_ = CandidatePhase::kIdle;
    candidate_ = 0;
  }
  // The candidate's reservation is released once it *is* the serving
  // artifact: the overlap window ends when the old generation drains,
  // which its per-request references bound tightly.
  release();
  GALIGN_LOG(Info) << "Serving artifact swapped: generation " << serving
                   << " -> " << candidate;
  return true;
}

SwapHealth ArtifactWatcher::Health() const {
  SwapHealth health;
  health.serving_generation = server_->serving_generation();
  health.ready = health.serving_generation > 0;
  health.queue_depth = server_->queue_depth();
  health.stats = server_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  health.newest_seen_generation = newest_seen_;
  health.candidate_phase = phase_;
  health.candidate_generation = candidate_;
  health.quarantined.reserve(poisoned_.size());
  for (const auto& [gen, record] : poisoned_) health.quarantined.push_back(record);
  health.swaps = swaps_;
  return health;
}

}  // namespace galign
