// Overload-safe alignment serving (DESIGN.md §12).
//
// AlignServer answers "top-k aligned targets of source node v" queries over
// one immutable AlignmentIndex shared by every worker. The contract the
// whole design hangs on: **no admitted request ever hangs, and no overload
// ever crashes the process.** Every Submit() resolves its future with
// exactly one of
//
//   * a full answer (status OK, answer_source "ann", effort_step 0);
//   * a clearly-marked degraded answer — reduced ANN effort under queue
//     pressure (effort_step > 0) or the precomputed anchor-table row when
//     the request's deadline/cancellation fired mid-query (answer_source
//     "anchor_table"); or
//   * a typed rejection: kOverloaded (queue full, memory budget exhausted,
//     or shutdown) with a retry-after hint, kDeadlineExceeded (budget gone
//     and the client opted out of degraded answers), or kInvalidArgument
//     (malformed request).
//
// Admission is synchronous in Submit(): the bounded queue and the shared
// MemoryBudget are checked on the caller's thread, so shed load never
// consumes a worker. The request's deadline starts at admission — queue
// wait counts against it — which is what bounds end-to-end latency under
// burst. Fault sites: "serve.admit" (admission rejects), "serve.query.cancel"
// (mid-query client disconnect).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "common/timer.h"
#include "serve/alignment_index.h"

namespace galign {

/// Server tuning. Defaults favor a small test deployment; `galign_serve`
/// exposes each as a flag.
struct ServeConfig {
  int workers = 2;
  /// Bounded queue: Submit() sheds kOverloaded once this many admitted
  /// requests are waiting.
  int64_t queue_capacity = 64;
  /// Per-request deadline when the request does not carry one; starts at
  /// admission, so queue wait spends it.
  double default_deadline_ms = 250.0;
  /// Admission estimate reserved against `budget` per in-flight request
  /// (query scratch + response). Requests that do not fit are shed.
  uint64_t per_request_bytes = uint64_t{4} << 20;
  /// Shared memory budget; null = unbounded (no budget-based shedding).
  std::shared_ptr<MemoryBudget> budget;
  /// Queue fill fraction where ANN effort starts stepping down.
  double degrade_watermark = 0.5;
  /// Maximum degradation step; step s queries at effort 2^-s.
  int max_effort_step = 3;
  /// Retry-after hint attached to kOverloaded sheds.
  double retry_after_ms = 50.0;
};

struct QueryRequest {
  int64_t node = -1;  ///< source node to align
  int64_t k = 10;     ///< answer width (clamped to the target size)
  /// Per-request deadline in ms; <= 0 uses the server default.
  double deadline_ms = 0.0;
  /// When false, an expired deadline is a typed kDeadlineExceeded instead
  /// of an anchor-table answer.
  bool allow_degraded = true;
  /// Cancellation handle (client disconnect). A default token never fires
  /// unless the caller cancels it.
  CancelToken token;
};

struct QueryResponse {
  Status status = Status::OK();
  std::vector<int64_t> targets;  ///< aligned target ids, best first
  std::vector<double> scores;    ///< matching multi-order similarities
  /// True whenever the answer is anything less than a full-effort ANN
  /// query: reduced effort under pressure, or an anchor-table fallback.
  bool degraded = false;
  int effort_step = 0;        ///< 0 = full effort; s queried at 2^-s
  std::string answer_source;  ///< "ann" | "anchor_table" | "" on rejection
  double retry_after_ms = 0.0;  ///< backoff hint, set on kOverloaded
  double latency_ms = 0.0;      ///< admission to completion
  /// Artifact generation that answered (stamped at admission, so a request
  /// in flight across a hot swap reports the generation it actually ran
  /// against). 0 on rejections that never bound to an index.
  int64_t generation = 0;
};

/// Monotonic counters; Snapshot() is safe to call concurrently with
/// serving.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_budget = 0;
  uint64_t shed_fault = 0;      ///< "serve.admit" injected rejects
  uint64_t shed_shutdown = 0;   ///< pending requests drained at Shutdown
  uint64_t invalid_argument = 0;
  uint64_t completed_full = 0;
  uint64_t completed_reduced_effort = 0;
  uint64_t completed_anchor = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t swaps = 0;  ///< successful SwapIndex() publications
};

/// \brief Bounded-queue serving loop over one immutable AlignmentIndex.
///
/// Start() spawns the workers; until then admitted requests queue without
/// being drained (tests use this to fill the queue deterministically).
/// Shutdown() (or the destructor) joins the workers and resolves every
/// still-queued future with a typed kOverloaded — never an abandoned
/// promise.
class AlignServer {
 public:
  /// `generation` labels the initial artifact (the store's generation
  /// number when loaded from one; any positive id otherwise).
  AlignServer(std::shared_ptr<const AlignmentIndex> index, ServeConfig config,
              int64_t generation = 1);
  ~AlignServer();

  AlignServer(const AlignServer&) = delete;
  AlignServer& operator=(const AlignServer&) = delete;

  /// Spawns the worker threads. Idempotent.
  void Start();

  /// Stops the workers, drains the queue with typed kOverloaded responses.
  /// Idempotent; Submit() after Shutdown() sheds immediately.
  void Shutdown();

  /// \brief Admission-controlled enqueue; never blocks.
  ///
  /// The returned future is always eventually resolved — by a worker, or
  /// by Shutdown()'s drain. Rejections (overload, invalid argument)
  /// resolve it immediately on the calling thread.
  std::future<QueryResponse> Submit(const QueryRequest& request);

  /// Submit + wait (CLI and test convenience).
  QueryResponse SubmitAndWait(const QueryRequest& request);

  /// \brief Atomically publishes `index` as the serving artifact.
  ///
  /// New admissions bind to it immediately; requests already admitted (in
  /// queue or mid-query) finish on the generation they were admitted
  /// against — their Pending holds its own shared_ptr, so the old artifact
  /// stays alive until its last in-flight request resolves.
  void SwapIndex(std::shared_ptr<const AlignmentIndex> index,
                 int64_t generation);

  ServerStats Snapshot() const;
  int64_t queue_depth() const;
  /// Snapshot of the serving artifact (hold the shared_ptr — a concurrent
  /// SwapIndex retires the reference the server holds).
  std::shared_ptr<const AlignmentIndex> index() const;
  int64_t serving_generation() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    /// The artifact this request was admitted against; immutable for the
    /// request's lifetime even across swaps.
    std::shared_ptr<const AlignmentIndex> index;
    int64_t generation = 0;
    /// Deadline + token + shared budget, fixed at admission.
    RunContext ctx;
    /// Admission-time stopwatch (latency includes queue wait).
    Timer timer;
    /// Bytes reserved against the budget at admission (0 when unbounded).
    uint64_t reserved_bytes = 0;
  };

  void WorkerLoop();
  /// Effort step for the current queue depth (0 = full effort).
  int EffortStepLocked() const;
  QueryResponse Process(Pending* pending, int effort_step) const;
  static QueryResponse AnchorAnswer(const AlignmentIndex& index,
                                    const QueryRequest& request,
                                    int effort_step);

  std::shared_ptr<const AlignmentIndex> index_;  // galign: guarded_by(mu_)
  int64_t generation_ = 0;                       // galign: guarded_by(mu_)
  ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Pending>> queue_;   // galign: guarded_by(mu_)
  bool stopping_ = false;                        // galign: guarded_by(mu_)
  bool started_ = false;                         // galign: guarded_by(mu_)
  ServerStats stats_;                            // galign: guarded_by(mu_)
  std::vector<std::thread> workers_;
};

}  // namespace galign
