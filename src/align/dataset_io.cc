#include "align/dataset_io.h"

#include <filesystem>

#include "graph/io.h"

namespace galign {

namespace {
std::string Join(const std::string& dir, const char* name) {
  return (std::filesystem::path(dir) / name).string();
}

// Prefixes a sub-loader failure with the dataset part it belongs to, so a
// corrupt file inside a multi-file dataset names both the part and the file.
Status Contextualize(const Status& st, const char* part) {
  if (st.ok()) return st;
  return Status(st.code(), std::string(part) + ": " + st.message());
}

#define GALIGN_RETURN_NOT_OK_CTX(expr, part)                  \
  do {                                                        \
    ::galign::Status _st = Contextualize((expr), (part));     \
    if (!_st.ok()) return _st;                                \
  } while (0)
}  // namespace

Status SaveAlignmentPair(const AlignmentPair& pair, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);
  GALIGN_RETURN_NOT_OK(SaveEdgeList(pair.source, Join(dir, "source.edges")));
  GALIGN_RETURN_NOT_OK(
      SaveAttributes(pair.source.attributes(), Join(dir, "source.attrs")));
  GALIGN_RETURN_NOT_OK(SaveEdgeList(pair.target, Join(dir, "target.edges")));
  GALIGN_RETURN_NOT_OK(
      SaveAttributes(pair.target.attributes(), Join(dir, "target.attrs")));
  GALIGN_RETURN_NOT_OK(
      SaveGroundTruth(pair.ground_truth, Join(dir, "ground_truth.txt")));
  return Status::OK();
}

Result<AlignmentPair> LoadAlignmentPair(const std::string& dir) {
  auto source_edges = LoadEdgeList(Join(dir, "source.edges"));
  GALIGN_RETURN_NOT_OK_CTX(source_edges.status(), "source network");
  auto source_attrs = LoadAttributes(Join(dir, "source.attrs"));
  GALIGN_RETURN_NOT_OK_CTX(source_attrs.status(), "source attributes");
  // An empty attribute file is a legal attribute-less graph; any other row
  // count must match the node count exactly.
  const int64_t source_attr_rows = source_attrs.ValueOrDie().rows();
  if (source_attr_rows != 0 &&
      source_attr_rows != source_edges.ValueOrDie().num_nodes()) {
    return Status::IOError(
        "source attributes: " + Join(dir, "source.attrs") + " holds " +
        std::to_string(source_attr_rows) + " rows but " +
        Join(dir, "source.edges") + " declares " +
        std::to_string(source_edges.ValueOrDie().num_nodes()) + " nodes");
  }
  auto source =
      source_edges.ValueOrDie().WithAttributes(source_attrs.MoveValueOrDie());
  GALIGN_RETURN_NOT_OK_CTX(source.status(), "source network");

  auto target_edges = LoadEdgeList(Join(dir, "target.edges"));
  GALIGN_RETURN_NOT_OK_CTX(target_edges.status(), "target network");
  auto target_attrs = LoadAttributes(Join(dir, "target.attrs"));
  GALIGN_RETURN_NOT_OK_CTX(target_attrs.status(), "target attributes");
  const int64_t target_attr_rows = target_attrs.ValueOrDie().rows();
  if (target_attr_rows != 0 &&
      target_attr_rows != target_edges.ValueOrDie().num_nodes()) {
    return Status::IOError(
        "target attributes: " + Join(dir, "target.attrs") + " holds " +
        std::to_string(target_attr_rows) + " rows but " +
        Join(dir, "target.edges") + " declares " +
        std::to_string(target_edges.ValueOrDie().num_nodes()) + " nodes");
  }
  auto target =
      target_edges.ValueOrDie().WithAttributes(target_attrs.MoveValueOrDie());
  GALIGN_RETURN_NOT_OK_CTX(target.status(), "target network");

  auto gt = LoadGroundTruth(Join(dir, "ground_truth.txt"),
                            source.ValueOrDie().num_nodes());
  GALIGN_RETURN_NOT_OK_CTX(gt.status(), "ground truth");

  AlignmentPair pair;
  pair.source = source.MoveValueOrDie();
  pair.target = target.MoveValueOrDie();
  pair.ground_truth = gt.MoveValueOrDie();
  for (size_t v = 0; v < pair.ground_truth.size(); ++v) {
    if (pair.ground_truth[v] >= pair.target.num_nodes()) {
      return Status::IOError(
          "ground truth: " + Join(dir, "ground_truth.txt") + " maps source " +
          std::to_string(v) + " to target " +
          std::to_string(pair.ground_truth[v]) +
          ", but the target network has only " +
          std::to_string(pair.target.num_nodes()) + " nodes");
    }
  }
  return pair;
}

}  // namespace galign
