#include "align/dataset_io.h"

#include <filesystem>

#include "graph/io.h"

namespace galign {

namespace {
std::string Join(const std::string& dir, const char* name) {
  return (std::filesystem::path(dir) / name).string();
}
}  // namespace

Status SaveAlignmentPair(const AlignmentPair& pair, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);
  GALIGN_RETURN_NOT_OK(SaveEdgeList(pair.source, Join(dir, "source.edges")));
  GALIGN_RETURN_NOT_OK(
      SaveAttributes(pair.source.attributes(), Join(dir, "source.attrs")));
  GALIGN_RETURN_NOT_OK(SaveEdgeList(pair.target, Join(dir, "target.edges")));
  GALIGN_RETURN_NOT_OK(
      SaveAttributes(pair.target.attributes(), Join(dir, "target.attrs")));
  GALIGN_RETURN_NOT_OK(
      SaveGroundTruth(pair.ground_truth, Join(dir, "ground_truth.txt")));
  return Status::OK();
}

Result<AlignmentPair> LoadAlignmentPair(const std::string& dir) {
  auto source_edges = LoadEdgeList(Join(dir, "source.edges"));
  GALIGN_RETURN_NOT_OK(source_edges.status());
  auto source_attrs = LoadAttributes(Join(dir, "source.attrs"));
  GALIGN_RETURN_NOT_OK(source_attrs.status());
  auto source =
      source_edges.ValueOrDie().WithAttributes(source_attrs.MoveValueOrDie());
  GALIGN_RETURN_NOT_OK(source.status());

  auto target_edges = LoadEdgeList(Join(dir, "target.edges"));
  GALIGN_RETURN_NOT_OK(target_edges.status());
  auto target_attrs = LoadAttributes(Join(dir, "target.attrs"));
  GALIGN_RETURN_NOT_OK(target_attrs.status());
  auto target =
      target_edges.ValueOrDie().WithAttributes(target_attrs.MoveValueOrDie());
  GALIGN_RETURN_NOT_OK(target.status());

  auto gt = LoadGroundTruth(Join(dir, "ground_truth.txt"),
                            source.ValueOrDie().num_nodes());
  GALIGN_RETURN_NOT_OK(gt.status());

  AlignmentPair pair;
  pair.source = source.MoveValueOrDie();
  pair.target = target.MoveValueOrDie();
  pair.ground_truth = gt.MoveValueOrDie();
  for (int64_t t : pair.ground_truth) {
    if (t >= pair.target.num_nodes()) {
      return Status::IOError("ground truth references missing target node");
    }
  }
  return pair;
}

}  // namespace galign
