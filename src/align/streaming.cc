#include "align/streaming.h"

#include <algorithm>

#include "la/ops.h"

namespace galign {

namespace {

Status Validate(const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
                const std::vector<double>& theta) {
  if (hs.empty() || hs.size() != ht.size() || hs.size() != theta.size()) {
    return Status::InvalidArgument(
        "embeddings/theta layer counts inconsistent");
  }
  for (size_t l = 0; l < hs.size(); ++l) {
    if (hs[l].cols() != ht[l].cols()) {
      return Status::InvalidArgument("layer dimension mismatch");
    }
    if (hs[l].rows() != hs[0].rows() || ht[l].rows() != ht[0].rows()) {
      return Status::InvalidArgument("layer row count mismatch");
    }
  }
  return Status::OK();
}

// Calls visit(v, row_values) for every source row of the aggregated
// alignment matrix, chunk by chunk.
template <typename Visitor>
void StreamRows(const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
                const std::vector<double>& theta, int64_t chunk_rows,
                Visitor&& visit) {
  const int64_t n1 = hs[0].rows();
  const int64_t n2 = ht[0].rows();
  chunk_rows = std::max<int64_t>(1, chunk_rows);
  for (int64_t r0 = 0; r0 < n1; r0 += chunk_rows) {
    const int64_t rows = std::min(chunk_rows, n1 - r0);
    Matrix agg(rows, n2);
    for (size_t l = 0; l < hs.size(); ++l) {
      if (theta[l] == 0.0) continue;
      Matrix block = MatMulTransposedB(
          hs[l].Block(r0, 0, rows, hs[l].cols()), ht[l]);
      agg.Axpy(theta[l], block);
    }
    for (int64_t i = 0; i < rows; ++i) {
      visit(r0 + i, agg.row_data(i), n2);
    }
  }
}

}  // namespace

Result<AlignmentMetrics> ComputeMetricsStreaming(
    const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
    const std::vector<double>& theta,
    const std::vector<int64_t>& ground_truth, int64_t chunk_rows) {
  GALIGN_RETURN_NOT_OK(Validate(hs, ht, theta));
  AlignmentMetrics m;
  double s1 = 0, s5 = 0, s10 = 0, mrr = 0, auc = 0;
  int64_t count = 0;
  StreamRows(hs, ht, theta, chunk_rows,
             [&](int64_t v, const double* row, int64_t n2) {
               if (v >= static_cast<int64_t>(ground_truth.size())) return;
               int64_t t = ground_truth[v];
               if (t < 0 || t >= n2) return;
               const double target = row[t];
               int64_t greater = 0, equal_others = 0;
               for (int64_t c = 0; c < n2; ++c) {
                 if (c == t) continue;
                 if (row[c] > target) {
                   ++greater;
                 } else if (row[c] == target) {
                   ++equal_others;
                 }
               }
               int64_t rank = 1 + greater + equal_others / 2;
               if (rank <= 1) s1 += 1;
               if (rank <= 5) s5 += 1;
               if (rank <= 10) s10 += 1;
               mrr += 1.0 / static_cast<double>(rank);
               const double negatives = static_cast<double>(n2 - 1);
               auc += negatives > 0
                          ? (negatives + 1.0 - rank) / negatives
                          : 1.0;
               ++count;
             });
  m.num_anchors = count;
  if (count == 0) return m;
  const double n = static_cast<double>(count);
  m.success_at_1 = s1 / n;
  m.success_at_5 = s5 / n;
  m.success_at_10 = s10 / n;
  m.map = mrr / n;
  m.auc = auc / n;
  return m;
}

Result<std::vector<int64_t>> Top1AnchorsStreaming(
    const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
    const std::vector<double>& theta, int64_t chunk_rows) {
  GALIGN_RETURN_NOT_OK(Validate(hs, ht, theta));
  std::vector<int64_t> anchors(hs[0].rows(), -1);
  StreamRows(hs, ht, theta, chunk_rows,
             [&](int64_t v, const double* row, int64_t n2) {
               int64_t best = 0;
               for (int64_t c = 1; c < n2; ++c) {
                 if (row[c] > row[best]) best = c;
               }
               anchors[v] = best;
             });
  return anchors;
}

}  // namespace galign
