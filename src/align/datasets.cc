#include "align/datasets.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/generators.h"

namespace galign {

DatasetSpec DatasetSpec::Scaled(double factor) const {
  if (factor <= 1.0) return *this;
  DatasetSpec s = *this;
  auto shrink = [factor](int64_t x) {
    return std::max<int64_t>(8, static_cast<int64_t>(
                                    std::llround(static_cast<double>(x) / factor)));
  };
  s.source_nodes = shrink(source_nodes);
  s.source_edges = shrink(source_edges);
  s.target_nodes = shrink(target_nodes);
  s.target_edges = shrink(target_edges);
  s.num_anchors = std::min(
      {shrink(num_anchors), s.source_nodes, s.target_nodes});
  return s;
}

DatasetSpec DoubanSpec() {
  DatasetSpec s;
  s.name = "Douban Online-Offline";
  s.source_nodes = 3906;
  s.source_edges = 8164;
  s.target_nodes = 1118;
  s.target_edges = 1511;
  s.num_attributes = 538;
  s.num_anchors = 1118;
  s.attribute_kind = AttributeKind::kBinaryTags;
  // Moderate consistency violations: the offline network is much sparser
  // than the online one and profiles drift between platforms.
  s.structural_noise = 0.25;
  s.attribute_noise = 0.35;
  return s;
}

DatasetSpec FlickrMyspaceSpec() {
  DatasetSpec s;
  s.name = "Flickr-Myspace";
  s.source_nodes = 5740;
  s.source_edges = 8977;
  s.target_nodes = 4504;
  s.target_edges = 5507;
  s.num_attributes = 3;
  s.num_anchors = 323;
  // The three profile fields behave like categorical flags.
  s.attribute_kind = AttributeKind::kCategories;
  // Avg degree < 5 and almost no shared structure: the regime where every
  // method ill-performs (paper §VII-B).
  s.structural_noise = 0.35;
  s.attribute_noise = 0.25;
  return s;
}

DatasetSpec AllmovieImdbSpec() {
  DatasetSpec s;
  s.name = "Allmovie-Imdb";
  s.source_nodes = 6011;
  s.source_edges = 124709;
  s.target_nodes = 5713;
  s.target_edges = 119073;
  s.num_attributes = 14;
  s.num_anchors = 5176;
  s.attribute_kind = AttributeKind::kCategories;
  // Both sides derive from the same film catalogue: dense, high overlap,
  // low-but-real noise (casts and genre tags differ between databases) —
  // the easiest regime, yet enough drift that pure structural identity
  // (degree histograms) cannot solve it outright.
  s.structural_noise = 0.07;
  s.attribute_noise = 0.10;
  return s;
}

namespace {

Result<AttributedGraph> MakeRepositoryLike(int64_t nodes, int64_t edges,
                                           double exponent, Rng* rng,
                                           double scale) {
  if (scale < 1.0) scale = 1.0;
  int64_t n = std::max<int64_t>(8, static_cast<int64_t>(nodes / scale));
  int64_t e = std::max<int64_t>(8, static_cast<int64_t>(edges / scale));
  auto g = PowerLawGraph(n, e, exponent, rng);
  if (!g.ok()) return g.status();
  Matrix attrs = BinaryAttributes(n, 20, 0.15, rng);
  return g.ValueOrDie().WithAttributes(std::move(attrs));
}

}  // namespace

Result<AttributedGraph> MakeBnLike(Rng* rng, double scale) {
  return MakeRepositoryLike(1781, 9016, 2.3, rng, scale);
}

Result<AttributedGraph> MakeEconLike(Rng* rng, double scale) {
  return MakeRepositoryLike(1258, 7619, 2.1, rng, scale);
}

Result<AttributedGraph> MakeEmailLike(Rng* rng, double scale) {
  return MakeRepositoryLike(1133, 5451, 2.4, rng, scale);
}

Matrix MakeAttributes(const DatasetSpec& spec, int64_t n, Rng* rng) {
  switch (spec.attribute_kind) {
    case AttributeKind::kBinaryTags: {
      // Sparse tag profiles: expect ~5 tags per node regardless of width.
      double density =
          std::min(0.5, 5.0 / static_cast<double>(spec.num_attributes));
      return BinaryAttributes(n, spec.num_attributes, density, rng);
    }
    case AttributeKind::kRealProfile:
      return RealAttributes(n, spec.num_attributes, 2.0, rng);
    case AttributeKind::kCategories: {
      // Movies carry 1-3 genres out of a skewed catalogue.
      Matrix f = OneHotAttributes(n, spec.num_attributes, 1.0, rng);
      Matrix extra = OneHotAttributes(n, spec.num_attributes, 1.0, rng);
      for (int64_t i = 0; i < f.size(); ++i) {
        if (rng->Bernoulli(0.6)) {
          f.data()[i] = std::min(1.0, f.data()[i] + extra.data()[i]);
        }
      }
      return f;
    }
  }
  return Matrix(n, 1, 1.0);
}

Result<AlignmentPair> SynthesizePair(const DatasetSpec& spec, Rng* rng) {
  if (spec.num_anchors > std::min(spec.source_nodes, spec.target_nodes) ||
      spec.target_nodes > spec.source_nodes) {
    return Status::InvalidArgument(
        spec.name + ": need anchors <= target_nodes <= source_nodes");
  }
  // 1. Source network.
  auto src_result = PowerLawGraph(spec.source_nodes, spec.source_edges,
                                  spec.power_law_exponent, rng);
  if (!src_result.ok()) return src_result.status();
  AttributedGraph source = src_result.MoveValueOrDie();
  {
    auto r = source.WithAttributes(
        MakeAttributes(spec, spec.source_nodes, rng));
    if (!r.ok()) return r.status();
    source = r.MoveValueOrDie();
  }

  // 2. The target population is a degree-biased sample of target_nodes
  // source nodes (the other platform's crawl of the same community);
  // repeated endpoint sampling prefers high-degree nodes, keeping the
  // shared core connected. Only num_anchors of them are *recorded* as
  // ground truth — mirroring the real datasets, where the validated anchor
  // list covers a subset of the genuinely overlapping users.
  std::set<int64_t> selected_set;
  {
    std::vector<int64_t> endpoints;
    endpoints.reserve(source.num_edges() * 2);
    for (const auto& [u, v] : source.edges()) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
    // Endpoint sampling can only ever select non-isolated nodes, so bound
    // the attempts (a sparse graph may have fewer distinct endpoints than
    // target_nodes) and fill the remainder uniformly.
    int64_t attempts = 0;
    const int64_t max_attempts = 50 * (spec.target_nodes + 1);
    while (static_cast<int64_t>(selected_set.size()) < spec.target_nodes &&
           !endpoints.empty() && attempts++ < max_attempts) {
      selected_set.insert(endpoints[rng->UniformInt(
          static_cast<int64_t>(endpoints.size()))]);
    }
    // Top up with uniform picks (also covers the edgeless-graph case).
    while (static_cast<int64_t>(selected_set.size()) < spec.target_nodes) {
      selected_set.insert(rng->UniformInt(source.num_nodes()));
    }
  }
  std::vector<int64_t> selected(selected_set.begin(), selected_set.end());
  rng->Shuffle(&selected);

  // 3. Target = induced subgraph on the selected nodes (target node i
  // corresponds to source node selected[i]; attributes move along).
  auto core_result = source.InducedSubgraph(selected);
  if (!core_result.ok()) return core_result.status();
  AttributedGraph target = core_result.MoveValueOrDie();

  // 4. Nudge the edge count toward the spec, then apply noise + permutation.
  if (target.num_edges() < spec.target_edges) {
    double deficit =
        static_cast<double>(spec.target_edges - target.num_edges()) /
        std::max<int64_t>(1, target.num_edges());
    auto r = AddRandomEdges(target, deficit, rng);
    if (!r.ok()) return r.status();
    target = r.MoveValueOrDie();
  } else if (target.num_edges() > spec.target_edges) {
    double surplus =
        static_cast<double>(target.num_edges() - spec.target_edges) /
        static_cast<double>(target.num_edges());
    auto r = RemoveEdges(target, surplus, rng);
    if (!r.ok()) return r.status();
    target = r.MoveValueOrDie();
  }

  NoisyCopyOptions noise;
  noise.structural_noise = spec.structural_noise;
  noise.attribute_noise = spec.attribute_noise;
  noise.permute = true;
  auto pair_result = MakeNoisyCopyPair(target, noise, rng);
  if (!pair_result.ok()) return pair_result.status();
  AlignmentPair inner = pair_result.MoveValueOrDie();

  AlignmentPair out;
  out.source = std::move(source);
  out.target = std::move(inner.target);
  out.ground_truth.assign(out.source.num_nodes(), -1);
  // Record only the first num_anchors selected nodes as validated anchors
  // (`selected` was shuffled, so this is a uniform subset).
  for (int64_t i = 0; i < spec.num_anchors; ++i) {
    out.ground_truth[selected[i]] = inner.ground_truth[i];
  }
  return out;
}

}  // namespace galign
