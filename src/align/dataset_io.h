// Persistence for complete alignment datasets (source + target + ground
// truth) as a directory of plain-text files. Lets the full-scale benches
// synthesize a pair once and reload it across runs, and lets users package
// their own alignment tasks for the CLI.
//
// Layout of <dir>:
//   source.edges  source.attrs  target.edges  target.attrs  ground_truth.txt
#pragma once

#include <string>

#include "common/status.h"
#include "graph/noise.h"

namespace galign {

/// Writes the pair into `dir` (created if missing).
[[nodiscard]] Status SaveAlignmentPair(const AlignmentPair& pair, const std::string& dir);

/// Reads a pair written by SaveAlignmentPair.
[[nodiscard]] Result<AlignmentPair> LoadAlignmentPair(const std::string& dir);

}  // namespace galign
