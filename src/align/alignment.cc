#include "align/alignment.h"

#include <algorithm>
#include <queue>

#include "la/ops.h"

namespace galign {

uint64_t Aligner::EstimatePeakBytes(int64_t n_source, int64_t n_target,
                                    int64_t dims) const {
  // Generic dense-method bound: a handful of simultaneously-live
  // n_source x n_target matrices (prior, iterate, scratch, result) plus the
  // attribute inputs. Methods with a heavier or lighter footprint override.
  return 4 * DenseBytes(n_source, n_target) +
         DenseBytes(n_source + n_target, dims);
}

Result<TopKAlignment> Aligner::AlignTopK(const AttributedGraph& source,
                                         const AttributedGraph& target,
                                         const Supervision& supervision,
                                         const RunContext& ctx, int64_t k) {
  // Fallback adapter: no memory savings over Align() — methods with a
  // genuinely row-blocked kernel override this.
  auto dense = Align(source, target, supervision, ctx);
  GALIGN_RETURN_NOT_OK(dense.status());
  return TopKFromDense(dense.ValueOrDie(), k);
}

Status ReserveAlignerBudget(const Aligner& aligner,
                            const AttributedGraph& source,
                            const AttributedGraph& target,
                            const RunContext& ctx, MemoryScope* scope) {
  if (!ctx.HasMemoryLimit()) return Status::OK();
  const uint64_t estimate = aligner.EstimatePeakBytes(
      source.num_nodes(), target.num_nodes(), source.attributes().cols());
  return MemoryScope::Reserve(ctx.budget(), estimate,
                              aligner.name() + " admission", scope);
}

std::vector<int64_t> Top1Anchors(const Matrix& s) {
  std::vector<int64_t> anchors(s.rows());
  for (int64_t r = 0; r < s.rows(); ++r) {
    anchors[r] = ArgMaxRow(s, r);
  }
  return anchors;
}

std::vector<int64_t> GreedyOneToOneAnchors(const Matrix& s) {
  struct Entry {
    double value;
    int64_t row;
    int64_t col;
    bool operator<(const Entry& o) const { return value < o.value; }
  };
  // Seed the heap with each row's best candidate; on pop, if the column was
  // taken, push the row's next-best remaining candidate.
  const int64_t n1 = s.rows(), n2 = s.cols();
  std::vector<int64_t> anchors(n1, -1);
  std::vector<bool> col_used(n2, false);
  std::vector<std::vector<int64_t>> row_order(n1);
  std::vector<int64_t> row_pos(n1, 0);
  std::priority_queue<Entry> heap;
  for (int64_t r = 0; r < n1; ++r) {
    row_order[r] = TopKRow(s, r, n2);
    heap.push({s(r, row_order[r][0]), r, row_order[r][0]});
  }
  int64_t assigned = 0;
  const int64_t max_assign = std::min(n1, n2);
  while (!heap.empty() && assigned < max_assign) {
    Entry e = heap.top();
    heap.pop();
    if (anchors[e.row] != -1) continue;
    if (col_used[e.col]) {
      int64_t& pos = row_pos[e.row];
      while (pos + 1 < static_cast<int64_t>(row_order[e.row].size())) {
        ++pos;
        int64_t c = row_order[e.row][pos];
        if (!col_used[c]) {
          heap.push({s(e.row, c), e.row, c});
          break;
        }
      }
      continue;
    }
    anchors[e.row] = e.col;
    col_used[e.col] = true;
    ++assigned;
  }
  return anchors;
}

std::vector<std::vector<int64_t>> TopKAnchors(const Matrix& s, int64_t k) {
  std::vector<std::vector<int64_t>> out(s.rows());
  for (int64_t r = 0; r < s.rows(); ++r) {
    out[r] = TopKRow(s, r, k);
  }
  return out;
}

std::vector<std::vector<int64_t>> AnchorsAboveThreshold(const Matrix& s,
                                                        double threshold) {
  std::vector<std::vector<int64_t>> out(s.rows());
  for (int64_t r = 0; r < s.rows(); ++r) {
    std::vector<int64_t> candidates;
    const double* row = s.row_data(r);
    for (int64_t c = 0; c < s.cols(); ++c) {
      if (row[c] > threshold) candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](int64_t a, int64_t b) { return row[a] > row[b]; });
    out[r] = std::move(candidates);
  }
  return out;
}

Supervision SampleSeeds(const std::vector<int64_t>& ground_truth,
                        double fraction, Rng* rng) {
  std::vector<int64_t> sources;
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    if (ground_truth[v] != -1) sources.push_back(static_cast<int64_t>(v));
  }
  int64_t k = static_cast<int64_t>(fraction * static_cast<double>(sources.size()));
  rng->Shuffle(&sources);
  Supervision sup;
  for (int64_t i = 0; i < k; ++i) {
    sup.seeds.emplace_back(sources[i], ground_truth[sources[i]]);
  }
  return sup;
}

Matrix PriorFromSeeds(int64_t n1, int64_t n2, const Supervision& supervision) {
  Matrix h(n1, n2, 1.0 / static_cast<double>(n2));
  for (const auto& [s, t] : supervision.seeds) {
    for (int64_t c = 0; c < n2; ++c) h(s, c) = 0.0;
    h(s, t) = 1.0;
  }
  return h;
}

Matrix AttributePrior(const AttributedGraph& source,
                      const AttributedGraph& target) {
  const Matrix& fs = source.attributes();
  const Matrix& ft = target.attributes();
  Matrix n(source.num_nodes(), target.num_nodes());
  if (fs.cols() != ft.cols()) {
    // Incomparable modalities: fall back to a uniform prior.
    n.Fill(1.0 / static_cast<double>(std::max<int64_t>(1, target.num_nodes())));
    return n;
  }
  for (int64_t i = 0; i < n.rows(); ++i) {
    for (int64_t j = 0; j < n.cols(); ++j) {
      n(i, j) = std::max(0.0, RowCosine(fs, i, ft, j));
    }
  }
  // Row-normalize so the prior is a soft assignment.
  for (int64_t i = 0; i < n.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < n.cols(); ++j) sum += n(i, j);
    if (sum > 1e-12) {
      for (int64_t j = 0; j < n.cols(); ++j) n(i, j) /= sum;
    } else {
      for (int64_t j = 0; j < n.cols(); ++j) {
        n(i, j) = 1.0 / static_cast<double>(n.cols());
      }
    }
  }
  return n;
}

}  // namespace galign
