// Alignment quality metrics exactly as defined in the paper (§VII-A):
// Success@q (Eq. 16), MAP = mean reciprocal rank under the pairwise setting
// (Eq. 17), and the simplified AUC (Eq. 18).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {

/// Full metric bundle for one alignment run.
struct AlignmentMetrics {
  double success_at_1 = 0.0;
  double success_at_5 = 0.0;
  double success_at_10 = 0.0;
  double map = 0.0;
  double auc = 0.0;
  int64_t num_anchors = 0;
  double seconds = 0.0;  // filled by the pipeline

  std::string ToString() const;
};

/// Success@q over the ground truth (entries == -1 are skipped).
double SuccessAtQ(const Matrix& s, const std::vector<int64_t>& ground_truth,
                  int64_t q);

/// Mean Average Precision == mean reciprocal rank of the true anchor.
double MeanAveragePrecision(const Matrix& s,
                            const std::vector<int64_t>& ground_truth);

/// Simplified AUC (Eq. 18): mean over anchors of
/// (#negatives + 1 - rank) / #negatives, with #negatives = n2 - 1.
double Auc(const Matrix& s, const std::vector<int64_t>& ground_truth);

/// Computes all metrics in a single pass over the alignment matrix rows.
AlignmentMetrics ComputeMetrics(const Matrix& s,
                                const std::vector<int64_t>& ground_truth);

/// \brief Metrics over a compressed top-k alignment (the budget-degraded
/// path of DESIGN.md §9).
///
/// Success@q is exact whenever q <= s.k (the pipeline uses k >= 10, so all
/// reported Success columns are exact). When the true anchor fell outside a
/// row's stored top-k its rank is unknown; it is scored at the worst rank
/// (s.cols), which makes MAP and AUC conservative lower bounds of their
/// dense values. Rows past rows_computed (early wind-down) are skipped.
AlignmentMetrics ComputeMetricsTopK(const TopKAlignment& s,
                                    const std::vector<int64_t>& ground_truth);

/// Precision/recall of a thresholded one-to-many instantiation (the
/// paper's §II-B flexibility argument): predicted links are all entries
/// with score > threshold.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t predicted = 0;  ///< number of predicted links
};

/// Evaluates the link set {(v, u) : S(v, u) > threshold} against the
/// ground-truth anchors (rows with gt == -1 contribute predictions that
/// count against precision but are excluded from recall).
PrecisionRecall EvaluateThreshold(const Matrix& s,
                                  const std::vector<int64_t>& ground_truth,
                                  double threshold);

/// Sweeps thresholds over the score range and returns the best-F1 point.
PrecisionRecall BestF1(const Matrix& s,
                       const std::vector<int64_t>& ground_truth,
                       int num_thresholds = 50);

}  // namespace galign
