#include "align/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "la/ops.h"

namespace galign {

namespace {

BootstrapStat Summarize(std::vector<double> values) {
  BootstrapStat stat;
  const double n = static_cast<double>(values.size());
  if (values.empty()) return stat;
  double sum = 0, sq = 0;
  for (double v : values) {
    sum += v;
    sq += v * v;
  }
  stat.mean = sum / n;
  stat.stddev = std::sqrt(std::max(0.0, sq / n - stat.mean * stat.mean));
  std::sort(values.begin(), values.end());
  auto quantile = [&](double q) {
    double idx = q * (n - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  stat.p5 = quantile(0.05);
  stat.p95 = quantile(0.95);
  return stat;
}

}  // namespace

std::string BootstrapMetrics::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << "S@1 " << success_at_1.mean << " ["
     << success_at_1.p5 << ", " << success_at_1.p95 << "]  MAP " << map.mean
     << " [" << map.p5 << ", " << map.p95 << "]  AUC " << auc.mean << " ["
     << auc.p5 << ", " << auc.p95 << "]  (" << resamples << " resamples)";
  return os.str();
}

Result<BootstrapMetrics> BootstrapEvaluate(
    const Matrix& s, const std::vector<int64_t>& ground_truth,
    int64_t resamples, uint64_t seed) {
  if (resamples < 1) {
    return Status::InvalidArgument("resamples must be >= 1");
  }
  // Per-anchor ranks, computed once.
  std::vector<int64_t> ranks;
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    int64_t t = ground_truth[v];
    if (t < 0 || t >= s.cols() || static_cast<int64_t>(v) >= s.rows()) {
      continue;
    }
    ranks.push_back(RankInRow(s, static_cast<int64_t>(v), t));
  }
  if (ranks.empty()) {
    return Status::InvalidArgument("no anchors to evaluate");
  }
  const double negatives = static_cast<double>(s.cols() - 1);
  const int64_t m = static_cast<int64_t>(ranks.size());

  Rng rng(seed);
  std::vector<double> s1(resamples), map(resamples), auc(resamples);
  for (int64_t b = 0; b < resamples; ++b) {
    double hit1 = 0, mrr = 0, auc_sum = 0;
    for (int64_t i = 0; i < m; ++i) {
      int64_t rank = ranks[rng.UniformInt(m)];
      if (rank <= 1) hit1 += 1;
      mrr += 1.0 / static_cast<double>(rank);
      auc_sum += negatives > 0 ? (negatives + 1.0 - rank) / negatives : 1.0;
    }
    s1[b] = hit1 / m;
    map[b] = mrr / m;
    auc[b] = auc_sum / m;
  }

  BootstrapMetrics out;
  out.success_at_1 = Summarize(std::move(s1));
  out.map = Summarize(std::move(map));
  out.auc = Summarize(std::move(auc));
  out.resamples = resamples;
  return out;
}

}  // namespace galign
