#include "align/hungarian.h"

#include <algorithm>
#include <limits>

namespace galign {

Result<std::vector<int64_t>> HungarianMatch(const Matrix& scores) {
  const int64_t rows = scores.rows();
  const int64_t cols = scores.cols();
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("HungarianMatch on empty matrix");
  }
  if (!scores.AllFinite()) {
    return Status::InvalidArgument("HungarianMatch requires finite scores");
  }
  // The potentials formulation solves minimization over a rows <= cols
  // rectangular cost matrix. Maximize by negating; if rows > cols, solve the
  // transpose and invert the assignment.
  const bool transposed = rows > cols;
  const int64_t n = transposed ? cols : rows;  // worker count (small side)
  const int64_t m = transposed ? rows : cols;  // job count (large side)
  auto cost = [&](int64_t i, int64_t j) {
    return transposed ? -scores(j, i) : -scores(i, j);
  };

  const double kInf = std::numeric_limits<double>::infinity();
  // 1-indexed potentials; p[j] over jobs, way[j] back-pointers.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int64_t> match(m + 1, 0);  // job -> worker (1-indexed)
  for (int64_t i = 1; i <= n; ++i) {
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    std::vector<int64_t> way(m + 1, 0);
    match[0] = i;
    int64_t j0 = 0;
    do {
      used[j0] = true;
      int64_t i0 = match[j0], j1 = 0;
      double delta = kInf;
      for (int64_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int64_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the path.
    do {
      int64_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0);
  }

  std::vector<int64_t> small_side(n, -1);
  for (int64_t j = 1; j <= m; ++j) {
    if (match[j] != 0) small_side[match[j] - 1] = j - 1;
  }
  if (!transposed) return small_side;
  // Invert: small side was columns; produce row -> column.
  std::vector<int64_t> assignment(rows, -1);
  for (int64_t c = 0; c < n; ++c) {
    if (small_side[c] != -1) assignment[small_side[c]] = c;
  }
  return assignment;
}

double AssignmentWeight(const Matrix& scores,
                        const std::vector<int64_t>& assignment) {
  double total = 0.0;
  for (size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v] != -1) {
      total += scores(static_cast<int64_t>(v), assignment[v]);
    }
  }
  return total;
}

}  // namespace galign
