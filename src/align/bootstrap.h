// Bootstrap confidence intervals for alignment metrics: resample the anchor
// set with replacement B times and summarize the distribution of each
// metric. Tells you whether "method A beats method B by 2 points" is signal
// or anchor-sampling noise — essential when the anchor list is small (e.g.
// Flickr-Myspace's 323 anchors).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/metrics.h"
#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// Distribution summary of one metric over bootstrap resamples.
struct BootstrapStat {
  double mean = 0.0;
  double stddev = 0.0;
  double p5 = 0.0;    ///< 5th percentile
  double p95 = 0.0;   ///< 95th percentile
};

/// Bootstrap summaries for the headline metrics.
struct BootstrapMetrics {
  BootstrapStat success_at_1;
  BootstrapStat map;
  BootstrapStat auc;
  int64_t resamples = 0;

  std::string ToString() const;
};

/// \brief Computes bootstrap confidence intervals by resampling anchors.
///
/// Ranks are computed once per anchor (the expensive part) and reused across
/// resamples, so cost is O(#anchors * n2 + B * #anchors).
[[nodiscard]] Result<BootstrapMetrics> BootstrapEvaluate(
    const Matrix& s, const std::vector<int64_t>& ground_truth,
    int64_t resamples = 1000, uint64_t seed = 7);

}  // namespace galign
