#include "align/pipeline.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/durable_io.h"
#include "common/timer.h"

namespace galign {

namespace {

// k of the degraded top-k path: covers Success@10 exactly and keeps the
// output a negligible O(n1 * k).
constexpr int64_t kChunkedK = 10;

}  // namespace

RunResult RunAligner(Aligner* aligner, const AlignmentPair& pair,
                     double seed_fraction, Rng* rng, const RunContext& ctx) {
  RunResult out;
  out.method = aligner->name();
  out.budget_bytes = ctx.HasMemoryLimit() ? ctx.budget()->limit() : 0;
  Supervision sup;
  if (seed_fraction > 0.0) {
    sup = SampleSeeds(pair.ground_truth, seed_fraction, rng);
  }
  MemoryTracker::ResetPeak();
  Timer timer;
  // Pre-flight: when the dense estimate cannot fit the budget, go straight
  // to the chunked path instead of letting admission fail inside Align().
  bool try_dense = true;
  if (ctx.HasMemoryLimit()) {
    const uint64_t estimate = aligner->EstimatePeakBytes(
        pair.source.num_nodes(), pair.target.num_nodes(),
        pair.source.attributes().cols());
    try_dense = estimate <= ctx.budget()->remaining();
  }
  if (try_dense) {
    auto s = aligner->Align(pair.source, pair.target, sup, ctx);
    if (s.ok()) {
      out.metrics = ComputeMetrics(s.ValueOrDie(), pair.ground_truth);
      out.metrics.seconds = timer.Seconds();
      // Flag a blown budget even for methods too cheap to ever poll the
      // context: an expired deadline at exit is an expired deadline.
      out.deadline_exceeded = ctx.DeadlineExceeded();
      out.cancelled = ctx.Cancelled();
      out.peak_alloc_bytes = MemoryTracker::PeakBytes();
      return out;
    }
    if (s.status().code() != StatusCode::kResourceExhausted) {
      out.status = s.status();
      out.deadline_exceeded = ctx.DeadlineExceeded();
      out.cancelled = ctx.Cancelled();
      out.peak_alloc_bytes = MemoryTracker::PeakBytes();
      return out;
    }
    // ResourceExhausted from a dense run: degrade below.
  }
  auto topk = aligner->AlignTopK(pair.source, pair.target, sup, ctx, kChunkedK);
  double seconds = timer.Seconds();
  out.deadline_exceeded = ctx.DeadlineExceeded();
  out.cancelled = ctx.Cancelled();
  out.peak_alloc_bytes = MemoryTracker::PeakBytes();
  if (!topk.ok()) {
    out.status = topk.status();
    return out;
  }
  out.degraded_chunked = true;
  out.metrics = ComputeMetricsTopK(topk.ValueOrDie(), pair.ground_truth);
  out.metrics.seconds = seconds;
  return out;
}

std::vector<RunResult> RunAll(const std::vector<Aligner*>& aligners,
                              const AlignmentPair& pair, double seed_fraction,
                              Rng* rng, const RunContext& ctx) {
  std::vector<RunResult> results;
  results.reserve(aligners.size());
  for (Aligner* a : aligners) {
    Rng fork = rng->Fork();
    results.push_back(RunAligner(a, pair, seed_fraction, &fork, ctx));
  }
  return results;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status TextTable::WriteCsv(const std::string& path) const {
  // Temp-file + rename so a crash mid-write never leaves a torn CSV that a
  // resumed bench run would mistake for a finished cell.
  return AtomicWriteFile(path, ToCsv());
}

std::string TextTable::Num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace galign
