// Optimal one-to-one anchor extraction: maximum-weight bipartite matching
// on the alignment matrix via the Hungarian (Kuhn–Munkres) algorithm in its
// O(n^3) potentials formulation. The paper frames network alignment as
// maximum bipartite matching (§I); greedy Top1/GreedyOneToOne extraction is
// cheaper but can lose weight on contested columns — this is the exact
// counterpart.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// \brief Maximum-weight one-to-one assignment.
///
/// Returns assignment[v] = matched column of row v, or -1 when rows exceed
/// columns and v is left unmatched. Every column is used at most once. The
/// matching maximizes the sum of selected scores over complete matchings of
/// min(rows, cols) pairs (scores may be negative).
[[nodiscard]] Result<std::vector<int64_t>> HungarianMatch(const Matrix& scores);

/// Total weight of an assignment under `scores` (unmatched rows contribute
/// zero).
double AssignmentWeight(const Matrix& scores,
                        const std::vector<int64_t>& assignment);

}  // namespace galign
