// Synthetic stand-ins for the paper's evaluation datasets.
//
// The real crawls (Douban Online/Offline, Flickr/Myspace, Allmovie/Imdb) and
// the Network Repository graphs (bn, econ, email) are not redistributable /
// not available offline, so each is replaced by a generator that matches the
// published Table II statistics (node count, edge count, attribute
// dimensionality, anchor count) and the qualitative regime that drives the
// paper's findings (density, overlap, noise level). See DESIGN.md §3.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/noise.h"

namespace galign {

/// Kinds of node attributes a dataset carries.
enum class AttributeKind {
  kBinaryTags,   // sparse multi-hot (user profile tags; Douban: 538 dims)
  kRealProfile,  // dense real-valued (Flickr/Myspace: 3 dims)
  kCategories,   // denser multi-hot (movie genres; Allmovie: 14 dims)
};

/// Declarative description of an alignment dataset.
struct DatasetSpec {
  std::string name;
  int64_t source_nodes = 0;
  int64_t source_edges = 0;
  int64_t target_nodes = 0;
  int64_t target_edges = 0;
  int64_t num_attributes = 1;
  int64_t num_anchors = 0;  // shared nodes; <= min(source, target) nodes
  AttributeKind attribute_kind = AttributeKind::kBinaryTags;
  double structural_noise = 0.05;  // p_s applied to the target copy
  double attribute_noise = 0.05;   // p_a applied to the target copy
  double power_law_exponent = 2.5;

  /// Returns a copy scaled down by `factor` (>= 1) for quick runs; node,
  /// edge and anchor counts shrink proportionally.
  DatasetSpec Scaled(double factor) const;
};

/// Table II stand-in specs (full paper sizes).
DatasetSpec DoubanSpec();          // 3906/8164 vs 1118/1511, 538 attrs
DatasetSpec FlickrMyspaceSpec();   // 5740/8977 vs 4504/5507, 3 attrs
DatasetSpec AllmovieImdbSpec();    // 6011/124709 vs 5713/119073, 14 attrs

/// Base networks for the synthetic noise experiments (Figs. 3-5); the
/// alignment pair is produced separately via MakeNoisyCopyPair.
[[nodiscard]] Result<AttributedGraph> MakeBnLike(Rng* rng, double scale = 1.0);    // 1781/9016
[[nodiscard]] Result<AttributedGraph> MakeEconLike(Rng* rng, double scale = 1.0);  // 1258/7619
[[nodiscard]] Result<AttributedGraph> MakeEmailLike(Rng* rng, double scale = 1.0); // 1133/5451

/// \brief Synthesizes a full alignment pair from a spec.
///
/// The source network is drawn from a power-law model with the spec's
/// attributes. The target reuses the subgraph induced by `num_anchors`
/// degree-biased source nodes, grows to `target_nodes` by preferential
/// attachment, has its edge count nudged toward `target_edges`, receives
/// structural and attribute noise, and is finally randomly permuted. The
/// recorded ground truth maps each anchored source node to its permuted
/// target id.
[[nodiscard]] Result<AlignmentPair> SynthesizePair(const DatasetSpec& spec, Rng* rng);

/// Generates the spec's attribute matrix (shared by source & target copies).
Matrix MakeAttributes(const DatasetSpec& spec, int64_t n, Rng* rng);

}  // namespace galign
