#include "align/ensemble.h"

#include <algorithm>
#include <numeric>

#include "la/ops.h"

namespace galign {

Result<Matrix> FuseAlignments(const std::vector<const Matrix*>& matrices,
                              FusionRule rule,
                              const std::vector<double>& weights) {
  if (matrices.empty()) {
    return Status::InvalidArgument("no matrices to fuse");
  }
  const int64_t n1 = matrices[0]->rows();
  const int64_t n2 = matrices[0]->cols();
  for (const Matrix* m : matrices) {
    if (m->rows() != n1 || m->cols() != n2) {
      return Status::InvalidArgument("fused matrices must share a shape");
    }
  }
  std::vector<double> w = weights;
  w.resize(matrices.size(), 1.0);

  Matrix fused(n1, n2);
  if (rule == FusionRule::kNormalizedScore) {
    for (size_t mi = 0; mi < matrices.size(); ++mi) {
      const Matrix& m = *matrices[mi];
      double lo = m.data()[0], hi = m.data()[0];
      for (int64_t i = 0; i < m.size(); ++i) {
        lo = std::min(lo, m.data()[i]);
        hi = std::max(hi, m.data()[i]);
      }
      const double span = hi - lo > 1e-300 ? hi - lo : 1.0;
      for (int64_t i = 0; i < m.size(); ++i) {
        fused.data()[i] += w[mi] * (m.data()[i] - lo) / span;
      }
    }
    return fused;
  }

  // Reciprocal-rank fusion, row by row: contribution of matrix m to entry
  // (v, u) is w / (rank of u within row v of m).
  std::vector<int64_t> idx(n2);
  for (size_t mi = 0; mi < matrices.size(); ++mi) {
    const Matrix& m = *matrices[mi];
    for (int64_t v = 0; v < n1; ++v) {
      const double* row = m.row_data(v);
      std::iota(idx.begin(), idx.end(), 0);
      std::sort(idx.begin(), idx.end(),
                [&](int64_t a, int64_t b) { return row[a] > row[b]; });
      for (int64_t r = 0; r < n2; ++r) {
        fused(v, idx[r]) += w[mi] / static_cast<double>(r + 1);
      }
    }
  }
  return fused;
}

Result<Matrix> EnsembleAligner::Align(const AttributedGraph& source,
                                      const AttributedGraph& target,
                                      const Supervision& supervision,
                                      const RunContext& ctx) {
  if (members_.empty()) {
    return Status::InvalidArgument("ensemble has no members");
  }
  std::vector<Matrix> results;
  std::vector<double> contributing_weights;
  Status last_error = Status::OK();
  for (size_t mi = 0; mi < members_.size(); ++mi) {
    auto s = members_[mi]->Align(source, target, supervision, ctx);
    if (s.ok()) {
      results.push_back(s.MoveValueOrDie());
      contributing_weights.push_back(mi < weights_.size() ? weights_[mi]
                                                          : 1.0);
    } else {
      last_error = s.status();
    }
  }
  last_contributors_ = static_cast<int64_t>(results.size());
  if (results.empty()) {
    return Status::Internal("every ensemble member failed; last error: " +
                            last_error.ToString());
  }
  std::vector<const Matrix*> ptrs;
  for (const Matrix& m : results) ptrs.push_back(&m);
  return FuseAlignments(ptrs, rule_, contributing_weights);
}

}  // namespace galign
