// Experiment pipeline: runs aligners on alignment pairs, times them, and
// scores the result. Also a fixed-width text-table writer the bench binaries
// use to print paper-style tables.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "align/alignment.h"
#include "align/metrics.h"
#include "common/status.h"
#include "graph/noise.h"

namespace galign {

/// One aligner's scored run on one dataset.
struct RunResult {
  std::string method;
  AlignmentMetrics metrics;
  Status status;  // non-OK if the aligner failed; metrics are zero then
  /// The run hit its RunContext deadline (metrics score the degraded
  /// best-so-far alignment the method wound down with).
  bool deadline_exceeded = false;
  bool cancelled = false;  ///< the cancellation token fired during the run
  /// The dense run did not fit ctx.budget() and the pipeline fell back to
  /// the chunked top-k path (DESIGN.md §9); metrics score the compressed
  /// alignment (Success columns exact, MAP/AUC lower bounds).
  bool degraded_chunked = false;
  /// Peak tracked matrix bytes alive during this run (MemoryTracker gauge,
  /// reset per run).
  uint64_t peak_alloc_bytes = 0;
  /// The budget the run was held to; 0 when unbounded.
  uint64_t budget_bytes = 0;
};

/// \brief Runs `aligner` on `pair`, sampling `seed_fraction` of the ground
/// truth as supervision (paper gives supervised baselines 10%). Timing
/// covers Align() only. `ctx` bounds the run: on expiry the aligner
/// degrades to best-so-far and the result is flagged deadline_exceeded.
RunResult RunAligner(Aligner* aligner, const AlignmentPair& pair,
                     double seed_fraction, Rng* rng,
                     const RunContext& ctx = RunContext());

/// Runs every aligner on the pair with a forked RNG per method. `ctx` is
/// shared by all methods (one overall budget, not one per method).
std::vector<RunResult> RunAll(const std::vector<Aligner*>& aligners,
                              const AlignmentPair& pair, double seed_fraction,
                              Rng* rng, const RunContext& ctx = RunContext());

/// \brief Minimal fixed-width table printer for bench output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Renders with column-aligned padding and a separator under the header.
  std::string ToString() const;
  /// Renders as comma-separated values (header first) for plotting tools.
  std::string ToCsv() const;
  /// Writes the CSV rendering to `path`.
  [[nodiscard]] Status WriteCsv(const std::string& path) const;

  /// Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace galign
