// Persistence for alignment outputs: the dense alignment matrix as TSV
// (portable, inspectable, plottable) and extracted anchor links as
// "source target score" triples — the formats the CLI tool reads/writes.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// Writes the alignment matrix as TSV, one source node per row.
[[nodiscard]] Status SaveAlignmentMatrix(const Matrix& s, const std::string& path);

/// Reads a TSV alignment matrix written by SaveAlignmentMatrix.
[[nodiscard]] Result<Matrix> LoadAlignmentMatrix(const std::string& path);

/// Writes "source target score" lines for an anchor assignment
/// (entries of -1 are skipped).
[[nodiscard]] Status SaveAnchors(const Matrix& s, const std::vector<int64_t>& anchors,
                   const std::string& path);

/// Reads anchors written by SaveAnchors back into an assignment vector of
/// length num_source_nodes (missing sources = -1). Scores are discarded.
[[nodiscard]] Result<std::vector<int64_t>> LoadAnchors(const std::string& path,
                                         int64_t num_source_nodes);

}  // namespace galign
