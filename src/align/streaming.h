// Row-streamed alignment evaluation (the paper's §VI-C space argument: the
// alignment matrix never needs to be materialized — one row of S at a time
// suffices for ranking-based outputs). Computes the full metric bundle and
// top-1 anchors directly from multi-order embeddings in O(n2 * k) working
// memory instead of O(n1 * n2).
#pragma once

#include <cstdint>
#include <vector>

#include "align/metrics.h"
#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// Metrics computed from layer embeddings without building S. Equivalent to
/// ComputeMetrics(AggregateAlignment(hs, ht, theta), ground_truth).
[[nodiscard]] Result<AlignmentMetrics> ComputeMetricsStreaming(
    const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
    const std::vector<double>& theta,
    const std::vector<int64_t>& ground_truth, int64_t chunk_rows = 256);

/// Top-1 anchors computed the same way (argmax per streamed row).
[[nodiscard]] Result<std::vector<int64_t>> Top1AnchorsStreaming(
    const std::vector<Matrix>& hs, const std::vector<Matrix>& ht,
    const std::vector<double>& theta, int64_t chunk_rows = 256);

}  // namespace galign
