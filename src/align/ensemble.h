// Ensemble alignment: fuse several aligners' score matrices into one.
// Different methods read different signals (attributes, degree identity,
// propagation, embeddings); rank-based fusion is scale-free, so methods
// with incomparable score ranges (cosines vs BP beliefs vs propagation
// mass) combine meaningfully. A natural consumer of the Aligner interface
// and a common trick for squeezing a few extra points out of a benchmark.
#pragma once

#include <memory>
#include <vector>

#include "align/alignment.h"

namespace galign {

/// How member score matrices are fused.
enum class FusionRule {
  /// Average of per-row reciprocal ranks (scale-free; robust default).
  kReciprocalRank,
  /// Weighted sum of min-max normalized scores.
  kNormalizedScore,
};

/// \brief Runs every member aligner and fuses their alignment matrices.
///
/// Members that fail are skipped (the ensemble fails only when every
/// member does). Weights default to 1.
class EnsembleAligner : public Aligner {
 public:
  EnsembleAligner(std::vector<Aligner*> members,
                  FusionRule rule = FusionRule::kReciprocalRank,
                  std::vector<double> weights = {})
      : members_(std::move(members)),
        rule_(rule),
        weights_(std::move(weights)) {}

  std::string name() const override { return "Ensemble"; }

  using Aligner::Align;
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision,
                       const RunContext& ctx) override;

  /// Number of members whose matrix entered the last fusion.
  int64_t last_contributors() const { return last_contributors_; }

 private:
  std::vector<Aligner*> members_;
  FusionRule rule_;
  std::vector<double> weights_;
  int64_t last_contributors_ = 0;
};

/// Fuses already-computed score matrices (same shapes) directly.
[[nodiscard]] Result<Matrix> FuseAlignments(const std::vector<const Matrix*>& matrices,
                              FusionRule rule,
                              const std::vector<double>& weights = {});

}  // namespace galign
