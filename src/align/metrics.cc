#include "align/metrics.h"

#include <algorithm>
#include <sstream>

#include "la/ops.h"

namespace galign {

std::string AlignmentMetrics::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << "MAP=" << map << " AUC=" << auc
     << " S@1=" << success_at_1 << " S@5=" << success_at_5
     << " S@10=" << success_at_10 << " anchors=" << num_anchors
     << " time=" << seconds << "s";
  return os.str();
}

namespace {

// Shared single-pass accumulation: per anchor row, the rank of the true
// target determines every metric.
struct Accumulated {
  double s1 = 0, s5 = 0, s10 = 0, mrr = 0, auc = 0;
  int64_t count = 0;
};

Accumulated Accumulate(const Matrix& s,
                       const std::vector<int64_t>& ground_truth) {
  Accumulated acc;
  const double negatives = static_cast<double>(s.cols() - 1);
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    int64_t t = ground_truth[v];
    if (t < 0 || t >= s.cols() || static_cast<int64_t>(v) >= s.rows()) {
      continue;
    }
    int64_t rank = RankInRow(s, static_cast<int64_t>(v), t);
    if (rank <= 1) acc.s1 += 1;
    if (rank <= 5) acc.s5 += 1;
    if (rank <= 10) acc.s10 += 1;
    acc.mrr += 1.0 / static_cast<double>(rank);
    if (negatives > 0) {
      acc.auc += (negatives + 1.0 - static_cast<double>(rank)) / negatives;
    } else {
      acc.auc += 1.0;
    }
    ++acc.count;
  }
  return acc;
}

}  // namespace

double SuccessAtQ(const Matrix& s, const std::vector<int64_t>& ground_truth,
                  int64_t q) {
  int64_t hit = 0, total = 0;
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    int64_t t = ground_truth[v];
    if (t < 0 || t >= s.cols() || static_cast<int64_t>(v) >= s.rows()) {
      continue;
    }
    ++total;
    if (RankInRow(s, static_cast<int64_t>(v), t) <= q) ++hit;
  }
  return total == 0 ? 0.0 : static_cast<double>(hit) / total;
}

double MeanAveragePrecision(const Matrix& s,
                            const std::vector<int64_t>& ground_truth) {
  Accumulated acc = Accumulate(s, ground_truth);
  return acc.count == 0 ? 0.0 : acc.mrr / acc.count;
}

double Auc(const Matrix& s, const std::vector<int64_t>& ground_truth) {
  Accumulated acc = Accumulate(s, ground_truth);
  return acc.count == 0 ? 0.0 : acc.auc / acc.count;
}

AlignmentMetrics ComputeMetrics(const Matrix& s,
                                const std::vector<int64_t>& ground_truth) {
  Accumulated acc = Accumulate(s, ground_truth);
  AlignmentMetrics m;
  m.num_anchors = acc.count;
  if (acc.count == 0) return m;
  const double n = static_cast<double>(acc.count);
  m.success_at_1 = acc.s1 / n;
  m.success_at_5 = acc.s5 / n;
  m.success_at_10 = acc.s10 / n;
  m.map = acc.mrr / n;
  m.auc = acc.auc / n;
  return m;
}

AlignmentMetrics ComputeMetricsTopK(const TopKAlignment& s,
                                    const std::vector<int64_t>& ground_truth) {
  Accumulated acc;
  const double negatives = static_cast<double>(s.cols - 1);
  for (size_t v = 0; v < ground_truth.size(); ++v) {
    int64_t t = ground_truth[v];
    if (t < 0 || t >= s.cols || static_cast<int64_t>(v) >= s.rows_computed) {
      continue;
    }
    int64_t rank = s.RankOf(static_cast<int64_t>(v), t);
    if (rank < 0) rank = s.cols;  // outside top-k: score at the worst rank
    if (rank <= 1) acc.s1 += 1;
    if (rank <= 5) acc.s5 += 1;
    if (rank <= 10) acc.s10 += 1;
    acc.mrr += 1.0 / static_cast<double>(rank);
    if (negatives > 0) {
      acc.auc += (negatives + 1.0 - static_cast<double>(rank)) / negatives;
    } else {
      acc.auc += 1.0;
    }
    ++acc.count;
  }
  AlignmentMetrics m;
  m.num_anchors = acc.count;
  if (acc.count == 0) return m;
  const double n = static_cast<double>(acc.count);
  m.success_at_1 = acc.s1 / n;
  m.success_at_5 = acc.s5 / n;
  m.success_at_10 = acc.s10 / n;
  m.map = acc.mrr / n;
  m.auc = acc.auc / n;
  return m;
}

PrecisionRecall EvaluateThreshold(const Matrix& s,
                                  const std::vector<int64_t>& ground_truth,
                                  double threshold) {
  PrecisionRecall out;
  int64_t true_positive = 0, predicted = 0, actual = 0;
  for (int64_t v = 0; v < s.rows(); ++v) {
    int64_t gt = v < static_cast<int64_t>(ground_truth.size())
                     ? ground_truth[v]
                     : -1;
    if (gt >= 0 && gt < s.cols()) ++actual;
    const double* row = s.row_data(v);
    for (int64_t u = 0; u < s.cols(); ++u) {
      if (row[u] > threshold) {
        ++predicted;
        if (u == gt) ++true_positive;
      }
    }
  }
  out.predicted = predicted;
  out.precision = predicted == 0
                      ? 0.0
                      : static_cast<double>(true_positive) / predicted;
  out.recall =
      actual == 0 ? 0.0 : static_cast<double>(true_positive) / actual;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

PrecisionRecall BestF1(const Matrix& s,
                       const std::vector<int64_t>& ground_truth,
                       int num_thresholds) {
  double lo = s.data()[0], hi = s.data()[0];
  for (int64_t i = 0; i < s.size(); ++i) {
    lo = std::min(lo, s.data()[i]);
    hi = std::max(hi, s.data()[i]);
  }
  PrecisionRecall best;
  for (int t = 0; t < num_thresholds; ++t) {
    double threshold =
        lo + (hi - lo) * (static_cast<double>(t) + 0.5) / num_thresholds;
    PrecisionRecall pr = EvaluateThreshold(s, ground_truth, threshold);
    if (pr.f1 > best.f1) best = pr;
  }
  return best;
}

}  // namespace galign
