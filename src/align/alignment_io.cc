#include "align/alignment_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/durable_io.h"
#include "common/fault.h"
#include "common/parse.h"

namespace galign {

Status SaveAlignmentMatrix(const Matrix& s, const std::string& path) {
  std::ostringstream out;
  out.precision(17);
  out << "# alignment rows=" << s.rows() << " cols=" << s.cols() << "\n";
  for (int64_t r = 0; r < s.rows(); ++r) {
    const double* row = s.row_data(r);
    for (int64_t c = 0; c < s.cols(); ++c) {
      if (c) out << "\t";
      out << row[c];
    }
    out << "\n";
  }
  return AtomicWriteFile(path, out.str());
}

Result<Matrix> LoadAlignmentMatrix(const std::string& path) {
  // Bounded jittered retry over the raw read; parse failures are never
  // retried (a corrupt file stays corrupt).
  auto content =
      RetryTransientResult(RetryPolicy{}, [&]() -> Result<std::string> {
        if (fault::ShouldFailIO("io.alignment.load")) {
          return Status::IOError("injected fault: cannot read alignment " +
                                 path);
        }
        return ReadFileToString(path);
      });
  GALIGN_RETURN_NOT_OK(content.status());
  std::istringstream in(content.ValueOrDie());
  std::string line;
  std::vector<std::vector<double>> rows;
  size_t width = 0;
  int64_t declared_rows = -1, declared_cols = -1;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // SaveAlignmentMatrix writes "# alignment rows=R cols=C"; when the
      // header survives, use it to detect truncated files. Other comment
      // lines pass through untouched.
      if (line.rfind("# alignment", 0) != 0) continue;
      std::istringstream hs(line);
      std::string tok;
      while (hs >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos) continue;
        auto parsed = ParseInt64(tok.substr(eq + 1), tok.substr(0, eq).c_str());
        if (!parsed.ok()) {
          return Status::IOError(path + ":" + std::to_string(lineno) + ": " +
                                 parsed.status().message());
        }
        if (tok.compare(0, eq, "rows") == 0) declared_rows = parsed.ValueOrDie();
        if (tok.compare(0, eq, "cols") == 0) declared_cols = parsed.ValueOrDie();
      }
      continue;
    }
    std::istringstream ls(line);
    std::vector<double> row;
    std::string tok;
    while (ls >> tok) {
      auto v = ParseDouble(tok, "alignment score");
      if (!v.ok()) {
        return Status::IOError(path + ":" + std::to_string(lineno) + ": " +
                               v.status().message());
      }
      if (!std::isfinite(v.ValueOrDie())) {
        return Status::IOError(path + ":" + std::to_string(lineno) +
                               ": non-finite alignment score '" + tok + "'");
      }
      row.push_back(v.ValueOrDie());
    }
    if (rows.empty()) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::IOError(path + ":" + std::to_string(lineno) +
                             ": ragged alignment matrix (expected " +
                             std::to_string(width) + " columns, got " +
                             std::to_string(row.size()) + ")");
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::IOError("empty alignment matrix: " + path);
  if (declared_rows >= 0 &&
      (declared_rows != static_cast<int64_t>(rows.size()) ||
       (declared_cols >= 0 && declared_cols != static_cast<int64_t>(width)))) {
    return Status::IOError(
        path + ": header declares " + std::to_string(declared_rows) + "x" +
        std::to_string(declared_cols) + " but file holds " +
        std::to_string(rows.size()) + "x" + std::to_string(width) +
        " (truncated or corrupt)");
  }
  Matrix m(static_cast<int64_t>(rows.size()), static_cast<int64_t>(width));
  for (size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(),
              m.row_data(static_cast<int64_t>(r)));
  }
  return m;
}

Status SaveAnchors(const Matrix& s, const std::vector<int64_t>& anchors,
                   const std::string& path) {
  std::ostringstream out;
  out.precision(10);
  for (size_t v = 0; v < anchors.size(); ++v) {
    int64_t t = anchors[v];
    if (t == -1) continue;
    out << v << "\t" << t << "\t" << s(static_cast<int64_t>(v), t) << "\n";
  }
  return AtomicWriteFile(path, out.str());
}

Result<std::vector<int64_t>> LoadAnchors(const std::string& path,
                                         int64_t num_source_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<int64_t> anchors(num_source_nodes, -1);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t s, t;
    if (!(ls >> s >> t)) {
      return Status::IOError("malformed anchor line: '" + line + "'");
    }
    if (s < 0 || s >= num_source_nodes) {
      return Status::IOError("anchor source out of range");
    }
    anchors[s] = t;
  }
  return anchors;
}

}  // namespace galign
