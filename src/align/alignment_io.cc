#include "align/alignment_io.h"

#include <fstream>
#include <sstream>

namespace galign {

Status SaveAlignmentMatrix(const Matrix& s, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.precision(17);
  out << "# alignment rows=" << s.rows() << " cols=" << s.cols() << "\n";
  for (int64_t r = 0; r < s.rows(); ++r) {
    const double* row = s.row_data(r);
    for (int64_t c = 0; c < s.cols(); ++c) {
      if (c) out << "\t";
      out << row[c];
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> LoadAlignmentMatrix(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  std::vector<std::vector<double>> rows;
  size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::vector<double> row;
    double v;
    while (ls >> v) row.push_back(v);
    if (rows.empty()) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::IOError("ragged alignment matrix in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::IOError("empty alignment matrix: " + path);
  Matrix m(static_cast<int64_t>(rows.size()), static_cast<int64_t>(width));
  for (size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(),
              m.row_data(static_cast<int64_t>(r)));
  }
  return m;
}

Status SaveAnchors(const Matrix& s, const std::vector<int64_t>& anchors,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.precision(10);
  for (size_t v = 0; v < anchors.size(); ++v) {
    int64_t t = anchors[v];
    if (t == -1) continue;
    out << v << "\t" << t << "\t" << s(static_cast<int64_t>(v), t) << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<int64_t>> LoadAnchors(const std::string& path,
                                         int64_t num_source_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<int64_t> anchors(num_source_nodes, -1);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t s, t;
    if (!(ls >> s >> t)) {
      return Status::IOError("malformed anchor line: '" + line + "'");
    }
    if (s < 0 || s >= num_source_nodes) {
      return Status::IOError("anchor source out of range");
    }
    anchors[s] = t;
  }
  return anchors;
}

}  // namespace galign
