// The network-alignment problem surface (paper §II-B): aligners consume a
// source/target pair of attributed graphs and produce an alignment matrix
// S in R^{n1 x n2} whose (v, v') entry is the matching degree.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/ann/ann_index.h"
#include "graph/graph.h"
#include "graph/noise.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {

/// \brief Optional supervision available to an aligner.
///
/// GAlign is fully unsupervised and ignores this. FINAL/IsoRank consume a
/// prior alignment matrix derived from the seeds; PALE/CENALP consume the
/// seed anchor links directly (paper §VII-A gives baselines 10% of the
/// ground truth to respect their original settings).
struct Supervision {
  /// (source node, target node) seed anchor links. Empty = unsupervised.
  std::vector<std::pair<int64_t, int64_t>> seeds;
};

/// \brief Interface implemented by every alignment technique in the repo.
class Aligner {
 public:
  virtual ~Aligner() = default;

  /// Human-readable method name ("GAlign", "FINAL", ...).
  virtual std::string name() const = 0;

  /// Computes the alignment matrix S (n_source x n_target). Implementations
  /// must return finite entries; higher = better match.
  ///
  /// Unbounded convenience entry point; forwards to the RunContext overload.
  /// Non-virtual on purpose: deadline behaviour belongs to one override,
  /// and a default argument on a virtual would be statically bound.
  [[nodiscard]] Result<Matrix> Align(const AttributedGraph& source,
                       const AttributedGraph& target,
                       const Supervision& supervision) {
    return Align(source, target, supervision, RunContext());
  }

  /// Deadline/cancellation-aware variant (DESIGN.md §8): implementations
  /// poll ctx.ShouldStop() at iteration granularity and degrade to their
  /// best-so-far alignment instead of running unbounded. A context that is
  /// already expired yields the cheapest meaningful result the method can
  /// produce (e.g. its prior or initial iterate) — still a valid matrix,
  /// never an error.
  ///
  /// Note for implementers: also add `using Aligner::Align;` so the
  /// three-argument convenience form stays visible on the derived type.
  [[nodiscard]] virtual Result<Matrix> Align(const AttributedGraph& source,
                               const AttributedGraph& target,
                               const Supervision& supervision,
                               const RunContext& ctx) = 0;

  /// \brief Estimated peak heap bytes Align() needs for an
  /// (n_source x n_target) problem with `dims`-dimensional attributes
  /// (DESIGN.md §9).
  ///
  /// Used as the pre-flight admission check against ctx.budget(): a run
  /// whose estimate does not fit is rejected with ResourceExhausted before
  /// any large allocation, so callers can degrade to AlignTopK instead of
  /// dying on bad_alloc mid-run. Estimates are deliberately coarse
  /// (order-of-magnitude upper bounds on the simultaneously-live dense
  /// matrices); the default covers methods whose footprint is a few
  /// n_source x n_target similarity matrices plus the inputs.
  virtual uint64_t EstimatePeakBytes(int64_t n_source, int64_t n_target,
                                     int64_t dims) const;

  /// \brief Budget-degraded entry point: computes only the top-k target
  /// columns per source row (DESIGN.md §9).
  ///
  /// The base implementation runs the dense Align() and compresses — no
  /// memory savings, but a uniform interface. Methods with a genuinely
  /// row-blocked kernel (GAlign, REGAL) override it so the transient
  /// working set stays within ctx.budget() and the O(n1 * n2) matrix is
  /// never materialized.
  [[nodiscard]] virtual Result<TopKAlignment> AlignTopK(const AttributedGraph& source,
                                          const AttributedGraph& target,
                                          const Supervision& supervision,
                                          const RunContext& ctx,
                                          int64_t k);

  /// \brief Candidate-retrieval policy consulted by AlignTopK overrides
  /// with an ANN route (GAlign, REGAL, DegreeRank, AttributeOnly —
  /// DESIGN.md §11).
  ///
  /// Defaults to AnnMode::kAuto: small problems keep the exact chunked
  /// scan, problems past policy.min_rows route through the index. Methods
  /// without an ANN route ignore it.
  void set_ann_policy(const AnnPolicy& policy) { ann_policy_ = policy; }
  const AnnPolicy& ann_policy() const { return ann_policy_; }

 protected:
  AnnPolicy ann_policy_;
};

/// \brief Pre-flight admission for one aligner run (DESIGN.md §9).
///
/// Reserves aligner.EstimatePeakBytes(...) against ctx.budget() into
/// *scope for the duration of the run. A no-op success when the context
/// carries no finite budget; ResourceExhausted (with the estimate and the
/// remaining headroom in the message) when the run cannot fit. Every
/// Aligner::Align implementation calls this first.
[[nodiscard]] Status ReserveAlignerBudget(const Aligner& aligner,
                            const AttributedGraph& source,
                            const AttributedGraph& target,
                            const RunContext& ctx, MemoryScope* scope);

/// Greedy anchor extraction: for each source node, the argmax target
/// (paper §VI-A one-to-one instantiation by ranking).
std::vector<int64_t> Top1Anchors(const Matrix& s);

/// One-to-one greedy matching: repeatedly takes the globally largest entry
/// whose row and column are both unused. Useful for strict 1-1 settings.
std::vector<int64_t> GreedyOneToOneAnchors(const Matrix& s);

/// One-to-many instantiation (paper §VI-A mentions this setting): for each
/// source node, the top-k candidate targets in descending score order.
std::vector<std::vector<int64_t>> TopKAnchors(const Matrix& s, int64_t k);

/// Soft one-to-many instantiation: all target nodes whose score exceeds
/// `threshold`, per source node, descending. Rows may be empty.
std::vector<std::vector<int64_t>> AnchorsAboveThreshold(const Matrix& s,
                                                        double threshold);

/// Draws `fraction` of the true anchors as supervision seeds.
Supervision SampleSeeds(const std::vector<int64_t>& ground_truth,
                        double fraction, Rng* rng);

/// Builds a prior alignment matrix H (n1 x n2) from seeds: 1 at seed pairs,
/// uniform 1/n2 elsewhere, rows normalized (used by FINAL/IsoRank).
Matrix PriorFromSeeds(int64_t n1, int64_t n2, const Supervision& supervision);

/// Row-normalized attribute-similarity prior: N(v, v') = cosine between
/// attribute rows, clamped at 0 (used when no seeds are supplied).
Matrix AttributePrior(const AttributedGraph& source,
                      const AttributedGraph& target);

}  // namespace galign
