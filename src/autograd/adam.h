// Adam optimizer (Kingma & Ba, 2015) — the paper trains GAlign with Adam
// (§VII-A "Reproducibility environment").
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace galign {

/// \brief Adam with bias correction.
///
/// Holds first/second moment state per parameter slot. The parameter list
/// must be registered once via Register(); subsequent Step() calls must pass
/// matching shapes in the same order.
class AdamOptimizer {
 public:
  struct Options {
    double lr = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  AdamOptimizer() = default;
  explicit AdamOptimizer(Options opts) : opts_(opts) {}

  /// Registers parameter shapes (resets all moment state).
  void Register(const std::vector<Matrix*>& params);

  /// Applies one Adam update: params[i] -= update(grads[i]).
  void Step(const std::vector<Matrix*>& params,
            const std::vector<const Matrix*>& grads);

  /// Clears moment state and the step counter while keeping the registered
  /// shapes. Used by divergence recovery: after rolling parameters back to a
  /// snapshot, stale moments (possibly contaminated by a non-finite
  /// gradient) must not steer the restart.
  void Reset();

  int64_t step_count() const { return step_; }
  const Options& options() const { return opts_; }
  void set_lr(double lr) { opts_.lr = lr; }

  /// Moment buffers, exposed for checkpointing (core/checkpoint.cc). Order
  /// matches the Register() parameter list.
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }

  /// Restores the full optimizer state captured by a checkpoint. Shapes must
  /// match the registered parameters; the caller (checkpoint restore)
  /// validates them against the model before handing them over.
  void RestoreState(int64_t step, std::vector<Matrix> m, std::vector<Matrix> v);

 private:
  Options opts_ = {};
  int64_t step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// \brief Numerical health of one backward pass.
struct GradientHealth {
  double norm = 0.0;   ///< global (all-parameter) L2 norm of the gradients
  bool finite = true;  ///< false if any gradient entry is NaN/Inf
};

/// Probes the gradients of one step: global norm + finiteness, in one pass.
/// The trainer consults this before handing gradients to Adam so a NaN or
/// an exploding step never reaches the moment buffers.
GradientHealth ProbeGradients(const std::vector<const Matrix*>& grads);

}  // namespace galign
