// Adam optimizer (Kingma & Ba, 2015) — the paper trains GAlign with Adam
// (§VII-A "Reproducibility environment").
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace galign {

/// \brief Adam with bias correction.
///
/// Holds first/second moment state per parameter slot. The parameter list
/// must be registered once via Register(); subsequent Step() calls must pass
/// matching shapes in the same order.
class AdamOptimizer {
 public:
  struct Options {
    double lr = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  AdamOptimizer() = default;
  explicit AdamOptimizer(Options opts) : opts_(opts) {}

  /// Registers parameter shapes (resets all moment state).
  void Register(const std::vector<Matrix*>& params);

  /// Applies one Adam update: params[i] -= update(grads[i]).
  void Step(const std::vector<Matrix*>& params,
            const std::vector<const Matrix*>& grads);

  int64_t step_count() const { return step_; }
  const Options& options() const { return opts_; }
  void set_lr(double lr) { opts_.lr = lr; }

 private:
  Options opts_ = {};
  int64_t step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace galign
