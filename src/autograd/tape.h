// Tape-based reverse-mode automatic differentiation over dense matrices.
//
// The design is deliberately per-step: a Tape is built fresh for every
// training iteration (parameters are external Matrix objects inserted as
// leaves), forward ops append nodes, Backward() runs the recorded closures in
// reverse order. This keeps the engine small and makes graph lifetime
// trivially correct.
//
// GCN-specific losses (consistency Eq. 7, adaptivity Eq. 9) are implemented
// as fused ops in autograd/ops.h with closed-form gradients so that no n x n
// intermediate is ever materialized (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "la/matrix.h"

namespace galign {

/// Opaque handle to a node on a Tape.
struct Var {
  int32_t id = -1;
  bool valid() const { return id >= 0; }
};

/// \brief Records a forward computation and differentiates it in reverse.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Inserts a leaf. If requires_grad, Backward() will accumulate into its
  /// gradient (readable via grad()).
  Var Leaf(Matrix value, bool requires_grad = false);

  /// Inserts an interior node produced by an op. `backward` is invoked once
  /// during Backward() and must scatter this node's grad into its parents'
  /// grads. Pass requires_grad = false for nodes known to be constant.
  Var Emit(Matrix value, std::vector<Var> parents,
           std::function<void(Tape*, Var)> backward, bool requires_grad);

  const Matrix& value(Var v) const { return nodes_[v.id].value; }
  Matrix& mutable_value(Var v) { return nodes_[v.id].value; }

  /// Gradient of the last Backward() root with respect to v. Zero matrix if
  /// the node did not participate.
  const Matrix& grad(Var v) const { return nodes_[v.id].grad; }

  bool requires_grad(Var v) const { return nodes_[v.id].requires_grad; }

  /// Adds `delta` into v's gradient accumulator (used by op backward fns).
  void AccumulateGrad(Var v, const Matrix& delta);
  /// Adds alpha * delta into v's gradient accumulator.
  void AccumulateGrad(Var v, double alpha, const Matrix& delta);

  /// Returns v's gradient accumulator, allocating a zero matrix of v's
  /// shape on first use. Lets backward fns accumulate straight into the
  /// buffer via the kernels' `*Into(..., accumulate=true)` forms instead of
  /// materializing a temporary and Axpy-ing it in. v must require grad.
  Matrix* EnsureGrad(Var v);

  /// Runs reverse-mode accumulation from `root`, which must hold a 1x1
  /// value. Gradients of all requires_grad nodes are populated.
  void Backward(Var root);

  /// Number of nodes currently on the tape.
  int64_t size() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // lazily sized
    bool requires_grad = false;
    std::vector<Var> parents;
    std::function<void(Tape*, Var)> backward;
  };

  std::vector<Node> nodes_;
};

}  // namespace galign
