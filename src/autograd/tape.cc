#include "autograd/tape.h"

#include "common/logging.h"

namespace galign {

Var Tape::Leaf(Matrix value, bool requires_grad) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  nodes_.push_back(std::move(n));
  return Var{static_cast<int32_t>(nodes_.size() - 1)};
}

Var Tape::Emit(Matrix value, std::vector<Var> parents,
               std::function<void(Tape*, Var)> backward, bool requires_grad) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.parents = std::move(parents);
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{static_cast<int32_t>(nodes_.size() - 1)};
}

void Tape::AccumulateGrad(Var v, const Matrix& delta) {
  AccumulateGrad(v, 1.0, delta);
}

void Tape::AccumulateGrad(Var v, double alpha, const Matrix& delta) {
  Node& n = nodes_[v.id];
  if (!n.requires_grad) return;
  if (n.grad.empty()) {
    n.grad = Matrix(n.value.rows(), n.value.cols());
  }
  n.grad.Axpy(alpha, delta);
}

Matrix* Tape::EnsureGrad(Var v) {
  Node& n = nodes_[v.id];
  GALIGN_DCHECK(n.requires_grad);
  if (n.grad.empty()) {
    n.grad = Matrix(n.value.rows(), n.value.cols());
  }
  return &n.grad;
}

void Tape::Backward(Var root) {
  GALIGN_DCHECK(root.valid() && root.id < size());
  Node& r = nodes_[root.id];
  GALIGN_DCHECK(r.value.rows() == 1 && r.value.cols() == 1);
  // Reset gradients.
  for (Node& n : nodes_) {
    if (!n.grad.empty()) n.grad.Fill(0.0);
  }
  if (r.grad.empty()) r.grad = Matrix(1, 1);
  r.grad(0, 0) = 1.0;
  for (int32_t i = root.id; i >= 0; --i) {
    Node& n = nodes_[i];
    if (!n.backward) continue;
    if (n.grad.empty() || n.grad.MaxAbs() == 0.0) continue;
    n.backward(this, Var{i});
  }
  // Guarantee every requires_grad node exposes a correctly shaped gradient,
  // even when no path from the root touched it (e.g. an exactly-zero loss):
  // optimizers consume these by shape.
  for (Node& n : nodes_) {
    if (n.requires_grad && n.grad.empty()) {
      n.grad = Matrix(n.value.rows(), n.value.cols());
    }
  }
}

}  // namespace galign
