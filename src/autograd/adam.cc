#include "autograd/adam.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace galign {

void AdamOptimizer::Register(const std::vector<Matrix*>& params) {
  m_.clear();
  v_.clear();
  step_ = 0;
  for (const Matrix* p : params) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void AdamOptimizer::Reset() {
  step_ = 0;
  for (Matrix& m : m_) m.Fill(0.0);
  for (Matrix& v : v_) v.Fill(0.0);
}

void AdamOptimizer::RestoreState(int64_t step, std::vector<Matrix> m,
                                 std::vector<Matrix> v) {
  GALIGN_DCHECK(m.size() == m_.size());
  GALIGN_DCHECK(v.size() == v_.size());
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
}

void AdamOptimizer::Step(const std::vector<Matrix*>& params,
                         const std::vector<const Matrix*>& grads) {
  GALIGN_DCHECK(params.size() == grads.size());
  GALIGN_DCHECK(params.size() == m_.size());
  ++step_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(step_));
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix& p = *params[i];
    const Matrix& g = *grads[i];
    GALIGN_DCHECK(p.SameShape(g));
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int64_t j = 0; j < p.size(); ++j) {
      double grad = g.data()[j] + opts_.weight_decay * p.data()[j];
      m.data()[j] = opts_.beta1 * m.data()[j] + (1.0 - opts_.beta1) * grad;
      v.data()[j] =
          opts_.beta2 * v.data()[j] + (1.0 - opts_.beta2) * grad * grad;
      double mhat = m.data()[j] / bc1;
      double vhat = v.data()[j] / bc2;
      p.data()[j] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

GradientHealth ProbeGradients(const std::vector<const Matrix*>& grads) {
  GradientHealth h;
  double sum = 0.0;
  for (const Matrix* g : grads) {
    for (int64_t j = 0; j < g->size(); ++j) {
      const double x = g->data()[j];
      sum += x * x;
    }
  }
  // A NaN/Inf anywhere poisons the sum, so one check covers all entries.
  h.finite = std::isfinite(sum);
  h.norm = h.finite ? std::sqrt(sum) : sum;
  return h;
}

}  // namespace galign
