// Differentiable ops over Tape. Generic building blocks (matmul, tanh,
// sigmoid, bias add, weighted sums) plus fused GAlign losses:
//
//  - ConsistencyLoss computes ||C - H H^T||_F (paper Eq. 7) and its gradient
//    without forming the n x n Gram matrix, using
//      ||C - H H^T||^2 = ||C||^2 - 2 sum_{(i,j) in C} C_ij <H_i, H_j>
//                        + ||H^T H||^2
//    and d/dH ||C - H H^T||^2 = -2 (C + C^T) H + 4 H (H^T H),
//    i.e. O(e d + n d^2) time instead of O(n^2 d).
//
//  - AdaptivityLoss computes sum_v sigma_<(||H(v) - H*(v*)||) (paper Eq. 9),
//    where sigma_< zeroes rows whose distance exceeds the perturbation
//    threshold, with the row-wise closed-form gradient.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/tape.h"
#include "la/sparse.h"

namespace galign {
namespace ag {

/// c = a * b.
Var MatMul(Tape* t, Var a, Var b);

/// y = sparse * x. `sparse` must outlive the tape's Backward() call.
Var SpMM(Tape* t, const SparseMatrix* sparse, Var x);

/// Element-wise tanh.
Var Tanh(Tape* t, Var x);

/// Element-wise logistic sigmoid.
Var Sigmoid(Tape* t, Var x);

/// Element-wise ReLU (kept for the paper's activation ablation; §IV-A argues
/// tanh is required because ReLU is not sign-preserving).
Var Relu(Tape* t, Var x);

/// Row-wise L2 normalization: y_i = x_i / max(||x_i||, eps). GAlign
/// normalizes every layer's embeddings so layer-wise alignment scores are
/// cosines and the stability threshold lambda is scale-free.
Var NormalizeRows(Tape* t, Var x, double eps = 1e-12);

/// c = a + b (same shape).
Var Add(Tape* t, Var a, Var b);

/// c = a - b (same shape).
Var Sub(Tape* t, Var a, Var b);

/// c = alpha * a.
Var Scale(Tape* t, Var a, double alpha);

/// y = x + broadcast(bias) where bias is 1 x cols.
Var AddBias(Tape* t, Var x, Var bias);

/// Scalar: sum of weighted 1x1 vars. Empty input yields 0.
Var WeightedSum(Tape* t, const std::vector<std::pair<Var, double>>& terms);

/// Scalar: ||a||_F.
Var FrobeniusNorm(Tape* t, Var a);

/// Scalar: mean_ij (pred_ij - target_ij)^2. target is a constant.
Var MSELoss(Tape* t, Var pred, const Matrix& target);

/// Scalar: the fused consistency loss ||C - H H^T||_F (Eq. 7).
/// C must be symmetric-ish (both C and C^T are used) and outlive Backward().
Var ConsistencyLoss(Tape* t, const SparseMatrix* c, Var h);

/// Scalar: the fused adaptivity loss (Eq. 9):
///   sum_v  sigma_<( || a(v) - b(correspondence[v]) || )
/// where sigma_<(x) = x if x < threshold else 0.
Var AdaptivityLoss(Tape* t, Var a, Var b,
                   const std::vector<int64_t>& correspondence,
                   double threshold);

/// Scalar: sum over (v, u) in `pairs` of ||a(v) - b(u)|| — the cross-network
/// anchor loss of the semi-supervised GAlign extension.
Var AnchorLoss(Tape* t, Var a, Var b,
               const std::vector<std::pair<int64_t, int64_t>>& pairs);

}  // namespace ag
}  // namespace galign
