#include "autograd/ops.h"

#include <cmath>

#include "common/logging.h"
#include "la/ops.h"

namespace galign {
namespace ag {

namespace {
bool AnyRequiresGrad(const Tape& t, std::initializer_list<Var> vars) {
  for (Var v : vars) {
    if (t.requires_grad(v)) return true;
  }
  return false;
}
}  // namespace

Var MatMul(Tape* t, Var a, Var b) {
  Matrix y = galign::MatMul(t->value(a), t->value(b));
  bool rg = AnyRequiresGrad(*t, {a, b});
  return t->Emit(
      std::move(y), {a, b},
      [a, b](Tape* tp, Var self) {
        const Matrix& g = tp->grad(self);
        if (tp->requires_grad(a)) {
          MatMulTransposedBInto(g, tp->value(b), tp->EnsureGrad(a),
                                /*accumulate=*/true);
        }
        if (tp->requires_grad(b)) {
          MatMulTransposedAInto(tp->value(a), g, tp->EnsureGrad(b),
                                /*accumulate=*/true);
        }
      },
      rg);
}

Var SpMM(Tape* t, const SparseMatrix* sparse, Var x) {
  GALIGN_DCHECK(sparse != nullptr);
  Matrix y = sparse->Multiply(t->value(x));
  bool rg = t->requires_grad(x);
  return t->Emit(
      std::move(y), {x},
      [sparse, x](Tape* tp, Var self) {
        if (tp->requires_grad(x)) {
          sparse->TransposedMultiplyInto(tp->grad(self), tp->EnsureGrad(x),
                                         /*accumulate=*/true);
        }
      },
      rg);
}

Var Tanh(Tape* t, Var x) {
  Matrix y = galign::Tanh(t->value(x));
  bool rg = t->requires_grad(x);
  return t->Emit(
      std::move(y), {x},
      [x](Tape* tp, Var self) {
        if (!tp->requires_grad(x)) return;
        const Matrix& y = tp->value(self);
        const Matrix& g = tp->grad(self);
        double* gx = tp->EnsureGrad(x)->data();
        for (int64_t i = 0; i < y.size(); ++i) {
          gx[i] += g.data()[i] * (1.0 - y.data()[i] * y.data()[i]);
        }
      },
      rg);
}

Var Sigmoid(Tape* t, Var x) {
  Matrix y = Map(t->value(x),
                 [](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  bool rg = t->requires_grad(x);
  return t->Emit(
      std::move(y), {x},
      [x](Tape* tp, Var self) {
        if (!tp->requires_grad(x)) return;
        const Matrix& y = tp->value(self);
        const Matrix& g = tp->grad(self);
        double* gx = tp->EnsureGrad(x)->data();
        for (int64_t i = 0; i < y.size(); ++i) {
          gx[i] += g.data()[i] * y.data()[i] * (1.0 - y.data()[i]);
        }
      },
      rg);
}

Var Relu(Tape* t, Var x) {
  Matrix y = Map(t->value(x), [](double v) { return v > 0.0 ? v : 0.0; });
  bool rg = t->requires_grad(x);
  return t->Emit(
      std::move(y), {x},
      [x](Tape* tp, Var self) {
        if (!tp->requires_grad(x)) return;
        const Matrix& xv = tp->value(x);
        const Matrix& g = tp->grad(self);
        double* gx = tp->EnsureGrad(x)->data();
        for (int64_t i = 0; i < xv.size(); ++i) {
          if (xv.data()[i] > 0.0) gx[i] += g.data()[i];
        }
      },
      rg);
}

Var NormalizeRows(Tape* t, Var x, double eps) {
  const Matrix& xv = t->value(x);
  Matrix y = xv;
  std::vector<double> inv_norm(xv.rows());
  for (int64_t r = 0; r < xv.rows(); ++r) {
    double n = xv.RowNorm(r);
    inv_norm[r] = 1.0 / std::max(n, eps);
    double* row = y.row_data(r);
    for (int64_t c = 0; c < xv.cols(); ++c) row[c] *= inv_norm[r];
  }
  bool rg = t->requires_grad(x);
  return t->Emit(
      std::move(y), {x},
      [x, inv_norm = std::move(inv_norm)](Tape* tp, Var self) {
        if (!tp->requires_grad(x)) return;
        const Matrix& y = tp->value(self);
        const Matrix& g = tp->grad(self);
        Matrix dx(y.rows(), y.cols());
        for (int64_t r = 0; r < y.rows(); ++r) {
          const double* yr = y.row_data(r);
          const double* gr = g.row_data(r);
          double* dr = dx.row_data(r);
          double dot = 0.0;
          for (int64_t c = 0; c < y.cols(); ++c) dot += yr[c] * gr[c];
          for (int64_t c = 0; c < y.cols(); ++c) {
            dr[c] = inv_norm[r] * (gr[c] - yr[c] * dot);
          }
        }
        tp->AccumulateGrad(x, dx);
      },
      rg);
}

Var Add(Tape* t, Var a, Var b) {
  Matrix y = galign::Add(t->value(a), t->value(b));
  bool rg = AnyRequiresGrad(*t, {a, b});
  return t->Emit(
      std::move(y), {a, b},
      [a, b](Tape* tp, Var self) {
        tp->AccumulateGrad(a, tp->grad(self));
        tp->AccumulateGrad(b, tp->grad(self));
      },
      rg);
}

Var Sub(Tape* t, Var a, Var b) {
  Matrix y = galign::Sub(t->value(a), t->value(b));
  bool rg = AnyRequiresGrad(*t, {a, b});
  return t->Emit(
      std::move(y), {a, b},
      [a, b](Tape* tp, Var self) {
        tp->AccumulateGrad(a, tp->grad(self));
        tp->AccumulateGrad(b, -1.0, tp->grad(self));
      },
      rg);
}

Var Scale(Tape* t, Var a, double alpha) {
  Matrix y = galign::Scale(t->value(a), alpha);
  bool rg = t->requires_grad(a);
  return t->Emit(
      std::move(y), {a},
      [a, alpha](Tape* tp, Var self) {
        tp->AccumulateGrad(a, alpha, tp->grad(self));
      },
      rg);
}

Var AddBias(Tape* t, Var x, Var bias) {
  const Matrix& xv = t->value(x);
  const Matrix& bv = t->value(bias);
  GALIGN_DCHECK(bv.rows() == 1 && bv.cols() == xv.cols());
  Matrix y = xv;
  for (int64_t r = 0; r < y.rows(); ++r) {
    double* row = y.row_data(r);
    for (int64_t c = 0; c < y.cols(); ++c) row[c] += bv(0, c);
  }
  bool rg = AnyRequiresGrad(*t, {x, bias});
  return t->Emit(
      std::move(y), {x, bias},
      [x, bias](Tape* tp, Var self) {
        const Matrix& g = tp->grad(self);
        tp->AccumulateGrad(x, g);
        if (tp->requires_grad(bias)) {
          Matrix gb(1, g.cols());
          for (int64_t r = 0; r < g.rows(); ++r) {
            const double* row = g.row_data(r);
            for (int64_t c = 0; c < g.cols(); ++c) gb(0, c) += row[c];
          }
          tp->AccumulateGrad(bias, gb);
        }
      },
      rg);
}

Var WeightedSum(Tape* t, const std::vector<std::pair<Var, double>>& terms) {
  double total = 0.0;
  bool rg = false;
  std::vector<Var> parents;
  for (const auto& [v, w] : terms) {
    GALIGN_DCHECK(t->value(v).rows() == 1 && t->value(v).cols() == 1);
    total += w * t->value(v)(0, 0);
    rg = rg || t->requires_grad(v);
    parents.push_back(v);
  }
  Matrix y(1, 1, total);
  auto weights = terms;
  return t->Emit(
      std::move(y), std::move(parents),
      [weights](Tape* tp, Var self) {
        const double g = tp->grad(self)(0, 0);
        for (const auto& [v, w] : weights) {
          Matrix d(1, 1, g * w);
          tp->AccumulateGrad(v, d);
        }
      },
      rg);
}

Var FrobeniusNorm(Tape* t, Var a) {
  double norm = t->value(a).FrobeniusNorm();
  Matrix y(1, 1, norm);
  bool rg = t->requires_grad(a);
  return t->Emit(
      std::move(y), {a},
      [a](Tape* tp, Var self) {
        if (!tp->requires_grad(a)) return;
        const double g = tp->grad(self)(0, 0);
        const double norm = tp->value(self)(0, 0);
        if (norm < 1e-12) return;
        tp->AccumulateGrad(a, g / norm, tp->value(a));
      },
      rg);
}

Var MSELoss(Tape* t, Var pred, const Matrix& target) {
  const Matrix& p = t->value(pred);
  GALIGN_DCHECK(p.SameShape(target));
  double sum = 0.0;
  for (int64_t i = 0; i < p.size(); ++i) {
    double d = p.data()[i] - target.data()[i];
    sum += d * d;
  }
  const double inv_n = 1.0 / static_cast<double>(p.size());
  Matrix y(1, 1, sum * inv_n);
  bool rg = t->requires_grad(pred);
  Matrix target_copy = target;
  return t->Emit(
      std::move(y), {pred},
      [pred, target_copy = std::move(target_copy), inv_n](Tape* tp,
                                                          Var self) {
        if (!tp->requires_grad(pred)) return;
        const double g = tp->grad(self)(0, 0);
        const Matrix& p = tp->value(pred);
        Matrix d(p.rows(), p.cols());
        for (int64_t i = 0; i < p.size(); ++i) {
          d.data()[i] =
              2.0 * inv_n * g * (p.data()[i] - target_copy.data()[i]);
        }
        tp->AccumulateGrad(pred, d);
      },
      rg);
}

Var ConsistencyLoss(Tape* t, const SparseMatrix* c, Var h) {
  GALIGN_DCHECK(c != nullptr);
  const Matrix& hv = t->value(h);
  GALIGN_DCHECK(c->rows() == hv.rows() && c->cols() == hv.rows());

  // ||C||^2 over stored entries.
  double c_sq = 0.0;
  for (double v : c->values()) c_sq += v * v;

  // -2 sum_{(i,j) in C} C_ij <H_i, H_j>.
  double cross = 0.0;
  const auto& rp = c->row_ptr();
  const auto& ci = c->col_idx();
  const auto& cv = c->values();
  const int64_t d = hv.cols();
  for (int64_t r = 0; r < c->rows(); ++r) {
    const double* hr = hv.row_data(r);
    for (int64_t i = rp[r]; i < rp[r + 1]; ++i) {
      const double* hj = hv.row_data(ci[i]);
      double dot = 0.0;
      for (int64_t k = 0; k < d; ++k) dot += hr[k] * hj[k];
      cross += cv[i] * dot;
    }
  }

  // ||H^T H||^2 (d x d Gram).
  Matrix gram = MatMulTransposedA(hv, hv);
  double gram_sq = gram.SquaredNorm();

  double sq = c_sq - 2.0 * cross + gram_sq;
  if (sq < 0.0) sq = 0.0;  // numerical guard
  double norm = std::sqrt(sq);
  Matrix y(1, 1, norm);
  bool rg = t->requires_grad(h);
  return t->Emit(
      std::move(y), {h},
      [c, h, gram = std::move(gram)](Tape* tp, Var self) {
        if (!tp->requires_grad(h)) return;
        const double norm = tp->value(self)(0, 0);
        if (norm < 1e-12) return;
        const double g = tp->grad(self)(0, 0);
        const Matrix& hv = tp->value(h);
        // d||C - HH^T||^2 / dH = -2 (C + C^T) H + 4 H (H^T H)
        Matrix grad = c->Multiply(hv);
        c->TransposedMultiplyInto(hv, &grad, /*accumulate=*/true);
        grad.Scale(-2.0);
        grad.Axpy(4.0, galign::MatMul(hv, gram));
        // Chain rule for the sqrt: factor g / (2 norm).
        grad.Scale(g / (2.0 * norm));
        tp->AccumulateGrad(h, grad);
      },
      rg);
}

Var AdaptivityLoss(Tape* t, Var a, Var b,
                   const std::vector<int64_t>& correspondence,
                   double threshold) {
  const Matrix& av = t->value(a);
  const Matrix& bv = t->value(b);
  GALIGN_DCHECK(av.cols() == bv.cols());
  GALIGN_DCHECK(static_cast<int64_t>(correspondence.size()) == av.rows());

  double total = 0.0;
  std::vector<double> dist(av.rows());
  for (int64_t v = 0; v < av.rows(); ++v) {
    double d2 = RowSquaredDistance(av, v, bv, correspondence[v]);
    dist[v] = std::sqrt(d2);
    if (dist[v] < threshold) total += dist[v];
  }
  Matrix y(1, 1, total);
  bool rg = AnyRequiresGrad(*t, {a, b});
  auto corr = correspondence;
  return t->Emit(
      std::move(y), {a, b},
      [a, b, corr = std::move(corr), dist = std::move(dist),
       threshold](Tape* tp, Var self) {
        const double g = tp->grad(self)(0, 0);
        const Matrix& av = tp->value(a);
        const Matrix& bv = tp->value(b);
        Matrix ga(av.rows(), av.cols());
        Matrix gb(bv.rows(), bv.cols());
        for (int64_t v = 0; v < av.rows(); ++v) {
          if (dist[v] >= threshold || dist[v] < 1e-12) continue;
          const int64_t u = corr[v];
          const double scale = g / dist[v];
          const double* pa = av.row_data(v);
          const double* pb = bv.row_data(u);
          double* qa = ga.row_data(v);
          double* qb = gb.row_data(u);
          for (int64_t k = 0; k < av.cols(); ++k) {
            double diff = scale * (pa[k] - pb[k]);
            qa[k] += diff;
            qb[k] -= diff;
          }
        }
        tp->AccumulateGrad(a, ga);
        tp->AccumulateGrad(b, gb);
      },
      rg);
}

Var AnchorLoss(Tape* t, Var a, Var b,
               const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  const Matrix& av = t->value(a);
  const Matrix& bv = t->value(b);
  GALIGN_DCHECK(av.cols() == bv.cols());
  double total = 0.0;
  std::vector<double> dist(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto [v, u] = pairs[i];
    dist[i] = std::sqrt(RowSquaredDistance(av, v, bv, u));
    total += dist[i];
  }
  Matrix y(1, 1, total);
  bool rg = AnyRequiresGrad(*t, {a, b});
  auto pairs_copy = pairs;
  return t->Emit(
      std::move(y), {a, b},
      [a, b, pairs = std::move(pairs_copy),
       dist = std::move(dist)](Tape* tp, Var self) {
        const double g = tp->grad(self)(0, 0);
        const Matrix& av = tp->value(a);
        const Matrix& bv = tp->value(b);
        Matrix ga(av.rows(), av.cols());
        Matrix gb(bv.rows(), bv.cols());
        for (size_t i = 0; i < pairs.size(); ++i) {
          if (dist[i] < 1e-12) continue;
          auto [v, u] = pairs[i];
          const double scale = g / dist[i];
          const double* pa = av.row_data(v);
          const double* pb = bv.row_data(u);
          double* qa = ga.row_data(v);
          double* qb = gb.row_data(u);
          for (int64_t k = 0; k < av.cols(); ++k) {
            double diff = scale * (pa[k] - pb[k]);
            qa[k] += diff;
            qb[k] -= diff;
          }
        }
        tp->AccumulateGrad(a, ga);
        tp->AccumulateGrad(b, gb);
      },
      rg);
}

}  // namespace ag
}  // namespace galign
