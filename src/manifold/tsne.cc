#include "manifold/tsne.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace galign {

namespace {

// Binary-searches the Gaussian bandwidth of row i so the conditional
// distribution hits the target perplexity; fills p_row.
void FitRowPerplexity(const Matrix& sq_dist, int64_t i, double perplexity,
                      std::vector<double>* p_row) {
  const int64_t n = sq_dist.rows();
  double lo = 1e-20, hi = 1e20, beta = 1.0;
  const double target_entropy = std::log(perplexity);
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0, weighted = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      double p = j == i ? 0.0 : std::exp(-beta * sq_dist(i, j));
      (*p_row)[j] = p;
      sum += p;
      weighted += p * sq_dist(i, j);
    }
    if (sum <= 0.0) {
      beta /= 2.0;
      hi = beta * 2.0;
      continue;
    }
    // Shannon entropy of the conditional distribution.
    double entropy = std::log(sum) + beta * weighted / sum;
    if (std::fabs(entropy - target_entropy) < 1e-5) break;
    if (entropy > target_entropy) {
      lo = beta;
      beta = hi > 1e19 ? beta * 2.0 : (beta + hi) / 2.0;
    } else {
      hi = beta;
      beta = (beta + lo) / 2.0;
    }
  }
  double sum = 0.0;
  for (int64_t j = 0; j < n; ++j) sum += (*p_row)[j];
  if (sum > 0.0) {
    for (int64_t j = 0; j < n; ++j) (*p_row)[j] /= sum;
  }
}

}  // namespace

Result<Matrix> Tsne(const Matrix& x, const TsneConfig& cfg) {
  const int64_t n = x.rows();
  if (n < 2) return Status::InvalidArgument("t-SNE needs at least 2 rows");
  if (cfg.perplexity >= static_cast<double>(n)) {
    return Status::InvalidArgument("perplexity must be < number of rows");
  }

  // Pairwise squared distances in the input space.
  Matrix sq_dist(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double d = RowSquaredDistance(x, i, x, j);
      sq_dist(i, j) = d;
      sq_dist(j, i) = d;
    }
  }

  // Symmetrized joint probabilities P.
  Matrix p(n, n);
  std::vector<double> p_row(n);
  for (int64_t i = 0; i < n; ++i) {
    FitRowPerplexity(sq_dist, i, cfg.perplexity, &p_row);
    for (int64_t j = 0; j < n; ++j) p(i, j) = p_row[j];
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double v = (p(i, j) + p(j, i)) / (2.0 * n);
      v = std::max(v, 1e-12);
      p(i, j) = v;
      p(j, i) = v;
    }
    p(i, i) = 0.0;
  }

  Rng rng(cfg.seed);
  Matrix y = Matrix::Gaussian(n, cfg.output_dim, &rng, 1e-2);
  Matrix velocity(n, cfg.output_dim);
  Matrix gains(n, cfg.output_dim, 1.0);

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    const double exaggeration =
        iter < cfg.exaggeration_iters ? cfg.early_exaggeration : 1.0;
    const double momentum = iter < cfg.momentum_switch_iter
                                ? cfg.momentum
                                : cfg.final_momentum;

    // Student-t affinities Q (unnormalized numerators) and normalizer.
    Matrix num(n, n);
    double z = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double d = RowSquaredDistance(y, i, y, j);
        double v = 1.0 / (1.0 + d);
        num(i, j) = v;
        num(j, i) = v;
        z += 2.0 * v;
      }
    }
    z = std::max(z, 1e-12);

    // Gradient: 4 * sum_j (exag*P_ij - Q_ij) * num_ij * (y_i - y_j).
    Matrix grad(n, cfg.output_dim);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double q = num(i, j) / z;
        double coef = 4.0 * (exaggeration * p(i, j) - q) * num(i, j);
        for (int64_t k = 0; k < cfg.output_dim; ++k) {
          grad(i, k) += coef * (y(i, k) - y(j, k));
        }
      }
    }

    // Adaptive gains + momentum update.
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t k = 0; k < cfg.output_dim; ++k) {
        bool same_sign = (grad(i, k) > 0) == (velocity(i, k) > 0);
        gains(i, k) = same_sign ? std::max(0.01, gains(i, k) * 0.8)
                                : gains(i, k) + 0.2;
        velocity(i, k) = momentum * velocity(i, k) -
                         cfg.learning_rate * gains(i, k) * grad(i, k);
        y(i, k) += velocity(i, k);
      }
    }
    // Re-center.
    for (int64_t k = 0; k < cfg.output_dim; ++k) {
      double mean = 0.0;
      for (int64_t i = 0; i < n; ++i) mean += y(i, k);
      mean /= static_cast<double>(n);
      for (int64_t i = 0; i < n; ++i) y(i, k) -= mean;
    }
  }
  if (!y.AllFinite()) {
    return Status::Internal("t-SNE diverged");
  }
  return y;
}

}  // namespace galign
