#include "manifold/pca.h"

#include <algorithm>

#include "la/decomposition.h"
#include "la/ops.h"

namespace galign {

Result<Matrix> Pca(const Matrix& x, int64_t components) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("PCA of empty matrix");
  }
  components = std::min(components, x.cols());
  // Center columns.
  Matrix centered = x;
  for (int64_t c = 0; c < x.cols(); ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < x.rows(); ++r) mean += x(r, c);
    mean /= static_cast<double>(x.rows());
    for (int64_t r = 0; r < x.rows(); ++r) centered(r, c) -= mean;
  }
  Matrix cov = MatMulTransposedA(centered, centered);
  cov.Scale(1.0 / std::max<int64_t>(1, x.rows() - 1));
  auto eig = SymmetricEigen(cov);
  GALIGN_RETURN_NOT_OK(eig.status());
  const Matrix& v = eig.ValueOrDie().eigenvectors;
  Matrix basis = v.Block(0, 0, v.rows(), components);
  return MatMul(centered, basis);
}

}  // namespace galign
