// Principal component analysis via the covariance eigendecomposition.
// Used to initialize t-SNE and for quick 2-D projections.
#pragma once

#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// Projects rows of x onto the top `components` principal directions.
/// Rows are mean-centered first. Returns an (n x components) matrix.
[[nodiscard]] Result<Matrix> Pca(const Matrix& x, int64_t components);

}  // namespace galign
