// Exact t-SNE (van der Maaten & Hinton, 2008) for the qualitative study
// (paper Fig. 8 visualizes embeddings of a 10-movie-pair toy set with
// t-SNE). O(n^2) per iteration — intended for small inputs.
#pragma once

#include "common/status.h"
#include "la/matrix.h"

namespace galign {

/// t-SNE hyper-parameters.
struct TsneConfig {
  int64_t output_dim = 2;
  double perplexity = 5.0;
  int iterations = 500;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 100;
  double momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 250;
  uint64_t seed = 11;
};

/// Embeds the rows of `x` into `cfg.output_dim` dimensions.
[[nodiscard]] Result<Matrix> Tsne(const Matrix& x, const TsneConfig& cfg = {});

}  // namespace galign
