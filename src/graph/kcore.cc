#include "graph/kcore.h"

#include <algorithm>

namespace galign {

std::vector<int64_t> CoreNumbers(const AttributedGraph& g) {
  const int64_t n = g.num_nodes();
  std::vector<int64_t> degree(n), core(n, 0);
  int64_t max_degree = 0;
  for (int64_t v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  if (n == 0) return core;

  // Bucket sort nodes by degree (Batagelj-Zaversnik).
  std::vector<int64_t> bin(max_degree + 2, 0);
  for (int64_t v = 0; v < n; ++v) bin[degree[v]]++;
  int64_t start = 0;
  for (int64_t d = 0; d <= max_degree; ++d) {
    int64_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<int64_t> order(n), pos(n);
  for (int64_t v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]];
    order[pos[v]] = v;
    bin[degree[v]]++;
  }
  for (int64_t d = max_degree; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  // Peel in non-decreasing degree order.
  for (int64_t i = 0; i < n; ++i) {
    int64_t v = order[i];
    core[v] = degree[v];
    for (int64_t u : g.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u one bucket down: swap with the first node of its bucket.
        int64_t du = degree[u];
        int64_t pu = pos[u];
        int64_t pw = bin[du];
        int64_t w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        bin[du]++;
        degree[u]--;
      }
    }
  }
  return core;
}

int64_t Degeneracy(const AttributedGraph& g) {
  int64_t best = 0;
  for (int64_t c : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

std::vector<int64_t> KCore(const AttributedGraph& g, int64_t k) {
  std::vector<int64_t> core = CoreNumbers(g);
  std::vector<int64_t> nodes;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (core[v] >= k) nodes.push_back(v);
  }
  return nodes;
}

Result<AttributedGraph> KCoreSubgraph(const AttributedGraph& g, int64_t k) {
  return g.InducedSubgraph(KCore(g, k));
}

}  // namespace galign
