// Descriptive statistics over attributed graphs, used by dataset synthesis
// to verify generated networks match the published Table II statistics and
// by examples to describe their inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace galign {

/// Summary statistics of a graph.
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int64_t num_attributes = 0;
  double avg_degree = 0.0;
  int64_t max_degree = 0;
  int64_t min_degree = 0;
  int64_t isolated_nodes = 0;
  double degree_assortativity = 0.0;
  double avg_clustering = 0.0;  // sampled estimate for large graphs
  int64_t connected_components = 0;
};

/// Computes all GraphStats fields. Clustering is sampled on up to
/// `clustering_samples` nodes for speed.
GraphStats ComputeStats(const AttributedGraph& g,
                        int64_t clustering_samples = 1000);

/// Degree histogram: hist[d] = #nodes of degree d (truncated at max_degree).
std::vector<int64_t> DegreeHistogram(const AttributedGraph& g);

/// Number of connected components (union-find).
int64_t CountConnectedComponents(const AttributedGraph& g);

/// Single-line rendering of the stats.
std::string StatsToString(const GraphStats& s);

}  // namespace galign
