// Plain-text graph persistence: whitespace-separated edge lists plus TSV
// attribute tables — the formats the public alignment datasets ship in.
#pragma once

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace galign {

/// Writes "u v" lines (one canonical undirected edge per line) preceded by a
/// "# nodes=<n>" header so isolated trailing nodes survive a round trip.
[[nodiscard]] Status SaveEdgeList(const AttributedGraph& g, const std::string& path);

/// Reads an edge list written by SaveEdgeList (or any "u v" file; node count
/// defaults to max id + 1 when the header is absent). Attributes are not
/// loaded — combine with LoadAttributes / WithAttributes.
[[nodiscard]] Result<AttributedGraph> LoadEdgeList(const std::string& path);

/// Writes the attribute matrix as TSV (one node per row).
[[nodiscard]] Status SaveAttributes(const Matrix& attributes, const std::string& path);

/// Reads a TSV attribute matrix.
[[nodiscard]] Result<Matrix> LoadAttributes(const std::string& path);

/// Writes "source_node target_node" ground-truth anchor pairs.
[[nodiscard]] Status SaveGroundTruth(const std::vector<int64_t>& ground_truth,
                       const std::string& path);

/// Reads ground-truth anchors into a vector indexed by source node
/// (missing sources map to -1). num_source_nodes sizes the vector.
[[nodiscard]] Result<std::vector<int64_t>> LoadGroundTruth(const std::string& path,
                                             int64_t num_source_nodes);

}  // namespace galign
