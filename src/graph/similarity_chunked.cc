#include "graph/similarity_chunked.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <utility>

#include "common/logging.h"
#include "la/ops.h"

namespace galign {

namespace {

constexpr double kNoScore = -std::numeric_limits<double>::infinity();

// Cache-friendly block height when no budget constrains the scan (matches
// the chunking ScanStability already uses).
constexpr int64_t kDefaultBlockRows = 512;

// Selects the top-k of `row` (length cols) into the output slots. Routed
// through the canonical TopKSelect so the chunked scan, TopKRow, and the
// ANN re-ranking kernels share one tie-breaking contract (lowest index
// wins) regardless of block size or thread count.
void SelectTopK(const double* row, int64_t cols, int64_t k, int64_t* idx_out,
                double* score_out) {
  TopKSelect(row, cols, k, idx_out, score_out);
}

}  // namespace

int64_t TopKAlignment::Top1(int64_t row) const {
  if (row < 0 || row >= rows || k == 0) return -1;
  return index[row * k];
}

int64_t TopKAlignment::RankOf(int64_t row, int64_t col) const {
  if (row < 0 || row >= rows) return -1;
  for (int64_t j = 0; j < k; ++j) {
    if (index[row * k + j] == col) return j + 1;
  }
  return -1;
}

Result<Matrix> TopKAlignment::ToDense(double fill) const {
  auto dense = Matrix::TryCreate(rows, cols, fill);
  GALIGN_RETURN_NOT_OK(dense.status());
  Matrix& m = dense.ValueOrDie();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t c = index[r * k + j];
      if (c >= 0) m(r, c) = score[r * k + j];
    }
  }
  return dense;
}

Result<TopKAlignment> ChunkedTopK(int64_t rows, int64_t cols, int64_t k,
                                  int64_t block_rows,
                                  const RowBlockFiller& fill,
                                  const RunContext& ctx) {
  if (rows < 0 || cols < 0 || k <= 0) {
    return Status::InvalidArgument("ChunkedTopK: invalid shape/k");
  }
  k = std::min(k, std::max<int64_t>(cols, 0));
  block_rows = std::max<int64_t>(1, std::min(block_rows, std::max<int64_t>(rows, 1)));

  TopKAlignment out;
  out.rows = rows;
  out.cols = cols;
  out.k = k;
  if (rows == 0 || cols == 0 || k == 0) {
    out.k = k;
    out.rows_computed = rows;
    out.index.assign(static_cast<size_t>(rows) * k, -1);
    out.score.assign(static_cast<size_t>(rows) * k, kNoScore);
    return out;
  }

  // Admit the transient block buffer and the output against the budget for
  // the duration of the scan.
  MemoryScope scope;
  GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
      ctx.budget(),
      DenseBytes(block_rows, cols) + TopKOutputBytes(rows, k),
      "chunked top-k scan", &scope));

  try {
    out.index.assign(static_cast<size_t>(rows) * k, -1);
    out.score.assign(static_cast<size_t>(rows) * k, kNoScore);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("ChunkedTopK: top-k output of " +
                                     std::to_string(rows) + "x" +
                                     std::to_string(k) + " does not fit");
  }

  auto block = Matrix::TryCreate(block_rows, cols);
  GALIGN_RETURN_NOT_OK(block.status());
  Matrix& buf = block.ValueOrDie();

  for (int64_t r0 = 0; r0 < rows; r0 += block_rows) {
    if (ctx.ShouldStop()) break;  // wind down with the rows finished so far
    const int64_t nrows = std::min(block_rows, rows - r0);
    if (nrows != buf.rows()) buf.Resize(nrows, cols);
    GALIGN_RETURN_NOT_OK(fill(r0, nrows, &buf));
    for (int64_t i = 0; i < nrows; ++i) {
      SelectTopK(buf.row_data(i), cols, k, &out.index[(r0 + i) * k],
                 &out.score[(r0 + i) * k]);
    }
    out.rows_computed = r0 + nrows;
  }
  return out;
}

Result<TopKAlignment> ChunkedEmbeddingTopK(const std::vector<Matrix>& hs,
                                           const std::vector<Matrix>& ht,
                                           const std::vector<double>& theta,
                                           int64_t k, const RunContext& ctx) {
  if (hs.size() != ht.size() || hs.size() != theta.size()) {
    return Status::InvalidArgument(
        "ChunkedEmbeddingTopK: layer count mismatch");
  }
  if (hs.empty()) {
    return Status::InvalidArgument("ChunkedEmbeddingTopK: no layers");
  }
  const int64_t n1 = hs[0].rows();
  const int64_t n2 = ht[0].rows();
  for (size_t l = 0; l < hs.size(); ++l) {
    if (hs[l].rows() != n1 || ht[l].rows() != n2 ||
        hs[l].cols() != ht[l].cols()) {
      return Status::InvalidArgument(
          "ChunkedEmbeddingTopK: inconsistent embedding shapes at layer " +
          std::to_string(l));
    }
  }

  // Size the block to the budget: per block row we hold one n2-wide
  // similarity row plus one (scaled) row of every source-layer embedding.
  auto block_rows = BudgetedBlockRows(n1, k, ChunkedRowBytes(n2, hs), ctx);
  GALIGN_RETURN_NOT_OK(block_rows.status());

  auto fill = [&](int64_t r0, int64_t nrows, Matrix* block) -> Status {
    bool accumulated = false;
    for (size_t l = 0; l < hs.size(); ++l) {
      if (theta[l] == 0.0) continue;
      Matrix strip = hs[l].Block(r0, 0, nrows, hs[l].cols());
      // Scaling the (small) strip folds theta into the GEMM, so one
      // accumulating MatMul per layer suffices — no second n2-wide buffer.
      if (theta[l] != 1.0) strip.Scale(theta[l]);
      MatMulTransposedBInto(strip, ht[l], block, /*accumulate=*/accumulated);
      accumulated = true;
    }
    if (!accumulated) block->Fill(0.0);
    return Status::OK();
  };
  return ChunkedTopK(n1, n2, k, block_rows.ValueOrDie(), fill, ctx);
}

Result<int64_t> BudgetedBlockRows(int64_t rows, int64_t k, uint64_t row_bytes,
                                  const RunContext& ctx) {
  if (!ctx.HasMemoryLimit()) return kDefaultBlockRows;
  const uint64_t fixed = TopKOutputBytes(rows, k);
  const uint64_t headroom = ctx.budget()->remaining();
  if (headroom <= fixed || row_bytes == 0 ||
      (headroom - fixed) / row_bytes == 0) {
    return Status::ResourceExhausted(
        "chunked scan: even a one-row block plus the top-k output does not "
        "fit the remaining memory budget");
  }
  return static_cast<int64_t>(std::min<uint64_t>(
      kDefaultBlockRows, (headroom - fixed) / row_bytes));
}

TopKAlignment TopKFromDense(const Matrix& s, int64_t k) {
  TopKAlignment out;
  out.rows = s.rows();
  out.cols = s.cols();
  out.k = std::min<int64_t>(std::max<int64_t>(k, 0), s.cols());
  out.rows_computed = out.rows;
  out.index.assign(static_cast<size_t>(out.rows) * out.k, -1);
  out.score.assign(static_cast<size_t>(out.rows) * out.k, kNoScore);
  if (out.k == 0) return out;
  for (int64_t r = 0; r < out.rows; ++r) {
    SelectTopK(s.row_data(r), s.cols(), out.k, &out.index[r * out.k],
               &out.score[r * out.k]);
  }
  return out;
}

uint64_t ChunkedRowBytes(int64_t cols, const std::vector<Matrix>& hs) {
  uint64_t dims = 0;
  for (const Matrix& h : hs) dims += static_cast<uint64_t>(h.cols());
  return (static_cast<uint64_t>(std::max<int64_t>(cols, 0)) + dims) *
         sizeof(double);
}

uint64_t TopKOutputBytes(int64_t rows, int64_t k) {
  return static_cast<uint64_t>(std::max<int64_t>(rows, 0)) *
         static_cast<uint64_t>(std::max<int64_t>(k, 0)) *
         (sizeof(int64_t) + sizeof(double));
}

}  // namespace galign
