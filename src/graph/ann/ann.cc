#include "graph/ann/ann.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "common/memory_budget.h"

namespace galign {

bool ShouldUseAnn(const AnnPolicy& policy, int64_t n1, int64_t n2) {
  switch (policy.mode) {
    case AnnMode::kOff:
      return false;
    case AnnMode::kOn:
      return n1 > 0 && n2 > 0;
    case AnnMode::kAuto:
      return n1 >= policy.min_rows && n2 >= policy.min_rows;
  }
  return false;
}

AnnConfig EffortScaledConfig(const AnnPolicy& policy) {
  AnnConfig cfg = policy.config;
  // Search effort grows stepwise with the recall target. The factor-1
  // defaults (dense auto-scaled signatures, 8 tables x 16 probes, ef 96)
  // already measure ~0.99 recall on the generated workloads the property
  // test pins, so extra effort is reserved for near-exact targets where
  // the candidate set genuinely has to widen.
  int64_t factor = 1;
  if (policy.recall_target > 0.99) factor = 2;
  if (policy.recall_target > 0.995) factor = 3;
  cfg.lsh_probes = std::max<int64_t>(1, cfg.lsh_probes) * factor;
  cfg.hnsw_ef_search = std::max<int64_t>(1, cfg.hnsw_ef_search) * factor;
  return cfg;
}

Result<Matrix> ConcatLayerRows(const std::vector<Matrix>& layers,
                               const std::vector<double>* scale,
                               MemoryBudget* budget) {
  if (layers.empty()) {
    return Status::InvalidArgument("ConcatLayerRows: no layers");
  }
  const int64_t n = layers[0].rows();
  int64_t total = 0;
  for (const Matrix& h : layers) {
    if (h.rows() != n) {
      return Status::InvalidArgument("ConcatLayerRows: row count mismatch");
    }
    total += h.cols();
  }
  auto out = Matrix::TryCreate(n, total, 0.0, budget);
  GALIGN_RETURN_NOT_OK(out.status());
  Matrix& m = out.ValueOrDie();
  int64_t col0 = 0;
  for (size_t l = 0; l < layers.size(); ++l) {
    const Matrix& h = layers[l];
    const double s = scale != nullptr ? (*scale)[l] : 1.0;
    const int64_t d = h.cols();
    for (int64_t r = 0; r < n; ++r) {
      double* dst = m.row_data(r) + col0;
      const double* src = h.row_data(r);
      if (s == 1.0) {
        std::memcpy(dst, src, static_cast<size_t>(d) * sizeof(double));
      } else {
        for (int64_t c = 0; c < d; ++c) dst[c] = s * src[c];
      }
    }
    col0 += d;
  }
  return out;
}

Result<TopKAlignment> AnnEmbeddingTopK(const std::vector<Matrix>& hs,
                                       const std::vector<Matrix>& ht,
                                       const std::vector<double>& theta,
                                       int64_t k, const AnnPolicy& policy,
                                       const RunContext& ctx) {
  if (hs.size() != ht.size() || hs.size() != theta.size()) {
    return Status::InvalidArgument("AnnEmbeddingTopK: layer count mismatch");
  }
  if (hs.empty()) {
    return Status::InvalidArgument("AnnEmbeddingTopK: no layers");
  }
  const int64_t n1 = hs[0].rows();
  const int64_t n2 = ht[0].rows();
  for (size_t l = 0; l < hs.size(); ++l) {
    if (hs[l].rows() != n1 || ht[l].rows() != n2 ||
        hs[l].cols() != ht[l].cols()) {
      return Status::InvalidArgument(
          "AnnEmbeddingTopK: inconsistent embedding shapes at layer " +
          std::to_string(l));
    }
  }
  if (k <= 0) {
    return Status::InvalidArgument("AnnEmbeddingTopK: k must be > 0");
  }

  auto base = ConcatLayerRows(ht, /*scale=*/nullptr, ctx.budget());
  GALIGN_RETURN_NOT_OK(base.status());
  auto queries = ConcatLayerRows(hs, &theta, ctx.budget());
  GALIGN_RETURN_NOT_OK(queries.status());

  auto index =
      BuildAnnIndex(base.MoveValueOrDie(), EffortScaledConfig(policy), ctx);
  GALIGN_RETURN_NOT_OK(index.status());
  return index.ValueOrDie()->QueryBatch(queries.ValueOrDie(), k, ctx);
}

}  // namespace galign
