// Serialize / deserialize an AnnIndex (DESIGN.md §12).
//
// Both backends are deterministic pure functions of (base rows, config,
// seed) — the DESIGN.md §11 reproducibility contract — so the durable form
// of an index is its *recipe*: the full AnnConfig, the expected shape, and
// a behavioral fingerprint (a CRC32 over the results of a fixed probe
// query batch). Deserialization re-runs the seeded build over the caller's
// base rows and then verifies the fingerprint, rejecting with a typed
// IOError when the rebuilt index answers differently than the one that was
// saved (wrong base rows, config drift, or a backend whose build stopped
// being deterministic). This keeps artifacts small — the base embedding
// rows are stored once by the containing artifact, not duplicated inside
// the index section — while still giving load-time verify-or-reject
// semantics over the retrieval structure itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/run_context.h"
#include "common/status.h"
#include "graph/ann/ann_index.h"
#include "la/matrix.h"

namespace galign {

/// \brief Behavioral fingerprint of `index`: CRC32 over the exact results
/// (indices + IEEE-754 score bits) of a fixed probe batch — the first
/// min(16, size) base rows queried with k = min(8, size).
///
/// Two indices with equal fingerprints answer the probe batch identically;
/// a rebuilt index with a differing fingerprint is not the index that was
/// saved.
uint32_t AnnIndexFingerprint(const AnnIndex& index);

/// \brief Serializes the recipe (config + shape + fingerprint) of `index`
/// built under `config`. Text payload, no CRC trailer — the containing
/// artifact is responsible for durability framing.
std::string SerializeAnnRecipe(const AnnIndex& index, const AnnConfig& config);

/// \brief Rebuilds the index described by `payload` over `base` and
/// verifies it.
///
/// Fails with IOError when the payload is malformed, the shape disagrees
/// with `base`, or the rebuilt index's fingerprint differs from the saved
/// one. `context` names the source in error messages. Budget admission and
/// deadlines apply through `ctx` exactly as in BuildAnnIndex.
[[nodiscard]] Result<std::unique_ptr<AnnIndex>> RebuildAnnIndex(
    const std::string& payload, Matrix base, const RunContext& ctx,
    const std::string& context);

}  // namespace galign
