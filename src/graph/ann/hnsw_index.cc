// HNSW-style navigable small-world index (Malkov & Yashunin 2018),
// simplified for determinism and an immutable serving path:
//
//   * nodes are inserted strictly in row order 0..n-1 and level draws come
//     from one seeded Rng stream, so the graph is identical run-to-run;
//   * every heap comparison breaks similarity ties toward the smaller id,
//     keeping search results well-ordered under the repo's lowest-index
//     tie contract;
//   * after construction the per-level adjacency is frozen into CSR-style
//     offset + neighbor arrays (the same layout graph/ uses for sparse
//     structure), which is what queries traverse — no per-node vectors on
//     the read path.
//
// The metric is inner product. Callers hand in rows of constant norm
// (unit-normalized layers / their theta-scaled concatenation), which makes
// inner product order-equivalent to cosine and keeps greedy routing sound.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "graph/ann/backends.h"
#include "graph/similarity_chunked.h"
#include "la/matrix.h"

namespace galign {
namespace ann_internal {
namespace {

constexpr int64_t kQueryBlockRows = 256;
constexpr int32_t kMaxLevelCap = 30;
// Visited-stamp epochs consumed per insert/query: one per descended level
// plus one per insert-layer search, kept disjoint by construction.
constexpr int64_t kEpochStride = 2 * (kMaxLevelCap + 2);

struct Cand {
  double sim;
  int32_t id;
};

// Descending by similarity, ties toward the smaller id — the one ordering
// every heap and result list below uses.
inline bool Better(const Cand& a, const Cand& b) {
  return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
}

// Pops the best candidate first (a "less" that ranks worse elements higher).
struct WorseFirst {
  bool operator()(const Cand& a, const Cand& b) const { return Better(b, a); }
};
// Keeps the worst element on top (bounded result set eviction).
struct BestFirst {
  bool operator()(const Cand& a, const Cand& b) const { return Better(a, b); }
};

using CandMaxHeap = std::priority_queue<Cand, std::vector<Cand>, WorseFirst>;
using CandMinHeap = std::priority_queue<Cand, std::vector<Cand>, BestFirst>;

class HnswIndex final : public AnnIndex {
 public:
  HnswIndex(Matrix base, const AnnConfig& config, MemoryScope scope)
      : base_(std::move(base)),
        m_(std::max<int64_t>(2, config.hnsw_degree)),
        m0_(2 * std::max<int64_t>(2, config.hnsw_degree)),
        ef_construction_(
            std::max<int64_t>(config.hnsw_ef_construction, m_ + 1)),
        ef_search_(std::max<int64_t>(1, config.hnsw_ef_search)),
        seed_(config.seed),
        scope_(std::move(scope)) {}

  std::string name() const override { return "hnsw"; }
  int64_t size() const override { return indexed_; }
  int64_t dim() const override { return base_.cols(); }
  bool truncated() const override { return indexed_ < base_.rows(); }
  const Matrix& base() const override { return base_; }

  uint64_t MemoryBytes() const override {
    uint64_t bytes = DenseBytes(base_.rows(), base_.cols());
    for (const auto& l : level_offsets_) bytes += l.size() * sizeof(int64_t);
    for (const auto& l : level_nbrs_) bytes += l.size() * sizeof(int32_t);
    return bytes;
  }

  Status Build(const RunContext& ctx);

  [[nodiscard]] Result<TopKAlignment> QueryBatch(
      const Matrix& queries, int64_t k, const RunContext& ctx,
      double effort) const override;

 private:
  int64_t Cap(int32_t level) const { return level == 0 ? m0_ : m_; }

  double Sim(const double* q, int32_t id) const {
    return RowDot(q, base_.row_data(id), base_.cols());
  }

  // Beam search over one level of the build-time adjacency. Entry points
  // must already be stamped `epoch` in *visited. Results land in `out`
  // sorted best-first.
  void SearchLayerBuild(const double* q, const std::vector<Cand>& entries,
                        int64_t ef, int32_t level, int64_t epoch,
                        std::vector<int64_t>* visited,
                        std::vector<Cand>* out) const {
    const auto& adj = build_adj_[static_cast<size_t>(level)];
    CandMaxHeap candidates;
    CandMinHeap results;
    for (const Cand& e : entries) {
      candidates.push(e);
      results.push(e);
    }
    while (results.size() > static_cast<size_t>(ef)) results.pop();
    while (!candidates.empty()) {
      const Cand c = candidates.top();
      candidates.pop();
      if (results.size() >= static_cast<size_t>(ef) &&
          Better(results.top(), c)) {
        break;
      }
      for (int32_t u : adj[static_cast<size_t>(c.id)]) {
        if ((*visited)[u] == epoch) continue;
        (*visited)[u] = epoch;
        const Cand uc{Sim(q, u), u};
        if (results.size() < static_cast<size_t>(ef) ||
            Better(uc, results.top())) {
          candidates.push(uc);
          results.push(uc);
          if (results.size() > static_cast<size_t>(ef)) results.pop();
        }
      }
    }
    out->clear();
    while (!results.empty()) {
      out->push_back(results.top());
      results.pop();
    }
    std::sort(out->begin(), out->end(), Better);
  }

  // Same beam search over the frozen CSR arrays (query path, no locks, no
  // mutation — safe under concurrent callers).
  void SearchLayerFrozen(const double* q, const std::vector<Cand>& entries,
                         int64_t ef, int32_t level, int64_t epoch,
                         std::vector<int64_t>* visited,
                         std::vector<Cand>* out) const {
    const auto& offsets = level_offsets_[static_cast<size_t>(level)];
    const auto& nbrs = level_nbrs_[static_cast<size_t>(level)];
    CandMaxHeap candidates;
    CandMinHeap results;
    for (const Cand& e : entries) {
      candidates.push(e);
      results.push(e);
    }
    while (results.size() > static_cast<size_t>(ef)) results.pop();
    while (!candidates.empty()) {
      const Cand c = candidates.top();
      candidates.pop();
      if (results.size() >= static_cast<size_t>(ef) &&
          Better(results.top(), c)) {
        break;
      }
      const int64_t b = offsets[static_cast<size_t>(c.id)];
      const int64_t e = offsets[static_cast<size_t>(c.id) + 1];
      for (int64_t j = b; j < e; ++j) {
        const int32_t u = nbrs[static_cast<size_t>(j)];
        if ((*visited)[u] == epoch) continue;
        (*visited)[u] = epoch;
        const Cand uc{Sim(q, u), u};
        if (results.size() < static_cast<size_t>(ef) ||
            Better(uc, results.top())) {
          candidates.push(uc);
          results.push(uc);
          if (results.size() > static_cast<size_t>(ef)) results.pop();
        }
      }
    }
    out->clear();
    while (!results.empty()) {
      out->push_back(results.top());
      results.pop();
    }
    std::sort(out->begin(), out->end(), Better);
  }

  // Neighbor selection heuristic (Malkov & Yashunin Alg. 4): walking the
  // candidates best-first, keep one only if it is more similar to the
  // anchor than to every neighbor already kept (each Cand's sim is its
  // similarity to the anchor), then backfill with the pruned ones up to
  // `cap`. Pure top-cap pruning fails on clustered data — all of a node's
  // links collapse into its own cluster and greedy routing can never cross
  // cluster boundaries; the dominance test preserves the long-range edges
  // navigation depends on.
  void SelectNeighbors(std::vector<Cand>* cands, int64_t cap,
                       std::vector<int32_t>* out) const {
    std::sort(cands->begin(), cands->end(), Better);
    out->clear();
    std::vector<int32_t> pruned;
    for (const Cand& c : *cands) {
      if (static_cast<int64_t>(out->size()) >= cap) break;
      bool keep = true;
      const double* cr = base_.row_data(c.id);
      for (int32_t s : *out) {
        if (RowDot(cr, base_.row_data(s), base_.cols()) > c.sim) {
          keep = false;
          break;
        }
      }
      if (keep) {
        out->push_back(c.id);
      } else {
        pruned.push_back(c.id);
      }
    }
    for (int32_t id : pruned) {
      if (static_cast<int64_t>(out->size()) >= cap) break;
      out->push_back(id);
    }
  }

  // Greedy level descent from the entry point down to `target_level + 1`,
  // returning the best node found (query and insert share it). Consumes
  // epochs [epoch, epoch + kMaxLevelCap + 1) at most.
  template <typename SearchFn>
  Cand Descend(const double* q, int32_t target_level, int64_t epoch,
               std::vector<int64_t>* visited, SearchFn&& search) const {
    Cand ep{Sim(q, entry_), entry_};
    std::vector<Cand> frontier;
    for (int32_t lc = max_level_; lc > target_level; --lc) {
      (*visited)[ep.id] = epoch;
      search(q, std::vector<Cand>{ep}, /*ef=*/1, lc, epoch, visited,
             &frontier);
      if (!frontier.empty()) ep = frontier.front();
      ++epoch;
    }
    return ep;
  }

  Matrix base_;
  int64_t m_;
  int64_t m0_;
  int64_t ef_construction_;
  int64_t ef_search_;
  uint64_t seed_;
  int64_t indexed_ = 0;
  int32_t entry_ = -1;
  int32_t max_level_ = -1;
  MemoryScope scope_;

  // Build-time adjacency: [level][node] -> neighbor ids. Freed on freeze.
  std::vector<std::vector<std::vector<int32_t>>> build_adj_;
  // Frozen CSR per level: offsets (n + 1) and packed neighbor ids.
  std::vector<std::vector<int64_t>> level_offsets_;
  std::vector<std::vector<int32_t>> level_nbrs_;
};

Status HnswIndex::Build(const RunContext& ctx) {
  const int64_t n = base_.rows();
  if (n == 0) return Status::OK();
  if (n > (int64_t{1} << 31) - 2) {
    return Status::InvalidArgument("HnswIndex: > 2^31 rows unsupported");
  }

  Rng rng(seed_);
  const double inv_log_m = 1.0 / std::log(static_cast<double>(m_));
  std::vector<int32_t> levels(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < n; ++i) {
    const double u = std::max(rng.Uniform(), 1e-12);
    levels[static_cast<size_t>(i)] = std::min<int32_t>(
        kMaxLevelCap, static_cast<int32_t>(-std::log(u) * inv_log_m));
  }
  const int32_t top_level =
      *std::max_element(levels.begin(), levels.end());

  try {
    build_adj_.assign(static_cast<size_t>(top_level) + 1, {});
    for (auto& l : build_adj_) l.assign(static_cast<size_t>(n), {});
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("HnswIndex: adjacency for " +
                                     std::to_string(n) + " rows does not fit");
  }

  std::vector<int64_t> visited(static_cast<size_t>(n), -1);
  int64_t epoch = 0;
  std::vector<Cand> frontier;
  std::vector<Cand> merged;

  auto search = [this](const double* q, const std::vector<Cand>& entries,
                       int64_t ef, int32_t level, int64_t ep,
                       std::vector<int64_t>* vis, std::vector<Cand>* out) {
    SearchLayerBuild(q, entries, ef, level, ep, vis, out);
  };

  for (int64_t v = 0; v < n; ++v) {
    if (ctx.ShouldStop()) break;  // truncated index over the prefix
    const int32_t level = levels[static_cast<size_t>(v)];
    if (entry_ < 0) {
      entry_ = static_cast<int32_t>(v);
      max_level_ = level;
      indexed_ = v + 1;
      continue;
    }
    const double* q = base_.row_data(v);
    epoch += kEpochStride;  // fresh disjoint epoch block for this insert
    Cand ep = Descend(q, level, epoch, &visited, search);
    std::vector<Cand> entries{ep};
    const int32_t start = std::min(level, max_level_);
    for (int32_t lc = start; lc >= 0; --lc) {
      // Past the descent's epoch range (which ends at epoch + cap + 1).
      const int64_t le = epoch + kMaxLevelCap + 2 + (start - lc);
      visited[ep.id] = le;
      for (const Cand& e : entries) visited[e.id] = le;
      SearchLayerBuild(q, entries, ef_construction_, lc, le, &visited,
                       &frontier);
      const int64_t cap = Cap(lc);
      // Diversity-pruned selection of v's outgoing links (Alg. 4), not a
      // plain top-cap cut — see SelectNeighbors.
      std::vector<Cand> pool = frontier;
      auto& my = build_adj_[static_cast<size_t>(lc)][static_cast<size_t>(v)];
      SelectNeighbors(&pool, cap, &my);
      for (int32_t u : my) {
        // Back-link u -> v, re-selecting u's neighborhood with the same
        // heuristic when it overflows the level cap.
        auto& theirs =
            build_adj_[static_cast<size_t>(lc)][static_cast<size_t>(u)];
        theirs.push_back(static_cast<int32_t>(v));
        if (static_cast<int64_t>(theirs.size()) > cap) {
          const double* ur = base_.row_data(u);
          merged.clear();
          for (int32_t w : theirs) merged.push_back({Sim(ur, w), w});
          SelectNeighbors(&merged, cap, &theirs);
        }
      }
      entries = frontier;
      if (!frontier.empty()) ep = frontier.front();
    }
    if (level > max_level_) {
      max_level_ = level;
      entry_ = static_cast<int32_t>(v);
    }
    indexed_ = v + 1;
  }

  // Freeze into CSR and drop the build-time nested vectors.
  const size_t nlevels = build_adj_.size();
  level_offsets_.assign(nlevels, {});
  level_nbrs_.assign(nlevels, {});
  for (size_t l = 0; l < nlevels; ++l) {
    auto& offsets = level_offsets_[l];
    auto& nbrs = level_nbrs_[l];
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    int64_t total = 0;
    for (int64_t i = 0; i < n; ++i) {
      offsets[static_cast<size_t>(i)] = total;
      total += static_cast<int64_t>(build_adj_[l][static_cast<size_t>(i)].size());
    }
    offsets[static_cast<size_t>(n)] = total;
    nbrs.reserve(static_cast<size_t>(total));
    for (int64_t i = 0; i < n; ++i) {
      const auto& a = build_adj_[l][static_cast<size_t>(i)];
      nbrs.insert(nbrs.end(), a.begin(), a.end());
    }
  }
  build_adj_.clear();
  build_adj_.shrink_to_fit();
  return Status::OK();
}

Result<TopKAlignment> HnswIndex::QueryBatch(const Matrix& queries, int64_t k,
                                            const RunContext& ctx,
                                            double effort) const {
  if (queries.cols() != base_.cols()) {
    return Status::InvalidArgument(
        "HnswIndex::QueryBatch: query dim " + std::to_string(queries.cols()) +
        " != index dim " + std::to_string(base_.cols()));
  }
  if (k <= 0) {
    return Status::InvalidArgument("HnswIndex::QueryBatch: k must be > 0");
  }
  const int64_t rows = queries.rows();
  const int64_t kq = std::min(k, indexed_);
  auto out_r = MakeEmptyTopK(rows, base_.rows(), kq);
  GALIGN_RETURN_NOT_OK(out_r.status());
  TopKAlignment& out = out_r.ValueOrDie();
  if (rows == 0 || kq == 0) {
    out.rows_computed = rows;
    return out_r;
  }

  // Degraded effort narrows the beam but never below k (a beam thinner
  // than the answer set cannot fill it).
  const double eff = std::clamp(effort, 0.0, 1.0);
  const int64_t ef = std::max<int64_t>(
      std::max<int64_t>(1, std::llround(static_cast<double>(ef_search_) * eff)),
      kq);
  const int64_t qblock = std::min(kQueryBlockRows, rows);
  MemoryScope scope;
  GALIGN_RETURN_NOT_OK(MemoryScope::Reserve(
      ctx.budget(),
      TopKOutputBytes(rows, kq) +
          static_cast<uint64_t>(ParallelismLevel()) *
              static_cast<uint64_t>(base_.rows()) * sizeof(int64_t),
      "hnsw query batch", &scope));

  auto search = [this](const double* q, const std::vector<Cand>& entries,
                       int64_t efx, int32_t level, int64_t ep,
                       std::vector<int64_t>* vis, std::vector<Cand>* out_v) {
    SearchLayerFrozen(q, entries, efx, level, ep, vis, out_v);
  };

  for (int64_t r0 = 0; r0 < rows; r0 += qblock) {
    if (ctx.ShouldStop()) break;  // wind down with the rows finished so far
    const int64_t nrows = std::min(qblock, rows - r0);
    ParallelFor(
        0, nrows,
        [&](int64_t cb, int64_t ce) {
          std::vector<int64_t> visited(static_cast<size_t>(base_.rows()), -1);
          std::vector<Cand> result;
          for (int64_t i = cb; i < ce; ++i) {
            const double* q = queries.row_data(r0 + i);
            const int64_t epoch = i * kEpochStride;
            Cand ep = Descend(q, 0, epoch, &visited, search);
            const int64_t le = epoch + kMaxLevelCap + 1;
            visited[ep.id] = le;
            SearchLayerFrozen(q, {ep}, ef, 0, le, &visited, &result);
            const int64_t take =
                std::min<int64_t>(kq, static_cast<int64_t>(result.size()));
            for (int64_t j = 0; j < take; ++j) {
              out.index[(r0 + i) * kq + j] = result[static_cast<size_t>(j)].id;
              out.score[(r0 + i) * kq + j] = result[static_cast<size_t>(j)].sim;
            }
          }
        },
        /*min_chunk=*/8);
    out.rows_computed = r0 + nrows;
  }
  return out_r;
}

}  // namespace

Result<std::unique_ptr<AnnIndex>> BuildHnswIndex(Matrix base,
                                                 const AnnConfig& config,
                                                 const RunContext& ctx) {
  MemoryScope scope;
  GALIGN_RETURN_NOT_OK(
      MemoryScope::Reserve(ctx.budget(),
                           EstimateAnnIndexBytes(base.rows(), base.cols(),
                                                 config),
                           "hnsw index", &scope));
  auto index =
      std::make_unique<HnswIndex>(std::move(base), config, std::move(scope));
  GALIGN_RETURN_NOT_OK(index->Build(ctx));
  return Result<std::unique_ptr<AnnIndex>>(std::move(index));
}

}  // namespace ann_internal
}  // namespace galign
