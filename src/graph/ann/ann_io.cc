#include "graph/ann/ann_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "common/durable_io.h"
#include "common/parse.h"

namespace galign {

namespace {

constexpr char kRecipeMagic[] = "galign-ann-recipe-v1";

const char* BackendName(AnnBackend b) {
  return b == AnnBackend::kLsh ? "lsh" : "hnsw";
}

Result<AnnBackend> ParseBackend(const std::string& name,
                                const std::string& context) {
  if (name == "lsh") return AnnBackend::kLsh;
  if (name == "hnsw") return AnnBackend::kHnsw;
  return Status::IOError("unknown ANN backend '" + name + "' in " + context);
}

}  // namespace

uint32_t AnnIndexFingerprint(const AnnIndex& index) {
  const Matrix& base = index.base();
  const int64_t probes = std::min<int64_t>(16, index.size());
  const int64_t k = std::min<int64_t>(8, index.size());
  if (probes == 0 || k == 0) return Crc32("empty-ann-index");
  const Matrix probe_rows = base.Block(0, 0, probes, base.cols());
  // Unbounded context: the probe batch is tiny and must never be truncated
  // by an ambient deadline — a partial probe would change the fingerprint.
  auto got = index.QueryBatch(probe_rows, k, RunContext());
  if (!got.ok()) return Crc32("ann-probe-failed");
  const TopKAlignment& t = got.ValueOrDie();
  std::string bytes;
  bytes.reserve(t.index.size() * (sizeof(int64_t) + sizeof(double)));
  for (size_t i = 0; i < t.index.size(); ++i) {
    int64_t id = t.index[i];
    uint64_t score_bits = 0;
    std::memcpy(&score_bits, &t.score[i], sizeof(score_bits));
    bytes.append(reinterpret_cast<const char*>(&id), sizeof(id));
    bytes.append(reinterpret_cast<const char*>(&score_bits),
                 sizeof(score_bits));
  }
  return Crc32(bytes);
}

std::string SerializeAnnRecipe(const AnnIndex& index,
                               const AnnConfig& config) {
  std::ostringstream out;
  out << kRecipeMagic << "\n";
  out << "backend " << BackendName(config.backend) << "\n";
  out << "seed " << config.seed << "\n";
  out << "lsh_tables " << config.lsh_tables << "\n";
  out << "lsh_bits " << config.lsh_bits << "\n";
  out << "lsh_probes " << config.lsh_probes << "\n";
  out << "hnsw_degree " << config.hnsw_degree << "\n";
  out << "hnsw_ef_construction " << config.hnsw_ef_construction << "\n";
  out << "hnsw_ef_search " << config.hnsw_ef_search << "\n";
  out << "rows " << index.base().rows() << "\n";
  out << "dim " << index.dim() << "\n";
  char fp[16];
  std::snprintf(fp, sizeof(fp), "%08x", AnnIndexFingerprint(index));
  out << "fingerprint " << fp << "\n";
  out << "end\n";
  return out.str();
}

Result<std::unique_ptr<AnnIndex>> RebuildAnnIndex(const std::string& payload,
                                                  Matrix base,
                                                  const RunContext& ctx,
                                                  const std::string& context) {
  std::istringstream in(payload);
  std::string tok;
  if (!(in >> tok) || tok != kRecipeMagic) {
    return Status::IOError("not an ANN recipe (bad magic) in " + context);
  }
  AnnConfig config;
  int64_t rows = -1, dim = -1;
  std::string fingerprint_hex;
  auto read_kv = [&](const char* key, auto* value) -> Status {
    if (!(in >> tok) || tok != key || !(in >> *value)) {
      return Status::IOError("expected '" + std::string(key) + " <value>' in " +
                             context);
    }
    return Status::OK();
  };
  std::string backend_name;
  GALIGN_RETURN_NOT_OK(read_kv("backend", &backend_name));
  auto backend = ParseBackend(backend_name, context);
  GALIGN_RETURN_NOT_OK(backend.status());
  config.backend = backend.ValueOrDie();
  GALIGN_RETURN_NOT_OK(read_kv("seed", &config.seed));
  GALIGN_RETURN_NOT_OK(read_kv("lsh_tables", &config.lsh_tables));
  GALIGN_RETURN_NOT_OK(read_kv("lsh_bits", &config.lsh_bits));
  GALIGN_RETURN_NOT_OK(read_kv("lsh_probes", &config.lsh_probes));
  GALIGN_RETURN_NOT_OK(read_kv("hnsw_degree", &config.hnsw_degree));
  GALIGN_RETURN_NOT_OK(
      read_kv("hnsw_ef_construction", &config.hnsw_ef_construction));
  GALIGN_RETURN_NOT_OK(read_kv("hnsw_ef_search", &config.hnsw_ef_search));
  GALIGN_RETURN_NOT_OK(read_kv("rows", &rows));
  GALIGN_RETURN_NOT_OK(read_kv("dim", &dim));
  GALIGN_RETURN_NOT_OK(read_kv("fingerprint", &fingerprint_hex));
  if (!(in >> tok) || tok != "end") {
    return Status::IOError("missing 'end' sentinel in ANN recipe " + context);
  }
  if (fingerprint_hex.size() != 8 ||
      fingerprint_hex.find_first_not_of("0123456789abcdef") !=
          std::string::npos) {
    return Status::IOError("bad ANN fingerprint '" + fingerprint_hex +
                           "' in " + context);
  }
  if (rows != base.rows() || dim != base.cols()) {
    return Status::IOError(
        "ANN recipe shape mismatch in " + context + ": recipe says " +
        std::to_string(rows) + "x" + std::to_string(dim) + ", base rows are " +
        std::to_string(base.rows()) + "x" + std::to_string(base.cols()));
  }
  const uint32_t want =
      static_cast<uint32_t>(std::strtoul(fingerprint_hex.c_str(), nullptr, 16));

  auto index = BuildAnnIndex(std::move(base), config, ctx);
  GALIGN_RETURN_NOT_OK(index.status());
  const uint32_t got = AnnIndexFingerprint(*index.ValueOrDie());
  if (got != want) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "ANN fingerprint mismatch (saved %08x, rebuilt %08x) in ",
                  want, got);
    return Status::IOError(std::string(buf) + context);
  }
  return index;
}

}  // namespace galign
