// Internal seams of the ANN module: per-backend build entry points and the
// small helpers both backends share. Not part of the public surface —
// include graph/ann/ann_index.h instead.
#pragma once

#include <cstdint>
#include <memory>

#include "common/run_context.h"
#include "common/status.h"
#include "graph/ann/ann_index.h"
#include "la/matrix.h"

namespace galign {
namespace ann_internal {

Result<std::unique_ptr<AnnIndex>> BuildLshIndex(Matrix base,
                                                const AnnConfig& config,
                                                const RunContext& ctx);

Result<std::unique_ptr<AnnIndex>> BuildHnswIndex(Matrix base,
                                                 const AnnConfig& config,
                                                 const RunContext& ctx);

/// Allocates the -1 / -inf padded TopKAlignment skeleton shared by both
/// QueryBatch implementations (rows_computed stays 0 for the caller to
/// advance).
Result<TopKAlignment> MakeEmptyTopK(int64_t rows, int64_t cols, int64_t k);

/// Plain inner product of two length-d rows (the re-ranking metric).
inline double RowDot(const double* a, const double* b, int64_t d) {
  double acc = 0.0;
  for (int64_t i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace ann_internal
}  // namespace galign
